module multidiag

go 1.22
