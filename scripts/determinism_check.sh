#!/bin/sh
# determinism_check.sh: CI proof that diagnosis reports are bit-identical
# across every execution strategy of the parallel engine. Generates a
# multi-defect device, then diffs `mddiag` output across worker counts
# (-j 1/4/8) and cone-cache states (uncached vs a warm cache), against
# the sequential uncached report as reference. Any diff is a determinism
# regression in chunked scoring, parallel extraction, or cache replay.
# Run via `make determinism-check`.
set -eu

BIN=${BIN:-bin}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# A 1000-gate circuit with 3 injected defects: big enough that scoring
# spans many chunks per worker, small enough to finish in seconds.
"$BIN/mdgen" -kind rand -gates 1000 -pis 24 -pos 20 -seed 9 -o "$WORK/c.bench"
"$BIN/mdatpg" -c "$WORK/c.bench" -o "$WORK/pats.txt" -seed 9
"$BIN/mdinject" -c "$WORK/c.bench" -p "$WORK/pats.txt" -n 3 -seed 42 -o "$WORK/dev.datalog"

run_mddiag() {
    # Elapsed timing is the one legitimately nondeterministic report
    # field; strip it before diffing.
    "$BIN/mddiag" -c "$WORK/c.bench" -p "$WORK/pats.txt" -d "$WORK/dev.datalog" "$@" \
        | sed 's/; elapsed .*//'
}

run_mddiag -j 1 > "$WORK/ref.txt"
if ! grep -q 'multiplet' "$WORK/ref.txt"; then
    echo "determinism_check: reference report looks empty" >&2
    cat "$WORK/ref.txt" >&2
    exit 1
fi

fail=0
for j in 4 8; do
    run_mddiag -j "$j" > "$WORK/j$j.txt"
    if ! diff -u "$WORK/ref.txt" "$WORK/j$j.txt" > "$WORK/diff.txt"; then
        echo "determinism_check: -j $j report differs from -j 1:" >&2
        cat "$WORK/diff.txt" >&2
        fail=1
    fi
done
for j in 1 4 8; do
    run_mddiag -j "$j" -conecache 1048576 > "$WORK/warm$j.txt"
    if ! diff -u "$WORK/ref.txt" "$WORK/warm$j.txt" > "$WORK/diff.txt"; then
        echo "determinism_check: -j $j warm-cache report differs from uncached -j 1:" >&2
        cat "$WORK/diff.txt" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "determinism_check: reports bit-identical across -j 1/4/8, cached and uncached"
