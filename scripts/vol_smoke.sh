#!/bin/sh
# vol_smoke.sh: end-to-end proof of the volume-diagnosis pipeline. Run
# via `make vol-smoke`.
#
# The script generates a pinned synthetic datalog stream (mdgen
# -datalogs, fixed seed, 90% repeats), ingests it through mdvol at
# different worker counts and cache states, and requires:
#
#   1. byte-identical per-device reports and fleet summaries across
#      -j 1 / -j 4 and a repeated -j 4 run (the determinism contract,
#      held through the dedupe cache);
#   2. a dedupe ratio worthy of the stream (>= 0.5 on 90% repeats);
#   3. the cache-disabled run (-cache -1) produces the same reports and
#      the same aggregate — dedupe is a pure optimization;
#   4. the same stream POSTed to a live mdserve /v1/ingest lands on the
#      same fleet aggregate (checked via mdtrend compare-volume).
set -eu

MDGEN=${MDGEN:-bin/mdgen}
MDVOL=${MDVOL:-bin/mdvol}
MDSERVE=${MDSERVE:-bin/mdserve}
MDTREND=${MDTREND:-bin/mdtrend}
WORK=$(mktemp -d)
PID=""
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

fail() { echo "vol_smoke: $1" >&2; exit 1; }

STREAM="$WORK/stream.jsonl"
"$MDGEN" -datalogs 200 -workload c17 -repeat 0.9 -sites 4 -seed 7 \
    -o "$STREAM" 2>"$WORK/mdgen.log" || { cat "$WORK/mdgen.log"; fail "mdgen -datalogs failed"; }
[ "$(wc -l < "$STREAM")" = 200 ] || fail "stream has $(wc -l < "$STREAM") records, want 200"

ingest() { # ingest <tag> <extra mdvol flags...>
    tag=$1; shift
    "$MDVOL" -in "$STREAM" -workload c17 "$@" \
        -reports-out "$WORK/reports_$tag.jsonl" \
        -summary-out "$WORK/summary_$tag.json" \
        2>"$WORK/mdvol_$tag.log" \
        || { cat "$WORK/mdvol_$tag.log"; fail "mdvol ($tag) failed"; }
}

ingest j1 -j 1
ingest j4 -j 4
ingest j4b -j 4
ingest nocache -j 4 -cache -1

# 1. Determinism: reports and summaries identical across worker counts
# and across runs.
cmp -s "$WORK/reports_j1.jsonl" "$WORK/reports_j4.jsonl" \
    || fail "per-device reports differ between -j 1 and -j 4"
cmp -s "$WORK/reports_j4.jsonl" "$WORK/reports_j4b.jsonl" \
    || fail "per-device reports differ between two -j 4 runs"
cmp -s "$WORK/summary_j1.json" "$WORK/summary_j4.json" \
    || fail "fleet summaries differ between -j 1 and -j 4"
cmp -s "$WORK/summary_j4.json" "$WORK/summary_j4b.json" \
    || fail "fleet summaries differ between two -j 4 runs"

# 2. The stream repeats, so dedupe must bite: ratio >= 0.5.
RATIO=$(sed -n 's/.*"dedupe_ratio": *\([0-9.]*\).*/\1/p' "$WORK/summary_j4.json")
[ -n "$RATIO" ] || fail "summary carries no dedupe_ratio: $(cat "$WORK/summary_j4.json")"
awk "BEGIN{exit !($RATIO >= 0.5)}" \
    || fail "dedupe ratio $RATIO < 0.5 on a 90%-repeat stream"

# 3. Dedupe is a pure optimization: cache off, same reports, same
# aggregate (the summary's dedupe ratio reflects syndrome repetition in
# the stream, not cache behaviour, so even it must match).
cmp -s "$WORK/reports_j4.jsonl" "$WORK/reports_nocache.jsonl" \
    || fail "per-device reports change when the fingerprint cache is disabled"
cmp -s "$WORK/summary_j4.json" "$WORK/summary_nocache.json" \
    || fail "fleet summary changes when the fingerprint cache is disabled"

# The trend gate agrees with itself on identical summaries.
"$MDTREND" compare-volume "$WORK/summary_j1.json" "$WORK/summary_j4.json" \
    >"$WORK/compare_cli.log" 2>&1 \
    || { cat "$WORK/compare_cli.log"; fail "mdtrend compare-volume flagged identical summaries"; }

# 4. Serving path: the same stream through a live mdserve /v1/ingest
# must land on the same fleet aggregate.
if ! command -v curl >/dev/null 2>&1; then
    echo "vol_smoke: OK (dedupe ratio $RATIO; curl not installed, serve leg skipped)"
    exit 0
fi

LOG="$WORK/mdserve.log"
"$MDSERVE" -addr 127.0.0.1:0 -workload c17 >"$LOG" 2>&1 &
PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^mdserve: listening on //p' "$LOG")
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { cat "$LOG"; fail "mdserve died at startup"; }
    sleep 0.1
done
[ -n "$ADDR" ] || { cat "$LOG"; fail "no listen line after 5s"; }
URL="http://$ADDR"

code=$(curl -s -o "$WORK/ingest_reply.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/x-ndjson' \
    --data-binary @"$STREAM" "$URL/v1/ingest?workload=c17")
[ "$code" = 200 ] || fail "/v1/ingest returned $code: $(cat "$WORK/ingest_reply.json")"
grep -q '"shed":0' "$WORK/ingest_reply.json" \
    || fail "ingest shed records: $(cat "$WORK/ingest_reply.json")"
DEDUPED=$(sed -n 's/.*"deduped":\([0-9]*\).*/\1/p' "$WORK/ingest_reply.json")
[ -n "$DEDUPED" ] && [ "$DEDUPED" -gt 100 ] \
    || fail "serve-path dedupe did not bite: $(cat "$WORK/ingest_reply.json")"

curl -s "$URL/v1/volume/summary?workload=c17" >"$WORK/summary_serve.json"
"$MDTREND" compare-volume "$WORK/summary_j4.json" "$WORK/summary_serve.json" \
    >"$WORK/compare_serve.log" 2>&1 \
    || { cat "$WORK/compare_serve.log"; fail "serve-path aggregate diverges from the CLI aggregate"; }

kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "mdserve did not exit within 10s of SIGTERM"
    sleep 0.1
done
wait "$PID" || fail "mdserve exited non-zero after SIGTERM"
PID=""

echo "vol_smoke: OK (dedupe ratio $RATIO, serve-path deduped $DEDUPED/200)"
