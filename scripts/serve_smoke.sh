#!/bin/sh
# serve_smoke.sh: end-to-end proof that mdserve boots, serves, exposes
# metrics, and drains cleanly on SIGTERM. Run via `make serve-smoke`.
#
# The script starts mdserve on an ephemeral port with the c17 and add16
# workloads, fires a burst of diagnose requests (including one batch and
# one explained request), checks /metrics for the serve metric family,
# then SIGTERMs the daemon and requires a clean exit with a service
# record written. Requires curl.
set -eu

if ! command -v curl >/dev/null 2>&1; then
    echo "serve_smoke: curl not installed, skipping" >&2
    exit 0
fi

BIN=${BIN:-bin/mdserve}
WORK=$(mktemp -d)
LOG="$WORK/mdserve.log"
REC="$WORK/serve_record.json"
PID2=""
trap 'kill "$PID" 2>/dev/null || true; [ -n "$PID2" ] && kill "$PID2" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# -trace-sample 1 retains every request's span tree so the /debug/trace
# assertion below is deterministic. -prof enables the continuous
# profiler (scraped below at /debug/prof), and -debug-addr boots the
# pprof debug server for the mutex-profile scrape.
"$BIN" -addr 127.0.0.1:0 -workload c17 -workload add16 \
    -max-batch 4 -queue-depth 16 -service-record-out "$REC" \
    -trace-sample 1 -trace-spans-out "$WORK/traces.jsonl" \
    -prof -debug-addr 127.0.0.1:0 \
    >"$LOG" 2>&1 &
PID=$!

# Wait for the listen line (it carries the bound port).
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^mdserve: listening on //p' "$LOG")
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "serve_smoke: mdserve died at startup:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve_smoke: no listen line after 5s:"; cat "$LOG"; exit 1; }
URL="http://$ADDR"

fail() { echo "serve_smoke: $1" >&2; cat "$LOG" >&2; exit 1; }

code=$(curl -s -o /dev/null -w '%{http_code}' "$URL/healthz")
[ "$code" = 200 ] || fail "healthz returned $code"
code=$(curl -s -o /dev/null -w '%{http_code}' "$URL/readyz")
[ "$code" = 200 ] || fail "readyz returned $code"

# A deterministic c17 single-fail response: pattern 7 failing PO 0.
REQ='{"workload":"c17","response":{"fails":[{"pattern":7,"pos":[0]}]}}'
BATCH='{"workload":"c17","devices":[{"response":{"fails":[{"pattern":7,"pos":[0]}]}},{"response":{"fails":[]}}]}'

# Burst of concurrent requests; every one must come back 200. Wait on
# the curl PIDs explicitly — a bare `wait` would also wait on mdserve.
CURLS=""
for i in 1 2 3 4 5 6 7 8; do
    curl -s -o "$WORK/resp_$i" -w '%{http_code}\n' \
        -X POST -d "$REQ" "$URL/v1/diagnose" >"$WORK/code_$i" &
    CURLS="$CURLS $!"
done
for p in $CURLS; do wait "$p"; done
for i in 1 2 3 4 5 6 7 8; do
    code=$(cat "$WORK/code_$i")
    [ "$code" = 200 ] || fail "diagnose request $i returned $code: $(cat "$WORK/resp_$i")"
    grep -q '"multiplet"' "$WORK/resp_$i" || fail "request $i returned no multiplet"
done

code=$(curl -s -o "$WORK/batch" -w '%{http_code}' -X POST -d "$BATCH" "$URL/v1/diagnose/batch")
[ "$code" = 200 ] || fail "batch returned $code: $(cat "$WORK/batch")"
code=$(curl -s -o "$WORK/explain" -w '%{http_code}' -X POST -d "$REQ" "$URL/v1/diagnose?explain=1")
[ "$code" = 200 ] || fail "explain returned $code"
grep -q '"explain"' "$WORK/explain" || fail "explain=1 returned no narrative"

curl -s "$URL/v1/workloads" | grep -q '"c17"' || fail "workloads missing c17"
curl -s "$URL/metrics" >"$WORK/metrics"
for m in multidiag_serve_requests multidiag_serve_batches multidiag_serve_service_us_count; do
    grep -q "^$m" "$WORK/metrics" || fail "/metrics missing $m"
done

# Tail-captured request traces: after the burst, /debug/trace must hold
# schema-valid span trees that cover the whole request path.
curl -s "$URL/debug/trace" >"$WORK/traces"
[ -s "$WORK/traces" ] || fail "/debug/trace returned no traces at sample rate 1"
grep -q '"schema":"mdtrace/v1"' "$WORK/traces" || fail "/debug/trace records missing mdtrace/v1 schema"
for span in serve.request serve.execute diagnose score fsim.worker; do
    grep -q "\"name\":\"$span\"" "$WORK/traces" || fail "/debug/trace trees missing a $span span"
done
if [ -x bin/mdtrace ]; then
    bin/mdtrace "$WORK/traces" >"$WORK/mdtrace_report" || fail "mdtrace could not analyze /debug/trace output"
    grep -q 'critical path' "$WORK/mdtrace_report" || fail "mdtrace report missing critical path"
fi

# Continuous profiler: after the burst, /debug/prof must stream
# mdprof/v1 snapshots whose phase tables cover the request path.
curl -s "$URL/debug/prof" >"$WORK/prof"
[ -s "$WORK/prof" ] || fail "/debug/prof returned no snapshots with -prof"
grep -q '"schema":"mdprof/v1"' "$WORK/prof" || fail "/debug/prof records missing mdprof/v1 schema"
for phase in score extract; do
    grep -q "\"name\":\"$phase\"" "$WORK/prof" || fail "/debug/prof phase table missing $phase"
done
if [ -x bin/mdprof ]; then
    bin/mdprof report "$WORK/prof" >"$WORK/mdprof_report" || fail "mdprof could not analyze /debug/prof output"
    grep -q 'score' "$WORK/mdprof_report" || fail "mdprof report missing the score phase"
fi

# The obs debug server (pprof mux) also carries /debug/prof plus the
# contention endpoints; its bound address is on the startup log line.
DEBUG_ADDR=$(sed -n 's|^mdserve: debug server on http://\(.*\)/debug/pprof/$|\1|p' "$LOG")
[ -n "$DEBUG_ADDR" ] || fail "no debug server line in log with -debug-addr"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$DEBUG_ADDR/debug/pprof/mutex")
[ "$code" = 200 ] || fail "/debug/pprof/mutex returned $code"
curl -s "http://$DEBUG_ADDR/debug/prof" | grep -q '"schema":"mdprof/v1"' \
    || fail "debug-mux /debug/prof missing mdprof/v1 schema"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "mdserve did not exit within 10s of SIGTERM"
    sleep 0.1
done
wait "$PID" && rc=0 || rc=$?
[ "$rc" = 0 ] || fail "mdserve exited $rc after SIGTERM"
grep -q "mdserve: drained" "$LOG" || fail "no drain confirmation in log"
[ -s "$REC" ] || fail "service record not written"
grep -q '"requests": 11' "$REC" || fail "service record miscounted requests: $(cat "$REC")"
[ -s "$WORK/traces.jsonl" ] || fail "-trace-spans-out sink not written"

# Incident observatory leg: a second instance armed with -incident-dir
# and -max-inflight 1 is forced to shed deterministically — a batch's
# devices are admitted sequentially before any completes, so the second
# device of a two-device batch always sheds — and the shed must spool a
# replayable bundle. Separate instance so the main run's request-count
# assertion above stays exact.
INCDIR="$WORK/incidents"
LOG2="$WORK/mdserve2.log"
"$BIN" -addr 127.0.0.1:0 -workload c17 -max-inflight 1 \
    -incident-dir "$INCDIR" -incident-min-interval 0 \
    >"$LOG2" 2>&1 &
PID2=$!
ADDR2=""
for _ in $(seq 1 50); do
    ADDR2=$(sed -n 's/^mdserve: listening on //p' "$LOG2")
    [ -n "$ADDR2" ] && break
    kill -0 "$PID2" 2>/dev/null || { echo "serve_smoke: incident mdserve died at startup:"; cat "$LOG2"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR2" ] || { echo "serve_smoke: incident instance: no listen line after 5s:"; cat "$LOG2"; exit 1; }
URL2="http://$ADDR2"

code=$(curl -s -o "$WORK/shed_batch" -w '%{http_code}' -X POST -d "$BATCH" "$URL2/v1/diagnose/batch")
[ "$code" = 200 ] || fail "incident batch returned $code: $(cat "$WORK/shed_batch")"
grep -q '"error"' "$WORK/shed_batch" || fail "incident batch shed no device at -max-inflight 1"

BUNDLE=$(ls "$INCDIR"/incident-*-shed.json 2>/dev/null | head -1)
[ -n "$BUNDLE" ] || fail "shed spooled no incident bundle in $INCDIR"
grep -q '"schema": "mdincident/v1"' "$BUNDLE" || fail "bundle missing mdincident/v1 schema"
curl -s "$URL2/debug/incidents" >"$WORK/incidents_index"
grep -q '"trigger":"shed"' "$WORK/incidents_index" || fail "/debug/incidents does not index the shed bundle"

# Replay the bundle offline: byte-identical reports at -j 1, 4 and 8.
if [ -x bin/mdreplay ]; then
    bin/mdreplay -verify "$BUNDLE" >"$WORK/replay_report" \
        || fail "mdreplay -verify failed on $BUNDLE: $(cat "$WORK/replay_report")"
    grep -q 'PASS' "$WORK/replay_report" || fail "mdreplay -verify did not report PASS"
fi

kill -TERM "$PID2"
i=0
while kill -0 "$PID2" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "incident mdserve did not exit within 10s of SIGTERM"
    sleep 0.1
done
wait "$PID2" || fail "incident mdserve exited non-zero after SIGTERM"
PID2=""

echo "serve_smoke: OK ($(sed -n 's/.*"service_p95_ms": //p' "$REC" | tr -d ',') ms p95)"
