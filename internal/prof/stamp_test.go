package prof

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestPinWithStampsJoinKeys pins the snapshot-join contract: a PinWith
// carries the triggering request's IDs into the pinned ring and through
// the JSONL serialization, so /debug/prof pins line up with /debug/trace
// trees without timestamp guessing — while routine pins and samples stay
// unstamped (the fields serialize away entirely).
func TestPinWithStampsJoinKeys(t *testing.T) {
	c := New(Config{RingSize: 4, MinPinInterval: -1})
	install(t, c)

	c.PinWith("shed:inflight", "req-abc", "trace-def")
	c.Pin("panic")

	snaps := c.Pinned()
	if len(snaps) != 2 {
		t.Fatalf("pinned ring holds %d snapshots, want 2", len(snaps))
	}
	if snaps[0].RequestID != "req-abc" || snaps[0].TraceID != "trace-def" {
		t.Fatalf("PinWith snapshot not stamped: %+v", snaps[0])
	}
	if snaps[1].RequestID != "" || snaps[1].TraceID != "" {
		t.Fatalf("plain Pin snapshot carries IDs: %+v", snaps[1])
	}

	// Wire form: stamped pins serialize the keys, unstamped records omit
	// them (no noise in mdprof streams that predate the join).
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if !bytes.Contains(lines[0], []byte(`"request_id":"req-abc"`)) || !bytes.Contains(lines[0], []byte(`"trace_id":"trace-def"`)) {
		t.Fatalf("stamped pin line missing join keys: %s", lines[0])
	}
	for _, line := range lines[1:] {
		if bytes.Contains(line, []byte("request_id")) || bytes.Contains(line, []byte("trace_id")) {
			t.Fatalf("unstamped record serialized join keys: %s", line)
		}
	}
	// Round-trip: the stamped record decodes back with its keys.
	var s Snapshot
	if err := json.Unmarshal(lines[0], &s); err != nil {
		t.Fatal(err)
	}
	if s.RequestID != "req-abc" || s.TraceID != "trace-def" || s.Kind != KindPin {
		t.Fatalf("round-tripped pin mangled: %+v", s)
	}
}

// TestPinWithRateLimitShared pins that PinWith and Pin share one limiter:
// a shed storm carrying IDs is still one metrics.Read per interval.
func TestPinWithRateLimitShared(t *testing.T) {
	c := New(Config{RingSize: 8, MinPinInterval: time.Hour})
	install(t, c)
	c.PinWith("shed:queue", "req-1", "")
	c.Pin("shed:queue")
	c.PinWith("shed:queue", "req-2", "")
	if got := len(c.Pinned()); got != 1 {
		t.Fatalf("pins retained = %d, want 1 (shared rate limit)", got)
	}
}

// TestSummaryAndPinnedNilSafe pins the nil-collector contract of the
// exported accessors the incident bundler relies on.
func TestSummaryAndPinnedNilSafe(t *testing.T) {
	var c *Collector
	if c.Pinned() != nil {
		t.Fatal("nil collector returned pins")
	}
	if _, ok := c.Summary("x"); ok {
		t.Fatal("nil collector produced a summary")
	}
	c = New(Config{})
	defer c.Stop()
	s, ok := c.Summary("incident:slow")
	if !ok || s.Kind != KindSummary || s.Reason != "incident:slow" {
		t.Fatalf("summary: ok=%v %+v", ok, s)
	}
	// Summary must not be retained in any ring.
	if got := len(c.Snapshots()); got != 0 {
		t.Fatalf("summary leaked into rings: %d records", got)
	}
}
