// Package prof is the continuous-profiling layer of the diagnosis
// pipeline: phase-attributed allocation and contention accounting on top
// of runtime/metrics, pprof label propagation so CPU profiles slice by
// engine stage, and a bounded snapshot ring served at /debug/prof (with an
// optional JSONL sink cmd/mdprof analyzes offline).
//
// Everything is stdlib-only and follows the obs layer's nil-tolerance
// contract: with no collector installed (the default), every entry point —
// PhaseCtx, Pin, DoWorker, WithWorkload — degrades to an inert no-op whose
// cost is one atomic pointer load, so instrumented engines need no "is
// profiling on?" branches and the disabled fast path stays free
// (BenchmarkDiagnoseProfiled in internal/core pins the enabled-path
// overhead).
//
// Attribution semantics: runtime/metrics readings are process-global, so a
// phase delta attributes everything the process allocated (or waited on)
// between the token's Begin and End — including goroutines the phase
// spawned, which is exactly what the fault-parallel score phase wants.
// When two phases are open concurrently (e.g. two served diagnoses
// in-flight at once) their windows overlap and both phases absorb the
// shared activity; per-phase numbers then over-count but remain
// comparable run-to-run, which is what the mdprof gate needs. Single-run
// CLI diagnoses have strictly sequential phases, and there the per-phase
// deltas sum to the run's total allocation (asserted to within 10% by
// internal/core's TestProfPhaseAllocAttribution).
package prof

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"multidiag/internal/obs"
)

// runtime/metrics sources feeding phase deltas and snapshots. KindBad
// guards in readInto keep the collector inert for any name a given
// toolchain does not export (/sync/mutex/wait/total:seconds is Go ≥ 1.20;
// /sched/pauses/total/gc:seconds moved under /sched/ in Go 1.22).
const (
	srcAllocBytes = "/gc/heap/allocs:bytes"
	srcAllocObjs  = "/gc/heap/allocs:objects"
	srcMutexWait  = "/sync/mutex/wait/total:seconds"
	srcGCPause    = "/sched/pauses/total/gc:seconds"
	srcGoro       = "/sched/goroutines:goroutines"
	srcHeap       = "/memory/classes/heap/objects:bytes"
)

var sampleNames = []string{srcAllocBytes, srcAllocObjs, srcMutexWait, srcGCPause, srcGoro, srcHeap}

// samplePool recycles the metrics.Sample slices readings go through, so a
// phase boundary on the enabled path costs a metrics.Read and no steady
// allocation (runtime/metrics reuses a sample's histogram memory when the
// same slice is presented again).
var samplePool = sync.Pool{New: func() any {
	s := make([]metrics.Sample, len(sampleNames))
	for i, n := range sampleNames {
		s[i].Name = n
	}
	return &s
}}

// reading is one instant's cumulative process counters.
type reading struct {
	allocBytes int64
	allocObjs  int64
	// mutexWaitNS is the cumulative time goroutines spent blocked on
	// sync.Mutex/RWMutex (the contention observatory's primary signal).
	mutexWaitNS int64
	// gcPauseNS is a bucket-weighted estimate of cumulative stop-the-world
	// GC pause time (the runtime only exports the distribution).
	gcPauseNS  int64
	goroutines int64
	heapBytes  int64
}

// readNow samples every source once.
func readNow() reading {
	sp := samplePool.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	var r reading
	for i := range *sp {
		s := &(*sp)[i]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v := int64(s.Value.Uint64())
			switch s.Name {
			case srcAllocBytes:
				r.allocBytes = v
			case srcAllocObjs:
				r.allocObjs = v
			case srcGoro:
				r.goroutines = v
			case srcHeap:
				r.heapBytes = v
			}
		case metrics.KindFloat64:
			if s.Name == srcMutexWait {
				r.mutexWaitNS = int64(s.Value.Float64() * 1e9)
			}
		case metrics.KindFloat64Histogram:
			if s.Name == srcGCPause {
				r.gcPauseNS = histTotalNS(s.Value.Float64Histogram())
			}
		}
	}
	samplePool.Put(sp)
	return r
}

// histTotalNS estimates the cumulative total of a runtime float64
// histogram in nanoseconds: count × bucket upper bound (the same
// upper-bound convention the obs quantiles use; ±Inf bounds clamp to the
// finite neighbour). The estimate is monotone across reads, so deltas of
// estimates are estimates of deltas.
func histTotalNS(fh *metrics.Float64Histogram) int64 {
	if fh == nil {
		return 0
	}
	var total float64
	for b, n := range fh.Counts {
		if n == 0 {
			continue
		}
		bound := fh.Buckets[b+1]
		if math.IsInf(bound, +1) {
			bound = fh.Buckets[b]
		}
		if math.IsInf(bound, -1) || bound < 0 {
			bound = 0
		}
		total += float64(n) * bound
	}
	return int64(total * 1e9)
}

// PhaseProf is the accumulated profile of one phase name: how many phase
// windows closed, their wall time, and the process-global deltas absorbed
// inside them.
type PhaseProf struct {
	Name         string `json:"name"`
	Count        int64  `json:"n"`
	WallNS       int64  `json:"wall_ns"`
	AllocBytes   int64  `json:"alloc_bytes"`
	AllocObjects int64  `json:"alloc_objects"`
	MutexWaitNS  int64  `json:"mutex_wait_ns"`
	GCPauseNS    int64  `json:"gc_pause_ns"`
}

// phaseAgg is a PhaseProf plus its cached registry counter handles, so a
// phase End updates the obs registry lock-free after the first window.
type phaseAgg struct {
	PhaseProf
	cBytes, cObjs, cMutex, cGC *obs.Counter
}

// Config tunes a Collector. The zero value is a valid in-memory collector:
// phase accounting and pins only, no sampler goroutine, no sink.
type Config struct {
	// Registry, when set, receives per-phase counters
	// (prof.phase.<name>.alloc_bytes / .alloc_objects / .mutex_wait_ns /
	// .gc_pause_ns), which flow through the existing exports: run-record
	// snapshots, Prometheus /metrics and the mddiag -v footer.
	Registry *obs.Registry
	// RingSize is the capacity of EACH snapshot ring (pinned and rolling
	// get one each, so routine sampling can never evict a shed or panic
	// pin). Default 64.
	RingSize int
	// SampleInterval starts a background sampler writing one "sample"
	// snapshot per tick (0: no sampler; /debug/prof still serves a live
	// summary).
	SampleInterval time.Duration
	// Sink, when set, receives every retained snapshot as one JSON line,
	// write-through at snapshot time, plus a final "summary" at Stop.
	// Write errors are sticky and surface from Stop.
	Sink interface{ Write(p []byte) (int, error) }
	// MinPinInterval rate-limits Pin so a shed storm cannot turn the hot
	// admission path into a metrics.Read storm. Default 100ms; negative
	// disables the limit (tests).
	MinPinInterval time.Duration
}

// Collector owns the phase aggregates and the snapshot rings. Safe for
// concurrent use. Create with New, install with Enable, stop with Stop.
type Collector struct {
	cfg   Config
	epoch time.Time
	base  reading

	mu     sync.Mutex
	phases map[string]*phaseAgg

	ringMu  sync.Mutex
	pinned  ring
	rolling ring
	seq     int64

	sinkMu  sync.Mutex
	sinkErr error

	lastPinMu sync.Mutex
	lastPin   time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a collector and, when Config.SampleInterval is set, starts
// its sampler goroutine (stopped by Stop).
func New(cfg Config) *Collector {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	if cfg.MinPinInterval == 0 {
		cfg.MinPinInterval = 100 * time.Millisecond
	}
	c := &Collector{
		cfg:    cfg,
		epoch:  time.Now(),
		base:   readNow(),
		phases: make(map[string]*phaseAgg),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	c.pinned.buf = make([]Snapshot, cfg.RingSize)
	c.rolling.buf = make([]Snapshot, cfg.RingSize)
	if cfg.SampleInterval > 0 {
		go c.loop(cfg.SampleInterval)
	} else {
		close(c.done)
	}
	return c
}

func (c *Collector) loop(interval time.Duration) {
	defer close(c.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.snapshot(KindSample, "")
		}
	}
}

// Stop ends the sampler (if any), writes one final "summary" snapshot to
// the ring and sink, and returns the sticky sink error. Idempotent; safe
// on a nil collector.
func (c *Collector) Stop() error {
	if c == nil {
		return nil
	}
	c.stopOnce.Do(func() {
		close(c.stop)
		<-c.done
		c.snapshot(KindSummary, "")
	})
	c.sinkMu.Lock()
	defer c.sinkMu.Unlock()
	return c.sinkErr
}

// Phase opens a phase window: the returned token holds the readings at
// open and folds the deltas into the collector at End. Prefer PhaseCtx at
// call sites that have a context — it also propagates the pprof label.
func (c *Collector) Phase(name string) PhaseToken {
	if c == nil {
		return PhaseToken{}
	}
	return PhaseToken{c: c, name: name, start: time.Now(), base: readNow()}
}

// record folds one closed window into the aggregate and the registry.
func (c *Collector) record(name string, wall time.Duration, start, end reading) {
	db := end.allocBytes - start.allocBytes
	do := end.allocObjs - start.allocObjs
	dm := end.mutexWaitNS - start.mutexWaitNS
	dg := end.gcPauseNS - start.gcPauseNS
	c.mu.Lock()
	a := c.phases[name]
	if a == nil {
		a = &phaseAgg{PhaseProf: PhaseProf{Name: name}}
		if r := c.cfg.Registry; r != nil {
			a.cBytes = r.Counter("prof.phase." + name + ".alloc_bytes")
			a.cObjs = r.Counter("prof.phase." + name + ".alloc_objects")
			a.cMutex = r.Counter("prof.phase." + name + ".mutex_wait_ns")
			a.cGC = r.Counter("prof.phase." + name + ".gc_pause_ns")
		}
		c.phases[name] = a
	}
	a.Count++
	a.WallNS += wall.Nanoseconds()
	a.AllocBytes += db
	a.AllocObjects += do
	a.MutexWaitNS += dm
	a.GCPauseNS += dg
	c.mu.Unlock()
	a.cBytes.Add(db)
	a.cObjs.Add(do)
	a.cMutex.Add(dm)
	a.cGC.Add(dg)
}

// Phases returns the per-phase aggregates sorted by descending allocated
// bytes (ties by name), the order every attribution table renders in.
func (c *Collector) Phases() []PhaseProf {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]PhaseProf, 0, len(c.phases))
	for _, a := range c.phases {
		out = append(out, a.PhaseProf)
	}
	c.mu.Unlock()
	sortPhases(out)
	return out
}

func sortPhases(out []PhaseProf) {
	// insertion sort: phase counts are small and this keeps the import set
	// lean for the hot registry-free path.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := &out[j-1], &out[j]
			if a.AllocBytes > b.AllocBytes || (a.AllocBytes == b.AllocBytes && a.Name <= b.Name) {
				break
			}
			*a, *b = *b, *a
		}
	}
}

// PhaseToken is one in-flight phase window. The zero value is inert.
type PhaseToken struct {
	c     *Collector
	name  string
	start time.Time
	base  reading
	// restore, when non-nil, is the context whose pprof labels End
	// restores onto the goroutine (set by PhaseCtx).
	restore restoreCtx
}

// End closes the window, folding the process-global deltas since the
// token opened into the phase aggregate (and restoring the goroutine's
// previous pprof labels when PhaseCtx set them). Ending a zero token is a
// no-op.
func (t PhaseToken) End() {
	if t.c == nil {
		return
	}
	end := readNow()
	t.c.record(t.name, time.Since(t.start), t.base, end)
	t.restoreLabels()
}
