// pprof label propagation: with a collector installed, engine stages and
// fault-simulation workers tag their goroutines with phase / workload /
// worker labels, so `go tool pprof -tagfocus` (or the labels view) slices
// a -cpuprofile or /debug/pprof/profile capture by engine stage. Labels
// ride the context, so a phase opened in core flows into the worker
// goroutines fsim spawns under it. With no collector every helper is a
// pass-through: one atomic load, no context or closure allocation.
package prof

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
)

// active is the installed process-wide collector. It stays nil —
// profiling disabled, the free path — until a CLI, service or test
// installs one via Enable.
var active atomic.Pointer[Collector]

// Active returns the installed collector, or nil when profiling is
// disabled.
func Active() *Collector { return active.Load() }

// Enable installs c as the process-wide collector (nil uninstalls, same
// as Disable).
func Enable(c *Collector) { active.Store(c) }

// Disable uninstalls the process-wide collector.
func Disable() { active.Store(nil) }

// Enabled reports whether a collector is installed.
func Enabled() bool { return active.Load() != nil }

// restoreCtx is the context whose labels PhaseToken.End restores.
type restoreCtx = context.Context

func (t PhaseToken) restoreLabels() {
	if t.restore != nil {
		pprof.SetGoroutineLabels(t.restore)
	}
}

// PhaseCtx opens a phase window on the installed collector AND tags the
// returned context and the calling goroutine with the pprof label
// phase=name. The token's End folds the runtime/metrics deltas and
// restores the goroutine's previous labels. With profiling disabled it
// returns (ctx, inert token) untouched.
func PhaseCtx(ctx context.Context, name string) (context.Context, PhaseToken) {
	c := active.Load()
	if c == nil {
		return ctx, PhaseToken{}
	}
	lctx := pprof.WithLabels(ctx, pprof.Labels("phase", name))
	pprof.SetGoroutineLabels(lctx)
	t := c.Phase(name)
	t.restore = ctx
	return lctx, t
}

// WithWorkload tags ctx and the calling goroutine with workload=name
// (which every phase and worker label opened under it inherits) and
// returns the restore function for the previous labels. Serving and
// campaign layers call it once per diagnosis.
func WithWorkload(ctx context.Context, name string) (context.Context, func()) {
	if active.Load() == nil {
		return ctx, nop
	}
	lctx := pprof.WithLabels(ctx, pprof.Labels("workload", name))
	pprof.SetGoroutineLabels(lctx)
	return lctx, func() { pprof.SetGoroutineLabels(ctx) }
}

func nop() {}

// DoWorker runs f with the goroutine labeled worker=<n> on top of
// whatever labels ctx already carries (phase, workload). It wraps the
// body of fault-parallel pool workers; with profiling disabled it calls f
// directly.
func DoWorker(ctx context.Context, worker int, f func(context.Context)) {
	if active.Load() == nil {
		f(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels("worker", strconv.Itoa(worker)), f)
}

// Pin snapshots the collector state into the always-keep ring (see
// Collector.Pin) on the installed collector; no-op when disabled.
func Pin(reason string) { active.Load().Pin(reason) }

// PinWith is Pin with the triggering request's request/trace IDs stamped
// into the snapshot (see Collector.PinWith); no-op when disabled.
func PinWith(reason, requestID, traceID string) {
	active.Load().PinWith(reason, requestID, traceID)
}
