package prof

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"multidiag/internal/obs"
)

// Flags bundles the continuous-profiling command-line flags shared by the
// CLIs, registered alongside obs.Flags. Any one of them being set enables
// the collector; with all at their zero value Setup is a no-op and the
// engine keeps its free disabled path.
type Flags struct {
	// Enable turns the collector on with defaults even when no sink or
	// sampler is requested (phase attribution + /debug/prof only).
	Enable bool
	// Out is the JSONL(.gz) snapshot sink cmd/mdprof analyzes.
	Out string
	// Sample starts the periodic background sampler (0: snapshots only at
	// pins and exit).
	Sample time.Duration
	// Ring overrides the per-ring snapshot capacity (0: default 64).
	Ring int
}

// Register installs the flags on fs (use flag.CommandLine for main).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Enable, "prof", false, "enable phase-attributed profiling (runtime/metrics deltas, pprof labels, /debug/prof snapshots)")
	fs.StringVar(&f.Out, "prof-out", "", "write profiling snapshots as JSONL to `file` (.gz compresses; implies -prof; analyze with mdprof)")
	fs.DurationVar(&f.Sample, "prof-sample", 0, "take a profiling snapshot every `interval` (implies -prof; 0 = only at pins and exit)")
	fs.IntVar(&f.Ring, "prof-ring", 0, "snapshot ring capacity per ring (0 = default 64)")
}

// registerDebug puts /debug/prof on the default mux exactly once, so it
// rides the same listener obs's -debug-addr starts (which serves
// http.DefaultServeMux). Registering eagerly is harmless: the handler
// 404s while no collector is installed.
var registerDebug sync.Once

// Setup builds, installs and (via the returned finish) tears down the
// collector the flags describe. reg may be nil (no registry counters).
// When no profiling flag is set it returns a no-op finish. Call finish
// before the obs finish so the final summary snapshot lands in the sink
// while the process is still fully up.
func (f *Flags) Setup(reg *obs.Registry) (func() error, error) {
	if !f.Enable && f.Out == "" && f.Sample <= 0 {
		return func() error { return nil }, nil
	}
	var sink io.WriteCloser
	if f.Out != "" {
		var err error
		sink, err = obs.CreateSink(f.Out)
		if err != nil {
			return nil, fmt.Errorf("prof-out: %w", err)
		}
	}
	cfg := Config{Registry: reg, RingSize: f.Ring, SampleInterval: f.Sample}
	if sink != nil {
		cfg.Sink = sink
	}
	c := New(cfg)
	Enable(c)
	registerDebug.Do(func() { http.Handle("/debug/prof", Handler()) })
	finish := func() error {
		Disable()
		firstErr := c.Stop()
		if sink != nil {
			if err := sink.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return finish, nil
}
