// Continuous snapshots: the collector periodically (and on demand)
// freezes its cumulative state — process counters since the collector's
// epoch plus the per-phase attribution table — into a bounded pair of
// rings. Routine "sample" ticks roll through one ring; "pin" snapshots
// (taken at interesting moments: load shed, engine panic) land in a
// dedicated always-keep ring the samples can never evict, mirroring the
// tail-capture design of internal/trace. GET /debug/prof serves both
// rings plus a live summary as JSONL; a configured sink receives the same
// records write-through for offline mdprof analysis.
package prof

import (
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// Schema identifies mdprof snapshot records.
const Schema = "mdprof/v1"

// Snapshot kinds.
const (
	// KindSample is a routine sampler tick.
	KindSample = "sample"
	// KindPin is an always-keep snapshot taken at an interesting moment
	// (Reason says why: "shed:queue", "panic", …).
	KindPin = "pin"
	// KindSummary is the final snapshot Stop writes (and the live record
	// /debug/prof appends at scrape time).
	KindSummary = "summary"
)

// Snapshot is one JSONL record: cumulative process deltas since the
// collector epoch plus the phase attribution table at that instant.
type Snapshot struct {
	Schema string `json:"schema"`
	Kind   string `json:"kind"`
	Seq    int64  `json:"seq"`
	TSNS   int64  `json:"ts_ns"`
	Reason string `json:"reason,omitempty"`
	// RequestID / TraceID join a pinned snapshot to the request that
	// triggered it: the same IDs the serve layer stamps on responses and
	// span trees, so a /debug/prof pin lines up with its /debug/trace tree
	// without timestamp guessing. Empty on sampler ticks and summaries.
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	// Instantaneous gauges.
	HeapBytes  int64 `json:"heap_bytes"`
	Goroutines int64 `json:"goroutines"`
	// Cumulative since the collector epoch.
	AllocBytes   int64 `json:"alloc_bytes"`
	AllocObjects int64 `json:"alloc_objects"`
	MutexWaitNS  int64 `json:"mutex_wait_ns"`
	GCPauseNS    int64 `json:"gc_pause_ns"`
	// Phases is the attribution table (cumulative; diff two snapshots to
	// window it).
	Phases []PhaseProf `json:"phases,omitempty"`
}

// ring is a fixed-capacity overwrite-oldest snapshot buffer.
type ring struct {
	buf  []Snapshot
	next int
	full bool
}

func (r *ring) push(s Snapshot) {
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshotInto appends the ring's records oldest-first.
func (r *ring) snapshotInto(out []Snapshot) []Snapshot {
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// take freezes the current state (does not store it anywhere).
func (c *Collector) take(kind, reason string) Snapshot {
	now := readNow()
	c.ringMu.Lock()
	seq := c.seq
	c.seq++
	c.ringMu.Unlock()
	return Snapshot{
		Schema:       Schema,
		Kind:         kind,
		Seq:          seq,
		TSNS:         time.Since(c.epoch).Nanoseconds(),
		Reason:       reason,
		HeapBytes:    now.heapBytes,
		Goroutines:   now.goroutines,
		AllocBytes:   now.allocBytes - c.base.allocBytes,
		AllocObjects: now.allocObjs - c.base.allocObjs,
		MutexWaitNS:  now.mutexWaitNS - c.base.mutexWaitNS,
		GCPauseNS:    now.gcPauseNS - c.base.gcPauseNS,
		Phases:       c.Phases(),
	}
}

// snapshot takes, retains and sinks one record.
func (c *Collector) snapshot(kind, reason string) {
	s := c.take(kind, reason)
	c.ringMu.Lock()
	if kind == KindPin {
		c.pinned.push(s)
	} else {
		c.rolling.push(s)
	}
	c.ringMu.Unlock()
	c.sink(s)
}

// sink writes one record to the configured sink; the first write or
// encode error is sticky and surfaces from Stop.
func (c *Collector) sink(s Snapshot) {
	w := c.cfg.Sink
	if w == nil {
		return
	}
	line, err := json.Marshal(s)
	if err == nil {
		line = append(line, '\n')
		_, err = w.Write(line)
	}
	if err != nil {
		c.sinkMu.Lock()
		if c.sinkErr == nil {
			c.sinkErr = err
		}
		c.sinkMu.Unlock()
	}
}

// Pin takes an always-keep snapshot with the given reason. Calls are
// rate-limited to one per Config.MinPinInterval so a shed storm cannot
// turn the admission path into a metrics.Read storm; within the limit the
// call is a cheap timestamp check. Safe on a nil collector.
func (c *Collector) Pin(reason string) { c.PinWith(reason, "", "") }

// PinWith is Pin with the triggering request's join keys stamped into the
// snapshot, so the pin can be matched to its captured trace tree and log
// lines. Empty IDs are fine (they serialize away).
func (c *Collector) PinWith(reason, requestID, traceID string) {
	if c == nil {
		return
	}
	if c.cfg.MinPinInterval > 0 {
		c.lastPinMu.Lock()
		now := time.Now()
		if now.Sub(c.lastPin) < c.cfg.MinPinInterval {
			c.lastPinMu.Unlock()
			return
		}
		c.lastPin = now
		c.lastPinMu.Unlock()
	}
	s := c.take(KindPin, reason)
	s.RequestID = requestID
	s.TraceID = traceID
	c.ringMu.Lock()
	c.pinned.push(s)
	c.ringMu.Unlock()
	c.sink(s)
}

// Pinned returns only the always-keep ring, oldest-first — the snapshots
// worth bundling with an incident (sampler ticks are ambient noise there).
// Nil collector → nil.
func (c *Collector) Pinned() []Snapshot {
	if c == nil {
		return nil
	}
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	return c.pinned.snapshotInto(nil)
}

// Summary freezes one live "summary" snapshot — the cumulative phase
// attribution table at call time — without retaining it in any ring.
// ok is false on a nil collector.
func (c *Collector) Summary(reason string) (s Snapshot, ok bool) {
	if c == nil {
		return Snapshot{}, false
	}
	return c.take(KindSummary, reason), true
}

// Snapshots returns the retained records: the pinned ring first, then the
// rolling ring, each oldest-first. Nil collector → nil.
func (c *Collector) Snapshots() []Snapshot {
	if c == nil {
		return nil
	}
	c.ringMu.Lock()
	defer c.ringMu.Unlock()
	out := make([]Snapshot, 0, len(c.pinned.buf)+len(c.rolling.buf))
	out = c.pinned.snapshotInto(out)
	out = c.rolling.snapshotInto(out)
	return out
}

// WriteTo streams the retained snapshots as JSONL — pins first, then
// samples — followed by one live "summary" record frozen at call time, so
// a scrape always carries the current attribution table even when no
// sampler tick has fired yet. Implements io.WriterTo.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	if c == nil {
		return 0, nil
	}
	var n int64
	enc := json.NewEncoder(w)
	for _, s := range c.Snapshots() {
		if err := enc.Encode(s); err != nil {
			return n, err
		}
		n++
	}
	return n, enc.Encode(c.take(KindSummary, "live"))
}

// Handler serves the installed collector's snapshots at GET /debug/prof
// (404 while profiling is disabled, so scrapers fail loudly instead of
// reading an empty body).
func Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		c := Active()
		if c == nil {
			http.Error(rw, "profiling disabled (enable with -prof / -prof-out / -prof-sample)", http.StatusNotFound)
			return
		}
		rw.Header().Set("Content-Type", "application/x-ndjson")
		if _, err := c.WriteTo(rw); err != nil && c.cfg.Registry != nil {
			c.cfg.Registry.Counter("prof.serve_errors").Inc()
		}
	})
}
