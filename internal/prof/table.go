package prof

import (
	"fmt"
	"io"
)

// WriteTable renders a phase attribution table (the shared renderer
// behind the mddiag -v footer and mdprof report): one row per phase,
// descending allocated bytes, with per-call averages so phases with very
// different call counts stay comparable.
func WriteTable(w io.Writer, phases []PhaseProf) {
	if len(phases) == 0 {
		fmt.Fprintln(w, "  (no phases recorded)")
		return
	}
	var totBytes int64
	for _, p := range phases {
		totBytes += p.AllocBytes
	}
	fmt.Fprintf(w, "  %-16s %6s %10s %12s %8s %12s %10s %10s\n",
		"phase", "n", "wall", "alloc", "%alloc", "allocs", "mutex", "gcpause")
	for _, p := range phases {
		pct := 0.0
		if totBytes > 0 {
			pct = 100 * float64(p.AllocBytes) / float64(totBytes)
		}
		fmt.Fprintf(w, "  %-16s %6d %10s %12s %7.1f%% %12d %10s %10s\n",
			p.Name, p.Count,
			fmtNS(p.WallNS), fmtBytes(p.AllocBytes), pct,
			p.AllocObjects, fmtNS(p.MutexWaitNS), fmtNS(p.GCPauseNS))
	}
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtBytes(b int64) string {
	neg := ""
	if b < 0 {
		neg, b = "-", -b
	}
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%s%.2fGiB", neg, float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%s%.1fMiB", neg, float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%s%.1fKiB", neg, float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%s%dB", neg, b)
	}
}
