package prof

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"multidiag/internal/obs"
)

// install swaps c in as the process collector for one test and restores
// the disabled state afterwards (tests share the process-global).
func install(t *testing.T, c *Collector) {
	t.Helper()
	Enable(c)
	t.Cleanup(func() {
		Disable()
		c.Stop()
	})
}

// ballast defeats dead-code elimination of test allocations.
var ballast [][]byte

func allocate(n, size int) {
	for i := 0; i < n; i++ {
		ballast = append(ballast, make([]byte, size))
	}
	ballast = ballast[:0]
}

func TestPhaseDeltaAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Registry: reg})
	install(t, c)

	const windows, objs, size = 3, 100, 1024
	for i := 0; i < windows; i++ {
		_, pt := PhaseCtx(context.Background(), "score")
		allocate(objs, size)
		pt.End()
	}
	phases := c.Phases()
	if len(phases) != 1 || phases[0].Name != "score" {
		t.Fatalf("phases = %+v, want one 'score' entry", phases)
	}
	p := phases[0]
	if p.Count != windows {
		t.Fatalf("count = %d, want %d", p.Count, windows)
	}
	// runtime/metrics flushes per-P allocation stats with a small lag, so
	// allow the same 10% slack the core attribution test uses.
	if min := int64(windows*objs*size) * 9 / 10; p.AllocBytes < min {
		t.Fatalf("alloc_bytes = %d, want ≥ %d (≈ the bytes the phase visibly allocated)", p.AllocBytes, min)
	}
	if min := int64(windows*objs) * 9 / 10; p.AllocObjects < min {
		t.Fatalf("alloc_objects = %d, want ≥ %d", p.AllocObjects, min)
	}
	if p.WallNS <= 0 {
		t.Fatalf("wall_ns = %d, want > 0", p.WallNS)
	}
	// The registry counters mirror the aggregate.
	snap := reg.Snapshot()
	if got := snap["prof.phase.score.alloc_bytes"]; got != p.AllocBytes {
		t.Fatalf("registry counter %d, aggregate %d", got, p.AllocBytes)
	}
	if got := snap["prof.phase.score.alloc_objects"]; got != p.AllocObjects {
		t.Fatalf("registry objects counter %d, aggregate %d", got, p.AllocObjects)
	}
}

// TestConcurrentPhases drives overlapping windows from many goroutines —
// the served-diagnosis shape — and checks the aggregates stay coherent
// (exact attribution is process-global and over-counts by design).
func TestConcurrentPhases(t *testing.T) {
	c := New(Config{})
	install(t, c)

	const workers, rounds = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("phase%d", w%2)
			for i := 0; i < rounds; i++ {
				_, pt := PhaseCtx(context.Background(), name)
				ballast = append(ballast[:0], make([]byte, 256))
				pt.End()
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, p := range c.Phases() {
		if p.AllocBytes < 0 || p.WallNS < 0 {
			t.Fatalf("negative aggregate: %+v", p)
		}
		total += p.Count
	}
	if want := int64(workers * rounds); total != want {
		t.Fatalf("total windows = %d, want %d", total, want)
	}
}

func TestDisabledPathInert(t *testing.T) {
	Disable()
	ctx := context.Background()
	lctx, pt := PhaseCtx(ctx, "x")
	if lctx != ctx {
		t.Fatal("disabled PhaseCtx rewrapped the context")
	}
	pt.End() // zero token: must not panic
	wctx, restore := WithWorkload(ctx, "w")
	if wctx != ctx {
		t.Fatal("disabled WithWorkload rewrapped the context")
	}
	restore()
	ran := false
	DoWorker(ctx, 3, func(context.Context) { ran = true })
	if !ran {
		t.Fatal("disabled DoWorker did not run the body")
	}
	Pin("shed:test") // nil collector: must not panic
	if Enabled() {
		t.Fatal("Enabled() with no collector installed")
	}
}

func TestLabelPropagation(t *testing.T) {
	c := New(Config{})
	install(t, c)

	ctx, restore := WithWorkload(context.Background(), "c432")
	defer restore()
	pctx, pt := PhaseCtx(ctx, "score")

	// The phase context carries both labels, and fsim workers started
	// under it add theirs on top.
	assertLabel := func(ctx context.Context, key, want string) {
		t.Helper()
		got, ok := pprof.Label(ctx, key)
		if !ok || got != want {
			t.Fatalf("label %s = %q (ok=%v), want %q", key, got, ok, want)
		}
	}
	assertLabel(pctx, "workload", "c432")
	assertLabel(pctx, "phase", "score")
	var sawWorker, sawPhase bool
	DoWorker(pctx, 7, func(wctx context.Context) {
		pprof.ForLabels(wctx, func(key, value string) bool {
			switch {
			case key == "worker" && value == "7":
				sawWorker = true
			case key == "phase" && value == "score":
				sawPhase = true
			}
			return true
		})
	})
	if !sawWorker || !sawPhase {
		t.Fatalf("worker labels: worker=%v phase=%v, want both", sawWorker, sawPhase)
	}

	// End restores the goroutine's pre-phase label set.
	pt.End()
	gotPhase := ""
	pprof.ForLabels(ctx, func(key, value string) bool {
		if key == "phase" {
			gotPhase = value
		}
		return true
	})
	if gotPhase != "" {
		t.Fatalf("phase label %q leaked past End on the restore context", gotPhase)
	}
}

func TestRingEvictionAndPins(t *testing.T) {
	// MinPinInterval < 0 disables rate limiting so every Pin lands.
	c := New(Config{RingSize: 4, MinPinInterval: -1})
	install(t, c)

	for i := 0; i < 3; i++ {
		c.Pin("shed:queue")
	}
	for i := 0; i < 10; i++ {
		c.snapshot(KindSample, "")
	}
	snaps := c.Snapshots()
	var pins, samples int
	for _, s := range snaps {
		switch s.Kind {
		case KindPin:
			pins++
		case KindSample:
			samples++
		}
	}
	if pins != 3 {
		t.Fatalf("pins = %d, want 3 (samples must never evict pins)", pins)
	}
	if samples != 4 {
		t.Fatalf("samples = %d, want ring capacity 4", samples)
	}
	// Rolling ring keeps the NEWEST records, oldest-first within the ring.
	var seqs []int64
	for _, s := range snaps {
		if s.Kind == KindSample {
			seqs = append(seqs, s.Seq)
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sample seqs not ascending: %v", seqs)
		}
	}
	if seqs[len(seqs)-1] != snaps[len(snaps)-1].Seq {
		t.Fatalf("last sample is not the newest: %v", seqs)
	}
}

func TestPinRateLimit(t *testing.T) {
	c := New(Config{RingSize: 8, MinPinInterval: time.Hour})
	install(t, c)
	for i := 0; i < 5; i++ {
		c.Pin("shed:inflight")
	}
	if got := len(c.Snapshots()); got != 1 {
		t.Fatalf("pins retained = %d, want 1 (rate limit)", got)
	}
}

func TestSinkStreamAndSummary(t *testing.T) {
	var buf bytes.Buffer
	c := New(Config{RingSize: 4, MinPinInterval: -1, Sink: &buf})
	Enable(c)
	_, pt := PhaseCtx(context.Background(), "extract")
	allocate(10, 512)
	pt.End()
	c.Pin("panic")
	Disable()
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	var kinds []string
	dec := json.NewDecoder(&buf)
	var last Snapshot
	for {
		var s Snapshot
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		if s.Schema != Schema {
			t.Fatalf("schema %q, want %q", s.Schema, Schema)
		}
		kinds = append(kinds, s.Kind)
		last = s
	}
	if len(kinds) != 2 || kinds[0] != KindPin || kinds[1] != KindSummary {
		t.Fatalf("sink kinds = %v, want [pin summary]", kinds)
	}
	if len(last.Phases) != 1 || last.Phases[0].Name != "extract" {
		t.Fatalf("summary phases = %+v, want the extract window", last.Phases)
	}
}

type failWriter struct{ err error }

func (f *failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestSinkErrorSticky(t *testing.T) {
	wantErr := errors.New("disk full")
	c := New(Config{MinPinInterval: -1, Sink: &failWriter{err: wantErr}})
	c.Pin("x")
	if err := c.Stop(); !errors.Is(err, wantErr) {
		t.Fatalf("Stop() = %v, want the sink error", err)
	}
}

func TestSampler(t *testing.T) {
	c := New(Config{RingSize: 64, SampleInterval: time.Millisecond})
	install(t, c)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var n int
		for _, s := range c.Snapshots() {
			if s.Kind == KindSample {
				n++
			}
		}
		if n >= 3 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("sampler produced < 3 samples in 2s at a 1ms interval")
}

func TestHandlerDisabled(t *testing.T) {
	Disable()
	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prof", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 while disabled", rr.Code)
	}
}

// TestHandlerConcurrentPolls stress-polls /debug/prof while phases and
// pins churn — the -race proof for the ring, the aggregates and WriteTo.
func TestHandlerConcurrentPolls(t *testing.T) {
	c := New(Config{RingSize: 8, MinPinInterval: -1})
	install(t, c)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, pt := PhaseCtx(context.Background(), fmt.Sprintf("phase%d", w))
				pt.End()
				if i%5 == 0 {
					Pin("shed:stress")
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %d: status %d", i, resp.StatusCode)
		}
		// Every poll ends with a live summary line even before any sample.
		lines := strings.Split(strings.TrimSpace(string(body)), "\n")
		var last Snapshot
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
			t.Fatalf("poll %d: bad JSONL tail: %v", i, err)
		}
		if last.Kind != KindSummary {
			t.Fatalf("poll %d: tail kind %q, want summary", i, last.Kind)
		}
	}
	close(stop)
	wg.Wait()
}

func TestWriteTable(t *testing.T) {
	var b strings.Builder
	WriteTable(&b, []PhaseProf{
		{Name: "score", Count: 2, WallNS: 2e9, AllocBytes: 3 << 20, AllocObjects: 1000},
		{Name: "extract", Count: 1, WallNS: 5e6, AllocBytes: 1 << 20, AllocObjects: 200},
	})
	out := b.String()
	for _, want := range []string{"score", "extract", "3.0MiB", "75.0%", "2.00s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	WriteTable(&b, nil)
	if !strings.Contains(b.String(), "no phases") {
		t.Fatalf("empty table = %q", b.String())
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	c.Pin("x")
	if c.Phases() != nil || c.Snapshots() != nil {
		t.Fatal("nil collector returned data")
	}
	if n, err := c.WriteTo(io.Discard); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = (%d, %v)", n, err)
	}
	if pt := c.Phase("x"); pt.c != nil {
		t.Fatal("nil Phase returned a live token")
	}
}
