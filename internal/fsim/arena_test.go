package fsim

import (
	"context"
	"testing"

	"multidiag/internal/fault"
)

// chunkedRef computes retained reference syndromes on a private simulator
// so the arena under test never sees them.
func chunkedRef(t *testing.T, fs *FaultSim, faults []fault.StuckAt) []*Syndrome {
	t.Helper()
	ref, err := NewFaultSim(fs.Circuit(), fs.Patterns())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Syndrome, len(faults))
	for i, f := range faults {
		out[i] = ref.SimulateStuckAt(f)
	}
	return out
}

// TestChunkedFoldMatchesSequentialWithRelease folds chunks with immediate
// release — the scoring engine's usage — and checks every syndrome against
// a sequential reference, twice: the second pass runs entirely on recycled
// arena memory, so any incomplete reset of a pooled syndrome or fail set
// shows up as a content mismatch.
func TestChunkedFoldMatchesSequentialWithRelease(t *testing.T) {
	fs, faults := batchFixture(t)
	want := chunkedRef(t, fs, faults)
	for pass := 0; pass < 2; pass++ {
		folded := 0
		fs.SimulateStuckAtChunksCtx(context.Background(), faults, 4, func(start int, syns []*Syndrome) {
			if start != folded {
				t.Errorf("pass %d: chunk starts at %d, want contiguous %d", pass, start, folded)
			}
			for i, syn := range syns {
				if !syn.Equal(want[start+i]) {
					t.Errorf("pass %d: fault %s syndrome differs from sequential",
						pass, faults[start+i].String())
				}
				fs.ReleaseSyndrome(syn)
			}
			folded += len(syns)
		})
		if folded != len(faults) {
			t.Fatalf("pass %d: folded %d of %d faults", pass, folded, len(faults))
		}
	}
}

// TestChunkedFoldWorkingSetBounded pins the arena working-set contract: a
// chunked pass that releases every syndrome at fold time must keep the
// live population O(workers × chunk) — the claim semaphore admits at most
// 2×workers unfolded chunks — no matter how many faults stream through.
// Without the claim bound, workers race the folder and the first pass
// allocates nearly one syndrome per fault.
func TestChunkedFoldWorkingSetBounded(t *testing.T) {
	fs, faults := batchFixture(t)
	const workers = 4
	fs.SimulateStuckAtChunksCtx(context.Background(), faults, workers, func(start int, syns []*Syndrome) {
		for _, s := range syns {
			fs.ReleaseSyndrome(s)
		}
	})
	// Every syndrome ever allocated is back on the free list now, so its
	// length is exactly the peak working set of the pass.
	size := batchChunkSize(len(faults), workers)
	limit := (2*workers + workers) * size // claimed-unfolded + in-build, one chunk each
	fs.arena.mu.Lock()
	peak := len(fs.arena.free)
	fs.arena.mu.Unlock()
	if peak > limit {
		t.Fatalf("chunked pass allocated %d syndromes for %d faults; working-set limit is %d",
			peak, len(faults), limit)
	}
}

// TestPooledScratchStressRace drives several release-and-reuse rounds of
// the full parallel engine — pooled syndromes, pooled fail sets, pooled
// forks — while verifying syndrome content against a sequential reference.
// Run under -race this pins the no-aliasing contract: a pooled object
// handed to two goroutines at once is a data race, and a stale fail bit
// surviving recycling is a content mismatch.
func TestPooledScratchStressRace(t *testing.T) {
	fs, faults := batchFixture(t)
	want := chunkedRef(t, fs, faults)
	for round := 0; round < 6; round++ {
		workers := 2 + round%3
		fs.SimulateStuckAtChunksCtx(context.Background(), faults, workers, func(start int, syns []*Syndrome) {
			for i, syn := range syns {
				if !syn.Equal(want[start+i]) {
					t.Errorf("round %d workers=%d: fault %s syndrome corrupted by pooling",
						round, workers, faults[start+i].String())
				}
				fs.ReleaseSyndrome(syn)
			}
		})
	}
}

// TestChunkedFoldCancellation cancels mid-stream and checks the engine
// still terminates (the claim semaphore must never deadlock a canceled
// worker) and folds only a contiguous prefix.
func TestChunkedFoldCancellation(t *testing.T) {
	fs, faults := batchFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	folded := 0
	fs.SimulateStuckAtChunksCtx(ctx, faults, 4, func(start int, syns []*Syndrome) {
		if start != folded {
			t.Errorf("chunk starts at %d, want contiguous %d", start, folded)
		}
		folded += len(syns)
		for _, s := range syns {
			fs.ReleaseSyndrome(s)
		}
		if folded >= len(faults)/4 {
			cancel()
		}
	})
	cancel()
	if folded > len(faults) {
		t.Fatalf("folded %d faults, more than the %d submitted", folded, len(faults))
	}
}
