// Fault-parallel execution: candidate fault simulations are independent
// (each reads the shared packed fault-free state and writes only its own
// syndrome), so a fault list shards across a bounded worker pool. Work is
// claimed in contiguous chunks sized so the shared atomic index is touched
// on the order of a hundred times per batch — not once per fault — which
// keeps the index off the coherence hot path while still load-balancing
// uneven cone sizes. Each worker owns a forked simulator — private scratch
// words, shared immutable state, shared atomic counters — so no locks sit
// on the per-gate hot path; the only shared mutable structures are the
// optional ConeCache (locked per shard) and the syndrome arena (a
// mutex-guarded free list). Results are merged by fault index, and the chunk-fold API
// delivers chunks in ascending order, so output is bit-identical to a
// sequential run regardless of worker count or scheduling.
package fsim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"multidiag/internal/fault"
	"multidiag/internal/logic"
	"multidiag/internal/prof"
	"multidiag/internal/trace"
)

// Workers resolves a worker-count knob: values ≤ 0 select GOMAXPROCS (the
// -j CLI default), anything else passes through.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// batchTargetClaims is the aimed-for number of atomic work-index claims
// per batch: few enough that the index never contends, many enough (≥ 8×
// a typical worker count) that uneven per-fault cone sizes still balance.
const batchTargetClaims = 128

// batchChunkSize returns the contiguous chunk length workers claim from
// the shared index for an n-fault batch.
func batchChunkSize(n, workers int) int {
	size := (n + batchTargetClaims - 1) / batchTargetClaims
	if size < 1 {
		size = 1
	}
	// Never let a single chunk exceed an even worker share, or the tail
	// of the batch serializes behind one worker.
	if workers > 1 {
		if max := (n + workers - 1) / workers; size > max {
			size = max
		}
	}
	return size
}

// Fork returns a simulator sharing fs's immutable packed state (fault-free
// words, packed PI vectors, pattern set, PO index, syndrome arena,
// attached cache and observability counters) with private propagation
// scratch. The fork and its parent may simulate concurrently; neither is
// individually safe for concurrent use by multiple goroutines. Prefer
// AcquireFork/ReleaseFork on repeated batches — it recycles fork scratch
// through the root's free list.
func (fs *FaultSim) Fork() *FaultSim {
	return &FaultSim{
		c:       fs.c,
		pats:    fs.pats,
		words:   fs.words,
		piWords: fs.piWords,
		nWords:  fs.nWords,
		cur:     make([]logic.PV64, fs.c.NumGates()),
		inCone:  make([]bool, fs.c.NumGates()),
		poIndex: fs.poIndex,
		cache:   fs.cache,
		arena:   fs.arena,
		rootSim: fs.root(),

		statSims:      fs.statSims,
		statConeEvals: fs.statConeEvals,
		statXWords:    fs.statXWords,
		statConeSize:  fs.statConeSize,
	}
}

// SimulateStuckAtBatch simulates every fault in the list and returns their
// syndromes in input order: out[i] corresponds to faults[i]. See
// SimulateStuckAtBatchCtx.
func (fs *FaultSim) SimulateStuckAtBatch(faults []fault.StuckAt, workers int) []*Syndrome {
	return fs.SimulateStuckAtBatchCtx(context.Background(), faults, workers)
}

// SimulateStuckAtBatchCtx simulates every fault and returns the syndromes
// in input order, sharding chunks of the list across min(workers,
// len(faults)) goroutines (workers ≤ 0 selects GOMAXPROCS; 1 runs inline
// on the receiver). On cancellation the returned slice is partial
// (unsimulated entries are nil); callers observe ctx.Err() to distinguish
// that from a complete run. The syndromes are arena-backed: callers that
// fold and discard them should hand each back via ReleaseSyndrome.
func (fs *FaultSim) SimulateStuckAtBatchCtx(ctx context.Context, faults []fault.StuckAt, workers int) []*Syndrome {
	out := make([]*Syndrome, len(faults))
	fs.SimulateStuckAtChunksCtx(ctx, faults, workers, func(start int, syns []*Syndrome) {
		copy(out[start:], syns)
	})
	return out
}

// chunkResult is one completed contiguous chunk in flight to the folder.
type chunkResult struct {
	idx  int // chunk ordinal (idx*size = first fault index)
	syns []*Syndrome
}

// SimulateStuckAtChunksCtx simulates faults across the worker pool and
// calls fold once per contiguous chunk, in ascending fault order:
// fold(start, syns) covers faults[start : start+len(syns)]. Delivering in
// order is what lets a caller fold incrementally — equivalence classes,
// tie-breaks — and stay bit-identical to a sequential per-seed loop at any
// worker count. fold runs on the calling goroutine; the syns slice is
// reused after fold returns, so fold must not retain it (retaining the
// syndromes themselves is fine — release them with ReleaseSyndrome when
// folded, or keep them and let the arena refill).
//
// Cancellation is observed between faults: once ctx is done no further
// fault starts simulating, completed leading chunks still fold, and the
// caller sees ctx.Err() != nil.
func (fs *FaultSim) SimulateStuckAtChunksCtx(ctx context.Context, faults []fault.StuckAt, workers int, fold func(start int, syns []*Syndrome)) {
	n := len(faults)
	if n == 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// When the context carries a span tree, each worker's share gets a
	// "fsim.worker" span attributing its fault count and cone-cache probe
	// outcomes (fork-local deltas — see FaultSim.probeHits). Inert handles
	// when tracing is off: no branches, no allocations.
	// When the prof collector is enabled, each worker body additionally
	// runs under a worker=<n> pprof label (on top of the phase/workload
	// labels the context already carries), so a CPU profile slices down to
	// individual pool workers; prof.DoWorker calls the body directly when
	// profiling is off.
	tsc := trace.FromContext(ctx)
	if workers <= 1 {
		prof.DoWorker(ctx, 0, func(ctx context.Context) {
			tsp := tsc.Start("fsim.worker")
			tsp.SetInt("worker", 0)
			h0, m0 := fs.probeHits, fs.probeMisses
			size := batchChunkSize(n, 1)
			done := 0
			buf := make([]*Syndrome, 0, size)
			for start := 0; start < n && ctx.Err() == nil; start += size {
				end := start + size
				if end > n {
					end = n
				}
				buf = buf[:0]
				for i := start; i < end; i++ {
					if ctx.Err() != nil {
						break
					}
					buf = append(buf, fs.SimulateStuckAt(faults[i]))
					done++
				}
				fold(start, buf)
			}
			tsp.SetInt("faults", int64(done))
			tsp.SetInt("cache_hits", fs.probeHits-h0)
			tsp.SetInt("cache_misses", fs.probeMisses-m0)
			tsp.End()
		})
		return
	}

	size := batchChunkSize(n, workers)
	nChunks := (n + size - 1) / size
	// In-flight work is bounded by a claim semaphore, not by the results
	// channel: the folder must drain the channel unconditionally (an
	// out-of-order chunk parks in `pending` until the gap fills, and a
	// blocked send from the gap's worker would deadlock an at-capacity
	// channel), so channel capacity alone cannot stop workers from racing
	// hundreds of chunks ahead of a folder stalled on one descheduled
	// worker. Instead a worker takes a token before claiming a chunk and
	// the folder returns it when that chunk folds, capping
	// claimed-but-unfolded chunks at 2× workers — the live-syndrome
	// population (the arena's working set) stays O(workers × chunk)
	// instead of O(faults). No deadlock: finishing a claimed chunk never
	// needs a token, so the gap's worker always completes and unblocks the
	// fold loop.
	inflight := workers * 2
	tokens := make(chan struct{}, inflight)
	for i := 0; i < inflight; i++ {
		tokens <- struct{}{}
	}
	results := make(chan chunkResult, inflight)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sim := fs
		if w > 0 {
			sim = fs.AcquireFork()
		}
		wg.Add(1)
		go func(w int, sim *FaultSim) {
			defer wg.Done()
			if w > 0 {
				defer fs.ReleaseFork(sim)
			}
			prof.DoWorker(ctx, w, func(ctx context.Context) {
				tsp := tsc.Start("fsim.worker")
				tsp.SetInt("worker", int64(w))
				h0, m0 := sim.probeHits, sim.probeMisses
				done, claims := 0, 0
				for ctx.Err() == nil {
					select {
					case <-tokens:
					case <-ctx.Done():
					}
					if ctx.Err() != nil {
						break
					}
					ci := int(next.Add(1)) - 1
					if ci >= nChunks {
						break
					}
					claims++
					start := ci * size
					end := start + size
					if end > n {
						end = n
					}
					syns := make([]*Syndrome, 0, end-start)
					for i := start; i < end; i++ {
						if ctx.Err() != nil {
							break
						}
						syns = append(syns, sim.SimulateStuckAt(faults[i]))
						done++
					}
					results <- chunkResult{idx: ci, syns: syns}
				}
				tsp.SetInt("faults", int64(done))
				tsp.SetInt("chunks", int64(claims))
				tsp.SetInt("cache_hits", sim.probeHits-h0)
				tsp.SetInt("cache_misses", sim.probeMisses-m0)
				tsp.End()
			})
		}(w, sim)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered fold on the calling goroutine: buffer out-of-order chunks
	// until the next expected ordinal lands, then drain the run. Chunks a
	// cancellation left incomplete (or never produced) leave a gap; folds
	// stop at the first gap, exactly like the sequential loop stopping
	// mid-list.
	pending := make(map[int][]*Syndrome, workers*2)
	nextFold := 0
	halted := false
	for r := range results {
		pending[r.idx] = r.syns
		for !halted {
			syns, ok := pending[nextFold]
			if !ok {
				break
			}
			delete(pending, nextFold)
			fold(nextFold*size, syns)
			// Folding a chunk frees its claim token, admitting the next
			// chunk claim. Never blocks: the channel holds at most the
			// tokens workers took out.
			tokens <- struct{}{}
			// A chunk cut short by cancellation ends the contiguous prefix;
			// anything after it would leave a hole mid-list.
			if nextFold*size+len(syns) < min((nextFold+1)*size, n) {
				halted = true
			}
			nextFold++
		}
	}
	// Cancellation can leave chunks complete behind a gap or a halt; their
	// syndromes go back to the arena rather than leaking to the GC.
	for _, syns := range pending {
		for _, s := range syns {
			fs.ReleaseSyndrome(s)
		}
	}
}
