// Fault-parallel execution: candidate fault simulations are independent
// (each reads the shared packed fault-free state and writes only its own
// syndrome), so a fault list shards across a bounded worker pool. Each
// worker owns a forked simulator — private scratch words, shared immutable
// state, shared atomic counters — so no locks sit on the per-gate hot
// path; the only shared mutable structure is the optional ConeCache, which
// locks per shard at word granularity. Results are merged by fault index,
// so the output is bit-identical to a sequential run regardless of worker
// count or scheduling.
package fsim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"multidiag/internal/fault"
	"multidiag/internal/logic"
	"multidiag/internal/prof"
	"multidiag/internal/trace"
)

// Workers resolves a worker-count knob: values ≤ 0 select GOMAXPROCS (the
// -j CLI default), anything else passes through.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Fork returns a simulator sharing fs's immutable packed state (fault-free
// words, packed PI vectors, pattern set, PO index, attached cache and
// observability counters) with private propagation scratch. The fork and
// its parent may simulate concurrently; neither is individually safe for
// concurrent use by multiple goroutines.
func (fs *FaultSim) Fork() *FaultSim {
	return &FaultSim{
		c:       fs.c,
		pats:    fs.pats,
		words:   fs.words,
		piWords: fs.piWords,
		nWords:  fs.nWords,
		cur:     make([]logic.PV64, fs.c.NumGates()),
		inCone:  make([]bool, fs.c.NumGates()),
		poIndex: fs.poIndex,
		cache:   fs.cache,

		statSims:      fs.statSims,
		statConeEvals: fs.statConeEvals,
		statXWords:    fs.statXWords,
		statConeSize:  fs.statConeSize,
	}
}

// SimulateStuckAtBatch simulates every fault in the list and returns their
// syndromes in input order: out[i] corresponds to faults[i]. The list is
// sharded across min(workers, len(faults)) goroutines pulling from one
// atomic work index (workers ≤ 0 selects GOMAXPROCS; 1 runs inline on the
// receiver). Each worker owns a Fork, so the per-gate hot path is
// lock-free; the index-addressed merge makes the result bit-identical to
// calling SimulateStuckAt sequentially.
func (fs *FaultSim) SimulateStuckAtBatch(faults []fault.StuckAt, workers int) []*Syndrome {
	return fs.SimulateStuckAtBatchCtx(context.Background(), faults, workers)
}

// SimulateStuckAtBatchCtx is SimulateStuckAtBatch with a cancellation
// checkpoint between faults: once ctx is done no further fault starts
// simulating (in-flight fault simulations finish — a single cone pass is
// the checkpoint granularity). On cancellation the returned slice is
// partial (unsimulated entries are nil); callers observe ctx.Err() to
// distinguish that from a complete run.
func (fs *FaultSim) SimulateStuckAtBatchCtx(ctx context.Context, faults []fault.StuckAt, workers int) []*Syndrome {
	out := make([]*Syndrome, len(faults))
	workers = Workers(workers)
	if workers > len(faults) {
		workers = len(faults)
	}
	// When the context carries a span tree, each worker's chunk gets a
	// "fsim.worker" span attributing its fault count and cone-cache probe
	// outcomes (fork-local deltas — see FaultSim.probeHits). Inert handles
	// when tracing is off: no branches, no allocations.
	// When the prof collector is enabled, each worker body additionally
	// runs under a worker=<n> pprof label (on top of the phase/workload
	// labels the context already carries), so a CPU profile slices down to
	// individual pool workers; prof.DoWorker calls the body directly when
	// profiling is off.
	tsc := trace.FromContext(ctx)
	if workers <= 1 {
		prof.DoWorker(ctx, 0, func(ctx context.Context) {
			tsp := tsc.Start("fsim.worker")
			tsp.SetInt("worker", 0)
			h0, m0 := fs.probeHits, fs.probeMisses
			n := 0
			for i, f := range faults {
				if ctx.Err() != nil {
					break
				}
				out[i] = fs.SimulateStuckAt(f)
				n++
			}
			tsp.SetInt("faults", int64(n))
			tsp.SetInt("cache_hits", fs.probeHits-h0)
			tsp.SetInt("cache_misses", fs.probeMisses-m0)
			tsp.End()
		})
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sim := fs
		if w > 0 {
			sim = fs.Fork()
		}
		wg.Add(1)
		go func(w int, sim *FaultSim) {
			defer wg.Done()
			prof.DoWorker(ctx, w, func(ctx context.Context) {
				tsp := tsc.Start("fsim.worker")
				tsp.SetInt("worker", int64(w))
				h0, m0 := sim.probeHits, sim.probeMisses
				n := 0
				for {
					if ctx.Err() != nil {
						break
					}
					i := int(next.Add(1)) - 1
					if i >= len(faults) {
						break
					}
					out[i] = sim.SimulateStuckAt(faults[i])
					n++
				}
				tsp.SetInt("faults", int64(n))
				tsp.SetInt("cache_hits", sim.probeHits-h0)
				tsp.SetInt("cache_misses", sim.probeMisses-m0)
				tsp.End()
			})
		}(w, sim)
	}
	wg.Wait()
	return out
}
