// Package fsim provides single-fault simulation and effect-cause analysis
// primitives:
//
//   - a packed-parallel single-fault simulator (PPSFP: 64 patterns per pass,
//     one fault at a time, propagation limited to the fault's fan-out cone);
//   - syndrome computation (per-pattern failing-output sets) and full
//     fault-dictionary construction;
//   - exact critical path tracing (CPT) at gate level, the candidate
//     extractor of the effect-cause diagnosis flow.
package fsim

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"

	"multidiag/internal/bitset"
	"multidiag/internal/fault"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
)

// Syndrome is the observable behaviour of a fault under a test set: for
// every pattern, the set of primary outputs (by PO index) where the faulty
// response differs from the fault-free response.
type Syndrome struct {
	NumPatterns int
	NumPOs      int
	// Fails[p] is nil when pattern p passes; otherwise the failing PO set.
	Fails []bitset.Set
	// spare holds zeroed fail sets detached by an arena release, reused by
	// the next simulation instead of allocating. Keeping them attached to
	// the syndrome (rather than in a shared pool) means recycled sets never
	// cross goroutines separately from their syndrome.
	spare []bitset.Set
}

// NewSyndrome returns an all-passing syndrome.
func NewSyndrome(numPatterns, numPOs int) *Syndrome {
	return &Syndrome{NumPatterns: numPatterns, NumPOs: numPOs, Fails: make([]bitset.Set, numPatterns)}
}

// AddFail records that pattern p fails at PO index po.
func (s *Syndrome) AddFail(p, po int) {
	if s.Fails[p] == nil {
		s.Fails[p] = bitset.New(s.NumPOs)
	}
	s.Fails[p].Add(po)
}

// FailingPatterns returns the indices of failing patterns in order.
func (s *Syndrome) FailingPatterns() []int {
	var out []int
	for p, f := range s.Fails {
		if f != nil && !f.Empty() {
			out = append(out, p)
		}
	}
	return out
}

// Detected reports whether any pattern fails.
func (s *Syndrome) Detected() bool { return len(s.FailingPatterns()) > 0 }

// NumFailBits returns the total number of (pattern, failing PO) pairs.
func (s *Syndrome) NumFailBits() int {
	n := 0
	for _, f := range s.Fails {
		if f != nil {
			n += f.Count()
		}
	}
	return n
}

// Equal reports whether two syndromes are identical.
func (s *Syndrome) Equal(t *Syndrome) bool {
	if s.NumPatterns != t.NumPatterns {
		return false
	}
	for p := 0; p < s.NumPatterns; p++ {
		a, b := s.Fails[p], t.Fails[p]
		switch {
		case a == nil && b == nil:
		case a == nil:
			if !b.Empty() {
				return false
			}
		case b == nil:
			if !a.Empty() {
				return false
			}
		default:
			if !a.Equal(b) {
				return false
			}
		}
	}
	return true
}

// FaultSim is a packed-parallel single-fault simulator bound to one circuit
// and one packed test set. Patterns are packed once at construction; each
// fault is then simulated with cone-limited propagation against the cached
// fault-free values.
type FaultSim struct {
	c       *netlist.Circuit
	pats    []sim.Pattern
	words   [][]logic.PV64 // words[w][net] fault-free values for word w
	piWords [][]logic.PV64 // packed PI vectors per word
	nWords  int
	// scratch for cone-limited propagation (private per fork)
	cur      []logic.PV64
	touched  []netlist.NetID
	inCone   []bool
	stack    []netlist.NetID
	coneKeys []uint64 // level-sort scratch: Level<<32|NetID
	conePOs  []int32  // PO indices inside the current cone
	poIndex  map[netlist.NetID]int

	// arena recycles syndromes/fail-sets; rootSim points at the simulator
	// owning the shared arena and fork free list (nil for a root). Both
	// are shared by every fork.
	arena    *synArena
	rootSim  *FaultSim
	forkMu   sync.Mutex
	forkFree []*FaultSim

	// cache, when attached, memoizes per-(fault, word) cone results;
	// shared by forks (see AttachCache and ConeCache).
	cache *ConeCache
	// probeHits/probeMisses tally this simulator's own cone-cache probes.
	// Unlike the ConeCache's shared atomic counters these are fork-local
	// plain ints (each fork is single-goroutine by contract), which is what
	// lets per-worker trace spans attribute cache luck without contention.
	probeHits   int64
	probeMisses int64

	// observability handles, resolved once by Observe; nil (no-op) until
	// then, so the uninstrumented path costs one pointer test per counter.
	statSims      *obs.Counter
	statConeEvals *obs.Counter
	statXWords    *obs.Counter
	statConeSize  *obs.Histogram
}

// NewFaultSim packs the pattern set and precomputes fault-free values.
func NewFaultSim(c *netlist.Circuit, pats []sim.Pattern) (*FaultSim, error) {
	if len(pats) == 0 {
		return nil, fmt.Errorf("fsim: empty pattern set")
	}
	fs := &FaultSim{
		c:       c,
		pats:    pats,
		cur:     make([]logic.PV64, c.NumGates()),
		inCone:  make([]bool, c.NumGates()),
		poIndex: make(map[netlist.NetID]int, len(c.POs)),
		arena:   newSynArena(len(pats), len(c.POs)),
	}
	for i, po := range c.POs {
		fs.poIndex[po] = i
	}
	s := sim.New(c)
	for base := 0; base < len(pats); base += logic.W {
		end := base + logic.W
		if end > len(pats) {
			end = len(pats)
		}
		piv, _, err := s.PackPatterns(pats[base:end])
		if err != nil {
			return nil, err
		}
		if err := s.Run(piv); err != nil {
			return nil, err
		}
		vals := make([]logic.PV64, c.NumGates())
		copy(vals, s.Values())
		fs.words = append(fs.words, vals)
		fs.piWords = append(fs.piWords, piv)
	}
	fs.nWords = len(fs.words)
	return fs, nil
}

// Observe wires the simulator's counters into r (nil r detaches): faults
// simulated, packed gate-word evaluations, X-propagation words, and a
// log₂ histogram of fan-out cone sizes. Counter updates are atomic, so
// one registry may observe simulators on several goroutines.
func (fs *FaultSim) Observe(r *obs.Registry) {
	fs.statSims = r.Counter("fsim.sims")
	fs.statConeEvals = r.Counter("fsim.cone_gate_word_evals")
	fs.statXWords = r.Counter("fsim.xsim_words")
	fs.statConeSize = r.Histogram("fsim.cone_size")
}

// Circuit returns the simulated circuit.
func (fs *FaultSim) Circuit() *netlist.Circuit { return fs.c }

// NumPatterns returns the test-set size.
func (fs *FaultSim) NumPatterns() int { return len(fs.pats) }

// Patterns returns the test set (shared storage).
func (fs *FaultSim) Patterns() []sim.Pattern { return fs.pats }

// GoodValue returns the fault-free value of net id under pattern p.
func (fs *FaultSim) GoodValue(id netlist.NetID, p int) logic.Value {
	return fs.words[p/logic.W][id].Get(uint(p % logic.W))
}

// GoodWord returns the packed fault-free values of net id for pattern word
// w (patterns w·64 … w·64+63).
func (fs *FaultSim) GoodWord(id netlist.NetID, w int) logic.PV64 {
	return fs.words[w][id]
}

// NumWords returns the number of packed pattern words.
func (fs *FaultSim) NumWords() int { return fs.nWords }

// PIWord returns the packed primary-input vector for pattern word w
// (shared storage — callers must not mutate). Re-simulation passes — the
// bridge refinement sweep, X-propagation — reuse these instead of
// re-packing the pattern set per hypothesis.
func (fs *FaultSim) PIWord(w int) []logic.PV64 { return fs.piWords[w] }

// GoodPOSet returns the fault-free PO values of pattern p as a bitset of
// POs at logic 1 (X POs are omitted; callers in the diagnosis flow only use
// determinate patterns).
func (fs *FaultSim) GoodPOSet(p int) bitset.Set {
	out := bitset.New(len(fs.c.POs))
	w, slot := p/logic.W, uint(p%logic.W)
	for i, po := range fs.c.POs {
		if fs.words[w][po].Get(slot) == logic.One {
			out.Add(i)
		}
	}
	return out
}

// forceValue returns the packed override for a stuck value.
func forceValue(v1 bool) logic.PV64 {
	if v1 {
		return logic.PVOne
	}
	return logic.PVZero
}

// SimulateStuckAt computes the syndrome of a single stuck-at fault over the
// whole test set using cone-limited propagation. With a cache attached,
// per-word cone results are replayed or filled as a side effect. The
// returned syndrome comes from the simulator's arena; callers on the hot
// path should hand it back with ReleaseSyndrome once folded.
func (fs *FaultSim) SimulateStuckAt(f fault.StuckAt) *Syndrome {
	return fs.simulateForced(f.Net, forceValue(f.Value1), &f)
}

// SimulateOpen computes the syndrome of a net-open (modelled as a stuck
// value, see fault.Open). Logic-level behaviour equals the corresponding
// stuck-at, so opens share its cache entries.
func (fs *FaultSim) SimulateOpen(o fault.Open) *Syndrome {
	eq := fault.StuckAt{Net: o.Net, Value1: o.StuckValue1}
	return fs.simulateForced(o.Net, forceValue(o.StuckValue1), &eq)
}

// SimulateXAt computes, for each pattern, the set of POs that *may* be
// affected by an unknown value at net id: the net is forced to X and POs
// receiving X are reported. This is the X-propagation primitive of the
// consistency check in the diagnosis core.
func (fs *FaultSim) SimulateXAt(nets []netlist.NetID) []bitset.Set {
	force := make(map[netlist.NetID]logic.PV64, len(nets))
	for _, n := range nets {
		force[n] = logic.PVX
	}
	out := make([]bitset.Set, len(fs.pats))
	fs.statXWords.Add(int64(fs.nWords))
	s := sim.New(fs.c)
	for w := 0; w < fs.nWords; w++ {
		if err := s.RunWithOverrides(fs.piWords[w], force); err != nil {
			// Impossible: widths validated at construction.
			panic(err)
		}
		for i, po := range fs.c.POs {
			xm := s.Value(po).XMask()
			if xm == 0 {
				continue
			}
			for slot := uint(0); slot < logic.W; slot++ {
				p := w*logic.W + int(slot)
				if p >= len(fs.pats) {
					break
				}
				if xm>>slot&1 == 1 {
					if out[p] == nil {
						out[p] = bitset.New(len(fs.c.POs))
					}
					out[p].Add(i)
				}
			}
		}
	}
	return out
}

// simulateForced runs cone-limited packed simulation with one net forced
// to a stuck value, comparing POs in the fan-out cone of the forced net
// against the cached fault-free responses. cacheF, when a cache is
// attached, keys per-word result memoization. This is the innermost loop
// of candidate scoring: it evaluates only the fault's output-cone delta —
// the cone gates in topological order — against the cached good-machine
// words, touches no map, allocates nothing besides the pooled syndrome
// (and, when filling a cache, the stored diff slices), and reuses the
// fork-private marking/ordering scratch across candidates.
func (fs *FaultSim) simulateForced(forceNet netlist.NetID, forceVal logic.PV64, cacheF *fault.StuckAt) *Syndrome {
	syn := fs.arena.acquire()
	if fs.cache == nil {
		cacheF = nil
	}

	// Mark the fanout cone of the forced net (iterative DFS, persistent
	// stack/touched scratch).
	fs.touched = append(fs.touched[:0], forceNet)
	fs.stack = append(fs.stack[:0], forceNet)
	fs.inCone[forceNet] = true
	for len(fs.stack) > 0 {
		x := fs.stack[len(fs.stack)-1]
		fs.stack = fs.stack[:len(fs.stack)-1]
		for _, rd := range fs.c.Gates[x].Fanout {
			if !fs.inCone[rd] {
				fs.inCone[rd] = true
				fs.touched = append(fs.touched, rd)
				fs.stack = append(fs.stack, rd)
			}
		}
	}
	defer func() {
		for _, n := range fs.touched {
			fs.inCone[n] = false
		}
	}()

	fs.statSims.Inc()
	fs.statConeSize.Observe(int64(len(fs.touched)))

	// POs inside the cone, by index.
	fs.conePOs = fs.conePOs[:0]
	for i, po := range fs.c.POs {
		if fs.inCone[po] {
			fs.conePOs = append(fs.conePOs, int32(i))
		}
	}
	if len(fs.conePOs) == 0 {
		return syn // fault cannot reach any output
	}

	// Order the cone topologically: sort the touched nets by (level, id)
	// once per fault, so each word pass walks only the cone instead of
	// filtering the full-circuit level order.
	fs.coneKeys = fs.coneKeys[:0]
	for _, n := range fs.touched {
		fs.coneKeys = append(fs.coneKeys, uint64(fs.c.Gates[n].Level)<<32|uint64(uint32(n)))
	}
	slices.Sort(fs.coneKeys)

	for w := 0; w < fs.nWords; w++ {
		if cacheF != nil {
			if diffs, ok := fs.cachedWord(*cacheF, w); ok {
				fs.replayWord(syn, w, diffs)
				continue
			}
		}
		fs.statConeEvals.Add(int64(len(fs.touched)))
		good := fs.words[w]
		// Evaluate only cone gates; values outside the cone are the good
		// values. fs.cur holds faulty values for cone nets.
		for _, key := range fs.coneKeys {
			id := netlist.NetID(uint32(key))
			if id == forceNet {
				fs.cur[id] = forceVal
				continue
			}
			g := &fs.c.Gates[id]
			if g.Type == netlist.Input {
				fs.cur[id] = good[id]
				continue
			}
			fs.cur[id] = evalPackedCone(g.Type, g.Fanin, fs.cur, good, fs.inCone)
		}
		var diffs []poWordDiff
		for _, pi := range fs.conePOs {
			po := fs.c.POs[pi]
			diff := fs.cur[po].DiffKnown(good[po])
			if diff == 0 {
				continue
			}
			if cacheF != nil {
				diffs = append(diffs, poWordDiff{po: pi, diff: diff})
			}
			base := w * logic.W
			for m := diff; m != 0; m &= m - 1 {
				p := base + tz64(m)
				if p >= len(fs.pats) {
					break
				}
				fs.addFail(syn, p, int(pi))
			}
		}
		if cacheF != nil {
			fs.storeWord(*cacheF, w, diffs)
		}
	}
	return syn
}

// evalPackedCone evaluates one gate reading faulty values for fan-in nets
// inside the cone and cached good-machine values for everything else.
func evalPackedCone(t netlist.GateType, fanin []netlist.NetID, cur, good []logic.PV64, inCone []bool) logic.PV64 {
	in := func(f netlist.NetID) logic.PV64 {
		if inCone[f] {
			return cur[f]
		}
		return good[f]
	}
	switch t {
	case netlist.Buf:
		return in(fanin[0])
	case netlist.Not:
		return in(fanin[0]).Not()
	case netlist.And, netlist.Nand:
		acc := in(fanin[0])
		for _, f := range fanin[1:] {
			acc = acc.And(in(f))
		}
		if t == netlist.Nand {
			acc = acc.Not()
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := in(fanin[0])
		for _, f := range fanin[1:] {
			acc = acc.Or(in(f))
		}
		if t == netlist.Nor {
			acc = acc.Not()
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := in(fanin[0])
		for _, f := range fanin[1:] {
			acc = acc.Xor(in(f))
		}
		if t == netlist.Xnor {
			acc = acc.Not()
		}
		return acc
	}
	return logic.PVX
}

// tz64 returns the position of m's lowest set bit.
func tz64(m uint64) int { return bits.TrailingZeros64(m) }

// Coverage runs the full stuck-at universe and returns (detected, total).
// The universe is fault-parallel across GOMAXPROCS workers; the count is
// identical to a sequential sweep.
func Coverage(c *netlist.Circuit, pats []sim.Pattern, faults []fault.StuckAt) (int, int, error) {
	fs, err := NewFaultSim(c, pats)
	if err != nil {
		return 0, 0, err
	}
	det := 0
	for _, syn := range fs.SimulateStuckAtBatch(faults, 0) {
		if syn.Detected() {
			det++
		}
	}
	return det, len(faults), nil
}

// Dictionary is a full-response cause-effect fault dictionary: the syndrome
// of every fault in a universe.
type Dictionary struct {
	Faults    []fault.StuckAt
	Syndromes []*Syndrome
}

// BuildDictionary simulates every fault in the universe and stores its
// syndrome. The cost is O(|faults| × |patterns|) simulations, which is what
// makes dictionary methods expensive at scale — exactly the cost the
// effect-cause approach avoids (see the baseline comparison experiments).
func BuildDictionary(c *netlist.Circuit, pats []sim.Pattern, faults []fault.StuckAt) (*Dictionary, error) {
	fs, err := NewFaultSim(c, pats)
	if err != nil {
		return nil, err
	}
	return &Dictionary{Faults: faults, Syndromes: fs.SimulateStuckAtBatch(faults, 0)}, nil
}

// Lookup returns the indices of dictionary faults whose syndrome exactly
// matches the observed syndrome.
func (d *Dictionary) Lookup(obs *Syndrome) []int {
	var out []int
	for i, s := range d.Syndromes {
		if s.Equal(obs) {
			out = append(out, i)
		}
	}
	return out
}
