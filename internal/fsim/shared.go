package fsim

import (
	"multidiag/internal/obs"
)

// Shared is the simulation context shared by every diagnosis of one
// (circuit, test set) workload: a warm cone cache and the fault-parallel
// worker share each diagnosis may claim. The experiment campaigns thread
// one Shared through all of a workload's devices; the diagnosis service
// keeps one per registered workload for the lifetime of the process.
type Shared struct {
	// Cache memoizes per-(fault site, pattern word, stuck value) cone
	// results across candidates and across diagnoses.
	Cache *ConeCache
	// Workers is the per-diagnosis fault-parallel pool size (the fault
	// share left over once `outer` concurrent diagnoses split the budget).
	Workers int
}

// NewShared builds a workload's shared simulation context: one cone cache
// — observed into reg — and the fault-worker share left over once `outer`
// concurrent diagnoses claim their slice of the total budget. budget ≤ 0
// selects GOMAXPROCS; outer < 1 is treated as 1.
func NewShared(reg *obs.Registry, budget, outer int) Shared {
	cc := NewConeCache(0)
	cc.Observe(reg)
	if outer < 1 {
		outer = 1
	}
	fw := Workers(budget) / outer
	if fw < 1 {
		fw = 1
	}
	return Shared{Cache: cc, Workers: fw}
}
