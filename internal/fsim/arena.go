// Scratch arenas for the fault-simulation hot path. A diagnosis scores
// thousands of candidate faults against one packed pattern set; without
// reuse every candidate allocates a syndrome, per-pattern failing-output
// sets, and per-worker propagation scratch, which makes the allocator (and
// the GC assists it triggers on every worker) the real bottleneck of the
// parallel engine. The arenas here recycle all three:
//
//   - syndromes and their failing-output bitsets cycle through a
//     mutex-guarded free list owned by the root simulator
//     (AcquireSyndrome / ReleaseSyndrome), so a chunked scoring pass
//     keeps only O(workers × chunk) syndromes live instead of
//     O(candidates);
//   - forked worker simulators cycle through a free list on the root
//     (AcquireFork / ReleaseFork), so repeated batch calls — the serving
//     batcher's steady state — reuse the same propagation scratch.
//
// Recycled memory never crosses a live boundary: a syndrome is released
// only after its chunk has been folded, and a fork only after its batch
// has completed, both enforced by the callers in this package and
// internal/core. The -race stress tests pin the no-aliasing contract.
package fsim

import (
	"sync"

	"multidiag/internal/bitset"
)

// synArena recycles syndromes for one (pattern count, PO count) shape. It
// is owned by a root FaultSim and shared — via the root pointer — by
// every fork, so any worker may acquire and any folder may release. A
// released syndrome keeps its (zeroed) failing-output bitsets on an
// internal spare list, so the sets recycle with their syndrome and a
// recycled set never travels between goroutines apart from its syndrome.
//
// The free list is a mutex-guarded slice, not a sync.Pool: the population
// is bounded by the scoring engine's in-flight chunk window (O(workers ×
// chunk), ~100 syndromes), and unlike a sync.Pool it survives GC cycles —
// a scoring pass allocates its working set once per simulator lifetime,
// not once per GC.
type synArena struct {
	pats int
	pos  int
	mu   sync.Mutex
	free []*Syndrome // Fails all nil, spare holds zeroed sets
}

func newSynArena(pats, pos int) *synArena {
	return &synArena{pats: pats, pos: pos}
}

// acquire returns an all-passing syndrome, reusing a released one when
// available.
func (a *synArena) acquire() *Syndrome {
	a.mu.Lock()
	var s *Syndrome
	if n := len(a.free); n > 0 {
		s = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	}
	a.mu.Unlock()
	if s != nil {
		return s
	}
	return NewSyndrome(a.pats, a.pos)
}

// release recycles a syndrome and its bitsets. The caller must not retain
// any reference to the syndrome or its Fails entries.
func (a *synArena) release(s *Syndrome) {
	if s == nil || s.NumPatterns != a.pats || s.NumPOs != a.pos {
		return // foreign shape: let the GC have it
	}
	for p, f := range s.Fails {
		if f == nil {
			continue
		}
		f.Clear()
		s.spare = append(s.spare, f)
		s.Fails[p] = nil
	}
	a.mu.Lock()
	a.free = append(a.free, s)
	a.mu.Unlock()
}

// failSet returns a cleared bitset sized for the PO universe, popping the
// syndrome's spare list before allocating.
func (a *synArena) failSet(s *Syndrome) bitset.Set {
	if n := len(s.spare); n > 0 {
		f := s.spare[n-1]
		s.spare = s.spare[:n-1]
		return f
	}
	return bitset.New(a.pos)
}

// AcquireSyndrome returns a pooled all-passing syndrome shaped for this
// simulator's workload. Release it with ReleaseSyndrome once every reader
// is done; syndromes that escape (reports, dictionaries) may simply be
// dropped for the GC instead.
func (fs *FaultSim) AcquireSyndrome() *Syndrome { return fs.arena.acquire() }

// ReleaseSyndrome recycles a syndrome produced by this simulator (or any
// of its forks) back into the shared arena. The caller must not touch the
// syndrome afterwards. Releasing nil is a no-op.
func (fs *FaultSim) ReleaseSyndrome(s *Syndrome) { fs.arena.release(s) }

// addFail records a failing (pattern, PO) bit using the syndrome's
// recycled fail sets.
func (fs *FaultSim) addFail(syn *Syndrome, p, po int) {
	if syn.Fails[p] == nil {
		syn.Fails[p] = fs.arena.failSet(syn)
	}
	syn.Fails[p].Add(po)
}

// AcquireFork returns a worker simulator sharing fs's immutable packed
// state, reusing scratch from the root's free list when available. The
// fork inherits fs's cache binding and observability handles at acquire
// time (a pooled fork may have been released by a diagnosis with different
// handles). Release it with ReleaseFork when the batch is done.
func (fs *FaultSim) AcquireFork() *FaultSim {
	r := fs.root()
	r.forkMu.Lock()
	var w *FaultSim
	if n := len(r.forkFree); n > 0 {
		w = r.forkFree[n-1]
		r.forkFree = r.forkFree[:n-1]
	}
	r.forkMu.Unlock()
	if w == nil {
		return fs.Fork()
	}
	// Refresh the shared handles: the pooled scratch (cur, inCone, stack,
	// cone order) carries over, everything identity-bearing is re-copied
	// from the acquiring simulator.
	w.cache = fs.cache
	w.probeHits, w.probeMisses = 0, 0
	w.statSims = fs.statSims
	w.statConeEvals = fs.statConeEvals
	w.statXWords = fs.statXWords
	w.statConeSize = fs.statConeSize
	return w
}

// ReleaseFork returns a fork acquired with AcquireFork (or created with
// Fork) to the root's free list for reuse by a later batch. The fork must
// not be used after release.
func (fs *FaultSim) ReleaseFork(w *FaultSim) {
	if w == nil || w == fs {
		return
	}
	r := fs.root()
	r.forkMu.Lock()
	r.forkFree = append(r.forkFree, w)
	r.forkMu.Unlock()
}

// root resolves the simulator owning the shared arenas (itself for a
// simulator built by NewFaultSim).
func (fs *FaultSim) root() *FaultSim {
	if fs.rootSim != nil {
		return fs.rootSim
	}
	return fs
}
