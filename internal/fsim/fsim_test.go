package fsim

import (
	"math/rand"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/fault"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

func c17(t testing.TB) *netlist.Circuit { t.Helper(); return circuits.C17() }

func exhaustivePatterns(npi int) []sim.Pattern {
	n := 1 << npi
	pats := make([]sim.Pattern, n)
	for m := 0; m < n; m++ {
		p := make(sim.Pattern, npi)
		for i := 0; i < npi; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats[m] = p
	}
	return pats
}

func randomPatterns(r *rand.Rand, npi, n int) []sim.Pattern {
	pats := make([]sim.Pattern, n)
	for i := range pats {
		p := make(sim.Pattern, npi)
		for j := range p {
			p[j] = logic.FromBool(r.Intn(2) == 1)
		}
		pats[i] = p
	}
	return pats
}

// refSyndrome computes a stuck-at syndrome with plain scalar simulation.
func refSyndrome(t *testing.T, c *netlist.Circuit, pats []sim.Pattern, f fault.StuckAt) *Syndrome {
	t.Helper()
	syn := NewSyndrome(len(pats), len(c.POs))
	fv := logic.Zero
	if f.Value1 {
		fv = logic.One
	}
	for p, pat := range pats {
		good, err := sim.EvalScalar(c, pat, nil)
		if err != nil {
			t.Fatal(err)
		}
		bad, err := sim.EvalScalar(c, pat, map[netlist.NetID]logic.Value{f.Net: fv})
		if err != nil {
			t.Fatal(err)
		}
		for i, po := range c.POs {
			if good[po] != bad[po] && good[po].IsKnown() && bad[po].IsKnown() {
				syn.AddFail(p, i)
			}
		}
	}
	return syn
}

func TestSyndromeBasics(t *testing.T) {
	s := NewSyndrome(4, 3)
	if s.Detected() || s.NumFailBits() != 0 {
		t.Fatal("fresh syndrome detected")
	}
	s.AddFail(1, 0)
	s.AddFail(1, 2)
	s.AddFail(3, 1)
	if !s.Detected() || s.NumFailBits() != 3 {
		t.Fatalf("fail bits = %d", s.NumFailBits())
	}
	fp := s.FailingPatterns()
	if len(fp) != 2 || fp[0] != 1 || fp[1] != 3 {
		t.Fatalf("failing patterns %v", fp)
	}
	s2 := NewSyndrome(4, 3)
	s2.AddFail(1, 0)
	s2.AddFail(1, 2)
	s2.AddFail(3, 1)
	if !s.Equal(s2) {
		t.Fatal("equal syndromes unequal")
	}
	s2.AddFail(0, 0)
	if s.Equal(s2) {
		t.Fatal("unequal syndromes equal")
	}
	if s.Equal(NewSyndrome(5, 3)) {
		t.Fatal("size mismatch not detected")
	}
	// nil vs empty set equivalence
	s3 := NewSyndrome(4, 3)
	s4 := NewSyndrome(4, 3)
	s3.AddFail(0, 0)
	s3.Fails[0].Remove(0) // now empty but non-nil
	if !s3.Equal(s4) || !s4.Equal(s3) {
		t.Fatal("empty/nil fail sets must compare equal")
	}
}

// TestPPSFPMatchesScalar: the cone-limited packed fault simulator must agree
// with the brute-force scalar reference on every stuck-at fault of c17 under
// exhaustive patterns.
func TestPPSFPMatchesScalarC17(t *testing.T) {
	c := c17(t)
	pats := exhaustivePatterns(5)
	fs, err := NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fault.List(c) {
		got := fs.SimulateStuckAt(f)
		want := refSyndrome(t, c, pats, f)
		if !got.Equal(want) {
			t.Fatalf("fault %s: syndromes differ", f.Name(c))
		}
	}
}

func TestPPSFPMatchesScalarRandom(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 9, NumPIs: 10, NumGates: 150, NumPOs: 6})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	pats := randomPatterns(r, len(c.PIs), 100)
	fs, err := NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.List(c)
	// Sample the universe for test speed.
	for i := 0; i < 60; i++ {
		f := faults[r.Intn(len(faults))]
		got := fs.SimulateStuckAt(f)
		want := refSyndrome(t, c, pats, f)
		if !got.Equal(want) {
			t.Fatalf("fault %s: syndromes differ", f.Name(c))
		}
	}
}

func TestGoodValueAndPOSet(t *testing.T) {
	c := c17(t)
	pats := exhaustivePatterns(5)
	fs, err := NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < len(pats); p += 7 {
		good, err := sim.EvalScalar(c, pats[p], nil)
		if err != nil {
			t.Fatal(err)
		}
		for id := range c.Gates {
			if fs.GoodValue(netlist.NetID(id), p) != good[id] {
				t.Fatalf("GoodValue mismatch at pattern %d net %d", p, id)
			}
		}
		ps := fs.GoodPOSet(p)
		for i, po := range c.POs {
			if ps.Has(i) != (good[po] == logic.One) {
				t.Fatalf("GoodPOSet mismatch at pattern %d", p)
			}
		}
	}
}

func TestSimulateOpen(t *testing.T) {
	c := c17(t)
	pats := exhaustivePatterns(5)
	fs, _ := NewFaultSim(c, pats)
	n := c.NetByName("G16")
	o := fault.Open{Net: n, StuckValue1: true}
	got := fs.SimulateOpen(o)
	want := refSyndrome(t, c, pats, fault.StuckAt{Net: n, Value1: true})
	if !got.Equal(want) {
		t.Fatal("open syndrome must match equivalent stuck-at")
	}
}

func TestSimulateXAt(t *testing.T) {
	c := c17(t)
	pats := exhaustivePatterns(5)
	fs, _ := NewFaultSim(c, pats)
	n := c.NetByName("G16")
	xs := fs.SimulateXAt([]netlist.NetID{n})
	// Property: if stuck-at-v at n is observed at PO o under pattern p, then
	// X at n must reach o under p (X-propagation over-approximates).
	for _, f := range []fault.StuckAt{{Net: n, Value1: false}, {Net: n, Value1: true}} {
		syn := fs.SimulateStuckAt(f)
		for p, fails := range syn.Fails {
			if fails == nil {
				continue
			}
			for _, po := range fails.Members() {
				if xs[p] == nil || !xs[p].Has(po) {
					t.Fatalf("X at %s misses PO %d on pattern %d though %s is observed there",
						c.NameOf(n), po, p, f.Name(c))
				}
			}
		}
	}
	// And X must never reach a PO outside the structural fanout cone.
	for p := range xs {
		if xs[p] == nil {
			continue
		}
		reach := map[int]bool{}
		for i, po := range c.POs {
			if c.FanoutCone(n)[po] {
				reach[i] = true
			}
		}
		for _, po := range xs[p].Members() {
			if !reach[po] {
				t.Fatalf("X escaped the structural cone to PO %d", po)
			}
		}
	}
}

func TestCoverage(t *testing.T) {
	c := c17(t)
	pats := exhaustivePatterns(5)
	det, total, err := Coverage(c, pats, fault.Collapse(c))
	if err != nil {
		t.Fatal(err)
	}
	if det != total {
		t.Fatalf("exhaustive patterns must detect all collapsed faults: %d/%d", det, total)
	}
	// A single pattern detects strictly fewer.
	det1, _, err := Coverage(c, pats[:1], fault.Collapse(c))
	if err != nil {
		t.Fatal(err)
	}
	if det1 >= det {
		t.Fatalf("single pattern detects %d ≥ %d", det1, det)
	}
}

func TestDictionary(t *testing.T) {
	c := c17(t)
	pats := exhaustivePatterns(5)
	faults := fault.Collapse(c)
	d, err := BuildDictionary(c, pats, faults)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := NewFaultSim(c, pats)
	// Looking up each fault's own syndrome must return (at least) itself.
	for i, f := range faults {
		obs := fs.SimulateStuckAt(f)
		hits := d.Lookup(obs)
		found := false
		for _, h := range hits {
			if h == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("dictionary lookup of %s missed itself", f.Name(c))
		}
	}
	// An impossible syndrome returns no hits.
	bogus := NewSyndrome(len(pats), len(c.POs))
	for p := 0; p < len(pats); p++ {
		bogus.AddFail(p, 0)
		bogus.AddFail(p, 1)
	}
	if hits := d.Lookup(bogus); len(hits) != 0 {
		t.Fatalf("bogus syndrome matched %v", hits)
	}
}

func TestNewFaultSimEmpty(t *testing.T) {
	c := c17(t)
	if _, err := NewFaultSim(c, nil); err == nil {
		t.Fatal("empty pattern set accepted")
	}
}

// --- CPT tests ---

func TestCPTMatchesBruteForceC17(t *testing.T) {
	c := c17(t)
	cpt := NewCPT(c)
	for m := 0; m < 32; m++ {
		p := exhaustivePatterns(5)[m]
		for _, po := range c.POs {
			got, vals, err := cpt.Critical(p, po)
			if err != nil {
				t.Fatal(err)
			}
			want, err := BruteForceCritical(c, p, po)
			if err != nil {
				t.Fatal(err)
			}
			for id := range got {
				if got[id] != want[id] {
					t.Fatalf("pattern %05b po %s net %s: cpt %v brute %v",
						m, c.NameOf(po), c.NameOf(netlist.NetID(id)), got[id], want[id])
				}
			}
			_ = vals
		}
	}
}

func TestCPTMatchesBruteForceRandom(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c, err := circuits.Generate(circuits.GenConfig{Seed: seed, NumPIs: 9, NumGates: 120, NumPOs: 5})
		if err != nil {
			t.Fatal(err)
		}
		cpt := NewCPT(c)
		r := rand.New(rand.NewSource(seed + 50))
		for trial := 0; trial < 10; trial++ {
			p := randomPatterns(r, len(c.PIs), 1)[0]
			po := c.POs[r.Intn(len(c.POs))]
			got, _, err := cpt.Critical(p, po)
			if err != nil {
				t.Fatal(err)
			}
			want, err := BruteForceCritical(c, p, po)
			if err != nil {
				t.Fatal(err)
			}
			for id := range got {
				if got[id] != want[id] {
					t.Fatalf("seed %d trial %d po %s net %s: cpt %v brute %v",
						seed, trial, c.NameOf(po), c.NameOf(netlist.NetID(id)), got[id], want[id])
				}
			}
		}
	}
}

// TestCPTSelfMaskingStem builds the pathological case where a stem is
// critical although none of its branches' reader outputs are critical:
// po = AND(x, y) with x, y both 0, and flipping the stem flips both.
func TestCPTSelfMaskingStem(t *testing.T) {
	c := netlist.NewCircuit("mask")
	s := c.MustAddGate(netlist.Input, "s")
	e := c.MustAddGate(netlist.Input, "e")
	x := c.MustAddGate(netlist.And, "x", s, e)
	y := c.MustAddGate(netlist.Or, "y", s, e)
	po := c.MustAddGate(netlist.And, "po", x, y)
	if err := c.MarkPO(po); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	// s=0, e=1: x=0, y=1, po=0. Flip s → x=1, y=1, po=1: s critical.
	// Flip x alone → po = AND(1,1)... wait y=1 so x IS critical here.
	// Use e=1, s=0: x=0 (critical since y=1), fine — now the exactness is
	// checked against brute force anyway for both input combinations.
	cpt := NewCPT(c)
	for m := 0; m < 4; m++ {
		p := sim.Pattern{logic.FromBool(m&1 == 1), logic.FromBool(m&2 == 2)}
		got, _, err := cpt.Critical(p, po)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForceCritical(c, p, po)
		if err != nil {
			t.Fatal(err)
		}
		for id := range got {
			if got[id] != want[id] {
				t.Fatalf("m=%d net %s: cpt %v brute %v", m, c.NameOf(netlist.NetID(id)), got[id], want[id])
			}
		}
	}
}

// TestCPTCandidateProperty: for a failing output, the fault-free-complement
// stuck-at on every critical net must be observed at that output, and on
// every non-critical net must not.
func TestCPTCandidateProperty(t *testing.T) {
	c := c17(t)
	pats := exhaustivePatterns(5)
	fs, _ := NewFaultSim(c, pats)
	cpt := NewCPT(c)
	for pIdx := 0; pIdx < len(pats); pIdx += 5 {
		p := pats[pIdx]
		for poIdx, po := range c.POs {
			crit, vals, err := cpt.Critical(p, po)
			if err != nil {
				t.Fatal(err)
			}
			for id := range c.Gates {
				n := netlist.NetID(id)
				if !vals[n].IsKnown() {
					continue
				}
				f := fault.StuckAt{Net: n, Value1: vals[n] == logic.Zero}
				syn := fs.SimulateStuckAt(f)
				observed := syn.Fails[pIdx] != nil && syn.Fails[pIdx].Has(poIdx)
				if crit[n] != observed {
					t.Fatalf("pattern %d po %d net %s: critical=%v observed=%v",
						pIdx, poIdx, c.NameOf(n), crit[n], observed)
				}
			}
		}
	}
}

func TestCriticalForOutputs(t *testing.T) {
	c := c17(t)
	cpt := NewCPT(c)
	p := exhaustivePatterns(5)[13]
	union, per, _, err := cpt.CriticalForOutputs(p, c.POs)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("per-output count %d", len(per))
	}
	for id := range union {
		want := per[0][id] || per[1][id]
		if union[id] != want {
			t.Fatalf("union wrong at net %d", id)
		}
	}
}

// TestApproxCPTIsSupersetOnFanoutFree: on fanout-free paths the approximate
// tracer agrees with the exact one; with reconvergence it may differ, but
// for a failing output the approximate union must at least contain the
// exact criticals that lie on fanout-free segments.
func TestApproxCPTAgainstExact(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 31, NumPIs: 9, NumGates: 120, NumPOs: 5})
	if err != nil {
		t.Fatal(err)
	}
	cpt := NewCPT(c)
	r := rand.New(rand.NewSource(8))
	pats := randomPatterns(r, len(c.PIs), 6)
	refs := make([]int, c.NumGates())
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			refs[f]++
		}
	}
	for _, p := range pats {
		exact, _, _, err := cpt.CriticalForOutputs(p, c.POs)
		if err != nil {
			t.Fatal(err)
		}
		approx, _, err := cpt.CriticalApproxForOutputs(p, c.POs)
		if err != nil {
			t.Fatal(err)
		}
		for id := range c.Gates {
			if refs[id] <= 1 && exact[id] != approx[id] {
				// Fanout-free nets propagate criticality identically under
				// both rules *unless* a stem above them diverges; only flag
				// when the driver-side chain up to the next stem agrees.
				// Simplest sound check: a net whose entire fanout chain to
				// the PO is fanout-free must agree.
				if fanoutFreeToPO(c, netlist.NetID(id), refs) {
					t.Fatalf("fanout-free net %s: exact %v approx %v",
						c.NameOf(netlist.NetID(id)), exact[id], approx[id])
				}
			}
		}
	}
}

// fanoutFreeToPO reports whether the unique reader chain from n reaches a
// PO without crossing any fanout stem.
func fanoutFreeToPO(c *netlist.Circuit, n netlist.NetID, refs []int) bool {
	for {
		if c.IsPO(n) {
			return true
		}
		if refs[n] != 1 || len(c.Gates[n].Fanout) != 1 {
			return false
		}
		n = c.Gates[n].Fanout[0]
	}
}
