package fsim

import (
	"math/rand"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/fault"
	"multidiag/internal/logic"
)

// TestPFSFPMatchesPPSFP: both packings must produce identical per-pattern
// failing-PO sets for every fault.
func TestPFSFPMatchesPPSFP(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		c, err := circuits.Generate(circuits.GenConfig{Seed: seed, NumPIs: 10, NumGates: 150, NumPOs: 8})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed + 1))
		pats := randomPatterns(r, len(c.PIs), 40)
		fs, err := NewFaultSim(c, pats)
		if err != nil {
			t.Fatal(err)
		}
		ps := NewPFSFP(c)
		universe := fault.Collapse(c)
		// Chunk like GradePatterns does.
		for base := 0; base < len(universe); base += logic.W - 1 {
			end := base + logic.W - 1
			if end > len(universe) {
				end = len(universe)
			}
			chunk := universe[base:end]
			for pIdx, p := range pats {
				fails, err := ps.DetectBatch(p, chunk)
				if err != nil {
					t.Fatal(err)
				}
				for i, f := range chunk {
					want := fs.SimulateStuckAt(f)
					var wantPOs []int
					if want.Fails[pIdx] != nil {
						wantPOs = want.Fails[pIdx].Members()
					}
					got := fails[i]
					if len(got) != len(wantPOs) {
						t.Fatalf("seed %d fault %s pattern %d: PFSFP %v vs PPSFP %v",
							seed, f.Name(c), pIdx, got, wantPOs)
					}
					for j := range got {
						if got[j] != wantPOs[j] {
							t.Fatalf("seed %d fault %s pattern %d: PFSFP %v vs PPSFP %v",
								seed, f.Name(c), pIdx, got, wantPOs)
						}
					}
				}
			}
		}
	}
}

func TestGradePatternsMatchesCoverage(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	universe := fault.Collapse(c)
	det, err := GradePatterns(c, pats, universe)
	if err != nil {
		t.Fatal(err)
	}
	detN, total, err := Coverage(c, pats, universe)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, d := range det {
		if d {
			n++
		}
	}
	if n != detN || len(det) != total {
		t.Fatalf("GradePatterns %d/%d vs Coverage %d/%d", n, len(det), detN, total)
	}
}

func TestDetectionCounts(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	universe := fault.Collapse(c)
	counts, err := DetectionCounts(c, pats, universe)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := NewFaultSim(c, pats)
	for i, f := range universe {
		want := len(fs.SimulateStuckAt(f).FailingPatterns())
		if counts[i] != want {
			t.Fatalf("fault %s: count %d, want %d", f.Name(c), counts[i], want)
		}
	}
}

func TestDetectBatchValidation(t *testing.T) {
	c := circuits.C17()
	ps := NewPFSFP(c)
	if _, err := ps.DetectBatch(make([]logic.Value, 2), fault.List(c)[:1]); err == nil {
		t.Fatal("width mismatch accepted")
	}
	// >63 faults are truncated, not an error: verify only 63 results.
	p := exhaustivePatterns(5)[0]
	big := make([]fault.StuckAt, 100)
	for i := range big {
		big[i] = fault.StuckAt{Net: 0, Value1: i%2 == 0}
	}
	out, err := ps.DetectBatch(p, big)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != logic.W-1 {
		t.Fatalf("batch size %d", len(out))
	}
}

// TestPFSFPXPattern: X inputs must not give detection credit through
// unknown POs.
func TestPFSFPXPattern(t *testing.T) {
	c := circuits.C17()
	ps := NewPFSFP(c)
	p := make([]logic.Value, 5)
	for i := range p {
		p[i] = logic.X
	}
	fails, err := ps.DetectBatch(p, fault.Collapse(c))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fails {
		if len(f) != 0 {
			t.Fatalf("all-X pattern claimed detection of fault %d", i)
		}
	}
}
