package fsim

import (
	"math/rand"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/fault"
	"multidiag/internal/obs"
)

// batchFixture builds a mid-size generated circuit with random patterns and
// its collapsed stuck-at universe.
func batchFixture(t testing.TB) (*FaultSim, []fault.StuckAt) {
	t.Helper()
	c, err := circuits.Generate(circuits.GenConfig{Seed: 41, NumPIs: 12, NumGates: 200, NumPOs: 8})
	if err != nil {
		t.Fatal(err)
	}
	pats := randomPatterns(rand.New(rand.NewSource(41)), len(c.PIs), 96)
	fs, err := NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	return fs, fault.Collapse(c)
}

func TestSimulateStuckAtBatchMatchesSequential(t *testing.T) {
	fs, faults := batchFixture(t)
	want := make([]*Syndrome, len(faults))
	for i, f := range faults {
		want[i] = fs.SimulateStuckAt(f)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, len(faults) + 5} {
		got := fs.SimulateStuckAtBatch(faults, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d syndromes, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("workers=%d: fault %s syndrome differs from sequential",
					workers, faults[i].String())
			}
		}
	}
}

func TestSimulateStuckAtBatchEmpty(t *testing.T) {
	fs, _ := batchFixture(t)
	if got := fs.SimulateStuckAtBatch(nil, 4); len(got) != 0 {
		t.Fatalf("empty batch returned %d syndromes", len(got))
	}
}

func TestForkSharesCountersAndState(t *testing.T) {
	fs, faults := batchFixture(t)
	reg := obs.NewRegistry()
	fs.Observe(reg)
	fk := fs.Fork()
	a := fs.SimulateStuckAt(faults[0])
	b := fk.SimulateStuckAt(faults[0])
	if !a.Equal(b) {
		t.Fatal("fork syndrome differs from parent")
	}
	if got := reg.Counter("fsim.sims").Value(); got != 2 {
		t.Fatalf("shared sims counter = %d, want 2", got)
	}
}
