package fsim

import (
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
)

// CPT performs exact gate-level critical path tracing for one pattern.
//
// A net n is *critical* with respect to primary output po under pattern p
// when flipping n's fault-free value (at the net, i.e. on all of its fanout
// branches simultaneously) flips the value observed at po. Critical nets are
// exactly the sites where a stuck-at fault (stuck at the complement of the
// fault-free value) would be observed at po — the effect-cause candidate set
// for a failing output.
//
// The implementation is exact, including reconvergent-fanout self-masking
// cases that classical approximate CPT mishandles:
//
//   - fanout-free nets are traced backward through gate input sensitivity
//     (a single-reader net is critical iff its reader's output is critical
//     and the input is sensitive, which composes exactly along the unique
//     path);
//   - fanout stems are resolved by an explicit flip-and-propagate check with
//     the event-driven simulator (stem analysis), which is exact by
//     definition.
//
// CPT requires a fully determinate pattern (no X values).
type CPT struct {
	c  *netlist.Circuit
	es *sim.EventSim

	refs []int // number of fan-in references per net (stem detection)

	// Multi-output tracing scratch, reused across CriticalForOutputs calls
	// so the per-failing-pattern extraction loop allocates nothing in its
	// steady state. All of it is owned by the tracer and valid only until
	// the next trace call.
	vals      []logic.Value
	union     []bool
	per       [][]bool
	cones     [][]bool
	unionCone []bool
	coneStack []netlist.NetID
	before    []logic.Value
	flipArena []bool  // per-stem × per-output flip verdicts, carved in order
	stemOff   []int32 // per net: offset of its verdicts in flipArena, -1 none

	statTraces    *obs.Counter
	statStemFlips *obs.Counter
}

// NewCPT builds a tracer for the finalized circuit c.
func NewCPT(c *netlist.Circuit) *CPT {
	t := &CPT{c: c, es: sim.NewEventSim(c), refs: make([]int, c.NumGates())}
	for i := range c.Gates {
		for _, f := range c.Gates[i].Fanin {
			t.refs[f]++
		}
	}
	return t
}

// Fork returns a tracer sharing t's circuit, stem reference counts, and
// observability counters, with a private simulator and private scratch.
// The fork and its parent may trace concurrently (distinct patterns or
// the same — tracing is read-only on shared state).
func (t *CPT) Fork() *CPT {
	return &CPT{
		c:             t.c,
		es:            sim.NewEventSim(t.c),
		refs:          t.refs,
		statTraces:    t.statTraces,
		statStemFlips: t.statStemFlips,
	}
}

// Observe wires the tracer's counters into r (nil r detaches): backtraces
// run and exact stem flip-and-propagate checks (the expensive primitive
// of exact CPT).
func (t *CPT) Observe(r *obs.Registry) {
	t.statTraces = r.Counter("cpt.traces")
	t.statStemFlips = r.Counter("cpt.stem_flips")
}

// Critical computes the set of nets critical for po under pattern p, as a
// boolean slice indexed by NetID. The second return value is the per-net
// fault-free values of the pattern (useful to the caller for deriving
// stuck-at candidate polarity).
func (t *CPT) Critical(p sim.Pattern, po netlist.NetID) ([]bool, []logic.Value, error) {
	if err := t.es.Baseline(p, nil); err != nil {
		return nil, nil, err
	}
	t.statTraces.Inc()
	vals := append([]logic.Value(nil), t.es.Values()...)
	crit := make([]bool, t.c.NumGates())

	cone := t.c.FaninCone(po)
	ord := t.c.LevelOrder()
	// Reverse level-order sweep restricted to the cone.
	for i := len(ord) - 1; i >= 0; i-- {
		n := ord[i]
		if !cone[n] {
			continue
		}
		switch {
		case n == po:
			crit[n] = true
		case t.refs[n] > 1:
			// Stem: exact flip check.
			crit[n] = t.flipChangesPO(n, vals[n], po)
		case t.refs[n] == 1:
			// Single reader: find it and test sensitivity.
			rd := t.singleReader(n)
			if rd == netlist.InvalidNet || !crit[rd] {
				break
			}
			if t.inputSensitive(rd, n, vals) {
				crit[n] = true
			}
		default:
			// Dangling net other than po: never critical.
		}
	}
	return crit, vals, nil
}

// CriticalForOutputs traces each po in pos and ORs the per-output results,
// also returning the per-output sets. One baseline evaluation and one
// flip-propagation per fanout stem are shared across all outputs — the
// multi-output amortization that makes per-failing-output candidate
// extraction affordable on devices with wide syndromes (a stem flip is
// propagated once and its effect read at every output simultaneously).
//
// The returned slices are scratch owned by the tracer, valid until its
// next trace call; callers that keep results across patterns must copy.
func (t *CPT) CriticalForOutputs(p sim.Pattern, pos []netlist.NetID) (union []bool, per [][]bool, vals []logic.Value, err error) {
	if err := t.es.Baseline(p, nil); err != nil {
		return nil, nil, nil, err
	}
	t.statTraces.Inc()
	n := t.c.NumGates()
	t.vals = append(t.vals[:0], t.es.Values()...)
	vals = t.vals
	t.union = clearBools(t.union, n)
	union = t.union
	if cap(t.per) < len(pos) {
		t.per = append(t.per[:cap(t.per)], make([][]bool, len(pos)-cap(t.per))...)
	}
	t.per = t.per[:len(pos)]
	per = t.per
	for i := range per {
		per[i] = clearBools(per[i], n)
	}

	// Per-output fanin cones and the union cone.
	if cap(t.cones) < len(pos) {
		t.cones = append(t.cones[:cap(t.cones)], make([][]bool, len(pos)-cap(t.cones))...)
	}
	t.cones = t.cones[:len(pos)]
	cones := t.cones
	t.unionCone = clearBools(t.unionCone, n)
	unionCone := t.unionCone
	for i, po := range pos {
		cones[i], t.coneStack = t.c.FaninConeInto(po, cones[i], t.coneStack)
		for id, in := range cones[i] {
			if in {
				unionCone[id] = true
			}
		}
	}

	// Stem analysis: flip each stem in the union cone once; record which
	// outputs change. Verdicts are carved from a flat arena indexed via
	// stemOff (per-net), replacing a map of per-stem slices.
	if cap(t.stemOff) < n {
		t.stemOff = make([]int32, n)
	}
	t.stemOff = t.stemOff[:n]
	for i := range t.stemOff {
		t.stemOff[i] = -1
	}
	t.flipArena = t.flipArena[:0]
	t.before = t.before[:0]
	for _, po := range pos {
		t.before = append(t.before, t.es.Value(po))
	}
	for id := 0; id < n; id++ {
		s := netlist.NetID(id)
		if !unionCone[id] || t.refs[s] <= 1 {
			continue
		}
		t.statStemFlips.Inc()
		_, restore := t.es.PropagateFrom(s, vals[s].Not())
		t.stemOff[id] = int32(len(t.flipArena))
		for i, po := range pos {
			t.flipArena = append(t.flipArena, t.es.Value(po) != t.before[i])
		}
		restore()
	}

	// Per-output backtrace using the shared stem verdicts (no further
	// simulation).
	ord := t.c.LevelOrder()
	for pi, po := range pos {
		crit := per[pi]
		cone := cones[pi]
		for i := len(ord) - 1; i >= 0; i-- {
			nID := ord[i]
			if !cone[nID] {
				continue
			}
			switch {
			case nID == po:
				crit[nID] = true
			case t.refs[nID] > 1:
				if off := t.stemOff[nID]; off >= 0 {
					crit[nID] = t.flipArena[int(off)+pi]
				}
			case t.refs[nID] == 1:
				rd := t.singleReader(nID)
				if rd == netlist.InvalidNet || !crit[rd] {
					break
				}
				if t.inputSensitive(rd, nID, vals) {
					crit[nID] = true
				}
			}
			if crit[nID] {
				union[nID] = true
			}
		}
	}
	return union, per, vals, nil
}

// clearBools returns b resized to n with every element false, reusing its
// backing array when large enough (the loop compiles to a memclr).
func clearBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// flipChangesPO flips net n from its baseline value and reports whether po
// changes. The perturbation is undone before returning.
func (t *CPT) flipChangesPO(n netlist.NetID, cur logic.Value, po netlist.NetID) bool {
	t.statStemFlips.Inc()
	flipped := cur.Not()
	before := t.es.Value(po)
	_, restore := t.es.PropagateFrom(n, flipped)
	changed := t.es.Value(po) != before
	restore()
	return changed
}

// singleReader returns the unique gate reading net n.
func (t *CPT) singleReader(n netlist.NetID) netlist.NetID {
	fo := t.c.Gates[n].Fanout
	if len(fo) != 1 {
		// refs==1 implies exactly one reader gate with one reference.
		if len(fo) == 0 {
			return netlist.InvalidNet
		}
	}
	return fo[0]
}

// inputSensitive reports whether flipping input net in of gate g (with all
// other inputs at their baseline values) flips g's output value.
func (t *CPT) inputSensitive(g, in netlist.NetID, vals []logic.Value) bool {
	gate := &t.c.Gates[g]
	base := vals[g]
	flipped := sim.EvalScalarGate(gate.Type, gate.Fanin, func(f netlist.NetID) logic.Value {
		if f == in {
			return vals[f].Not()
		}
		return vals[f]
	})
	return flipped != base && flipped.IsKnown() && base.IsKnown()
}

// CriticalApproxForOutputs is the *classical* approximate CPT: fanout stems
// are resolved by branch sensitivity alone (a stem is marked critical when
// it is a sensitive input of any gate whose output is critical) instead of
// by exact flip-and-propagate stem analysis. Reconvergent fanout makes this
// both optimistic and pessimistic in different cases — multiple-path
// self-masking is missed, single-path masking is over-counted — which is
// precisely why the exact tracer exists. Kept as the T5 ablation reference
// and for cost comparison (no event simulation at all).
func (t *CPT) CriticalApproxForOutputs(p sim.Pattern, pos []netlist.NetID) (union []bool, vals []logic.Value, err error) {
	if err := t.es.Baseline(p, nil); err != nil {
		return nil, nil, err
	}
	t.statTraces.Inc()
	vals = append([]logic.Value(nil), t.es.Values()...)
	n := t.c.NumGates()
	union = make([]bool, n)
	ord := t.c.LevelOrder()
	for _, po := range pos {
		cone := t.c.FaninCone(po)
		crit := make([]bool, n)
		for i := len(ord) - 1; i >= 0; i-- {
			nID := ord[i]
			if !cone[nID] {
				continue
			}
			if nID == po {
				crit[nID] = true
			} else {
				for _, rd := range t.c.Gates[nID].Fanout {
					if crit[rd] && t.inputSensitive(rd, nID, vals) {
						crit[nID] = true
						break
					}
				}
			}
			if crit[nID] {
				union[nID] = true
			}
		}
	}
	return union, vals, nil
}

// BruteForceCritical computes criticality by flipping every net in po's
// fan-in cone and fully re-simulating. It is the executable specification
// used by tests and by the T5 ablation (per-output covering with exact vs.
// approximate tracing); O(cone²) and therefore not used in the main flow.
func BruteForceCritical(c *netlist.Circuit, p sim.Pattern, po netlist.NetID) ([]bool, error) {
	base, err := sim.EvalScalar(c, p, nil)
	if err != nil {
		return nil, err
	}
	cone := c.FaninCone(po)
	crit := make([]bool, c.NumGates())
	for id := range c.Gates {
		n := netlist.NetID(id)
		if !cone[n] {
			continue
		}
		forced, err := sim.EvalScalar(c, p, map[netlist.NetID]logic.Value{n: base[n].Not()})
		if err != nil {
			return nil, err
		}
		if forced[po] != base[po] {
			crit[n] = true
		}
	}
	return crit, nil
}
