package fsim

import (
	"multidiag/internal/fault"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

// PFSFP is the dual packing of PPSFP: one *pattern* per pass, 64 *faults*
// per word. Slot 0 carries the fault-free machine; slots 1..63 each carry
// one faulty machine whose fault site is overridden after gate evaluation.
//
// For fault-grading a large universe against few patterns (the dictionary
// build, diagnostic pattern generation) PFSFP wins because one full-circuit
// evaluation grades 63 faults; for syndrome extraction over a long test set
// PPSFP's cone-limited propagation wins. Both are provided and cross-tested
// against each other.
type PFSFP struct {
	c    *netlist.Circuit
	vals []logic.PV64
}

// NewPFSFP creates a parallel-fault simulator for the finalized circuit.
func NewPFSFP(c *netlist.Circuit) *PFSFP {
	if !c.Finalized() {
		panic("fsim: circuit not finalized")
	}
	return &PFSFP{c: c, vals: make([]logic.PV64, c.NumGates())}
}

// DetectBatch simulates pattern p against up to 63 stuck-at faults and
// returns, for each fault, the bitmask-free detection verdict plus the set
// of failing PO indices. faults beyond 63 are an error by contract; callers
// chunk the universe.
func (ps *PFSFP) DetectBatch(p sim.Pattern, faults []fault.StuckAt) ([]bitsetLite, error) {
	if len(faults) > logic.W-1 {
		faults = faults[:logic.W-1]
	}
	if len(p) != len(ps.c.PIs) {
		return nil, errWidth(len(p), len(ps.c.PIs))
	}
	// Per-net override masks: slot i+1 forces faults[i].
	type ov struct {
		setOne  uint64 // slots forced to 1
		setZero uint64 // slots forced to 0
	}
	overrides := make(map[netlist.NetID]ov, len(faults))
	for i, f := range faults {
		o := overrides[f.Net]
		m := uint64(1) << uint(i+1)
		if f.Value1 {
			o.setOne |= m
		} else {
			o.setZero |= m
		}
		overrides[f.Net] = o
	}
	// All slots share the same PI values (replicated).
	for i, pi := range ps.c.PIs {
		var v logic.PV64
		switch p[i] {
		case logic.Zero:
			v = logic.PVZero
		case logic.One:
			v = logic.PVOne
		default:
			v = logic.PVX
		}
		if o, ok := overrides[pi]; ok {
			v = applyOverride(v, o.setOne, o.setZero)
		}
		ps.vals[pi] = v
	}
	for _, id := range ps.c.LevelOrder() {
		g := &ps.c.Gates[id]
		if g.Type == netlist.Input {
			continue
		}
		v := evalPackedVia(g.Type, g.Fanin, func(n netlist.NetID) logic.PV64 { return ps.vals[n] })
		if o, ok := overrides[id]; ok {
			v = applyOverride(v, o.setOne, o.setZero)
		}
		ps.vals[id] = v
	}
	// Compare each fault slot to slot 0.
	out := make([]bitsetLite, len(faults))
	for poIdx, po := range ps.c.POs {
		v := ps.vals[po]
		goodBit := v.Bits() & 1
		goodKnown := v.KnownMask() & 1
		if goodKnown == 0 {
			continue // fault-free X: no detection credit at this PO
		}
		bits := v.Bits()
		known := v.KnownMask()
		for i := range faults {
			slot := uint(i + 1)
			if known>>slot&1 == 0 {
				continue
			}
			if (bits >> slot & 1) != goodBit {
				out[i] = append(out[i], poIdx)
			}
		}
	}
	return out, nil
}

// bitsetLite is a tiny failing-PO index list (names avoid a bitset alloc
// per fault per pattern in the grading loop).
type bitsetLite []int

// evalPackedVia evaluates one gate on packed values fetched through get.
// The PPSFP hot path uses the closure-free evalPackedCone instead; this
// form remains for PFSFP, where values come from a single slot array.
func evalPackedVia(t netlist.GateType, fanin []netlist.NetID, get func(netlist.NetID) logic.PV64) logic.PV64 {
	switch t {
	case netlist.Buf:
		return get(fanin[0])
	case netlist.Not:
		return get(fanin[0]).Not()
	case netlist.And, netlist.Nand:
		acc := get(fanin[0])
		for _, f := range fanin[1:] {
			acc = acc.And(get(f))
		}
		if t == netlist.Nand {
			acc = acc.Not()
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := get(fanin[0])
		for _, f := range fanin[1:] {
			acc = acc.Or(get(f))
		}
		if t == netlist.Nor {
			acc = acc.Not()
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := get(fanin[0])
		for _, f := range fanin[1:] {
			acc = acc.Xor(get(f))
		}
		if t == netlist.Xnor {
			acc = acc.Not()
		}
		return acc
	}
	return logic.PVX
}

func applyOverride(v logic.PV64, setOne, setZero uint64) logic.PV64 {
	// Force slots in setOne to 1 and setZero to 0 without touching others.
	v.V1 |= setOne
	v.V0 &^= setOne
	v.V0 |= setZero
	v.V1 &^= setZero
	return v
}

type errWidthT struct{ got, want int }

func errWidth(got, want int) error { return errWidthT{got, want} }

func (e errWidthT) Error() string {
	return "fsim: pattern width mismatch"
}

// GradePatterns computes, for every fault in the universe, whether any of
// the given patterns detects it — PFSFP-packed (64-fault batches). Returns
// the per-fault detection flags. This is the engine behind N-detect
// counting and diagnostic pattern evaluation.
func GradePatterns(c *netlist.Circuit, pats []sim.Pattern, universe []fault.StuckAt) ([]bool, error) {
	ps := NewPFSFP(c)
	det := make([]bool, len(universe))
	for base := 0; base < len(universe); base += logic.W - 1 {
		end := base + logic.W - 1
		if end > len(universe) {
			end = len(universe)
		}
		chunk := universe[base:end]
		for _, p := range pats {
			fails, err := ps.DetectBatch(p, chunk)
			if err != nil {
				return nil, err
			}
			for i, f := range fails {
				if len(f) > 0 {
					det[base+i] = true
				}
			}
		}
	}
	return det, nil
}

// DetectionCounts returns, per fault, the number of patterns that detect
// it (the N-detect profile of a test set).
func DetectionCounts(c *netlist.Circuit, pats []sim.Pattern, universe []fault.StuckAt) ([]int, error) {
	ps := NewPFSFP(c)
	counts := make([]int, len(universe))
	for base := 0; base < len(universe); base += logic.W - 1 {
		end := base + logic.W - 1
		if end > len(universe) {
			end = len(universe)
		}
		chunk := universe[base:end]
		for _, p := range pats {
			fails, err := ps.DetectBatch(p, chunk)
			if err != nil {
				return nil, err
			}
			for i, f := range fails {
				if len(f) > 0 {
					counts[base+i]++
				}
			}
		}
	}
	return counts, nil
}
