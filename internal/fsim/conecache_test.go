package fsim

import (
	"math/rand"
	"sync"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/fault"
	"multidiag/internal/obs"
)

// TestConeCacheCorrectness cross-checks every cached cone word against a
// fresh (uncached) evaluation: a cold pass fills the cache, a warm pass on
// a second simulator of the same workload must replay bit-identical
// syndromes, and the hit/miss counters must account for every word.
func TestConeCacheCorrectness(t *testing.T) {
	fs, faults := batchFixture(t)
	fresh := make([]*Syndrome, len(faults))
	for i, f := range faults {
		fresh[i] = fs.SimulateStuckAt(f)
	}

	reg := obs.NewRegistry()
	cc := NewConeCache(0)
	cc.Observe(reg)
	cold := fs.Fork()
	if !cold.AttachCache(cc) {
		t.Fatal("attach refused for the binding workload")
	}
	for i, f := range faults {
		if got := cold.SimulateStuckAt(f); !got.Equal(fresh[i]) {
			t.Fatalf("cold cached syndrome differs for %s", f.String())
		}
	}
	if reg.Counter("fsim.cone_cache_hits").Value() != 0 {
		t.Fatalf("cold pass hit the cache %d times", reg.Counter("fsim.cone_cache_hits").Value())
	}
	misses := reg.Counter("fsim.cone_cache_misses").Value()
	if misses == 0 {
		t.Fatal("cold pass recorded no misses")
	}

	warm := fs.Fork()
	warm.AttachCache(cc)
	for i, f := range faults {
		if got := warm.SimulateStuckAt(f); !got.Equal(fresh[i]) {
			t.Fatalf("warm cached syndrome differs for %s", f.String())
		}
	}
	if hits := reg.Counter("fsim.cone_cache_hits").Value(); hits != misses {
		t.Fatalf("warm pass hits = %d, want %d (every cold miss replayed)", hits, misses)
	}
}

// TestConeCacheEviction runs the same sweep with a cache far smaller than
// the working set: results must stay exact while evictions churn.
func TestConeCacheEviction(t *testing.T) {
	fs, faults := batchFixture(t)
	reg := obs.NewRegistry()
	cc := NewConeCache(64) // far below len(faults) × words entries
	cc.Observe(reg)
	sim := fs.Fork()
	sim.AttachCache(cc)
	for rep := 0; rep < 2; rep++ {
		for _, f := range faults {
			if got, want := sim.SimulateStuckAt(f), fs.SimulateStuckAt(f); !got.Equal(want) {
				t.Fatalf("rep %d: evicting cache corrupted syndrome for %s", rep, f.String())
			}
		}
	}
	if reg.Counter("fsim.cone_cache_evictions").Value() == 0 {
		t.Fatal("undersized cache recorded no evictions")
	}
	if got := cc.Len(); got > 64+coneShards {
		t.Fatalf("cache holds %d entries, capacity 64", got)
	}
}

// TestConeCacheRejectsMismatchedWorkload binds the cache to one workload
// and attaches a simulator for a different circuit: the attach must be
// refused and the second simulator must run (correctly) uncached.
func TestConeCacheRejectsMismatchedWorkload(t *testing.T) {
	fs, _ := batchFixture(t)
	cc := NewConeCache(0)
	if !fs.AttachCache(cc) {
		t.Fatal("first attach refused")
	}

	c2 := circuits.C17()
	pats := exhaustivePatterns(len(c2.PIs))
	other, err := NewFaultSim(c2, pats)
	if err != nil {
		t.Fatal(err)
	}
	if other.AttachCache(cc) {
		t.Fatal("attach accepted a mismatched workload")
	}
	f := fault.StuckAt{Net: c2.NetByName("G16"), Value1: true}
	if got, want := other.SimulateStuckAt(f), refSyndrome(t, c2, pats, f); !got.Equal(want) {
		t.Fatal("uncached fallback syndrome is wrong")
	}
	if !fs.AttachCache(nil) || fs.cache != nil {
		t.Fatal("nil attach did not detach")
	}
}

// TestConeCacheConcurrentStress hammers one shared cache from many forked
// simulators over overlapping fault lists — the -race stress test of the
// sharded cache. Every concurrent result must equal the sequential one.
func TestConeCacheConcurrentStress(t *testing.T) {
	fs, faults := batchFixture(t)
	want := make([]*Syndrome, len(faults))
	for i, f := range faults {
		want[i] = fs.SimulateStuckAt(f)
	}
	reg := obs.NewRegistry()
	cc := NewConeCache(512) // small enough to force concurrent evictions
	cc.Observe(reg)
	fs.Observe(reg)
	base := fs.Fork()
	base.AttachCache(cc)

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		sim := base.Fork()
		r := rand.New(rand.NewSource(int64(g)))
		wg.Add(1)
		go func(sim *FaultSim, r *rand.Rand) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for _, i := range r.Perm(len(faults)) {
					if got := sim.SimulateStuckAt(faults[i]); !got.Equal(want[i]) {
						errc <- &mismatchError{f: faults[i]}
						return
					}
				}
			}
		}(sim, r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if reg.Counter("fsim.cone_cache_hits").Value() == 0 {
		t.Fatal("concurrent sweep never hit the cache")
	}
}

type mismatchError struct{ f fault.StuckAt }

func (e *mismatchError) Error() string {
	return "concurrent cached syndrome differs for " + e.f.String()
}
