package fsim

import (
	"fmt"
	"math/rand"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/fault"
	"multidiag/internal/netlist"
)

func benchCircuit(b *testing.B, gates int) *netlist.Circuit {
	b.Helper()
	c, err := circuits.Generate(circuits.GenConfig{Seed: 5, NumPIs: 32, NumGates: gates, NumPOs: 24})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkPPSFP measures cone-limited single-fault simulation over a
// 256-pattern test set (one fault per op).
func BenchmarkPPSFP(b *testing.B) {
	c := benchCircuit(b, 2000)
	r := rand.New(rand.NewSource(1))
	pats := randomPatterns(r, len(c.PIs), 256)
	fs, err := NewFaultSim(c, pats)
	if err != nil {
		b.Fatal(err)
	}
	universe := fault.Collapse(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.SimulateStuckAt(universe[i%len(universe)])
	}
}

// BenchmarkCPTSingleOutput measures exact critical path tracing for one
// (pattern, output) pair.
func BenchmarkCPTSingleOutput(b *testing.B) {
	c := benchCircuit(b, 2000)
	cpt := NewCPT(c)
	r := rand.New(rand.NewSource(2))
	p := randomPatterns(r, len(c.PIs), 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cpt.Critical(p, c.POs[i%len(c.POs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPTAllOutputs measures the multi-output amortized tracer over
// every PO at once (the extraction configuration diagnosis uses).
func BenchmarkCPTAllOutputs(b *testing.B) {
	c := benchCircuit(b, 2000)
	cpt := NewCPT(c)
	r := rand.New(rand.NewSource(2))
	p := randomPatterns(r, len(c.PIs), 1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := cpt.CriticalForOutputs(p, c.POs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDictionaryBuild measures the cause-effect precompute the
// effect-cause flow avoids (small circuit: the cost is the point).
func BenchmarkDictionaryBuild(b *testing.B) {
	c := benchCircuit(b, 300)
	r := rand.New(rand.NewSource(3))
	pats := randomPatterns(r, len(c.PIs), 128)
	universe := fault.Collapse(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildDictionary(c, pats, universe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStuckAtBatch measures the fault-parallel sweep of a collapsed
// universe at several worker counts (j=1 is the sequential reference; the
// speedup curve is the batch layer's scaling proof).
func BenchmarkStuckAtBatch(b *testing.B) {
	c := benchCircuit(b, 2000)
	r := rand.New(rand.NewSource(1))
	pats := randomPatterns(r, len(c.PIs), 256)
	fs, err := NewFaultSim(c, pats)
	if err != nil {
		b.Fatal(err)
	}
	universe := fault.Collapse(c)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fs.SimulateStuckAtBatch(universe, workers)
			}
		})
	}
}

// BenchmarkStuckAtBatchCached is the same sweep with a warm cone cache:
// after the first iteration every (fault, word) replays from the cache —
// the campaign steady state.
func BenchmarkStuckAtBatchCached(b *testing.B) {
	c := benchCircuit(b, 2000)
	r := rand.New(rand.NewSource(1))
	pats := randomPatterns(r, len(c.PIs), 256)
	fs, err := NewFaultSim(c, pats)
	if err != nil {
		b.Fatal(err)
	}
	universe := fault.Collapse(c)
	cc := NewConeCache(1 << 20)
	fs.AttachCache(cc)
	fs.SimulateStuckAtBatch(universe, 4) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.SimulateStuckAtBatch(universe, 4)
	}
}
