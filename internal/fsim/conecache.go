package fsim

import (
	"sync"

	"multidiag/internal/fault"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
)

// poWordDiff is one cached per-word simulation outcome: the failing-pattern
// mask observed at one primary output (by PO index) for one packed word.
type poWordDiff struct {
	po   int32
	diff uint64
}

// coneKey identifies one cached cone evaluation: a stuck-at hypothesis and
// the packed pattern word it was simulated against.
type coneKey struct {
	net    netlist.NetID
	word   int32
	value1 bool
}

// coneShard is one lock domain of the cache. Entries are evicted FIFO (by
// insertion order) once the shard exceeds its capacity, which keeps eviction
// deterministic for a deterministic access sequence.
type coneShard struct {
	mu    sync.Mutex
	m     map[coneKey][]poWordDiff
	order []coneKey // insertion order ring for FIFO eviction
	head  int       // index of the oldest live entry in order
}

// coneShards is the shard count (power of two; shard picked by key hash).
const coneShards = 32

// defaultConeCacheCap is the default total entry bound (~64k (fault, word)
// results; each entry is a key plus a short diff slice).
const defaultConeCacheCap = 1 << 16

// ConeCache is a sharded, bounded cache of cone-limited fault-simulation
// results keyed by (fault site, packed pattern word). Candidates whose
// fan-out cones share output structure — and, more importantly, repeated
// diagnoses of devices built from one (circuit, test set) workload, as in
// experiment campaigns — re-simulate the same stuck-at hypotheses against
// the same packed words; the cache replays the per-word failing-output
// masks instead.
//
// Cached values are pure functions of the key for a fixed (circuit,
// patterns) binding, so any hit/miss interleaving — including under
// concurrent fault-parallel workers — yields bit-identical syndromes.
// The first FaultSim attached binds the cache to its circuit and pattern
// count; a mismatched attach is refused (see AttachCache).
//
// All methods are safe for concurrent use. A nil *ConeCache is a valid
// no-op receiver.
type ConeCache struct {
	shards   [coneShards]coneShard
	perShard int

	bindMu   sync.Mutex
	bound    bool
	numGates int
	numPats  int

	statHits      *obs.Counter
	statMisses    *obs.Counter
	statEvictions *obs.Counter
}

// NewConeCache creates a cache bounded to roughly capacity entries in
// total (0 selects the default of 64k entries).
func NewConeCache(capacity int) *ConeCache {
	if capacity <= 0 {
		capacity = defaultConeCacheCap
	}
	per := capacity / coneShards
	if per < 1 {
		per = 1
	}
	cc := &ConeCache{perShard: per}
	for i := range cc.shards {
		cc.shards[i].m = make(map[coneKey][]poWordDiff)
	}
	return cc
}

// Observe wires the cache's hit/miss/eviction counters into r (nil r
// detaches). Call once, from the goroutine that created the cache, before
// sharing it with concurrent simulators.
func (cc *ConeCache) Observe(r *obs.Registry) {
	if cc == nil {
		return
	}
	cc.statHits = r.Counter("fsim.cone_cache_hits")
	cc.statMisses = r.Counter("fsim.cone_cache_misses")
	cc.statEvictions = r.Counter("fsim.cone_cache_evictions")
}

// bind ties the cache to one (circuit, pattern set) shape on first use and
// reports whether a simulator with that shape may use the cache. Results
// are only valid per workload; a mismatch refuses the attach rather than
// serving another circuit's syndromes.
func (cc *ConeCache) bind(c *netlist.Circuit, numPats int) bool {
	cc.bindMu.Lock()
	defer cc.bindMu.Unlock()
	if !cc.bound {
		cc.bound = true
		cc.numGates = c.NumGates()
		cc.numPats = numPats
		return true
	}
	return cc.numGates == c.NumGates() && cc.numPats == numPats
}

// Len returns the current number of cached entries (for tests and sizing).
func (cc *ConeCache) Len() int {
	if cc == nil {
		return 0
	}
	n := 0
	for i := range cc.shards {
		s := &cc.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// shardOf hashes a key onto its shard.
func (cc *ConeCache) shardOf(k coneKey) *coneShard {
	h := uint64(k.net)*0x9e3779b97f4a7c15 ^ uint64(k.word)*0xd6e8feb86659fd93
	if k.value1 {
		h ^= 0xa0761d6478bd642f
	}
	h ^= h >> 29
	return &cc.shards[h%coneShards]
}

// get returns the cached per-word diffs and whether the key was present.
// An empty (nil-slice) value is a valid cached "no failing outputs" result.
func (cc *ConeCache) get(k coneKey) ([]poWordDiff, bool) {
	if cc == nil {
		return nil, false
	}
	s := cc.shardOf(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		cc.statHits.Inc()
	} else {
		cc.statMisses.Inc()
	}
	return v, ok
}

// put stores one per-word result, evicting the shard's oldest entry when
// the shard is full. Storing an existing key is a no-op (first writer wins;
// values for one key are identical by construction).
func (cc *ConeCache) put(k coneKey, v []poWordDiff) {
	if cc == nil {
		return
	}
	s := cc.shardOf(k)
	s.mu.Lock()
	if _, ok := s.m[k]; ok {
		s.mu.Unlock()
		return
	}
	if len(s.m) >= cc.perShard {
		// FIFO: the order ring may hold keys already evicted only if keys
		// could repeat, which put prevents, so the head is always live.
		old := s.order[s.head]
		delete(s.m, old)
		s.order[s.head] = k
		s.head = (s.head + 1) % len(s.order)
		s.m[k] = v
		s.mu.Unlock()
		cc.statEvictions.Inc()
		return
	}
	s.order = append(s.order, k)
	s.m[k] = v
	s.mu.Unlock()
}

// AttachCache binds cc to the simulator so SimulateStuckAt (and the batch
// and open variants) consult and fill it. The first simulator attached
// binds the cache to its (circuit, pattern count) shape; attaching a
// simulator with a different shape is refused — the simulator simply runs
// uncached — and reported by the return value. Attaching nil detaches.
func (fs *FaultSim) AttachCache(cc *ConeCache) bool {
	if cc == nil {
		fs.cache = nil
		return true
	}
	if !cc.bind(fs.c, len(fs.pats)) {
		fs.cache = nil
		return false
	}
	fs.cache = cc
	return true
}

// cachedWord returns the cached diffs for (f, word w), if present. Probe
// outcomes are also tallied on the simulator itself (fork-local, no
// atomics) so a request's trace can attribute each worker's cache luck.
func (fs *FaultSim) cachedWord(f fault.StuckAt, w int) ([]poWordDiff, bool) {
	diffs, ok := fs.cache.get(coneKey{net: f.Net, word: int32(w), value1: f.Value1})
	if ok {
		fs.probeHits++
	} else {
		fs.probeMisses++
	}
	return diffs, ok
}

// storeWord records the diffs computed for (f, word w).
func (fs *FaultSim) storeWord(f fault.StuckAt, w int, diffs []poWordDiff) {
	fs.cache.put(coneKey{net: f.Net, word: int32(w), value1: f.Value1}, diffs)
}

// replayWord adds a cached word's failing bits to the syndrome.
func (fs *FaultSim) replayWord(syn *Syndrome, w int, diffs []poWordDiff) {
	base := w * logic.W
	for _, d := range diffs {
		for m := d.diff; m != 0; m &= m - 1 {
			p := base + tz64(m)
			if p >= len(fs.pats) {
				break
			}
			fs.addFail(syn, p, int(d.po))
		}
	}
}
