// Package replay re-executes a captured incident bundle offline. The
// engine's determinism contract — candidate extraction sorts by (net,
// polarity) and every parallel fold merges in seed order, so a report is
// bit-identical at any worker count — turns a bundle from a postmortem
// artifact into a reproducible experiment: Run re-drives core.DiagnoseCtx
// with the bundle's datalog at any -j and proves the replayed report
// byte-identical to the one the service answered with, while the trace
// tree from the replay diffs against the captured one to show what
// changed about *how* the answer was computed (phase times, cone-cache
// locality) even though the answer itself cannot change.
//
// The package sits above both serve and incident (it rebuilds reports via
// serve.BuildReport and reads incident.Bundle), which is why replay logic
// lives here instead of in internal/incident: incident must stay
// importable by serve.
package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"multidiag/internal/core"
	"multidiag/internal/fsim"
	"multidiag/internal/incident"
	"multidiag/internal/netlist"
	"multidiag/internal/serve"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
	"multidiag/internal/trace"
)

// PhaseNames lists the engine phases whose spans the diff reports, in
// pipeline order (the span taxonomy of DESIGN.md §Observability).
var PhaseNames = []string{"evidence", "goodsim", "extract", "score", "cover", "refine", "xcheck"}

// RunResult is one offline re-execution of a bundle.
type RunResult struct {
	// Workers is the effective -j the replay ran at.
	Workers int
	// Report is the rebuilt wire report with volatile fields zeroed;
	// ReportJSON its canonical serialization (the byte-compare unit).
	Report     *serve.Report
	ReportJSON []byte
	// Trace is the replay's own span tree record.
	Trace *trace.TreeRecord
	// PhaseNS maps engine phase name → summed span duration in this run.
	PhaseNS map[string]int64
	// CacheHits / CacheMisses sum the cone-cache probe attrs over the
	// run's fsim.worker spans.
	CacheHits, CacheMisses int64
	ElapsedNS              int64
}

// Run re-executes the bundle's diagnosis at the given worker count
// (workers ≤ 0 selects the bundle's configured -j) against the resolved
// workload. A fresh cone cache is attached when the captured run had one,
// so the cache-delta diff compares a cold replay against the service's
// warm steady state.
func Run(ctx context.Context, c *netlist.Circuit, pats []sim.Pattern, b *incident.Bundle, workers int) (*RunResult, error) {
	log, err := tester.ReadDatalog(strings.NewReader(b.Datalog))
	if err != nil {
		return nil, fmt.Errorf("replay: bundle datalog: %w", err)
	}
	if workers <= 0 {
		workers = b.Engine.WorkersConfigured
	}
	cfg := core.Config{Workers: workers}
	if b.Engine.ConeCache {
		cfg.ConeCache = fsim.NewConeCache(0)
	}

	tree := trace.NewTree(trace.TraceID{})
	root := tree.Start("replay")
	start := time.Now()
	res, err := core.DiagnoseCtx(trace.WithSpan(ctx, root), c, pats, log, cfg)
	elapsed := time.Since(start)
	root.End()
	if err != nil {
		return nil, fmt.Errorf("replay: diagnose: %w", err)
	}

	top := b.Top
	if top <= 0 {
		top = 10
	}
	rep := serve.BuildReport(b.Workload, c, log, res, top)
	normalizeReport(rep)
	raw, err := json.Marshal(rep)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	rec := tree.Record()
	hits, misses := CacheStats(rec)
	return &RunResult{
		Workers:     fsim.Workers(workers),
		Report:      rep,
		ReportJSON:  raw,
		Trace:       rec,
		PhaseNS:     PhaseNS(rec),
		CacheHits:   hits,
		CacheMisses: misses,
		ElapsedNS:   elapsed.Nanoseconds(),
	}, nil
}

// normalizeReport zeroes the fields that legitimately vary run to run —
// timings, batching, join IDs, the narrative — leaving exactly the
// deterministic diagnosis content the byte-compare is entitled to.
func normalizeReport(rep *serve.Report) {
	rep.ElapsedMS = 0
	rep.QueueWaitMS = 0
	rep.BatchSize = 0
	rep.RequestID = ""
	rep.TraceID = ""
	rep.Explain = ""
}

// NormalizeCaptured canonicalizes a bundle's captured report: decoded
// into the wire struct (dropping nothing the schema defines), volatile
// fields zeroed, re-marshaled — directly comparable to a RunResult's
// ReportJSON. Returns nil when the bundle carries no report (shed,
// deadline and panic bundles never produced one).
func NormalizeCaptured(b *incident.Bundle) ([]byte, error) {
	if len(b.Report) == 0 {
		return nil, nil
	}
	var rep serve.Report
	if err := json.Unmarshal(b.Report, &rep); err != nil {
		return nil, fmt.Errorf("replay: captured report: %w", err)
	}
	normalizeReport(&rep)
	raw, err := json.Marshal(&rep)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return raw, nil
}

// attrInt reads a span attribute that may be an in-memory int64 or a
// JSON-decoded float64 (encoding/json turns every number into float64
// when the target is `any`).
func attrInt(v any) (int64, bool) {
	switch n := v.(type) {
	case int64:
		return n, true
	case float64:
		return int64(n), true
	case int:
		return int64(n), true
	}
	return 0, false
}

// PhaseNS sums span durations by engine phase name over a trace record.
// Unknown span names (serve.queue, fsim.worker, …) are ignored, so the
// same extraction works on captured service trees and replay trees.
func PhaseNS(rec *trace.TreeRecord) map[string]int64 {
	out := make(map[string]int64, len(PhaseNames))
	if rec == nil {
		return out
	}
	want := make(map[string]bool, len(PhaseNames))
	for _, n := range PhaseNames {
		want[n] = true
	}
	for i := range rec.Spans {
		sp := &rec.Spans[i]
		if want[sp.Name] {
			out[sp.Name] += sp.DurNS
		}
	}
	return out
}

// CacheStats sums the cone-cache probe attributes over a record's
// fsim.worker spans.
func CacheStats(rec *trace.TreeRecord) (hits, misses int64) {
	if rec == nil {
		return 0, 0
	}
	for i := range rec.Spans {
		sp := &rec.Spans[i]
		if sp.Name != "fsim.worker" {
			continue
		}
		if h, ok := attrInt(sp.Attrs["cache_hits"]); ok {
			hits += h
		}
		if m, ok := attrInt(sp.Attrs["cache_misses"]); ok {
			misses += m
		}
	}
	return hits, misses
}

// VerifyResult is the outcome of a multi-worker-count verification.
type VerifyResult struct {
	Runs []*RunResult
	// Captured is the bundle's normalized captured report (nil when the
	// bundle has none — the request never produced a report).
	Captured []byte
	// Identical reports byte-identity across every replayed worker count;
	// CapturedMatch additionally requires byte-identity with the captured
	// report when one exists (vacuously true otherwise).
	Identical     bool
	CapturedMatch bool
	// Mismatch describes the first divergence in plain words ("" when ok).
	Mismatch string
}

// OK reports full success: every run identical, captured report matched.
func (v *VerifyResult) OK() bool { return v.Identical && v.CapturedMatch }

// Verify replays the bundle at each worker count and checks the
// determinism contract: every replay byte-identical to every other, and
// to the captured report when the bundle carries one.
func Verify(ctx context.Context, c *netlist.Circuit, pats []sim.Pattern, b *incident.Bundle, workerCounts []int) (*VerifyResult, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 4, 8}
	}
	v := &VerifyResult{Identical: true, CapturedMatch: true}
	captured, err := NormalizeCaptured(b)
	if err != nil {
		return nil, err
	}
	v.Captured = captured
	for _, j := range workerCounts {
		r, err := Run(ctx, c, pats, b, j)
		if err != nil {
			return nil, err
		}
		v.Runs = append(v.Runs, r)
		if v.Identical && !bytes.Equal(r.ReportJSON, v.Runs[0].ReportJSON) {
			v.Identical = false
			v.Mismatch = fmt.Sprintf("report at -j %d differs from -j %d", r.Workers, v.Runs[0].Workers)
		}
		if v.CapturedMatch && captured != nil && !bytes.Equal(r.ReportJSON, captured) {
			v.CapturedMatch = false
			v.Mismatch = fmt.Sprintf("report at -j %d differs from the captured report", r.Workers)
		}
	}
	return v, nil
}
