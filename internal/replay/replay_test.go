package replay

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/incident"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/serve"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// c17Workload mirrors the serve test fixture: c17 under its exhaustive
// pattern set. Replay tests need their own copy — serve's helper is an
// unexported test symbol.
func c17Workload(t testing.TB) serve.WorkloadSpec {
	t.Helper()
	c := circuits.C17()
	npi := len(c.PIs)
	pats := make([]sim.Pattern, 1<<npi)
	for m := range pats {
		p := make(sim.Pattern, npi)
		for i := 0; i < npi; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats[m] = p
	}
	return serve.WorkloadSpec{Name: "c17", Circuit: c, Patterns: pats}
}

func datalogText(t testing.TB, spec serve.WorkloadSpec, ds []defect.Defect) string {
	t.Helper()
	dev, err := defect.Inject(spec.Circuit, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(spec.Circuit, dev, spec.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tester.WriteDatalog(&b, log); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func stuck(c *netlist.Circuit, net string, v1 bool) defect.Defect {
	return defect.Defect{Kind: defect.StuckNet, Net: c.NetByName(net), Value1: v1}
}

// captureBundle drives a live serve instance into spooling exactly one
// incident bundle and reads it back.
func captureBundle(t *testing.T, mutate func(*serve.Config), post func(t *testing.T, baseURL, text string)) (*incident.Bundle, serve.WorkloadSpec) {
	t.Helper()
	dir := t.TempDir()
	spec := c17Workload(t)
	cfg := serve.Config{Trace: obs.New("replay-test"), IncidentDir: dir, TraceSample: 1}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := serve.New(cfg, []serve.WorkloadSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	text := datalogText(t, spec, []defect.Defect{stuck(spec.Circuit, "G10", false), stuck(spec.Circuit, "G22", true)})
	post(t, hs.URL, text)

	files, err := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no bundle spooled (err=%v)", err)
	}
	b, err := incident.ReadBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	return b, spec
}

// TestVerifySlowBundleByteIdentical is the acceptance path of ISSUE 9: a
// live serve request trips the slow trigger, the spooled bundle is
// re-run offline at -j 1, 4 and 8, and every replayed report is
// byte-identical to the others AND to the report the service answered
// with. This is the determinism contract, proven end to end through
// capture and replay rather than asserted inside one process.
func TestVerifySlowBundleByteIdentical(t *testing.T) {
	b, spec := captureBundle(t,
		func(cfg *serve.Config) { cfg.SlowNS = func() int64 { return 1 } },
		func(t *testing.T, baseURL, text string) {
			resp, err := http.Post(baseURL+"/v1/diagnose?explain=1", "application/json",
				strings.NewReader(`{"workload":"c17","datalog":`+jsonString(text)+`}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("diagnose: %d", resp.StatusCode)
			}
		})
	if b.Trigger != incident.TriggerSlow || len(b.Report) == 0 {
		t.Fatalf("fixture bundle trigger=%s report=%dB, want slow with report", b.Trigger, len(b.Report))
	}

	v, err := Verify(context.Background(), spec.Circuit, spec.Patterns, b, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() {
		t.Fatalf("verification failed: %s", v.Mismatch)
	}
	if v.Captured == nil {
		t.Fatal("captured report vanished in normalization")
	}
	if len(v.Runs) != 3 {
		t.Fatalf("%d runs, want 3", len(v.Runs))
	}
	for i, want := range []int{1, 4, 8} {
		r := v.Runs[i]
		if r.Workers != want {
			t.Fatalf("run %d ran at -j %d, want %d", i, r.Workers, want)
		}
		if string(r.ReportJSON) != string(v.Captured) {
			t.Fatalf("run at -j %d not byte-identical to captured report", want)
		}
		if len(r.Report.Multiplet) == 0 || !r.Report.Consistent {
			t.Fatalf("run %d rebuilt an empty report: %+v", i, r.Report)
		}
		// The replay's own trace must expose the phase taxonomy the diff
		// reports on.
		if _, ok := r.PhaseNS["score"]; !ok {
			t.Fatalf("run %d trace has no score phase: %v", i, r.PhaseNS)
		}
		if r.ElapsedNS <= 0 {
			t.Fatalf("run %d reports no elapsed time", i)
		}
	}
	// The captured service tree diffs with the same extractor as replay
	// trees: phase sums and cache probes must be readable from it.
	if b.Trace == nil {
		t.Fatal("bundle has no captured trace")
	}
	capPhases := PhaseNS(b.Trace)
	if _, ok := capPhases["score"]; !ok {
		t.Fatalf("captured trace has no score phase: %v", capPhases)
	}
	if hits, misses := CacheStats(b.Trace); hits+misses == 0 {
		t.Fatal("captured trace carries no cone-cache probes")
	}
}

// TestVerifyShedBundleCrossWorkerIdentity covers the shed side: the
// request never ran, so the bundle has no captured report — replay still
// proves what the answer WOULD have been is worker-count-invariant.
func TestVerifyShedBundleCrossWorkerIdentity(t *testing.T) {
	b, spec := captureBundle(t,
		func(cfg *serve.Config) {
			cfg.MaxInflight = 1
			cfg.SlowNS = func() int64 { return 1 << 62 }
		},
		func(t *testing.T, baseURL, text string) {
			body := `{"workload":"c17","devices":[{"datalog":` + jsonString(text) + `},{"datalog":` + jsonString(text) + `}]}`
			resp, err := http.Post(baseURL+"/v1/diagnose/batch", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		})
	if b.Trigger != incident.TriggerShed || len(b.Report) != 0 {
		t.Fatalf("fixture bundle trigger=%s report=%dB, want shed without report", b.Trigger, len(b.Report))
	}

	v, err := Verify(context.Background(), spec.Circuit, spec.Patterns, b, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() || v.Captured != nil {
		t.Fatalf("shed verify: identical=%v capturedMatch=%v captured=%v (%s)",
			v.Identical, v.CapturedMatch, v.Captured != nil, v.Mismatch)
	}
	// The replay produced a real report even though the service never did.
	if len(v.Runs[0].ReportJSON) == 0 || v.Runs[0].Report.Workload != "c17" {
		t.Fatal("shed replay produced no report")
	}
}

// TestRunDefaultsToCapturedWorkers pins workers ≤ 0 → the bundle's
// configured -j, so `mdreplay` without -j reproduces the capture setup.
func TestRunDefaultsToCapturedWorkers(t *testing.T) {
	spec := c17Workload(t)
	text := datalogText(t, spec, []defect.Defect{stuck(spec.Circuit, "G10", false)})
	b := &incident.Bundle{
		Schema:   incident.Schema,
		Trigger:  incident.TriggerSlow,
		Workload: "c17",
		Datalog:  text,
		Engine:   incident.EngineConfig{WorkersConfigured: 2, ConeCache: true},
	}
	r, err := Run(context.Background(), spec.Circuit, spec.Patterns, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 2 {
		t.Fatalf("defaulted to -j %d, want the bundle's configured 2", r.Workers)
	}
	// ConeCache true must attach a cache: the replay trace sees probes.
	if r.CacheHits+r.CacheMisses == 0 {
		t.Fatal("replay with ConeCache ran cacheless")
	}
}

// TestVerifyRejectsCorruptDatalog pins the error path: a bundle whose
// payload does not parse fails loudly instead of verifying vacuously.
func TestVerifyRejectsCorruptDatalog(t *testing.T) {
	spec := c17Workload(t)
	b := &incident.Bundle{Schema: incident.Schema, Workload: "c17", Datalog: "not a datalog"}
	if _, err := Verify(context.Background(), spec.Circuit, spec.Patterns, b, nil); err == nil {
		t.Fatal("corrupt datalog verified")
	}
}

// jsonString quotes s as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
