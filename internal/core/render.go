package core

import (
	"fmt"
	"io"

	"multidiag/internal/netlist"
)

// WriteReport renders a diagnosis as the human-readable report mddiag
// prints: the evidence summary, consistency warnings, the multiplet with
// equivalence classes and fault models, and (when top > 0) the
// ranked-candidate tail. It lives next to the engine — rather than in the
// report package, which the flight recorder pulls in — so the CLI and the
// serving layer render from one implementation and cannot drift.
func WriteReport(w io.Writer, c *netlist.Circuit, res *Result, failingPatterns, top int) error {
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("evidence: %d failing bits over %d failing patterns\n", len(res.Evidence), failingPatterns)
	p("extracted %d effect-cause candidates; multiplet size %d; elapsed %s\n",
		res.CandidatesExtracted, len(res.Multiplet), res.Elapsed)
	if !res.Consistent {
		p("WARNING: multiplet is X-inconsistent on patterns %v — evidence incomplete\n",
			res.InconsistentPatterns)
	}
	if res.UnexplainedBits > 0 {
		p("WARNING: %d evidence bits unexplained\n", res.UnexplainedBits)
	}
	for i, cd := range res.Multiplet {
		p("#%d %s  covers %d bits, %d mispredictions\n", i+1, cd.Name(c), cd.TFSF, cd.TPSF)
		for _, e := range cd.Equivalent {
			p("    ≡ %s\n", e.Name(c))
		}
		for _, m := range cd.Models {
			switch m.Kind {
			case BridgeModel:
				p("    model: dominant bridge, aggressor %s (%d mispred)\n",
					c.NameOf(m.Aggressor), m.Mispredictions)
			default:
				p("    model: stuck-at/open (%d mispred)\n", m.Mispredictions)
			}
		}
	}
	if top > 0 {
		p("ranked candidates:\n")
		for i, cd := range res.Ranked {
			if i >= top {
				break
			}
			p("  %2d. %-20s TFSF=%d TPSF=%d\n", i+1, cd.Name(c), cd.TFSF, cd.TPSF)
		}
	}
	return err
}
