// Package core implements the repository's primary contribution: an
// effect-cause logic-diagnosis engine for circuits containing an unknown
// number of defects, making no assumptions about failing-pattern
// characteristics (the DAC 2008 methodology — see DESIGN.md for the full
// provenance note).
//
// What "no assumptions" means operationally:
//
//   - Evidence is collected per failing *output*, not per failing pattern:
//     a failing pattern may be jointly caused by several defects, each
//     contributing a subset of its failing outputs, so the engine never
//     requires one candidate to explain a whole pattern (the SLAT
//     assumption of earlier work, available here only as the ablation
//     switch Config.PerPatternCover and as the baseline package's SLAT
//     engine).
//
//   - Candidates come from critical path tracing of the *observed* faulty
//     behaviour (effect-cause), not from a precomputed fault dictionary, so
//     no defect model is assumed during extraction; fault models (stuck-at,
//     dominant bridge, open) are assigned afterwards to whatever the
//     evidence supports.
//
//   - Defect interaction is tolerated twice: the misprediction penalty is
//     soft (another defect may mask a candidate's predicted error), and the
//     final multiplet is validated by an X-masking consistency check that
//     treats every candidate site as simultaneously unknown.
//
// The main entry point is Diagnose.
package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"multidiag/internal/bitset"
	"multidiag/internal/explain"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
	"multidiag/internal/trace"
)

// Config tunes the diagnosis engine. The zero value selects the published
// defaults; the ablation experiments (T5) flip individual fields.
type Config struct {
	// Lambda is the per-bit misprediction penalty in the greedy cover gain
	// function gain = covered − Lambda·mispredicted. It is deliberately
	// < 1: a candidate's predicted error can be masked by another defect,
	// so mispredictions are weak evidence against a candidate. Default 0.3.
	Lambda float64
	// MaxMultipletSize bounds the number of selected candidates. Default 10.
	MaxMultipletSize int
	// PerPatternCover, when true, reintroduces the SLAT-style assumption:
	// a candidate may only cover a failing pattern it explains exactly
	// (all of the pattern's failing outputs, no others on that pattern).
	// Ablation only; default false.
	PerPatternCover bool
	// DisableXConsistency turns off the X-masking consistency pass
	// (ablation only).
	DisableXConsistency bool
	// DisableBridgeSearch turns off dominant-bridge aggressor refinement.
	DisableBridgeSearch bool
	// ApproxCPT replaces exact critical path tracing with the classical
	// branch-sensitivity approximation during candidate extraction
	// (ablation only; see fsim.CriticalApproxForOutputs).
	ApproxCPT bool
	// Workers bounds the fault-parallel candidate-scoring pool: seeds are
	// sharded across this many goroutines, each owning a forked simulator,
	// with results merged by seed index so the report is bit-identical to a
	// sequential run. 0 (the default) selects GOMAXPROCS; 1 forces the
	// sequential engine. The CLIs expose it as -j.
	Workers int
	// ConeCache, when set, memoizes per-(fault site, pattern word) cone
	// simulation results across candidates and — when shared by the caller,
	// as the experiment campaigns do — across diagnoses of devices built
	// from one (circuit, test set) workload. The cache binds to the first
	// workload shape it sees; a mismatched circuit/test set is refused and
	// the diagnosis runs uncached. Callers observe hit/miss/eviction
	// counters via ConeCache.Observe.
	ConeCache *fsim.ConeCache
	// BridgeLevelWindow bounds aggressor search to nets within this many
	// topological levels of the victim. Default 3.
	BridgeLevelWindow int
	// MaxAggressorsPerVictim caps the aggressor candidates simulated per
	// victim. Default 128.
	MaxAggressorsPerVictim int
	// SharedSim, when set, supplies a prewarmed fault simulator built by
	// fsim.NewFaultSim from exactly this diagnosis's circuit and pattern
	// set. The engine then skips the goodsim phase and — because the
	// simulator carries the syndrome arena and the fork free list — reuses
	// the same scratch pools across requests, the serving batcher's steady
	// state. A simulator whose circuit or pattern count does not match is
	// ignored (the engine builds its own). Diagnoses sharing one simulator
	// must be serialized by the caller; concurrent use requires one
	// SharedSim per in-flight diagnosis.
	SharedSim *fsim.FaultSim
	// Trace receives per-phase spans and counters for this diagnosis (see
	// DESIGN.md §Observability for the span taxonomy). Nil falls back to
	// obs.Global(), which is itself nil — tracing disabled, near-zero
	// overhead — unless a CLI or harness installed one.
	Trace *obs.Trace
	// Explain receives one flight-recorder event per candidate per stage
	// (extract → score → cover → refine → xcheck; see DESIGN.md §8). Nil —
	// the default — disables recording at pointer-test cost.
	Explain *explain.Recorder
}

func (cfg *Config) fill() {
	if cfg.Lambda == 0 {
		cfg.Lambda = 0.3
	}
	if cfg.MaxMultipletSize <= 0 {
		cfg.MaxMultipletSize = 10
	}
	if cfg.BridgeLevelWindow <= 0 {
		cfg.BridgeLevelWindow = 3
	}
	if cfg.MaxAggressorsPerVictim <= 0 {
		cfg.MaxAggressorsPerVictim = 128
	}
}

// ModelKind classifies the fault model(s) assigned to a candidate.
type ModelKind uint8

// Model kinds. StuckOrOpen covers both a stuck-at and the logically
// indistinguishable net-open; BridgeModel names a discovered aggressor.
const (
	StuckOrOpen ModelKind = iota
	BridgeModel
)

// String names the model kind.
func (k ModelKind) String() string {
	switch k {
	case StuckOrOpen:
		return "stuck/open"
	case BridgeModel:
		return "bridge"
	}
	return fmt.Sprintf("ModelKind(%d)", uint8(k))
}

// Model is one fault-model assignment on a candidate site.
type Model struct {
	Kind ModelKind
	// Aggressor is set for BridgeModel.
	Aggressor netlist.NetID
	// Mispredictions under this model (lower is a better fit).
	Mispredictions int
}

// Candidate is one suspect — an equivalence class of sites whose predicted
// behaviour under the test set is identical, so the tester cannot tell them
// apart. Reporting the whole class (instead of an arbitrary member) is what
// diagnosis tools do in practice: physical failure analysis inspects every
// indistinguishable site.
type Candidate struct {
	// Fault is the representative stuck-at hypothesis (site + polarity).
	Fault fault.StuckAt
	// Equivalent lists further hypotheses with identical syndromes under
	// this test set (representative excluded).
	Equivalent []fault.StuckAt
	// Covered is the set of evidence bits (observed failing (pattern,PO)
	// pairs, indexed per Result.Evidence) this candidate predicts.
	Covered bitset.Set
	// TFSF counts observed-fail bits the candidate predicts (== Covered.Count()).
	TFSF int
	// TPSF counts predicted-fail bits the tester observed passing
	// (mispredictions; soft evidence against).
	TPSF int
	// Models lists the fault models consistent with this site's evidence,
	// best first.
	Models []Model
}

// Name renders the candidate's representative site, e.g. "G16 sa0".
func (cd *Candidate) Name(c *netlist.Circuit) string { return cd.Fault.Name(c) }

// Nets returns the nets this candidate points failure analysis at: the
// whole equivalence class plus any discovered bridge aggressors.
func (cd *Candidate) Nets() []netlist.NetID {
	nets := []netlist.NetID{cd.Fault.Net}
	for _, e := range cd.Equivalent {
		nets = append(nets, e.Net)
	}
	for _, m := range cd.Models {
		if m.Kind == BridgeModel {
			nets = append(nets, m.Aggressor)
		}
	}
	return nets
}

// EvidenceBit identifies one observed failing (pattern, PO) pair.
type EvidenceBit struct {
	Pattern int
	PO      int
}

// Result is the diagnosis outcome.
type Result struct {
	// Multiplet is the selected explanation, in selection order.
	Multiplet []*Candidate
	// Ranked is every scored candidate, best first (the multiplet members
	// lead the ranking).
	Ranked []*Candidate
	// Evidence enumerates the observed failing bits; Candidate.Covered
	// indexes into it.
	Evidence []EvidenceBit
	// UnexplainedBits counts evidence not covered by the multiplet.
	UnexplainedBits int
	// Consistent reports whether the X-masking check accepted the multiplet
	// (true when the check is disabled or there is nothing to explain).
	Consistent bool
	// InconsistentPatterns lists failing patterns the X-check could not
	// reconcile with the multiplet.
	InconsistentPatterns []int
	// CandidatesExtracted counts the raw effect-cause extraction yield.
	CandidatesExtracted int
	// Elapsed is the wall-clock diagnosis time.
	Elapsed time.Duration
}

// MultipletNets flattens the multiplet into per-candidate net groups
// (adapter for the metrics package).
func (r *Result) MultipletNets() [][]netlist.NetID {
	out := make([][]netlist.NetID, len(r.Multiplet))
	for i, cd := range r.Multiplet {
		out[i] = cd.Nets()
	}
	return out
}

// ErrCanceled is returned (wrapped, so errors.Is applies) when a
// diagnosis is abandoned because its context was canceled or its deadline
// passed. The engine checks the context between phases and between
// scoring chunks, so a long-running diagnosis stops within one cone-pass
// granule of the cancellation.
var ErrCanceled = errors.New("diagnosis canceled")

// checkpoint returns a wrapped ErrCanceled once ctx is done, nil
// otherwise. phase names where the engine stopped, for operators reading
// request logs.
func checkpoint(ctx context.Context, phase string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %w in %s: %v", ErrCanceled, phase, err)
	}
	return nil
}

// Diagnose locates candidate defect sites explaining the datalog.
//
// Inputs: the (fault-free) circuit design, the applied test patterns, and
// the tester datalog. The engine never sees the defective netlist — only
// its observable behaviour.
func Diagnose(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog, cfg Config) (*Result, error) {
	return DiagnoseCtx(context.Background(), c, pats, log, cfg)
}

// DiagnoseCtx is Diagnose under a context: cancellation (or a deadline)
// is observed between phases and between candidate-scoring chunks, and
// surfaces as a wrapped ErrCanceled. The result is bit-identical to
// Diagnose when the context never fires.
func DiagnoseCtx(ctx context.Context, c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog, cfg Config) (*Result, error) {
	cfg.fill()
	tr := cfg.Trace
	if tr == nil {
		tr = obs.Global()
	}
	root := tr.Span("diagnose")
	// Request-scoped span tree, if the context carries one. Phase spans
	// below mirror the obs span taxonomy so aggregate timings and a single
	// request's tree attribute the same names. Every handle is inert when
	// the context carries no tree (the allocation-free disabled path).
	troot := trace.FromContext(ctx).Start("diagnose")
	defer troot.End() // first End wins, so the success path's End below is the one recorded
	reg := tr.Registry()
	if log.NumPatterns != len(pats) {
		return nil, fmt.Errorf("core: datalog has %d patterns, test set has %d", log.NumPatterns, len(pats))
	}
	if log.NumPOs != len(c.POs) {
		return nil, fmt.Errorf("core: datalog has %d POs, circuit has %d", log.NumPOs, len(c.POs))
	}

	res := &Result{Consistent: true}
	failing := log.FailingPatterns()
	if len(failing) == 0 {
		root.EndInto(&res.Elapsed)
		return res, nil // passing device: nothing to explain
	}

	rec := cfg.Explain

	// Per-output evidence universe. Each phase below also opens a prof
	// window (inert unless a prof collector is installed): the returned
	// context carries the phase=<name> pprof label, and End folds the
	// phase's runtime/metrics deltas into the attribution table.
	sp := root.Child("evidence")
	tsp := troot.Start("evidence")
	_, pt := prof.PhaseCtx(ctx, "evidence")
	evIndex := make(map[EvidenceBit]int)
	for _, p := range failing {
		for _, po := range log.Fails[p].Members() {
			bit := EvidenceBit{Pattern: p, PO: po}
			evIndex[bit] = len(res.Evidence)
			res.Evidence = append(res.Evidence, bit)
		}
	}
	tsp.SetInt("evidence_bits", int64(len(res.Evidence)))
	tsp.SetInt("failing_patterns", int64(len(failing)))
	pt.End()
	tsp.End()
	sp.End()
	if rec.Enabled() {
		bits := make([]explain.Bit, len(res.Evidence))
		for i, b := range res.Evidence {
			bits[i] = explain.Bit{Pattern: b.Pattern, PO: b.PO}
		}
		rec.Evidence(bits)
	}
	reg.Counter("core.evidence_bits").Add(int64(len(res.Evidence)))
	reg.Counter("core.failing_patterns").Add(int64(len(failing)))

	sp = root.Child("goodsim")
	tsp = troot.Start("goodsim")
	_, pt = prof.PhaseCtx(ctx, "goodsim")
	fs := cfg.SharedSim
	if fs != nil && (fs.Circuit() != c || fs.NumPatterns() != len(pats)) {
		fs = nil // shape mismatch: fall back to a private simulator
	}
	var err error
	if fs == nil {
		fs, err = fsim.NewFaultSim(c, pats)
	}
	pt.End()
	tsp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	fs.Observe(reg)
	if cfg.ConeCache != nil && !fs.AttachCache(cfg.ConeCache) {
		reg.Counter("fsim.cone_cache_rejected").Inc()
	}
	if err := checkpoint(ctx, "goodsim"); err != nil {
		return nil, err
	}

	workers := fsim.Workers(cfg.Workers)

	// Step 1: effect-cause candidate extraction via CPT per failing output.
	// Failing patterns are independent back-traces, so they shard across
	// forked tracers; the union is merged in pattern order (and sorted), so
	// the seed list is identical at any worker count.
	sp = root.Child("extract")
	tsp = troot.Start("extract")
	ectx, pt := prof.PhaseCtx(ctx, "extract")
	cpt := fsim.NewCPT(c)
	cpt.Observe(reg)
	seeds, err := extractCandidates(ectx, c, cpt, pats, log, cfg.ApproxCPT, workers, rec)
	tsp.SetInt("seeds", int64(len(seeds)))
	pt.End()
	tsp.End()
	sp.End()
	if err != nil {
		return nil, err
	}
	res.CandidatesExtracted = len(seeds)
	reg.Counter("core.candidates_extracted").Add(int64(len(seeds)))
	if err := checkpoint(ctx, "extract"); err != nil {
		return nil, err
	}

	// Step 2: score every candidate by cone-limited fault simulation. The
	// simulations are independent, so the seed list shards across the
	// worker pool in contiguous chunks (fsim.parallel span); each chunk's
	// syndromes are folded — on this goroutine, strictly in seed order —
	// as soon as the chunk completes, then released back to the
	// simulator's arena. Seed-order folding keeps every downstream
	// decision — equivalence classes, cover tie-breaks, ranking —
	// bit-identical to the sequential engine; chunk-wise folding keeps the
	// live syndrome count (and the allocator) bounded by the worker pool
	// rather than the seed count.
	sp = root.Child("score")
	tsp = troot.Start("score")
	// The score window's labeled context flows into the worker pool, so
	// worker goroutines inherit phase=score (and any workload label) and
	// their allocations land in this window's delta.
	pctx, pt := prof.PhaseCtx(ctx, "score")
	tsp.SetInt("workers", int64(workers))
	reg.Gauge("fsim.workers").Set(int64(workers))
	psp := sp.Child("fsim.parallel")
	tpsp := tsp.Start("fsim.parallel")
	folder := newScoreFolder(c, fs, seeds, log, evIndex, len(res.Evidence), cfg, rec, true)
	fs.SimulateStuckAtChunksCtx(trace.WithSpan(pctx, tpsp), seeds, workers, func(start int, syns []*fsim.Syndrome) {
		for i, syn := range syns {
			folder.fold(start+i, syn)
		}
	})
	tpsp.End()
	psp.End()
	if err := checkpoint(ctx, "score"); err != nil {
		pt.End()
		tsp.End()
		sp.End()
		return nil, err
	}
	cands := folder.finish()
	tsp.SetInt("candidates", int64(len(cands)))
	pt.End()
	tsp.End()
	sp.End()
	reg.Counter("core.candidates_scored").Add(int64(len(cands)))
	reg.Counter("core.candidates_pruned").Add(int64(len(seeds) - len(cands)))

	// Steps 3–5 plus ranking (shared with DiagnoseBatch).
	if err := finishDiagnosis(ctx, root, troot, c, fs, log, evIndex, cands, res, cfg, reg, rec); err != nil {
		return nil, err
	}
	troot.SetInt("multiplet", int64(len(res.Multiplet)))
	troot.End()
	root.EndInto(&res.Elapsed)
	return res, nil
}

// finishDiagnosis runs the post-scoring pipeline — greedy per-output
// covering, fault-model refinement, the X-masking consistency check and
// the final ranking — filling res in place. It is shared by DiagnoseCtx
// and DiagnoseBatch so coalesced diagnoses cannot drift from the
// single-device engine.
func finishDiagnosis(ctx context.Context, root obs.Span, troot trace.Span, c *netlist.Circuit, fs *fsim.FaultSim, log *tester.Datalog, evIndex map[EvidenceBit]int, cands []*Candidate, res *Result, cfg Config, reg *obs.Registry, rec *explain.Recorder) error {
	// Step 3: greedy per-output covering.
	sp := root.Child("cover")
	tsp := troot.Start("cover")
	_, pt := prof.PhaseCtx(ctx, "cover")
	multiplet, uncovered := cover(c, cands, len(res.Evidence), cfg, rec)
	tsp.SetInt("multiplet", int64(len(multiplet)))
	tsp.SetInt("uncovered", int64(uncovered.Count()))
	pt.End()
	tsp.End()
	sp.End()
	res.Multiplet = multiplet
	res.UnexplainedBits = uncovered.Count()
	reg.Histogram("core.multiplet_size").Observe(int64(len(multiplet)))
	reg.Counter("core.unexplained_bits").Add(int64(res.UnexplainedBits))
	if err := checkpoint(ctx, "cover"); err != nil {
		return err
	}

	// Step 4: fault-model refinement (bridge aggressor search).
	if !cfg.DisableBridgeSearch {
		sp = root.Child("refine")
		tsp = troot.Start("refine")
		_, pt = prof.PhaseCtx(ctx, "refine")
		refineModels(c, fs, multiplet, log, evIndex, cfg, reg, rec)
		pt.End()
		tsp.End()
		sp.End()
		if err := checkpoint(ctx, "refine"); err != nil {
			return err
		}
	} else if rec.Enabled() {
		for _, cd := range multiplet {
			rec.Refine(cd.Fault.String(), cd.Name(c), stuckModelFit(cd), explain.VerdictSkipped)
		}
	}

	// Step 5: X-masking consistency check.
	if !cfg.DisableXConsistency && len(multiplet) > 0 {
		sp = root.Child("xcheck")
		tsp = troot.Start("xcheck")
		_, pt = prof.PhaseCtx(ctx, "xcheck")
		res.Consistent, res.InconsistentPatterns = xConsistent(fs, multiplet, log)
		pt.End()
		tsp.End()
		sp.End()
		if !res.Consistent {
			reg.Counter("core.xcheck_inconsistent").Inc()
		}
		if rec.Enabled() {
			verdict := explain.VerdictConsistent
			if !res.Consistent {
				verdict = explain.VerdictInconsistent
			}
			for _, cd := range multiplet {
				rec.XCheck(cd.Fault.String(), cd.Name(c), verdict, res.InconsistentPatterns)
			}
		}
	} else if len(multiplet) == 0 {
		res.Consistent = false
	} else if rec.Enabled() {
		for _, cd := range multiplet {
			rec.XCheck(cd.Fault.String(), cd.Name(c), explain.VerdictSkipped, nil)
		}
	}

	// Final ranking: multiplet members first (selection order), then the
	// rest by (TFSF desc, TPSF asc, net id).
	inMult := map[*Candidate]bool{}
	for _, m := range multiplet {
		inMult[m] = true
	}
	rest := make([]*Candidate, 0, len(cands))
	for _, cd := range cands {
		if !inMult[cd] {
			rest = append(rest, cd)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].TFSF != rest[j].TFSF {
			return rest[i].TFSF > rest[j].TFSF
		}
		if rest[i].TPSF != rest[j].TPSF {
			return rest[i].TPSF < rest[j].TPSF
		}
		if rest[i].Fault.Net != rest[j].Fault.Net {
			return rest[i].Fault.Net < rest[j].Fault.Net
		}
		return !rest[i].Fault.Value1
	})
	res.Ranked = append(append([]*Candidate{}, multiplet...), rest...)
	return nil
}

// extractJob is one failing pattern's back-trace work item.
type extractJob struct {
	p      int
	pos    []netlist.NetID
	poIdxs []int
}

// extractCandidates back-traces every observed failing output with CPT and
// returns the union of (net, stuck-at-complement) hypotheses. Patterns with
// X inputs are skipped for extraction (they still participate in scoring).
// With a recorder attached it also attributes every hypothesis to the
// failing bits whose back-cone yielded it — per (pattern, PO) on the exact
// path, per pattern (PO −1) on the approximate path, which only reports
// the per-pattern union.
//
// Failing patterns are independent traces, so with workers > 1 they shard
// across forked tracers. Per-pattern hypothesis sets are merged in pattern
// order and the union is sorted by (net, polarity) regardless, so the seed
// list is identical at any worker count. The recorder path stays
// sequential: bit attribution must observe patterns in order.
func extractCandidates(ctx context.Context, c *netlist.Circuit, cpt *fsim.CPT, pats []sim.Pattern, log *tester.Datalog, approx bool, workers int, rec *explain.Recorder) ([]fault.StuckAt, error) {
	var jobs []extractJob
	for _, p := range log.FailingPatterns() {
		determinate := true
		for _, v := range pats[p] {
			if !v.IsKnown() {
				determinate = false
				break
			}
		}
		if !determinate {
			continue
		}
		poIdxs := log.Fails[p].Members()
		pos := make([]netlist.NetID, 0, len(poIdxs))
		for _, poIdx := range poIdxs {
			pos = append(pos, c.POs[poIdx])
		}
		jobs = append(jobs, extractJob{p: p, pos: pos, poIdxs: poIdxs})
	}

	seen := make(map[fault.StuckAt]bool)
	var out []fault.StuckAt
	var sources map[fault.StuckAt][]explain.Bit
	if rec.Enabled() {
		sources = make(map[fault.StuckAt][]explain.Bit)
	}

	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers > 1 && !rec.Enabled() {
		perJob := make([][]fault.StuckAt, len(jobs))
		errs := make([]error, len(jobs))
		var next atomic.Int64
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			t := cpt
			if wk > 0 {
				t = cpt.Fork()
			}
			wg.Add(1)
			go func(wk int, t *fsim.CPT) {
				defer wg.Done()
				prof.DoWorker(ctx, wk, func(ctx context.Context) {
					for ctx.Err() == nil {
						ji := int(next.Add(1)) - 1
						if ji >= len(jobs) {
							return
						}
						perJob[ji], errs[ji] = traceJob(c, t, pats, jobs[ji], approx)
						if errs[ji] != nil {
							return
						}
					}
				})
			}(wk, t)
		}
		wg.Wait()
		for ji := range jobs {
			if errs[ji] != nil {
				return nil, errs[ji]
			}
			for _, f := range perJob[ji] {
				if !seen[f] {
					seen[f] = true
					out = append(out, f)
				}
			}
		}
	} else {
		for _, j := range jobs {
			var (
				union []bool
				per   [][]bool
				vals  []logic.Value
				err   error
			)
			if approx {
				union, vals, err = cpt.CriticalApproxForOutputs(pats[j.p], j.pos)
			} else {
				union, per, vals, err = cpt.CriticalForOutputs(pats[j.p], j.pos)
			}
			if err != nil {
				return nil, err
			}
			for id, cr := range union {
				if !cr {
					continue
				}
				n := netlist.NetID(id)
				if !vals[n].IsKnown() {
					continue
				}
				f := fault.StuckAt{Net: n, Value1: vals[n] == logic.Zero}
				if !seen[f] {
					seen[f] = true
					out = append(out, f)
				}
				if sources != nil {
					if per == nil {
						sources[f] = append(sources[f], explain.Bit{Pattern: j.p, PO: -1})
					} else {
						for i, crit := range per {
							if crit[n] {
								sources[f] = append(sources[f], explain.Bit{Pattern: j.p, PO: j.poIdxs[i]})
							}
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Net != out[j].Net {
			return out[i].Net < out[j].Net
		}
		return !out[i].Value1 && out[j].Value1
	})
	if rec.Enabled() {
		for _, f := range out {
			rec.Extract(f.String(), f.Name(c), sources[f])
		}
	}
	return out, nil
}

// traceJob back-traces one failing pattern on tracer t and returns its
// hypothesis set (copied out of the tracer's scratch).
func traceJob(c *netlist.Circuit, t *fsim.CPT, pats []sim.Pattern, j extractJob, approx bool) ([]fault.StuckAt, error) {
	var (
		union []bool
		vals  []logic.Value
		err   error
	)
	if approx {
		union, vals, err = t.CriticalApproxForOutputs(pats[j.p], j.pos)
	} else {
		union, _, vals, err = t.CriticalForOutputs(pats[j.p], j.pos)
	}
	if err != nil {
		return nil, err
	}
	var out []fault.StuckAt
	for id, cr := range union {
		if !cr {
			continue
		}
		n := netlist.NetID(id)
		if !vals[n].IsKnown() {
			continue
		}
		out = append(out, fault.StuckAt{Net: n, Value1: vals[n] == logic.Zero})
	}
	return out, nil
}

// evLookup resolves an observed (pattern, PO) pair to its evidence index.
// For workload shapes where the dense table is affordable it is a flat
// int32 array — one load on the innermost scoring loop, no map hashing,
// no composite-key boxing; very large pattern×PO products fall back to
// the map the caller already built.
type evLookup struct {
	flat   []int32 // index [p*numPOs+po], -1 = not evidence
	numPOs int
	m      map[EvidenceBit]int
}

// evLookupFlatMax bounds the dense table (entries, i.e. 4 bytes each).
const evLookupFlatMax = 1 << 22

func newEvLookup(numPats, numPOs int, evIndex map[EvidenceBit]int) evLookup {
	if numPats*numPOs > evLookupFlatMax {
		return evLookup{m: evIndex, numPOs: numPOs}
	}
	flat := make([]int32, numPats*numPOs)
	for i := range flat {
		flat[i] = -1
	}
	for bit, idx := range evIndex {
		flat[bit.Pattern*numPOs+bit.PO] = int32(idx)
	}
	return evLookup{flat: flat, numPOs: numPOs}
}

func (l *evLookup) get(p, po int) (int, bool) {
	if l.flat != nil {
		idx := l.flat[p*l.numPOs+po]
		return int(idx), idx >= 0
	}
	idx, ok := l.m[EvidenceBit{Pattern: p, PO: po}]
	return idx, ok
}

// scoreFolder folds syndromes — strictly in seed order — into scored
// equivalence-class candidates. Seeds with identical syndromes under this
// test set merge into one candidate (they are indistinguishable by any
// scoring that follows); folding in seed order keeps class representatives
// and candidate order independent of how the simulation batch was
// scheduled, so the chunked parallel engine and the sequential loop yield
// byte-identical reports.
//
// The folder owns all per-seed scratch: the class-signature byte buffer
// (pattern index + raw failing-set words, looked up with the
// map[string]-on-[]byte idiom), a member-enumeration slice, and one
// coverage bitset that is only cloned for seeds that found a new,
// non-pruned class. With releaseSyns set, every folded syndrome is handed
// back to the simulator's arena, so a scoring pass keeps O(workers ×
// chunk) syndromes live instead of O(seeds).
type scoreFolder struct {
	c           *netlist.Circuit
	fs          *fsim.FaultSim
	seeds       []fault.StuckAt
	log         *tester.Datalog
	ev          evLookup
	numEv       int
	cfg         Config
	rec         *explain.Recorder
	releaseSyns bool

	cands   []*Candidate
	classes map[string]*Candidate
	sigBuf  []byte
	memBuf  []int
	cov     bitset.Set
}

func newScoreFolder(c *netlist.Circuit, fs *fsim.FaultSim, seeds []fault.StuckAt, log *tester.Datalog, evIndex map[EvidenceBit]int, numEv int, cfg Config, rec *explain.Recorder, releaseSyns bool) *scoreFolder {
	return &scoreFolder{
		c:           c,
		fs:          fs,
		seeds:       seeds,
		log:         log,
		ev:          newEvLookup(log.NumPatterns, log.NumPOs, evIndex),
		numEv:       numEv,
		cfg:         cfg,
		rec:         rec,
		releaseSyns: releaseSyns,
		cands:       make([]*Candidate, 0, len(seeds)/4+1),
		classes:     make(map[string]*Candidate),
		cov:         bitset.New(numEv),
	}
}

// fold scores seed si's syndrome. Callers must fold seeds in ascending
// order; a nil syndrome (canceled simulation) is skipped.
func (sf *scoreFolder) fold(si int, syn *fsim.Syndrome) {
	if syn == nil {
		return
	}
	f := sf.seeds[si]
	sf.sigBuf = sf.sigBuf[:0]
	for p, fails := range syn.Fails {
		if fails == nil {
			continue
		}
		sf.sigBuf = binary.LittleEndian.AppendUint32(sf.sigBuf, uint32(p))
		for _, w := range fails {
			sf.sigBuf = binary.LittleEndian.AppendUint64(sf.sigBuf, w)
		}
	}
	if rep, ok := sf.classes[string(sf.sigBuf)]; ok {
		rep.Equivalent = append(rep.Equivalent, f)
		if sf.rec.Enabled() { // guard: argument rendering is not free
			sf.rec.Merged(f.String(), f.Name(sf.c), rep.Fault.String())
		}
		sf.releaseSyn(syn)
		return
	}
	cd := &Candidate{Fault: f}
	sf.classes[string(sf.sigBuf)] = cd
	sf.cov.Clear()
	for p, fails := range syn.Fails {
		if fails == nil {
			continue
		}
		sf.memBuf = fails.AppendMembers(sf.memBuf[:0])
		for _, po := range sf.memBuf {
			if idx, ok := sf.ev.get(p, po); ok {
				sf.cov.Add(idx)
			} else {
				cd.TPSF++
			}
		}
	}
	if sf.cfg.PerPatternCover {
		// SLAT-style ablation: a pattern's evidence may be kept only if
		// the candidate explains that pattern exactly.
		for _, p := range sf.log.FailingPatterns() {
			obs := sf.log.Fails[p]
			pred := syn.Fails[p]
			exact := pred != nil && pred.Equal(obs)
			if !exact {
				for _, po := range obs.Members() {
					if idx, ok := sf.ev.get(p, po); ok {
						sf.cov.Remove(idx)
					}
				}
			}
		}
	}
	sf.releaseSyn(syn)
	cd.TFSF = sf.cov.Count()
	if cd.TFSF == 0 {
		// Explains nothing observable. The class entry stays (so equivalent
		// later seeds merge into it and vanish with it), but the candidate
		// is never emitted and needs no coverage set of its own.
		if sf.rec.Enabled() {
			sf.rec.Score(f.String(), f.Name(sf.c), nil, 0, cd.TPSF, nil,
				explain.VerdictPruned, "predicts no observed failing bit")
		}
		return
	}
	cd.Covered = sf.cov.Clone()
	cd.Models = []Model{{Kind: StuckOrOpen, Mispredictions: cd.TPSF}}
	sf.cands = append(sf.cands, cd)
}

func (sf *scoreFolder) releaseSyn(syn *fsim.Syndrome) {
	if sf.releaseSyns {
		sf.fs.ReleaseSyndrome(syn)
	}
}

// finish records the survivors (classes are final only once every seed has
// folded) and returns the scored candidates in seed order.
func (sf *scoreFolder) finish() []*Candidate {
	if sf.rec.Enabled() {
		for _, cd := range sf.cands {
			var equiv []string
			for _, e := range cd.Equivalent {
				equiv = append(equiv, e.Name(sf.c))
			}
			sf.rec.Score(cd.Fault.String(), cd.Name(sf.c), cd.Covered.Members(),
				cd.TFSF, cd.TPSF, equiv, explain.VerdictScored, "")
		}
	}
	return sf.cands
}

// scoreCandidates folds a fully materialized syndrome slice (indexed like
// seeds) — the batch-diagnosis path, which must keep the shared syndromes
// alive across devices and so never releases them. The single-device
// engine folds incrementally through scoreFolder instead.
func scoreCandidates(c *netlist.Circuit, syns []*fsim.Syndrome, seeds []fault.StuckAt, log *tester.Datalog, evIndex map[EvidenceBit]int, numEv int, cfg Config, rec *explain.Recorder) []*Candidate {
	sf := newScoreFolder(c, nil, seeds, log, evIndex, numEv, cfg, rec, false)
	for si, syn := range syns {
		sf.fold(si, syn)
	}
	return sf.finish()
}

// cover greedily selects candidates to explain the evidence universe.
// Returns the multiplet and the uncovered evidence bits.
func cover(c *netlist.Circuit, cands []*Candidate, numEv int, cfg Config, rec *explain.Recorder) ([]*Candidate, bitset.Set) {
	remaining := bitset.New(numEv)
	for i := 0; i < numEv; i++ {
		remaining.Add(i)
	}
	var multiplet []*Candidate
	used := make(map[*Candidate]bool)
	for len(multiplet) < cfg.MaxMultipletSize && !remaining.Empty() {
		var best *Candidate
		bestGain := 0.0
		bestCov := 0
		for _, cd := range cands {
			if used[cd] {
				continue
			}
			cov := cd.Covered.IntersectCount(remaining)
			if cov == 0 {
				continue
			}
			gain := float64(cov) - cfg.Lambda*float64(cd.TPSF)
			better := false
			switch {
			case best == nil:
				better = true
			case gain > bestGain:
				better = true
			case gain == bestGain:
				// Deterministic tie-breaks: more coverage, fewer
				// mispredictions, lower net id.
				if cov != bestCov {
					better = cov > bestCov
				} else if cd.TPSF != best.TPSF {
					better = cd.TPSF < best.TPSF
				} else {
					better = cd.Fault.Net < best.Fault.Net
				}
			}
			if better {
				best, bestGain, bestCov = cd, gain, cov
			}
		}
		if best == nil {
			break // nothing covers the residue
		}
		// A candidate with non-positive gain is only taken when it is the
		// sole way to make progress — explaining all observed failures
		// outranks the soft misprediction penalty (defect masking makes
		// mispredictions unreliable witnesses).
		used[best] = true
		multiplet = append(multiplet, best)
		remaining.SubtractWith(best.Covered)
		if rec.Enabled() {
			rec.Kept(best.Fault.String(), best.Name(c), len(multiplet), bestGain, bestCov)
		}
	}
	if rec.Enabled() {
		recordCoverPruned(c, cands, multiplet, used, remaining, cfg, rec)
	}
	return multiplet, remaining
}

// recordCoverPruned emits the cover-stage verdict for every candidate the
// greedy selection passed over, naming the multiplet member that overlaps
// most of its coverage (the dominating competitor).
func recordCoverPruned(c *netlist.Circuit, cands, multiplet []*Candidate, used map[*Candidate]bool, remaining bitset.Set, cfg Config, rec *explain.Recorder) {
	for _, cd := range cands {
		if used[cd] {
			continue
		}
		var dom *Candidate
		overlap := 0
		for _, m := range multiplet {
			if ov := cd.Covered.IntersectCount(m.Covered); ov > overlap {
				dom, overlap = m, ov
			}
		}
		domName := ""
		if dom != nil {
			domName = dom.Name(c)
		}
		reason := "all covered bits already explained by the multiplet"
		switch {
		case cd.Covered.IntersectCount(remaining) > 0 && len(multiplet) >= cfg.MaxMultipletSize:
			reason = "residual coverage but multiplet size cap reached"
		case overlap == 0:
			reason = "no overlap with any evidence the cover reached"
		}
		rec.CoverPruned(cd.Fault.String(), cd.Name(c), domName, overlap, reason)
	}
}

// xConsistent validates the multiplet: with every member site injected as
// simultaneously unknown (X), every observed failing output must receive X
// (otherwise the multiplet cannot produce that failure under any behaviour
// of the sites, so something is missing or wrong).
func xConsistent(fs *fsim.FaultSim, multiplet []*Candidate, log *tester.Datalog) (bool, []int) {
	sites := make([]netlist.NetID, 0, len(multiplet))
	for _, cd := range multiplet {
		sites = append(sites, cd.Fault.Net)
	}
	xReach := fs.SimulateXAt(sites)
	var bad []int
	for _, p := range log.FailingPatterns() {
		reach := xReach[p]
		ok := true
		for _, po := range log.Fails[p].Members() {
			if reach == nil || !reach.Has(po) {
				ok = false
				break
			}
		}
		if !ok {
			bad = append(bad, p)
		}
	}
	return len(bad) == 0, bad
}
