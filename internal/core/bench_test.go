package core

import (
	"context"
	"fmt"
	"testing"

	"multidiag/internal/atpg"
	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/explain"
	"multidiag/internal/fsim"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
	"multidiag/internal/trace"
)

// benchSetup builds the shared benchmark fixture: a 3-defect device on a
// 1000-gate circuit with its ATPG test set and datalog.
func benchSetup(b *testing.B) (c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog) {
	b.Helper()
	c, err := circuits.Generate(circuits.GenConfig{Seed: 9, NumPIs: 24, NumGates: 1000, NumPOs: 20})
	if err != nil {
		b.Fatal(err)
	}
	tests, err := atpg.Generate(c, atpg.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	for seed := int64(0); ; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 3})
		if err != nil {
			b.Fatal(err)
		}
		dev, err := defect.Inject(c, ds)
		if err != nil {
			continue
		}
		log, err = tester.ApplyTest(c, dev, tests.Patterns)
		if err != nil {
			b.Fatal(err)
		}
		if len(log.Fails) > 0 {
			break
		}
	}
	return c, tests.Patterns, log
}

// BenchmarkDiagnose measures one full diagnosis (extraction + scoring +
// cover + refinement + X-check) with tracing disabled — the seed baseline
// the <2% overhead budget is measured against.
func BenchmarkDiagnose(b *testing.B) {
	c, pats, log := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, pats, log, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnoseTraced is the same diagnosis with a live trace and
// registry attached: the difference to BenchmarkDiagnose is the total cost
// of phase spans plus hot-path counters.
func BenchmarkDiagnoseTraced(b *testing.B) {
	c, pats, log := benchSetup(b)
	tr := obs.New("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, pats, log, Config{Trace: tr}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnoseRequestTraced runs the diagnosis under a request-scoped
// span tree (internal/trace carried via context): the difference to
// BenchmarkDiagnose is the full cost of per-request span emission — phase
// spans, per-worker spans, attrs — which mirrors what every traced mdserve
// request pays. BenchmarkDiagnose itself stays the disabled-path baseline:
// request tracing off must cost nothing measurable there.
func BenchmarkDiagnoseRequestTraced(b *testing.B) {
	c, pats, log := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := trace.WithTree(context.Background(), trace.NewTree(trace.TraceID{}))
		if _, err := DiagnoseCtx(ctx, c, pats, log, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnoseExplained adds the candidate flight recorder (in-memory,
// no emitter): the difference to BenchmarkDiagnose is the full cost of
// per-candidate event assembly and retention.
func BenchmarkDiagnoseExplained(b *testing.B) {
	c, pats, log := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, pats, log, Config{Explain: explain.New("bench")}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnoseProfiled runs the diagnosis with a prof collector
// installed (phase windows + pprof labels, no sampler/sink): the
// difference to BenchmarkDiagnose is the enabled-path overhead of the
// continuous-profiling layer — a runtime/metrics read pair and a label
// swap per phase. BenchmarkDiagnose stays the disabled-path baseline:
// profiling off must cost nothing measurable there.
func BenchmarkDiagnoseProfiled(b *testing.B) {
	c, pats, log := benchSetup(b)
	pc := prof.New(prof.Config{})
	prof.Enable(pc)
	b.Cleanup(func() {
		prof.Disable()
		pc.Stop()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, pats, log, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnoseParallel is the fault-parallel engine at 4 workers —
// the speedup proof against BenchmarkDiagnose (identical reports are
// asserted by TestDiagnoseParallelDeterminism).
func BenchmarkDiagnoseParallel(b *testing.B) {
	c, pats, log := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, pats, log, Config{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnoseParallelCached adds a shared warm cone cache to the
// 4-worker engine: iterations after the first replay every (fault, word)
// cone result, which is the steady state of a campaign diagnosing many
// devices of one workload.
func BenchmarkDiagnoseParallelCached(b *testing.B) {
	c, pats, log := benchSetup(b)
	cc := fsim.NewConeCache(1 << 20)
	if _, err := Diagnose(c, pats, log, Config{Workers: 4, ConeCache: cc}); err != nil {
		b.Fatal(err) // warm
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, pats, log, Config{Workers: 4, ConeCache: cc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiagnoseScaling sweeps the worker count over the same fixture —
// the CI scaling matrix runs these sub-benchmarks and gates the j8/j1
// speedup. Local single-core boxes will show parity rather than speedup
// (the chunked engine's win there is allocation behavior, not wall
// clock); the gate runs where GOMAXPROCS is honest about the hardware.
func BenchmarkDiagnoseScaling(b *testing.B) {
	c, pats, log := benchSetup(b)
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Diagnose(c, pats, log, Config{Workers: j}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiagnoseShared reuses one warm simulator across iterations via
// Config.SharedSim — the serving batcher's steady state. The syndrome
// arena and fork free list persist, so per-diagnosis allocation drops to
// the extract/cover/refine tail.
func BenchmarkDiagnoseShared(b *testing.B) {
	c, pats, log := benchSetup(b)
	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Workers: 4, SharedSim: fs}
	if _, err := Diagnose(c, pats, log, cfg); err != nil {
		b.Fatal(err) // warm the arena
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, pats, log, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
