package core

import (
	"testing"

	"multidiag/internal/atpg"
	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/tester"
)

// BenchmarkDiagnose measures one full diagnosis (extraction + scoring +
// cover + refinement + X-check) of a 3-defect device on a 1000-gate
// circuit.
func BenchmarkDiagnose(b *testing.B) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 9, NumPIs: 24, NumGates: 1000, NumPOs: 20})
	if err != nil {
		b.Fatal(err)
	}
	tests, err := atpg.Generate(c, atpg.Config{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var log *tester.Datalog
	for seed := int64(0); ; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 3})
		if err != nil {
			b.Fatal(err)
		}
		dev, err := defect.Inject(c, ds)
		if err != nil {
			continue
		}
		log, err = tester.ApplyTest(c, dev, tests.Patterns)
		if err != nil {
			b.Fatal(err)
		}
		if len(log.Fails) > 0 {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, tests.Patterns, log, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
