package core

import (
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/explain"
)

// eventsByCand groups a recorder's events per candidate id and stage.
func eventsByCand(evs []explain.Event) map[string]map[string][]explain.Event {
	out := map[string]map[string][]explain.Event{}
	for _, ev := range evs {
		if ev.Kind != "cand" {
			continue
		}
		if out[ev.Cand] == nil {
			out[ev.Cand] = map[string][]explain.Event{}
		}
		out[ev.Cand][ev.Stage] = append(out[ev.Cand][ev.Stage], ev)
	}
	return out
}

// TestExplainLifecycleComplete is the flight recorder's core contract:
// after a diagnosis with a recorder attached, every extracted seed has a
// complete, self-consistent trail — extract, then exactly one scoring
// verdict (scored / merged / pruned), then a cover verdict for every
// scored survivor, then refine + xcheck for every multiplet member.
func TestExplainLifecycleComplete(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	ds := []defect.Defect{
		{Kind: defect.StuckNet, Net: c.NetByName("G10"), Value1: true},
		{Kind: defect.StuckNet, Net: c.NetByName("G19"), Value1: true},
	}
	rec := explain.New("test")
	res, _, _ := diagnoseInjected(t, c, pats, ds, Config{Explain: rec})
	if len(res.Evidence) == 0 {
		t.Skip("not activated")
	}
	evs, dropped := rec.Events()
	if dropped != 0 {
		t.Fatalf("dropped %d events", dropped)
	}

	// Exactly one evidence event, enumerating the whole universe.
	var evidence []explain.Event
	for _, ev := range evs {
		if ev.Kind == "evidence" {
			evidence = append(evidence, ev)
		}
	}
	if len(evidence) != 1 {
		t.Fatalf("%d evidence events", len(evidence))
	}
	if len(evidence[0].Bits) != len(res.Evidence) {
		t.Fatalf("evidence event has %d bits, result has %d", len(evidence[0].Bits), len(res.Evidence))
	}
	for i, b := range evidence[0].Bits {
		if b.Pattern != res.Evidence[i].Pattern || b.PO != res.Evidence[i].PO {
			t.Fatalf("evidence bit %d mismatch: %+v vs %+v", i, b, res.Evidence[i])
		}
	}

	byCand := eventsByCand(evs)
	if len(byCand) != res.CandidatesExtracted {
		t.Fatalf("trails for %d candidates, extracted %d", len(byCand), res.CandidatesExtracted)
	}

	// Every candidate: one extract event with a non-empty source
	// attribution, then exactly one scoring verdict.
	scored := 0
	for cand, stages := range byCand {
		ext := stages[explain.StageExtract]
		if len(ext) != 1 {
			t.Fatalf("%s: %d extract events", cand, len(ext))
		}
		if len(ext[0].Bits) == 0 {
			t.Errorf("%s: extract event has no source bits", cand)
		}
		for _, b := range ext[0].Bits {
			if b.PO < 0 {
				t.Errorf("%s: exact-CPT extraction attributed at pattern level", cand)
			}
		}
		sc := stages[explain.StageScore]
		if len(sc) != 1 {
			t.Fatalf("%s: %d score events", cand, len(sc))
		}
		switch sc[0].Verdict {
		case explain.VerdictScored:
			scored++
			if sc[0].TFSF == 0 || len(sc[0].Covered) != sc[0].TFSF {
				t.Errorf("%s: scored with TFSF=%d but %d covered indices", cand, sc[0].TFSF, len(sc[0].Covered))
			}
			for _, idx := range sc[0].Covered {
				if idx < 0 || idx >= len(res.Evidence) {
					t.Errorf("%s: covered index %d out of evidence range", cand, idx)
				}
			}
			// Scored survivors must receive a cover verdict.
			cov := stages[explain.StageCover]
			if len(cov) != 1 {
				t.Fatalf("%s: scored but %d cover events", cand, len(cov))
			}
			if v := cov[0].Verdict; v != explain.VerdictKept && v != explain.VerdictPruned {
				t.Errorf("%s: cover verdict %q", cand, v)
			}
		case explain.VerdictMerged:
			if sc[0].EquivTo == "" {
				t.Errorf("%s: merged without a target class", cand)
			}
			if _, ok := byCand[sc[0].EquivTo]; !ok {
				t.Errorf("%s: merged into unknown candidate %q", cand, sc[0].EquivTo)
			}
		case explain.VerdictPruned:
			if sc[0].Reason == "" {
				t.Errorf("%s: pruned without a reason", cand)
			}
		default:
			t.Errorf("%s: unknown score verdict %q", cand, sc[0].Verdict)
		}
	}

	// Every multiplet member: the full five-stage trail, kept in selection
	// order, with refine models and the shared xcheck verdict.
	for i, cd := range res.Multiplet {
		cand := cd.Fault.String()
		stages := byCand[cand]
		if stages == nil {
			t.Fatalf("multiplet member %s has no trail", cand)
		}
		cov := stages[explain.StageCover]
		if len(cov) != 1 || cov[0].Verdict != explain.VerdictKept {
			t.Fatalf("%s: kept verdict missing (%v)", cand, cov)
		}
		if cov[0].Order != i+1 {
			t.Errorf("%s: selection order %d, want %d", cand, cov[0].Order, i+1)
		}
		ref := stages[explain.StageRefine]
		if len(ref) != 1 || len(ref[0].Models) == 0 {
			t.Fatalf("%s: refine event missing or empty (%v)", cand, ref)
		}
		if len(ref[0].Models) != len(cd.Models) {
			t.Errorf("%s: %d model fits recorded, candidate has %d", cand, len(ref[0].Models), len(cd.Models))
		}
		xc := stages[explain.StageXCheck]
		if len(xc) != 1 {
			t.Fatalf("%s: %d xcheck events", cand, len(xc))
		}
		want := explain.VerdictConsistent
		if !res.Consistent {
			want = explain.VerdictInconsistent
		}
		if xc[0].Verdict != want {
			t.Errorf("%s: xcheck verdict %q, want %q", cand, xc[0].Verdict, want)
		}
	}
	if scored == 0 {
		t.Fatal("no candidate survived scoring")
	}
}

// TestExplainDisabledStages: ablation configs must still close every
// multiplet member's trail, with skipped verdicts.
func TestExplainDisabledStages(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}}
	rec := explain.New("test")
	res, _, _ := diagnoseInjected(t, c, pats, ds,
		Config{Explain: rec, DisableBridgeSearch: true, DisableXConsistency: true})
	if len(res.Multiplet) == 0 {
		t.Skip("not activated")
	}
	evs, _ := rec.Events()
	byCand := eventsByCand(evs)
	for _, cd := range res.Multiplet {
		stages := byCand[cd.Fault.String()]
		ref := stages[explain.StageRefine]
		if len(ref) != 1 || ref[0].Verdict != explain.VerdictSkipped {
			t.Errorf("%s: refine not marked skipped (%v)", cd.Fault.String(), ref)
		}
		if len(ref[0].Models) == 0 {
			t.Errorf("%s: skipped refine dropped the stuck-model fit", cd.Fault.String())
		}
		xc := stages[explain.StageXCheck]
		if len(xc) != 1 || xc[0].Verdict != explain.VerdictSkipped {
			t.Errorf("%s: xcheck not marked skipped (%v)", cd.Fault.String(), xc)
		}
	}
}

// TestExplainApproxCPTAttribution: the approximate-CPT ablation only knows
// per-pattern criticality, so extraction sources must use the documented
// PO=-1 pattern-level attribution.
func TestExplainApproxCPTAttribution(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}}
	rec := explain.New("test")
	res, _, _ := diagnoseInjected(t, c, pats, ds, Config{Explain: rec, ApproxCPT: true})
	if res.CandidatesExtracted == 0 {
		t.Skip("not activated")
	}
	evs, _ := rec.Events()
	checked := 0
	for _, ev := range evs {
		if ev.Stage != explain.StageExtract {
			continue
		}
		for _, b := range ev.Bits {
			if b.PO != -1 {
				t.Fatalf("%s: approx extraction attributed to PO %d", ev.Cand, b.PO)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no extraction sources recorded")
	}
}

// TestExplainDisabledIsUntraced: without a recorder, Diagnose must record
// nothing anywhere (the nil path the overhead budget is measured on).
func TestExplainDisabledIsUntraced(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}}
	res, _, _ := diagnoseInjected(t, c, pats, ds, Config{})
	if len(res.Multiplet) == 0 {
		t.Skip("not activated")
	}
	var rec *explain.Recorder
	if evs, dropped := rec.Events(); evs != nil || dropped != 0 {
		t.Fatal("nil recorder accumulated events")
	}
}
