package core

import (
	"runtime/metrics"
	"testing"

	"multidiag/internal/atpg"
	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/prof"
	"multidiag/internal/tester"
)

func allocObjectsNow(t *testing.T) int64 {
	t.Helper()
	s := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		t.Skip("/gc/heap/allocs:objects not exported by this toolchain")
	}
	return int64(s[0].Value.Uint64())
}

// TestProfPhaseAllocAttribution is the acceptance proof for the phase
// accounting: for one sequential core.Diagnose run the per-phase
// allocation deltas must sum to (within 10% of) the run's total
// allocations — i.e. the phase windows tile the diagnosis with no
// significant unattributed gaps. Workers: 1 keeps the phases strictly
// sequential, so no window double-counts another's activity.
func TestProfPhaseAllocAttribution(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 5, NumPIs: 16, NumGates: 400, NumPOs: 12})
	if err != nil {
		t.Fatal(err)
	}
	tests, err := atpg.Generate(c, atpg.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var log *tester.Datalog
	for seed := int64(0); ; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 2})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := defect.Inject(c, ds)
		if err != nil {
			continue
		}
		log, err = tester.ApplyTest(c, dev, tests.Patterns)
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Fails) > 0 {
			break
		}
	}

	pc := prof.New(prof.Config{})
	prof.Enable(pc)
	defer func() {
		prof.Disable()
		pc.Stop()
	}()

	before := allocObjectsNow(t)
	if _, err := Diagnose(c, tests.Patterns, log, Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	total := allocObjectsNow(t) - before

	var attributed int64
	phases := pc.Phases()
	for _, p := range phases {
		attributed += p.AllocObjects
	}
	if len(phases) < 4 {
		t.Fatalf("only %d phases recorded: %+v", len(phases), phases)
	}
	if total <= 0 {
		t.Fatalf("total allocations = %d", total)
	}
	// attributed ≤ total by construction (the windows are disjoint slices
	// of the run plus the test's own bookkeeping outside them).
	ratio := float64(attributed) / float64(total)
	t.Logf("attributed %d of %d allocated objects (%.1f%%) across %d phases",
		attributed, total, 100*ratio, len(phases))
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("phase deltas sum to %.1f%% of the run's allocations, want within 10%%\nphases: %+v",
			100*ratio, phases)
	}
}
