package core

import (
	"context"
	"errors"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/fsim"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// batchDevices injects one defect set per device and returns the datalogs.
func batchDevices(t *testing.T, c *netlist.Circuit, pats []sim.Pattern, devDefects [][]defect.Defect) []*tester.Datalog {
	t.Helper()
	logs := make([]*tester.Datalog, len(devDefects))
	for i, ds := range devDefects {
		dev, err := defect.Inject(c, ds)
		if err != nil {
			t.Fatal(err)
		}
		logs[i], err = tester.ApplyTest(c, dev, pats)
		if err != nil {
			t.Fatal(err)
		}
	}
	return logs
}

// TestDiagnoseBatchMatchesSolo is the coalescing correctness pin: a batch
// of devices — overlapping defects (shared seeds), disjoint defects, and
// a passing device — must produce reports bit-identical to diagnosing
// each device alone.
func TestDiagnoseBatchMatchesSolo(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	devDefects := [][]defect.Defect{
		{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}},
		{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false},
			{Kind: defect.StuckNet, Net: c.NetByName("G10"), Value1: true}},
		{}, // passing device
		{{Kind: defect.StuckNet, Net: c.NetByName("G23"), Value1: true}},
	}
	logs := batchDevices(t, c, pats, devDefects)

	for _, workers := range []int{1, 4} {
		cfg := Config{Workers: workers}
		results, errs, err := DiagnoseBatch(context.Background(), c, pats, logs, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, log := range logs {
			if errs[i] != nil {
				t.Fatalf("workers=%d device %d: %v", workers, i, errs[i])
			}
			solo, err := Diagnose(c, pats, log, Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, want := renderResult(c, results[i]), renderResult(c, solo)
			if got != want {
				t.Errorf("workers=%d device %d: batch report diverges from solo\nbatch:\n%s\nsolo:\n%s",
					workers, i, got, want)
			}
		}
	}
}

// TestDiagnoseBatchSharedCache: batch diagnosis must accept and reuse a
// workload cone cache, and still match solo reports.
func TestDiagnoseBatchSharedCache(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	devDefects := [][]defect.Defect{
		{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}},
		{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}},
	}
	logs := batchDevices(t, c, pats, devDefects)
	cc := fsim.NewConeCache(0)
	results, errs, err := DiagnoseBatch(context.Background(), c, pats, logs, Config{ConeCache: cc})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := Diagnose(c, pats, logs[0], Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range logs {
		if errs[i] != nil {
			t.Fatalf("device %d: %v", i, errs[i])
		}
		if got, want := renderResult(c, results[i]), renderResult(c, solo); got != want {
			t.Errorf("device %d cached batch diverges from solo\nbatch:\n%s\nsolo:\n%s", i, got, want)
		}
	}
}

// TestDiagnoseBatchPositionalErrors: a malformed datalog fails its own
// slot without poisoning the rest of the batch.
func TestDiagnoseBatchPositionalErrors(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	logs := batchDevices(t, c, pats, [][]defect.Defect{
		{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}},
	})
	bad := &tester.Datalog{NumPatterns: 3, NumPOs: len(c.POs)}
	results, errs, err := DiagnoseBatch(context.Background(), c, pats,
		[]*tester.Datalog{bad, logs[0]}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] == nil || results[0] != nil {
		t.Errorf("malformed device: want positional error, got res=%v err=%v", results[0], errs[0])
	}
	if errs[1] != nil || results[1] == nil {
		t.Errorf("good device: want result, got res=%v err=%v", results[1], errs[1])
	}
	if results[1] != nil && len(results[1].Multiplet) == 0 {
		t.Error("good device diagnosed to an empty multiplet")
	}
}

// TestDiagnoseCtxCanceled: a pre-canceled context aborts before any work
// and surfaces as a wrapped ErrCanceled.
func TestDiagnoseCtxCanceled(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	logs := batchDevices(t, c, pats, [][]defect.Defect{
		{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DiagnoseCtx(ctx, c, pats, logs[0], Config{}); !errors.Is(err, ErrCanceled) {
		t.Errorf("DiagnoseCtx: want ErrCanceled, got %v", err)
	}
	if _, _, err := DiagnoseBatch(ctx, c, pats, logs, Config{}); !errors.Is(err, ErrCanceled) {
		t.Errorf("DiagnoseBatch: want ErrCanceled, got %v", err)
	}
}

// TestDiagnoseCtxUncanceledMatchesDiagnose: with a live context the ctx
// variant is the same engine.
func TestDiagnoseCtxUncanceledMatchesDiagnose(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	logs := batchDevices(t, c, pats, [][]defect.Defect{
		{{Kind: defect.StuckNet, Net: c.NetByName("G10"), Value1: true}},
	})
	a, err := DiagnoseCtx(context.Background(), c, pats, logs[0], Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Diagnose(c, pats, logs[0], Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderResult(c, a), renderResult(c, b); got != want {
		t.Errorf("ctx variant diverges:\n%s\nvs\n%s", got, want)
	}
}
