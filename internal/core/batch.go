// Coalesced multi-device diagnosis. The serving layer batches concurrent
// requests against one (circuit, test set) workload; diagnosing them
// together lets the expensive middle of the pipeline — candidate scoring
// by full fault simulation — run once over the union of every device's
// seeds instead of once per device. Syndromes depend only on (fault,
// circuit, patterns), never on a device's datalog, so a seed shared by
// several devices simulates once and each device folds the shared
// syndrome through its own evidence. Everything downstream of scoring
// (cover, refine, xcheck, ranking) reuses the single-device pipeline
// verbatim, which is what makes batch reports bit-identical to solo ones.
package core

import (
	"context"
	"fmt"
	"time"

	"multidiag/internal/explain"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
	"multidiag/internal/trace"
)

// DiagnoseBatch diagnoses several devices of one (circuit, test set)
// workload in a coalesced pass: one simulator, one CPT, and one
// fault-parallel scoring sweep over the union of every device's candidate
// seeds. Per-device results and errors are returned positionally
// (results[i]/errs[i] mirror logs[i]; exactly one of the pair is set).
// The returned error is reserved for whole-batch failures — simulator
// construction or cancellation — in which case the positional slices are
// partial.
//
// Each device's Result is bit-identical to what Diagnose would produce
// for the same datalog: scoring folds the shared syndromes in the
// device's own seed order, and cover/refine/xcheck/ranking run the
// single-device code path.
//
// Config.Explain is ignored here (flight-recorder events from several
// devices would interleave meaninglessly); callers wanting a narrative
// diagnose that device solo. Per-device Elapsed includes the device's
// share of the coalesced scoring pass.
func DiagnoseBatch(ctx context.Context, c *netlist.Circuit, pats []sim.Pattern, logs []*tester.Datalog, cfg Config) ([]*Result, []error, error) {
	cfg.fill()
	cfg.Explain = nil
	tr := cfg.Trace
	if tr == nil {
		tr = obs.Global()
	}
	root := tr.Span("diagnose_batch")
	defer root.End()
	// Request-scoped tree: the batcher parents this under the leader
	// request's execute span; inert when the context carries no tree.
	troot := trace.FromContext(ctx).Start("diagnose_batch")
	troot.SetInt("devices", int64(len(logs)))
	defer troot.End()
	reg := tr.Registry()
	var rec *explain.Recorder // always disabled in batch mode

	results := make([]*Result, len(logs))
	errs := make([]error, len(logs))

	sp := root.Child("goodsim")
	tsp := troot.Start("goodsim")
	_, pt := prof.PhaseCtx(ctx, "goodsim")
	fs := cfg.SharedSim
	if fs != nil && (fs.Circuit() != c || fs.NumPatterns() != len(pats)) {
		fs = nil // shape mismatch: fall back to a private simulator
	}
	var err error
	if fs == nil {
		fs, err = fsim.NewFaultSim(c, pats)
	}
	pt.End()
	tsp.End()
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	fs.Observe(reg)
	if cfg.ConeCache != nil && !fs.AttachCache(cfg.ConeCache) {
		reg.Counter("fsim.cone_cache_rejected").Inc()
	}
	cpt := fsim.NewCPT(c)
	cpt.Observe(reg)
	if err := checkpoint(ctx, "goodsim"); err != nil {
		return results, errs, err
	}

	// Per-device evidence and effect-cause extraction, unioning the seed
	// lists. unionIdx maps a fault to its slot in the shared scoring pass.
	type devState struct {
		start   time.Time
		evIndex map[EvidenceBit]int
		seeds   []fault.StuckAt
	}
	states := make([]*devState, len(logs))
	unionIdx := make(map[fault.StuckAt]int)
	var union []fault.StuckAt
	totalSeeds := 0
	for i, log := range logs {
		if err := checkpoint(ctx, "extract"); err != nil {
			return results, errs, err
		}
		st := &devState{start: time.Now()}
		if log.NumPatterns != len(pats) {
			errs[i] = fmt.Errorf("core: datalog has %d patterns, test set has %d", log.NumPatterns, len(pats))
			continue
		}
		if log.NumPOs != len(c.POs) {
			errs[i] = fmt.Errorf("core: datalog has %d POs, circuit has %d", log.NumPOs, len(c.POs))
			continue
		}
		res := &Result{Consistent: true}
		failing := log.FailingPatterns()
		if len(failing) == 0 {
			res.Elapsed = time.Since(st.start)
			results[i] = res // passing device: nothing to explain
			continue
		}
		st.evIndex = make(map[EvidenceBit]int)
		for _, p := range failing {
			for _, po := range log.Fails[p].Members() {
				bit := EvidenceBit{Pattern: p, PO: po}
				st.evIndex[bit] = len(res.Evidence)
				res.Evidence = append(res.Evidence, bit)
			}
		}
		reg.Counter("core.evidence_bits").Add(int64(len(res.Evidence)))
		reg.Counter("core.failing_patterns").Add(int64(len(failing)))

		sp := root.Child("extract")
		tsp := troot.Start("extract")
		ectx, pt := prof.PhaseCtx(ctx, "extract")
		seeds, err := extractCandidates(ectx, c, cpt, pats, log, cfg.ApproxCPT, fsim.Workers(cfg.Workers), rec)
		tsp.SetInt("device", int64(i))
		tsp.SetInt("seeds", int64(len(seeds)))
		pt.End()
		tsp.End()
		sp.End()
		if err != nil {
			errs[i] = err
			continue
		}
		st.seeds = seeds
		res.CandidatesExtracted = len(seeds)
		reg.Counter("core.candidates_extracted").Add(int64(len(seeds)))
		totalSeeds += len(seeds)
		for _, f := range seeds {
			if _, ok := unionIdx[f]; !ok {
				unionIdx[f] = len(union)
				union = append(union, f)
			}
		}
		results[i] = res
		states[i] = st
	}
	reg.Counter("core.batch_devices").Add(int64(len(logs)))
	reg.Counter("core.batch_union_seeds").Add(int64(len(union)))
	reg.Counter("core.batch_seed_reuse").Add(int64(totalSeeds - len(union)))

	// One coalesced scoring sweep over the union.
	sp = root.Child("score")
	tsp = troot.Start("score")
	pctx, spt := prof.PhaseCtx(ctx, "score")
	workers := fsim.Workers(cfg.Workers)
	tsp.SetInt("workers", int64(workers))
	tsp.SetInt("union_seeds", int64(len(union)))
	tsp.SetInt("seed_reuse", int64(totalSeeds-len(union)))
	reg.Gauge("fsim.workers").Set(int64(workers))
	psp := sp.Child("fsim.parallel")
	tpsp := tsp.Start("fsim.parallel")
	syns := fs.SimulateStuckAtBatchCtx(trace.WithSpan(pctx, tpsp), union, workers)
	tpsp.End()
	psp.End()
	if err := checkpoint(ctx, "score"); err != nil {
		spt.End()
		tsp.End()
		sp.End()
		return results, errs, err
	}
	spt.End()
	tsp.End()
	sp.End()

	// Per-device tail of the pipeline, each folding its own view of the
	// shared syndromes in its own seed order.
	for i := range logs {
		st := states[i]
		if st == nil || st.seeds == nil {
			continue // failed validation/extraction, or passing device
		}
		if err := checkpoint(ctx, "score"); err != nil {
			return results, errs, err
		}
		res := results[i]
		devSyns := make([]*fsim.Syndrome, len(st.seeds))
		for j, f := range st.seeds {
			devSyns[j] = syns[unionIdx[f]]
		}
		cands := scoreCandidates(c, devSyns, st.seeds, logs[i], st.evIndex, len(res.Evidence), cfg, rec)
		reg.Counter("core.candidates_scored").Add(int64(len(cands)))
		reg.Counter("core.candidates_pruned").Add(int64(len(st.seeds) - len(cands)))
		if err := finishDiagnosis(ctx, root, troot, c, fs, logs[i], st.evIndex, cands, res, cfg, reg, rec); err != nil {
			results[i] = nil
			errs[i] = err
			return results, errs, err
		}
		res.Elapsed = time.Since(st.start)
	}
	// The shared syndromes outlive every device fold but nothing else:
	// hand them back to the simulator's arena so the next batch on a
	// shared simulator reuses them instead of reallocating.
	for _, s := range syns {
		fs.ReleaseSyndrome(s)
	}
	return results, errs, nil
}
