package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"multidiag/internal/fsim"
)

// renderCandidates canonicalizes a scored-candidate list: class
// representative, scores, equivalence members, coverage members.
func renderCandidates(cands []*Candidate) string {
	var b strings.Builder
	for _, cd := range cands {
		fmt.Fprintf(&b, "%s tfsf=%d tpsf=%d eq=[", cd.Fault.String(), cd.TFSF, cd.TPSF)
		for _, e := range cd.Equivalent {
			fmt.Fprintf(&b, " %s", e.String())
		}
		fmt.Fprintf(&b, " ] cov=%v models=%d\n", cd.Covered.Members(), len(cd.Models))
	}
	return b.String()
}

// TestChunkedFoldMatchesPerSeedScoring pins the tentpole's correctness
// claim at the scoring layer: folding arena-backed syndromes chunk by
// chunk through the parallel engine produces byte-identical candidates —
// same equivalence classes, same merge order, same scores, same coverage —
// as the simple per-seed loop over individually simulated syndromes.
func TestChunkedFoldMatchesPerSeedScoring(t *testing.T) {
	c, pats, log := parallelFixture(t, 700, 3)
	cfg := Config{}
	cfg.fill()

	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	cpt := fsim.NewCPT(c)
	seeds, err := extractCandidates(context.Background(), c, cpt, pats, log, false, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("fixture produced no candidate seeds")
	}
	evIndex := make(map[EvidenceBit]int)
	var evidence []EvidenceBit
	for _, p := range log.FailingPatterns() {
		for _, po := range log.Fails[p].Members() {
			bit := EvidenceBit{Pattern: p, PO: po}
			evIndex[bit] = len(evidence)
			evidence = append(evidence, bit)
		}
	}

	// Reference: the per-seed loop. Simulated on a private simulator so
	// the retained syndromes never mix with the arena under test.
	ref, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	syns := make([]*fsim.Syndrome, len(seeds))
	for i, f := range seeds {
		syns[i] = ref.SimulateStuckAt(f)
	}
	want := renderCandidates(scoreCandidates(c, syns, seeds, log, evIndex, len(evidence), cfg, nil))

	for _, workers := range []int{1, 2, 4, 8} {
		folder := newScoreFolder(c, fs, seeds, log, evIndex, len(evidence), cfg, nil, true)
		fs.SimulateStuckAtChunksCtx(context.Background(), seeds, workers, func(start int, chunk []*fsim.Syndrome) {
			for i, syn := range chunk {
				folder.fold(start+i, syn)
			}
		})
		if got := renderCandidates(folder.finish()); got != want {
			t.Fatalf("workers=%d: chunked fold differs from per-seed scoring\n--- want\n%s--- got\n%s",
				workers, want, got)
		}
	}
}
