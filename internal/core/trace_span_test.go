package core

import (
	"context"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/fsim"
	"multidiag/internal/tester"
	"multidiag/internal/trace"
)

// TestDiagnoseCtxEmitsConnectedSpanTree pins the engine half of the
// tracing acceptance criterion: one traced diagnosis yields a single
// connected tree whose phases hang under "diagnose" and whose fsim worker
// spans hang under "score" → "fsim.parallel", with cone-cache probe
// attribution on the workers.
func TestDiagnoseCtxEmitsConnectedSpanTree(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	dev, err := defect.Inject(c, []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}})
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}

	tree := trace.NewTree(trace.TraceID{})
	ctx := trace.WithTree(context.Background(), tree)
	res, err := DiagnoseCtx(ctx, c, pats, log, Config{Workers: 2, ConeCache: fsim.NewConeCache(1 << 12)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Multiplet) == 0 {
		t.Fatal("fixture produced no multiplet")
	}

	rec := tree.Record()
	byName := map[string][]trace.SpanRecord{}
	byID := map[string]trace.SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = append(byName[s.Name], s)
		byID[s.SpanID] = s
	}
	root := rec.Root()
	if root == nil || root.Name != "diagnose" {
		t.Fatalf("root span %+v, want diagnose", root)
	}
	for _, phase := range []string{"evidence", "goodsim", "extract", "score", "cover", "refine", "xcheck"} {
		spans := byName[phase]
		if len(spans) != 1 {
			t.Fatalf("phase %q: %d spans, want 1", phase, len(spans))
		}
		if spans[0].ParentID != root.SpanID {
			t.Fatalf("phase %q detached from root", phase)
		}
		if spans[0].Unfinished {
			t.Fatalf("phase %q left unfinished", phase)
		}
	}
	par := byName["fsim.parallel"]
	if len(par) != 1 || par[0].ParentID != byName["score"][0].SpanID {
		t.Fatalf("fsim.parallel misparented: %+v", par)
	}
	workers := byName["fsim.worker"]
	if len(workers) == 0 {
		t.Fatal("no fsim.worker spans")
	}
	var faults, probes int64
	for _, w := range workers {
		if w.ParentID != par[0].SpanID {
			t.Fatalf("worker span detached from fsim.parallel: %+v", w)
		}
		faults += int64(w.Attrs["faults"].(int64))
		probes += w.Attrs["cache_hits"].(int64) + w.Attrs["cache_misses"].(int64)
	}
	if faults != int64(res.CandidatesExtracted) {
		t.Fatalf("worker spans account for %d faults, extraction yielded %d", faults, res.CandidatesExtracted)
	}
	if probes == 0 {
		t.Fatal("no cone-cache probes attributed to workers despite an attached cache")
	}
	// Every span must reach the root by parent links — one connected tree.
	for _, s := range rec.Spans {
		cur := s
		for hops := 0; cur.SpanID != root.SpanID; hops++ {
			if hops > len(rec.Spans) {
				t.Fatalf("span %q has a parent cycle", s.Name)
			}
			parent, ok := byID[cur.ParentID]
			if !ok {
				t.Fatalf("span %q disconnected (parent %q unknown)", s.Name, cur.ParentID)
			}
			cur = parent
		}
	}
}

// TestDiagnoseBatchEmitsSpanTree covers the coalesced path: batch phases
// and worker spans land under "diagnose_batch".
func TestDiagnoseBatchEmitsSpanTree(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	dev, err := defect.Inject(c, []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}})
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}

	tree := trace.NewTree(trace.TraceID{})
	ctx := trace.WithTree(context.Background(), tree)
	results, errs, err := DiagnoseBatch(ctx, c, pats, []*tester.Datalog{log, log}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	rec := tree.Record()
	if root := rec.Root(); root == nil || root.Name != "diagnose_batch" {
		t.Fatalf("root %+v", rec.Root())
	}
	names := map[string]int{}
	for _, s := range rec.Spans {
		names[s.Name]++
	}
	if names["extract"] != 2 || names["cover"] != 2 || names["score"] != 1 {
		t.Fatalf("batch span census wrong: %v", names)
	}
	if names["fsim.worker"] == 0 {
		t.Fatal("no worker spans in batch trace")
	}
}
