package core

import (
	"testing"

	"multidiag/internal/atpg"
	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/metrics"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// diagnoseInjected is the end-to-end helper: inject defects into c, apply
// the test set, diagnose from the datalog alone, and score the result
// (exact-site and region-radius-1 scores).
func diagnoseInjected(t *testing.T, c *netlist.Circuit, pats []sim.Pattern, ds []defect.Defect, cfg Config) (*Result, metrics.Score, metrics.Score) {
	t.Helper()
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(c, pats, log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cands []metrics.Candidate
	for _, nets := range res.MultipletNets() {
		cands = append(cands, metrics.Candidate{Nets: nets})
	}
	return res, metrics.Evaluate(ds, cands), metrics.EvaluateRegion(c, ds, cands, 1)
}

func exhaustivePatterns(npi int) []sim.Pattern {
	n := 1 << npi
	pats := make([]sim.Pattern, n)
	for m := 0; m < n; m++ {
		p := make(sim.Pattern, npi)
		for i := 0; i < npi; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats[m] = p
	}
	return pats
}

func atpgPatterns(t *testing.T, c *netlist.Circuit, seed int64) []sim.Pattern {
	t.Helper()
	res, err := atpg.Generate(c, atpg.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res.Patterns
}

func TestDiagnoseCleanDevice(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	dev := c.Clone()
	if err := dev.Finalize(); err != nil {
		t.Fatal(err)
	}
	dlog, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diagnose(c, pats, dlog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Multiplet) != 0 || len(res.Evidence) != 0 {
		t.Fatal("clean device produced candidates")
	}
	if !res.Consistent {
		t.Fatal("clean device must be consistent")
	}
}

func TestDiagnoseValidation(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	bad := &tester.Datalog{NumPatterns: 3, NumPOs: 2}
	if _, err := Diagnose(c, pats, bad, Config{}); err == nil {
		t.Error("pattern-count mismatch accepted")
	}
	bad2 := &tester.Datalog{NumPatterns: 32, NumPOs: 9}
	if _, err := Diagnose(c, pats, bad2, Config{}); err == nil {
		t.Error("PO-count mismatch accepted")
	}
}

// TestSingleStuckC17Exhaustive: every single stuck-at defect on c17 under
// exhaustive patterns must be localized.
func TestSingleStuckC17Exhaustive(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	for i := range c.Gates {
		if c.Gates[i].Type == netlist.Input {
			continue
		}
		for _, v1 := range []bool{false, true} {
			ds := []defect.Defect{{Kind: defect.StuckNet, Net: netlist.NetID(i), Value1: v1}}
			res, score, _ := diagnoseInjected(t, c, pats, ds, Config{})
			if len(res.Evidence) == 0 {
				continue // undetected (possible for redundant sites)
			}
			if !score.Success() {
				t.Errorf("stuck %s=%v not localized (multiplet %v)",
					c.Gates[i].Name, v1, describeMultiplet(c, res))
			}
			if res.UnexplainedBits != 0 {
				t.Errorf("stuck %s=%v left %d bits unexplained", c.Gates[i].Name, v1, res.UnexplainedBits)
			}
			if !res.Consistent {
				t.Errorf("stuck %s=%v multiplet inconsistent", c.Gates[i].Name, v1)
			}
		}
	}
}

func describeMultiplet(c *netlist.Circuit, res *Result) []string {
	var out []string
	for _, cd := range res.Multiplet {
		out = append(out, cd.Name(c))
	}
	return out
}

// TestSingleDefectPerfectExplanation: for a single stuck defect the top
// multiplet member's syndrome should explain all evidence with zero
// mispredictions.
func TestSingleDefectPerfectExplanation(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}}
	res, score, _ := diagnoseInjected(t, c, pats, ds, Config{})
	if !score.Success() {
		t.Fatal("G16 sa0 not found")
	}
	if len(res.Multiplet) != 1 {
		t.Fatalf("expected single-member multiplet, got %d", len(res.Multiplet))
	}
	m := res.Multiplet[0]
	if m.TPSF != 0 {
		t.Fatalf("perfect defect has %d mispredictions", m.TPSF)
	}
	if m.TFSF != len(res.Evidence) {
		t.Fatalf("covered %d of %d", m.TFSF, len(res.Evidence))
	}
}

// TestDoubleStuckC17: all pairs of stuck defects on distinct nets.
func TestDoubleStuckC17(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	nets := []string{"G10", "G11", "G16", "G19", "G22", "G23"}
	total, found := 0, 0
	for i := 0; i < len(nets); i++ {
		for j := i + 1; j < len(nets); j++ {
			for _, v1 := range []bool{false, true} {
				for _, v2 := range []bool{false, true} {
					ds := []defect.Defect{
						{Kind: defect.StuckNet, Net: c.NetByName(nets[i]), Value1: v1},
						{Kind: defect.StuckNet, Net: c.NetByName(nets[j]), Value1: v2},
					}
					res, _, region := diagnoseInjected(t, c, pats, ds, Config{})
					if len(res.Evidence) == 0 {
						continue
					}
					// c17 is tiny: a double defect is frequently logically
					// equivalent to a single fault one gate away (measured
					// and documented in DESIGN.md), so success is scored at
					// region radius 1, and even then a fully masked defect
					// is legitimately unfindable — require ≥1 hit always.
					total++
					if region.Success() {
						found++
					} else if region.Hits == 0 {
						t.Errorf("%s=%v + %s=%v: nothing found near either site (multiplet %v)",
							nets[i], v1, nets[j], v2, describeMultiplet(c, res))
					}
				}
			}
		}
	}
	if frac := float64(found) / float64(total); frac < 0.75 {
		t.Errorf("double-defect full-success rate %.2f (<0.75) on c17", frac)
	}
}

// TestBridgeDefectC17: a dominant bridge must be localized and the bridge
// model discovered with the true aggressor.
func TestBridgeDefectC17(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	v, a := c.NetByName("G10"), c.NetByName("G19")
	ds := []defect.Defect{{Kind: defect.BridgeDefect, Net: v, Aggressor: a, BridgeKind: fault.DominantBridge}}
	res, score, _ := diagnoseInjected(t, c, pats, ds, Config{})
	if len(res.Evidence) == 0 {
		t.Skip("bridge not activated by test set")
	}
	if !score.Success() {
		t.Fatalf("bridge not localized: %v", describeMultiplet(c, res))
	}
	// The victim-site candidate should carry a bridge model naming the true
	// aggressor among its alternatives.
	foundAggr := false
	for _, cd := range res.Multiplet {
		if cd.Fault.Net != v {
			continue
		}
		for _, m := range cd.Models {
			if m.Kind == BridgeModel && m.Aggressor == a {
				foundAggr = true
			}
		}
	}
	if !foundAggr {
		t.Log("true aggressor not in bridge models (acceptable if stuck fit was already perfect); multiplet:")
		for _, cd := range res.Multiplet {
			t.Logf("  %s models %v", cd.Name(c), cd.Models)
		}
	}
}

// TestMultiDefectAdder: 1..4 defects on the 8-bit ripple adder with ATPG
// patterns; accuracy must stay high (the paper's headline property).
func TestMultiDefectAdder(t *testing.T) {
	c, err := circuits.RippleAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	pats := atpgPatterns(t, c, 1)
	for n := 1; n <= 4; n++ {
		var agg metrics.Aggregate
		for seed := int64(0); seed < 8; seed++ {
			ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed*100 + int64(n), NumDefects: n})
			if err != nil {
				t.Fatal(err)
			}
			dev, err := defect.Inject(c, ds)
			if err != nil {
				continue // rare: composed bridge cycle; skip sample
			}
			log, err := tester.ApplyTest(c, dev, pats)
			if err != nil {
				t.Fatal(err)
			}
			if len(log.Fails) == 0 {
				continue
			}
			res, err := Diagnose(c, pats, log, Config{})
			if err != nil {
				t.Fatal(err)
			}
			var cands []metrics.Candidate
			for _, nets := range res.MultipletNets() {
				cands = append(cands, metrics.Candidate{Nets: nets})
			}
			agg.Add(metrics.EvaluateRegion(c, ds, cands, 1))
		}
		if agg.Runs == 0 {
			t.Fatalf("n=%d: no activated samples", n)
		}
		if acc := agg.MeanAccuracy(); acc < 0.6 {
			t.Errorf("n=%d: mean region accuracy %.2f < 0.6 over %d runs", n, acc, agg.Runs)
		}
	}
}

// TestUnexplainedEvidenceIsRare: on random circuits with 3 defects the
// multiplet must cover all evidence (cover loop only stops early when no
// candidate covers the residue).
func TestCoverageOfEvidence(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 21, NumPIs: 12, NumGates: 400, NumPOs: 10})
	if err != nil {
		t.Fatal(err)
	}
	pats := atpgPatterns(t, c, 2)
	covered, totalRuns := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 3})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := defect.Inject(c, ds)
		if err != nil {
			continue
		}
		log, err := tester.ApplyTest(c, dev, pats)
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Fails) == 0 {
			continue
		}
		res, err := Diagnose(c, pats, log, Config{})
		if err != nil {
			t.Fatal(err)
		}
		totalRuns++
		if res.UnexplainedBits == 0 {
			covered++
		}
	}
	if totalRuns == 0 {
		t.Skip("no activated runs")
	}
	if float64(covered)/float64(totalRuns) < 0.5 {
		t.Errorf("full evidence coverage in only %d/%d runs", covered, totalRuns)
	}
}

// TestPerPatternAblationWeaker: the SLAT-style per-pattern restriction must
// not outperform the per-output default on multi-defect devices (this is
// the paper's core claim, checked as an inequality over a small campaign).
func TestPerPatternAblationWeaker(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 33, NumPIs: 12, NumGates: 300, NumPOs: 8})
	if err != nil {
		t.Fatal(err)
	}
	pats := atpgPatterns(t, c, 3)
	var full, slat metrics.Aggregate
	for seed := int64(0); seed < 10; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: 1000 + seed, NumDefects: 3})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := defect.Inject(c, ds)
		if err != nil {
			continue
		}
		log, err := tester.ApplyTest(c, dev, pats)
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Fails) == 0 {
			continue
		}
		score := func(cfg Config) metrics.Score {
			res, err := Diagnose(c, pats, log, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var cands []metrics.Candidate
			for _, nets := range res.MultipletNets() {
				cands = append(cands, metrics.Candidate{Nets: nets})
			}
			return metrics.EvaluateRegion(c, ds, cands, 1)
		}
		full.Add(score(Config{}))
		slat.Add(score(Config{PerPatternCover: true}))
	}
	if full.Runs == 0 {
		t.Skip("no activated runs")
	}
	if full.MeanAccuracy() < slat.MeanAccuracy()-1e-9 {
		t.Errorf("per-output accuracy %.3f < per-pattern %.3f — core claim violated",
			full.MeanAccuracy(), slat.MeanAccuracy())
	}
}

// TestXConsistencyFlagsMissingDefect: when we hand the checker a multiplet
// that cannot explain the datalog, it must say so.
func TestXConsistencyDetectsIncompleteness(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	// Device: G10 stuck-at-1 (fails only PO G22's cone).
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G10"), Value1: true}}
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("not activated")
	}
	res, err := Diagnose(c, pats, log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("correct multiplet flagged inconsistent")
	}
	// Now corrupt the datalog: claim PO 1 (G23) also failed on the first
	// failing pattern even though G10 cannot reach it. The multiplet built
	// from G22 evidence cannot explain it → inconsistent or a second
	// candidate appears on G23's cone.
	p0 := log.FailingPatterns()[0]
	log.Fails[p0].Add(1)
	res2, err := Diagnose(c, pats, log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ok := !res2.Consistent || res2.UnexplainedBits > 0 || len(res2.Multiplet) > 1
	if !ok {
		t.Fatal("corrupted datalog fully 'explained' by single G10-cone candidate")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fill()
	if cfg.Lambda != 0.3 || cfg.MaxMultipletSize != 10 ||
		cfg.BridgeLevelWindow != 3 || cfg.MaxAggressorsPerVictim != 128 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestModelKindString(t *testing.T) {
	if StuckOrOpen.String() == "" || BridgeModel.String() == "" || ModelKind(9).String() == "" {
		t.Fatal("empty model kind names")
	}
}

func TestEvidenceSet(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}}
	dev, _ := defect.Inject(c, ds)
	log, _ := tester.ApplyTest(c, dev, pats)
	bits, all := EvidenceSet(log)
	if len(bits) != log.NumFailBits() {
		t.Fatalf("evidence bits %d, datalog bits %d", len(bits), log.NumFailBits())
	}
	if all.Count() != len(bits) {
		t.Fatal("universe set wrong size")
	}
}

// TestDiagnoseWithXPatterns: patterns containing X inputs are skipped for
// candidate extraction but the engine still diagnoses from the determinate
// evidence.
func TestDiagnoseWithXPatterns(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	// Replace a handful of patterns with X-laden variants.
	for _, i := range []int{3, 9, 27} {
		p := pats[i].Clone()
		p[2] = logic.X
		pats[i] = p
	}
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false}}
	res, score, _ := diagnoseInjected(t, c, pats, ds, Config{})
	if len(res.Evidence) == 0 {
		t.Skip("not activated")
	}
	if !score.Success() {
		t.Fatalf("X-laden test set broke diagnosis: %v", describeMultiplet(c, res))
	}
}

// TestMaxMultipletSizeRespected: the cover loop must stop at the bound.
func TestMaxMultipletSizeRespected(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 55, NumPIs: 12, NumGates: 300, NumPOs: 10})
	if err != nil {
		t.Fatal(err)
	}
	pats := atpgPatterns(t, c, 9)
	ds, err := defect.Sample(c, defect.CampaignConfig{Seed: 77, NumDefects: 5})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Skip("sample not injectable")
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("not activated")
	}
	res, err := Diagnose(c, pats, log, Config{MaxMultipletSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Multiplet) > 2 {
		t.Fatalf("multiplet size %d exceeds bound 2", len(res.Multiplet))
	}
}

// TestRankedOrderingInvariants: ranked list leads with the multiplet and is
// sorted by (TFSF desc, TPSF asc) afterwards.
func TestRankedOrderingInvariants(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	ds := []defect.Defect{
		{Kind: defect.StuckNet, Net: c.NetByName("G10"), Value1: true},
		{Kind: defect.StuckNet, Net: c.NetByName("G19"), Value1: true},
	}
	res, _, _ := diagnoseInjected(t, c, pats, ds, Config{})
	if len(res.Ranked) < len(res.Multiplet) {
		t.Fatal("ranked shorter than multiplet")
	}
	for i, cd := range res.Multiplet {
		if res.Ranked[i] != cd {
			t.Fatal("ranked does not lead with the multiplet")
		}
	}
	rest := res.Ranked[len(res.Multiplet):]
	for i := 1; i < len(rest); i++ {
		a, b := rest[i-1], rest[i]
		if a.TFSF < b.TFSF {
			t.Fatalf("rank %d: TFSF order violated (%d < %d)", i, a.TFSF, b.TFSF)
		}
		if a.TFSF == b.TFSF && a.TPSF > b.TPSF {
			t.Fatalf("rank %d: TPSF tiebreak violated", i)
		}
	}
}

// TestEquivalenceClassesShareSyndrome: every equivalent of a multiplet
// member must have the identical syndrome under the test set.
func TestEquivalenceClassesShareSyndrome(t *testing.T) {
	c, err := circuits.RippleAdder(6)
	if err != nil {
		t.Fatal(err)
	}
	pats := atpgPatterns(t, c, 14)
	ds := []defect.Defect{{Kind: defect.StuckNet, Net: c.NetByName("t1_3"), Value1: true}}
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("not activated")
	}
	res, err := Diagnose(c, pats, log, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	for _, cd := range res.Multiplet {
		ref := fs.SimulateStuckAt(cd.Fault)
		for _, e := range cd.Equivalent {
			if !fs.SimulateStuckAt(e).Equal(ref) {
				t.Fatalf("equivalent %s has a different syndrome than %s", e.Name(c), cd.Fault.Name(c))
			}
		}
	}
}
