package core

import (
	"fmt"
	"strings"
	"testing"

	"multidiag/internal/atpg"
	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/fsim"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// renderResult canonicalizes everything a diagnosis report contains —
// evidence universe, multiplet order, equivalence classes, fault models,
// coverage bitsets, ranking, consistency verdict — so two reports are
// bit-identical iff their renderings are equal. Elapsed is excluded (wall
// clock is the one legitimately nondeterministic field).
func renderResult(c *netlist.Circuit, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "extracted=%d unexplained=%d consistent=%v badpats=%v\n",
		res.CandidatesExtracted, res.UnexplainedBits, res.Consistent, res.InconsistentPatterns)
	for _, e := range res.Evidence {
		fmt.Fprintf(&b, "ev %d/%d\n", e.Pattern, e.PO)
	}
	dump := func(tag string, cds []*Candidate) {
		for i, cd := range cds {
			fmt.Fprintf(&b, "%s %d %s tfsf=%d tpsf=%d cov=%v", tag, i, cd.Name(c), cd.TFSF, cd.TPSF, cd.Covered.Members())
			for _, e := range cd.Equivalent {
				fmt.Fprintf(&b, " eq=%s", e.Name(c))
			}
			for _, m := range cd.Models {
				fmt.Fprintf(&b, " model=%s/%d/%d", m.Kind, m.Aggressor, m.Mispredictions)
			}
			b.WriteByte('\n')
		}
	}
	dump("mult", res.Multiplet)
	dump("rank", res.Ranked)
	return b.String()
}

// parallelFixture builds one activated multi-defect device on a generated
// circuit for the given sampling seed.
func parallelFixture(t *testing.T, seed int64, defects int) (*netlist.Circuit, []sim.Pattern, *tester.Datalog) {
	t.Helper()
	c, err := circuits.Generate(circuits.GenConfig{Seed: 31, NumPIs: 14, NumGates: 300, NumPOs: 10})
	if err != nil {
		t.Fatal(err)
	}
	tests, err := atpg.Generate(c, atpg.Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for ; ; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: defects})
		if err != nil {
			t.Fatal(err)
		}
		dev, err := defect.Inject(c, ds)
		if err != nil {
			continue
		}
		log, err := tester.ApplyTest(c, dev, tests.Patterns)
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Fails) > 0 {
			return c, tests.Patterns, log
		}
	}
}

// TestDiagnoseParallelDeterminism asserts the fault-parallel engine is
// bit-identical to the sequential one: for several devices, every worker
// count — with and without a shared cone cache, cold and warm — must
// reproduce the Workers=1 report exactly.
func TestDiagnoseParallelDeterminism(t *testing.T) {
	for _, devSeed := range []int64{100, 300, 500} {
		c, pats, log := parallelFixture(t, devSeed, 3)
		ref, err := Diagnose(c, pats, log, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := renderResult(c, ref)
		cc := fsim.NewConeCache(0)
		for _, workers := range []int{0, 2, 3, 8} {
			for _, cache := range []*fsim.ConeCache{nil, cc} {
				res, err := Diagnose(c, pats, log, Config{Workers: workers, ConeCache: cache})
				if err != nil {
					t.Fatal(err)
				}
				if got := renderResult(c, res); got != want {
					t.Fatalf("seed %d workers=%d cached=%v: report differs from sequential\n--- want\n%s--- got\n%s",
						devSeed, workers, cache != nil, want, got)
				}
			}
		}
	}
}

// TestDiagnoseSharedCacheAcrossDevices shares one cone cache across many
// devices of one workload — the campaign usage — and checks each report
// still matches an uncached diagnosis, while the cache actually hits.
func TestDiagnoseSharedCacheAcrossDevices(t *testing.T) {
	cc := fsim.NewConeCache(0)
	for _, devSeed := range []int64{900, 901, 902, 903} {
		c, pats, log := parallelFixture(t, devSeed, 2)
		ref, err := Diagnose(c, pats, log, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Diagnose(c, pats, log, Config{Workers: 4, ConeCache: cc})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderResult(c, res), renderResult(c, ref); got != want {
			t.Fatalf("seed %d: shared-cache report differs from uncached", devSeed)
		}
	}
	if cc.Len() == 0 {
		t.Fatal("shared cache stayed empty across a campaign")
	}
}
