package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"multidiag/internal/bitset"
	"multidiag/internal/explain"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// refineModels searches, for each multiplet member, dominant-bridge
// aggressors that fit the member's evidence better than the plain stuck-at
// hypothesis. A dominant bridge victim behaves as a *conditional* stuck-at:
// the victim takes the aggressor's value, so errors appear only on patterns
// where the aggressor carries the complement of the victim's fault-free
// value. When a member shows mispredictions (TPSF > 0), a bridge whose
// aggressor is benignly equal to the victim on those patterns explains the
// same observed failures with fewer contradictions — exactly the evidence
// that distinguishes a short from a hard stuck net.
//
// Accepted bridge models are appended to the member's Models list (best
// first by mispredictions); the seed stuck/open model always remains, since
// logic-level behaviour cannot always separate the mechanisms.
func refineModels(c *netlist.Circuit, fs *fsim.FaultSim, multiplet []*Candidate, log *tester.Datalog, evIndex map[EvidenceBit]int, cfg Config, reg *obs.Registry, rec *explain.Recorder) {
	if len(multiplet) == 0 {
		return
	}
	// Members are independent victims writing only their own Models list,
	// so they shard across goroutines (each with a private re-simulator).
	// The recorder path stays sequential: refine events must arrive in
	// multiplet order.
	workers := fsim.Workers(cfg.Workers)
	if workers > len(multiplet) {
		workers = len(multiplet)
	}
	if workers > 1 && !rec.Enabled() {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := sim.New(c)
				for {
					i := int(next.Add(1)) - 1
					if i >= len(multiplet) {
						return
					}
					refineMember(c, fs, s, multiplet[i], evIndex, cfg, reg, nil)
				}
			}()
		}
		wg.Wait()
		return
	}
	s := sim.New(c)
	for _, cd := range multiplet {
		refineMember(c, fs, s, cd, evIndex, cfg, reg, rec)
	}
}

// refineMember runs the aggressor search for one multiplet member.
func refineMember(c *netlist.Circuit, fs *fsim.FaultSim, s *sim.Simulator, cd *Candidate, evIndex map[EvidenceBit]int, cfg Config, reg *obs.Registry, rec *explain.Recorder) {
	tested := reg.Counter("core.bridge_aggressors_tested")
	accepted := reg.Counter("core.bridge_models_accepted")
	force := make(map[netlist.NetID]logic.PV64, 1)
	victim := cd.Fault.Net
	aggressors := bridgeAggressors(c, victim, cfg)
	if len(aggressors) == 0 {
		if rec.Enabled() {
			rec.Refine(cd.Fault.String(), cd.Name(c), stuckModelFit(cd), explain.VerdictScored)
		}
		return
	}
	tested.Add(int64(len(aggressors)))
	type fit struct {
		aggr    netlist.NetID
		covered int
		tpsf    int
	}
	var fits []fit
	for _, a := range aggressors {
		cov, tpsf := bridgeFit(c, fs, s, victim, a, evIndex, force)
		if cov == 0 {
			continue
		}
		// The bridge must reproduce at least the evidence the stuck-at
		// hypothesis covers (otherwise it is a worse explanation) and
		// strictly reduce mispredictions to be worth reporting.
		if cov >= cd.TFSF && tpsf < cd.TPSF {
			fits = append(fits, fit{aggr: a, covered: cov, tpsf: tpsf})
		}
	}
	sort.Slice(fits, func(i, j int) bool {
		if fits[i].tpsf != fits[j].tpsf {
			return fits[i].tpsf < fits[j].tpsf
		}
		if fits[i].covered != fits[j].covered {
			return fits[i].covered > fits[j].covered
		}
		return fits[i].aggr < fits[j].aggr
	})
	const maxBridgeModels = 3
	for i, f := range fits {
		if i >= maxBridgeModels {
			break
		}
		cd.Models = append(cd.Models, Model{Kind: BridgeModel, Aggressor: f.aggr, Mispredictions: f.tpsf})
		accepted.Inc()
	}
	// Keep the best-fitting model first.
	sort.SliceStable(cd.Models, func(i, j int) bool {
		return cd.Models[i].Mispredictions < cd.Models[j].Mispredictions
	})
	if rec.Enabled() {
		// Report the refined model list in ranked order, carrying the
		// bridgeFit coverage statistic for each accepted aggressor.
		covByAggr := make(map[netlist.NetID]int, len(fits))
		for _, f := range fits {
			covByAggr[f.aggr] = f.covered
		}
		mf := make([]explain.ModelFit, 0, len(cd.Models))
		for _, m := range cd.Models {
			switch m.Kind {
			case BridgeModel:
				mf = append(mf, explain.ModelFit{Kind: m.Kind.String(),
					Aggressor: c.NameOf(m.Aggressor), Covered: covByAggr[m.Aggressor], Mispred: m.Mispredictions})
			default:
				mf = append(mf, explain.ModelFit{Kind: m.Kind.String(),
					Covered: cd.TFSF, Mispred: m.Mispredictions})
			}
		}
		rec.Refine(cd.Fault.String(), cd.Name(c), mf, explain.VerdictScored)
	}
}

// stuckModelFit renders a candidate's models as explain fit records when
// no bridge search ran (the seed stuck/open model only).
func stuckModelFit(cd *Candidate) []explain.ModelFit {
	mf := make([]explain.ModelFit, 0, len(cd.Models))
	for _, m := range cd.Models {
		mf = append(mf, explain.ModelFit{Kind: m.Kind.String(), Covered: cd.TFSF, Mispred: m.Mispredictions})
	}
	return mf
}

// bridgeAggressors enumerates plausible aggressor nets for a victim:
// structurally independent nets within the configured level window,
// deterministically ordered, capped by config.
func bridgeAggressors(c *netlist.Circuit, victim netlist.NetID, cfg Config) []netlist.NetID {
	vLevel := c.Gates[victim].Level
	inCone := c.FaninCone(victim)
	outCone := c.FanoutCone(victim)
	var out []netlist.NetID
	for i := range c.Gates {
		n := netlist.NetID(i)
		if n == victim || inCone[n] || outCone[n] {
			continue
		}
		dl := c.Gates[n].Level - vLevel
		if dl < -cfg.BridgeLevelWindow || dl > cfg.BridgeLevelWindow {
			continue
		}
		out = append(out, n)
		if len(out) >= cfg.MaxAggressorsPerVictim {
			break
		}
	}
	return out
}

// bridgeFit simulates a dominant bridge (victim ← aggressor) over the test
// set and returns (covered evidence bits, mispredicted bits). The forced
// victim value per packed word is the aggressor's fault-free word, which is
// exactly the dominant-bridge semantics. The packed PI vectors come from
// the fault simulator's construction-time packing (no re-pack per
// hypothesis); force is caller scratch reused across aggressors.
func bridgeFit(c *netlist.Circuit, fs *fsim.FaultSim, s *sim.Simulator, victim, aggressor netlist.NetID, evIndex map[EvidenceBit]int, force map[netlist.NetID]logic.PV64) (covered, tpsf int) {
	pats := fs.Patterns()
	for base := 0; base < len(pats); base += logic.W {
		// Aggressor fault-free word comes from the cached good simulation.
		force[victim] = fs.GoodWord(aggressor, base/logic.W)
		if err := s.RunWithOverrides(fs.PIWord(base/logic.W), force); err != nil {
			return 0, 0
		}
		for i, po := range c.POs {
			goodWord := fs.GoodWord(po, base/logic.W)
			diff := s.Value(po).DiffKnown(goodWord)
			if diff == 0 {
				continue
			}
			for slot := uint(0); slot < logic.W; slot++ {
				p := base + int(slot)
				if p >= len(pats) {
					break
				}
				if diff>>slot&1 == 1 {
					if _, ok := evIndex[EvidenceBit{Pattern: p, PO: i}]; ok {
						covered++
					} else {
						tpsf++
					}
				}
			}
		}
	}
	return covered, tpsf
}

// EvidenceSet converts a datalog into the evidence bitset layout used by a
// Result (exported for the experiment harness and tests).
func EvidenceSet(log *tester.Datalog) ([]EvidenceBit, bitset.Set) {
	var bits []EvidenceBit
	for _, p := range log.FailingPatterns() {
		for _, po := range log.Fails[p].Members() {
			bits = append(bits, EvidenceBit{Pattern: p, PO: po})
		}
	}
	all := bitset.New(len(bits))
	for i := range bits {
		all.Add(i)
	}
	return bits, all
}
