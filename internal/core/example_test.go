package core_test

import (
	"fmt"
	"log"

	"multidiag/internal/atpg"
	"multidiag/internal/circuits"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/tester"
)

// ExampleDiagnose shows the minimal end-to-end flow: the diagnosis sees
// only the design, the test patterns and the tester datalog.
func ExampleDiagnose() {
	c := circuits.C17()
	tests, err := atpg.Generate(c, atpg.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// A defective device: net G16 shorted to ground.
	device, err := defect.Inject(c, []defect.Defect{
		{Kind: defect.StuckNet, Net: c.NetByName("G16"), Value1: false},
	})
	if err != nil {
		log.Fatal(err)
	}
	datalog, err := tester.ApplyTest(c, device, tests.Patterns)
	if err != nil {
		log.Fatal(err)
	}

	result, err := core.Diagnose(c, tests.Patterns, datalog, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for _, cand := range result.Multiplet {
		fmt.Println(cand.Name(c))
	}
	// Output: G16 sa0
}
