package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"multidiag/internal/defect"
	"multidiag/internal/obs"
)

// TestConcurrentClientsRace hammers the server with mixed traffic from
// many goroutines; run under -race it shakes out data races across the
// admission path, the batcher, and the shared cone cache.
func TestConcurrentClientsRace(t *testing.T) {
	s, hs, spec := newTestServer(t, func(cfg *Config) {
		cfg.MaxInflight = 8
		cfg.QueueDepth = 4
	})
	_, textA := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	_, textB := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G10", true)})

	const clients = 16
	const perClient = 10
	var wg sync.WaitGroup
	var ok, shed, other atomicCounter
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				text := textA
				url := hs.URL + "/v1/diagnose"
				switch (i + j) % 4 {
				case 1:
					text = textB
				case 2:
					url += "?explain=1"
				case 3:
					// Batch of two devices.
					resp, _ := postJSON(t, hs.URL+"/v1/diagnose/batch", BatchRequest{
						Workload: "c17",
						Devices:  []DeviceRequest{{Datalog: textA}, {Datalog: textB}},
					})
					classify(resp.StatusCode, &ok, &shed, &other)
					continue
				}
				resp, _ := postJSON(t, url, DiagnoseRequest{Workload: "c17", Datalog: text})
				classify(resp.StatusCode, &ok, &shed, &other)
			}
		}(i)
	}
	wg.Wait()
	if other.n != 0 {
		t.Errorf("unexpected statuses under load: %d (ok=%d shed=%d)", other.n, ok.n, shed.n)
	}
	if ok.n == 0 {
		t.Error("no request succeeded under load")
	}
	if got := s.reg.Counter("serve.panics").Value(); got != 0 {
		t.Errorf("serve.panics = %d", got)
	}
}

type atomicCounter struct {
	mu sync.Mutex
	n  int
}

func (c *atomicCounter) inc() { c.mu.Lock(); c.n++; c.mu.Unlock() }

func classify(status int, ok, shed, other *atomicCounter) {
	switch status {
	case http.StatusOK:
		ok.inc()
	case http.StatusTooManyRequests:
		shed.inc()
	default:
		other.inc()
	}
}

// BenchmarkServeDiagnose measures one served diagnosis end to end at the
// handler level — request decode, admission, batcher hand-off, scoring
// pass, report encode — with no network in the way. Comparable against
// BenchmarkDiagnose* in internal/core to read the serving overhead.
// Runs with the default tracing config (span trees on every request,
// 10% tail-sampled), so the baseline carries the tracing tax.
func BenchmarkServeDiagnose(b *testing.B) { benchServeDiagnose(b, 0) }

// BenchmarkServeDiagnoseNoTrace is the same request with request tracing
// disabled — the allocation-free path. The gap to BenchmarkServeDiagnose
// is the whole-request tracing overhead (span trees per request plus the
// capture decision); benchdiff gates both against the baseline, so the
// disabled path is pinned independently of the traced one.
func BenchmarkServeDiagnoseNoTrace(b *testing.B) { benchServeDiagnose(b, -1) }

func benchServeDiagnose(b *testing.B, traceSample float64) {
	spec := testWorkload(b)
	s, err := New(Config{Trace: obs.New("serve-bench"), TraceSample: traceSample}, []WorkloadSpec{spec})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	_, text := deviceDatalog(b, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	body, err := json.Marshal(DiagnoseRequest{Workload: "c17", Datalog: text})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/diagnose", bytes.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.Code, rr.Body.String())
		}
	}
}
