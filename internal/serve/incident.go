package serve

import (
	"encoding/json"
	"strings"
	"time"

	"multidiag/internal/explain"
	"multidiag/internal/fsim"
	"multidiag/internal/incident"
	"multidiag/internal/prof"
	"multidiag/internal/tester"
)

// pendingIncident defers a batch member's capture until the request's
// shared span tree has been finished and offered, so the bundle's trace
// record is complete instead of a mid-flight snapshot.
type pendingIncident struct {
	trigger string
	status  int
	req     *request
	rep     *Report
	events  []explain.Event
}

// successTrigger classifies a 200 response: quality outliers first — an
// X-inconsistent or incompletely explained diagnosis is interesting no
// matter how fast it ran — then the slow-anomaly threshold, measured over
// the request's full residence (queue wait + service), the latency the
// caller actually saw.
func (s *Server) successTrigger(rep *Report, req *request) string {
	if !rep.Consistent || rep.UnexplainedBits > 0 {
		return incident.TriggerQuality
	}
	if thr := s.slowNS(); thr > 0 && time.Since(req.enqueued).Nanoseconds() >= thr {
		return incident.TriggerSlow
	}
	return ""
}

// captureIncident assembles and spools one debug bundle for an anomalous
// request: the raw payload re-serialized as a tester datalog, the engine
// configuration the diagnosis ran (or would have run) under, the served
// report when one exists, the request's span tree, the prof pinned ring
// plus a live summary, and the flight-recorder events when the request
// carried the recorder. No-op while the observatory is disarmed; a
// failed capture is counted by the recorder, never surfaced to the
// serving path.
func (s *Server) captureIncident(trigger string, status int, w *workload, req *request, rep *Report, events []explain.Event) {
	if s.incidents == nil {
		return
	}
	var datalog strings.Builder
	if err := tester.WriteDatalog(&datalog, req.log); err != nil {
		return
	}
	b := &incident.Bundle{
		Trigger:   trigger,
		Status:    status,
		Workload:  w.name,
		RequestID: req.reqID,
		TraceID:   exemplarID(req),
		Datalog:   datalog.String(),
		Top:       req.top,
		Engine: incident.EngineConfig{
			WorkersConfigured: s.cfg.Workers,
			WorkersEffective:  fsim.Workers(s.cfg.Workers),
			// The contract that makes replay provable: candidate extraction
			// sorts by (net, polarity) and every parallel fold is seed-ordered,
			// so the report is bit-identical at any worker count.
			SeedOrder:          "deterministic (net, polarity)",
			ConeCache:          w.shared.Cache != nil,
			ConeCacheHits:      s.reg.Counter("fsim.cone_cache_hits").Value(),
			ConeCacheMisses:    s.reg.Counter("fsim.cone_cache_misses").Value(),
			ConeCacheEvictions: s.reg.Counter("fsim.cone_cache_evictions").Value(),
		},
		Explain: events,
	}
	if rep != nil {
		if raw, err := json.Marshal(rep); err == nil {
			b.Report = raw
		}
	}
	if req.tree != nil {
		b.Trace = req.tree.Record()
	}
	if c := prof.Active(); c != nil {
		b.Prof = c.Pinned()
		if sum, ok := c.Summary("incident:" + trigger); ok {
			b.Prof = append(b.Prof, sum)
		}
	}
	s.incidents.Capture(b)
}
