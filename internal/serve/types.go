// Package serve is the long-running diagnosis service: circuits and test
// sets load once at startup into a workload registry (with a warm shared
// cone cache per workload), and tester responses arrive as HTTP/JSON
// requests. The service spine is a bounded admission queue per workload
// feeding an adaptive micro-batcher that coalesces concurrent requests
// for the same workload into one fault-parallel scoring pass
// (core.DiagnoseBatch), which is where serving beats per-process CLI
// throughput: the simulator, CPT and cone cache warmth amortize across
// requests instead of being rebuilt per invocation.
//
// Reports are bit-identical to mddiag for the same (circuit, patterns,
// response) — batching never changes a diagnosis, only when it runs —
// and the golden test pins that.
package serve

import (
	"fmt"
	"sort"
	"strings"

	"multidiag/internal/bitset"
	"multidiag/internal/core"
	"multidiag/internal/netlist"
	"multidiag/internal/tester"
	"multidiag/internal/volume"
)

// DiagnoseRequest is the POST /v1/diagnose body: one device's observed
// failing behaviour against a registered workload. Exactly one of
// Datalog (the tester text serialization) or Response (structured JSON)
// carries the behaviour.
type DiagnoseRequest struct {
	Workload string `json:"workload"`
	// Datalog is a tester-format datalog (the same text mddiag -d reads).
	Datalog string `json:"datalog,omitempty"`
	// Response is the structured alternative to Datalog.
	Response *DeviceResponse `json:"response,omitempty"`
	// Top bounds the ranked-candidate tail of the report (default 10).
	Top *int `json:"top,omitempty"`
	// TimeoutMS overrides the server's per-request deadline when lower.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Explain attaches the flight-recorder narrative to the report. An
	// explained request runs solo (never coalesced): the recorder
	// instruments one diagnosis.
	Explain bool `json:"explain,omitempty"`
}

// DeviceResponse lists the failing (pattern, outputs) observations.
type DeviceResponse struct {
	Fails []PatternFails `json:"fails"`
}

// PatternFails is one failing pattern and its failing primary outputs
// (indices into the circuit's PO list).
type PatternFails struct {
	Pattern int   `json:"pattern"`
	POs     []int `json:"pos"`
}

// BatchRequest is the POST /v1/diagnose/batch body: several devices of
// one workload. Devices are admitted individually, so one oversized batch
// can be partially shed; per-device outcomes are positional.
type BatchRequest struct {
	Workload  string          `json:"workload"`
	Devices   []DeviceRequest `json:"devices"`
	Top       *int            `json:"top,omitempty"`
	TimeoutMS int             `json:"timeout_ms,omitempty"`
}

// DeviceRequest is one device inside a BatchRequest.
type DeviceRequest struct {
	Datalog  string          `json:"datalog,omitempty"`
	Response *DeviceResponse `json:"response,omitempty"`
}

// BatchReply is the batch response: one entry per requested device.
type BatchReply struct {
	Results []DeviceResult `json:"results"`
}

// DeviceResult is one device's outcome: an HTTP-style status plus either
// the report or the error text.
type DeviceResult struct {
	Status int     `json:"status"`
	Report *Report `json:"report,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// Report is the wire form of a diagnosis result: the deterministic
// report core (volume.Report — a pure function of (circuit, patterns,
// response), embedded so its fields lead the JSON unchanged) plus the
// serving tail. The golden tests zero the timing fields (ElapsedMS,
// QueueWaitMS, BatchSize) and require the rest to match a direct
// core.Diagnose; the volume pipeline's fingerprint cache stores only the
// embedded core, which is why a cache hit is byte-identical to a fresh
// diagnosis.
type Report struct {
	volume.Report
	ElapsedMS   float64 `json:"elapsed_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	BatchSize   int     `json:"batch_size"`
	// RequestID echoes the response's X-Request-ID; TraceID names the
	// request's span tree (empty with tracing off). Both are join keys,
	// not diagnosis content — golden tests zero them with the timings.
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	Explain   string `json:"explain,omitempty"`
}

// CandidateReport and ModelReport are the shared wire forms (moved to
// internal/volume with the deterministic report core; aliased so serve
// callers keep compiling).
type CandidateReport = volume.CandidateReport

// ModelReport is one fault-model assignment in wire form.
type ModelReport = volume.ModelReport

// BuildReport converts a core result into its wire form. It is exported
// so the golden tests can build the expected report from a direct
// core.Diagnose and require byte equality with the served one.
func BuildReport(workload string, c *netlist.Circuit, log *tester.Datalog, res *core.Result, top int) *Report {
	return &Report{
		Report:    *volume.BuildReport(workload, c, log, res, top),
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
	}
}

// buildDatalog materializes a request's device behaviour as a tester
// datalog shaped for the workload, validating bounds so a malformed
// request fails the admission check (400) instead of the engine.
func buildDatalog(c *netlist.Circuit, numPatterns int, text string, resp *DeviceResponse) (*tester.Datalog, error) {
	switch {
	case text != "" && resp != nil:
		return nil, fmt.Errorf("request carries both datalog text and structured response")
	case text != "":
		log, err := tester.ReadDatalog(strings.NewReader(text))
		if err != nil {
			return nil, fmt.Errorf("datalog: %w", err)
		}
		if log.NumPatterns != numPatterns {
			return nil, fmt.Errorf("datalog has %d patterns, workload has %d", log.NumPatterns, numPatterns)
		}
		if log.NumPOs != len(c.POs) {
			return nil, fmt.Errorf("datalog has %d POs, workload has %d", log.NumPOs, len(c.POs))
		}
		return log, nil
	case resp != nil:
		log := &tester.Datalog{
			CircuitName: c.Name,
			NumPatterns: numPatterns,
			NumPOs:      len(c.POs),
			Fails:       make(map[int]bitset.Set),
		}
		for _, pf := range resp.Fails {
			if pf.Pattern < 0 || pf.Pattern >= numPatterns {
				return nil, fmt.Errorf("failing pattern %d out of range [0,%d)", pf.Pattern, numPatterns)
			}
			set, ok := log.Fails[pf.Pattern]
			if !ok {
				set = bitset.New(len(c.POs))
				log.Fails[pf.Pattern] = set
			}
			for _, po := range pf.POs {
				if po < 0 || po >= len(c.POs) {
					return nil, fmt.Errorf("pattern %d: failing PO %d out of range [0,%d)", pf.Pattern, po, len(c.POs))
				}
				set.Add(po)
			}
		}
		for p, set := range log.Fails {
			if set.Empty() {
				delete(log.Fails, p)
			}
		}
		return log, nil
	default:
		return nil, fmt.Errorf("request carries neither datalog text nor structured response")
	}
}

// WorkloadInfo is one GET /v1/workloads entry.
type WorkloadInfo struct {
	Name     string `json:"name"`
	Gates    int    `json:"gates"`
	PIs      int    `json:"pis"`
	POs      int    `json:"pos"`
	Patterns int    `json:"patterns"`
	// QueueDepth is the current number of queued requests.
	QueueDepth int `json:"queue_depth"`
}

func sortedNames(m map[string]*workload) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
