package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"multidiag/internal/circuits"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// testWorkload is the c17 fixture every serve test registers: small
// enough for sub-millisecond diagnoses, rich enough for multi-defect
// multiplets.
func testWorkload(t testing.TB) WorkloadSpec {
	t.Helper()
	c := circuits.C17()
	npi := len(c.PIs)
	pats := make([]sim.Pattern, 1<<npi)
	for m := range pats {
		p := make(sim.Pattern, npi)
		for i := 0; i < npi; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats[m] = p
	}
	return WorkloadSpec{Name: "c17", Circuit: c, Patterns: pats}
}

// deviceDatalog injects the defects and returns the observed datalog plus
// its tester text serialization.
func deviceDatalog(t testing.TB, spec WorkloadSpec, ds []defect.Defect) (*tester.Datalog, string) {
	t.Helper()
	dev, err := defect.Inject(spec.Circuit, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(spec.Circuit, dev, spec.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tester.WriteDatalog(&b, log); err != nil {
		t.Fatal(err)
	}
	return log, b.String()
}

func stuck(c *netlist.Circuit, net string, v1 bool) defect.Defect {
	return defect.Defect{Kind: defect.StuckNet, Net: c.NetByName(net), Value1: v1}
}

// newTestServer builds a Server on a fresh trace/registry plus an
// httptest frontend. mutate tweaks the config before New.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server, WorkloadSpec) {
	t.Helper()
	spec := testWorkload(t)
	cfg := Config{Trace: obs.New("serve-test")}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg, []WorkloadSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, hs, spec
}

// postJSON posts body and returns the response with its bytes. Failures
// use t.Error (not Fatal): several tests post from client goroutines,
// where Fatal is illegal; callers then observe status 0.
func postJSON(t testing.TB, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Error(err)
		return &http.Response{Header: http.Header{}}, nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Error(err)
		return &http.Response{Header: http.Header{}}, nil
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Error(err)
	}
	return resp, out.Bytes()
}

// zeroTiming clears the fields that legitimately differ between a served
// and a direct diagnosis: timings plus the per-request join keys
// (request ID, trace ID).
func zeroTiming(r *Report) {
	r.ElapsedMS = 0
	r.QueueWaitMS = 0
	r.BatchSize = 0
	r.RequestID = ""
	r.TraceID = ""
}

// TestGoldenReportMatchesCLI is the acceptance pin: the served report
// must be bit-identical (timing aside) to what the CLI path — a direct
// core.Diagnose over the same circuit, patterns and response — produces,
// through both the datalog-text and the structured request forms.
func TestGoldenReportMatchesCLI(t *testing.T) {
	_, hs, spec := newTestServer(t, nil)
	log, text := deviceDatalog(t, spec,
		[]defect.Defect{stuck(spec.Circuit, "G16", false), stuck(spec.Circuit, "G10", true)})

	res, err := core.Diagnose(spec.Circuit, spec.Patterns, log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := BuildReport("c17", spec.Circuit, log, res, 10)
	zeroTiming(want)
	if len(want.Multiplet) == 0 {
		t.Fatal("fixture produced an empty multiplet; golden test would be vacuous")
	}

	// Structured request body mirroring the datalog.
	var fails []PatternFails
	for _, p := range log.FailingPatterns() {
		fails = append(fails, PatternFails{Pattern: p, POs: log.Fails[p].Members()})
	}

	for name, req := range map[string]DiagnoseRequest{
		"datalog-text": {Workload: "c17", Datalog: text},
		"structured":   {Workload: "c17", Response: &DeviceResponse{Fails: fails}},
	} {
		resp, body := postJSON(t, hs.URL+"/v1/diagnose", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
		var got Report
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.BatchSize < 1 {
			t.Errorf("%s: served report missing batch size", name)
		}
		zeroTiming(&got)
		if !reflect.DeepEqual(&got, want) {
			t.Errorf("%s: served report diverges from direct diagnosis\ngot:  %+v\nwant: %+v", name, got, want)
		}
	}
}

// TestExplainInline: ?explain=1 attaches a non-empty flight-recorder
// narrative without perturbing the rest of the report.
func TestExplainInline(t *testing.T) {
	_, hs, spec := newTestServer(t, nil)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	resp, body := postJSON(t, hs.URL+"/v1/diagnose?explain=1", DiagnoseRequest{Workload: "c17", Datalog: text})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Explain == "" {
		t.Error("explain=1 returned no narrative")
	}
	if rep.BatchSize != 1 {
		t.Errorf("explained request ran in a batch of %d, want solo", rep.BatchSize)
	}
	if !strings.Contains(rep.Explain, "G16") {
		t.Errorf("narrative does not mention the defect site:\n%s", rep.Explain)
	}
}

// TestRequestValidation: malformed requests are rejected at admission
// with 4xx, never reaching the engine.
func TestRequestValidation(t *testing.T) {
	_, hs, spec := newTestServer(t, nil)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	for name, tc := range map[string]struct {
		req  DiagnoseRequest
		want int
	}{
		"unknown-workload": {DiagnoseRequest{Workload: "nope", Datalog: text}, http.StatusNotFound},
		"no-behaviour":     {DiagnoseRequest{Workload: "c17"}, http.StatusBadRequest},
		"both-forms":       {DiagnoseRequest{Workload: "c17", Datalog: text, Response: &DeviceResponse{}}, http.StatusBadRequest},
		"bad-pattern": {DiagnoseRequest{Workload: "c17",
			Response: &DeviceResponse{Fails: []PatternFails{{Pattern: 99, POs: []int{0}}}}}, http.StatusBadRequest},
		"bad-po": {DiagnoseRequest{Workload: "c17",
			Response: &DeviceResponse{Fails: []PatternFails{{Pattern: 0, POs: []int{7}}}}}, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, hs.URL+"/v1/diagnose", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, resp.StatusCode, tc.want, body)
		}
	}
}

// TestQueueFullSheds: with the executor stalled and the queue full, the
// next request is shed with 429 + Retry-After and the serve.shed counter
// moves — while the server keeps answering health checks.
func TestQueueFullSheds(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, hs, spec := newTestServer(t, func(cfg *Config) {
		cfg.QueueDepth = 1
		cfg.MaxBatch = 1
		cfg.MaxInflight = 100
	})
	s.testHookExecute = func(int) { entered <- struct{}{}; <-release }
	defer close(release)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	req := DiagnoseRequest{Workload: "c17", Datalog: text}

	// First request: picked up by the batcher, stalled in the hook.
	go postJSON(t, hs.URL+"/v1/diagnose", req)
	<-entered
	// Second request: sits in the depth-1 queue.
	go postJSON(t, hs.URL+"/v1/diagnose", req)
	waitFor(t, func() bool { return s.workloads["c17"].queued.Load() == 1 })

	// Third request: queue full → shed.
	resp, body := postJSON(t, hs.URL+"/v1/diagnose", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.reg.Counter("serve.shed").Value(); got < 1 {
		t.Errorf("serve.shed = %d, want ≥ 1", got)
	}
	if hr, err := http.Get(hs.URL + "/healthz"); err != nil || hr.StatusCode != http.StatusOK {
		t.Errorf("healthz during overload: %v %v", hr, err)
	} else {
		hr.Body.Close()
	}
}

// TestDeadlineExceeded: a request whose deadline passes while it waits
// behind a stalled executor gets 504 and counts as a timeout.
func TestDeadlineExceeded(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, hs, spec := newTestServer(t, func(cfg *Config) { cfg.MaxBatch = 1 })
	s.testHookExecute = func(int) { entered <- struct{}{}; <-release }
	defer close(release)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})

	go postJSON(t, hs.URL+"/v1/diagnose", DiagnoseRequest{Workload: "c17", Datalog: text})
	<-entered
	resp, body := postJSON(t, hs.URL+"/v1/diagnose",
		DiagnoseRequest{Workload: "c17", Datalog: text, TimeoutMS: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if got := s.reg.Counter("serve.timeouts").Value(); got < 1 {
		t.Errorf("serve.timeouts = %d, want ≥ 1", got)
	}
}

// TestBatchCoalescing: N requests queued behind a stalled pass coalesce
// into ONE scoring pass, and every coalesced report matches the solo
// diagnosis bit for bit.
func TestBatchCoalescing(t *testing.T) {
	const n = 4
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, hs, spec := newTestServer(t, nil)
	s.testHookExecute = func(int) { entered <- struct{}{}; <-release }
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	req := DiagnoseRequest{Workload: "c17", Datalog: text}

	// Stall the batcher on a sacrificial request, then queue n more.
	go postJSON(t, hs.URL+"/v1/diagnose", req)
	<-entered
	type result struct {
		status int
		rep    Report
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, body := postJSON(t, hs.URL+"/v1/diagnose", req)
			var r result
			r.status = resp.StatusCode
			json.Unmarshal(body, &r.rep)
			results <- r
		}()
	}
	waitFor(t, func() bool { return s.workloads["c17"].queued.Load() == n })
	close(release)

	log, _ := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	res, err := core.Diagnose(spec.Circuit, spec.Patterns, log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := BuildReport("c17", spec.Circuit, log, res, 10)
	zeroTiming(want)
	for i := 0; i < n; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		if r.rep.BatchSize != n {
			t.Errorf("request %d: batch size %d, want %d (coalescing failed)", i, r.rep.BatchSize, n)
		}
		zeroTiming(&r.rep)
		if !reflect.DeepEqual(&r.rep, want) {
			t.Errorf("request %d: coalesced report diverges from solo diagnosis", i)
		}
	}
	// 2 passes total: the sacrificial solo + one coalesced batch of n.
	if got := s.reg.Counter("serve.batches").Value(); got != 2 {
		t.Errorf("serve.batches = %d, want 2 (1 solo + 1 coalesced)", got)
	}
}

// TestBatchEndpoint: /v1/diagnose/batch answers per device, matching solo
// reports, including a passing device and a malformed one.
func TestBatchEndpoint(t *testing.T) {
	_, hs, spec := newTestServer(t, nil)
	_, textA := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	logB, textB := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G10", true)})
	resp, body := postJSON(t, hs.URL+"/v1/diagnose/batch", BatchRequest{
		Workload: "c17",
		Devices: []DeviceRequest{
			{Datalog: textA},
			{Datalog: textB},
			{Response: &DeviceResponse{}}, // passing device: no fails
			{},                            // malformed: no behaviour at all
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var reply BatchReply
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(reply.Results))
	}
	for i := 0; i < 3; i++ {
		if reply.Results[i].Status != http.StatusOK {
			t.Errorf("device %d: status %d (%s)", i, reply.Results[i].Status, reply.Results[i].Error)
		}
	}
	if reply.Results[3].Status != http.StatusBadRequest {
		t.Errorf("malformed device: status %d, want 400", reply.Results[3].Status)
	}
	res, err := core.Diagnose(spec.Circuit, spec.Patterns, logB, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := BuildReport("c17", spec.Circuit, logB, res, 10)
	zeroTiming(want)
	got := reply.Results[1].Report
	zeroTiming(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batch device report diverges from solo diagnosis\ngot:  %+v\nwant: %+v", got, want)
	}
	if reply.Results[2].Report.EvidenceBits != 0 || len(reply.Results[2].Report.Multiplet) != 0 {
		t.Errorf("passing device got a non-empty diagnosis: %+v", reply.Results[2].Report)
	}
}

// TestGracefulDrain: draining answers queued work, flips readyz, refuses
// new requests with 503, and Drain returns once the batchers exit.
func TestGracefulDrain(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, hs, spec := newTestServer(t, nil)
	s.testHookExecute = func(int) { entered <- struct{}{}; <-release }
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	req := DiagnoseRequest{Workload: "c17", Datalog: text}

	inflight := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postJSON(t, hs.URL+"/v1/diagnose", req)
			inflight <- resp.StatusCode
		}()
	}
	<-entered // first request executing, second queued or about to be
	waitFor(t, func() bool { return s.inflight.Load() == 2 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, func() bool { return s.draining.Load() })

	if rr, err := http.Get(hs.URL + "/readyz"); err != nil || rr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: got %v %v, want 503", rr, err)
	} else {
		rr.Body.Close()
	}
	if resp, _ := postJSON(t, hs.URL+"/v1/diagnose", req); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new request while draining: status %d, want 503", resp.StatusCode)
	}

	close(release) // let the stalled pass and the queued request finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < 2; i++ {
		if status := <-inflight; status != http.StatusOK {
			t.Errorf("in-flight request %d finished with %d, want 200", i, status)
		}
	}
}

// TestWorkloadsAndMetrics: the registry endpoint lists the workload and
// /metrics exposes the serve metric family after traffic.
func TestWorkloadsAndMetrics(t *testing.T) {
	_, hs, spec := newTestServer(t, nil)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	if resp, _ := postJSON(t, hs.URL+"/v1/diagnose", DiagnoseRequest{Workload: "c17", Datalog: text}); resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose: status %d", resp.StatusCode)
	}
	resp, err := http.Get(hs.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var infos []WorkloadInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "c17" || infos[0].Patterns != len(spec.Patterns) {
		t.Errorf("workloads = %+v", infos)
	}
	mr, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		"multidiag_serve_requests 1",
		"multidiag_serve_batches",
		"multidiag_serve_batch_size_count",
		"multidiag_serve_service_us_count",
		"multidiag_core_candidates_scored",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServiceRecord: the shutdown snapshot carries the run's admission
// and latency numbers and round-trips through the qrec service file.
func TestServiceRecord(t *testing.T) {
	s, hs, spec := newTestServer(t, nil)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	for i := 0; i < 3; i++ {
		if resp, _ := postJSON(t, hs.URL+"/v1/diagnose", DiagnoseRequest{Workload: "c17", Datalog: text}); resp.StatusCode != http.StatusOK {
			t.Fatalf("diagnose %d failed", i)
		}
	}
	rec := s.ServiceRecord("test")
	if rec.Requests != 3 || rec.Batches == 0 || rec.MeanBatch == 0 || rec.ServiceP95MS == 0 {
		t.Errorf("record = %+v", rec)
	}
	if rec.Panics != 0 || rec.Shed != 0 {
		t.Errorf("clean run recorded failures: %+v", rec)
	}
}

// waitFor polls cond for up to 5s; registers a fatal on timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
