package serve

import (
	"multidiag/internal/qrec"
)

// ServiceRecord snapshots the server's serving-path behaviour as a qrec
// service record: admission outcomes, coalescing ratio, and latency
// quantiles. mdserve writes one on shutdown (-service-record-out) so
// mdtrend compare-serve can gate serving regressions the way compare
// gates campaign quality.
func (s *Server) ServiceRecord(label string) qrec.ServiceRecord {
	requests := s.reg.Counter("serve.requests").Value()
	shed := s.reg.Counter("serve.shed").Value()
	batches := s.reg.Counter("serve.batches").Value()
	executed := s.reg.Histogram("serve.batch_size").Sum()
	rec := qrec.ServiceRecord{
		Label:     label,
		Workloads: append([]string(nil), s.names...),
		Requests:  requests,
		Shed:      shed,
		Timeouts:  s.reg.Counter("serve.timeouts").Value() + s.reg.Counter("serve.expired").Value(),
		Panics:    s.reg.Counter("serve.panics").Value(),
		Batches:   batches,
	}
	if requests+shed > 0 {
		rec.ShedRate = float64(shed) / float64(requests+shed)
	}
	if batches > 0 {
		rec.MeanBatch = float64(executed) / float64(batches)
	}
	q := s.reg.Histogram("serve.queue_wait_us")
	rec.QueueP95MS = float64(q.Quantile(0.95)) / 1000
	h := s.reg.Histogram("serve.service_us")
	rec.ServiceP50MS = float64(h.Quantile(0.50)) / 1000
	rec.ServiceP95MS = float64(h.Quantile(0.95)) / 1000
	rec.ServiceP99MS = float64(h.Quantile(0.99)) / 1000
	rec.ServiceMaxMS = float64(h.Max()) / 1000
	s.flaggedMu.Lock()
	rec.FlaggedRequests = append([]string(nil), s.flaggedIDs...)
	s.flaggedMu.Unlock()
	return rec
}
