package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"multidiag/internal/core"
	"multidiag/internal/explain"
	"multidiag/internal/prof"
	"multidiag/internal/tester"
	"multidiag/internal/trace"
)

// request is one admitted diagnosis riding the workload queue.
type request struct {
	ctx      context.Context
	log      *tester.Datalog
	top      int
	explain  bool
	bytes    int64
	enqueued time.Time
	// done receives exactly one response; buffered so the executor never
	// blocks on a handler that already timed out and left.
	done chan response

	// Tracing state (zero values when tracing is off — every use is a
	// no-op). tree is the request's span tree; span the span engine work
	// hangs under (the root for solo requests, a per-device span for
	// batch members); queueSpan covers admission-to-dequeue.
	reqID     string
	tree      *trace.Tree
	span      trace.Span
	queueSpan trace.Span
}

type response struct {
	report *Report
	status int
	err    error
	// events are the request's flight-recorder events when it ran with
	// the recorder attached (explained solo requests) — the handler folds
	// them into an incident bundle if the request turns out anomalous.
	events []explain.Event
}

// batcher is the per-workload service loop: adaptive micro-batching in
// the group-commit style. It blocks for the first request, then drains
// whatever else is already queued; only if that found company does it
// linger (up to MaxWait) for stragglers. An isolated request therefore
// pays zero added latency, while a burst coalesces into one
// core.DiagnoseBatch scoring pass. Explained requests run solo — the
// flight recorder narrates exactly one diagnosis — and are set aside
// during batch assembly.
func (s *Server) batcher(w *workload) {
	defer s.batchers.Done()
	for {
		first, ok := <-w.queue
		if !ok {
			return
		}
		w.queued.Add(-1)
		batch := []*request{}
		var solo []*request
		add := func(r *request) {
			if r.explain {
				solo = append(solo, r)
			} else {
				batch = append(batch, r)
			}
		}
		add(first)

		// Greedy drain: everything already queued, up to MaxBatch.
		closed := false
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-w.queue:
				if !ok {
					closed = true
					break drain
				}
				w.queued.Add(-1)
				add(r)
			default:
				break drain
			}
		}
		// Linger only under load: the greedy drain found company, so more
		// arrivals are likely worth one batch.
		if !closed && len(batch) > 1 {
			timer := time.NewTimer(s.cfg.MaxWait)
		linger:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case r, ok := <-w.queue:
					if !ok {
						break linger
					}
					w.queued.Add(-1)
					add(r)
				case <-timer.C:
					break linger
				}
			}
			timer.Stop()
		}

		if len(batch) > 0 {
			s.execute(w, batch)
		}
		for _, r := range solo {
			s.execute(w, []*request{r})
		}
	}
}

// execute runs one scoring pass over the batch, panic-isolated: a panic
// in the engine answers this batch's requests with 500 and leaves the
// batcher alive for the next one.
func (s *Server) execute(w *workload, batch []*request) {
	defer func() {
		if p := recover(); p != nil {
			s.reg.Counter("serve.panics").Inc()
			prof.PinWith("panic", batch[0].reqID, exemplarID(batch[0]))
			err := fmt.Errorf("diagnosis panicked: %v\n%s", p, debug.Stack())
			for _, r := range batch {
				r.tree.Flag("panic")
				s.noteFlagged("panic", r.reqID)
				r.done <- response{status: http.StatusInternalServerError, err: err}
			}
		}
	}()

	// Requests whose deadline already passed are answered without
	// spending engine time on them.
	live := batch[:0]
	for _, r := range batch {
		r.queueSpan.End()
		if r.ctx.Err() != nil {
			s.reg.Counter("serve.expired").Inc()
			r.tree.Flag("timeout")
			s.noteFlagged("timeout", r.reqID)
			r.done <- response{status: http.StatusGatewayTimeout, err: fmt.Errorf("deadline exceeded before execution: %v", r.ctx.Err())}
			continue
		}
		s.reg.Histogram("serve.queue_wait_us").ObserveEx(time.Since(r.enqueued).Microseconds(), exemplarID(r))
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	if s.testHookExecute != nil {
		s.testHookExecute(len(live))
	}
	s.reg.Counter("serve.batches").Inc()
	s.reg.Histogram("serve.batch_size").Observe(int64(len(live)))

	cfg := core.Config{
		Workers:   s.cfg.Workers,
		ConeCache: w.shared.Cache,
		SharedSim: w.sim,
		Trace:     s.tr,
	}
	start := time.Now()
	if len(live) == 1 {
		s.executeOne(w, live[0], cfg)
	} else {
		s.executeBatch(w, live, cfg)
	}
	// The batch's service time is exemplified by the leader's trace — the
	// tree the coalesced engine spans landed in.
	s.reg.Histogram("serve.service_us").ObserveNEx(time.Since(start).Microseconds(), int64(len(live)), exemplarID(live[0]))
}

// exemplarID renders a request's trace ID for histogram exemplars, empty
// when tracing is off (which degrades ObserveEx to a plain Observe).
func exemplarID(r *request) string {
	if r.tree == nil {
		return ""
	}
	return r.tree.TraceID().String()
}

// executeOne serves a solo request, optionally with the flight recorder
// attached for an inline narrative.
func (s *Server) executeOne(w *workload, r *request, cfg core.Config) {
	var rec *explain.Recorder
	if r.explain {
		rec = explain.New("serve/" + w.name)
		cfg.Explain = rec
	}
	esp := r.span.Start("serve.execute")
	pctx, unlabel := prof.WithWorkload(r.ctx, w.name)
	res, err := core.DiagnoseCtx(trace.WithSpan(pctx, esp), w.c, w.pats, r.log, cfg)
	unlabel()
	esp.End()
	var events []explain.Event
	if rec != nil {
		events, _ = rec.Events()
	}
	if err != nil {
		r.done <- response{status: engineStatus(err), err: err, events: events}
		return
	}
	rep := s.buildResponse(w, r, res, 1)
	if rec != nil {
		var b strings.Builder
		if err := explain.RenderNarrative(&b, events, 10); err == nil {
			rep.Explain = b.String()
		}
	}
	r.done <- response{report: rep, status: http.StatusOK, events: events}
}

// executeBatch coalesces the batch into one core.DiagnoseBatch pass under
// a context that stays live while any member still wants its answer.
func (s *Server) executeBatch(w *workload, batch []*request, cfg core.Config) {
	logs := make([]*tester.Datalog, len(batch))
	for i, r := range batch {
		logs[i] = r.log
	}
	ctx, cancel := mergedContext(batch)
	defer cancel()
	// Coalesced engine spans land in ONE tree — the leader's (batch[0]) —
	// under its "serve.execute" span; a multi-tree tee would double-count
	// every phase. Followers get a "serve.execute.coalesced" span carrying
	// the leader's trace ID, so their trees point at where the engine time
	// is attributed.
	leader := batch[0]
	esp := leader.span.Start("serve.execute")
	esp.SetInt("batch_size", int64(len(batch)))
	for _, r := range batch[1:] {
		fsp := r.span.Start("serve.execute.coalesced")
		fsp.SetInt("batch_size", int64(len(batch)))
		if leader.tree != nil {
			fsp.SetStr("leader_trace", leader.tree.TraceID().String())
		}
		defer fsp.End()
	}
	pctx, unlabel := prof.WithWorkload(ctx, w.name)
	results, errs, err := core.DiagnoseBatch(trace.WithSpan(pctx, esp), w.c, w.pats, logs, cfg)
	unlabel()
	esp.End()
	for i, r := range batch {
		switch {
		case err != nil && results[i] == nil && errs[i] == nil:
			// Whole-batch failure (cancellation) before this member's turn.
			r.done <- response{status: engineStatus(err), err: err}
		case errs[i] != nil:
			r.done <- response{status: engineStatus(errs[i]), err: errs[i]}
		case results[i] != nil:
			r.done <- response{report: s.buildResponse(w, r, results[i], len(batch)), status: http.StatusOK}
		default:
			r.done <- response{status: http.StatusInternalServerError, err: fmt.Errorf("no result for batch member %d", i)}
		}
	}
}

func (s *Server) buildResponse(w *workload, r *request, res *core.Result, batchSize int) *Report {
	rep := BuildReport(w.name, w.c, r.log, res, r.top)
	rep.QueueWaitMS = float64(time.Since(r.enqueued).Microseconds())/1000 - rep.ElapsedMS
	if rep.QueueWaitMS < 0 {
		rep.QueueWaitMS = 0
	}
	rep.BatchSize = batchSize
	rep.RequestID = r.reqID
	if r.tree != nil {
		rep.TraceID = r.tree.TraceID().String()
	}
	return rep
}

// engineStatus maps engine errors to HTTP statuses: cancellation is the
// caller's deadline (504), anything else is a bad device description
// that slipped past validation (422).
func engineStatus(err error) int {
	if err == nil {
		return http.StatusOK
	}
	if isCanceled(err) {
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

func isCanceled(err error) bool {
	return errors.Is(err, core.ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// mergedContext derives a context canceled once every member context is
// done (or when the returned cancel runs): a straggler canceling its
// request must not kill the scoring pass the rest of the batch is
// waiting on, but a fully abandoned batch should stop simulating.
func mergedContext(batch []*request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	var remaining atomic.Int64
	remaining.Store(int64(len(batch)))
	stops := make([]func() bool, 0, len(batch))
	for _, r := range batch {
		stops = append(stops, context.AfterFunc(r.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		}))
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}
