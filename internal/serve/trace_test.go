package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"multidiag/internal/defect"
	"multidiag/internal/trace"
)

// postTraced posts body with extra headers and returns the response plus
// its bytes.
func postTraced(t testing.TB, url string, body interface{}, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Error(err)
		return &http.Response{Header: http.Header{}}, nil
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Error(err)
		return &http.Response{Header: http.Header{}}, nil
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Error(err)
		return &http.Response{Header: http.Header{}}, nil
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Error(err)
	}
	return resp, out.Bytes()
}

// debugTraces fetches and decodes /debug/trace.
func debugTraces(t testing.TB, baseURL string) []*trace.TreeRecord {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("/debug/trace Content-Type = %q", ct)
	}
	recs, err := trace.ReadTrees(resp.Body)
	if err != nil {
		t.Fatalf("/debug/trace: %v", err)
	}
	return recs
}

// findTrace returns the captured record with the given trace ID, or nil.
func findTrace(recs []*trace.TreeRecord, traceID string) *trace.TreeRecord {
	for _, r := range recs {
		if r.TraceID == traceID {
			return r
		}
	}
	return nil
}

// TestTracedRequestProducesConnectedTree is the tentpole acceptance pin:
// one /v1/diagnose request with an incoming traceparent yields ONE
// connected span tree — HTTP root → queue → execute → engine phases →
// fsim workers — retrievable from /debug/trace under the caller's trace
// ID, with the response traceparent naming this server's root span.
func TestTracedRequestProducesConnectedTree(t *testing.T) {
	_, hs, spec := newTestServer(t, func(cfg *Config) { cfg.TraceSample = 1 })
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})

	const clientTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const clientSpan = "00f067aa0ba902b7"
	resp, body := postTraced(t, hs.URL+"/v1/diagnose",
		DiagnoseRequest{Workload: "c17", Datalog: text},
		map[string]string{"traceparent": "00-" + clientTrace + "-" + clientSpan + "-01"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// The response traceparent continues the caller's trace with this
	// server's root span.
	tp := resp.Header.Get("traceparent")
	tid, sid, ok := trace.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	if tid.String() != clientTrace {
		t.Errorf("response trace ID %s, want the caller's %s", tid, clientTrace)
	}
	if sid.String() == clientSpan {
		t.Error("response span ID echoes the caller's span instead of naming the server's root")
	}

	var rep Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != clientTrace {
		t.Errorf("report trace_id = %q, want %q", rep.TraceID, clientTrace)
	}
	if rep.RequestID == "" || rep.RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("report request_id %q does not match X-Request-ID %q", rep.RequestID, resp.Header.Get("X-Request-ID"))
	}

	rec := findTrace(debugTraces(t, hs.URL), clientTrace)
	if rec == nil {
		t.Fatal("captured traces do not include the request's tree")
	}

	// Exactly one root, parented to the caller's span.
	byID := make(map[string]*trace.SpanRecord, len(rec.Spans))
	for i := range rec.Spans {
		byID[rec.Spans[i].SpanID] = &rec.Spans[i]
	}
	var roots []*trace.SpanRecord
	for i := range rec.Spans {
		if byID[rec.Spans[i].ParentID] == nil {
			roots = append(roots, &rec.Spans[i])
		}
	}
	if len(roots) != 1 {
		t.Fatalf("tree has %d roots, want 1 connected tree", len(roots))
	}
	root := roots[0]
	if root.Name != "serve.request" {
		t.Errorf("root span %q, want serve.request", root.Name)
	}
	if root.ParentID != clientSpan {
		t.Errorf("root parent %q, want the caller's span %s", root.ParentID, clientSpan)
	}

	// Every layer of the request's path appears, finished.
	names := make(map[string]int)
	for i := range rec.Spans {
		sp := &rec.Spans[i]
		names[sp.Name]++
		if sp.Unfinished {
			t.Errorf("span %s captured unfinished after the response", sp.Name)
		}
	}
	for _, want := range []string{
		"serve.request", "serve.queue", "serve.execute",
		"diagnose", "goodsim", "extract", "score", "fsim.parallel",
		"fsim.worker", "cover", "refine", "xcheck",
	} {
		if names[want] == 0 {
			t.Errorf("tree is missing a %q span (have %v)", want, names)
		}
	}
}

// TestShedAlwaysCaptured: with a vanishingly small sample rate, a shed
// request's trace is still retained (tail-based capture), its 429
// response carries an X-Request-ID, and the service record samples the
// shed's join key.
func TestShedAlwaysCaptured(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, hs, spec := newTestServer(t, func(cfg *Config) {
		cfg.QueueDepth = 1
		cfg.MaxBatch = 1
		cfg.MaxInflight = 100
		cfg.TraceSample = 1e-9 // routine traces effectively never sampled
	})
	s.testHookExecute = func(int) { entered <- struct{}{}; <-release }
	defer close(release)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	req := DiagnoseRequest{Workload: "c17", Datalog: text}

	go postJSON(t, hs.URL+"/v1/diagnose", req)
	<-entered
	go postJSON(t, hs.URL+"/v1/diagnose", req)
	waitFor(t, func() bool { return s.workloads["c17"].queued.Load() == 1 })

	resp, body := postTraced(t, hs.URL+"/v1/diagnose", req, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Error("shed response carries no X-Request-ID")
	}
	tid, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("shed response traceparent %q does not parse", resp.Header.Get("traceparent"))
	}

	rec := findTrace(debugTraces(t, hs.URL), tid.String())
	if rec == nil {
		t.Fatal("shed trace was not captured")
	}
	if !rec.HasFlag("shed") {
		t.Errorf("shed trace flags = %v, want shed", rec.Flags)
	}
	if got := rec.Attrs["request_id"]; got != reqID {
		t.Errorf("captured request_id = %v, want %q", got, reqID)
	}

	found := false
	for _, f := range s.ServiceRecord("test").FlaggedRequests {
		if f == "shed:"+reqID {
			found = true
		}
	}
	if !found {
		t.Errorf("service record flagged_requests missing shed:%s", reqID)
	}
}

// TestTimeoutAlwaysCaptured: a 504 trace is retained regardless of the
// sample rate and flagged "timeout".
func TestTimeoutAlwaysCaptured(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, hs, spec := newTestServer(t, func(cfg *Config) {
		cfg.MaxBatch = 1
		cfg.TraceSample = 1e-9
	})
	s.testHookExecute = func(int) { entered <- struct{}{}; <-release }
	defer close(release)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})

	go postJSON(t, hs.URL+"/v1/diagnose", DiagnoseRequest{Workload: "c17", Datalog: text})
	<-entered
	resp, body := postTraced(t, hs.URL+"/v1/diagnose",
		DiagnoseRequest{Workload: "c17", Datalog: text, TimeoutMS: 30}, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("504 response carries no X-Request-ID")
	}
	tid, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("504 response traceparent %q does not parse", resp.Header.Get("traceparent"))
	}

	rec := findTrace(debugTraces(t, hs.URL), tid.String())
	if rec == nil {
		t.Fatal("timed-out trace was not captured")
	}
	if !rec.HasFlag("timeout") {
		t.Errorf("timed-out trace flags = %v, want timeout", rec.Flags)
	}
}

// TestRequestIDEchoed: a client-supplied X-Request-ID is echoed on every
// response — success, validation failure, even routes that miss — and
// lands in the report.
func TestRequestIDEchoed(t *testing.T) {
	_, hs, spec := newTestServer(t, nil)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})

	const id = "client-req-42"
	resp, body := postTraced(t, hs.URL+"/v1/diagnose",
		DiagnoseRequest{Workload: "c17", Datalog: text},
		map[string]string{"X-Request-ID": id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != id {
		t.Errorf("X-Request-ID = %q, want the client's %q", got, id)
	}
	var rep Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.RequestID != id {
		t.Errorf("report request_id = %q, want %q", rep.RequestID, id)
	}

	resp, _ = postTraced(t, hs.URL+"/v1/diagnose",
		DiagnoseRequest{Workload: "nope"}, map[string]string{"X-Request-ID": id})
	if got := resp.Header.Get("X-Request-ID"); got != id {
		t.Errorf("404 X-Request-ID = %q, want %q", got, id)
	}

	// No client ID → the server generates one (16 hex chars).
	resp, _ = postTraced(t, hs.URL+"/v1/diagnose",
		DiagnoseRequest{Workload: "c17", Datalog: text}, nil)
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", got)
	}
}

// TestTracingDisabled: a negative sample rate turns request tracing off —
// no traceparent on responses, no trace_id in reports, an empty
// /debug/trace — while X-Request-ID still flows.
func TestTracingDisabled(t *testing.T) {
	_, hs, spec := newTestServer(t, func(cfg *Config) { cfg.TraceSample = -1 })
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})

	resp, body := postTraced(t, hs.URL+"/v1/diagnose",
		DiagnoseRequest{Workload: "c17", Datalog: text}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if tp := resp.Header.Get("traceparent"); tp != "" {
		t.Errorf("tracing disabled but response carries traceparent %q", tp)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("X-Request-ID missing with tracing disabled")
	}
	var rep Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != "" {
		t.Errorf("report trace_id = %q with tracing disabled", rep.TraceID)
	}
	if recs := debugTraces(t, hs.URL); len(recs) != 0 {
		t.Errorf("/debug/trace returned %d records with tracing disabled", len(recs))
	}
}

// TestBatchEndpointTraced: one batch HTTP request produces ONE tree with
// a serve.device span per device under the shared root.
func TestBatchEndpointTraced(t *testing.T) {
	_, hs, spec := newTestServer(t, func(cfg *Config) { cfg.TraceSample = 1 })
	_, textA := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	_, textB := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G10", true)})

	resp, body := postTraced(t, hs.URL+"/v1/diagnose/batch", BatchRequest{
		Workload: "c17",
		Devices:  []DeviceRequest{{Datalog: textA}, {Datalog: textB}},
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	tid, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("batch response traceparent %q does not parse", resp.Header.Get("traceparent"))
	}
	var reply BatchReply
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatal(err)
	}
	for i, r := range reply.Results {
		if r.Status != http.StatusOK {
			t.Fatalf("device %d: status %d (%s)", i, r.Status, r.Error)
		}
		if r.Report.TraceID != tid.String() {
			t.Errorf("device %d trace_id = %q, want the batch's %s", i, r.Report.TraceID, tid)
		}
	}

	rec := findTrace(debugTraces(t, hs.URL), tid.String())
	if rec == nil {
		t.Fatal("batch trace was not captured")
	}
	devices := 0
	for i := range rec.Spans {
		if rec.Spans[i].Name == "serve.device" {
			devices++
		}
	}
	if devices != 2 {
		t.Errorf("tree has %d serve.device spans, want 2", devices)
	}
}

// TestQueueWaitUnitsAgree pins the µs↔ms conversion between the
// serve.queue_wait_us histogram (observed in microseconds at dequeue) and
// Report.QueueWaitMS (milliseconds): a request made to wait ~80ms behind
// a stalled pass must show up at the same magnitude in both, so a unit
// slip on either side (1000× off) fails loudly.
func TestQueueWaitUnitsAgree(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, hs, spec := newTestServer(t, func(cfg *Config) { cfg.MaxBatch = 1 })
	stalled := false
	var mu sync.Mutex
	s.testHookExecute = func(int) {
		mu.Lock()
		first := !stalled
		stalled = true
		mu.Unlock()
		if first {
			entered <- struct{}{}
			<-release
		}
	}
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	req := DiagnoseRequest{Workload: "c17", Datalog: text}

	// First request stalls in the hook; the second waits in queue behind it.
	go postJSON(t, hs.URL+"/v1/diagnose", req)
	<-entered
	done := make(chan Report, 1)
	go func() {
		_, body := postJSON(t, hs.URL+"/v1/diagnose", req)
		var rep Report
		json.Unmarshal(body, &rep)
		done <- rep
	}()
	waitFor(t, func() bool { return s.workloads["c17"].queued.Load() == 1 })
	waitMS := 80
	time.Sleep(time.Duration(waitMS) * time.Millisecond)
	close(release)
	rep := <-done

	if rep.QueueWaitMS < float64(waitMS)/2 {
		t.Fatalf("QueueWaitMS = %.1f, want ≥ %dms (the stall)", rep.QueueWaitMS, waitMS/2)
	}
	maxUS := s.reg.Histogram("serve.queue_wait_us").Max()
	if maxUS < int64(waitMS)*1000/2 {
		t.Fatalf("queue_wait_us max = %dµs, want ≥ %dµs — microsecond units broken", maxUS, waitMS*1000/2)
	}
	gotMS := float64(maxUS) / 1000
	if gotMS < rep.QueueWaitMS/3 || gotMS > rep.QueueWaitMS*3 {
		t.Errorf("queue_wait_us max = %.1fms vs QueueWaitMS = %.1fms — units disagree", gotMS, rep.QueueWaitMS)
	}
}

// TestConcurrentTracedRequests is the -race stress for span emission
// under the batcher: many concurrent traced requests, coalesced and solo,
// while /debug/trace snapshots mid-flight.
func TestConcurrentTracedRequests(t *testing.T) {
	_, hs, spec := newTestServer(t, func(cfg *Config) {
		cfg.TraceSample = 1
		cfg.TraceCapacity = 256
	})
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G16", false)})
	req := DiagnoseRequest{Workload: "c17", Datalog: text}

	const clients = 8
	const perClient = 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, body := postJSON(t, hs.URL+"/v1/diagnose", req)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d: %s", resp.StatusCode, body)
				}
			}
		}()
	}
	// Snapshot the capture while requests are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			debugTraces(t, hs.URL)
		}
	}()
	wg.Wait()

	recs := debugTraces(t, hs.URL)
	if len(recs) < clients*perClient {
		t.Errorf("captured %d traces, want ≥ %d at sample rate 1", len(recs), clients*perClient)
	}
	for _, rec := range recs {
		if rec.Root() == nil {
			t.Errorf("trace %s has no root span", rec.TraceID)
		}
	}
}

var _ = fmt.Sprintf
