package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"multidiag/internal/defect"
	"multidiag/internal/volume"
)

// ingestStream renders a JSONL stream of n records cycling through the
// given datalogs (structured-fails form), so record i carries syndrome
// logs[i%len(logs)].
func ingestStream(t *testing.T, spec WorkloadSpec, defectSets [][]defect.Defect, n int) []byte {
	t.Helper()
	var logs []*volume.Record
	for _, ds := range defectSets {
		log, _ := deviceDatalog(t, spec, ds)
		var fails []volume.PatternFails
		for _, p := range log.FailingPatterns() {
			fails = append(fails, volume.PatternFails{Pattern: p, POs: log.Fails[p].Members()})
		}
		logs = append(logs, &volume.Record{Fails: fails})
	}
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		rec := *logs[i%len(logs)]
		rec.DeviceID = fmt.Sprintf("dev-%03d", i)
		rec.Site = fmt.Sprintf("site-%d", i%2)
		line, err := json.Marshal(&rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(append(line, '\n'))
	}
	return buf.Bytes()
}

func postIngest(t *testing.T, url string, body []byte, gzipped bool) (*http.Response, *IngestReply, string) {
	t.Helper()
	payload := body
	if gzipped {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		zw.Write(body)
		zw.Close()
		payload = zbuf.Bytes()
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	var reply IngestReply
	json.Unmarshal(raw.Bytes(), &reply)
	return resp, &reply, raw.String()
}

// TestIngestEndpointDedupes pins the serving-path pipeline: a stream of
// repeats over two syndromes triggers two engine runs, everything else
// dedupes, and the summary endpoint reports the fleet view.
func TestIngestEndpointDedupes(t *testing.T) {
	s, hs, spec := newTestServer(t, nil)
	stream := ingestStream(t, spec, [][]defect.Defect{
		{stuck(spec.Circuit, "G10", false)},
		{stuck(spec.Circuit, "G16", true)},
	}, 12)

	resp, reply, body := postIngest(t, hs.URL+"/v1/ingest?workload=c17", stream, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	if reply.Records != 12 || reply.Failed != 0 || reply.Shed != 0 {
		t.Fatalf("reply %+v, want 12 records, none failed/shed", reply)
	}
	if reply.Diagnosed != 2 || reply.Deduped != 10 {
		t.Fatalf("reply %+v, want 2 diagnosed + 10 deduped", reply)
	}
	if got := s.reg.Counter("volume.diagnosed").Value(); got != 2 {
		t.Fatalf("volume.diagnosed = %d, want 2", got)
	}

	resp2, sumBody := getURL(t, hs.URL+"/v1/volume/summary?workload=c17")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("summary: %d", resp2.StatusCode)
	}
	var sum volume.Summary
	if err := json.Unmarshal([]byte(sumBody), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Devices != 12 || sum.UniqueSyndromes != 2 {
		t.Fatalf("summary devices=%d unique=%d, want 12/2", sum.Devices, sum.UniqueSyndromes)
	}
	if len(sum.Sites) != 2 {
		t.Fatalf("%d summary sites, want 2", len(sum.Sites))
	}
}

// TestIngestGzipBody pins Content-Encoding: gzip handling — same stream,
// same outcome.
func TestIngestGzipBody(t *testing.T) {
	_, hs, spec := newTestServer(t, nil)
	stream := ingestStream(t, spec, [][]defect.Defect{{stuck(spec.Circuit, "G10", false)}}, 5)
	resp, reply, body := postIngest(t, hs.URL+"/v1/ingest?workload=c17", stream, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gzip ingest: %d %s", resp.StatusCode, body)
	}
	if reply.Records != 5 || reply.Diagnosed != 1 || reply.Deduped != 4 {
		t.Fatalf("gzip reply %+v, want 5 records = 1 diagnosed + 4 deduped", reply)
	}
}

// TestIngestFullShedBacksOff pins the overload contract: when admission
// sheds every record (here via an inflight-bytes cap no record fits
// under), the stream answers 429 with Retry-After — the client's signal
// to back off and resend — and nothing lands in the aggregate.
func TestIngestFullShedBacksOff(t *testing.T) {
	_, hs, spec := newTestServer(t, func(cfg *Config) {
		cfg.MaxInflightBytes = 1
	})
	stream := ingestStream(t, spec, [][]defect.Defect{{stuck(spec.Circuit, "G10", false)}}, 4)
	resp, reply, body := postIngest(t, hs.URL+"/v1/ingest?workload=c17", stream, false)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fully shed ingest: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 ingest reply carries no Retry-After")
	}
	if reply.Shed != 4 || reply.Deduped != 0 || reply.Diagnosed != 0 {
		t.Fatalf("reply %+v, want all 4 shed", reply)
	}

	_, sumBody := getURL(t, hs.URL+"/v1/volume/summary?workload=c17")
	var sum volume.Summary
	if err := json.Unmarshal([]byte(sumBody), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Devices != 0 {
		t.Fatalf("shed devices leaked into the aggregate: %d", sum.Devices)
	}
}

// TestIngestCacheHitsBypassAdmission pins the dedupe payoff on the
// serving path: once a syndrome is cached (via an interactive diagnose),
// repeats ingest successfully even when admission would shed every
// engine-bound request.
func TestIngestCacheHitsBypassAdmission(t *testing.T) {
	s, hs, spec := newTestServer(t, nil)
	// Warm the fingerprint cache through the ingest path itself.
	warm := ingestStream(t, spec, [][]defect.Defect{{stuck(spec.Circuit, "G10", false)}}, 1)
	if resp, _, body := postIngest(t, hs.URL+"/v1/ingest?workload=c17", warm, false); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm ingest: %d %s", resp.StatusCode, body)
	}

	// Now make admission shed everything engine-bound: cache hits never
	// call admit, so the warmed syndrome's repeats still ingest cleanly.
	s.cfg.MaxInflightBytes = 0
	stream := ingestStream(t, spec, [][]defect.Defect{{stuck(spec.Circuit, "G10", false)}}, 8)
	resp, reply, body := postIngest(t, hs.URL+"/v1/ingest?workload=c17", stream, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat ingest: %d %s", resp.StatusCode, body)
	}
	if reply.Deduped != 8 || reply.Diagnosed != 0 {
		t.Fatalf("reply %+v, want all 8 deduped against the warm cache", reply)
	}
}

// TestIngestEmptyStreamRejected pins the 400 on a record-less body.
func TestIngestEmptyStreamRejected(t *testing.T) {
	_, hs, _ := newTestServer(t, nil)
	resp, _, _ := postIngest(t, hs.URL+"/v1/ingest?workload=c17", []byte("\n# just a comment\n"), false)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest: %d, want 400", resp.StatusCode)
	}
}

// TestIngestUnknownWorkloadFails pins per-record workload resolution:
// unknown names count as failures without aborting the stream.
func TestIngestUnknownWorkloadFails(t *testing.T) {
	_, hs, spec := newTestServer(t, nil)
	good := ingestStream(t, spec, [][]defect.Defect{{stuck(spec.Circuit, "G10", false)}}, 1)
	bad := []byte(`{"device_id":"x","workload":"nope"}` + "\n")
	resp, reply, body := postIngest(t, hs.URL+"/v1/ingest?workload=c17", append(bad, good...), false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed ingest: %d %s", resp.StatusCode, body)
	}
	if reply.Records != 2 || reply.Failed != 1 || len(reply.Errors) != 1 {
		t.Fatalf("reply %+v, want 2 records with 1 failed+sampled", reply)
	}
}

// TestVolumeSummaryUnknownWorkload pins the 404.
func TestVolumeSummaryUnknownWorkload(t *testing.T) {
	_, hs, _ := newTestServer(t, nil)
	resp, _ := getURL(t, hs.URL+"/v1/volume/summary?workload=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-workload summary: %d, want 404", resp.StatusCode)
	}
}
