package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"multidiag/internal/fsim"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
)

// Config tunes the service spine. The zero value selects serving
// defaults; cmd/mdserve exposes every field as a flag.
type Config struct {
	// MaxInflight caps admitted-but-unfinished requests across all
	// workloads; past it new requests shed (429). Default 64.
	MaxInflight int
	// MaxInflightBytes caps the summed body bytes of admitted requests —
	// the memory backpressure valve for huge datalogs. Default 64 MiB.
	MaxInflightBytes int64
	// QueueDepth caps each workload's admission queue. Default 32.
	QueueDepth int
	// MaxBatch caps how many queued requests one scoring pass coalesces.
	// Default 8.
	MaxBatch int
	// MaxWait bounds how long an opened batch lingers for stragglers. The
	// batcher only lingers under load (something else was already queued);
	// an isolated request executes immediately. Default 2ms.
	MaxWait time.Duration
	// RequestTimeout is the per-request deadline; a request's timeout_ms
	// may lower it, never raise it. Default 30s.
	RequestTimeout time.Duration
	// Workers bounds each scoring pass's fault-parallel pool (0 =
	// GOMAXPROCS).
	Workers int
	// Trace supplies spans and the metrics registry (nil: obs.Global()).
	Trace *obs.Trace
}

func (cfg *Config) fill() {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxInflightBytes <= 0 {
		cfg.MaxInflightBytes = 64 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
}

// WorkloadSpec registers one circuit with its test set at startup.
type WorkloadSpec struct {
	Name     string
	Circuit  *netlist.Circuit
	Patterns []sim.Pattern
}

// workload is one registered (circuit, test set) with its serving state:
// the admission queue its batcher goroutine drains and the shared
// simulation context (warm cone cache + fault-worker share) every scoring
// pass reuses.
type workload struct {
	name   string
	c      *netlist.Circuit
	pats   []sim.Pattern
	shared fsim.Shared
	queue  chan *request
	queued atomic.Int64
}

// Server is the diagnosis service. Create with New, mount via Handler,
// stop with Drain.
type Server struct {
	cfg       Config
	tr        *obs.Trace
	reg       *obs.Registry
	mux       *http.ServeMux
	workloads map[string]*workload
	names     []string

	draining      atomic.Bool
	admitMu       sync.RWMutex // excludes admission during queue close
	inflight      atomic.Int64
	inflightBytes atomic.Int64
	batchers      sync.WaitGroup

	// testHookExecute, when set by tests, runs at the start of every
	// scoring pass (after the batch is assembled, before the engine).
	testHookExecute func(batch int)
}

// New builds a server, registering and validating every workload. Each
// workload gets a bounded queue and one batcher goroutine; a construction
// error (e.g. a pattern set that does not fit its circuit) fails startup
// rather than the first request.
func New(cfg Config, specs []WorkloadSpec) (*Server, error) {
	cfg.fill()
	tr := cfg.Trace
	if tr == nil {
		tr = obs.Global()
	}
	s := &Server{
		cfg:       cfg,
		tr:        tr,
		reg:       tr.Registry(),
		mux:       http.NewServeMux(),
		workloads: make(map[string]*workload),
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no workloads registered")
	}
	for _, spec := range specs {
		if spec.Name == "" || spec.Circuit == nil || len(spec.Patterns) == 0 {
			return nil, fmt.Errorf("serve: workload %q: name, circuit and patterns are required", spec.Name)
		}
		if _, dup := s.workloads[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate workload %q", spec.Name)
		}
		// Validate the pair and warm the shape-bound cone cache now: the
		// first request should pay scoring cost, not startup cost.
		fs, err := fsim.NewFaultSim(spec.Circuit, spec.Patterns)
		if err != nil {
			return nil, fmt.Errorf("serve: workload %q: %w", spec.Name, err)
		}
		shared := fsim.NewShared(s.reg, cfg.Workers, 1)
		if !fs.AttachCache(shared.Cache) {
			return nil, fmt.Errorf("serve: workload %q: cone cache rejected workload shape", spec.Name)
		}
		w := &workload{
			name:   spec.Name,
			c:      spec.Circuit,
			pats:   spec.Patterns,
			shared: shared,
			queue:  make(chan *request, cfg.QueueDepth),
		}
		s.workloads[spec.Name] = w
		s.batchers.Add(1)
		go s.batcher(w)
	}
	s.names = sortedNames(s.workloads)
	s.reg.Gauge("serve.workloads").Set(int64(len(s.workloads)))
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/diagnose", s.handleDiagnose)
	s.mux.HandleFunc("POST /v1/diagnose/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully stops the server: admission closes (readyz and new
// requests get 503), queued and in-flight requests finish, the batcher
// goroutines exit. It returns ctx.Err() if the context expires first —
// in-flight work keeps its own deadlines either way.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // already draining
	}
	// Exclude admitters while the queues close: admission holds the read
	// lock across its draining-check + enqueue, so after Lock() no sender
	// can race the close.
	s.admitMu.Lock()
	for _, w := range s.workloads {
		close(w.queue)
	}
	s.admitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.batchers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admit runs the load-shedding checks and enqueues the request onto its
// workload. It returns an HTTP status: 0 on success, 429 when a limit
// sheds the request, 503 while draining.
func (s *Server) admit(w *workload, req *request) int {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return http.StatusServiceUnavailable
	}
	if s.inflight.Add(1) > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-1)
		s.shed("inflight")
		return http.StatusTooManyRequests
	}
	if s.inflightBytes.Add(req.bytes) > s.cfg.MaxInflightBytes {
		s.inflightBytes.Add(-req.bytes)
		s.inflight.Add(-1)
		s.shed("bytes")
		return http.StatusTooManyRequests
	}
	select {
	case w.queue <- req:
		w.queued.Add(1)
		s.reg.Gauge("serve.inflight").Set(s.inflight.Load())
		s.reg.Counter("serve.requests").Inc()
		return 0
	default:
		s.inflightBytes.Add(-req.bytes)
		s.inflight.Add(-1)
		s.shed("queue")
		return http.StatusTooManyRequests
	}
}

// release returns a request's admission budget.
func (s *Server) release(req *request) {
	s.inflightBytes.Add(-req.bytes)
	s.reg.Gauge("serve.inflight").Set(s.inflight.Add(-1))
}

func (s *Server) shed(kind string) {
	s.reg.Counter("serve.shed").Inc()
	s.reg.Counter("serve.shed_" + kind).Inc()
}

// requestContext derives the per-request deadline: the server default,
// lowered (never raised) by the request's timeout_ms.
func (s *Server) requestContext(parent context.Context, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if rd := time.Duration(timeoutMS) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return context.WithTimeout(parent, d)
}

func (s *Server) handleDiagnose(rw http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(rw, r.Body, maxRequestBytes)
	var dr DiagnoseRequest
	if err := json.NewDecoder(body).Decode(&dr); err != nil {
		httpError(rw, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if r.URL.Query().Get("explain") == "1" {
		dr.Explain = true
	}
	w, ok := s.workloads[dr.Workload]
	if !ok {
		httpError(rw, http.StatusNotFound, fmt.Sprintf("unknown workload %q (see /v1/workloads)", dr.Workload))
		return
	}
	log, err := buildDatalog(w.c, len(w.pats), dr.Datalog, dr.Response)
	if err != nil {
		httpError(rw, http.StatusBadRequest, err.Error())
		return
	}
	top := 10
	if dr.Top != nil {
		top = *dr.Top
	}
	ctx, cancel := s.requestContext(r.Context(), dr.TimeoutMS)
	defer cancel()
	req := &request{
		ctx:      ctx,
		log:      log,
		top:      top,
		explain:  dr.Explain,
		bytes:    r.ContentLength,
		enqueued: time.Now(),
		done:     make(chan response, 1),
	}
	if req.bytes < 0 {
		req.bytes = 0
	}
	if status := s.admit(w, req); status != 0 {
		shedResponse(rw, status)
		return
	}
	defer s.release(req)
	select {
	case resp := <-req.done:
		if resp.err != nil {
			s.reg.Counter("serve.errors").Inc()
			httpError(rw, resp.status, resp.err.Error())
			return
		}
		writeJSON(rw, http.StatusOK, resp.report)
	case <-ctx.Done():
		// The executor may still send a response; the buffered channel
		// keeps it from blocking. The client sees the deadline.
		s.reg.Counter("serve.timeouts").Inc()
		httpError(rw, http.StatusGatewayTimeout, fmt.Sprintf("request deadline exceeded: %v", ctx.Err()))
	}
}

func (s *Server) handleBatch(rw http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(rw, r.Body, maxRequestBytes)
	var br BatchRequest
	if err := json.NewDecoder(body).Decode(&br); err != nil {
		httpError(rw, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	w, ok := s.workloads[br.Workload]
	if !ok {
		httpError(rw, http.StatusNotFound, fmt.Sprintf("unknown workload %q (see /v1/workloads)", br.Workload))
		return
	}
	if len(br.Devices) == 0 {
		httpError(rw, http.StatusBadRequest, "batch carries no devices")
		return
	}
	top := 10
	if br.Top != nil {
		top = *br.Top
	}
	ctx, cancel := s.requestContext(r.Context(), br.TimeoutMS)
	defer cancel()

	// Devices are admitted individually so shedding is partial: the
	// results array reports a per-device 429 rather than failing the
	// whole batch. Shared body bytes are attributed to the first device.
	results := make([]DeviceResult, len(br.Devices))
	reqs := make([]*request, len(br.Devices))
	bytes := r.ContentLength
	if bytes < 0 {
		bytes = 0
	}
	for i, dev := range br.Devices {
		log, err := buildDatalog(w.c, len(w.pats), dev.Datalog, dev.Response)
		if err != nil {
			results[i] = DeviceResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("device %d: %v", i, err)}
			continue
		}
		req := &request{
			ctx:      ctx,
			log:      log,
			top:      top,
			bytes:    bytes,
			enqueued: time.Now(),
			done:     make(chan response, 1),
		}
		bytes = 0
		if status := s.admit(w, req); status != 0 {
			results[i] = DeviceResult{Status: status, Error: http.StatusText(status)}
			continue
		}
		reqs[i] = req
	}
	for i, req := range reqs {
		if req == nil {
			continue
		}
		select {
		case resp := <-req.done:
			if resp.err != nil {
				s.reg.Counter("serve.errors").Inc()
				results[i] = DeviceResult{Status: resp.status, Error: resp.err.Error()}
			} else {
				results[i] = DeviceResult{Status: http.StatusOK, Report: resp.report}
			}
		case <-ctx.Done():
			s.reg.Counter("serve.timeouts").Inc()
			results[i] = DeviceResult{Status: http.StatusGatewayTimeout, Error: ctx.Err().Error()}
		}
		s.release(req)
	}
	writeJSON(rw, http.StatusOK, &BatchReply{Results: results})
}

func (s *Server) handleWorkloads(rw http.ResponseWriter, r *http.Request) {
	infos := make([]WorkloadInfo, 0, len(s.names))
	for _, name := range s.names {
		w := s.workloads[name]
		infos = append(infos, WorkloadInfo{
			Name:       name,
			Gates:      w.c.NumGates(),
			PIs:        len(w.c.PIs),
			POs:        len(w.c.POs),
			Patterns:   len(w.pats),
			QueueDepth: int(w.queued.Load()),
		})
	}
	writeJSON(rw, http.StatusOK, infos)
}

func (s *Server) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(rw, "ok")
}

func (s *Server) handleReadyz(rw http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(rw, http.StatusServiceUnavailable, "draining")
		return
	}
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(rw, "ready")
}

func (s *Server) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.WritePrometheus(rw, s.reg); err != nil {
		s.reg.Counter("serve.errors").Inc()
	}
}

// maxRequestBytes bounds one request body; a datalog for the largest
// built-in workload is well under this.
const maxRequestBytes = 32 << 20

func httpError(rw http.ResponseWriter, status int, msg string) {
	writeJSON(rw, status, map[string]string{"error": msg})
}

func shedResponse(rw http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests {
		rw.Header().Set("Retry-After", "1")
	}
	httpError(rw, status, http.StatusText(status))
}

func writeJSON(rw http.ResponseWriter, status int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
