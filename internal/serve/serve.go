package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"multidiag/internal/fsim"
	"multidiag/internal/incident"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/sim"
	"multidiag/internal/trace"
	"multidiag/internal/volume"
)

// Config tunes the service spine. The zero value selects serving
// defaults; cmd/mdserve exposes every field as a flag.
type Config struct {
	// MaxInflight caps admitted-but-unfinished requests across all
	// workloads; past it new requests shed (429). Default 64.
	MaxInflight int
	// MaxInflightBytes caps the summed body bytes of admitted requests —
	// the memory backpressure valve for huge datalogs. Default 64 MiB.
	MaxInflightBytes int64
	// QueueDepth caps each workload's admission queue. Default 32.
	QueueDepth int
	// MaxBatch caps how many queued requests one scoring pass coalesces.
	// Default 8.
	MaxBatch int
	// MaxWait bounds how long an opened batch lingers for stragglers. The
	// batcher only lingers under load (something else was already queued);
	// an isolated request executes immediately. Default 2ms.
	MaxWait time.Duration
	// RequestTimeout is the per-request deadline; a request's timeout_ms
	// may lower it, never raise it. Default 30s.
	RequestTimeout time.Duration
	// Workers bounds each scoring pass's fault-parallel pool (0 =
	// GOMAXPROCS).
	Workers int
	// Trace supplies spans and the metrics registry (nil: obs.Global()).
	Trace *obs.Trace
	// TraceSample is the tail sampler's retention probability for routine
	// (unflagged) request traces. Flagged traces — shed, timeout, panic,
	// slower than the live service p95 — are ALWAYS retained regardless.
	// 0 selects the 0.1 default; a negative value disables request tracing
	// entirely (the allocation-free path).
	TraceSample float64
	// TraceCapacity sizes each capture ring (flagged and sampled get one
	// each, so routine traffic can never evict a shed trace). Default 64.
	TraceCapacity int
	// TraceSink, when set, receives every retained trace as one JSON line
	// at request end (mdserve wires -trace-spans-out here, transparently
	// gzipped for .gz paths).
	TraceSink io.Writer

	// IncidentDir, when set, arms the incident observatory: every
	// anomalous request — shed, deadline, engine panic, quality outlier,
	// slower than the anomaly threshold — spools one self-contained debug
	// bundle (payload + trace + prof + explain + engine config) to this
	// directory for offline mdreplay. Empty disables (the default).
	IncidentDir string
	// IncidentMaxBundles / IncidentMaxBytes bound the bundle ring
	// (overwrite-oldest). Defaults 32 bundles / 64 MiB.
	IncidentMaxBundles int
	IncidentMaxBytes   int64
	// IncidentMinInterval rate-limits captures per trigger kind, so an
	// overload sheds thousands of requests but spools one representative
	// bundle per interval. 0 disables the limit.
	IncidentMinInterval time.Duration
	// SlowNS, when set, overrides the slow-anomaly threshold (nanoseconds;
	// ≤ 0 = no threshold yet) used by BOTH the trace tail sampler's "slow"
	// flag and the incident observatory's slow trigger. Nil selects the
	// default: the live service-time p95, held back until 32 observations
	// exist. Tests pin it to force or forbid slow captures.
	SlowNS func() int64

	// VolumeCacheCap bounds each workload's syndrome-fingerprint cache on
	// the /v1/ingest path (0 = the volume package default of 16k entries;
	// < 0 disables dedupe — every ingested record runs the engine).
	VolumeCacheCap int
	// VolumeTrendBucket is the ingest aggregate's trend granularity
	// (devices per bucket for untimestamped records, seconds per bucket
	// for timestamped ones; 0 = the volume package default).
	VolumeTrendBucket int
}

func (cfg *Config) fill() {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxInflightBytes <= 0 {
		cfg.MaxInflightBytes = 64 << 20
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.TraceSample == 0 {
		cfg.TraceSample = 0.1
	}
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = 64
	}
	if cfg.VolumeTrendBucket <= 0 {
		cfg.VolumeTrendBucket = volume.DefaultTrendBucket
	}
}

// WorkloadSpec registers one circuit with its test set at startup.
type WorkloadSpec struct {
	Name     string
	Circuit  *netlist.Circuit
	Patterns []sim.Pattern
}

// workload is one registered (circuit, test set) with its serving state:
// the admission queue its batcher goroutine drains and the shared
// simulation context (warm cone cache + fault-worker share) every scoring
// pass reuses.
type workload struct {
	name   string
	c      *netlist.Circuit
	pats   []sim.Pattern
	shared fsim.Shared
	// sim is the workload's warm fault simulator, built at registration
	// and passed to every diagnosis as core.Config.SharedSim: the packed
	// good-machine words, the syndrome arena, and the fork free list all
	// persist across requests, so steady-state scoring runs allocation-
	// free. Safe because each workload has exactly one batcher goroutine,
	// which serializes every diagnosis that touches the simulator.
	sim    *fsim.FaultSim
	queue  chan *request
	queued atomic.Int64

	// vol is the workload's syndrome-dedupe front for /v1/ingest: cache
	// hits answer without admission; misses enqueue into the same queue
	// as interactive traffic (so ingest coalesces in the micro-batcher
	// and sheds under the same caps). volAgg folds every ingested device
	// into the fleet aggregate behind GET /v1/volume/summary; volOrd
	// assigns fleet-wide ordinals for trend bucketing.
	vol    *volume.Dedupe
	volAgg *volume.Aggregator
	volOrd atomic.Int64
}

// Server is the diagnosis service. Create with New, mount via Handler,
// stop with Drain.
type Server struct {
	cfg       Config
	tr        *obs.Trace
	reg       *obs.Registry
	mux       *http.ServeMux
	workloads map[string]*workload
	names     []string

	// tracing gates request-scoped span trees; capture is the tail-based
	// retention buffer behind /debug/trace (nil when tracing is off —
	// every capture method tolerates that).
	tracing bool
	capture *trace.Capture

	// incidents is the anomaly-triggered bundle recorder (nil when
	// Config.IncidentDir is empty — captureIncident tolerates that);
	// slowNS is the shared slow-anomaly threshold.
	incidents *incident.Recorder
	slowNS    func() int64

	draining      atomic.Bool
	admitMu       sync.RWMutex // excludes admission during queue close
	inflight      atomic.Int64
	inflightBytes atomic.Int64
	batchers      sync.WaitGroup

	// flaggedIDs samples the request IDs of notable outcomes for the
	// service record: the join key from aggregate counters back into logs
	// and captured traces.
	flaggedMu  sync.Mutex
	flaggedIDs []string

	// testHookExecute, when set by tests, runs at the start of every
	// scoring pass (after the batch is assembled, before the engine).
	testHookExecute func(batch int)
}

// New builds a server, registering and validating every workload. Each
// workload gets a bounded queue and one batcher goroutine; a construction
// error (e.g. a pattern set that does not fit its circuit) fails startup
// rather than the first request.
func New(cfg Config, specs []WorkloadSpec) (*Server, error) {
	cfg.fill()
	tr := cfg.Trace
	if tr == nil {
		tr = obs.Global()
	}
	s := &Server{
		cfg:       cfg,
		tr:        tr,
		reg:       tr.Registry(),
		mux:       http.NewServeMux(),
		workloads: make(map[string]*workload),
	}
	// One slow threshold serves both anomaly consumers (trace "slow" flag,
	// incident slow trigger): by default the live service-time p95 (µs →
	// ns), held back until enough observations exist for the quantile to
	// mean something.
	s.slowNS = cfg.SlowNS
	if s.slowNS == nil {
		svc := s.reg.Histogram("serve.service_us")
		s.slowNS = func() int64 {
			if svc.Count() < 32 {
				return 0
			}
			return svc.Quantile(0.95) * 1000
		}
	}
	if cfg.TraceSample >= 0 {
		s.tracing = true
		s.capture = trace.NewCapture(trace.CaptureConfig{
			Capacity:   cfg.TraceCapacity,
			SampleRate: cfg.TraceSample,
			Sink:       cfg.TraceSink,
			SlowNS:     s.slowNS,
			Registry:   s.reg,
		})
	}
	if cfg.IncidentDir != "" {
		rec, err := incident.NewRecorder(incident.Config{
			Dir:         cfg.IncidentDir,
			MaxBundles:  cfg.IncidentMaxBundles,
			MaxBytes:    cfg.IncidentMaxBytes,
			MinInterval: cfg.IncidentMinInterval,
			Registry:    s.reg,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.incidents = rec
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no workloads registered")
	}
	for _, spec := range specs {
		if spec.Name == "" || spec.Circuit == nil || len(spec.Patterns) == 0 {
			return nil, fmt.Errorf("serve: workload %q: name, circuit and patterns are required", spec.Name)
		}
		if _, dup := s.workloads[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate workload %q", spec.Name)
		}
		// Validate the pair, warm the shape-bound cone cache, and retain
		// the simulator for every future scoring pass: the first request
		// should pay scoring cost, not startup cost, and later requests
		// should not even pay arena warm-up.
		fs, err := fsim.NewFaultSim(spec.Circuit, spec.Patterns)
		if err != nil {
			return nil, fmt.Errorf("serve: workload %q: %w", spec.Name, err)
		}
		shared := fsim.NewShared(s.reg, cfg.Workers, 1)
		if !fs.AttachCache(shared.Cache) {
			return nil, fmt.Errorf("serve: workload %q: cone cache rejected workload shape", spec.Name)
		}
		w := &workload{
			name:   spec.Name,
			c:      spec.Circuit,
			pats:   spec.Patterns,
			shared: shared,
			sim:    fs,
			queue:  make(chan *request, cfg.QueueDepth),
			volAgg: volume.NewAggregator(spec.Name, 0),
		}
		var volCache *volume.Cache
		if cfg.VolumeCacheCap >= 0 {
			volCache = volume.NewCache(cfg.VolumeCacheCap)
		}
		w.vol = volume.NewDedupe(spec.Name, volCache, s.volumeDiag(w))
		w.vol.Observe(s.reg)
		s.workloads[spec.Name] = w
		s.batchers.Add(1)
		go s.batcher(w)
	}
	s.names = sortedNames(s.workloads)
	s.reg.Gauge("serve.workloads").Set(int64(len(s.workloads)))
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/diagnose", s.handleDiagnose)
	s.mux.HandleFunc("POST /v1/diagnose/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/volume/summary", s.handleVolumeSummary)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	// Continuous-profiling snapshots (404 while no prof collector is
	// installed, matching the debug-mux registration in prof.Flags.Setup).
	s.mux.Handle("GET /debug/prof", prof.Handler())
	// Incident-bundle index (404 while the observatory is disarmed — the
	// handler tolerates a nil recorder).
	s.mux.Handle("GET /debug/incidents", s.incidents.Handler())
}

// Handler returns the service's HTTP handler: the route mux behind the
// request-ID middleware, so EVERY response — including sheds, timeouts
// and 404s — carries an X-Request-ID that log lines and traces join on.
func (s *Server) Handler() http.Handler { return requestIDMiddleware(s.mux) }

// requestIDMiddleware echoes the client's X-Request-ID or generates one
// (16 hex chars, same generator as span IDs). The header is also written
// back onto the inbound request so downstream handlers read one place.
func requestIDMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 128 {
			id = trace.NewSpanID().String()
			r.Header.Set("X-Request-ID", id)
		}
		rw.Header().Set("X-Request-ID", id)
		next.ServeHTTP(rw, r)
	})
}

// Drain gracefully stops the server: admission closes (readyz and new
// requests get 503), queued and in-flight requests finish, the batcher
// goroutines exit. It returns ctx.Err() if the context expires first —
// in-flight work keeps its own deadlines either way.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil // already draining
	}
	// Exclude admitters while the queues close: admission holds the read
	// lock across its draining-check + enqueue, so after Lock() no sender
	// can race the close.
	s.admitMu.Lock()
	for _, w := range s.workloads {
		close(w.queue)
	}
	s.admitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.batchers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admit runs the load-shedding checks and enqueues the request onto its
// workload. It returns an HTTP status: 0 on success, 429 when a limit
// sheds the request, 503 while draining.
func (s *Server) admit(w *workload, req *request) int {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return http.StatusServiceUnavailable
	}
	if s.inflight.Add(1) > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-1)
		s.shed("inflight", req)
		return http.StatusTooManyRequests
	}
	if s.inflightBytes.Add(req.bytes) > s.cfg.MaxInflightBytes {
		s.inflightBytes.Add(-req.bytes)
		s.inflight.Add(-1)
		s.shed("bytes", req)
		return http.StatusTooManyRequests
	}
	select {
	case w.queue <- req:
		w.queued.Add(1)
		s.reg.Gauge("serve.inflight").Set(s.inflight.Load())
		s.reg.Counter("serve.requests").Inc()
		return 0
	default:
		s.inflightBytes.Add(-req.bytes)
		s.inflight.Add(-1)
		s.shed("queue", req)
		return http.StatusTooManyRequests
	}
}

// release returns a request's admission budget.
func (s *Server) release(req *request) {
	s.inflightBytes.Add(-req.bytes)
	s.reg.Gauge("serve.inflight").Set(s.inflight.Add(-1))
}

func (s *Server) shed(kind string, req *request) {
	s.reg.Counter("serve.shed").Inc()
	s.reg.Counter("serve.shed_" + kind).Inc()
	// A shed is exactly the moment the profile matters: pin a snapshot
	// into the always-keep ring (rate-limited, no-op when profiling is
	// off) so /debug/prof still shows what the process looked like under
	// the overload after the rolling ring has moved on. The shed request's
	// IDs ride the pin, joining it to the captured trace and any bundle.
	prof.PinWith("shed:"+kind, req.reqID, exemplarID(req))
}

// maxFlaggedIDs bounds the service record's request-ID sample.
const maxFlaggedIDs = 16

// noteFlagged records "kind:requestID" for the service record, keeping
// the newest maxFlaggedIDs entries.
func (s *Server) noteFlagged(kind, id string) {
	if id == "" {
		return
	}
	s.flaggedMu.Lock()
	s.flaggedIDs = append(s.flaggedIDs, kind+":"+id)
	if len(s.flaggedIDs) > maxFlaggedIDs {
		s.flaggedIDs = s.flaggedIDs[len(s.flaggedIDs)-maxFlaggedIDs:]
	}
	s.flaggedMu.Unlock()
}

// requestContext derives the per-request deadline: the server default,
// lowered (never raised) by the request's timeout_ms.
func (s *Server) requestContext(parent context.Context, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if rd := time.Duration(timeoutMS) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return context.WithTimeout(parent, d)
}

// startTrace opens a request's span tree: joining the caller's trace when
// the request carries a valid W3C traceparent (the root span becomes a
// child of the remote span), starting a fresh one otherwise. The response
// traceparent names this request's root span so the caller can stitch.
// With tracing off it returns (nil, inert span) and every downstream use
// is a no-op — the allocation-free path.
func (s *Server) startTrace(rw http.ResponseWriter, r *http.Request, endpoint, workload string) (*trace.Tree, trace.Span) {
	if !s.tracing {
		return nil, trace.Span{}
	}
	tid, parent, remote := trace.ParseTraceparent(r.Header.Get("traceparent"))
	tree := trace.NewTree(tid) // zero tid (no/bad header) draws a fresh ID
	if remote {
		tree.SetRemoteParent(parent)
	}
	tree.SetAttr("request_id", r.Header.Get("X-Request-ID"))
	tree.SetAttr("endpoint", endpoint)
	tree.SetAttr("workload", workload)
	root := tree.Start("serve.request")
	rw.Header().Set("traceparent", trace.Traceparent(tree.TraceID(), root.ID()))
	return tree, root
}

// finishTrace closes the request's root span and offers the tree to the
// tail sampler — the point where the keep/drop decision is made, with the
// outcome (status, flags) known. Spans still open (an executor racing a
// handler timeout) appear Unfinished in the captured record.
func (s *Server) finishTrace(tree *trace.Tree, root trace.Span, status int) {
	if tree == nil {
		return
	}
	root.SetInt("status", int64(status))
	root.End()
	s.capture.Offer(tree)
}

func (s *Server) handleDiagnose(rw http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(rw, r.Body, maxRequestBytes)
	var dr DiagnoseRequest
	if err := json.NewDecoder(body).Decode(&dr); err != nil {
		httpError(rw, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if r.URL.Query().Get("explain") == "1" {
		dr.Explain = true
	}
	w, ok := s.workloads[dr.Workload]
	if !ok {
		httpError(rw, http.StatusNotFound, fmt.Sprintf("unknown workload %q (see /v1/workloads)", dr.Workload))
		return
	}
	log, err := buildDatalog(w.c, len(w.pats), dr.Datalog, dr.Response)
	if err != nil {
		httpError(rw, http.StatusBadRequest, err.Error())
		return
	}
	top := 10
	if dr.Top != nil {
		top = *dr.Top
	}
	tree, root := s.startTrace(rw, r, "/v1/diagnose", dr.Workload)
	ctx, cancel := s.requestContext(trace.WithSpan(r.Context(), root), dr.TimeoutMS)
	defer cancel()
	req := &request{
		ctx:      ctx,
		log:      log,
		top:      top,
		explain:  dr.Explain,
		bytes:    r.ContentLength,
		enqueued: time.Now(),
		done:     make(chan response, 1),
		reqID:    r.Header.Get("X-Request-ID"),
		tree:     tree,
		span:     root,
	}
	if req.bytes < 0 {
		req.bytes = 0
	}
	// The queue span opens before admission so the batcher can never
	// dequeue a request whose queueSpan is still being assigned.
	req.queueSpan = root.Start("serve.queue")
	if status := s.admit(w, req); status != 0 {
		req.queueSpan.End()
		tree.Flag("shed")
		s.noteFlagged("shed", req.reqID)
		s.finishTrace(tree, root, status)
		if status == http.StatusTooManyRequests {
			s.captureIncident(incident.TriggerShed, status, w, req, nil, nil)
		}
		shedResponse(rw, status)
		return
	}
	defer s.release(req)
	select {
	case resp := <-req.done:
		if resp.err != nil {
			s.reg.Counter("serve.errors").Inc()
			s.finishTrace(tree, root, resp.status)
			switch resp.status {
			case http.StatusGatewayTimeout:
				s.captureIncident(incident.TriggerDeadline, resp.status, w, req, nil, resp.events)
			case http.StatusInternalServerError:
				s.captureIncident(incident.TriggerPanic, resp.status, w, req, nil, resp.events)
			}
			httpError(rw, resp.status, resp.err.Error())
			return
		}
		s.finishTrace(tree, root, http.StatusOK)
		if trig := s.successTrigger(resp.report, req); trig != "" {
			s.captureIncident(trig, http.StatusOK, w, req, resp.report, resp.events)
		}
		writeJSON(rw, http.StatusOK, resp.report)
	case <-ctx.Done():
		// The executor may still send a response; the buffered channel
		// keeps it from blocking. The client sees the deadline.
		s.reg.Counter("serve.timeouts").Inc()
		tree.Flag("timeout")
		s.noteFlagged("timeout", req.reqID)
		s.finishTrace(tree, root, http.StatusGatewayTimeout)
		s.captureIncident(incident.TriggerDeadline, http.StatusGatewayTimeout, w, req, nil, nil)
		httpError(rw, http.StatusGatewayTimeout, fmt.Sprintf("request deadline exceeded: %v", ctx.Err()))
	}
}

func (s *Server) handleBatch(rw http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(rw, r.Body, maxRequestBytes)
	var br BatchRequest
	if err := json.NewDecoder(body).Decode(&br); err != nil {
		httpError(rw, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	w, ok := s.workloads[br.Workload]
	if !ok {
		httpError(rw, http.StatusNotFound, fmt.Sprintf("unknown workload %q (see /v1/workloads)", br.Workload))
		return
	}
	if len(br.Devices) == 0 {
		httpError(rw, http.StatusBadRequest, "batch carries no devices")
		return
	}
	top := 10
	if br.Top != nil {
		top = *br.Top
	}
	// One HTTP request → one tree: each device hangs under the root as a
	// "serve.device" span, so a batch trace shows per-device queueing and
	// which devices coalesced into which scoring pass.
	tree, root := s.startTrace(rw, r, "/v1/diagnose/batch", br.Workload)
	reqID := r.Header.Get("X-Request-ID")
	ctx, cancel := s.requestContext(trace.WithSpan(r.Context(), root), br.TimeoutMS)
	defer cancel()

	// Devices are admitted individually so shedding is partial: the
	// results array reports a per-device 429 rather than failing the
	// whole batch. Shared body bytes are attributed to the first device.
	results := make([]DeviceResult, len(br.Devices))
	reqs := make([]*request, len(br.Devices))
	// Anomalous devices are captured AFTER the shared tree is finished, so
	// every bundle from this batch carries the complete trace.
	var pending []pendingIncident
	bytes := r.ContentLength
	if bytes < 0 {
		bytes = 0
	}
	for i, dev := range br.Devices {
		log, err := buildDatalog(w.c, len(w.pats), dev.Datalog, dev.Response)
		if err != nil {
			results[i] = DeviceResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("device %d: %v", i, err)}
			continue
		}
		req := &request{
			ctx:      ctx,
			log:      log,
			top:      top,
			bytes:    bytes,
			enqueued: time.Now(),
			done:     make(chan response, 1),
			reqID:    reqID,
			tree:     tree,
		}
		req.span = root.Start("serve.device")
		req.span.SetInt("device", int64(i))
		req.queueSpan = req.span.Start("serve.queue")
		bytes = 0
		if status := s.admit(w, req); status != 0 {
			req.queueSpan.End()
			tree.Flag("shed")
			s.noteFlagged("shed", reqID)
			req.span.SetInt("status", int64(status))
			req.span.End()
			if status == http.StatusTooManyRequests {
				pending = append(pending, pendingIncident{trigger: incident.TriggerShed, status: status, req: req})
			}
			results[i] = DeviceResult{Status: status, Error: http.StatusText(status)}
			continue
		}
		reqs[i] = req
	}
	for i, req := range reqs {
		if req == nil {
			continue
		}
		select {
		case resp := <-req.done:
			if resp.err != nil {
				s.reg.Counter("serve.errors").Inc()
				results[i] = DeviceResult{Status: resp.status, Error: resp.err.Error()}
				switch resp.status {
				case http.StatusGatewayTimeout:
					pending = append(pending, pendingIncident{trigger: incident.TriggerDeadline, status: resp.status, req: req, events: resp.events})
				case http.StatusInternalServerError:
					pending = append(pending, pendingIncident{trigger: incident.TriggerPanic, status: resp.status, req: req, events: resp.events})
				}
			} else {
				results[i] = DeviceResult{Status: http.StatusOK, Report: resp.report}
				if trig := s.successTrigger(resp.report, req); trig != "" {
					pending = append(pending, pendingIncident{trigger: trig, status: http.StatusOK, req: req, rep: resp.report, events: resp.events})
				}
			}
		case <-ctx.Done():
			s.reg.Counter("serve.timeouts").Inc()
			tree.Flag("timeout")
			s.noteFlagged("timeout", reqID)
			results[i] = DeviceResult{Status: http.StatusGatewayTimeout, Error: ctx.Err().Error()}
			pending = append(pending, pendingIncident{trigger: incident.TriggerDeadline, status: http.StatusGatewayTimeout, req: req})
		}
		req.span.SetInt("status", int64(results[i].Status))
		req.span.End()
		s.release(req)
	}
	s.finishTrace(tree, root, http.StatusOK)
	for _, p := range pending {
		s.captureIncident(p.trigger, p.status, w, p.req, p.rep, p.events)
	}
	writeJSON(rw, http.StatusOK, &BatchReply{Results: results})
}

func (s *Server) handleWorkloads(rw http.ResponseWriter, r *http.Request) {
	infos := make([]WorkloadInfo, 0, len(s.names))
	for _, name := range s.names {
		w := s.workloads[name]
		infos = append(infos, WorkloadInfo{
			Name:       name,
			Gates:      w.c.NumGates(),
			PIs:        len(w.c.PIs),
			POs:        len(w.c.POs),
			Patterns:   len(w.pats),
			QueueDepth: int(w.queued.Load()),
		})
	}
	writeJSON(rw, http.StatusOK, infos)
}

func (s *Server) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(rw, "ok")
}

func (s *Server) handleReadyz(rw http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(rw, http.StatusServiceUnavailable, "draining")
		return
	}
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(rw, "ready")
}

// handleDebugTrace serves the tail-capture buffer as NDJSON — one
// mdtrace/v1 TreeRecord per line, flagged traces first, each ring
// oldest-first. `mdtrace` reads this body directly.
func (s *Server) handleDebugTrace(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/x-ndjson")
	if s.capture == nil {
		return
	}
	for _, rec := range s.capture.Snapshot() {
		if err := rec.WriteJSONL(rw); err != nil {
			s.reg.Counter("serve.errors").Inc()
			return
		}
	}
}

func (s *Server) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.WritePrometheus(rw, s.reg); err != nil {
		s.reg.Counter("serve.errors").Inc()
	}
}

// maxRequestBytes bounds one request body; a datalog for the largest
// built-in workload is well under this.
const maxRequestBytes = 32 << 20

func httpError(rw http.ResponseWriter, status int, msg string) {
	writeJSON(rw, status, map[string]string{"error": msg})
}

func shedResponse(rw http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests {
		rw.Header().Set("Retry-After", "1")
	}
	httpError(rw, status, http.StatusText(status))
}

func writeJSON(rw http.ResponseWriter, status int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
