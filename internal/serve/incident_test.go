package serve

import (
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"multidiag/internal/defect"
	"multidiag/internal/incident"
	"multidiag/internal/volume"
)

// spooledBundles loads every bundle in dir, capture order.
func spooledBundles(t *testing.T, dir string) []*incident.Bundle {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*incident.Bundle, 0, len(files))
	for _, f := range files {
		b, err := incident.ReadBundle(f)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// TestIncidentSlowTriggerCapturesBundle pins the end-to-end slow path: a
// 200 response slower than the anomaly threshold spools one bundle
// carrying the request payload, the served report, the span tree and the
// join IDs — everything mdreplay needs.
func TestIncidentSlowTriggerCapturesBundle(t *testing.T) {
	dir := t.TempDir()
	s, hs, spec := newTestServer(t, func(cfg *Config) {
		cfg.IncidentDir = dir
		cfg.TraceSample = 1
		// Any finite latency is "slow": every success triggers a capture.
		cfg.SlowNS = func() int64 { return 1 }
	})
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G10", false)})
	resp, body := postJSON(t, hs.URL+"/v1/diagnose?explain=1", &DiagnoseRequest{Workload: "c17", Datalog: text})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose: %d %s", resp.StatusCode, body)
	}

	bundles := spooledBundles(t, dir)
	if len(bundles) != 1 {
		t.Fatalf("%d bundles spooled, want 1", len(bundles))
	}
	b := bundles[0]
	if b.Trigger != incident.TriggerSlow || b.Status != http.StatusOK {
		t.Fatalf("bundle trigger=%s status=%d, want slow/200", b.Trigger, b.Status)
	}
	if b.Workload != "c17" || b.Datalog != text {
		t.Fatal("bundle payload does not round-trip the request datalog")
	}
	if len(b.Report) == 0 {
		t.Fatal("slow bundle carries no report")
	}
	if b.RequestID != resp.Header.Get("X-Request-ID") {
		t.Fatalf("bundle request_id %q != response header %q", b.RequestID, resp.Header.Get("X-Request-ID"))
	}
	if b.Trace == nil || b.TraceID == "" || b.Trace.TraceID != b.TraceID {
		t.Fatal("bundle trace tree missing or unjoined")
	}
	if len(b.Explain) == 0 {
		t.Fatal("explained request's bundle carries no flight-recorder events")
	}
	if b.Engine.WorkersEffective < 1 || b.Engine.SeedOrder == "" || !b.Engine.ConeCache {
		t.Fatalf("engine config incomplete: %+v", b.Engine)
	}

	// The index endpoint serves the capture.
	resp2, body2 := getURL(t, hs.URL+"/debug/incidents")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/debug/incidents: %d", resp2.StatusCode)
	}
	if want := `"trigger":"slow"`; !strings.Contains(body2, want) {
		t.Fatalf("/debug/incidents body missing %s: %s", want, body2)
	}
	if got := s.reg.Counter("incident.captured").Value(); got != 1 {
		t.Fatalf("incident.captured = %d, want 1", got)
	}
}

// TestIncidentShedTriggerCapturesBundle pins the deterministic shed path:
// with MaxInflight 1, a batch's devices are admitted sequentially before
// any completes, so every device past the first sheds — and each shed
// spools a report-less bundle that still carries the payload for replay.
func TestIncidentShedTriggerCapturesBundle(t *testing.T) {
	dir := t.TempDir()
	_, hs, spec := newTestServer(t, func(cfg *Config) {
		cfg.IncidentDir = dir
		cfg.MaxInflight = 1
		cfg.SlowNS = func() int64 { return 1 << 62 } // never slow
	})
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G10", false)})
	br := &BatchRequest{Workload: "c17", Devices: []DeviceRequest{{Datalog: text}, {Datalog: text}, {Datalog: text}}}
	resp, body := postJSON(t, hs.URL+"/v1/diagnose/batch", br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}

	bundles := spooledBundles(t, dir)
	if len(bundles) != 2 {
		t.Fatalf("%d bundles spooled, want 2 (devices 1 and 2 shed)", len(bundles))
	}
	for i, b := range bundles {
		if b.Trigger != incident.TriggerShed || b.Status != http.StatusTooManyRequests {
			t.Fatalf("bundle %d trigger=%s status=%d, want shed/429", i, b.Trigger, b.Status)
		}
		if len(b.Report) != 0 {
			t.Fatalf("shed bundle %d carries a report", i)
		}
		if b.Datalog != text || b.Workload != "c17" {
			t.Fatalf("shed bundle %d payload mangled", i)
		}
		// Captured after the batch tree finished: the shared root span is
		// complete in the record.
		if b.Trace == nil {
			t.Fatalf("shed bundle %d has no trace", i)
		}
		if root := b.Trace.Root(); root == nil || root.Unfinished {
			t.Fatalf("shed bundle %d captured an unfinished tree", i)
		}
	}
}

// TestIncidentDeadlineTrigger pins the 504 path: a request whose deadline
// expires spools a deadline bundle.
func TestIncidentDeadlineTrigger(t *testing.T) {
	dir := t.TempDir()
	s, hs, spec := newTestServer(t, func(cfg *Config) {
		cfg.IncidentDir = dir
		cfg.SlowNS = func() int64 { return 1 << 62 }
	})
	block := make(chan struct{})
	s.testHookExecute = func(int) { <-block }
	defer close(block)
	_, text := deviceDatalog(t, spec, []defect.Defect{stuck(spec.Circuit, "G10", false)})
	resp, _ := postJSON(t, hs.URL+"/v1/diagnose", &DiagnoseRequest{Workload: "c17", Datalog: text, TimeoutMS: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	bundles := spooledBundles(t, dir)
	if len(bundles) != 1 || bundles[0].Trigger != incident.TriggerDeadline {
		t.Fatalf("want one deadline bundle, got %d: %+v", len(bundles), bundles)
	}
}

// TestSuccessTriggerClassification pins the 200-response classifier:
// quality outliers outrank slow, and a healthy fast response triggers
// nothing.
func TestSuccessTriggerClassification(t *testing.T) {
	never := func() int64 { return 1 << 62 }
	always := func() int64 { return 1 }
	req := &request{enqueued: time.Now().Add(-time.Millisecond)}
	cases := []struct {
		name   string
		rep    *Report
		slowNS func() int64
		want   string
	}{
		{"healthy", &Report{Report: volume.Report{Consistent: true}}, never, ""},
		{"slow", &Report{Report: volume.Report{Consistent: true}}, always, incident.TriggerSlow},
		{"inconsistent", &Report{Report: volume.Report{Consistent: false}}, never, incident.TriggerQuality},
		{"unexplained", &Report{Report: volume.Report{Consistent: true, UnexplainedBits: 3}}, never, incident.TriggerQuality},
		{"quality-beats-slow", &Report{Report: volume.Report{Consistent: false}}, always, incident.TriggerQuality},
		{"no-threshold-yet", &Report{Report: volume.Report{Consistent: true}}, func() int64 { return 0 }, ""},
	}
	for _, tc := range cases {
		s := &Server{slowNS: tc.slowNS}
		if got := s.successTrigger(tc.rep, req); got != tc.want {
			t.Errorf("%s: trigger %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestIncidentsEndpointDisarmed pins that without -incident-dir the
// endpoint 404s instead of serving an empty index.
func TestIncidentsEndpointDisarmed(t *testing.T) {
	_, hs, _ := newTestServer(t, nil)
	resp, _ := getURL(t, hs.URL+"/debug/incidents")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disarmed /debug/incidents: %d, want 404", resp.StatusCode)
	}
}

func getURL(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}
