package serve

import (
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"multidiag/internal/tester"
	"multidiag/internal/trace"
	"multidiag/internal/volume"
)

// ingestTop is the ranked-candidate tail bound for ingest-path reports,
// matching the interactive default so cached entries are interchangeable
// between paths.
const ingestTop = 10

// maxIngestErrors bounds the per-record error sample in the reply.
const maxIngestErrors = 8

// IngestReply is the POST /v1/ingest response: per-record outcome
// counts. Record order is preserved nowhere here — the deterministic
// view of an ingested fleet is GET /v1/volume/summary.
type IngestReply struct {
	// Records is every syntactically valid record seen; Deduped those
	// answered without their own engine run (cache hit or coalesced);
	// Diagnosed the engine runs; Shed the admission rejections; Failed
	// the per-record errors (bad workload, malformed datalog, engine
	// error).
	Records   int `json:"records"`
	Deduped   int `json:"deduped"`
	Diagnosed int `json:"diagnosed"`
	Shed      int `json:"shed"`
	Failed    int `json:"failed"`
	// Errors samples the first few per-record error messages.
	Errors []string `json:"errors,omitempty"`
}

// ingestBytesKey carries one record's admission byte weight from the
// ingest handler to the enqueue-and-wait DiagFunc below.
type ingestBytesKey struct{}

// shedError marks a dedupe miss that admission refused; the ingest
// handler counts it instead of failing the stream.
type shedError struct{ status int }

func (e *shedError) Error() string {
	return fmt.Sprintf("admission shed (%d %s)", e.status, http.StatusText(e.status))
}

// volumeDiag builds the workload's ingest DiagFunc: a dedupe miss is
// admitted like any interactive request — same inflight/bytes/queue
// caps, same micro-batcher (so concurrent distinct syndromes coalesce
// into shared scoring passes), same panic isolation — and the response's
// deterministic report core is what the fingerprint cache stores.
func (s *Server) volumeDiag(w *workload) volume.DiagFunc {
	return func(ctx context.Context, log *tester.Datalog) (*volume.Report, error) {
		bytes, _ := ctx.Value(ingestBytesKey{}).(int64)
		req := &request{
			ctx:      ctx,
			log:      log,
			top:      ingestTop,
			bytes:    bytes,
			enqueued: time.Now(),
			done:     make(chan response, 1),
		}
		if sc := trace.FromContext(ctx); sc.Enabled() {
			req.tree = sc.Tree()
			req.span = sc.Start("serve.ingest.diagnose")
			defer req.span.End()
		}
		req.queueSpan = req.span.Start("serve.queue")
		if status := s.admit(w, req); status != 0 {
			req.queueSpan.End()
			return nil, &shedError{status: status}
		}
		defer s.release(req)
		select {
		case resp := <-req.done:
			if resp.err != nil {
				return nil, resp.err
			}
			return &resp.report.Report, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// handleIngest streams a JSONL record stream (see volume.Record; gzip
// bodies accepted via Content-Encoding) through each workload's dedupe
// front. The reader stays bounded-memory: records fan into a window of
// worker goroutines and the stream is read no faster than the window
// drains; past the window, admission caps shed per record (partial
// ingest answers 200 with counts; a fully shed stream answers 429 with
// Retry-After, the client's signal to back off and resend).
func (s *Server) handleIngest(rw http.ResponseWriter, r *http.Request) {
	defaultWl := r.URL.Query().Get("workload")
	body := http.MaxBytesReader(rw, r.Body, maxRequestBytes)
	var stream = body
	if r.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(body)
		if err != nil {
			httpError(rw, http.StatusBadRequest, fmt.Sprintf("bad gzip body: %v", err))
			return
		}
		defer gz.Close()
		stream = gz
	}

	tree, root := s.startTrace(rw, r, "/v1/ingest", defaultWl)
	ctx, cancel := s.requestContext(trace.WithSpan(r.Context(), root), 0)
	defer cancel()

	var (
		mu        sync.Mutex
		reply     IngestReply
		shedCode  int
		wg        sync.WaitGroup
		window    = make(chan struct{}, s.cfg.MaxInflight)
		tsModes   = map[string]int{} // workload → 1 ordinal, 2 timestamp
		failLocal = func(line int, err error) {
			mu.Lock()
			reply.Failed++
			if len(reply.Errors) < maxIngestErrors {
				reply.Errors = append(reply.Errors, fmt.Sprintf("line %d: %v", line, err))
			}
			mu.Unlock()
		}
	)
	rr := volume.NewRecordReader(stream)
	for {
		rec, n, err := rr.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				failLocal(rr.Line(), err)
			}
			break
		}
		reply.Records++ // reader-side; workers never touch it
		name := rec.Workload
		if name == "" {
			name = defaultWl
		}
		w, ok := s.workloads[name]
		if !ok {
			failLocal(rr.Line(), fmt.Errorf("unknown workload %q (see /v1/workloads)", name))
			continue
		}
		mode := 1
		if rec.TS != 0 {
			mode = 2
		}
		if prev, seen := tsModes[name]; !seen {
			tsModes[name] = mode
		} else if prev != mode {
			failLocal(rr.Line(), fmt.Errorf("stream mixes timestamped and untimestamped records"))
			continue
		}
		log, err := rec.BuildDatalog(w.c, len(w.pats))
		if err != nil {
			failLocal(rr.Line(), err)
			continue
		}
		ord := w.volOrd.Add(1) - 1
		bucket := ord / int64(s.cfg.VolumeTrendBucket)
		if mode == 2 {
			bucket = rec.TS / int64(s.cfg.VolumeTrendBucket)
		}
		s.reg.Counter("serve.ingest_records").Inc()

		acquired := false
		select {
		case window <- struct{}{}:
			acquired = true
		case <-ctx.Done():
		}
		if !acquired {
			failLocal(rr.Line(), ctx.Err())
			break
		}
		wg.Add(1)
		go func(rec *volume.Record, log *tester.Datalog, bucket, bytes int64) {
			defer wg.Done()
			defer func() { <-window }()
			dctx := context.WithValue(ctx, ingestBytesKey{}, bytes)
			entry, hit, err := w.vol.Process(dctx, log)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if se, ok := err.(*shedError); ok {
					reply.Shed++
					if shedCode == 0 {
						shedCode = se.status
					}
					return
				}
				reply.Failed++
				if len(reply.Errors) < maxIngestErrors {
					reply.Errors = append(reply.Errors, fmt.Sprintf("device %q: %v", rec.DeviceID, err))
				}
				return
			}
			if hit {
				reply.Deduped++
			} else {
				reply.Diagnosed++
			}
			w.volAgg.Add(rec.Site, bucket, entry)
		}(rec, log, bucket, int64(n))
	}
	wg.Wait()

	status := http.StatusOK
	switch {
	case reply.Records == 0:
		s.finishTrace(tree, root, http.StatusBadRequest)
		httpError(rw, http.StatusBadRequest, "ingest stream carries no records")
		return
	case reply.Shed == reply.Records:
		// Nothing got through: tell the client to back off and resend the
		// whole stream.
		status = shedCode
		tree.Flag("shed")
		s.noteFlagged("shed", r.Header.Get("X-Request-ID"))
		if status == http.StatusTooManyRequests {
			rw.Header().Set("Retry-After", "1")
		}
	}
	s.finishTrace(tree, root, status)
	writeJSON(rw, status, &reply)
}

// handleVolumeSummary emits a workload's fleet aggregate — the
// deterministic JSON the CLI's -summary-out also writes, so the two
// ingest paths diff cleanly (the vol-smoke gate does exactly that).
func (s *Server) handleVolumeSummary(rw http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("workload")
	w, ok := s.workloads[name]
	if !ok {
		httpError(rw, http.StatusNotFound, fmt.Sprintf("unknown workload %q (see /v1/workloads)", name))
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	if err := volume.WriteSummary(rw, w.volAgg.Summary()); err != nil {
		s.reg.Counter("serve.errors").Inc()
	}
}
