package seqdiag

import (
	"math/rand"
	"strings"
	"testing"

	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

const counterBench = `
INPUT(en)
OUTPUT(out)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(q0, en)
t  = AND(q0, en)
d1 = XOR(q1, t)
out = AND(q1, q0)
`

func counter(t *testing.T) *netlist.SeqCircuit {
	t.Helper()
	s, err := netlist.ParseBenchSeq("cnt", strings.NewReader(counterBench))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomSequences builds n random k-cycle stimuli with a known-zero reset
// state.
func randomSequences(seq *netlist.SeqCircuit, n, k int, seed int64) []Sequence {
	r := rand.New(rand.NewSource(seed))
	out := make([]Sequence, n)
	for i := range out {
		init := make([]logic.Value, seq.NumFFs())
		for j := range init {
			init[j] = logic.FromBool(r.Intn(2) == 1)
		}
		cycles := make([]sim.Pattern, k)
		for f := range cycles {
			p := make(sim.Pattern, len(seq.RealPIs))
			for j := range p {
				p[j] = logic.FromBool(r.Intn(2) == 1)
			}
			cycles[f] = p
		}
		out[i] = Sequence{InitState: init, Cycles: cycles}
	}
	return out
}

func TestApplySequencesCleanDevice(t *testing.T) {
	seq := counter(t)
	sequences := randomSequences(seq, 8, 5, 1)
	clean := seq.Comb.Clone()
	if err := clean.Finalize(); err != nil {
		t.Fatal(err)
	}
	log, err := ApplySequences(seq, clean, sequences)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) != 0 {
		t.Fatal("clean device failed sequences")
	}
}

func TestSequentialDiagnoseStuck(t *testing.T) {
	seq := counter(t)
	sequences := randomSequences(seq, 12, 5, 2)
	target := seq.Comb.NetByName("t")
	deviceCore, err := defect.Inject(seq.Comb, []defect.Defect{
		{Kind: defect.StuckNet, Net: target, Value1: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	log, err := ApplySequences(seq, deviceCore, sequences)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("not activated")
	}
	res, u, err := Diagnose(seq, sequences, log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Frames != 5 {
		t.Fatalf("frames = %d", u.Frames)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no folded candidates")
	}
	// Accept the site or an adjacent core net (folding preserves the
	// combinational equivalence behaviour).
	accept := map[netlist.NetID]bool{target: true}
	for _, f := range seq.Comb.Gates[target].Fanin {
		accept[f] = true
	}
	for _, rd := range seq.Comb.Gates[target].Fanout {
		accept[rd] = true
	}
	hit := false
	for _, nets := range res.Nets() {
		for _, n := range nets {
			if accept[n] {
				hit = true
			}
		}
	}
	if !hit {
		names := []string{}
		for _, cd := range res.Candidates {
			names = append(names, seq.Comb.NameOf(cd.Net))
		}
		t.Fatalf("target t not localized; folded: %v", names)
	}
	// Frame folding: the top candidate should be implicated in ≥1 frame
	// with sorted frame list.
	top := res.Candidates[0]
	for i := 1; i < len(top.Frames); i++ {
		if top.Frames[i] < top.Frames[i-1] {
			t.Fatal("frames unsorted")
		}
	}
}

// TestSequentialDefectOnStateOutput: a defect rewiring a state-output PO
// (the d1 next-state net) must still be modelled — this exercises the
// positional PO remapping in ApplySequences.
func TestSequentialDefectOnStateOutput(t *testing.T) {
	seq := counter(t)
	sequences := randomSequences(seq, 10, 4, 3)
	// d1 drives q1_si (a pseudo-PO).
	target := seq.Comb.NetByName("d1")
	deviceCore, err := defect.Inject(seq.Comb, []defect.Defect{
		{Kind: defect.StuckNet, Net: target, Value1: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	log, err := ApplySequences(seq, deviceCore, sequences)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Fatal("state-output defect produced no failures — PO remapping broken")
	}
	res, _, err := Diagnose(seq, sequences, log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
}

func TestSequenceValidation(t *testing.T) {
	seq := counter(t)
	if _, _, err := Diagnose(seq, nil, nil, core.Config{}); err == nil {
		t.Error("empty sequences accepted")
	}
	// Mismatched cycle counts.
	ss := randomSequences(seq, 2, 3, 4)
	ss[1].Cycles = ss[1].Cycles[:2]
	if _, _, err := Diagnose(seq, ss, nil, core.Config{}); err == nil {
		t.Error("ragged sequences accepted")
	}
	// Bad init width.
	ss2 := randomSequences(seq, 1, 3, 5)
	ss2[0].InitState = ss2[0].InitState[:1]
	clean := seq.Comb.Clone()
	if err := clean.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplySequences(seq, clean, ss2); err == nil {
		t.Error("bad init width accepted")
	}
}

// TestUnknownPowerOnState: diagnosis must work with a partially unknown
// initial state (the X-masking in simulation handles the unknown values;
// an all-X state would keep this reset-free counter permanently unknown,
// so one flip-flop stays controlled).
func TestUnknownPowerOnState(t *testing.T) {
	seq := counter(t)
	sequences := randomSequences(seq, 12, 6, 7)
	for i := range sequences {
		sequences[i].InitState[1] = logic.X // q1 unknown, q0 controlled
	}
	target := seq.Comb.NetByName("d0")
	deviceCore, err := defect.Inject(seq.Comb, []defect.Defect{
		{Kind: defect.StuckNet, Net: target, Value1: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	log, err := ApplySequences(seq, deviceCore, sequences)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("not activated under unknown power-on state")
	}
	res, _, err := Diagnose(seq, sequences, log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// X initial state weakens extraction (patterns with X are skipped for
	// CPT) but the engine must not crash or claim consistency it lacks.
	_ = res
}
