// Package seqdiag diagnoses non-scan sequential circuits through
// time-frame expansion: the sequential design (combinational core +
// flip-flops) is unrolled over the test-sequence length, the physical
// defect is understood to be present in *every* frame, and the standard
// no-assumption engine runs on the unrolled model. Candidates are folded
// back from (frame, net) space to core nets, merging the per-frame copies
// of the same physical site.
//
// Test stimuli are sequences: one per-cycle input vector each. The
// power-on state is exposed as explicit frame-0 inputs; pass X for an
// unknown state or drive it for resettable designs.
package seqdiag

import (
	"fmt"
	"sort"
	"time"

	"multidiag/internal/core"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// Sequence is one multi-cycle stimulus: InitState has one value per
// flip-flop (X = unknown power-on), Cycles one input vector per frame.
type Sequence struct {
	InitState []logic.Value
	Cycles    []sim.Pattern
}

// Flatten maps the sequence onto the unrolled circuit's PI ordering.
func (s Sequence) flatten(u *netlist.Unrolled) (sim.Pattern, error) {
	if len(s.Cycles) != u.Frames {
		return nil, fmt.Errorf("seqdiag: sequence has %d cycles, model has %d frames", len(s.Cycles), u.Frames)
	}
	if len(s.InitState) != len(u.InitStatePIs) {
		return nil, fmt.Errorf("seqdiag: init state width %d, want %d", len(s.InitState), len(u.InitStatePIs))
	}
	vals := make(map[netlist.NetID]logic.Value, len(u.Circuit.PIs))
	for i, pi := range u.InitStatePIs {
		vals[pi] = s.InitState[i]
	}
	for f, cyc := range s.Cycles {
		if len(cyc) != len(u.FramePIs[f]) {
			return nil, fmt.Errorf("seqdiag: cycle %d width %d, want %d", f, len(cyc), len(u.FramePIs[f]))
		}
		for i, pi := range u.FramePIs[f] {
			vals[pi] = cyc[i]
		}
	}
	out := make(sim.Pattern, len(u.Circuit.PIs))
	for i, pi := range u.Circuit.PIs {
		v, ok := vals[pi]
		if !ok {
			v = logic.X
		}
		out[i] = v
	}
	return out, nil
}

// CoreCandidate is one folded suspect: a core net with the frames in which
// its copies were implicated and the aggregated evidence counts.
type CoreCandidate struct {
	Net        netlist.NetID
	StuckOne   bool
	Frames     []int
	TFSF, TPSF int
	// Equivalent core nets (folded from unrolled equivalence classes).
	Equivalent []netlist.NetID
}

// Result is the sequential diagnosis outcome.
type Result struct {
	// Unrolled is the raw combinational result on the expanded model.
	Unrolled *core.Result
	// Candidates are the folded core-net suspects, best first.
	Candidates []CoreCandidate
	Elapsed    time.Duration
}

// Nets adapts the folded candidates for metric scoring.
func (r *Result) Nets() [][]netlist.NetID {
	out := make([][]netlist.NetID, len(r.Candidates))
	for i, cd := range r.Candidates {
		nets := []netlist.NetID{cd.Net}
		nets = append(nets, cd.Equivalent...)
		out[i] = nets
	}
	return out
}

// Diagnose runs the no-assumption engine on the unrolled model and folds
// the multiplet back to core nets. All sequences must have the same length
// (pad shorter ones with idle cycles before calling); the unrolled model
// uses that common length.
func Diagnose(seq *netlist.SeqCircuit, sequences []Sequence, log *tester.Datalog, cfg core.Config) (*Result, *netlist.Unrolled, error) {
	out := &Result{}
	defer obs.Global().Span("seqdiag.diagnose").EndInto(&out.Elapsed)
	if len(sequences) == 0 {
		return nil, nil, fmt.Errorf("seqdiag: no sequences")
	}
	frames := len(sequences[0].Cycles)
	for i, s := range sequences {
		if len(s.Cycles) != frames {
			return nil, nil, fmt.Errorf("seqdiag: sequence %d has %d cycles, want %d", i, len(s.Cycles), frames)
		}
	}
	u, err := seq.Unroll(frames)
	if err != nil {
		return nil, nil, err
	}
	pats := make([]sim.Pattern, len(sequences))
	for i, s := range sequences {
		p, err := s.flatten(u)
		if err != nil {
			return nil, nil, err
		}
		pats[i] = p
	}
	res, err := core.Diagnose(u.Circuit, pats, log, cfg)
	if err != nil {
		return nil, nil, err
	}
	out.Unrolled = res

	type key struct {
		net netlist.NetID
		v1  bool
	}
	folded := map[key]*CoreCandidate{}
	order := []key{}
	for _, cd := range res.Multiplet {
		on, ok := u.CoreNetOf(cd.Fault.Net)
		if !ok {
			continue
		}
		k := key{on.Orig, cd.Fault.Value1}
		fc := folded[k]
		if fc == nil {
			fc = &CoreCandidate{Net: on.Orig, StuckOne: cd.Fault.Value1}
			folded[k] = fc
			order = append(order, k)
		}
		fc.Frames = append(fc.Frames, on.Frame)
		fc.TFSF += cd.TFSF
		fc.TPSF += cd.TPSF
		seenEq := map[netlist.NetID]bool{fc.Net: true}
		for _, e := range fc.Equivalent {
			seenEq[e] = true
		}
		for _, e := range cd.Equivalent {
			if eo, ok := u.CoreNetOf(e.Net); ok && !seenEq[eo.Orig] {
				seenEq[eo.Orig] = true
				fc.Equivalent = append(fc.Equivalent, eo.Orig)
			}
		}
	}
	for _, k := range order {
		fc := folded[k]
		sort.Ints(fc.Frames)
		sort.Slice(fc.Equivalent, func(i, j int) bool { return fc.Equivalent[i] < fc.Equivalent[j] })
		out.Candidates = append(out.Candidates, *fc)
	}
	sort.SliceStable(out.Candidates, func(i, j int) bool {
		return out.Candidates[i].TFSF > out.Candidates[j].TFSF
	})
	return out, u, nil
}

// ApplySequences runs the test sequences against a defective *core*
// variant (the defect present in every frame) and returns the datalog in
// unrolled-pattern space. deviceCore must have the same interface as the
// fault-free core. This is the simulation-side tester for experiments; a
// real deployment replaces it with ATE data.
func ApplySequences(seq *netlist.SeqCircuit, deviceCore *netlist.Circuit, sequences []Sequence) (*tester.Datalog, error) {
	if len(sequences) == 0 {
		return nil, fmt.Errorf("seqdiag: no sequences")
	}
	frames := len(sequences[0].Cycles)
	uGood, err := seq.Unroll(frames)
	if err != nil {
		return nil, err
	}
	// Defect injection preserves PI net ids and PO *ordering* but may remap
	// a PO to a replacement net, so the device's state/real outputs are
	// recovered positionally from its PO list rather than copied by id.
	poPos := make(map[netlist.NetID]int, len(seq.Comb.POs))
	for i, po := range seq.Comb.POs {
		poPos[po] = i
	}
	if len(deviceCore.POs) != len(seq.Comb.POs) || len(deviceCore.PIs) != len(seq.Comb.PIs) {
		return nil, fmt.Errorf("seqdiag: device interface differs from the design")
	}
	mapPO := func(orig netlist.NetID) netlist.NetID {
		return deviceCore.POs[poPos[orig]]
	}
	devSeq := &netlist.SeqCircuit{
		Comb:    deviceCore,
		StateIn: seq.StateIn,
		RealPIs: seq.RealPIs,
	}
	for _, so := range seq.StateOut {
		devSeq.StateOut = append(devSeq.StateOut, mapPO(so))
	}
	for _, po := range seq.RealPOs {
		devSeq.RealPOs = append(devSeq.RealPOs, mapPO(po))
	}
	uBad, err := devSeq.Unroll(frames)
	if err != nil {
		return nil, err
	}
	pats := make([]sim.Pattern, len(sequences))
	for i, s := range sequences {
		p, err := s.flatten(uGood)
		if err != nil {
			return nil, err
		}
		pats[i] = p
	}
	// The two unrolled circuits share PI ordering by construction (same
	// core PI list, same frame loop), so the same flat patterns apply.
	return tester.ApplyTest(uGood.Circuit, uBad.Circuit, pats)
}
