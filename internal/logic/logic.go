// Package logic provides the logic-value domains used throughout multidiag:
// plain Boolean values, three-valued (0/1/X) logic for unknown-value
// analysis, and 64-way bit-parallel packed vectors used by the levelized
// simulators and the PPSFP fault simulator.
//
// The three-valued domain is encoded in two bit-planes per signal, the
// classic (v0, v1) dual-rail encoding:
//
//	value 0 : v0=1, v1=0
//	value 1 : v0=0, v1=1
//	value X : v0=1, v1=1   (could be either)
//
// The encoding (v0=0, v1=0) is unused and normalized to X on input. With
// this encoding every standard gate is computed with one or two word-wide
// boolean operations per bit-plane, so a single gate evaluation processes 64
// patterns at once.
package logic

import "fmt"

// Value is a scalar three-valued logic value.
type Value uint8

// The three logic values. Zero and One are the determinate values; X is the
// unknown (either) value used by X-masking analysis and uninitialized nets.
const (
	Zero Value = iota
	One
	X
)

// String returns "0", "1" or "X".
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

// FromBool converts a Boolean to a determinate Value.
func FromBool(b bool) Value {
	if b {
		return One
	}
	return Zero
}

// IsKnown reports whether v is 0 or 1 (not X).
func (v Value) IsKnown() bool { return v == Zero || v == One }

// Not returns the three-valued complement: X stays X.
func (v Value) Not() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// And returns the three-valued conjunction. A controlling 0 dominates X.
func (v Value) And(w Value) Value {
	if v == Zero || w == Zero {
		return Zero
	}
	if v == One && w == One {
		return One
	}
	return X
}

// Or returns the three-valued disjunction. A controlling 1 dominates X.
func (v Value) Or(w Value) Value {
	if v == One || w == One {
		return One
	}
	if v == Zero && w == Zero {
		return Zero
	}
	return X
}

// Xor returns the three-valued exclusive or; any X input yields X.
func (v Value) Xor(w Value) Value {
	if v == X || w == X {
		return X
	}
	if v != w {
		return One
	}
	return Zero
}

// ParseValue parses "0", "1", "x" or "X".
func ParseValue(s string) (Value, error) {
	switch s {
	case "0":
		return Zero, nil
	case "1":
		return One, nil
	case "x", "X":
		return X, nil
	}
	return X, fmt.Errorf("logic: invalid value %q", s)
}
