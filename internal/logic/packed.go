package logic

import "math/bits"

// W is the number of patterns processed in parallel by one packed word.
const W = 64

// PV64 is a packed vector of 64 three-valued signals in dual-rail encoding.
// Bit i of V0 is set when pattern i may be 0; bit i of V1 is set when
// pattern i may be 1. Both set means X. Neither set is an illegal state that
// the constructors never produce; Normalize maps it to X defensively.
type PV64 struct {
	V0, V1 uint64
}

// PVZero, PVOne and PVX are packed constants with all 64 slots set to the
// same value.
var (
	PVZero = PV64{V0: ^uint64(0)}
	PVOne  = PV64{V1: ^uint64(0)}
	PVX    = PV64{V0: ^uint64(0), V1: ^uint64(0)}
)

// PVFromBits builds a determinate packed vector from a bitmask of ones.
func PVFromBits(ones uint64) PV64 {
	return PV64{V0: ^ones, V1: ones}
}

// Bits returns the bitmask of slots holding value 1. Slots holding X report
// 0 here; use XMask to identify them.
func (p PV64) Bits() uint64 { return p.V1 &^ p.V0 }

// XMask returns the bitmask of slots holding X.
func (p PV64) XMask() uint64 { return p.V0 & p.V1 }

// KnownMask returns the bitmask of slots holding a determinate 0 or 1.
func (p PV64) KnownMask() uint64 { return p.V0 ^ p.V1 }

// Get returns the value of slot i (0 ≤ i < 64).
func (p PV64) Get(i uint) Value {
	z := p.V0 >> i & 1
	o := p.V1 >> i & 1
	switch {
	case z == 1 && o == 0:
		return Zero
	case z == 0 && o == 1:
		return One
	default:
		return X
	}
}

// Set stores v into slot i and returns the updated vector.
func (p PV64) Set(i uint, v Value) PV64 {
	m := uint64(1) << i
	p.V0 &^= m
	p.V1 &^= m
	switch v {
	case Zero:
		p.V0 |= m
	case One:
		p.V1 |= m
	default:
		p.V0 |= m
		p.V1 |= m
	}
	return p
}

// Normalize maps any illegal (0,0)-encoded slots to X.
func (p PV64) Normalize() PV64 {
	empty := ^(p.V0 | p.V1)
	p.V0 |= empty
	p.V1 |= empty
	return p
}

// Not returns the slot-wise three-valued complement.
func (p PV64) Not() PV64 { return PV64{V0: p.V1, V1: p.V0} }

// And returns the slot-wise three-valued conjunction.
func (p PV64) And(q PV64) PV64 {
	return PV64{V0: p.V0 | q.V0, V1: p.V1 & q.V1}
}

// Or returns the slot-wise three-valued disjunction.
func (p PV64) Or(q PV64) PV64 {
	return PV64{V0: p.V0 & q.V0, V1: p.V1 | q.V1}
}

// Xor returns the slot-wise three-valued exclusive or.
func (p PV64) Xor(q PV64) PV64 {
	return PV64{
		V0: p.V0&q.V0 | p.V1&q.V1,
		V1: p.V0&q.V1 | p.V1&q.V0,
	}
}

// Eq reports slot-wise determinate equality: the returned mask has bit i set
// when both slots are known and equal.
func (p PV64) Eq(q PV64) uint64 {
	same := ^(p.Bits() ^ q.Bits())
	return same & p.KnownMask() & q.KnownMask()
}

// DiffKnown returns the mask of slots where both vectors are determinate and
// the values differ. This is the mismatch detector used by fault simulation.
func (p PV64) DiffKnown(q PV64) uint64 {
	return (p.Bits() ^ q.Bits()) & p.KnownMask() & q.KnownMask()
}

// CountOnes returns the number of slots holding a determinate 1.
func (p PV64) CountOnes() int { return bits.OnesCount64(p.Bits()) }

// String renders the 64 slots, slot 0 first.
func (p PV64) String() string {
	b := make([]byte, W)
	for i := uint(0); i < W; i++ {
		b[i] = p.Get(i).String()[0]
	}
	return string(b)
}
