package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := map[Value]string{Zero: "0", One: "1", X: "X", Value(9): "Value(9)"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Value(%d).String() = %q, want %q", v, got, want)
		}
	}
}

func TestScalarTruthTables(t *testing.T) {
	vals := []Value{Zero, One, X}
	for _, a := range vals {
		for _, b := range vals {
			and := a.And(b)
			or := a.Or(b)
			xor := a.Xor(b)
			// Controlling values dominate X.
			if a == Zero || b == Zero {
				if and != Zero {
					t.Errorf("%v AND %v = %v, want 0", a, b, and)
				}
			}
			if a == One || b == One {
				if or != One {
					t.Errorf("%v OR %v = %v, want 1", a, b, or)
				}
			}
			if a.IsKnown() && b.IsKnown() {
				if and != FromBool(a == One && b == One) {
					t.Errorf("AND(%v,%v) wrong", a, b)
				}
				if or != FromBool(a == One || b == One) {
					t.Errorf("OR(%v,%v) wrong", a, b)
				}
				if xor != FromBool(a != b) {
					t.Errorf("XOR(%v,%v) wrong", a, b)
				}
			} else if a == X && b == X {
				if and != X || or != X || xor != X {
					t.Errorf("X op X must be X (and=%v or=%v xor=%v)", and, or, xor)
				}
			}
			// Commutativity.
			if and != b.And(a) || or != b.Or(a) || xor != b.Xor(a) {
				t.Errorf("ops not commutative at (%v,%v)", a, b)
			}
		}
	}
}

func TestScalarNot(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Fatal("Not truth table wrong")
	}
	for _, v := range []Value{Zero, One, X} {
		if v.Not().Not() != v {
			t.Errorf("double negation broken for %v", v)
		}
	}
}

func TestParseValue(t *testing.T) {
	for s, want := range map[string]Value{"0": Zero, "1": One, "x": X, "X": X} {
		got, err := ParseValue(s)
		if err != nil || got != want {
			t.Errorf("ParseValue(%q) = %v,%v want %v", s, got, err, want)
		}
	}
	if _, err := ParseValue("2"); err == nil {
		t.Error("ParseValue(2) should fail")
	}
	if _, err := ParseValue(""); err == nil {
		t.Error("ParseValue empty should fail")
	}
}

func TestPackedConstants(t *testing.T) {
	for i := uint(0); i < W; i++ {
		if PVZero.Get(i) != Zero {
			t.Fatalf("PVZero slot %d = %v", i, PVZero.Get(i))
		}
		if PVOne.Get(i) != One {
			t.Fatalf("PVOne slot %d = %v", i, PVOne.Get(i))
		}
		if PVX.Get(i) != X {
			t.Fatalf("PVX slot %d = %v", i, PVX.Get(i))
		}
	}
}

func TestPackedSetGet(t *testing.T) {
	p := PVZero
	p = p.Set(3, One).Set(7, X).Set(63, One)
	if p.Get(3) != One || p.Get(7) != X || p.Get(63) != One || p.Get(0) != Zero {
		t.Fatalf("Set/Get mismatch: %v", p)
	}
	if p.XMask() != 1<<7 {
		t.Fatalf("XMask = %x", p.XMask())
	}
	if p.Bits() != 1<<3|1<<63 {
		t.Fatalf("Bits = %x", p.Bits())
	}
	if p.KnownMask() != ^uint64(1<<7) {
		t.Fatalf("KnownMask = %x", p.KnownMask())
	}
}

func TestPVFromBits(t *testing.T) {
	p := PVFromBits(0xF0)
	if p.Bits() != 0xF0 || p.XMask() != 0 {
		t.Fatalf("PVFromBits wrong: %+v", p)
	}
	if p.Get(4) != One || p.Get(0) != Zero {
		t.Fatal("slot values wrong")
	}
}

func TestNormalize(t *testing.T) {
	bad := PV64{V0: 0, V1: 0} // all slots illegal
	n := bad.Normalize()
	for i := uint(0); i < W; i++ {
		if n.Get(i) != X {
			t.Fatalf("Normalize slot %d = %v, want X", i, n.Get(i))
		}
	}
	good := PVFromBits(0xAA)
	if good.Normalize() != good {
		t.Fatal("Normalize must not change legal vectors")
	}
}

// randPV produces a random packed vector with legal slots only.
func randPV(r *rand.Rand) PV64 {
	var p PV64
	for i := uint(0); i < W; i++ {
		p = p.Set(i, Value(r.Intn(3)))
	}
	return p
}

// TestPackedMatchesScalar is the central property test: every packed
// operator must agree slot-by-slot with the scalar three-valued operator.
func TestPackedMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p, q := randPV(r), randPV(r)
		and, or, xor, not := p.And(q), p.Or(q), p.Xor(q), p.Not()
		for i := uint(0); i < W; i++ {
			a, b := p.Get(i), q.Get(i)
			if and.Get(i) != a.And(b) {
				t.Fatalf("AND slot %d: packed %v scalar %v", i, and.Get(i), a.And(b))
			}
			if or.Get(i) != a.Or(b) {
				t.Fatalf("OR slot %d: packed %v scalar %v", i, or.Get(i), a.Or(b))
			}
			if xor.Get(i) != a.Xor(b) {
				t.Fatalf("XOR slot %d: packed %v scalar %v", i, xor.Get(i), a.Xor(b))
			}
			if not.Get(i) != a.Not() {
				t.Fatalf("NOT slot %d: packed %v scalar %v", i, not.Get(i), a.Not())
			}
		}
	}
}

func TestPackedDeMorgan(t *testing.T) {
	// De Morgan's laws hold in three-valued logic; verify on packed vectors
	// with testing/quick over the determinate sub-domain.
	f := func(a, b uint64) bool {
		p, q := PVFromBits(a), PVFromBits(b)
		lhs := p.And(q).Not()
		rhs := p.Not().Or(q.Not())
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiffKnown(t *testing.T) {
	p := PVFromBits(0b1100)
	q := PVFromBits(0b1010)
	if d := p.DiffKnown(q); d != 0b0110 {
		t.Fatalf("DiffKnown = %b", d)
	}
	// X slots never count as differences.
	px := p.Set(1, X)
	if d := px.DiffKnown(q); d != 0b0100 {
		t.Fatalf("DiffKnown with X = %b", d)
	}
}

func TestEq(t *testing.T) {
	p := PVFromBits(0b11)
	q := PVFromBits(0b01)
	if e := p.Eq(q); e != ^uint64(0b10) {
		t.Fatalf("Eq = %x", e)
	}
	// X never equals anything determinately.
	px := p.Set(0, X)
	if e := px.Eq(q); e&1 != 0 {
		t.Fatal("X slot reported equal")
	}
}

func TestCountOnes(t *testing.T) {
	p := PVFromBits(0xFF).Set(0, X)
	if n := p.CountOnes(); n != 7 {
		t.Fatalf("CountOnes = %d, want 7", n)
	}
}

func TestPackedString(t *testing.T) {
	p := PVZero.Set(0, One).Set(1, X)
	s := p.String()
	if len(s) != W || s[0] != '1' || s[1] != 'X' || s[2] != '0' {
		t.Fatalf("String = %q", s)
	}
}
