// Package cio provides the file-level circuit I/O shared by the command
// line tools: format auto-detection (.bench vs structural Verilog) and
// optional full-scan conversion of sequential netlists.
package cio

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"multidiag/internal/netlist"
)

// Format identifies a netlist file format.
type Format uint8

// Supported formats.
const (
	FormatAuto Format = iota
	FormatBench
	FormatVerilog
)

// DetectFormat guesses from the extension, falling back to content
// sniffing (a leading "module" keyword means Verilog).
func DetectFormat(path string, head []byte) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".v", ".sv", ".vg":
		return FormatVerilog
	case ".bench", ".isc":
		return FormatBench
	}
	text := strings.TrimSpace(string(head))
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "module") || strings.HasPrefix(line, "/*") {
			return FormatVerilog
		}
		return FormatBench
	}
	return FormatBench
}

// LoadCircuit reads a netlist file in either format. When scan is true,
// DFF cells are converted to their full-scan combinational equivalent; the
// returned count is the number of converted flip-flops (0 for pure
// combinational input).
func LoadCircuit(path string, scan bool) (*netlist.Circuit, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, _ := br.Peek(4096)
	format := DetectFormat(path, head)
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch format {
	case FormatVerilog:
		if scan {
			return netlist.ParseVerilogScan(name, br)
		}
		c, err := netlist.ParseVerilog(name, br)
		return c, 0, err
	default:
		if scan {
			return netlist.ParseBenchScan(name, br)
		}
		c, err := netlist.ParseBench(name, br)
		return c, 0, err
	}
}

// SaveCircuit writes the circuit in the format implied by the path
// extension (.v → Verilog, anything else → .bench).
func SaveCircuit(path string, c *netlist.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".v", ".sv", ".vg":
		return netlist.WriteVerilog(f, c)
	default:
		return netlist.WriteBench(f, c)
	}
}

// MustLoad is LoadCircuit for CLI mains: it exits with a message on error.
func MustLoad(tool, path string, scan bool) (*netlist.Circuit, int) {
	c, ffs, err := LoadCircuit(path, scan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
	return c, ffs
}
