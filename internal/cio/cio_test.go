package cio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/netlist"
)

func TestDetectFormat(t *testing.T) {
	cases := []struct {
		path string
		head string
		want Format
	}{
		{"a.v", "", FormatVerilog},
		{"a.sv", "", FormatVerilog},
		{"a.bench", "", FormatBench},
		{"a.isc", "", FormatBench},
		{"a.txt", "module m (a);", FormatVerilog},
		{"a.txt", "// hi\nmodule m (a);", FormatVerilog},
		{"a.txt", "# bench comment\nINPUT(a)", FormatBench},
		{"a.txt", "INPUT(a)", FormatBench},
		{"a.txt", "", FormatBench},
	}
	for _, tc := range cases {
		if got := DetectFormat(tc.path, []byte(tc.head)); got != tc.want {
			t.Errorf("DetectFormat(%q, %q) = %v want %v", tc.path, tc.head, got, tc.want)
		}
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := circuits.C17()
	for _, ext := range []string{".bench", ".v"} {
		path := filepath.Join(dir, "c17"+ext)
		if err := SaveCircuit(path, orig); err != nil {
			t.Fatal(err)
		}
		c, ffs, err := LoadCircuit(path, false)
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		if ffs != 0 {
			t.Errorf("%s: unexpected ffs %d", ext, ffs)
		}
		if c.NumGates() != orig.NumGates() || c.MaxLevel() != orig.MaxLevel() {
			t.Errorf("%s: structure changed", ext)
		}
	}
}

func TestLoadScanBothFormats(t *testing.T) {
	dir := t.TempDir()
	benchSrc := "INPUT(a)\nOUTPUT(z)\nq = DFF(d)\nd = AND(a, q)\nz = NOT(q)\n"
	vSrc := "module m (a, z);\n input a;\n output z;\n dff f (q, d);\n and g (d, a, q);\n not h (z, q);\nendmodule\n"
	for name, src := range map[string]string{"s.bench": benchSrc, "s.v": vSrc} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		c, ffs, err := LoadCircuit(path, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ffs != 1 {
			t.Errorf("%s: ffs = %d", name, ffs)
		}
		if c.NetByName("q_si") == netlist.InvalidNet {
			t.Errorf("%s: scan conversion missing", name)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := LoadCircuit("/nonexistent/file.bench", false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadMalformed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bench")
	if err := os.WriteFile(path, []byte("INPUT(a)\nz = FROB(a)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCircuit(path, false); err == nil {
		t.Fatal("malformed netlist accepted")
	}
	if !strings.Contains(strings.ToLower(filepath.Ext(path)), "bench") {
		t.Skip()
	}
}
