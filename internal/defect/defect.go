// Package defect injects physical-defect models into a circuit copy and
// produces the "device under test" the tester package measures.
//
// Defects are injected structurally, not as simulator overrides, so that
// *multiple simultaneous defects interact exactly as they would in one
// physical device*: a defect can mask, unmask or combine with another
// through the ordinary logic of the modified netlist. This emergent
// interaction — failing patterns whose syndrome is not the union of the
// individual defect syndromes — is precisely the behaviour the no-assumption
// diagnosis method must survive, so the injector must not idealize it away.
//
// Supported defect mechanisms (see fault package for the matching models):
//
//   - StuckNet: a net shorted to VDD/GND (fault.StuckAt behaviour);
//   - OpenNet: a broken interconnect whose floating downstream node reads a
//     fixed value (fault.Open behaviour, stuck-value approximation);
//   - BridgeDefect: a resistive short between two nets with dominant,
//     wired-AND or wired-OR behaviour.
package defect

import (
	"fmt"
	"math/rand"
	"sort"

	"multidiag/internal/fault"
	"multidiag/internal/netlist"
	"multidiag/internal/place"
)

// Kind enumerates defect mechanisms.
type Kind uint8

// Defect mechanisms.
const (
	StuckNet Kind = iota
	OpenNet
	BridgeDefect
)

// String names the defect kind.
func (k Kind) String() string {
	switch k {
	case StuckNet:
		return "stuck"
	case OpenNet:
		return "open"
	case BridgeDefect:
		return "bridge"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Defect is one injected physical defect, identified by nets of the
// *original* circuit.
type Defect struct {
	Kind Kind
	// Net is the defective net (victim for bridges).
	Net netlist.NetID
	// Aggressor is the second net of a bridge (unused otherwise).
	Aggressor netlist.NetID
	// Value1 is the stuck/open value (unused for bridges).
	Value1 bool
	// BridgeKind selects the bridge behaviour (unused otherwise).
	BridgeKind fault.BridgeKind
}

// String renders a human-readable description with net IDs.
func (d Defect) String() string { return d.Describe(nil) }

// Describe renders the defect, using net names when c is non-nil.
func (d Defect) Describe(c *netlist.Circuit) string {
	name := func(id netlist.NetID) string {
		if c != nil {
			if n := c.NameOf(id); n != "" {
				return n
			}
		}
		return fmt.Sprintf("net%d", id)
	}
	switch d.Kind {
	case StuckNet:
		v := "0"
		if d.Value1 {
			v = "1"
		}
		return fmt.Sprintf("stuck(%s=%s)", name(d.Net), v)
	case OpenNet:
		v := "0"
		if d.Value1 {
			v = "1"
		}
		return fmt.Sprintf("open(%s→%s)", name(d.Net), v)
	case BridgeDefect:
		return fmt.Sprintf("bridge(%s<-%s,%s)", name(d.Net), name(d.Aggressor), d.BridgeKind)
	}
	return "defect(?)"
}

// SameSite reports whether two defects occupy overlapping nets (used to
// avoid injecting colliding defects in campaigns).
func (d Defect) SameSite(e Defect) bool {
	nets := func(x Defect) []netlist.NetID {
		if x.Kind == BridgeDefect {
			return []netlist.NetID{x.Net, x.Aggressor}
		}
		return []netlist.NetID{x.Net}
	}
	for _, a := range nets(d) {
		for _, b := range nets(e) {
			if a == b {
				return true
			}
		}
	}
	return false
}

// Inject builds the defective device: a structurally modified copy of c
// containing all the given defects simultaneously. The device has the same
// PI/PO interface as c. The original circuit is not modified.
//
// Mechanics (all purely structural):
//
//   - StuckNet / OpenNet on net n: every *reader* of n is rewired to a new
//     constant net (built from a PI tautology so the netlist stays purely
//     combinational). If n is a PO, the PO is remapped to the constant. The
//     driver of n keeps driving (a short to rail overpowers the driver —
//     drive fights are resolved in favour of the rail, the standard
//     zero-resistance approximation).
//
//   - BridgeDefect victim v / aggressor a: readers of v (and the PO
//     binding, if v is a PO) are rewired to a new net computing the bridged
//     value: dominant → value(a); wired-AND → AND(v,a); wired-OR → OR(v,a).
//     The aggressor is unaffected (dominant) or symmetrically rewired
//     (wired kinds).
//
// Multiple defects compose by sequential rewiring; a defect whose net was
// already rewired by an earlier defect observes the earlier defect's
// effect, matching physical composition on a die.
func Inject(c *netlist.Circuit, defects []Defect) (*netlist.Circuit, error) {
	for _, d := range defects {
		if int(d.Net) < 0 || int(d.Net) >= c.NumGates() {
			return nil, fmt.Errorf("defect: net %d out of range", d.Net)
		}
		if d.Kind == BridgeDefect {
			if int(d.Aggressor) < 0 || int(d.Aggressor) >= c.NumGates() {
				return nil, fmt.Errorf("defect: aggressor %d out of range", d.Aggressor)
			}
			if d.Aggressor == d.Net {
				return nil, fmt.Errorf("defect: self-bridge on net %d", d.Net)
			}
		}
	}
	dev := c.Clone()
	dev.Name = c.Name + "_faulty"

	// redirect maps original net → replacement net in the device; readers
	// and PO bindings are rewritten through it.
	rewire := func(from, to netlist.NetID) {
		for i := range dev.Gates {
			g := &dev.Gates[i]
			if g.ID == to {
				continue // the replacement itself keeps its natural inputs
			}
			for j, f := range g.Fanin {
				if f == from {
					g.Fanin[j] = to
				}
			}
		}
		for i, po := range dev.POs {
			if po == from {
				dev.POs[i] = to
			}
		}
	}

	// constNet builds a constant 0/1 net. Constants are synthesized from
	// the first PI: AND(pi, NOT(pi)) = 0, OR(pi, NOT(pi)) = 1.
	constCount := 0
	constNet := func(v1 bool) (netlist.NetID, error) {
		pi := dev.PIs[0]
		constCount++
		notName := fmt.Sprintf("__def_not%d", constCount)
		n, err := dev.AddGate(netlist.Not, notName, pi)
		if err != nil {
			return netlist.InvalidNet, err
		}
		typ := netlist.And
		if v1 {
			typ = netlist.Or
		}
		cn, err := dev.AddGate(typ, fmt.Sprintf("__def_const%d", constCount), pi, n)
		if err != nil {
			return netlist.InvalidNet, err
		}
		return cn, nil
	}

	for di, d := range defects {
		switch d.Kind {
		case StuckNet, OpenNet:
			cn, err := constNet(d.Value1)
			if err != nil {
				return nil, err
			}
			rewire(d.Net, cn)
		case BridgeDefect:
			victim, aggr := d.Net, d.Aggressor
			var (
				bn  netlist.NetID
				err error
			)
			switch d.BridgeKind {
			case fault.DominantBridge:
				// Victim observes the aggressor's value.
				bn, err = dev.AddGate(netlist.Buf, fmt.Sprintf("__def_br%d", di), aggr)
				if err != nil {
					return nil, err
				}
				rewire(victim, bn)
			case fault.WiredAND, fault.WiredOR:
				typ := netlist.And
				if d.BridgeKind == fault.WiredOR {
					typ = netlist.Or
				}
				bn, err = dev.AddGate(typ, fmt.Sprintf("__def_br%d", di), victim, aggr)
				if err != nil {
					return nil, err
				}
				// Both nets observe the wired value. Rewire victim readers
				// first, then aggressor readers, each to the shared bridge
				// net (which reads the original drivers directly).
				rewire(victim, bn)
				rewire(aggr, bn)
			default:
				return nil, fmt.Errorf("defect: unknown bridge kind %v", d.BridgeKind)
			}
			// A bridge between structurally dependent nets would create a
			// combinational loop; Finalize-time level computation cannot
			// detect it (Clone+AddGate preserves acyclicity by index), so
			// reject it here by checking the aggressor's cone.
			if c.FaninCone(victim)[aggr] || c.FanoutCone(victim)[aggr] {
				return nil, fmt.Errorf("defect: bridge %s couples dependent nets", d.Describe(c))
			}
		default:
			return nil, fmt.Errorf("defect: unknown kind %v", d.Kind)
		}
	}
	if err := dev.Finalize(); err != nil {
		return nil, err
	}
	return dev, nil
}

// CampaignConfig parameterizes random defect sampling.
type CampaignConfig struct {
	Seed int64
	// NumDefects per device.
	NumDefects int
	// Mix is the sampling weight of each defect kind; zero-valued mixes
	// default to {stuck: 0.3, open: 0.3, bridge: 0.4} mirroring published
	// defect-population statistics.
	MixStuck, MixOpen, MixBridge float64
	// BridgeLevelWindow is the structural proximity window for bridge
	// sampling (default 2). Ignored when UsePlacement is set.
	BridgeLevelWindow int
	// UsePlacement switches bridge sampling from the level-window proxy to
	// the pseudo-placement proxy: bridges couple nets within
	// BridgeMaxDist of each other in a seeded row-based placement (see
	// package place), which is the closer stand-in for layout adjacency.
	UsePlacement bool
	// BridgeMaxDist is the placement-distance bound (default 2.0).
	BridgeMaxDist float64
}

func (cfg *CampaignConfig) fill() {
	if cfg.NumDefects <= 0 {
		cfg.NumDefects = 1
	}
	if cfg.MixStuck == 0 && cfg.MixOpen == 0 && cfg.MixBridge == 0 {
		cfg.MixStuck, cfg.MixOpen, cfg.MixBridge = 0.3, 0.3, 0.4
	}
	if cfg.BridgeLevelWindow <= 0 {
		cfg.BridgeLevelWindow = 2
	}
	if cfg.BridgeMaxDist <= 0 {
		cfg.BridgeMaxDist = 2.0
	}
}

// Sample draws a random multi-defect set on non-overlapping sites. Nets on
// the PI pseudo-gates are excluded for stuck/open (a defective input pad
// is a board-level fault, not a die defect) but allowed as bridge
// aggressors.
func Sample(c *netlist.Circuit, cfg CampaignConfig) ([]Defect, error) {
	cfg.fill()
	r := rand.New(rand.NewSource(cfg.Seed))
	var bridges []fault.Bridge
	if cfg.UsePlacement {
		bridges = place.New(c, cfg.Seed).EnumerateBridges(cfg.BridgeMaxDist, 0)
	} else {
		bridges = fault.EnumerateBridges(c, cfg.BridgeLevelWindow, 0)
	}
	var logicNets []netlist.NetID
	for i := range c.Gates {
		if c.Gates[i].Type != netlist.Input {
			logicNets = append(logicNets, netlist.NetID(i))
		}
	}
	if len(logicNets) == 0 {
		return nil, fmt.Errorf("defect: circuit has no logic nets")
	}
	total := cfg.MixStuck + cfg.MixOpen + cfg.MixBridge
	var out []Defect
	attempts := 0
	for len(out) < cfg.NumDefects {
		attempts++
		if attempts > 1000*cfg.NumDefects {
			return nil, fmt.Errorf("defect: cannot place %d non-overlapping defects", cfg.NumDefects)
		}
		x := r.Float64() * total
		var d Defect
		switch {
		case x < cfg.MixStuck:
			d = Defect{Kind: StuckNet, Net: logicNets[r.Intn(len(logicNets))], Value1: r.Intn(2) == 1}
		case x < cfg.MixStuck+cfg.MixOpen:
			d = Defect{Kind: OpenNet, Net: logicNets[r.Intn(len(logicNets))], Value1: r.Intn(2) == 1}
		default:
			if len(bridges) == 0 {
				continue
			}
			b := bridges[r.Intn(len(bridges))]
			kind := fault.DominantBridge
			switch r.Intn(3) {
			case 1:
				kind = fault.WiredAND
			case 2:
				kind = fault.WiredOR
			}
			d = Defect{Kind: BridgeDefect, Net: b.Victim, Aggressor: b.Aggressor, BridgeKind: kind}
		}
		collides := false
		for _, e := range out {
			if d.SameSite(e) {
				collides = true
				break
			}
		}
		if !collides {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Net < out[j].Net })
	return out, nil
}
