package defect

import (
	"strings"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

func exhaustivePatterns(npi int) []sim.Pattern {
	n := 1 << npi
	pats := make([]sim.Pattern, n)
	for m := 0; m < n; m++ {
		p := make(sim.Pattern, npi)
		for i := 0; i < npi; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats[m] = p
	}
	return pats
}

func TestInjectStuckMatchesFaultModel(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"G10", "G11", "G16", "G22"} {
		n := c.NetByName(name)
		for _, v1 := range []bool{false, true} {
			dev, err := Inject(c, []Defect{{Kind: StuckNet, Net: n, Value1: v1}})
			if err != nil {
				t.Fatal(err)
			}
			d, err := tester.ApplyTest(c, dev, pats)
			if err != nil {
				t.Fatal(err)
			}
			want := fs.SimulateStuckAt(fault.StuckAt{Net: n, Value1: v1})
			if !d.Syndrome().Equal(want) {
				t.Fatalf("stuck %s=%v: device syndrome ≠ fault model", name, v1)
			}
		}
	}
}

func TestInjectOpenMatchesStuck(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	n := c.NetByName("G19")
	devO, err := Inject(c, []Defect{{Kind: OpenNet, Net: n, Value1: true}})
	if err != nil {
		t.Fatal(err)
	}
	devS, err := Inject(c, []Defect{{Kind: StuckNet, Net: n, Value1: true}})
	if err != nil {
		t.Fatal(err)
	}
	dO, _ := tester.ApplyTest(c, devO, pats)
	dS, _ := tester.ApplyTest(c, devS, pats)
	if !dO.Syndrome().Equal(dS.Syndrome()) {
		t.Fatal("open behaviour must match its stuck-value approximation")
	}
}

func TestInjectDominantBridge(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	// G10 victim, G19 aggressor: independent cones (G10 feeds G22 only;
	// G19 is fed by G11/G7 and feeds G23 only).
	v, a := c.NetByName("G10"), c.NetByName("G19")
	dev, err := Inject(c, []Defect{{Kind: BridgeDefect, Net: v, Aggressor: a, BridgeKind: fault.DominantBridge}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: scalar simulation forcing victim to the aggressor's good value.
	for m, p := range pats {
		good, _ := sim.EvalScalar(c, p, nil)
		forced, _ := sim.EvalScalar(c, p, map[netlist.NetID]logic.Value{v: good[a]})
		for i, po := range c.POs {
			want := good[po] != forced[po]
			got := d.Fails[m] != nil && d.Fails[m].Has(i)
			if want != got {
				t.Fatalf("pattern %d PO %d: want fail=%v got %v", m, i, want, got)
			}
		}
	}
}

func TestInjectWiredBridges(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	v, a := c.NetByName("G10"), c.NetByName("G19")
	for _, kind := range []fault.BridgeKind{fault.WiredAND, fault.WiredOR} {
		dev, err := Inject(c, []Defect{{Kind: BridgeDefect, Net: v, Aggressor: a, BridgeKind: kind}})
		if err != nil {
			t.Fatal(err)
		}
		d, err := tester.ApplyTest(c, dev, pats)
		if err != nil {
			t.Fatal(err)
		}
		for m, p := range pats {
			good, _ := sim.EvalScalar(c, p, nil)
			var wired logic.Value
			if kind == fault.WiredAND {
				wired = good[v].And(good[a])
			} else {
				wired = good[v].Or(good[a])
			}
			forced, _ := sim.EvalScalar(c, p, map[netlist.NetID]logic.Value{v: wired, a: wired})
			for i, po := range c.POs {
				want := good[po] != forced[po]
				got := d.Fails[m] != nil && d.Fails[m].Has(i)
				if want != got {
					t.Fatalf("%v pattern %d PO %d: want fail=%v got %v", kind, m, i, want, got)
				}
			}
		}
	}
}

// TestMultiDefectInteraction verifies that simultaneous defects interact
// (masking / non-additivity): the double-defect syndrome must differ from
// the union of single-defect syndromes on at least one circuit where we
// engineer interaction, and re-simulation must be consistent.
func TestMultiDefectInteraction(t *testing.T) {
	c := circuits.C17()
	pats := exhaustivePatterns(5)
	d1 := Defect{Kind: StuckNet, Net: c.NetByName("G10"), Value1: true}
	d2 := Defect{Kind: StuckNet, Net: c.NetByName("G16"), Value1: false}

	devBoth, err := Inject(c, []Defect{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	dev1, _ := Inject(c, []Defect{d1})
	dev2, _ := Inject(c, []Defect{d2})
	both, _ := tester.ApplyTest(c, devBoth, pats)
	s1, _ := tester.ApplyTest(c, dev1, pats)
	s2, _ := tester.ApplyTest(c, dev2, pats)

	// Union of singles.
	union := map[int]map[int]bool{}
	for _, d := range []*tester.Datalog{s1, s2} {
		for p, f := range d.Fails {
			if union[p] == nil {
				union[p] = map[int]bool{}
			}
			for _, po := range f.Members() {
				union[p][po] = true
			}
		}
	}
	diff := false
	for p := 0; p < len(pats); p++ {
		for po := 0; po < len(c.POs); po++ {
			inBoth := both.Fails[p] != nil && both.Fails[p].Has(po)
			inUnion := union[p][po]
			if inBoth != inUnion {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("expected defect interaction (G16 sa0 forces G22=1 = NAND(G10,0) regardless of G10, masking G10 sa1)")
	}
}

func TestInjectValidation(t *testing.T) {
	c := circuits.C17()
	if _, err := Inject(c, []Defect{{Kind: StuckNet, Net: 999}}); err == nil {
		t.Error("out-of-range net accepted")
	}
	if _, err := Inject(c, []Defect{{Kind: BridgeDefect, Net: 1, Aggressor: 999}}); err == nil {
		t.Error("out-of-range aggressor accepted")
	}
	if _, err := Inject(c, []Defect{{Kind: BridgeDefect, Net: 1, Aggressor: 1}}); err == nil {
		t.Error("self bridge accepted")
	}
	// Bridge between dependent nets must be rejected (G11 feeds G16).
	if _, err := Inject(c, []Defect{{
		Kind: BridgeDefect, Net: c.NetByName("G16"),
		Aggressor: c.NetByName("G11"), BridgeKind: fault.DominantBridge,
	}}); err == nil {
		t.Error("dependent bridge accepted")
	}
	if _, err := Inject(c, []Defect{{Kind: Kind(9), Net: 1}}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestInjectPreservesOriginal(t *testing.T) {
	c := circuits.C17()
	before := c.ComputeStats()
	_, err := Inject(c, []Defect{{Kind: StuckNet, Net: c.NetByName("G16")}})
	if err != nil {
		t.Fatal(err)
	}
	after := c.ComputeStats()
	if before.Nets != after.Nets || before.Gates != after.Gates {
		t.Fatal("Inject mutated the original circuit")
	}
}

func TestSampleProperties(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 3, NumPIs: 10, NumGates: 300, NumPOs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		ds, err := Sample(c, CampaignConfig{Seed: int64(n), NumDefects: n})
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) != n {
			t.Fatalf("sampled %d, want %d", len(ds), n)
		}
		for i := range ds {
			for j := i + 1; j < len(ds); j++ {
				if ds[i].SameSite(ds[j]) {
					t.Fatalf("overlapping defects %v / %v", ds[i], ds[j])
				}
			}
			if ds[i].Kind != BridgeDefect && c.Gates[ds[i].Net].Type == netlist.Input {
				t.Fatalf("stuck/open on PI sampled: %v", ds[i])
			}
		}
		// Sampled defects must be injectable.
		if _, err := Inject(c, ds); err != nil {
			t.Fatalf("sampled set not injectable: %v (%v)", err, ds)
		}
	}
}

func TestSampleDeterminism(t *testing.T) {
	c := circuits.C17()
	a, err := Sample(c, CampaignConfig{Seed: 9, NumDefects: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(c, CampaignConfig{Seed: 9, NumDefects: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different sample")
		}
	}
}

func TestDescribe(t *testing.T) {
	c := circuits.C17()
	d := Defect{Kind: BridgeDefect, Net: c.NetByName("G10"), Aggressor: c.NetByName("G19"), BridgeKind: fault.WiredOR}
	s := d.Describe(c)
	if !strings.Contains(s, "G10") || !strings.Contains(s, "G19") || !strings.Contains(s, "wor") {
		t.Errorf("Describe = %q", s)
	}
	if !strings.Contains(Defect{Kind: StuckNet, Net: 3, Value1: true}.String(), "stuck") {
		t.Error("String missing kind")
	}
	for _, k := range []Kind{StuckNet, OpenNet, BridgeDefect, Kind(7)} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func TestSampleWithPlacement(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 6, NumPIs: 12, NumGates: 300, NumPOs: 10})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Sample(c, CampaignConfig{Seed: 2, NumDefects: 4, MixBridge: 1, UsePlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("sampled %d", len(ds))
	}
	for _, d := range ds {
		if d.Kind != BridgeDefect {
			t.Fatalf("non-bridge defect %v with MixBridge=1", d)
		}
	}
	if _, err := Inject(c, ds); err != nil {
		t.Fatalf("placement-sampled set not injectable: %v", err)
	}
	// Determinism.
	ds2, err := Sample(c, CampaignConfig{Seed: 2, NumDefects: 4, MixBridge: 1, UsePlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if ds[i] != ds2[i] {
			t.Fatal("placement sampling not deterministic")
		}
	}
}
