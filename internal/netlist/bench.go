package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads an ISCAS-85/89-style .bench netlist description.
//
// Supported syntax:
//
//	# comment
//	INPUT(a)
//	OUTPUT(z)
//	n1 = NAND(a, b)
//	n2 = DFF(n1)        # only accepted by scan conversion, see ParseBenchScan
//	z  = NOT(n1)
//
// Gate definitions may appear in any order; forward references are resolved
// by a two-pass build. The returned circuit is finalized.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type def struct {
		line   int
		out    string
		typ    string
		fanins []string
	}
	var (
		defs     []def
		inputs   []string
		outputs  []string
		seenOut  = make(map[string]int) // output name -> defining line
		scanner  = bufio.NewScanner(r)
		lineNo   = 0
		maxToken = 1024 * 1024
	)
	scanner.Buffer(make([]byte, 64*1024), maxToken)
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT"):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, lineNo, err)
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(up, "OUTPUT"):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench %s:%d: expected assignment, got %q", name, lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op := strings.Index(rhs, "(")
			cp := strings.LastIndex(rhs, ")")
			if op < 0 || cp < op {
				return nil, fmt.Errorf("bench %s:%d: malformed gate expression %q", name, lineNo, rhs)
			}
			typ := strings.TrimSpace(rhs[:op])
			var fanins []string
			for _, f := range strings.Split(rhs[op+1:cp], ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return nil, fmt.Errorf("bench %s:%d: empty fan-in in %q", name, lineNo, line)
				}
				fanins = append(fanins, f)
			}
			if prev, dup := seenOut[out]; dup {
				return nil, fmt.Errorf("bench %s:%d: net %q already defined at line %d", name, lineNo, out, prev)
			}
			seenOut[out] = lineNo
			defs = append(defs, def{line: lineNo, out: out, typ: typ, fanins: fanins})
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("bench %s: %v", name, err)
	}

	c := NewCircuit(name)
	for _, in := range inputs {
		if _, err := c.AddGate(Input, in); err != nil {
			return nil, fmt.Errorf("bench %s: %v", name, err)
		}
	}
	// Topologically order definitions (inputs are already placed). Kahn-style
	// repeated sweep keeps the implementation simple and detects cycles.
	placed := make(map[string]bool, len(inputs)+len(defs))
	for _, in := range inputs {
		placed[in] = true
	}
	remaining := defs
	for len(remaining) > 0 {
		progressed := false
		var next []def
		for _, d := range remaining {
			ready := true
			for _, f := range d.fanins {
				if !placed[f] {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, d)
				continue
			}
			t, err := ParseGateType(d.typ)
			if err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, d.line, err)
			}
			if t == Input {
				return nil, fmt.Errorf("bench %s:%d: INPUT used as gate", name, d.line)
			}
			fan := make([]NetID, len(d.fanins))
			for i, f := range d.fanins {
				fan[i] = c.NetByName(f)
			}
			// .bench allows 1-input AND/OR etc. in some dialects; map to BUF.
			if len(fan) == 1 && (t == And || t == Or) {
				t = Buf
			}
			if len(fan) == 1 && (t == Nand || t == Nor) {
				t = Not
			}
			if _, err := c.AddGate(t, d.out, fan...); err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, d.line, err)
			}
			placed[d.out] = true
			progressed = true
		}
		if !progressed {
			// Either a combinational cycle or an undefined net.
			var missing []string
			for _, d := range next {
				for _, f := range d.fanins {
					if !placed[f] {
						if _, defined := seenOut[f]; !defined {
							missing = append(missing, f)
						}
					}
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				return nil, fmt.Errorf("bench %s: undefined net(s): %s", name, strings.Join(missing, ", "))
			}
			return nil, fmt.Errorf("bench %s: combinational cycle among %d gates", name, len(next))
		}
		remaining = next
	}
	for _, out := range outputs {
		id := c.NetByName(out)
		if id == InvalidNet {
			return nil, fmt.Errorf("bench %s: OUTPUT(%s) is undefined", name, out)
		}
		if err := c.MarkPO(id); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

func parenArg(line string) (string, error) {
	op := strings.Index(line, "(")
	cp := strings.LastIndex(line, ")")
	if op < 0 || cp < op {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[op+1 : cp])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return arg, nil
}

// WriteBench serializes the circuit in .bench syntax. Reparsing the output
// with ParseBench yields a structurally identical circuit.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d PIs, %d POs, %d gates\n", c.Name, len(c.PIs), len(c.POs), c.NumLogicGates())
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[pi].Name)
	}
	for _, po := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[po].Name)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			names[j] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
