package netlist

import (
	"fmt"
	"io"
	"strings"
)

// SeqCircuit is a synchronous sequential design in its standard
// combinational-core form: flip-flop outputs appear as pseudo primary
// inputs (present state) and flip-flop inputs as pseudo primary outputs
// (next state). This is the same shape full-scan conversion produces; the
// difference is that SeqCircuit remembers which PIs/POs are state so the
// design can be time-frame expanded for *non-scan* analysis.
type SeqCircuit struct {
	Comb *Circuit
	// StateIn[i] is the pseudo-PI carrying flip-flop i's present state;
	// StateOut[i] the pseudo-PO carrying its next state.
	StateIn  []NetID
	StateOut []NetID
	// RealPIs / RealPOs are the non-state interface nets.
	RealPIs []NetID
	RealPOs []NetID
}

// NumFFs returns the flip-flop count.
func (s *SeqCircuit) NumFFs() int { return len(s.StateIn) }

// ParseBenchSeq reads a .bench file with DFFs and returns the sequential
// form (combinational core + state bookkeeping).
func ParseBenchSeq(name string, r io.Reader) (*SeqCircuit, error) {
	c, ffs, err := ParseBenchScan(name, r)
	if err != nil {
		return nil, err
	}
	return seqFromScan(c, ffs)
}

// seqFromScan recovers the state structure from the scan-converted naming
// convention (<ff> pseudo-PI, <ff>_si pseudo-PO).
func seqFromScan(c *Circuit, ffs int) (*SeqCircuit, error) {
	s := &SeqCircuit{Comb: c}
	isStateIn := map[NetID]bool{}
	isStateOut := map[NetID]bool{}
	for _, pi := range c.PIs {
		si := c.NetByName(c.Gates[pi].Name + "_si")
		if si != InvalidNet && c.IsPO(si) {
			s.StateIn = append(s.StateIn, pi)
			s.StateOut = append(s.StateOut, si)
			isStateIn[pi] = true
			isStateOut[si] = true
		}
	}
	if len(s.StateIn) != ffs {
		return nil, fmt.Errorf("netlist: expected %d flip-flops, recovered %d", ffs, len(s.StateIn))
	}
	for _, pi := range c.PIs {
		if !isStateIn[pi] {
			s.RealPIs = append(s.RealPIs, pi)
		}
	}
	for _, po := range c.POs {
		if !isStateOut[po] {
			s.RealPOs = append(s.RealPOs, po)
		}
	}
	return s, nil
}

// UnrolledNet maps a net of the unrolled circuit back to its origin.
type UnrolledNet struct {
	Frame int
	Orig  NetID // net in the combinational core
}

// Unrolled is a time-frame-expanded circuit with its origin map.
type Unrolled struct {
	Circuit *Circuit
	Frames  int
	// Origin[id] gives the (frame, core net) of every unrolled net.
	Origin []UnrolledNet
	// FramePIs[f] lists frame f's copies of the real PIs, in RealPIs
	// order; FramePOs[f] likewise for real POs.
	FramePIs [][]NetID
	FramePOs [][]NetID
	// InitStatePIs are the frame-0 present-state inputs (the unknown or
	// controlled initial state), in StateIn order.
	InitStatePIs []NetID
}

// Unroll performs time-frame expansion: `frames` copies of the
// combinational core, with each frame's present-state inputs driven by the
// previous frame's next-state functions. Frame 0's present state becomes
// fresh primary inputs (drive them with X for an unknown power-on state).
// All frames' real POs are outputs; the last frame's next state is also
// exposed (named *_si@K-1) so state observability is not lost.
func (s *SeqCircuit) Unroll(frames int) (*Unrolled, error) {
	if frames < 1 {
		return nil, fmt.Errorf("netlist: need ≥1 frame")
	}
	core := s.Comb
	u := &Unrolled{
		Circuit: NewCircuit(fmt.Sprintf("%s_x%d", core.Name, frames)),
		Frames:  frames,
	}
	stateOutIdx := make(map[NetID]int, len(s.StateOut))
	for i, so := range s.StateOut {
		stateOutIdx[so] = i
	}
	stateInIdx := make(map[NetID]int, len(s.StateIn))
	for i, si := range s.StateIn {
		stateInIdx[si] = i
	}
	name := func(orig NetID, f int) string {
		return fmt.Sprintf("%s@%d", core.Gates[orig].Name, f)
	}
	// prevState[i] = unrolled net holding FF i's state entering the
	// current frame.
	var prevState []NetID
	addOrigin := func(id NetID, f int, orig NetID) {
		for int(id) >= len(u.Origin) {
			u.Origin = append(u.Origin, UnrolledNet{})
		}
		u.Origin[id] = UnrolledNet{Frame: f, Orig: orig}
	}
	for f := 0; f < frames; f++ {
		mapped := make([]NetID, core.NumGates())
		// Inputs first.
		var framePIs []NetID
		for _, pi := range core.PIs {
			if idx, isState := stateInIdx[pi]; isState {
				var id NetID
				if f == 0 {
					nid, err := u.Circuit.AddGate(Input, name(pi, 0))
					if err != nil {
						return nil, err
					}
					id = nid
					u.InitStatePIs = append(u.InitStatePIs, id)
				} else {
					// Alias of the previous frame's next-state net.
					nid, err := u.Circuit.AddGate(Buf, name(pi, f), prevState[idx])
					if err != nil {
						return nil, err
					}
					id = nid
				}
				mapped[pi] = id
				addOrigin(id, f, pi)
				continue
			}
			id, err := u.Circuit.AddGate(Input, name(pi, f))
			if err != nil {
				return nil, err
			}
			mapped[pi] = id
			addOrigin(id, f, pi)
			framePIs = append(framePIs, id)
		}
		u.FramePIs = append(u.FramePIs, framePIs)
		// Gates in level order (fan-ins already mapped).
		for _, id := range core.LevelOrder() {
			g := &core.Gates[id]
			if g.Type == Input {
				continue
			}
			fan := make([]NetID, len(g.Fanin))
			for i, fi := range g.Fanin {
				fan[i] = mapped[fi]
			}
			nid, err := u.Circuit.AddGate(g.Type, name(id, f), fan...)
			if err != nil {
				return nil, err
			}
			mapped[id] = nid
			addOrigin(nid, f, id)
		}
		// Real POs of this frame.
		var framePOs []NetID
		for _, po := range s.RealPOs {
			if err := u.Circuit.MarkPO(mapped[po]); err != nil {
				return nil, err
			}
			framePOs = append(framePOs, mapped[po])
		}
		u.FramePOs = append(u.FramePOs, framePOs)
		// Chain state into the next frame.
		next := make([]NetID, len(s.StateOut))
		for i, so := range s.StateOut {
			next[i] = mapped[so]
		}
		prevState = next
	}
	// Expose the final next state.
	for _, so := range prevState {
		if err := u.Circuit.MarkPO(so); err != nil {
			return nil, err
		}
	}
	if err := u.Circuit.Finalize(); err != nil {
		return nil, err
	}
	return u, nil
}

// CoreNetOf returns the (frame, core-net) origin of an unrolled net.
func (u *Unrolled) CoreNetOf(id NetID) (UnrolledNet, bool) {
	if int(id) >= len(u.Origin) {
		return UnrolledNet{}, false
	}
	return u.Origin[id], true
}

// ParseVerilogSeq is the Verilog-side counterpart of ParseBenchSeq.
func ParseVerilogSeq(name string, r io.Reader) (*SeqCircuit, error) {
	c, ffs, err := ParseVerilogScan(name, r)
	if err != nil {
		return nil, err
	}
	return seqFromScan(c, ffs)
}

// String summarizes the sequential structure.
func (s *SeqCircuit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seq %s: %d PIs, %d POs, %d FFs, %d gates",
		s.Comb.Name, len(s.RealPIs), len(s.RealPOs), s.NumFFs(), s.Comb.NumLogicGates())
	return sb.String()
}
