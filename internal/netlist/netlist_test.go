package netlist

import (
	"strings"
	"testing"
)

// buildC17 constructs the classic c17 benchmark programmatically.
func buildC17(t *testing.T) *Circuit {
	t.Helper()
	c := NewCircuit("c17")
	g1 := c.MustAddGate(Input, "G1")
	g2 := c.MustAddGate(Input, "G2")
	g3 := c.MustAddGate(Input, "G3")
	g6 := c.MustAddGate(Input, "G6")
	g7 := c.MustAddGate(Input, "G7")
	g10 := c.MustAddGate(Nand, "G10", g1, g3)
	g11 := c.MustAddGate(Nand, "G11", g3, g6)
	g16 := c.MustAddGate(Nand, "G16", g2, g11)
	g19 := c.MustAddGate(Nand, "G19", g11, g7)
	g22 := c.MustAddGate(Nand, "G22", g10, g16)
	g23 := c.MustAddGate(Nand, "G23", g16, g19)
	if err := c.MarkPO(g22); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkPO(g23); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildAndFinalize(t *testing.T) {
	c := buildC17(t)
	if c.NumGates() != 11 || c.NumLogicGates() != 6 {
		t.Fatalf("gate counts: %d/%d", c.NumGates(), c.NumLogicGates())
	}
	if len(c.PIs) != 5 || len(c.POs) != 2 {
		t.Fatalf("PI/PO counts: %d/%d", len(c.PIs), len(c.POs))
	}
	if c.MaxLevel() != 3 {
		t.Fatalf("MaxLevel = %d, want 3", c.MaxLevel())
	}
	// Levels: inputs 0, G10/G11 1, G16/G19 2, G22/G23 3.
	for name, want := range map[string]int{"G1": 0, "G10": 1, "G16": 2, "G19": 2, "G22": 3, "G23": 3} {
		id := c.NetByName(name)
		if id == InvalidNet {
			t.Fatalf("net %s missing", name)
		}
		if got := c.Gates[id].Level; got != want {
			t.Errorf("level(%s) = %d, want %d", name, got, want)
		}
	}
	// Fanout of G11 is G16 and G19.
	g11 := c.NetByName("G11")
	if len(c.Gates[g11].Fanout) != 2 {
		t.Fatalf("fanout(G11) = %v", c.Gates[g11].Fanout)
	}
	if !c.IsFanoutStem(g11) {
		t.Error("G11 should be a fanout stem")
	}
	if c.IsFanoutStem(c.NetByName("G10")) {
		t.Error("G10 should not be a fanout stem")
	}
}

func TestAddGateErrors(t *testing.T) {
	c := NewCircuit("err")
	a := c.MustAddGate(Input, "a")
	if _, err := c.AddGate(Input, "a"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := c.AddGate(Input, "b", a); err == nil {
		t.Error("input with fan-in accepted")
	}
	if _, err := c.AddGate(Not, "n", a, a); err == nil {
		t.Error("2-input NOT accepted")
	}
	if _, err := c.AddGate(And, "g", a); err == nil {
		t.Error("1-input AND accepted")
	}
	if _, err := c.AddGate(And, "h", a, NetID(99)); err == nil {
		t.Error("undefined fan-in accepted")
	}
	if err := c.MarkPO(NetID(99)); err == nil {
		t.Error("MarkPO of undefined net accepted")
	}
}

func TestFinalizeErrors(t *testing.T) {
	c := NewCircuit("nopi")
	if err := c.Finalize(); err == nil {
		t.Error("circuit without PIs finalized")
	}
	c2 := NewCircuit("nopo")
	c2.MustAddGate(Input, "a")
	if err := c2.Finalize(); err == nil {
		t.Error("circuit without POs finalized")
	}
	c3 := buildC17(t)
	if _, err := c3.AddGate(Input, "late"); err == nil {
		t.Error("AddGate after Finalize accepted")
	}
	if err := c3.Finalize(); err != nil {
		t.Error("re-Finalize should be a no-op")
	}
}

func TestGateTypeParsing(t *testing.T) {
	for s, want := range map[string]GateType{
		"and": And, "NAND": Nand, "Or": Or, "NOR": Nor,
		"xor": Xor, "XNOR": Xnor, "not": Not, "INV": Not,
		"buf": Buf, "BUFF": Buf, "INPUT": Input,
	} {
		got, err := ParseGateType(s)
		if err != nil || got != want {
			t.Errorf("ParseGateType(%q) = %v,%v", s, got, err)
		}
	}
	if _, err := ParseGateType("DFF"); err == nil {
		t.Error("DFF must not parse as a combinational gate type")
	}
}

func TestControllingValue(t *testing.T) {
	for typ, want := range map[GateType]struct {
		v  bool
		ok bool
	}{
		And: {false, true}, Nand: {false, true},
		Or: {true, true}, Nor: {true, true},
		Xor: {false, false}, Not: {false, false}, Buf: {false, false},
	} {
		v, ok := typ.ControllingValue()
		if ok != want.ok || (ok && v != want.v) {
			t.Errorf("ControllingValue(%v) = %v,%v", typ, v, ok)
		}
	}
}

func TestCones(t *testing.T) {
	c := buildC17(t)
	g22 := c.NetByName("G22")
	cone := c.FaninCone(g22)
	wantIn := []string{"G22", "G10", "G16", "G1", "G2", "G3", "G6", "G11"}
	for _, n := range wantIn {
		if !cone[c.NetByName(n)] {
			t.Errorf("%s missing from fanin cone of G22", n)
		}
	}
	if cone[c.NetByName("G7")] || cone[c.NetByName("G19")] || cone[c.NetByName("G23")] {
		t.Error("fanin cone of G22 too large")
	}

	g11 := c.NetByName("G11")
	out := c.FanoutCone(g11)
	for _, n := range []string{"G11", "G16", "G19", "G22", "G23"} {
		if !out[c.NetByName(n)] {
			t.Errorf("%s missing from fanout cone of G11", n)
		}
	}
	if out[c.NetByName("G10")] {
		t.Error("fanout cone of G11 too large")
	}

	pos := c.ReachablePOs(g11)
	if len(pos) != 2 {
		t.Fatalf("ReachablePOs(G11) = %v", pos)
	}
	pos10 := c.ReachablePOs(c.NetByName("G10"))
	if len(pos10) != 1 || pos10[0] != c.NetByName("G22") {
		t.Fatalf("ReachablePOs(G10) = %v", pos10)
	}

	u := c.UnionFaninCone([]NetID{c.NetByName("G10"), c.NetByName("G19")})
	if !u[c.NetByName("G1")] || !u[c.NetByName("G7")] {
		t.Error("union cone missing members")
	}
	if u[c.NetByName("G2")] {
		t.Error("union cone too large")
	}
}

const c17Bench = `
# c17 benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestParseBench(t *testing.T) {
	c, err := ParseBench("c17", strings.NewReader(c17Bench))
	if err != nil {
		t.Fatal(err)
	}
	ref := buildC17(t)
	if c.NumGates() != ref.NumGates() || len(c.PIs) != len(ref.PIs) || len(c.POs) != len(ref.POs) {
		t.Fatalf("parsed structure differs: %+v", c.ComputeStats())
	}
	if c.MaxLevel() != 3 {
		t.Fatalf("MaxLevel = %d", c.MaxLevel())
	}
}

func TestParseBenchForwardRefs(t *testing.T) {
	// Definitions out of topological order must still parse.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(m, b)
m = NOT(a)
`
	c, err := ParseBench("fwd", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogicGates() != 2 {
		t.Fatalf("gates = %d", c.NumLogicGates())
	}
}

func TestParseBenchSingleInputAndOr(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
OUTPUT(y)
z = AND(a)
y = NOR(a)
`
	c, err := ParseBench("dialect", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[c.NetByName("z")].Type != Buf {
		t.Error("1-input AND should map to BUF")
	}
	if c.Gates[c.NetByName("y")].Type != Not {
		t.Error("1-input NOR should map to NOT")
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := map[string]string{
		"undefined net":   "INPUT(a)\nOUTPUT(z)\nz = AND(a, q)\n",
		"cycle":           "INPUT(a)\nOUTPUT(z)\nz = AND(a, y)\ny = AND(a, z)\n",
		"duplicate def":   "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUF(a)\n",
		"malformed gate":  "INPUT(a)\nOUTPUT(z)\nz = NOT a\n",
		"bad type":        "INPUT(a)\nOUTPUT(z)\nz = FROB(a, a)\n",
		"empty fanin":     "INPUT(a)\nOUTPUT(z)\nz = AND(a, )\n",
		"missing output":  "INPUT(a)\nOUTPUT(nothere)\nz = NOT(a)\n",
		"input as gate":   "INPUT(a)\nOUTPUT(z)\nz = INPUT(a)\n",
		"malformed input": "INPUT a\nOUTPUT(z)\nz = NOT(a)\n",
	}
	for name, src := range cases {
		if _, err := ParseBench(name, strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c, err := ParseBench("c17", strings.NewReader(c17Bench))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench("c17rt", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, sb.String())
	}
	if c2.NumGates() != c.NumGates() || c2.MaxLevel() != c.MaxLevel() {
		t.Fatal("round trip changed structure")
	}
	for i := range c.Gates {
		id := c2.NetByName(c.Gates[i].Name)
		if id == InvalidNet {
			t.Fatalf("net %s lost in round trip", c.Gates[i].Name)
		}
		if c2.Gates[id].Type != c.Gates[i].Type {
			t.Fatalf("net %s changed type", c.Gates[i].Name)
		}
	}
}

func TestParseBenchScan(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(z)
q = DFF(d)
d = AND(a, q)
z = NOT(q)
`
	c, ffs, err := ParseBenchScan("seq", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ffs != 1 {
		t.Fatalf("ffs = %d", ffs)
	}
	// q becomes a PI; q_si becomes a PO.
	if c.Gates[c.NetByName("q")].Type != Input {
		t.Error("DFF output should be a pseudo-PI")
	}
	si := c.NetByName("q_si")
	if si == InvalidNet || !c.IsPO(si) {
		t.Error("DFF input alias should be a pseudo-PO")
	}
	if len(c.PIs) != 2 || len(c.POs) != 2 {
		t.Fatalf("PI/PO = %d/%d", len(c.PIs), len(c.POs))
	}
}

func TestClone(t *testing.T) {
	c := buildC17(t)
	cl := c.Clone()
	if cl.Finalized() {
		t.Fatal("clone must be un-finalized")
	}
	if err := cl.Finalize(); err != nil {
		t.Fatal(err)
	}
	if cl.NumGates() != c.NumGates() || cl.MaxLevel() != c.MaxLevel() {
		t.Fatal("clone structure differs")
	}
	// Mutating the clone's fanin must not touch the original.
	g22 := cl.NetByName("G22")
	cl.Gates[g22].Fanin[0] = cl.NetByName("G11")
	if c.Gates[c.NetByName("G22")].Fanin[0] == c.NetByName("G11") {
		t.Fatal("clone shares fanin storage with original")
	}
}

func TestComputeStats(t *testing.T) {
	c := buildC17(t)
	s := c.ComputeStats()
	if s.Gates != 6 || s.PIs != 5 || s.POs != 2 || s.TypeCount[Nand] != 6 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLevelOrder(t *testing.T) {
	c := buildC17(t)
	ord := c.LevelOrder()
	if len(ord) != c.NumGates() {
		t.Fatal("LevelOrder wrong length")
	}
	last := -1
	for _, id := range ord {
		if c.Gates[id].Level < last {
			t.Fatal("LevelOrder not monotone")
		}
		last = c.Gates[id].Level
	}
}
