package netlist

import (
	"strings"
	"testing"
)

// twoBitCounter is a 2-bit synchronous counter with enable:
// q0' = q0 XOR en; q1' = q1 XOR (q0 AND en); out = q1 AND q0.
const counterBench = `
INPUT(en)
OUTPUT(out)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(q0, en)
t  = AND(q0, en)
d1 = XOR(q1, t)
out = AND(q1, q0)
`

func TestParseBenchSeq(t *testing.T) {
	s, err := ParseBenchSeq("cnt", strings.NewReader(counterBench))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFFs() != 2 {
		t.Fatalf("FFs = %d", s.NumFFs())
	}
	if len(s.RealPIs) != 1 || len(s.RealPOs) != 1 {
		t.Fatalf("interface %d/%d", len(s.RealPIs), len(s.RealPOs))
	}
	if s.Comb.NameOf(s.RealPIs[0]) != "en" || s.Comb.NameOf(s.RealPOs[0]) != "out" {
		t.Fatal("interface naming wrong")
	}
	if got := s.String(); !strings.Contains(got, "2 FFs") {
		t.Errorf("String = %q", got)
	}
}

func TestUnrollStructure(t *testing.T) {
	s, err := ParseBenchSeq("cnt", strings.NewReader(counterBench))
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	u, err := s.Unroll(k)
	if err != nil {
		t.Fatal(err)
	}
	// PIs: 2 initial-state + k×1 real.
	if len(u.Circuit.PIs) != 2+k {
		t.Fatalf("PIs = %d", len(u.Circuit.PIs))
	}
	// POs: k×1 real + 2 final state.
	if len(u.Circuit.POs) != k+2 {
		t.Fatalf("POs = %d", len(u.Circuit.POs))
	}
	if len(u.FramePIs) != k || len(u.FramePOs) != k || len(u.InitStatePIs) != 2 {
		t.Fatal("frame bookkeeping wrong")
	}
	// Origin map covers every net and frames are sane.
	for id := range u.Circuit.Gates {
		on, ok := u.CoreNetOf(NetID(id))
		if !ok || on.Frame < 0 || on.Frame >= k {
			t.Fatalf("origin missing for net %d", id)
		}
		if s.Comb.NameOf(on.Orig) == "" {
			t.Fatalf("origin net invalid for %d", id)
		}
	}
	if _, ok := u.CoreNetOf(NetID(99999)); ok {
		t.Fatal("out-of-range origin lookup succeeded")
	}
	if err := u.Circuit.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Unroll(0); err == nil {
		t.Fatal("0 frames accepted")
	}
}

// TestUnrollCounterBehaviour: simulate the unrolled counter from state 00
// with enable held 1 and check it counts 00→01→10→11 (out rises in the
// frame entered with q=11).
func TestUnrollCounterBehaviour(t *testing.T) {
	s, err := ParseBenchSeq("cnt", strings.NewReader(counterBench))
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	u, err := s.Unroll(k)
	if err != nil {
		t.Fatal(err)
	}
	// Build the flat input assignment: init q0=q1=0, en=1 in every frame.
	// PI order in the unrolled circuit follows creation order: frame0
	// state PIs interleaved with frame0 real PIs (creation order of the
	// core's PI list), then later frames' real PIs.
	vals := map[NetID]bool{}
	for _, q := range u.InitStatePIs {
		vals[q] = false
	}
	for _, fpis := range u.FramePIs {
		for _, pi := range fpis {
			vals[pi] = true
		}
	}
	pattern := make([]string, len(u.Circuit.PIs))
	for i, pi := range u.Circuit.PIs {
		if vals[pi] {
			pattern[i] = "1"
		} else {
			pattern[i] = "0"
		}
	}
	// Evaluate by structural walk: reuse the scalar rules via a tiny local
	// evaluator to keep the netlist package dependency-free of sim.
	val := make([]bool, u.Circuit.NumGates())
	for i, pi := range u.Circuit.PIs {
		val[pi] = pattern[i] == "1"
	}
	for _, id := range u.Circuit.LevelOrder() {
		g := &u.Circuit.Gates[id]
		if g.Type == Input {
			continue
		}
		v := evalBool(g.Type, g.Fanin, val)
		val[id] = v
	}
	// out@f = q1·q0 entering frame f: states 00,01,10,11 → out = 0,0,0,1.
	want := []bool{false, false, false, true}
	for f := 0; f < k; f++ {
		if got := val[u.FramePOs[f][0]]; got != want[f] {
			t.Fatalf("frame %d out = %v, want %v", f, got, want[f])
		}
	}
	// Final state after 4 enabled ticks: back to 00.
	finalPOs := u.Circuit.POs[len(u.Circuit.POs)-2:]
	for _, po := range finalPOs {
		if val[po] {
			t.Fatalf("final state bit %s = 1, want 0", u.Circuit.NameOf(po))
		}
	}
}

func evalBool(t GateType, fanin []NetID, val []bool) bool {
	switch t {
	case Buf:
		return val[fanin[0]]
	case Not:
		return !val[fanin[0]]
	case And, Nand:
		acc := true
		for _, f := range fanin {
			acc = acc && val[f]
		}
		if t == Nand {
			return !acc
		}
		return acc
	case Or, Nor:
		acc := false
		for _, f := range fanin {
			acc = acc || val[f]
		}
		if t == Nor {
			return !acc
		}
		return acc
	case Xor, Xnor:
		acc := false
		for _, f := range fanin {
			acc = acc != val[f]
		}
		if t == Xnor {
			return !acc
		}
		return acc
	}
	return false
}

func TestParseVerilogSeq(t *testing.T) {
	src := `
module cnt (en, out);
  input en; output out;
  dff f0 (q0, d0);
  xor g0 (d0, q0, en);
  and g1 (out, q0, en);
endmodule
`
	s, err := ParseVerilogSeq("cnt", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFFs() != 1 {
		t.Fatalf("FFs = %d", s.NumFFs())
	}
	u, err := s.Unroll(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Circuit.PIs) != 1+3 {
		t.Fatalf("PIs = %d", len(u.Circuit.PIs))
	}
}
