package netlist

// FaninCone returns the set of nets in the transitive fan-in of root
// (including root itself), as a boolean slice indexed by NetID.
func (c *Circuit) FaninCone(root NetID) []bool {
	in := make([]bool, len(c.Gates))
	stack := []NetID{root}
	in[root] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[n].Fanin {
			if !in[f] {
				in[f] = true
				stack = append(stack, f)
			}
		}
	}
	return in
}

// FaninConeInto is FaninCone writing into caller scratch: in is cleared
// and filled (grown if short), stack is used for the traversal. Both are
// returned for reuse on the next call. Hot loops tracing many cones (CPT
// over every failing output) use this to avoid one O(gates) allocation
// per cone.
func (c *Circuit) FaninConeInto(root NetID, in []bool, stack []NetID) ([]bool, []NetID) {
	if cap(in) < len(c.Gates) {
		in = make([]bool, len(c.Gates))
	} else {
		in = in[:len(c.Gates)]
		for i := range in {
			in[i] = false
		}
	}
	stack = append(stack[:0], root)
	in[root] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[n].Fanin {
			if !in[f] {
				in[f] = true
				stack = append(stack, f)
			}
		}
	}
	return in, stack
}

// FanoutCone returns the set of nets in the transitive fan-out of root
// (including root itself), as a boolean slice indexed by NetID. Requires a
// finalized circuit.
func (c *Circuit) FanoutCone(root NetID) []bool {
	out := make([]bool, len(c.Gates))
	stack := []NetID{root}
	out[root] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, g := range c.Gates[n].Fanout {
			if !out[g] {
				out[g] = true
				stack = append(stack, g)
			}
		}
	}
	return out
}

// ReachablePOs returns the primary outputs structurally reachable from net
// id. Diagnosis uses this to prune candidates that cannot possibly explain a
// failing output.
func (c *Circuit) ReachablePOs(id NetID) []NetID {
	cone := c.FanoutCone(id)
	var pos []NetID
	for _, po := range c.POs {
		if cone[po] {
			pos = append(pos, po)
		}
	}
	return pos
}

// UnionFaninCone returns the union of the fan-in cones of the given roots.
func (c *Circuit) UnionFaninCone(roots []NetID) []bool {
	in := make([]bool, len(c.Gates))
	var stack []NetID
	for _, r := range roots {
		if !in[r] {
			in[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[n].Fanin {
			if !in[f] {
				in[f] = true
				stack = append(stack, f)
			}
		}
	}
	return in
}

// IsFanoutStem reports whether net id drives more than one gate input (its
// value reconverges), which matters to critical path tracing: criticality of
// a stem cannot be inferred from branch criticality alone.
func (c *Circuit) IsFanoutStem(id NetID) bool {
	// Count fan-in references, not reader gates: a net feeding two inputs of
	// the same gate is also a stem.
	refs := 0
	for _, rd := range c.Gates[id].Fanout {
		for _, f := range c.Gates[rd].Fanin {
			if f == id {
				refs++
			}
		}
	}
	return refs > 1
}
