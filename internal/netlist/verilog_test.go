package netlist

import (
	"strings"
	"testing"
)

const c17Verilog = `
// c17 in flat structural Verilog
module c17 (G1, G2, G3, G6, G7, G22, G23);
  input G1, G2, G3, G6, G7;
  output G22, G23;
  wire G10, G11, G16, G19;
  nand U0 (G10, G1, G3);
  nand U1 (G11, G3, G6);
  nand U2 (G16, G2, G11);
  nand U3 (G19, G11, G7);
  nand U4 (G22, G10, G16);
  nand U5 (G23, G16, G19);
endmodule
`

func TestParseVerilogC17(t *testing.T) {
	c, err := ParseVerilog("x", strings.NewReader(c17Verilog))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c17" {
		t.Errorf("module name not picked up: %q", c.Name)
	}
	if c.NumLogicGates() != 6 || len(c.PIs) != 5 || len(c.POs) != 2 || c.MaxLevel() != 3 {
		t.Fatalf("structure: %+v", c.ComputeStats())
	}
	// Equivalence with the .bench c17 under one probe pattern is covered by
	// the round-trip test below; structural checks suffice here.
	if c.Gates[c.NetByName("G22")].Type != Nand {
		t.Error("gate type wrong")
	}
}

func TestParseVerilogFeatures(t *testing.T) {
	src := `
/* block
   comment */
module m (a, b, y, z);
  input a;
  input b;
  output y; output z;
  wire w1;
  and  g1 (w1, a, b);   // line comment
  assign y = w1;
  not  g2 (z,
           w1);         // multi-line statement
endmodule
`
	c, err := ParseVerilog("m", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[c.NetByName("y")].Type != Buf {
		t.Error("assign must become BUF")
	}
	if c.Gates[c.NetByName("z")].Type != Not {
		t.Error("multi-line not parsed")
	}
}

func TestParseVerilogOutOfOrder(t *testing.T) {
	src := `
module m (a, z);
  input a;
  output z;
  not g2 (z, w1);
  not g1 (w1, a);
  wire w1;
endmodule
`
	c, err := ParseVerilog("m", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogicGates() != 2 {
		t.Fatal("forward reference handling broken")
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := map[string]string{
		"undriven":      "module m (a, z); input a; output z; and g (z, a, q); endmodule",
		"cycle":         "module m (a, z); input a; output z; and g1 (z, a, w); and g2 (w, a, z); endmodule",
		"multidrive":    "module m (a, z); input a; output z; not g1 (z, a); not g2 (z, a); endmodule",
		"bad construct": "module m (a, z); input a; output z; always @(posedge a) z = 1; endmodule",
		"bad assign":    "module m (a, z); input a; output z; assign z a; endmodule",
		"short prim":    "module m (a, z); input a; output z; nand g1 (z); endmodule",
		"dff":           "module m (a, z); input a; output z; dff f (z, a); endmodule",
		"undriven out":  "module m (a, z); input a; output z; endmodule",
	}
	for name, src := range cases {
		if _, err := ParseVerilog(name, strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseVerilogScan(t *testing.T) {
	src := `
module seq (a, z);
  input a;
  output z;
  wire d;
  dff ff1 (q, d);
  and g1 (d, a, q);
  not g2 (z, q);
endmodule
`
	c, ffs, err := ParseVerilogScan("seq", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ffs != 1 {
		t.Fatalf("ffs = %d", ffs)
	}
	if c.Gates[c.NetByName("q")].Type != Input {
		t.Error("dff output should become pseudo-PI")
	}
	if !c.IsPO(c.NetByName("q_si")) {
		t.Error("dff input alias should be pseudo-PO")
	}
	// Plain ParseVerilog must reject dff.
	if _, err := ParseVerilog("seq", strings.NewReader(src)); err == nil {
		t.Error("ParseVerilog accepted dff")
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	// bench → circuit → verilog → circuit: structures must match.
	orig, err := ParseBench("c17", strings.NewReader(c17Bench))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVerilog(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilog("rt", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if back.NumGates() != orig.NumGates() || back.MaxLevel() != orig.MaxLevel() ||
		len(back.PIs) != len(orig.PIs) || len(back.POs) != len(orig.POs) {
		t.Fatalf("round trip changed structure:\n%s", sb.String())
	}
	for i := range orig.Gates {
		id := back.NetByName(orig.Gates[i].Name)
		if id == InvalidNet || back.Gates[id].Type != orig.Gates[i].Type {
			t.Fatalf("net %s lost or retyped", orig.Gates[i].Name)
		}
	}
}

func TestVerilogRoundTripRandom(t *testing.T) {
	c := randomBuild([]byte{9, 9, 9})
	var sb strings.Builder
	if err := WriteVerilog(&sb, c); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilog("rt", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if back.NumGates() != c.NumGates() || back.MaxLevel() != c.MaxLevel() {
		t.Fatal("random round trip changed structure")
	}
}

func TestSanitizeVName(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":  "ok_name",
		"bad-name": "bad_name",
		"9lives":   "m_9lives",
		"":         "m_",
	} {
		if got := sanitizeVName(in); got != want {
			t.Errorf("sanitize(%q) = %q want %q", in, got, want)
		}
	}
}
