package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseVerilog reads a structural gate-level Verilog subset — the flat
// netlist style synthesis tools emit:
//
//	module top (a, b, z);
//	  input a, b;
//	  output z;
//	  wire n1;
//	  nand g1 (n1, a, b);   // output first, then inputs
//	  not  g2 (z, n1);
//	  assign z2 = n1;        // buffer alias
//	endmodule
//
// Supported primitives: and, nand, or, nor, xor, xnor, not, buf — each
// with the conventional (output, input...) port order — plus `assign
// lhs = rhs;` as a buffer and dff instances via ParseVerilogScan.
// Comments (// and /* */), multi-line statements and vector-free named
// nets are handled; vectors, parameters, behavioural constructs and
// hierarchical modules are not (flatten first).
func ParseVerilog(name string, r io.Reader) (*Circuit, error) {
	stmts, modName, err := verilogStatements(r)
	if err != nil {
		return nil, fmt.Errorf("verilog %s: %v", name, err)
	}
	if modName != "" {
		name = modName
	}
	var (
		inputs, outputs []string
		defs            []benchDef
	)
	for _, st := range stmts {
		kw := st.fields[0]
		switch kw {
		case "input", "output", "wire":
			for _, n := range st.fields[1:] {
				switch kw {
				case "input":
					inputs = append(inputs, n)
				case "output":
					outputs = append(outputs, n)
				}
				// wires are implicit in the IR
			}
		case "assign":
			// assign lhs = rhs
			if len(st.fields) != 4 || st.fields[2] != "=" {
				return nil, fmt.Errorf("verilog %s: line %d: unsupported assign %q", name, st.line, st.raw)
			}
			defs = append(defs, benchDef{line: st.line, out: st.fields[1], typ: "BUF", fanins: []string{st.fields[3]}})
		case "and", "nand", "or", "nor", "xor", "xnor", "not", "buf":
			// prim instName (out, in...) — instName optional in some
			// netlists; detect by paren grouping done in verilogStatements:
			// fields = [prim, instName?, out, in...]
			ports := st.ports
			if len(ports) < 2 {
				return nil, fmt.Errorf("verilog %s: line %d: primitive %q needs ≥2 ports", name, st.line, kw)
			}
			defs = append(defs, benchDef{line: st.line, out: ports[0], typ: strings.ToUpper(kw), fanins: ports[1:]})
		case "module", "endmodule":
			// handled in verilogStatements / ignored
		case "dff":
			return nil, fmt.Errorf("verilog %s: line %d: sequential cell; use ParseVerilogScan", name, st.line)
		default:
			return nil, fmt.Errorf("verilog %s: line %d: unsupported construct %q", name, st.line, kw)
		}
	}
	return buildFromDefs(name, inputs, outputs, defs)
}

// ParseVerilogScan additionally accepts `dff inst (q, d);` instances,
// converting them to the full-scan combinational equivalent exactly like
// ParseBenchScan (q becomes a pseudo-PI, q_si = BUF(d) a pseudo-PO).
func ParseVerilogScan(name string, r io.Reader) (*Circuit, int, error) {
	stmts, modName, err := verilogStatements(r)
	if err != nil {
		return nil, 0, fmt.Errorf("verilog %s: %v", name, err)
	}
	if modName != "" {
		name = modName
	}
	var (
		inputs, outputs []string
		defs            []benchDef
		ffs             int
	)
	for _, st := range stmts {
		kw := st.fields[0]
		switch kw {
		case "input", "output", "wire":
			for _, n := range st.fields[1:] {
				switch kw {
				case "input":
					inputs = append(inputs, n)
				case "output":
					outputs = append(outputs, n)
				}
			}
		case "assign":
			if len(st.fields) != 4 || st.fields[2] != "=" {
				return nil, 0, fmt.Errorf("verilog %s: line %d: unsupported assign %q", name, st.line, st.raw)
			}
			defs = append(defs, benchDef{line: st.line, out: st.fields[1], typ: "BUF", fanins: []string{st.fields[3]}})
		case "and", "nand", "or", "nor", "xor", "xnor", "not", "buf":
			ports := st.ports
			if len(ports) < 2 {
				return nil, 0, fmt.Errorf("verilog %s: line %d: primitive %q needs ≥2 ports", name, st.line, kw)
			}
			defs = append(defs, benchDef{line: st.line, out: ports[0], typ: strings.ToUpper(kw), fanins: ports[1:]})
		case "dff":
			if len(st.ports) != 2 {
				return nil, 0, fmt.Errorf("verilog %s: line %d: dff needs (q, d)", name, st.line)
			}
			q, d := st.ports[0], st.ports[1]
			ffs++
			inputs = append(inputs, q)
			defs = append(defs, benchDef{line: st.line, out: q + "_si", typ: "BUF", fanins: []string{d}})
			outputs = append(outputs, q+"_si")
		case "module", "endmodule":
		default:
			return nil, 0, fmt.Errorf("verilog %s: line %d: unsupported construct %q", name, st.line, kw)
		}
	}
	c, err := buildFromDefs(name, inputs, outputs, defs)
	if err != nil {
		return nil, 0, err
	}
	return c, ffs, nil
}

// benchDef mirrors the .bench parser's internal definition record.
type benchDef struct {
	line   int
	out    string
	typ    string
	fanins []string
}

// buildFromDefs shares the two-pass construction with the .bench parser.
func buildFromDefs(name string, inputs, outputs []string, defs []benchDef) (*Circuit, error) {
	c := NewCircuit(name)
	for _, in := range inputs {
		if _, err := c.AddGate(Input, in); err != nil {
			return nil, fmt.Errorf("netlist %s: %v", name, err)
		}
	}
	placed := make(map[string]bool, len(inputs)+len(defs))
	defined := make(map[string]bool, len(defs))
	for _, in := range inputs {
		placed[in] = true
	}
	for _, d := range defs {
		if defined[d.out] {
			return nil, fmt.Errorf("netlist %s: line %d: net %q multiply driven", name, d.line, d.out)
		}
		defined[d.out] = true
	}
	remaining := defs
	for len(remaining) > 0 {
		progressed := false
		var next []benchDef
		for _, d := range remaining {
			ready := true
			for _, f := range d.fanins {
				if !placed[f] {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, d)
				continue
			}
			t, err := ParseGateType(d.typ)
			if err != nil {
				return nil, fmt.Errorf("netlist %s: line %d: %v", name, d.line, err)
			}
			fan := make([]NetID, len(d.fanins))
			for i, f := range d.fanins {
				fan[i] = c.NetByName(f)
			}
			if len(fan) == 1 && (t == And || t == Or) {
				t = Buf
			}
			if len(fan) == 1 && (t == Nand || t == Nor) {
				t = Not
			}
			if _, err := c.AddGate(t, d.out, fan...); err != nil {
				return nil, fmt.Errorf("netlist %s: line %d: %v", name, d.line, err)
			}
			placed[d.out] = true
			progressed = true
		}
		if !progressed {
			var missing []string
			for _, d := range next {
				for _, f := range d.fanins {
					if !placed[f] && !defined[f] {
						missing = append(missing, f)
					}
				}
			}
			if len(missing) > 0 {
				return nil, fmt.Errorf("netlist %s: undriven net(s): %s", name, strings.Join(missing, ", "))
			}
			return nil, fmt.Errorf("netlist %s: combinational cycle among %d statements", name, len(next))
		}
		remaining = next
	}
	for _, out := range outputs {
		id := c.NetByName(out)
		if id == InvalidNet {
			return nil, fmt.Errorf("netlist %s: output %q undriven", name, out)
		}
		if err := c.MarkPO(id); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// vStatement is one semicolon-terminated Verilog statement, pre-tokenized.
type vStatement struct {
	line   int
	raw    string
	fields []string // keyword + identifiers outside parens, '=' preserved
	ports  []string // identifiers inside the (...) port list, in order
}

// verilogStatements strips comments, splits on semicolons and tokenizes.
// It also extracts the module name.
func verilogStatements(r io.Reader) ([]vStatement, string, error) {
	br := bufio.NewReader(r)
	var (
		sb        strings.Builder
		inBlock   bool
		inLine    bool
		lineNo    = 1
		lineAt    = make([]int, 0, 256) // statement start lines
		curStart  = 1
		stmtTexts []string
	)
	appendStmt := func() {
		text := strings.TrimSpace(sb.String())
		sb.Reset()
		if text != "" {
			stmtTexts = append(stmtTexts, text)
			lineAt = append(lineAt, curStart)
		}
		curStart = lineNo
	}
	prev := byte(0)
	for {
		ch, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, "", err
		}
		if ch == '\n' {
			lineNo++
			inLine = false
			if sb.Len() == 0 {
				curStart = lineNo
			}
			sb.WriteByte(' ')
			prev = ch
			continue
		}
		if inLine {
			prev = ch
			continue
		}
		if inBlock {
			if prev == '*' && ch == '/' {
				inBlock = false
				prev = 0
				continue
			}
			prev = ch
			continue
		}
		if prev == '/' && ch == '/' {
			inLine = true
			// Remove the '/' already written.
			s := sb.String()
			sb.Reset()
			sb.WriteString(strings.TrimSuffix(s, "/"))
			prev = 0
			continue
		}
		if prev == '/' && ch == '*' {
			inBlock = true
			s := sb.String()
			sb.Reset()
			sb.WriteString(strings.TrimSuffix(s, "/"))
			prev = 0
			continue
		}
		if ch == ';' {
			appendStmt()
			prev = 0
			continue
		}
		sb.WriteByte(ch)
		prev = ch
	}
	appendStmt()

	var (
		stmts   []vStatement
		modName string
	)
	for i, text := range stmtTexts {
		st := vStatement{line: lineAt[i], raw: text}
		// Split off the port list if present.
		op := strings.Index(text, "(")
		cp := strings.LastIndex(text, ")")
		head := text
		if op >= 0 && cp > op {
			head = text[:op]
			for _, p := range strings.Split(text[op+1:cp], ",") {
				p = strings.TrimSpace(p)
				if p != "" {
					st.ports = append(st.ports, p)
				}
			}
		}
		head = strings.ReplaceAll(head, "=", " = ")
		head = strings.ReplaceAll(head, ",", " ")
		st.fields = strings.Fields(head)
		if len(st.fields) == 0 {
			if len(st.ports) == 0 {
				continue
			}
			return nil, "", fmt.Errorf("line %d: statement with ports but no keyword: %q", st.line, text)
		}
		if st.fields[0] == "module" {
			if len(st.fields) > 1 {
				modName = st.fields[1]
			}
			continue
		}
		if st.fields[0] == "endmodule" {
			continue
		}
		stmts = append(stmts, st)
	}
	return stmts, modName, nil
}

// WriteVerilog serializes the circuit as a flat structural Verilog module.
// ParseVerilog(WriteVerilog(c)) reproduces the structure.
func WriteVerilog(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	var ports []string
	for _, pi := range c.PIs {
		ports = append(ports, c.Gates[pi].Name)
	}
	for _, po := range c.POs {
		ports = append(ports, c.Gates[po].Name)
	}
	fmt.Fprintf(bw, "module %s (%s);\n", sanitizeVName(c.Name), strings.Join(ports, ", "))
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "  input %s;\n", c.Gates[pi].Name)
	}
	for _, po := range c.POs {
		fmt.Fprintf(bw, "  output %s;\n", c.Gates[po].Name)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Type == Input || c.IsPO(g.ID) {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", g.Name)
	}
	n := 0
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Type == Input {
			continue
		}
		names := make([]string, 0, len(g.Fanin)+1)
		names = append(names, g.Name)
		for _, f := range g.Fanin {
			names = append(names, c.Gates[f].Name)
		}
		fmt.Fprintf(bw, "  %s U%d (%s);\n", strings.ToLower(g.Type.String()), n, strings.Join(names, ", "))
		n++
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

func sanitizeVName(s string) string {
	out := []byte(s)
	for i, ch := range out {
		ok := ch == '_' || ('a' <= ch && ch <= 'z') || ('A' <= ch && ch <= 'Z') || ('0' <= ch && ch <= '9')
		if !ok {
			out[i] = '_'
		}
	}
	if len(out) == 0 || ('0' <= out[0] && out[0] <= '9') {
		return "m_" + string(out)
	}
	return string(out)
}
