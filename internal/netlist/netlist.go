// Package netlist defines the gate-level circuit representation used by the
// simulators, ATPG, fault machinery and the diagnosis engines.
//
// A Circuit is a directed acyclic graph of single-output gates. Every signal
// (primary input or gate output) is a Net, identified by a dense integer
// NetID so that per-net data can live in flat slices. Primary inputs are
// modelled as gates of type Input with no fan-in; every other net is driven
// by exactly one gate. Primary outputs are a designated subset of nets.
//
// Sequential designs are supported only in their full-scan form: package
// scan converts D flip-flops into pseudo primary inputs/outputs before any
// analysis runs, which is the standard setting for logic diagnosis.
package netlist

import (
	"fmt"
	"sort"
)

// NetID densely identifies a net (equivalently, the gate driving it).
type NetID int32

// InvalidNet is returned by lookups that fail.
const InvalidNet NetID = -1

// GateType enumerates the supported primitive gate functions.
type GateType uint8

// Supported gate types. Input has no fan-in; Buf and Not have exactly one;
// the others accept two or more fan-ins.
const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	numGateTypes
)

var gateTypeNames = [numGateTypes]string{
	"INPUT", "BUF", "NOT", "AND", "NAND", "OR", "NOR", "XOR", "XNOR",
}

// String returns the canonical upper-case gate name (as used in .bench).
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType parses a .bench-style gate name (case-insensitive; NOT and
// INV are synonyms, BUF and BUFF too).
func ParseGateType(s string) (GateType, error) {
	switch upper(s) {
	case "INPUT":
		return Input, nil
	case "BUF", "BUFF":
		return Buf, nil
	case "NOT", "INV":
		return Not, nil
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	}
	return Input, fmt.Errorf("netlist: unknown gate type %q", s)
}

// appendUniqueTail appends id unless it equals the last element — fan-in
// scans visit a multi-referenced net consecutively within one gate, so this
// keeps fanout lists duplicate-free per (net, reader) pair.
func appendUniqueTail(s []NetID, id NetID) []NetID {
	if n := len(s); n > 0 && s[n-1] == id {
		return s
	}
	return append(s, id)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// Inverting reports whether the gate's output inverts its "natural" function
// (NAND/NOR/XNOR/NOT).
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// ControllingValue returns the controlling input value of the gate and
// whether the gate has one (AND/NAND: 0, OR/NOR: 1; XOR-family and
// single-input gates have none).
func (t GateType) ControllingValue() (v bool, ok bool) {
	switch t {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	}
	return false, false
}

// Gate is a single-output primitive gate. Fanin holds the driving nets in
// declaration order; Fanout lists the gates reading this gate's output net.
type Gate struct {
	ID     NetID
	Type   GateType
	Name   string  // net name from the source description
	Fanin  []NetID // driving nets; nil for Input
	Fanout []NetID // reader gates (by NetID); maintained by Finalize
	Level  int     // topological level; 0 for Input, set by Finalize
}

// Circuit is an immutable-after-Finalize gate-level netlist.
type Circuit struct {
	Name  string
	Gates []Gate  // indexed by NetID
	PIs   []NetID // primary inputs, declaration order
	POs   []NetID // primary outputs, declaration order

	byName    map[string]NetID
	maxLevel  int
	finalized bool
	levelOrd  []NetID // all gates sorted by (level, id); built by Finalize
}

// NewCircuit returns an empty circuit under construction.
func NewCircuit(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]NetID)}
}

// AddGate appends a gate with the given type, name and fan-in nets and
// returns the new net's ID. It is an error to reuse a name, to give an Input
// a fan-in, or to give a non-Input no fan-in.
func (c *Circuit) AddGate(t GateType, name string, fanin ...NetID) (NetID, error) {
	if c.finalized {
		return InvalidNet, fmt.Errorf("netlist: AddGate on finalized circuit %q", c.Name)
	}
	if _, dup := c.byName[name]; dup {
		return InvalidNet, fmt.Errorf("netlist: duplicate net name %q", name)
	}
	switch {
	case t == Input && len(fanin) != 0:
		return InvalidNet, fmt.Errorf("netlist: input %q cannot have fan-in", name)
	case (t == Buf || t == Not) && len(fanin) != 1:
		return InvalidNet, fmt.Errorf("netlist: %s %q needs exactly 1 fan-in, got %d", t, name, len(fanin))
	case t != Input && t != Buf && t != Not && len(fanin) < 2:
		return InvalidNet, fmt.Errorf("netlist: %s %q needs ≥2 fan-ins, got %d", t, name, len(fanin))
	}
	for _, f := range fanin {
		if int(f) < 0 || int(f) >= len(c.Gates) {
			return InvalidNet, fmt.Errorf("netlist: gate %q references undefined net %d", name, f)
		}
	}
	id := NetID(len(c.Gates))
	c.Gates = append(c.Gates, Gate{ID: id, Type: t, Name: name, Fanin: fanin})
	c.byName[name] = id
	if t == Input {
		c.PIs = append(c.PIs, id)
	}
	return id, nil
}

// MustAddGate is AddGate that panics on error; intended for generators and
// tests where the construction is known-valid.
func (c *Circuit) MustAddGate(t GateType, name string, fanin ...NetID) NetID {
	id, err := c.AddGate(t, name, fanin...)
	if err != nil {
		panic(err)
	}
	return id
}

// MarkPO declares net id a primary output. Duplicate declarations are
// ignored.
func (c *Circuit) MarkPO(id NetID) error {
	if int(id) < 0 || int(id) >= len(c.Gates) {
		return fmt.Errorf("netlist: MarkPO of undefined net %d", id)
	}
	for _, p := range c.POs {
		if p == id {
			return nil
		}
	}
	c.POs = append(c.POs, id)
	return nil
}

// NetByName returns the net with the given name, or InvalidNet.
func (c *Circuit) NetByName(name string) NetID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return InvalidNet
}

// NameOf returns the name of net id ("" for out-of-range ids).
func (c *Circuit) NameOf(id NetID) string {
	if int(id) < 0 || int(id) >= len(c.Gates) {
		return ""
	}
	return c.Gates[id].Name
}

// NumGates returns the total gate count including Input pseudo-gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumLogicGates returns the gate count excluding Input pseudo-gates.
func (c *Circuit) NumLogicGates() int { return len(c.Gates) - len(c.PIs) }

// MaxLevel returns the maximum topological level (valid after Finalize).
func (c *Circuit) MaxLevel() int { return c.maxLevel }

// Finalized reports whether Finalize has run.
func (c *Circuit) Finalized() bool { return c.finalized }

// Finalize validates the netlist, computes fan-out lists and topological
// levels, and freezes the circuit. It must be called before simulation.
func (c *Circuit) Finalize() error {
	if c.finalized {
		return nil
	}
	if len(c.PIs) == 0 {
		return fmt.Errorf("netlist: circuit %q has no primary inputs", c.Name)
	}
	if len(c.POs) == 0 {
		return fmt.Errorf("netlist: circuit %q has no primary outputs", c.Name)
	}
	// Compute fan-out lists, then levels by Kahn's algorithm. Fresh builds
	// are topologically ordered by construction (AddGate only accepts
	// already-defined fan-ins), but structurally edited circuits (defect
	// injection rewires readers to later-created nets) may not be, and a
	// bad edit can even create a cycle — detect it here.
	for i := range c.Gates {
		c.Gates[i].Fanout = c.Gates[i].Fanout[:0]
		c.Gates[i].Level = 0
	}
	indeg := make([]int, len(c.Gates))
	for i := range c.Gates {
		g := &c.Gates[i]
		// Count distinct gate-level dependencies once per reader even when a
		// net feeds several inputs of the same gate.
		for _, f := range g.Fanin {
			c.Gates[f].Fanout = appendUniqueTail(c.Gates[f].Fanout, g.ID)
		}
		indeg[i] = len(g.Fanin)
	}
	queue := make([]NetID, 0, len(c.Gates))
	for i := range c.Gates {
		if indeg[i] == 0 {
			queue = append(queue, NetID(i))
		}
	}
	processed := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		processed++
		g := &c.Gates[n]
		if g.Level > c.maxLevel {
			c.maxLevel = g.Level
		}
		for _, rd := range g.Fanout {
			rg := &c.Gates[rd]
			if l := g.Level + 1; l > rg.Level {
				rg.Level = l
			}
			// Decrement once per fan-in reference from rd to n.
			for _, f := range rg.Fanin {
				if f == n {
					indeg[rd]--
				}
			}
			if indeg[rd] == 0 {
				queue = append(queue, rd)
			}
		}
	}
	if processed != len(c.Gates) {
		return fmt.Errorf("netlist: circuit %q contains a combinational cycle", c.Name)
	}
	// Warn-level structural check: every non-PO net should have fan-out.
	// Dangling nets are legal (they arise from defect injection copies) so
	// this is not an error.
	c.levelOrd = make([]NetID, len(c.Gates))
	for i := range c.levelOrd {
		c.levelOrd[i] = NetID(i)
	}
	sort.SliceStable(c.levelOrd, func(a, b int) bool {
		la, lb := c.Gates[c.levelOrd[a]].Level, c.Gates[c.levelOrd[b]].Level
		if la != lb {
			return la < lb
		}
		return c.levelOrd[a] < c.levelOrd[b]
	})
	c.finalized = true
	return nil
}

// LevelOrder returns all nets sorted by ascending topological level. The
// returned slice is shared; callers must not modify it.
func (c *Circuit) LevelOrder() []NetID {
	return c.levelOrd
}

// IsPO reports whether id is a primary output.
func (c *Circuit) IsPO(id NetID) bool {
	for _, p := range c.POs {
		if p == id {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the circuit in un-finalized state, suitable
// for structural modification (defect injection). Names, PIs and POs are
// preserved.
func (c *Circuit) Clone() *Circuit {
	n := NewCircuit(c.Name)
	n.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		ng := Gate{ID: g.ID, Type: g.Type, Name: g.Name}
		if g.Fanin != nil {
			ng.Fanin = append([]NetID(nil), g.Fanin...)
		}
		n.Gates[i] = ng
		n.byName[g.Name] = g.ID
	}
	n.PIs = append([]NetID(nil), c.PIs...)
	n.POs = append([]NetID(nil), c.POs...)
	return n
}

// Stats summarizes a circuit for reporting.
type Stats struct {
	Name      string
	PIs, POs  int
	Gates     int // logic gates, excluding Input pseudo-gates
	Nets      int // all nets
	MaxLevel  int
	TypeCount map[GateType]int
}

// ComputeStats gathers summary statistics.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{
		Name: c.Name, PIs: len(c.PIs), POs: len(c.POs),
		Gates: c.NumLogicGates(), Nets: len(c.Gates), MaxLevel: c.maxLevel,
		TypeCount: make(map[GateType]int),
	}
	for i := range c.Gates {
		s.TypeCount[c.Gates[i].Type]++
	}
	return s
}
