package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseBenchScan reads a .bench file that may contain DFF gates and returns
// the full-scan combinational equivalent: each flip-flop's output becomes a
// pseudo primary input (scan-out of the previous state) and each flip-flop's
// input becomes a pseudo primary output (scan-in of the next state), named
// "<ff>" and "<ff>_si" respectively. This mirrors how scan test and
// diagnosis treat sequential designs.
//
// It also returns the number of flip-flops converted.
func ParseBenchScan(name string, r io.Reader) (*Circuit, int, error) {
	// First pass: textual rewrite. DFF outputs become INPUTs; DFF inputs get
	// an OUTPUT declaration plus a BUF alias so the name is defined even if
	// the DFF input is a PI.
	var (
		sb      strings.Builder
		ffCount int
		scanner = bufio.NewScanner(r)
	)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			sb.WriteString(line)
			sb.WriteByte('\n')
			continue
		}
		working := line
		if i := strings.Index(working, "#"); i >= 0 {
			working = strings.TrimSpace(working[:i])
		}
		eq := strings.Index(working, "=")
		if eq >= 0 {
			rhs := strings.TrimSpace(working[eq+1:])
			if strings.HasPrefix(strings.ToUpper(rhs), "DFF") {
				out := strings.TrimSpace(working[:eq])
				arg, err := parenArg(rhs)
				if err != nil {
					return nil, 0, fmt.Errorf("scan %s: %v", name, err)
				}
				ffCount++
				fmt.Fprintf(&sb, "INPUT(%s)\n", out)
				fmt.Fprintf(&sb, "%s_si = BUF(%s)\n", out, arg)
				fmt.Fprintf(&sb, "OUTPUT(%s_si)\n", out)
				continue
			}
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	if err := scanner.Err(); err != nil {
		return nil, 0, fmt.Errorf("scan %s: %v", name, err)
	}
	c, err := ParseBench(name, strings.NewReader(sb.String()))
	if err != nil {
		return nil, 0, err
	}
	return c, ffCount, nil
}
