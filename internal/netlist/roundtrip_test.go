package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomBuild constructs a random valid circuit from a byte seed stream
// (testing/quick drives the generator inputs).
func randomBuild(seedBytes []byte) *Circuit {
	r := rand.New(rand.NewSource(int64(len(seedBytes))*2654435761 + hash(seedBytes)))
	c := NewCircuit("q")
	npi := 2 + r.Intn(6)
	ids := make([]NetID, 0, npi+40)
	for i := 0; i < npi; i++ {
		ids = append(ids, c.MustAddGate(Input, "i"+itoa(i)))
	}
	types := []GateType{And, Or, Nand, Nor, Xor, Xnor, Not, Buf}
	ng := 1 + r.Intn(40)
	for i := 0; i < ng; i++ {
		typ := types[r.Intn(len(types))]
		nin := 1
		if typ != Not && typ != Buf {
			nin = 2 + r.Intn(2)
		}
		fan := make([]NetID, 0, nin)
		used := map[NetID]bool{}
		for len(fan) < nin {
			f := ids[r.Intn(len(ids))]
			if used[f] && nin == 2 {
				continue
			}
			used[f] = true
			fan = append(fan, f)
		}
		ids = append(ids, c.MustAddGate(typ, "g"+itoa(i), fan...))
	}
	for k := 0; k < 1+r.Intn(3); k++ {
		_ = c.MarkPO(ids[len(ids)-1-r.Intn(min(ng, 5))])
	}
	if err := c.Finalize(); err != nil {
		panic(err)
	}
	return c
}

func hash(b []byte) int64 {
	var h int64 = 1469598103934665603
	for _, x := range b {
		h = (h ^ int64(x)) * 1099511628211
	}
	return h
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestQuickBenchRoundTrip: for random circuits, WriteBench → ParseBench
// preserves structure (gate types, fan-in shapes, levels, interface).
func TestQuickBenchRoundTrip(t *testing.T) {
	f := func(seed []byte) bool {
		c := randomBuild(seed)
		var sb strings.Builder
		if err := WriteBench(&sb, c); err != nil {
			return false
		}
		c2, err := ParseBench("rt", strings.NewReader(sb.String()))
		if err != nil {
			t.Logf("reparse: %v\n%s", err, sb.String())
			return false
		}
		if c2.NumGates() != c.NumGates() || len(c2.PIs) != len(c.PIs) ||
			len(c2.POs) != len(c.POs) || c2.MaxLevel() != c.MaxLevel() {
			return false
		}
		for i := range c.Gates {
			id := c2.NetByName(c.Gates[i].Name)
			if id == InvalidNet {
				return false
			}
			g2 := &c2.Gates[id]
			if g2.Type != c.Gates[i].Type || len(g2.Fanin) != len(c.Gates[i].Fanin) {
				return false
			}
			if g2.Level != c.Gates[i].Level {
				return false
			}
			for j, f := range c.Gates[i].Fanin {
				if c2.NameOf(g2.Fanin[j]) != c.NameOf(f) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFanoutConsistency: the fanout lists computed by Finalize must be
// exactly the inverse of the fanin lists.
func TestQuickFanoutConsistency(t *testing.T) {
	f := func(seed []byte) bool {
		c := randomBuild(seed)
		for i := range c.Gates {
			g := &c.Gates[i]
			for _, rd := range g.Fanout {
				found := false
				for _, fi := range c.Gates[rd].Fanin {
					if fi == g.ID {
						found = true
					}
				}
				if !found {
					return false
				}
			}
			for _, fi := range g.Fanin {
				found := false
				for _, rd := range c.Gates[fi].Fanout {
					if rd == g.ID {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickLevelsRespectEdges: every gate's level exceeds all its fan-ins'.
func TestQuickLevelsRespectEdges(t *testing.T) {
	f := func(seed []byte) bool {
		c := randomBuild(seed)
		for i := range c.Gates {
			for _, fi := range c.Gates[i].Fanin {
				if c.Gates[i].Level <= c.Gates[fi].Level {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
