// Package tester models the production-test artifacts the diagnosis flow
// consumes: pattern application to a device (here: a defect-injected circuit
// model), the resulting datalog of failing patterns with their failing
// primary outputs, and a text serialization of both patterns and datalogs.
//
// A Datalog is deliberately identical in information content to a
// fsim.Syndrome — diagnosis sees only what a tester records: which patterns
// failed and at which outputs. The package also models tester fail-memory
// truncation, a real-world datalog artifact the robustness experiments use.
package tester

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"multidiag/internal/bitset"
	"multidiag/internal/fsim"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

// Datalog records the observed failing behaviour of one device under one
// test set.
type Datalog struct {
	CircuitName string
	NumPatterns int
	NumPOs      int
	// Fails maps failing pattern index → failing PO set.
	Fails map[int]bitset.Set
	// Truncated is true when fail collection stopped early (fail-memory
	// full); patterns after the truncation point have unknown status.
	Truncated bool
	// TruncatedAfter is the last pattern index with trustworthy status when
	// Truncated is set.
	TruncatedAfter int
}

// FromSyndrome converts a simulated syndrome into a datalog.
func FromSyndrome(name string, s *fsim.Syndrome) *Datalog {
	d := &Datalog{
		CircuitName: name,
		NumPatterns: s.NumPatterns,
		NumPOs:      s.NumPOs,
		Fails:       make(map[int]bitset.Set),
	}
	for p, f := range s.Fails {
		if f != nil && !f.Empty() {
			d.Fails[p] = f.Clone()
		}
	}
	return d
}

// Syndrome converts back to the simulation-side representation.
func (d *Datalog) Syndrome() *fsim.Syndrome {
	s := fsim.NewSyndrome(d.NumPatterns, d.NumPOs)
	for p, f := range d.Fails {
		s.Fails[p] = f.Clone()
	}
	return s
}

// FailingPatterns returns the failing pattern indices in ascending order.
func (d *Datalog) FailingPatterns() []int {
	out := make([]int, 0, len(d.Fails))
	for p := range d.Fails {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// NumFailBits counts (pattern, PO) fail pairs.
func (d *Datalog) NumFailBits() int {
	n := 0
	for _, f := range d.Fails {
		n += f.Count()
	}
	return n
}

// Truncate models a tester whose fail memory holds at most maxFails
// (pattern, PO) pairs: observation stops mid-test once the budget is
// exhausted. It returns a new datalog.
func (d *Datalog) Truncate(maxFails int) *Datalog {
	out := &Datalog{
		CircuitName: d.CircuitName,
		NumPatterns: d.NumPatterns,
		NumPOs:      d.NumPOs,
		Fails:       make(map[int]bitset.Set),
	}
	budget := maxFails
	for _, p := range d.FailingPatterns() {
		f := d.Fails[p]
		n := f.Count()
		if n <= budget {
			out.Fails[p] = f.Clone()
			budget -= n
			continue
		}
		// Partial pattern capture then stop.
		if budget > 0 {
			part := bitset.New(d.NumPOs)
			for _, m := range f.Members() {
				if budget == 0 {
					break
				}
				part.Add(m)
				budget--
			}
			out.Fails[p] = part
		}
		out.Truncated = true
		out.TruncatedAfter = p
		return out
	}
	return out
}

// ApplyTest simulates the test application: the given circuit (typically a
// defect-injected copy) is simulated against the reference circuit's
// fault-free responses and the mismatches are recorded. Both circuits must
// have identical PI/PO interfaces.
func ApplyTest(reference, device *netlist.Circuit, pats []sim.Pattern) (*Datalog, error) {
	if len(reference.PIs) != len(device.PIs) || len(reference.POs) != len(device.POs) {
		return nil, fmt.Errorf("tester: interface mismatch: %d/%d PIs, %d/%d POs",
			len(reference.PIs), len(device.PIs), len(reference.POs), len(device.POs))
	}
	refSim := sim.New(reference)
	devSim := sim.New(device)
	syn := fsim.NewSyndrome(len(pats), len(reference.POs))
	for base := 0; base < len(pats); base += 64 {
		end := base + 64
		if end > len(pats) {
			end = len(pats)
		}
		chunk := pats[base:end]
		refPI, _, err := refSim.PackPatterns(chunk)
		if err != nil {
			return nil, err
		}
		devPI, _, err := devSim.PackPatterns(chunk)
		if err != nil {
			return nil, err
		}
		if err := refSim.Run(refPI); err != nil {
			return nil, err
		}
		if err := devSim.Run(devPI); err != nil {
			return nil, err
		}
		for i := range reference.POs {
			diff := refSim.Value(reference.POs[i]).DiffKnown(devSim.Value(device.POs[i]))
			for slot := uint(0); slot < 64; slot++ {
				p := base + int(slot)
				if p >= len(pats) {
					break
				}
				if diff>>slot&1 == 1 {
					syn.AddFail(p, i)
				}
			}
		}
	}
	return FromSyndrome(reference.Name, syn), nil
}

// WriteDatalog serializes the datalog in a line-oriented text format:
//
//	# datalog for <circuit>
//	patterns <N>
//	pos <M>
//	fail <patternIdx> <poIdx> <poIdx> ...
//	truncated <afterPattern>     (optional)
func WriteDatalog(w io.Writer, d *Datalog) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# datalog for %s\n", d.CircuitName)
	fmt.Fprintf(bw, "patterns %d\n", d.NumPatterns)
	fmt.Fprintf(bw, "pos %d\n", d.NumPOs)
	for _, p := range d.FailingPatterns() {
		fmt.Fprintf(bw, "fail %d", p)
		for _, po := range d.Fails[p].Members() {
			fmt.Fprintf(bw, " %d", po)
		}
		fmt.Fprintln(bw)
	}
	if d.Truncated {
		fmt.Fprintf(bw, "truncated %d\n", d.TruncatedAfter)
	}
	return bw.Flush()
}

// ReadDatalog parses the WriteDatalog format.
func ReadDatalog(r io.Reader) (*Datalog, error) {
	d := &Datalog{Fails: make(map[int]bitset.Set)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if d.CircuitName == "" {
				d.CircuitName = strings.TrimSpace(strings.TrimPrefix(text, "# datalog for"))
			}
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "patterns", "pos", "truncated":
			if len(fields) != 2 {
				return nil, fmt.Errorf("tester: line %d: %q needs one argument", line, fields[0])
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("tester: line %d: %v", line, err)
			}
			switch fields[0] {
			case "patterns":
				d.NumPatterns = n
			case "pos":
				d.NumPOs = n
			case "truncated":
				d.Truncated = true
				d.TruncatedAfter = n
			}
		case "fail":
			if len(fields) < 3 {
				return nil, fmt.Errorf("tester: line %d: fail needs pattern and ≥1 PO", line)
			}
			if d.NumPOs == 0 {
				return nil, fmt.Errorf("tester: line %d: fail before pos declaration", line)
			}
			p, err := strconv.Atoi(fields[1])
			if err != nil || p < 0 || p >= d.NumPatterns {
				return nil, fmt.Errorf("tester: line %d: bad pattern index %q", line, fields[1])
			}
			set := bitset.New(d.NumPOs)
			for _, f := range fields[2:] {
				po, err := strconv.Atoi(f)
				if err != nil || po < 0 || po >= d.NumPOs {
					return nil, fmt.Errorf("tester: line %d: bad PO index %q", line, f)
				}
				set.Add(po)
			}
			d.Fails[p] = set
		default:
			return nil, fmt.Errorf("tester: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d.NumPatterns == 0 {
		return nil, fmt.Errorf("tester: datalog missing patterns declaration")
	}
	return d, nil
}

// WritePatterns serializes a pattern set, one 0/1/X string per line.
func WritePatterns(w io.Writer, pats []sim.Pattern) error {
	bw := bufio.NewWriter(w)
	for _, p := range pats {
		fmt.Fprintln(bw, p.String())
	}
	return bw.Flush()
}

// ReadPatterns parses the WritePatterns format; all patterns must share one
// width.
func ReadPatterns(r io.Reader) ([]sim.Pattern, error) {
	var out []sim.Pattern
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		p, err := sim.ParsePattern(text)
		if err != nil {
			return nil, fmt.Errorf("tester: line %d: %v", line, err)
		}
		if len(out) > 0 && len(p) != len(out[0]) {
			return nil, fmt.Errorf("tester: line %d: width %d, want %d", line, len(p), len(out[0]))
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
