package tester

import (
	"strings"
	"testing"

	"multidiag/internal/bitset"
	"multidiag/internal/circuits"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

func exhaustivePatterns(npi int) []sim.Pattern {
	n := 1 << npi
	pats := make([]sim.Pattern, n)
	for m := 0; m < n; m++ {
		p := make(sim.Pattern, npi)
		for i := 0; i < npi; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats[m] = p
	}
	return pats
}

func TestFromSyndromeRoundTrip(t *testing.T) {
	s := fsim.NewSyndrome(10, 4)
	s.AddFail(2, 0)
	s.AddFail(2, 3)
	s.AddFail(7, 1)
	d := FromSyndrome("x", s)
	if len(d.Fails) != 2 || d.NumFailBits() != 3 {
		t.Fatalf("datalog: %+v", d)
	}
	fp := d.FailingPatterns()
	if len(fp) != 2 || fp[0] != 2 || fp[1] != 7 {
		t.Fatalf("failing patterns %v", fp)
	}
	back := d.Syndrome()
	if !back.Equal(s) {
		t.Fatal("syndrome round trip failed")
	}
	// Mutating the datalog must not affect the source syndrome.
	d.Fails[2].Add(1)
	if s.Fails[2].Has(1) {
		t.Fatal("FromSyndrome shares bitset storage")
	}
}

func TestApplyTestCleanDevice(t *testing.T) {
	c := circuits.C17()
	dev := c.Clone()
	if err := dev.Finalize(); err != nil {
		t.Fatal(err)
	}
	d, err := ApplyTest(c, dev, exhaustivePatterns(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Fails) != 0 {
		t.Fatalf("clean device fails %d patterns", len(d.Fails))
	}
}

func TestApplyTestMatchesFaultSim(t *testing.T) {
	// A device with G16 hard-wired to 0 must produce exactly the stuck-at
	// syndrome predicted by the fault simulator.
	c := circuits.C17()
	pats := exhaustivePatterns(5)

	dev := netlist.NewCircuit("c17sa")
	for _, name := range []string{"G1", "G2", "G3", "G6", "G7"} {
		dev.MustAddGate(netlist.Input, name)
	}
	g1, g3, g6 := dev.NetByName("G1"), dev.NetByName("G3"), dev.NetByName("G6")
	g2, g7 := dev.NetByName("G2"), dev.NetByName("G7")
	g10 := dev.MustAddGate(netlist.Nand, "G10", g1, g3)
	g11 := dev.MustAddGate(netlist.Nand, "G11", g3, g6)
	// G16 stuck at 0: replace with constant 0 = AND(G2, NOT(G2)).
	n := dev.MustAddGate(netlist.Not, "nG2", g2)
	g16 := dev.MustAddGate(netlist.And, "G16", g2, n)
	g19 := dev.MustAddGate(netlist.Nand, "G19", g11, g7)
	g22 := dev.MustAddGate(netlist.Nand, "G22", g10, g16)
	g23 := dev.MustAddGate(netlist.Nand, "G23", g16, g19)
	_ = dev.MarkPO(g22)
	_ = dev.MarkPO(g23)
	if err := dev.Finalize(); err != nil {
		t.Fatal(err)
	}

	d, err := ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	want := fs.SimulateStuckAt(fault.StuckAt{Net: c.NetByName("G16"), Value1: false})
	if !d.Syndrome().Equal(want) {
		t.Fatal("ApplyTest syndrome differs from fault-sim prediction")
	}
}

func TestApplyTestInterfaceMismatch(t *testing.T) {
	c := circuits.C17()
	add, _ := circuits.RippleAdder(2)
	if _, err := ApplyTest(c, add, exhaustivePatterns(5)); err == nil {
		t.Fatal("interface mismatch accepted")
	}
}

func TestTruncate(t *testing.T) {
	d := &Datalog{CircuitName: "x", NumPatterns: 10, NumPOs: 8, Fails: map[int]bitset.Set{}}
	for _, p := range []int{1, 3, 5} {
		s := bitset.New(8)
		s.Add(0)
		s.Add(4)
		d.Fails[p] = s
	}
	// Budget 6 holds all.
	full := d.Truncate(6)
	if full.Truncated || full.NumFailBits() != 6 {
		t.Fatalf("truncate(6): %+v", full)
	}
	// Budget 3: patterns 1 fully, pattern 3 partially, stop.
	part := d.Truncate(3)
	if !part.Truncated || part.TruncatedAfter != 3 {
		t.Fatalf("truncate(3): %+v", part)
	}
	if part.NumFailBits() != 3 {
		t.Fatalf("truncate(3) bits = %d", part.NumFailBits())
	}
	if _, ok := part.Fails[5]; ok {
		t.Fatal("pattern after truncation retained")
	}
	// Budget 2: pattern 1 fully (2 bits) then pattern 3 hits 0 budget.
	p2 := d.Truncate(2)
	if !p2.Truncated || p2.NumFailBits() != 2 {
		t.Fatalf("truncate(2): %d bits", p2.NumFailBits())
	}
}

func TestDatalogSerialization(t *testing.T) {
	d := &Datalog{CircuitName: "c17", NumPatterns: 32, NumPOs: 2, Fails: map[int]bitset.Set{}}
	s1 := bitset.New(2)
	s1.Add(0)
	s12 := bitset.New(2)
	s12.Add(0)
	s12.Add(1)
	d.Fails[3] = s1
	d.Fails[17] = s12
	d.Truncated = true
	d.TruncatedAfter = 20

	var sb strings.Builder
	if err := WriteDatalog(&sb, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatalog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if back.CircuitName != "c17" || back.NumPatterns != 32 || back.NumPOs != 2 {
		t.Fatalf("header lost: %+v", back)
	}
	if !back.Truncated || back.TruncatedAfter != 20 {
		t.Fatal("truncation marker lost")
	}
	if len(back.Fails) != 2 || !back.Fails[3].Has(0) || !back.Fails[17].Has(1) {
		t.Fatalf("fails lost: %+v", back.Fails)
	}
}

func TestReadDatalogErrors(t *testing.T) {
	cases := map[string]string{
		"no patterns":     "pos 2\nfail 0 1\n",
		"bad fail pat":    "patterns 4\npos 2\nfail 9 0\n",
		"bad fail po":     "patterns 4\npos 2\nfail 0 5\n",
		"fail before pos": "patterns 4\nfail 0 1\n",
		"unknown":         "patterns 4\npos 2\nfrobnicate 1\n",
		"short fail":      "patterns 4\npos 2\nfail 0\n",
		"non-numeric":     "patterns x\n",
		"empty":           "",
	}
	for name, src := range cases {
		if _, err := ReadDatalog(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPatternSerialization(t *testing.T) {
	pats := []sim.Pattern{
		mustPattern(t, "01X10"),
		mustPattern(t, "11111"),
	}
	var sb strings.Builder
	if err := WritePatterns(&sb, pats); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPatterns(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].String() != "01X10" || back[1].String() != "11111" {
		t.Fatalf("round trip: %v", back)
	}
	// Comments and blanks tolerated.
	back2, err := ReadPatterns(strings.NewReader("# hi\n\n01X10\n"))
	if err != nil || len(back2) != 1 {
		t.Fatal(err)
	}
	// Width mismatch rejected.
	if _, err := ReadPatterns(strings.NewReader("01\n011\n")); err == nil {
		t.Error("width mismatch accepted")
	}
	// Bad character rejected.
	if _, err := ReadPatterns(strings.NewReader("012\n")); err == nil {
		t.Error("bad char accepted")
	}
}

func mustPattern(t *testing.T, s string) sim.Pattern {
	t.Helper()
	p, err := sim.ParsePattern(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
