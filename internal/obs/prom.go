package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promNamespace prefixes every exposed metric name, matching the expvar
// export key.
const promNamespace = "multidiag"

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative `_bucket{le="…"}` series with `_sum` and
// `_count`, using the log₂ bucket upper bounds as `le` thresholds, plus
// derived `_p50`/`_p95`/`_p99`/`_max` summary gauges per populated
// histogram (upper-bound estimates from the log₂ buckets, for dashboards
// that want quantiles without server-side histogram_quantile).
// Metric names are namespaced under "multidiag_" and sanitized (dots →
// underscores). Safe on a nil registry (writes nothing).
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	var sb strings.Builder

	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name])
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := hists[name]
		pn := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", pn)
		var cum int64
		for _, b := range h.Buckets() {
			cum += b.N
			fmt.Fprintf(&sb, "%s_bucket{le=\"%d\"} %d\n", pn, b.Hi, cum)
		}
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count())
		fmt.Fprintf(&sb, "%s_sum %d\n", pn, h.Sum())
		fmt.Fprintf(&sb, "%s_count %d\n", pn, h.Count())
		// Exemplars ride as comment lines (parse-safe in text 0.0.4, which
		// has no native exemplar syntax): the latest trace ID observed into
		// each bucket, linking a latency band to one captured span tree.
		for _, e := range h.Exemplars() {
			fmt.Fprintf(&sb, "# EXEMPLAR %s_bucket{le=\"%d\"} %d trace_id=%s\n", pn, e.Hi, e.Value, e.TraceID)
		}
		if h.Count() > 0 {
			for _, q := range []struct {
				suffix string
				v      int64
			}{
				{"p50", h.Quantile(0.50)},
				{"p95", h.Quantile(0.95)},
				{"p99", h.Quantile(0.99)},
				{"max", h.Max()},
			} {
				fmt.Fprintf(&sb, "# TYPE %s_%s gauge\n%s_%s %d\n", pn, q.suffix, pn, q.suffix, q.v)
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// promName namespaces and sanitizes a registry name for Prometheus:
// every character outside [a-zA-Z0-9_:] becomes "_".
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString(promNamespace)
	sb.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
