package obs

import (
	"flag"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRuntimeSamplerPopulatesRegistry: one explicit sample must fill the
// scalar gauges with live values and leave the histograms consistent.
func TestRuntimeSamplerPopulatesRegistry(t *testing.T) {
	r := NewRegistry()
	s := newRuntimeSampler(r, time.Hour) // never ticks; we drive it by hand
	runtime.GC()                         // guarantee ≥1 GC cycle and some pause history
	s.sample()

	if v := r.Gauge(runtimeHeapGauge).Value(); v <= 0 {
		t.Errorf("%s = %d, want > 0", runtimeHeapGauge, v)
	}
	if v := r.Gauge(runtimeGoroutineGauge).Value(); v < 1 {
		t.Errorf("%s = %d, want ≥ 1", runtimeGoroutineGauge, v)
	}
	if v := r.Gauge(runtimeGCGauge).Value(); v < 1 {
		t.Errorf("%s = %d, want ≥ 1 after runtime.GC()", runtimeGCGauge, v)
	}
	// GC pauses happened (we forced a cycle), so the pause histogram must
	// hold at least one observation with a positive sum.
	h := r.Histogram(runtimeGCPauseHist)
	if h.Count() < 1 || h.Sum() <= 0 {
		t.Errorf("%s count=%d sum=%d, want ≥1 observation with positive sum", runtimeGCPauseHist, h.Count(), h.Sum())
	}
}

// TestRuntimeSamplerDeltaFolding: re-sampling without new runtime activity
// must not re-count the cumulative history, and counts never decrease.
func TestRuntimeSamplerDeltaFolding(t *testing.T) {
	r := NewRegistry()
	s := newRuntimeSampler(r, time.Hour)
	runtime.GC()
	s.sample()
	h := r.Histogram(runtimeGCPauseHist)
	first := h.Count()
	s.sample() // no GC in between: delta fold must add nothing
	if got := h.Count(); got != first {
		t.Errorf("idle resample grew pause count %d → %d", first, got)
	}
	runtime.GC()
	s.sample()
	if got := h.Count(); got <= first {
		t.Errorf("pause count %d did not grow past %d after another GC", got, first)
	}
}

// TestRuntimeSamplerLifecycle: the background loop started by
// StartRuntimeSampler samples on its interval and once more at stop, and
// a nil registry degrades to a no-op stop.
func TestRuntimeSamplerLifecycle(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, time.Millisecond) // clamped to 10ms
	time.Sleep(30 * time.Millisecond)
	stop()
	if v := r.Gauge(runtimeGoroutineGauge).Value(); v < 1 {
		t.Errorf("sampler loop never sampled: goroutines = %d", v)
	}
	StartRuntimeSampler(nil, time.Second)() // must not panic
	var nilS *RuntimeSampler
	nilS.Stop()
	nilS.sample()
}

// TestFlagsSampleRuntime: -sample-runtime wires the sampler into Setup's
// registry so the snapshot (and hence /metrics and the -v footer) carries
// the runtime.* instruments after finish.
func TestFlagsSampleRuntime(t *testing.T) {
	defer SetGlobal(Global())
	var f Flags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-sample-runtime", "25ms"}); err != nil {
		t.Fatal(err)
	}
	if f.SampleRuntime != 25*time.Millisecond {
		t.Fatalf("SampleRuntime = %v", f.SampleRuntime)
	}
	tr, finish, err := f.Setup("unit")
	if err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil { // stop-time sample runs even before the first tick
		t.Fatal(err)
	}
	snap := tr.Registry().Snapshot()
	for _, want := range []string{runtimeHeapGauge, runtimeGoroutineGauge, runtimeGCGauge} {
		if snap[want] <= 0 && want != runtimeGCGauge {
			t.Errorf("snapshot missing live %s: %v", want, snap[want])
		}
		if _, ok := snap[want]; !ok {
			t.Errorf("snapshot has no %s key", want)
		}
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, tr.Registry()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "multidiag_runtime_heap_inuse_bytes") {
		t.Error("/metrics exposition missing runtime_heap_inuse_bytes")
	}
}
