package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// PhaseNS is the JSONL rendering of one phase aggregate.
type PhaseNS struct {
	Count int64 `json:"n"`
	DurNS int64 `json:"dur_ns"`
}

// Event is one JSONL trace record. Two kinds are emitted:
//
//	{"kind":"span","run":…,"phase":…,"seq":…,"start_ns":…,"dur_ns":…}
//	{"kind":"run","run":…,"seq":…,"dur_ns":…,"phases":{…},"counters":{…},"extra":{…}}
//
// seq is a process-wide monotone sequence per emitter, so interleaved
// concurrent emission stays reconstructible offline.
type Event struct {
	Kind     string             `json:"kind"`
	Run      string             `json:"run,omitempty"`
	Phase    string             `json:"phase,omitempty"`
	Seq      int64              `json:"seq"`
	StartNS  int64              `json:"start_ns,omitempty"`
	DurNS    int64              `json:"dur_ns,omitempty"`
	Phases   map[string]PhaseNS `json:"phases,omitempty"`
	Counters map[string]int64   `json:"counters,omitempty"`
	Extra    map[string]any     `json:"extra,omitempty"`
}

// Emitter serializes events as JSON Lines onto one writer. It is safe for
// concurrent use and keeps the first write/encode error sticky, so a CLI
// can stream fire-and-forget from hot paths and still fail loudly at exit
// instead of silently dropping events. A nil *Emitter ignores every call.
type Emitter struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	seq int64
	n   int64
	err error
}

// NewEmitter wraps w. The caller owns w's lifecycle (see Close).
func NewEmitter(w io.Writer) *Emitter {
	return &Emitter{w: w, enc: json.NewEncoder(w)}
}

// Emit writes one event line, assigning its sequence number. After the
// first failure every subsequent Emit returns the same sticky error
// without writing.
func (e *Emitter) Emit(ev Event) error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	ev.Seq = e.seq
	e.seq++
	if err := e.enc.Encode(ev); err != nil {
		e.err = fmt.Errorf("obs: trace emit failed: %w", err)
		return e.err
	}
	e.n++
	return nil
}

// Events returns the number of successfully emitted records.
func (e *Emitter) Events() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Err returns the sticky error, if any emission failed.
func (e *Emitter) Err() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close closes the underlying writer when it is an io.Closer and returns
// the sticky emission error (which takes precedence over the close error:
// dropped events matter more than a double-close).
func (e *Emitter) Close() error {
	if e == nil {
		return nil
	}
	var closeErr error
	if c, ok := e.w.(io.Closer); ok {
		closeErr = c.Close()
	}
	if err := e.Err(); err != nil {
		return err
	}
	return closeErr
}
