package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a set of named counters, gauges and log₂-bucket histograms.
// Instrument lookup (Counter/Gauge/Histogram) takes a mutex; the returned
// handles update lock-free via atomics, so hot paths resolve their handles
// once and the parallel experiment runner increments them racelessly.
// A nil *Registry hands out nil handles, and every handle method tolerates
// a nil receiver — the disabled path is a single pointer test.
//
// A name identifies exactly one instrument kind: registering "x" as a
// counter and later asking for Histogram("x") panics instead of silently
// aliasing two instruments that would collide in Snapshot keys and the
// Prometheus exposition.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Panics if
// name is already registered as a gauge or histogram.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		r.checkUnused(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Panics if name
// is already registered as a counter or histogram.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		r.checkUnused(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Panics
// if name is already registered as a counter or gauge.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		r.checkUnused(name, "histogram")
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// checkUnused panics when name is already registered under a different
// instrument kind. Called with r.mu held, just before creating the
// instrument as `want`; a programming error this early is better surfaced
// loudly than as two instruments silently aliasing one snapshot key.
func (r *Registry) checkUnused(name, want string) {
	var have string
	switch {
	case r.counters[name] != nil:
		have = "counter"
	case r.gauges[name] != nil:
		have = "gauge"
	case r.hists[name] != nil:
		have = "histogram"
	default:
		return
	}
	panic("obs: metric " + quote(name) + " already registered as a " + have +
		", cannot reuse the name as a " + want)
}

// quote is a minimal %q for the panic message (keeps fmt out of the
// registry's import set).
func quote(s string) string { return `"` + s + `"` }

// Reset zeroes every registered instrument (handles stay valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
			h.exemplars[i].Store(nil)
		}
	}
}

// Snapshot flattens the registry into a name→value map: counters and
// gauges under their own names, histograms as name.count / name.sum plus
// one name.le_<2^k> entry per populated log₂ bucket and the derived
// name.p50 / name.p95 / name.p99 / name.max quantile summaries
// (upper-bound estimates; see Histogram.Quantile). This is the counters
// payload of JSONL run records and the expvar export.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+6*len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+".count"] = h.Count()
		out[name+".sum"] = h.Sum()
		for _, b := range h.Buckets() {
			out[name+".le_"+itoa(b.Hi)] = b.N
		}
		if h.Count() > 0 {
			out[name+".p50"] = h.Quantile(0.50)
			out[name+".p95"] = h.Quantile(0.95)
			out[name+".p99"] = h.Quantile(0.99)
			out[name+".max"] = h.Max()
		}
	}
	return out
}

// HistogramNames returns the sorted names of the registered histograms
// (for renderers that want quantile summaries per histogram rather than
// the flattened snapshot keys).
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]string, 0, len(r.hists))
	for name := range r.hists {
		out = append(out, name)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// Names returns the sorted instrument names (histograms once, without the
// derived snapshot keys).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		out = append(out, name)
	}
	for name := range r.gauges {
		out = append(out, name)
	}
	for name := range r.hists {
		out = append(out, name)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// itoa is a minimal int64 formatter (avoids strconv in the snapshot path
// for no good reason other than keeping the import set tiny — it is not
// hot).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; no-op on a nil receiver.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable last-value instrument.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value; no-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v when v exceeds the stored value.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations in log₂ buckets: bucket k holds values v
// with 2^(k-1) ≤ v < 2^k (bucket 0 holds v ≤ 0). 64 buckets cover the
// whole non-negative int64 range, so Observe is a bits.Len64 plus two
// atomic adds — cheap enough for per-simulation call sites.
//
// Buckets optionally carry an exemplar — the trace ID of the most recent
// request whose observation landed there (see ObserveEx) — joining the
// aggregate view to one concrete request-scoped span tree.
type Histogram struct {
	count     atomic.Int64
	sum       atomic.Int64
	buckets   [65]atomic.Int64
	exemplars [65]atomic.Pointer[exemplar]
}

// exemplar links one observation to the trace that produced it.
type exemplar struct {
	value   int64
	traceID string
}

// bucketIndex maps a value to its log₂ bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value; no-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveN records n identical observations of v in one shot — the bulk
// path for folding externally bucketed data (e.g. runtime/metrics
// histogram deltas) without n Observe calls. n ≤ 0 and nil receivers are
// no-ops.
func (h *Histogram) ObserveN(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(v * n)
	h.buckets[bucketIndex(v)].Add(n)
}

// ObserveEx is Observe with an exemplar: the value's bucket remembers
// traceID (last writer wins) so a latency spike in the exposition links
// to a concrete captured trace. An empty traceID degrades to Observe.
func (h *Histogram) ObserveEx(v int64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		h.exemplars[bucketIndex(v)].Store(&exemplar{value: v, traceID: traceID})
	}
}

// ObserveNEx is ObserveN with an exemplar (see ObserveEx).
func (h *Histogram) ObserveNEx(v, n int64, traceID string) {
	if h == nil || n <= 0 {
		return
	}
	h.ObserveN(v, n)
	if traceID != "" {
		h.exemplars[bucketIndex(v)].Store(&exemplar{value: v, traceID: traceID})
	}
}

// BucketExemplar is one bucket's retained exemplar: the latest (Value,
// TraceID) observation that landed in [Lo, Hi].
type BucketExemplar struct {
	Lo, Hi  int64
	Value   int64
	TraceID string
}

// Exemplars returns the buckets holding an exemplar, ascending.
func (h *Histogram) Exemplars() []BucketExemplar {
	if h == nil {
		return nil
	}
	var out []BucketExemplar
	for k := range h.exemplars {
		e := h.exemplars[k].Load()
		if e == nil {
			continue
		}
		be := BucketExemplar{Hi: bucketHi(k), Value: e.value, TraceID: e.traceID}
		if k > 0 {
			be.Lo = int64(1) << (k - 1)
		}
		out = append(out, be)
	}
	return out
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]): the upper bound of the first log₂ bucket whose cumulative
// count reaches q·count. The estimate is exact to within the bucket's 2×
// resolution, which is what a log-scale latency readout needs. Returns 0
// on an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for k := range h.buckets {
		cum += h.buckets[k].Load()
		if cum >= rank {
			return bucketHi(k)
		}
	}
	return bucketHi(len(h.buckets) - 1)
}

// Max returns the upper bound of the highest populated bucket (0 when
// empty): the tightest maximum the log₂ representation can report.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	for k := len(h.buckets) - 1; k >= 0; k-- {
		if h.buckets[k].Load() > 0 {
			return bucketHi(k)
		}
	}
	return 0
}

// bucketHi is the inclusive upper bound of bucket k (0 for the v≤0
// bucket).
func bucketHi(k int) int64 {
	if k == 0 {
		return 0
	}
	if k == 64 {
		return int64(^uint64(0) >> 1) // max int64
	}
	return int64(1)<<k - 1
}

// Bucket is one populated histogram bucket: N observations in [Lo, Hi].
type Bucket struct {
	Lo, Hi int64
	N      int64
}

// Buckets returns the populated buckets in ascending range order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for k := range h.buckets {
		n := h.buckets[k].Load()
		if n == 0 {
			continue
		}
		b := Bucket{N: n, Hi: bucketHi(k)}
		if k > 0 {
			b.Lo = int64(1) << (k - 1)
		}
		out = append(out, b)
	}
	return out
}
