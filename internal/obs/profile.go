package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// StartProfiles enables the requested profiles ("" disables either). The
// returned stop function ends the CPU profile and writes the heap profile;
// it must run before process exit or the files are truncated/empty.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("obs: mem profile: %w", err)
				}
				return firstErr
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: mem profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// publishOnce guards the process-wide expvar name (expvar panics on
// duplicate publication).
var publishOnce sync.Once

// ServeDebug exposes net/http/pprof and expvar on addr (e.g. ":6060" or
// "127.0.0.1:0") in a background goroutine and publishes the registry
// snapshot under the expvar name "multidiag". It returns the bound
// address so callers can print it (and tests can use port 0).
func ServeDebug(addr string, r *Registry) (string, error) {
	if r != nil {
		publishOnce.Do(func() {
			expvar.Publish("multidiag", expvar.Func(func() any { return r.Snapshot() }))
		})
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	go http.Serve(ln, nil) // default mux carries /debug/pprof and /debug/vars
	return ln.Addr().String(), nil
}
