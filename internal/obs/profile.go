package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// StartProfiles enables the requested profiles ("" disables either). The
// returned stop function ends the CPU profile and writes the heap profile;
// it must run before process exit or the files are truncated/empty.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("obs: mem profile: %w", err)
				}
				return firstErr
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: mem profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// publishOnce guards the process-wide expvar name (expvar panics on
// duplicate publication) and the /metrics route on the default mux
// (http.HandleFunc panics on duplicate registration). debugRegistry is
// what both exports read — updated on every ServeDebug call so tests that
// restart the listener see the current registry.
var (
	publishOnce   sync.Once
	debugRegistry atomic.Pointer[Registry]
)

// ServeDebug exposes net/http/pprof, expvar and Prometheus text-format
// /metrics on addr (e.g. ":6060" or "127.0.0.1:0") in a background
// goroutine and publishes the registry snapshot under the expvar name
// "multidiag". It returns the bound address so callers can print it (and
// tests can use port 0).
func ServeDebug(addr string, r *Registry) (string, error) {
	if r != nil {
		debugRegistry.Store(r)
		publishOnce.Do(func() {
			expvar.Publish("multidiag", expvar.Func(func() any { return debugRegistry.Load().Snapshot() }))
			http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				WritePrometheus(w, debugRegistry.Load())
			})
		})
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	go serveDebugLoop(ln) // default mux carries /debug/pprof, /debug/vars, /metrics
	return ln.Addr().String(), nil
}

// serveDebugLoop runs the debug listener's accept loop and surfaces its
// terminal error — previously dropped on the floor — to stderr and the
// obs.debug_serve_errors counter on whatever registry is currently
// exported (nil-tolerant, so a CLI without a registry still gets the
// stderr line).
func serveDebugLoop(ln net.Listener) {
	if err := http.Serve(ln, nil); err != nil {
		fmt.Fprintf(os.Stderr, "obs: debug server on %s: %v\n", ln.Addr(), err)
		debugRegistry.Load().Counter("obs.debug_serve_errors").Inc()
	}
}

// StartContentionProfiles enables the runtime's mutex and/or block
// profilers ("" disables either) and returns the stop function that
// writes the profiles and restores the zero rates. mutexFraction is the
// runtime.SetMutexProfileFraction sampling rate (1/n of contention events
// recorded; ≤0 means the default 5); blockRateNS is the
// runtime.SetBlockProfileRate threshold in nanoseconds (≤0 means 1,
// every blocking event). The rates stay enabled for the whole run so the
// exit-time snapshot covers it — the cost is a few percent on heavily
// contended locks, which is why these are opt-in flags and not defaults.
func StartContentionProfiles(mutexPath string, mutexFraction int, blockPath string, blockRateNS int) (stop func() error, err error) {
	if mutexPath != "" {
		if mutexFraction <= 0 {
			mutexFraction = 5
		}
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockPath != "" {
		if blockRateNS <= 0 {
			blockRateNS = 1
		}
		runtime.SetBlockProfileRate(blockRateNS)
	}
	return func() error {
		var firstErr error
		if mutexPath != "" {
			runtime.SetMutexProfileFraction(0)
			if err := writeLookupProfile("mutex", mutexPath); err != nil {
				firstErr = err
			}
		}
		if blockPath != "" {
			runtime.SetBlockProfileRate(0)
			if err := writeLookupProfile("block", blockPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeLookupProfile dumps one named runtime profile to path.
func writeLookupProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("obs: %s profile: unknown profile", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %s profile: %w", name, err)
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("obs: %s profile: %w", name, err)
	}
	return f.Close()
}
