package obs

import (
	"encoding/json"
	"flag"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlagsSetupTraceFile(t *testing.T) {
	defer SetGlobal(Global())
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var f Flags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-trace-out", path}); err != nil {
		t.Fatal(err)
	}
	tr, finish, err := f.Setup("unit")
	if err != nil {
		t.Fatal(err)
	}
	if Global() != tr {
		t.Error("Setup did not install the global trace")
	}
	tr.Span("p").End()
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 { // one span + the final run record
		t.Fatalf("trace file has %d lines:\n%s", len(lines), data)
	}
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "run" || last.Phases["p"].Count != 1 {
		t.Errorf("final record = %+v", last)
	}
}

func TestFlagsSetupUnwritable(t *testing.T) {
	defer SetGlobal(Global())
	f := Flags{TraceOut: filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")}
	if _, _, err := f.Setup("unit"); err == nil {
		t.Fatal("Setup accepted an unwritable -trace-out path")
	}
}

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// Disabled profiles are a no-op round trip.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dbg.hits").Add(2)
	addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	md, ok := vars["multidiag"].(map[string]any)
	if !ok {
		t.Fatalf("expvar missing multidiag key: %v", vars["multidiag"])
	}
	if md["dbg.hits"] != float64(2) {
		t.Errorf("dbg.hits = %v", md["dbg.hits"])
	}
}

func TestStartContentionProfiles(t *testing.T) {
	dir := t.TempDir()
	mutex, block := filepath.Join(dir, "mutex.pprof"), filepath.Join(dir, "block.pprof")
	stop, err := StartContentionProfiles(mutex, 0, block, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little contention so the profiles have something to say
	// (the files must exist and be non-empty either way).
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				mu.Lock()
				time.Sleep(10 * time.Microsecond)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if runtime.SetMutexProfileFraction(-1) != 0 {
		t.Error("mutex profile fraction not restored to 0")
	}
	for _, p := range []string{mutex, block} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// Disabled profiles are a no-op round trip.
	stop, err = StartContentionProfiles("", 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestServeDebugLoopSurfacesErrors(t *testing.T) {
	reg := NewRegistry()
	debugRegistry.Store(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // force http.Serve to fail immediately
	serveDebugLoop(ln)
	if got := reg.Counter("obs.debug_serve_errors").Value(); got != 1 {
		t.Fatalf("obs.debug_serve_errors = %d, want 1", got)
	}
}
