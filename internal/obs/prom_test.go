package obs

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWritePrometheusFormat pins the text exposition format: typed
// counters and gauges, cumulative histogram buckets with log₂ upper
// bounds as thresholds, +Inf, _sum and _count, names namespaced and
// sanitized.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.candidates_extracted").Add(42)
	r.Gauge("exp.workers").Set(8)
	h := r.Histogram("core.multiplet_size")
	h.Observe(1)   // bucket hi=1
	h.Observe(3)   // bucket hi=3
	h.Observe(100) // bucket hi=127

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE multidiag_core_candidates_extracted counter",
		"multidiag_core_candidates_extracted 42",
		"# TYPE multidiag_exp_workers gauge",
		"multidiag_exp_workers 8",
		"# TYPE multidiag_core_multiplet_size histogram",
		`multidiag_core_multiplet_size_bucket{le="1"} 1`,
		`multidiag_core_multiplet_size_bucket{le="3"} 2`,
		`multidiag_core_multiplet_size_bucket{le="127"} 3`,
		`multidiag_core_multiplet_size_bucket{le="+Inf"} 3`,
		"multidiag_core_multiplet_size_sum 104",
		"multidiag_core_multiplet_size_count 3",
		"# TYPE multidiag_core_multiplet_size_p99 gauge",
		"multidiag_core_multiplet_size_p50 1",
		"multidiag_core_multiplet_size_p99 3",
		"multidiag_core_multiplet_size_max 127",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket series must be cumulative (monotone): the le="3" line counts
	// the le="1" observations too — checked above by exact counts.

	// Every non-comment line is "name value"; every name starts with the
	// namespace and contains no unsanitized characters.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name := fields[0]
		if idx := strings.IndexByte(name, '{'); idx >= 0 {
			name = name[:idx]
		}
		if !strings.HasPrefix(name, "multidiag_") || strings.ContainsAny(name, ".-/ ") {
			t.Errorf("bad metric name %q", fields[0])
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q", sb.String())
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"core.multiplet_size": "multidiag_core_multiplet_size",
		"a-b c/d":             "multidiag_a_b_c_d",
		"ok_name:sub":         "multidiag_ok_name:sub",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMetricsEndpoint: the -debug-addr server must answer /metrics with
// parseable Prometheus text for the registry it was started with.
func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.devices").Add(7)
	r.Histogram("fsim.cone_size").Observe(12)
	addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"multidiag_core_devices 7",
		"# TYPE multidiag_fsim_cone_size histogram",
		"multidiag_fsim_cone_size_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHistogramQuantileMax pins the quantile contract: upper bound of the
// first bucket reaching the rank, exact within the 2× bucket resolution.
func TestHistogramQuantileMax(t *testing.T) {
	var h *Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("nil histogram quantiles not zero")
	}
	h = &Histogram{}
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram quantiles not zero")
	}
	// 10 observations: 1..8 land in buckets hi∈{1,3,7,15}, plus 100 (hi
	// 127) and 1000 (hi 1023).
	for v := int64(1); v <= 8; v++ {
		h.Observe(v)
	}
	h.Observe(100)
	h.Observe(1000)
	if got := h.Quantile(0.50); got != 7 {
		t.Errorf("p50 = %d, want 7 (rank 5 falls in the {4..7} bucket)", got)
	}
	if got := h.Quantile(0.95); got != 127 {
		t.Errorf("p95 = %d, want 127 (rank 9 falls in the {64..127} bucket)", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q=0 clamps to rank 1, got %d", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Errorf("q=1 = %d, want 1023", got)
	}
	if got := h.Max(); got != 1023 {
		t.Errorf("max = %d, want 1023", got)
	}
	h.Observe(0)
	if got := h.Quantile(0); got != 0 {
		t.Errorf("zero bucket quantile = %d", got)
	}
}

// TestSnapshotQuantileKeys: populated histograms export p50/p95/p99/max
// beside count/sum; empty ones do not.
func TestSnapshotQuantileKeys(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty")
	r.Histogram("h").Observe(5)
	snap := r.Snapshot()
	for _, want := range []string{"h.count", "h.sum", "h.p50", "h.p95", "h.p99", "h.max"} {
		if _, ok := snap[want]; !ok {
			t.Errorf("snapshot missing %q: %v", want, snap)
		}
	}
	for _, absent := range []string{"empty.p50", "empty.p95", "empty.p99", "empty.max"} {
		if _, ok := snap[absent]; ok {
			t.Errorf("empty histogram exported %q", absent)
		}
	}
	if snap["h.p50"] != 7 || snap["h.p99"] != 7 || snap["h.max"] != 7 {
		t.Errorf("h quantiles: p50=%d p99=%d max=%d, want 7", snap["h.p50"], snap["h.p99"], snap["h.max"])
	}
}

// TestQuantileP99Tail: p99 resolves the tail bucket that p95 misses on a
// 1000-observation distribution with a 1% spike.
func TestQuantileP99Tail(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 990; i++ {
		h.Observe(3) // bucket hi=3
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000) // bucket hi=8191
	}
	if got := h.Quantile(0.95); got != 3 {
		t.Errorf("p95 = %d, want 3 (spike below rank)", got)
	}
	if got := h.Quantile(0.99); got != 3 {
		t.Errorf("p99 = %d, want 3 (rank 990 is the last fast observation)", got)
	}
	h.Observe(5000) // tip rank 991·(0.99) into the tail: 1001·0.99 → rank 990
	for i := 0; i < 100; i++ {
		h.Observe(5000)
	}
	// 990 fast + 111 slow = 1101 observations; rank ⌈0.99·1101⌉=1089 → tail.
	if got := h.Quantile(0.99); got != 8191 {
		t.Errorf("p99 = %d, want 8191 (tail bucket)", got)
	}
}

// TestRegistryRejectsCrossKindReuse: one name is one instrument kind;
// reusing it as another kind must panic with a message naming both kinds.
func TestRegistryRejectsCrossKindReuse(t *testing.T) {
	cases := []struct {
		name          string
		first, second func(r *Registry)
	}{
		{"counter-then-histogram",
			func(r *Registry) { r.Counter("x") },
			func(r *Registry) { r.Histogram("x") }},
		{"counter-then-gauge",
			func(r *Registry) { r.Counter("x") },
			func(r *Registry) { r.Gauge("x") }},
		{"gauge-then-counter",
			func(r *Registry) { r.Gauge("x") },
			func(r *Registry) { r.Counter("x") }},
		{"histogram-then-gauge",
			func(r *Registry) { r.Histogram("x") },
			func(r *Registry) { r.Gauge("x") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.first(r)
			defer func() {
				msg, ok := recover().(string)
				if !ok {
					t.Fatal("cross-kind reuse did not panic")
				}
				if !strings.Contains(msg, `"x"`) || !strings.Contains(msg, "already registered") {
					t.Errorf("panic message %q lacks the metric name / reason", msg)
				}
			}()
			tc.second(r)
		})
	}
}

// TestRegistrySameKindReuseStillIdempotent: the collision check must not
// break the lookup contract — same name, same kind returns the same handle.
func TestRegistrySameKindReuseStillIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("counter lookup not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("gauge lookup not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("histogram lookup not idempotent")
	}
}

// TestHistogramObserveN: the bulk path must match n single observations,
// and tolerate nil receivers and non-positive counts.
func TestHistogramObserveN(t *testing.T) {
	var nilH *Histogram
	nilH.ObserveN(5, 3) // must not panic
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 7; i++ {
		a.Observe(12)
	}
	b.ObserveN(12, 7)
	b.ObserveN(12, 0)
	b.ObserveN(12, -4)
	if a.Count() != b.Count() || a.Sum() != b.Sum() {
		t.Fatalf("ObserveN mismatch: count %d vs %d, sum %d vs %d", a.Count(), b.Count(), a.Sum(), b.Sum())
	}
	if a.Quantile(0.99) != b.Quantile(0.99) || a.Max() != b.Max() {
		t.Error("ObserveN bucket placement differs from Observe")
	}
}

func TestHistogramNames(t *testing.T) {
	r := NewRegistry()
	r.Histogram("z")
	r.Histogram("a")
	r.Counter("c")
	got := r.HistogramNames()
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("HistogramNames = %v", got)
	}
	var nilReg *Registry
	if nilReg.HistogramNames() != nil {
		t.Fatal("nil registry returned names")
	}
}

// TestHistogramExemplars: ObserveEx retains the latest trace ID per
// bucket, surfaces it as a parse-safe comment line in the exposition, and
// the plain Observe path stays exemplar-free.
func TestHistogramExemplars(t *testing.T) {
	var nilH *Histogram
	nilH.ObserveEx(5, "dead") // must not panic
	nilH.ObserveNEx(5, 2, "dead")

	r := NewRegistry()
	h := r.Histogram("serve.service_us")
	h.Observe(3)
	h.ObserveEx(100, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveEx(101, "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa") // same bucket: last wins
	h.ObserveNEx(5000, 2, "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb")
	h.ObserveEx(7, "") // empty trace ID: no exemplar

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars: %+v, want 2 buckets", ex)
	}
	if ex[0].Hi != 127 || ex[0].TraceID != "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" || ex[0].Value != 101 {
		t.Fatalf("bucket 127 exemplar %+v", ex[0])
	}
	if ex[1].Hi != 8191 || ex[1].TraceID != "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb" {
		t.Fatalf("bucket 8191 exemplar %+v", ex[1])
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `# EXEMPLAR multidiag_serve_service_us_bucket{le="127"} 101 trace_id=aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, out)
	}
	// Exemplar lines are comments: a strict sample-line parse still works
	// (reusing the format walk from TestWritePrometheusFormat would pass).
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# EXEMPLAR") && len(strings.Fields(line)) != 5 {
			t.Errorf("malformed exemplar comment %q", line)
		}
	}

	r.Reset()
	if got := h.Exemplars(); got != nil {
		t.Fatalf("Reset kept exemplars: %+v", got)
	}
}

// TestCreateSinkGzip: a .gz path yields a valid gzip stream holding
// exactly the written bytes; a plain path passes through.
func TestCreateSinkGzip(t *testing.T) {
	dir := t.TempDir()
	payload := strings.Repeat(`{"kind":"span","phase":"extract"}`+"\n", 100)

	plain := filepath.Join(dir, "t.jsonl")
	w, err := CreateSink(plain)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(w, payload)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != payload {
		t.Fatal("plain sink altered the payload")
	}

	gz := filepath.Join(dir, "t.jsonl.gz")
	w, err = CreateSink(gz)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(w, payload)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(gz)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("not a gzip stream: %v", err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatal("gzip sink round-trip differs")
	}
	if st, _ := os.Stat(gz); st.Size() >= int64(len(payload)) {
		t.Errorf("repetitive payload did not compress: %d >= %d", st.Size(), len(payload))
	}

	if _, err := CreateSink(filepath.Join(dir, "no", "dir", "x.gz")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
