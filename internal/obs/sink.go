package obs

import (
	"compress/gzip"
	"io"
	"os"
	"strings"
)

// CreateSink creates path for writing, transparently gzip-compressing when
// the path ends in ".gz" (campaign-scale JSONL traces compress ~10×).
// Creation fails fast on an unwritable path, matching the trace-out
// contract; the returned WriteCloser flushes the compressor before closing
// the file.
func CreateSink(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipSink{gz: gzip.NewWriter(f), f: f}, nil
}

// gzipSink chains gzip.Writer.Close (which flushes the final block) before
// the file close; the first error wins.
type gzipSink struct {
	gz *gzip.Writer
	f  *os.File
}

func (s *gzipSink) Write(p []byte) (int, error) { return s.gz.Write(p) }

func (s *gzipSink) Close() error {
	err := s.gz.Close()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
