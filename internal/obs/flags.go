package obs

import (
	"flag"
	"fmt"
	"os"
	"time"
)

// Flags bundles the observability command-line flags shared by the CLIs
// (mddiag, mdexp, mdfsim): JSONL trace output, the candidate flight
// recorder, CPU/heap profiles, the pprof/expvar/metrics debug listener
// and the runtime/metrics sampler.
type Flags struct {
	TraceOut string
	// ExplainOut is opened by the CLIs that support the flight recorder
	// (via explain.Open, which obs cannot import); Setup ignores it.
	ExplainOut string
	CPUProfile string
	MemProfile string
	// MutexProfile / BlockProfile enable the runtime contention profilers
	// for the whole run and write the named profile at exit (see
	// StartContentionProfiles for the rate semantics).
	MutexProfile  string
	MutexFraction int
	BlockProfile  string
	BlockRate     int
	DebugAddr     string
	// SampleRuntime enables the periodic runtime/metrics sampler at the
	// given interval (0 disables). The sampled gauges/histograms land in
	// the global trace registry and therefore in /metrics, run-record
	// snapshots and the -v footer.
	SampleRuntime time.Duration
}

// Register installs the flags on fs (use flag.CommandLine for main).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.TraceOut, "trace-out", "", "write JSONL run/span trace records to `file` (.gz compresses)")
	fs.StringVar(&f.ExplainOut, "explain-out", "", "write JSONL candidate flight-recorder events to `file` (.gz compresses)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to `file` at exit")
	fs.StringVar(&f.MutexProfile, "mutexprofile", "", "record mutex contention for the whole run and write the profile to `file` at exit")
	fs.IntVar(&f.MutexFraction, "mutexprofilefraction", 5, "sample 1/`n` of mutex contention events (with -mutexprofile)")
	fs.StringVar(&f.BlockProfile, "blockprofile", "", "record goroutine blocking for the whole run and write the profile to `file` at exit")
	fs.IntVar(&f.BlockRate, "blockprofilerate", 1, "record blocking events lasting ≥ `ns` nanoseconds (with -blockprofile)")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve net/http/pprof, expvar and /metrics on `addr` (e.g. localhost:6060)")
	fs.DurationVar(&f.SampleRuntime, "sample-runtime", 0, "sample runtime/metrics (heap, GC pauses, goroutines, sched latency) every `interval` into the registry (0 = off)")
}

// Setup activates whatever the flags request: it creates a trace labeled
// label, installs it as the process global, opens the trace file, starts
// profiles and the debug listener. The returned finish func must run
// before exit — it emits the final run record, flushes profiles, and
// returns the first error from any sink (an unwritable -trace-out file
// surfaces here rather than dropping events silently). Setup itself fails
// fast when a file cannot be created.
func (f *Flags) Setup(label string) (*Trace, func() error, error) {
	tr := New(label)
	SetGlobal(tr)

	var em *Emitter
	if f.TraceOut != "" {
		out, err := CreateSink(f.TraceOut)
		if err != nil {
			return nil, nil, fmt.Errorf("trace-out: %w", err)
		}
		em = NewEmitter(out)
		tr.SetEmitter(em)
	}
	stopProfiles, err := StartProfiles(f.CPUProfile, f.MemProfile)
	if err != nil {
		em.Close()
		return nil, nil, err
	}
	stopContention, err := StartContentionProfiles(f.MutexProfile, f.MutexFraction, f.BlockProfile, f.BlockRate)
	if err != nil {
		stopProfiles()
		em.Close()
		return nil, nil, err
	}
	if f.DebugAddr != "" {
		addr, err := ServeDebug(f.DebugAddr, tr.Registry())
		if err != nil {
			stopContention()
			stopProfiles()
			em.Close()
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s/debug/pprof/\n", label, addr)
	}
	stopSampler := func() {}
	if f.SampleRuntime > 0 {
		stopSampler = StartRuntimeSampler(tr.Registry(), f.SampleRuntime)
	}

	finish := func() error {
		stopSampler() // final sample lands before the run record snapshot
		firstErr := tr.EmitRun(nil)
		if err := em.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := stopProfiles(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := stopContention(); err != nil && firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	return tr, finish, nil
}
