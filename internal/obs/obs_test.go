package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New("test")
	root := tr.Span("diagnose")
	a := root.Child("extract")
	a.End()
	b := root.Child("score")
	b.End()
	root.End()

	recs, dropped := tr.Records()
	if dropped != 0 {
		t.Fatalf("dropped %d spans", dropped)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Name != "diagnose" || recs[0].Parent != -1 {
		t.Errorf("root record = %+v", recs[0])
	}
	for _, i := range []int{1, 2} {
		if recs[i].Parent != 0 {
			t.Errorf("record %d (%s) parent = %d, want 0", i, recs[i].Name, recs[i].Parent)
		}
		if !recs[i].Done {
			t.Errorf("record %d not marked done", i)
		}
	}
	if recs[2].Start < recs[1].Start {
		t.Error("sibling spans out of start order")
	}
	if tr.PhaseTotal("extract") <= 0 || tr.PhaseTotal("score") <= 0 {
		t.Error("phase totals not accumulated")
	}
	st := tr.PhaseStats()
	if len(st) != 3 {
		t.Fatalf("PhaseStats = %v", st)
	}
	// Sorted by name: diagnose < extract < score.
	if st[0].Name != "diagnose" || st[1].Name != "extract" || st[2].Name != "score" {
		t.Errorf("PhaseStats order: %v", st)
	}
}

func TestNilTraceStillMeasures(t *testing.T) {
	var tr *Trace
	sp := tr.Span("x")
	time.Sleep(2 * time.Millisecond)
	var d time.Duration
	sp.EndInto(&d)
	if d < time.Millisecond {
		t.Errorf("nil-trace span measured %v, want ≥1ms", d)
	}
	// Child of a disabled span degrades the same way.
	cd := sp.Child("y").End()
	if cd < 0 {
		t.Errorf("child duration %v", cd)
	}
	// And the nil fan-out never panics.
	tr.Registry().Counter("c").Inc()
	tr.Registry().Histogram("h").Observe(3)
	tr.Registry().Gauge("g").Max(7)
	tr.SetEmitter(nil)
	if err := tr.EmitRun(nil); err != nil {
		t.Fatal(err)
	}
	if _, dropped := tr.Records(); dropped != 0 {
		t.Error("nil trace reports drops")
	}
}

func TestConcurrentCountersAndSpans(t *testing.T) {
	tr := New("race")
	var buf bytes.Buffer
	em := NewEmitter(&syncBuffer{buf: &buf})
	tr.SetEmitter(em)
	reg := tr.Registry()

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			h := reg.Histogram("sizes")
			g := reg.Gauge("peak")
			for i := 0; i < iters; i++ {
				sp := tr.Span("work")
				c.Inc()
				h.Observe(int64(i))
				g.Max(int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := reg.Histogram("sizes").Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := reg.Gauge("peak").Value(); got != iters-1 {
		t.Errorf("gauge max = %d, want %d", got, iters-1)
	}
	if st := tr.PhaseStats(); len(st) != 1 || st[0].Count != workers*iters {
		t.Errorf("phase stats = %v", st)
	}
	if em.Events() != workers*iters {
		t.Errorf("emitted %d events, want %d", em.Events(), workers*iters)
	}
	if err := em.Err(); err != nil {
		t.Fatal(err)
	}
}

// syncBuffer makes bytes.Buffer safe for the concurrent emission test.
type syncBuffer struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v      int64
		lo, hi int64
	}{
		{0, 0, 0},
		{-5, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 4, 7},
		{1023, 512, 1023},
		{1024, 1024, 2047},
	}
	for _, tc := range cases {
		h := &Histogram{}
		h.Observe(tc.v)
		bs := h.Buckets()
		if len(bs) != 1 {
			t.Fatalf("Observe(%d): %d buckets", tc.v, len(bs))
		}
		if bs[0].Lo != tc.lo || bs[0].Hi != tc.hi || bs[0].N != 1 {
			t.Errorf("Observe(%d) → bucket [%d,%d] n=%d, want [%d,%d]",
				tc.v, bs[0].Lo, bs[0].Hi, bs[0].N, tc.lo, tc.hi)
		}
	}
	h := &Histogram{}
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestSnapshotFlattensHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(6)
	snap := r.Snapshot()
	for key, want := range map[string]int64{
		"c": 5, "g": 9, "h.count": 1, "h.sum": 6, "h.le_7": 1,
	} {
		if snap[key] != want {
			t.Errorf("snapshot[%q] = %d, want %d", key, snap[key], want)
		}
	}
	if names := r.Names(); len(names) != 3 {
		t.Errorf("Names = %v", names)
	}
	r.Reset()
	if snap := r.Snapshot(); snap["c"] != 0 || snap["h.count"] != 0 {
		t.Errorf("post-reset snapshot = %v", snap)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New("rt")
	var buf bytes.Buffer
	em := NewEmitter(&buf)
	tr.SetEmitter(em)

	tr.Registry().Counter("widgets").Add(3)
	sp := tr.Span("phase_a")
	sp.End()
	if err := tr.EmitRun(map[string]any{"table": "T1"}); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	var span, run Event
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &run); err != nil {
		t.Fatal(err)
	}
	if span.Kind != "span" || span.Run != "rt" || span.Phase != "phase_a" || span.Seq != 0 {
		t.Errorf("span event = %+v", span)
	}
	if run.Kind != "run" || run.Seq != 1 {
		t.Errorf("run event = %+v", run)
	}
	if run.Phases["phase_a"].Count != 1 {
		t.Errorf("run phases = %v", run.Phases)
	}
	if run.Counters["widgets"] != 3 {
		t.Errorf("run counters = %v", run.Counters)
	}
	if run.Extra["table"] != "T1" {
		t.Errorf("run extra = %v", run.Extra)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestEmitterStickyError(t *testing.T) {
	em := NewEmitter(&failWriter{after: 1})
	if err := em.Emit(Event{Kind: "span"}); err != nil {
		t.Fatalf("first emit: %v", err)
	}
	err := em.Emit(Event{Kind: "span"})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("second emit err = %v", err)
	}
	if got := em.Emit(Event{Kind: "span"}); !errors.Is(got, err) && got.Error() != err.Error() {
		t.Errorf("sticky error changed: %v vs %v", got, err)
	}
	if em.Events() != 1 {
		t.Errorf("events = %d, want 1", em.Events())
	}
	// Close surfaces the sticky error in preference to a close error.
	if err := em.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close = %v", err)
	}
}

func TestRetentionCap(t *testing.T) {
	tr := New("cap")
	for i := 0; i < maxSpanRecords+10; i++ {
		tr.Span("s").End()
	}
	recs, dropped := tr.Records()
	if len(recs) != maxSpanRecords {
		t.Errorf("retained %d records, want %d", len(recs), maxSpanRecords)
	}
	if dropped != 10 {
		t.Errorf("dropped = %d, want 10", dropped)
	}
	// Aggregates keep counting past the cap.
	if st := tr.PhaseTotal("s"); st <= 0 {
		t.Error("phase total lost past cap")
	}
	if stats := tr.PhaseStats(); stats[0].Count != maxSpanRecords+10 {
		t.Errorf("phase count = %d", stats[0].Count)
	}
	tr.Reset()
	if recs, dropped := tr.Records(); len(recs) != 0 || dropped != 0 {
		t.Error("Reset did not clear records")
	}
}

func TestGlobalInstall(t *testing.T) {
	old := Global()
	defer SetGlobal(old)
	tr := New("g")
	SetGlobal(tr)
	if Global() != tr {
		t.Fatal("Global did not return the installed trace")
	}
	var d time.Duration
	Global().Span("phase").EndInto(&d)
	if tr.PhaseTotal("phase") <= 0 {
		t.Error("span on global trace not recorded")
	}
	SetGlobal(nil)
	if Global() != nil {
		t.Error("SetGlobal(nil) did not uninstall")
	}
}
