package obs

import (
	"io"
	"testing"
	"time"
)

// The disabled path (nil trace/handles) is what every instrumented engine
// pays when no tracing is installed — the ISSUE budget is <2% end-to-end,
// which these micro-benchmarks bound from below (each op must stay in the
// low-nanosecond range; the end-to-end check is BenchmarkDiagnose* in
// internal/core).

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Trace
	var d time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("phase").EndInto(&d)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := New("bench")
	var d time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("phase").EndInto(&d)
	}
}

func BenchmarkSpanEnabledEmitting(b *testing.B) {
	tr := New("bench")
	tr.SetEmitter(NewEmitter(io.Discard))
	var d time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("phase").EndInto(&d)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
