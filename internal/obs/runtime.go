package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime sampler metric names as they appear in the registry (and hence
// in Snapshot, the expvar export, Prometheus /metrics and the mddiag -v
// footer).
const (
	// runtimeHeapGauge is live heap object bytes (runtime/metrics
	// /memory/classes/heap/objects:bytes), sampled.
	runtimeHeapGauge = "runtime.heap_inuse_bytes"
	// runtimeGoroutineGauge is the live goroutine count.
	runtimeGoroutineGauge = "runtime.goroutines"
	// runtimeGCGauge is the cumulative completed GC cycle count (a gauge,
	// not a Counter: the runtime owns the cumulative value and the sampler
	// can only store it).
	runtimeGCGauge = "runtime.gc_cycles"
	// runtimeGCPauseHist folds the runtime's stop-the-world GC pause
	// distribution into a log₂ histogram of nanoseconds.
	runtimeGCPauseHist = "runtime.gc_pause_ns"
	// runtimeSchedLatHist folds the runtime's goroutine scheduling latency
	// distribution (time runnable before running) into nanoseconds.
	runtimeSchedLatHist = "runtime.sched_latency_ns"
)

// runtime/metrics sample names feeding the instruments above. The GC
// pause metric moved under /sched/ in Go 1.22; KindBad guards keep the
// sampler inert for any name a given toolchain does not export.
const (
	srcHeap     = "/memory/classes/heap/objects:bytes"
	srcGoro     = "/sched/goroutines:goroutines"
	srcGCCycles = "/gc/cycles/total:gc-cycles"
	srcGCPause  = "/sched/pauses/total/gc:seconds"
	srcSchedLat = "/sched/latencies:seconds"
)

// RuntimeSampler periodically reads runtime/metrics into a Registry:
// scalar gauges for heap in-use bytes, goroutine count and GC cycles, and
// log₂ nanosecond histograms for GC pauses and scheduling latency (folded
// from the runtime's cumulative float64 histograms by per-bucket deltas,
// so every registered instrument flows through the existing exports — the
// Prometheus /metrics endpoint, trace run-record snapshots and the
// mddiag -v footer — with no extra plumbing).
//
// A nil *RuntimeSampler ignores every call, matching the rest of the obs
// layer.
type RuntimeSampler struct {
	samples []metrics.Sample

	heap, goroutines, gcCycles *Gauge
	gcPause, schedLat          *Histogram
	// prev holds the bucket counts of each cumulative runtime histogram at
	// the previous sample, keyed by sample index, so each tick folds only
	// the delta.
	prev map[int][]uint64

	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
}

// StartRuntimeSampler starts sampling into r every interval (clamped to
// ≥10ms) until the returned stop function runs. One sample is taken
// synchronously before the loop starts and a final one at Stop, so even
// runs shorter than the interval report runtime metrics (and a -v footer
// rendered mid-run sees live gauges, not zeros). A nil registry yields a
// no-op stop.
func StartRuntimeSampler(r *Registry, interval time.Duration) (stop func()) {
	s := newRuntimeSampler(r, interval)
	if s == nil {
		return func() {}
	}
	s.sample()
	go s.loop()
	return s.Stop
}

func newRuntimeSampler(r *Registry, interval time.Duration) *RuntimeSampler {
	if r == nil {
		return nil
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s := &RuntimeSampler{
		samples: []metrics.Sample{
			{Name: srcHeap},
			{Name: srcGoro},
			{Name: srcGCCycles},
			{Name: srcGCPause},
			{Name: srcSchedLat},
		},
		heap:       r.Gauge(runtimeHeapGauge),
		goroutines: r.Gauge(runtimeGoroutineGauge),
		gcCycles:   r.Gauge(runtimeGCGauge),
		gcPause:    r.Histogram(runtimeGCPauseHist),
		schedLat:   r.Histogram(runtimeSchedLatHist),
		prev:       make(map[int][]uint64),
		interval:   interval,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			s.sample()
			return
		case <-t.C:
			s.sample()
		}
	}
}

// Stop ends the sampling loop after one final sample. Safe to call on a
// nil sampler; not safe to call twice (the flags layer calls it once from
// its finish func).
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}

// sample reads every source once and updates the instruments. Unsupported
// sources (KindBad on older/newer toolchains) are skipped.
func (s *RuntimeSampler) sample() {
	if s == nil {
		return
	}
	metrics.Read(s.samples)
	for i := range s.samples {
		sm := &s.samples[i]
		switch sm.Value.Kind() {
		case metrics.KindUint64:
			v := int64(sm.Value.Uint64())
			switch sm.Name {
			case srcHeap:
				s.heap.Set(v)
			case srcGoro:
				s.goroutines.Set(v)
			case srcGCCycles:
				s.gcCycles.Set(v)
			}
		case metrics.KindFloat64Histogram:
			var h *Histogram
			switch sm.Name {
			case srcGCPause:
				h = s.gcPause
			case srcSchedLat:
				h = s.schedLat
			}
			s.foldHistogram(i, h, sm.Value.Float64Histogram())
		}
	}
}

// foldHistogram folds the delta between fh and the previous sample of
// source i into h, converting the runtime's seconds buckets to log₂
// nanosecond observations at each bucket's upper bound (the same
// upper-bound convention the obs quantiles use). Cumulative runtime
// histograms only grow, so per-bucket deltas are non-negative; a bucket
// layout change (never observed in practice) resets the fold.
func (s *RuntimeSampler) foldHistogram(i int, h *Histogram, fh *metrics.Float64Histogram) {
	if h == nil || fh == nil {
		return
	}
	prev := s.prev[i]
	if len(prev) != len(fh.Counts) {
		prev = make([]uint64, len(fh.Counts))
	}
	for b, n := range fh.Counts {
		delta := int64(n - prev[b])
		if delta <= 0 {
			continue
		}
		// Buckets[b+1] is the bucket's upper bound in seconds; the last
		// bucket's +Inf falls back to its (finite) lower bound.
		bound := fh.Buckets[b+1]
		if math.IsInf(bound, +1) {
			bound = fh.Buckets[b]
		}
		if math.IsInf(bound, -1) || bound < 0 {
			bound = 0
		}
		h.ObserveN(int64(bound*1e9), delta)
	}
	cp := make([]uint64, len(fh.Counts))
	copy(cp, fh.Counts)
	s.prev[i] = cp
}
