// Package obs is the observability layer of the diagnosis pipeline:
// hierarchical phase timing (Trace/Span), a race-safe registry of named
// counters, gauges and log₂-bucket histograms, a JSONL run-event emitter,
// and opt-in profiling hooks for the CLIs.
//
// Everything is stdlib-only and nil-tolerant: a nil *Trace, *Registry,
// *Counter, *Gauge, *Histogram or *Emitter accepts every call as a cheap
// no-op, so instrumented code needs no "is tracing on?" branches and the
// disabled fast path costs a pointer test (benchmarked in bench_test.go;
// the <2% end-to-end budget is checked in internal/core's benchmarks).
//
// Span durations are measured even when no trace is installed — the
// exported Elapsed fields of the diagnosis results stay populated with
// tracing off, which is the backward-compatibility contract the engines
// rely on (Span.EndInto replaces the old start := time.Now() /
// res.Elapsed = time.Since(start) boilerplate).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpanRecords bounds the retained per-span detail so long-lived traces
// (services, big campaigns) cannot grow without bound. Phase totals keep
// aggregating past the cap; only the per-span records stop being stored.
const maxSpanRecords = 1 << 16

// PhaseStat is the aggregate of all ended spans sharing one name.
type PhaseStat struct {
	Name  string
	Count int64
	Total time.Duration
}

// SpanRecord is one retained span, for offline inspection and tests.
type SpanRecord struct {
	Name   string
	Parent int // index into Trace records, -1 for a root span
	Start  time.Duration
	Dur    time.Duration
	Done   bool
}

// Trace collects the spans and metrics of one run (or one campaign of
// runs). All methods are safe for concurrent use; span recording from the
// parallel experiment runner serializes on one mutex, which is fine at
// phase granularity.
type Trace struct {
	label string
	epoch time.Time
	reg   *Registry

	mu      sync.Mutex
	records []SpanRecord
	dropped int64
	phases  map[string]*PhaseStat

	em atomic.Pointer[Emitter]
}

// New creates an enabled trace with its own registry.
func New(label string) *Trace {
	return &Trace{
		label:  label,
		epoch:  time.Now(),
		reg:    NewRegistry(),
		phases: make(map[string]*PhaseStat),
	}
}

// Label returns the trace label ("" on a nil trace).
func (t *Trace) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// Registry returns the trace's metric registry (nil on a nil trace, which
// every Registry method tolerates).
func (t *Trace) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// SetEmitter streams every ended span and every EmitRun record to e.
// Pass nil to detach.
func (t *Trace) SetEmitter(e *Emitter) {
	if t == nil {
		return
	}
	t.em.Store(e)
}

// Emitter returns the attached emitter (nil when detached or on a nil
// trace), so callers can fan the same destination out to derived traces.
func (t *Trace) Emitter() *Emitter {
	if t == nil {
		return nil
	}
	return t.em.Load()
}

// Span starts a root-level phase span. On a nil trace the span still
// captures its start time, so End/EndInto report real durations with
// tracing disabled (the Elapsed backward-compatibility path).
func (t *Trace) Span(name string) Span {
	if t == nil {
		return Span{parent: -1, idx: -1, start: time.Now()}
	}
	return t.startSpan(name, -1)
}

func (t *Trace) startSpan(name string, parent int) Span {
	now := time.Now()
	t.mu.Lock()
	idx := -1
	if len(t.records) < maxSpanRecords {
		idx = len(t.records)
		t.records = append(t.records, SpanRecord{Name: name, Parent: parent, Start: now.Sub(t.epoch)})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	return Span{t: t, name: name, parent: parent, idx: idx, start: now}
}

// Span is one in-flight phase measurement. The zero value is inert.
type Span struct {
	t      *Trace
	name   string
	parent int
	idx    int
	start  time.Time
}

// Child starts a nested span under s. On a disabled span it degrades to a
// plain stopwatch like Trace.Span on nil.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{parent: -1, idx: -1, start: time.Now()}
	}
	return s.t.startSpan(name, s.idx)
}

// End finishes the span and returns its duration. Ending a zero Span
// returns a meaningless but harmless duration.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	t := s.t
	if t == nil {
		return d
	}
	t.mu.Lock()
	if s.idx >= 0 && s.idx < len(t.records) {
		t.records[s.idx].Dur = d
		t.records[s.idx].Done = true
	}
	ps := t.phases[s.name]
	if ps == nil {
		ps = &PhaseStat{Name: s.name}
		t.phases[s.name] = ps
	}
	ps.Count++
	ps.Total += d
	t.mu.Unlock()
	if em := t.em.Load(); em != nil {
		em.Emit(Event{
			Kind:    "span",
			Run:     t.label,
			Phase:   s.name,
			StartNS: s.start.Sub(t.epoch).Nanoseconds(),
			DurNS:   d.Nanoseconds(),
		})
	}
	return d
}

// EndInto ends the span and stores its duration through d — the one-line
// replacement for the Elapsed boilerplate. d may be nil.
func (s Span) EndInto(d *time.Duration) {
	e := s.End()
	if d != nil {
		*d = e
	}
}

// PhaseStats returns the per-name aggregates of all ended spans, sorted by
// name. Nil trace → nil.
func (t *Trace) PhaseStats() []PhaseStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]PhaseStat, 0, len(t.phases))
	for _, ps := range t.phases {
		out = append(out, *ps)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PhaseTotal returns the accumulated duration of all ended spans named
// name (zero when absent or on a nil trace).
func (t *Trace) PhaseTotal(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps := t.phases[name]; ps != nil {
		return ps.Total
	}
	return 0
}

// Records returns a copy of the retained span records and the number of
// spans dropped past the retention cap.
func (t *Trace) Records() ([]SpanRecord, int64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.records...), t.dropped
}

// Reset clears spans, phase aggregates and the registry, keeping label,
// epoch and emitter.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.records = nil
	t.dropped = 0
	t.phases = make(map[string]*PhaseStat)
	t.mu.Unlock()
	t.reg.Reset()
}

// EmitRun writes one "run" record — total phase aggregates plus a full
// counter snapshot — to the trace's emitter. extra fields are merged into
// the record (schema: DESIGN.md §Observability). No-op without an emitter.
func (t *Trace) EmitRun(extra map[string]any) error {
	if t == nil {
		return nil
	}
	em := t.em.Load()
	if em == nil {
		return nil
	}
	phases := make(map[string]PhaseNS)
	t.mu.Lock()
	for name, ps := range t.phases {
		phases[name] = PhaseNS{Count: ps.Count, DurNS: ps.Total.Nanoseconds()}
	}
	t.mu.Unlock()
	return em.Emit(Event{
		Kind:     "run",
		Run:      t.label,
		DurNS:    time.Since(t.epoch).Nanoseconds(),
		Phases:   phases,
		Counters: t.reg.Snapshot(),
		Extra:    extra,
	})
}

// global is the process-wide default trace, used by engines whose exported
// signatures predate the observability layer (baseline, compact, seqdiag,
// transition) and by core when Config.Trace is nil. It stays nil —
// tracing disabled — until a CLI or test installs one.
var global atomic.Pointer[Trace]

// Global returns the installed process-wide trace, or nil when tracing is
// disabled.
func Global() *Trace { return global.Load() }

// SetGlobal installs (or, with nil, removes) the process-wide trace.
func SetGlobal(t *Trace) { global.Store(t) }
