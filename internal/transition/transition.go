// Package transition adds gate-level delay-defect support: transition
// (slow-to-rise / slow-to-fall) fault modelling on two-pattern tests,
// transition-fault ATPG and simulation, slow-net defect injection, and an
// effect-cause diagnosis engine for delay defects.
//
// Model. A two-pattern test applies a launch pattern V1 followed by a
// capture pattern V2 (full-scan launch-off-shift/capture abstractions
// collapse to ordered pattern pairs at this level). A slow-to-rise fault on
// net n is detected by (V1, V2) when n carries 0 under V1, should carry 1
// under V2, and the stuck-at-0 error at n under V2 reaches an output — the
// standard reduction of transition faults to conditioned stuck-at faults.
// A net with a gross delay defect behaves, during capture, as if stuck at
// its launch value whenever a transition was required; that is exactly how
// the injector builds defective devices, so the model and the "physical"
// behaviour agree by construction and the interesting question (which the
// tests verify) is diagnostic localization.
package transition

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"multidiag/internal/bitset"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// Fault is a transition fault: slow-to-rise (Rise=true: the 0→1 transition
// is late) or slow-to-fall on net Net.
type Fault struct {
	Net  netlist.NetID
	Rise bool
}

// Name renders e.g. "G11 STR".
func (f Fault) Name(c *netlist.Circuit) string {
	k := "STF"
	if f.Rise {
		k = "STR"
	}
	return c.NameOf(f.Net) + " " + k
}

// launchValue is the value the net holds before the (late) transition.
func (f Fault) launchValue() logic.Value {
	if f.Rise {
		return logic.Zero
	}
	return logic.One
}

// asStuck is the capture-cycle stuck-at equivalent.
func (f Fault) asStuck() fault.StuckAt {
	return fault.StuckAt{Net: f.Net, Value1: !f.Rise}
}

// List enumerates the full transition-fault universe (two per net).
func List(c *netlist.Circuit) []Fault {
	out := make([]Fault, 0, 2*c.NumGates())
	for i := range c.Gates {
		out = append(out,
			Fault{Net: netlist.NetID(i), Rise: true},
			Fault{Net: netlist.NetID(i), Rise: false})
	}
	return out
}

// Pair is one two-pattern test.
type Pair struct {
	Launch, Capture sim.Pattern
}

// Detects reports whether the pair detects f, and at which capture-side PO
// indices. The launch pattern must set the net to the fault's initial
// value; the capture pattern must both request the transition and
// propagate the late value.
func Detects(c *netlist.Circuit, pr Pair, f Fault) (bitset.Set, error) {
	v1, err := sim.EvalScalar(c, pr.Launch, nil)
	if err != nil {
		return nil, err
	}
	if v1[f.Net] != f.launchValue() {
		return nil, nil // transition not launched
	}
	good, err := sim.EvalScalar(c, pr.Capture, nil)
	if err != nil {
		return nil, err
	}
	if good[f.Net] != f.launchValue().Not() {
		return nil, nil // no transition requested at the site
	}
	bad, err := sim.EvalScalar(c, pr.Capture, map[netlist.NetID]logic.Value{f.Net: f.launchValue()})
	if err != nil {
		return nil, err
	}
	var fails bitset.Set
	for i, po := range c.POs {
		if good[po].IsKnown() && bad[po].IsKnown() && good[po] != bad[po] {
			if fails == nil {
				fails = bitset.New(len(c.POs))
			}
			fails.Add(i)
		}
	}
	return fails, nil
}

// GenerateConfig tunes transition ATPG.
type GenerateConfig struct {
	Seed int64
	// LaunchRetries bounds the random search for a launch pattern per
	// fault (default 64).
	LaunchRetries int
	// StuckConfig parameterizes the capture-side stuck-at generation.
	RandomBudget, PodemBacktrackLimit int
}

func (cfg *GenerateConfig) fill() {
	if cfg.LaunchRetries <= 0 {
		cfg.LaunchRetries = 64
	}
	if cfg.PodemBacktrackLimit <= 0 {
		cfg.PodemBacktrackLimit = 10000
	}
}

// GenerateResult is a transition test set with its coverage bookkeeping.
type GenerateResult struct {
	Pairs    []Pair
	Detected []bool // per universe fault
	Universe []Fault
}

// Coverage returns detected/universe.
func (r *GenerateResult) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(r.Detected))
}

// Generate produces a two-pattern test set for the transition universe:
// random pairs with fault dropping, then targeted generation (capture from
// stuck-at PODEM via the atpg package's exported surface is avoided here to
// keep the dependency one-way; the targeted phase instead uses constrained
// random capture search seeded by the site value requirement, which the
// tests show reaches high coverage on the experiment workloads).
func Generate(c *netlist.Circuit, cfg GenerateConfig) (*GenerateResult, error) {
	cfg.fill()
	r := rand.New(rand.NewSource(cfg.Seed))
	universe := List(c)
	res := &GenerateResult{Universe: universe, Detected: make([]bool, len(universe))}
	remaining := make(map[int]bool, len(universe))
	for i := range universe {
		remaining[i] = true
	}
	randPat := func() sim.Pattern {
		p := make(sim.Pattern, len(c.PIs))
		for i := range p {
			p[i] = logic.FromBool(r.Intn(2) == 1)
		}
		return p
	}
	tryPair := func(pr Pair) error {
		useful := false
		for fi := range remaining {
			fails, err := Detects(c, pr, universe[fi])
			if err != nil {
				return err
			}
			if fails != nil && !fails.Empty() {
				res.Detected[fi] = true
				delete(remaining, fi)
				useful = true
			}
		}
		if useful {
			res.Pairs = append(res.Pairs, pr)
		}
		return nil
	}
	// Phase 1: random pairs.
	budget := cfg.RandomBudget
	if budget <= 0 {
		budget = 128
	}
	for try := 0; try < budget && len(remaining) > 0; try++ {
		if err := tryPair(Pair{Launch: randPat(), Capture: randPat()}); err != nil {
			return nil, err
		}
	}
	// Phase 2: per-fault targeted search — constrained random: find V1
	// setting the site to the launch value, V2 requesting the transition
	// and propagating.
	fis := make([]int, 0, len(remaining))
	for fi := range remaining {
		fis = append(fis, fi)
	}
	sort.Ints(fis)
	for _, fi := range fis {
		if !remaining[fi] {
			continue
		}
		f := universe[fi]
		var launch sim.Pattern
		for try := 0; try < cfg.LaunchRetries; try++ {
			p := randPat()
			vals, err := sim.EvalScalar(c, p, nil)
			if err != nil {
				return nil, err
			}
			if vals[f.Net] == f.launchValue() {
				launch = p
				break
			}
		}
		if launch == nil {
			continue
		}
		for try := 0; try < cfg.LaunchRetries; try++ {
			capturePat := randPat()
			pr := Pair{Launch: launch, Capture: capturePat}
			fails, err := Detects(c, pr, f)
			if err != nil {
				return nil, err
			}
			if fails != nil && !fails.Empty() {
				if err := tryPair(pr); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	return res, nil
}

// SlowNet is a gross-delay defect: during capture, net Net holds its launch
// value whenever the pair requested a transition at it.
type SlowNet struct {
	Net netlist.NetID
}

// ApplyTest simulates the two-pattern test application to a device with
// the given slow nets and returns the capture-side datalog (one entry per
// pair index).
func ApplyTest(c *netlist.Circuit, slow []SlowNet, pairs []Pair) (*tester.Datalog, error) {
	d := &tester.Datalog{
		CircuitName: c.Name,
		NumPatterns: len(pairs),
		NumPOs:      len(c.POs),
		Fails:       map[int]bitset.Set{},
	}
	for pi, pr := range pairs {
		v1, err := sim.EvalScalar(c, pr.Launch, nil)
		if err != nil {
			return nil, err
		}
		good, err := sim.EvalScalar(c, pr.Capture, nil)
		if err != nil {
			return nil, err
		}
		// Devices hold every slow net that was asked to transition.
		force := map[netlist.NetID]logic.Value{}
		for _, s := range slow {
			if v1[s.Net].IsKnown() && good[s.Net].IsKnown() && v1[s.Net] != good[s.Net] {
				force[s.Net] = v1[s.Net]
			}
		}
		if len(force) == 0 {
			continue
		}
		bad, err := sim.EvalScalar(c, pr.Capture, force)
		if err != nil {
			return nil, err
		}
		for i, po := range c.POs {
			if good[po].IsKnown() && bad[po].IsKnown() && good[po] != bad[po] {
				if d.Fails[pi] == nil {
					d.Fails[pi] = bitset.New(len(c.POs))
				}
				d.Fails[pi].Add(i)
			}
		}
	}
	return d, nil
}

// Candidate is one delay suspect.
type Candidate struct {
	Fault Fault
	// Covered / TFSF / TPSF mirror the static engine's evidence counts
	// over (pair, PO) bits.
	Covered bitset.Set
	TFSF    int
	TPSF    int
	// Equivalent lists indistinguishable delay faults.
	Equivalent []Fault
}

// Result is the delay diagnosis outcome.
type Result struct {
	Multiplet   []*Candidate
	Ranked      []*Candidate
	Evidence    int
	Unexplained int
	Elapsed     time.Duration
}

// MultipletNets adapts to the metrics package.
func (r *Result) MultipletNets() [][]netlist.NetID {
	out := make([][]netlist.NetID, len(r.Multiplet))
	for i, cd := range r.Multiplet {
		nets := []netlist.NetID{cd.Fault.Net}
		for _, e := range cd.Equivalent {
			nets = append(nets, e.Net)
		}
		out[i] = nets
	}
	return out
}

// Diagnose locates slow nets from a two-pattern datalog, mirroring the
// static engine: per-failing-output CPT on the capture pattern extracts
// transitioning critical nets as candidates; candidates are scored by
// full-pair simulation; a greedy cover selects the multiplet.
func Diagnose(c *netlist.Circuit, pairs []Pair, log *tester.Datalog, lambda float64, maxMultiplet int) (*Result, error) {
	res := &Result{}
	defer obs.Global().Span("transition.diagnose").EndInto(&res.Elapsed)
	if log.NumPatterns != len(pairs) {
		return nil, fmt.Errorf("transition: datalog has %d pairs, test set has %d", log.NumPatterns, len(pairs))
	}
	if lambda == 0 {
		lambda = 0.3
	}
	if maxMultiplet <= 0 {
		maxMultiplet = 10
	}
	failing := log.FailingPatterns()
	if len(failing) == 0 {
		return res, nil
	}
	// Evidence index.
	type evBit struct{ pair, po int }
	evIndex := map[evBit]int{}
	for _, p := range failing {
		for _, po := range log.Fails[p].Members() {
			evIndex[evBit{p, po}] = res.Evidence
			res.Evidence++
		}
	}
	// Extraction: transitioning critical nets on failing pairs.
	cpt := fsim.NewCPT(c)
	seen := map[Fault]bool{}
	var seeds []Fault
	for _, p := range failing {
		pr := pairs[p]
		v1, err := sim.EvalScalar(c, pr.Launch, nil)
		if err != nil {
			return nil, err
		}
		pos := make([]netlist.NetID, 0, log.Fails[p].Count())
		for _, poIdx := range log.Fails[p].Members() {
			pos = append(pos, c.POs[poIdx])
		}
		union, _, v2, err := cpt.CriticalForOutputs(pr.Capture, pos)
		if err != nil {
			return nil, err
		}
		for id, cr := range union {
			if !cr {
				continue
			}
			n := netlist.NetID(id)
			if !v1[n].IsKnown() || !v2[n].IsKnown() || v1[n] == v2[n] {
				continue // no transition at the site: a delay cannot explain it
			}
			f := Fault{Net: n, Rise: v2[n] == logic.One}
			if !seen[f] {
				seen[f] = true
				seeds = append(seeds, f)
			}
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].Net != seeds[j].Net {
			return seeds[i].Net < seeds[j].Net
		}
		return seeds[i].Rise && !seeds[j].Rise
	})
	// Scoring with equivalence-class merging.
	classes := map[string]*Candidate{}
	var cands []*Candidate
	for _, f := range seeds {
		cd := &Candidate{Fault: f, Covered: bitset.New(res.Evidence)}
		sig := ""
		for p := range pairs {
			fails, err := Detects(c, pairs[p], f)
			if err != nil {
				return nil, err
			}
			if fails == nil || fails.Empty() {
				continue
			}
			sig += fmt.Sprintf("%d:%s;", p, fails.String())
			for _, po := range fails.Members() {
				if idx, ok := evIndex[evBit{p, po}]; ok {
					cd.Covered.Add(idx)
				} else {
					cd.TPSF++
				}
			}
		}
		cd.TFSF = cd.Covered.Count()
		if cd.TFSF == 0 {
			continue
		}
		if rep, ok := classes[sig]; ok {
			rep.Equivalent = append(rep.Equivalent, f)
			continue
		}
		classes[sig] = cd
		cands = append(cands, cd)
	}
	// Greedy cover.
	remaining := bitset.New(res.Evidence)
	for i := 0; i < res.Evidence; i++ {
		remaining.Add(i)
	}
	used := map[*Candidate]bool{}
	for len(res.Multiplet) < maxMultiplet && !remaining.Empty() {
		var best *Candidate
		bestGain := 0.0
		bestCov := 0
		for _, cd := range cands {
			if used[cd] {
				continue
			}
			cov := cd.Covered.IntersectCount(remaining)
			if cov == 0 {
				continue
			}
			gain := float64(cov) - lambda*float64(cd.TPSF)
			if best == nil || gain > bestGain ||
				(gain == bestGain && (cov > bestCov || (cov == bestCov && cd.Fault.Net < best.Fault.Net))) {
				best, bestGain, bestCov = cd, gain, cov
			}
		}
		if best == nil {
			break
		}
		used[best] = true
		res.Multiplet = append(res.Multiplet, best)
		remaining.SubtractWith(best.Covered)
	}
	res.Unexplained = remaining.Count()
	rest := make([]*Candidate, 0, len(cands))
	for _, cd := range cands {
		if !used[cd] {
			rest = append(rest, cd)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].TFSF != rest[j].TFSF {
			return rest[i].TFSF > rest[j].TFSF
		}
		if rest[i].TPSF != rest[j].TPSF {
			return rest[i].TPSF < rest[j].TPSF
		}
		return rest[i].Fault.Net < rest[j].Fault.Net
	})
	res.Ranked = append(append([]*Candidate{}, res.Multiplet...), rest...)
	return res, nil
}
