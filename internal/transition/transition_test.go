package transition

import (
	"math/rand"
	"strings"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

func TestFaultBasics(t *testing.T) {
	c := circuits.C17()
	f := Fault{Net: c.NetByName("G11"), Rise: true}
	if f.Name(c) != "G11 STR" {
		t.Errorf("Name = %q", f.Name(c))
	}
	if f.launchValue() != logic.Zero {
		t.Error("STR launch value must be 0")
	}
	if st := f.asStuck(); st.Value1 {
		t.Error("STR capture-equivalent must be sa0")
	}
	g := Fault{Net: f.Net, Rise: false}
	if g.Name(c) != "G11 STF" || g.launchValue() != logic.One || !g.asStuck().Value1 {
		t.Error("STF mapping wrong")
	}
	if len(List(c)) != 2*c.NumGates() {
		t.Error("universe size")
	}
}

func mustPattern(t *testing.T, s string) sim.Pattern {
	t.Helper()
	p, err := sim.ParsePattern(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDetectsManual checks the three detection conditions on a hand-worked
// c17 case: G10 STR.
//
// G10 = NAND(G1, G3). Launch 11000 → G10 = NAND(1,1) = 0 (launch ok).
// Capture 01000: G10 = NAND(0,1) = 1 (transition requested). Late G10=0 →
// G22 = NAND(0, G16): G16 = NAND(1, G11), G11 = NAND(0,0)=1 → G16=0 →
// G22good = NAND(1,0)=1; G22bad = NAND(0,0)=1 — masked. Try capture 00100:
// G3=1: G10 = NAND(0,1)=1 ✓; G11=NAND(1,0)=1; G16=NAND(0,1)=1;
// G22good=NAND(1,1)=0; bad G10=0 → G22=NAND(0,1)=1 ✓ detected at PO0.
func TestDetectsManual(t *testing.T) {
	c := circuits.C17()
	f := Fault{Net: c.NetByName("G10"), Rise: true}
	pr := Pair{Launch: mustPattern(t, "10100"), Capture: mustPattern(t, "00100")}
	fails, err := Detects(c, pr, f)
	if err != nil {
		t.Fatal(err)
	}
	if fails == nil || !fails.Has(0) {
		t.Fatalf("expected detection at PO0, got %v", fails)
	}
	// Same pair, no launch (launch pattern leaves G10 at 1): not detected.
	pr2 := Pair{Launch: mustPattern(t, "00100"), Capture: mustPattern(t, "00100")}
	fails2, err := Detects(c, pr2, f)
	if err != nil {
		t.Fatal(err)
	}
	if fails2 != nil {
		t.Fatal("detection without launch")
	}
	// Capture that does not request a transition: not detected.
	pr3 := Pair{Launch: mustPattern(t, "10100"), Capture: mustPattern(t, "10100")}
	fails3, err := Detects(c, pr3, f)
	if err != nil {
		t.Fatal(err)
	}
	if fails3 != nil {
		t.Fatal("detection without transition request")
	}
}

func TestGenerateCoverage(t *testing.T) {
	for _, mk := range []func() (*netlist.Circuit, error){
		func() (*netlist.Circuit, error) { return circuits.C17(), nil },
		func() (*netlist.Circuit, error) { return circuits.RippleAdder(4) },
	} {
		c, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Generate(c, GenerateConfig{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage() < 0.8 {
			t.Errorf("%s: transition coverage %.2f", c.Name, res.Coverage())
		}
		// Verify the bookkeeping: every claimed-detected fault must be
		// detected by some pair.
		for fi, det := range res.Detected {
			if !det {
				continue
			}
			found := false
			for _, pr := range res.Pairs {
				fails, err := Detects(c, pr, res.Universe[fi])
				if err != nil {
					t.Fatal(err)
				}
				if fails != nil && !fails.Empty() {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: %s claimed detected but no pair detects it",
					c.Name, res.Universe[fi].Name(c))
			}
		}
	}
}

// TestApplyTestMatchesModel: a single slow net device must fail exactly
// where the transition-fault model predicts.
func TestApplyTestMatchesModel(t *testing.T) {
	c := circuits.C17()
	res, err := Generate(c, GenerateConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	n := c.NetByName("G16")
	log, err := ApplyTest(c, []SlowNet{{Net: n}}, res.Pairs)
	if err != nil {
		t.Fatal(err)
	}
	for pi, pr := range res.Pairs {
		// Model prediction: union of STR and STF detection (the slow net is
		// slow in both directions; per pair only one direction can launch).
		want := map[int]bool{}
		for _, f := range []Fault{{Net: n, Rise: true}, {Net: n, Rise: false}} {
			fails, err := Detects(c, pr, f)
			if err != nil {
				t.Fatal(err)
			}
			if fails != nil {
				for _, po := range fails.Members() {
					want[po] = true
				}
			}
		}
		for po := 0; po < len(c.POs); po++ {
			got := log.Fails[pi] != nil && log.Fails[pi].Has(po)
			if got != want[po] {
				t.Fatalf("pair %d PO %d: device %v model %v", pi, po, got, want[po])
			}
		}
	}
}

// TestDiagnoseSingleSlowNet: every observable slow-net defect on c17 must
// be localized (site or equivalence class containing it).
func TestDiagnoseSingleSlowNet(t *testing.T) {
	c := circuits.C17()
	res, err := Generate(c, GenerateConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		n := netlist.NetID(i)
		if c.Gates[i].Type == netlist.Input {
			continue
		}
		log, err := ApplyTest(c, []SlowNet{{Net: n}}, res.Pairs)
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Fails) == 0 {
			continue
		}
		d, err := Diagnose(c, res.Pairs, log, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		hit := false
		for _, nets := range d.MultipletNets() {
			for _, cn := range nets {
				if cn == n {
					hit = true
				}
			}
		}
		if !hit {
			t.Errorf("slow net %s not localized (multiplet %v)", c.NameOf(n), d.MultipletNets())
		}
		if d.Unexplained != 0 {
			t.Errorf("slow net %s: %d bits unexplained", c.NameOf(n), d.Unexplained)
		}
	}
}

// TestDiagnoseDoubleSlowNet on the adder: region-style hit counting over
// the two injected slow nets.
func TestDiagnoseDoubleSlowNet(t *testing.T) {
	c, err := circuits.RippleAdder(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(c, GenerateConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	var logicNets []netlist.NetID
	for i := range c.Gates {
		if c.Gates[i].Type != netlist.Input {
			logicNets = append(logicNets, netlist.NetID(i))
		}
	}
	hits, runs := 0, 0
	for trial := 0; trial < 10; trial++ {
		a := logicNets[r.Intn(len(logicNets))]
		b := logicNets[r.Intn(len(logicNets))]
		if a == b {
			continue
		}
		log, err := ApplyTest(c, []SlowNet{{Net: a}, {Net: b}}, res.Pairs)
		if err != nil {
			t.Fatal(err)
		}
		if len(log.Fails) == 0 {
			continue
		}
		d, err := Diagnose(c, res.Pairs, log, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		runs++
		found := map[netlist.NetID]bool{}
		for _, nets := range d.MultipletNets() {
			for _, cn := range nets {
				found[cn] = true
			}
		}
		if found[a] || found[b] {
			hits++
		}
	}
	if runs == 0 {
		t.Skip("no activated trials")
	}
	if float64(hits)/float64(runs) < 0.8 {
		t.Errorf("double slow-net hit rate %d/%d", hits, runs)
	}
}

func TestDiagnoseValidation(t *testing.T) {
	c := circuits.C17()
	res, err := Generate(c, GenerateConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	log, err := ApplyTest(c, nil, res.Pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) != 0 {
		t.Fatal("defect-free device failed")
	}
	d, err := Diagnose(c, res.Pairs, log, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Multiplet) != 0 {
		t.Fatal("candidates for passing device")
	}
	log.NumPatterns = 999
	if _, err := Diagnose(c, res.Pairs, log, 0, 0); err == nil {
		t.Fatal("pair-count mismatch accepted")
	}
}

func TestPairSerialization(t *testing.T) {
	pairs := []Pair{
		{Launch: mustPattern(t, "10100"), Capture: mustPattern(t, "00100")},
		{Launch: mustPattern(t, "1X111"), Capture: mustPattern(t, "01110")},
	}
	var sb strings.Builder
	if err := WritePairs(&sb, pairs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPairs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("pairs = %d", len(back))
	}
	for i := range pairs {
		if back[i].Launch.String() != pairs[i].Launch.String() ||
			back[i].Capture.String() != pairs[i].Capture.String() {
			t.Fatalf("pair %d changed in round trip", i)
		}
	}
	// Errors.
	for name, src := range map[string]string{
		"no separator":   "10100 00100\n",
		"width mismatch": "101|00\n",
		"second width":   "10|01\n111|000\n",
		"bad char":       "10２|001\n",
	} {
		if _, err := ReadPairs(strings.NewReader(src)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Comments and blank lines tolerated.
	ok, err := ReadPairs(strings.NewReader("# c\n\n10|01\n"))
	if err != nil || len(ok) != 1 {
		t.Fatalf("comment handling: %v %d", err, len(ok))
	}
}
