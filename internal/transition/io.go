package transition

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"multidiag/internal/sim"
)

// WritePairs serializes two-pattern tests, one pair per line as
// "launch|capture" 0/1/X strings.
func WritePairs(w io.Writer, pairs []Pair) error {
	bw := bufio.NewWriter(w)
	for _, pr := range pairs {
		fmt.Fprintf(bw, "%s|%s\n", pr.Launch.String(), pr.Capture.String())
	}
	return bw.Flush()
}

// ReadPairs parses the WritePairs format; all patterns must share one
// width.
func ReadPairs(r io.Reader) ([]Pair, error) {
	var out []Pair
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "|")
		if len(parts) != 2 {
			return nil, fmt.Errorf("transition: line %d: want launch|capture", line)
		}
		launch, err := sim.ParsePattern(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("transition: line %d: %v", line, err)
		}
		capture, err := sim.ParsePattern(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("transition: line %d: %v", line, err)
		}
		if len(launch) != len(capture) {
			return nil, fmt.Errorf("transition: line %d: launch/capture width mismatch", line)
		}
		if len(out) > 0 && len(launch) != len(out[0].Launch) {
			return nil, fmt.Errorf("transition: line %d: width differs from first pair", line)
		}
		out = append(out, Pair{Launch: launch, Capture: capture})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
