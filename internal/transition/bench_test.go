package transition

import (
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/netlist"
)

// BenchmarkDelayDiagnose measures one delay diagnosis of a slow net on the
// 16-bit ripple adder.
func BenchmarkDelayDiagnose(b *testing.B) {
	c, err := circuits.RippleAdder(16)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := Generate(c, GenerateConfig{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	var log interface{ FailingPatterns() []int }
	var slowNet netlist.NetID
	for i := range c.Gates {
		n := netlist.NetID(i)
		if c.Gates[i].Type == netlist.Input {
			continue
		}
		l, err := ApplyTest(c, []SlowNet{{Net: n}}, gen.Pairs)
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Fails) > 0 {
			log = l
			slowNet = n
			break
		}
	}
	if log == nil {
		b.Skip("no activated slow net")
	}
	_ = slowNet
	dl, err := ApplyTest(c, []SlowNet{{Net: slowNet}}, gen.Pairs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, gen.Pairs, dl, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
