// Package incident is the anomaly-triggered black-box recorder of the
// diagnosis service: when a request ends badly — shed under load, killed
// by its deadline, answered by a panicking engine, slower than the live
// p95, or diagnostically suspect (X-inconsistent / unexplained evidence)
// — the serving layer assembles one self-contained debug bundle
// correlating everything the three observability stacks know about that
// request: the raw device payload, the full request span tree
// (internal/trace), the profiling phase windows and pinned snapshots
// (internal/prof), the flight-recorder events (internal/explain) and the
// engine configuration the diagnosis ran under.
//
// Bundles spool to a bounded on-disk ring (max bundles, max bytes,
// overwrite-oldest) so an incident survives the process that produced it,
// and because the engine is bit-identical at any worker count, a bundle
// is not merely a postmortem artifact: cmd/mdreplay re-runs the captured
// request offline through core.DiagnoseCtx at any -j and proves the
// replayed report byte-identical to the captured one — same answer, with
// phase-time and cone-cache deltas showing what changed about *how*.
//
// Like the rest of the observability stack the package is stdlib-only
// and nil-tolerant: a nil *Recorder accepts every call as a no-op.
package incident

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"multidiag/internal/explain"
	"multidiag/internal/obs"
	"multidiag/internal/prof"
	"multidiag/internal/trace"
)

// Schema identifies bundle records; bump on incompatible change.
const Schema = "mdincident/v1"

// Trigger kinds, in capture-precedence order for a single request (a
// request gets at most one bundle; the first matching trigger names it).
const (
	// TriggerShed marks a request refused admission (429).
	TriggerShed = "shed"
	// TriggerDeadline marks a request killed by its deadline (504),
	// whether it expired queued or mid-engine.
	TriggerDeadline = "deadline"
	// TriggerPanic marks a request answered by a recovered engine panic.
	TriggerPanic = "panic"
	// TriggerQuality marks a structurally suspect diagnosis: the multiplet
	// failed the X-consistency check or left evidence bits unexplained.
	TriggerQuality = "quality"
	// TriggerSlow marks a successful request slower than the anomaly
	// threshold (the live service p95 by default).
	TriggerSlow = "slow"
)

// EngineConfig records how the captured diagnosis was (or would have
// been) executed — everything replay needs to reproduce the run exactly,
// plus the cache state that explains its timing.
type EngineConfig struct {
	// WorkersConfigured is the serving config's -j (0 = GOMAXPROCS);
	// WorkersEffective the pool size it resolved to at capture.
	WorkersConfigured int `json:"workers_configured"`
	WorkersEffective  int `json:"workers_effective"`
	// Seed order is deterministic by construction (extraction sorts by
	// (net, polarity) and folding is seed-ordered); SeedOrder names the
	// contract so a bundle is self-describing about why replay can work.
	SeedOrder string `json:"seed_order"`
	// ConeCache reports whether a shared cone cache was attached, with the
	// process-cumulative probe counters at capture time (the replay diff
	// reports per-request hit deltas from the trace tree instead).
	ConeCache          bool  `json:"cone_cache"`
	ConeCacheHits      int64 `json:"cone_cache_hits"`
	ConeCacheMisses    int64 `json:"cone_cache_misses"`
	ConeCacheEvictions int64 `json:"cone_cache_evictions"`
}

// Bundle is one self-contained incident record: everything needed to
// explain — and deterministically re-run — one anomalous request.
type Bundle struct {
	Schema         string `json:"schema"`
	CapturedUnixNS int64  `json:"captured_unix_ns"`
	// Trigger is one of the Trigger* kinds; Status the HTTP status the
	// request was answered with.
	Trigger string `json:"trigger"`
	Status  int    `json:"status"`
	// Workload names the registered (circuit, test set) pair; replay
	// resolves it through the same registry mdserve uses (or an explicit
	// override for file-loaded workloads).
	Workload  string `json:"workload"`
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	// Datalog is the device's observed failing behaviour in the tester
	// text serialization — the raw request payload, replay's input.
	Datalog string `json:"datalog"`
	// Top is the requested ranked-candidate bound (report shaping).
	Top    int          `json:"top"`
	Engine EngineConfig `json:"engine"`
	// Report is the wire-form serve report the request was answered with
	// (absent when the request never produced one: shed, deadline, panic).
	Report json.RawMessage `json:"report,omitempty"`
	// Trace is the request's captured span tree (absent with tracing off).
	Trace *trace.TreeRecord `json:"trace,omitempty"`
	// Prof carries the profiling view at capture: the pinned snapshot ring
	// (shed/panic pins) plus one live summary with the cumulative phase
	// attribution table (absent with profiling off).
	Prof []prof.Snapshot `json:"prof,omitempty"`
	// Explain carries the request's flight-recorder events when the
	// request ran with the recorder attached (explain=1 requests).
	Explain []explain.Event `json:"explain,omitempty"`
}

// Entry is one index row of the on-disk ring, served by the handler.
type Entry struct {
	Seq            int64  `json:"seq"`
	File           string `json:"file"`
	Bytes          int64  `json:"bytes"`
	Trigger        string `json:"trigger"`
	Status         int    `json:"status"`
	Workload       string `json:"workload"`
	RequestID      string `json:"request_id,omitempty"`
	TraceID        string `json:"trace_id,omitempty"`
	CapturedUnixNS int64  `json:"captured_unix_ns"`
}

// Config tunes a Recorder.
type Config struct {
	// Dir is the spool directory (created if missing). Required.
	Dir string
	// MaxBundles bounds the ring's bundle count. Default 32.
	MaxBundles int
	// MaxBytes bounds the ring's summed bundle bytes. Default 64 MiB.
	MaxBytes int64
	// MinInterval rate-limits captures per trigger kind, so a shed storm
	// spools one representative bundle per interval instead of churning
	// the ring. 0 disables the limit.
	MinInterval time.Duration
	// Registry receives the observatory counters (incident.captured,
	// incident.dropped_*, incident.evicted, incident.spooled_bytes) and
	// gauges (incident.bundles, incident.bytes). Nil: no counters.
	Registry *obs.Registry
}

func (cfg *Config) fill() {
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 32
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 20
	}
}

// Recorder spools bundles to the bounded on-disk ring and serves the
// index. Safe for concurrent use; nil is a valid no-op receiver.
type Recorder struct {
	cfg Config

	mu    sync.Mutex
	index []Entry // oldest first
	bytes int64
	seq   int64
	last  map[string]time.Time // per-trigger rate-limit state

	cCaptured, cEvicted, cSpooled *obs.Counter
	cDropRate, cDropErr           *obs.Counter
	gBundles, gBytes              *obs.Gauge
}

// NewRecorder opens (or creates) the spool directory and rebuilds the
// index from any bundles already on disk, so the ring's bounds hold
// across process restarts.
func NewRecorder(cfg Config) (*Recorder, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("incident: spool directory is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("incident: %w", err)
	}
	r := &Recorder{cfg: cfg, last: make(map[string]time.Time)}
	if reg := cfg.Registry; reg != nil {
		r.cCaptured = reg.Counter("incident.captured")
		r.cEvicted = reg.Counter("incident.evicted")
		r.cSpooled = reg.Counter("incident.spooled_bytes")
		r.cDropRate = reg.Counter("incident.dropped_ratelimited")
		r.cDropErr = reg.Counter("incident.dropped_error")
		r.gBundles = reg.Gauge("incident.bundles")
		r.gBytes = reg.Gauge("incident.bytes")
	}
	if err := r.rebuild(); err != nil {
		return nil, err
	}
	return r, nil
}

// rebuild scans the spool directory for existing bundles, restoring the
// index in sequence order and continuing the sequence past the largest
// seen. Unreadable files are skipped, not fatal: a half-written bundle
// from a crashed process must not brick the observatory.
func (r *Recorder) rebuild() error {
	names, err := filepath.Glob(filepath.Join(r.cfg.Dir, "incident-*.json"))
	if err != nil {
		return fmt.Errorf("incident: %w", err)
	}
	for _, name := range names {
		seq, ok := parseSeq(filepath.Base(name))
		if !ok {
			continue
		}
		data, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		var b Bundle
		if err := json.Unmarshal(data, &b); err != nil || b.Schema != Schema {
			continue
		}
		r.index = append(r.index, Entry{
			Seq:            seq,
			File:           filepath.Base(name),
			Bytes:          int64(len(data)),
			Trigger:        b.Trigger,
			Status:         b.Status,
			Workload:       b.Workload,
			RequestID:      b.RequestID,
			TraceID:        b.TraceID,
			CapturedUnixNS: b.CapturedUnixNS,
		})
		r.bytes += int64(len(data))
		if seq >= r.seq {
			r.seq = seq + 1
		}
	}
	sort.Slice(r.index, func(i, j int) bool { return r.index[i].Seq < r.index[j].Seq })
	r.evictLocked()
	r.updateGauges()
	return nil
}

// parseSeq extracts the sequence number from "incident-<seq>-<trigger>.json".
func parseSeq(base string) (int64, bool) {
	rest, ok := strings.CutPrefix(base, "incident-")
	if !ok {
		return 0, false
	}
	digits, _, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// stamp names a bundle's spool file: zero-padded sequence + trigger, so a
// directory listing sorts in capture order and names what each file holds.
func (b *Bundle) stamp(seq int64) string {
	return fmt.Sprintf("incident-%06d-%s.json", seq, b.Trigger)
}

// Capture spools one bundle, evicting the oldest past the ring bounds.
// It returns the bundle's file path, or "" when the capture was dropped
// (rate-limited, or a spool write failed — counted, never fatal: the
// serving path must not care). Safe on a nil recorder.
func (r *Recorder) Capture(b *Bundle) string {
	if r == nil || b == nil {
		return ""
	}
	b.Schema = Schema
	if b.CapturedUnixNS == 0 {
		b.CapturedUnixNS = time.Now().UnixNano()
	}

	r.mu.Lock()
	if r.cfg.MinInterval > 0 {
		now := time.Now()
		if now.Sub(r.last[b.Trigger]) < r.cfg.MinInterval {
			r.mu.Unlock()
			r.cDropRate.Inc()
			return ""
		}
		r.last[b.Trigger] = now
	}
	seq := r.seq
	r.seq++
	r.mu.Unlock()

	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		r.cDropErr.Inc()
		return ""
	}
	data = append(data, '\n')
	base := b.stamp(seq)
	path := filepath.Join(r.cfg.Dir, base)
	// Write-then-rename so a reader (or a restart's rebuild) never sees a
	// half-written bundle.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		r.cDropErr.Inc()
		return ""
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		r.cDropErr.Inc()
		return ""
	}

	r.mu.Lock()
	r.index = append(r.index, Entry{
		Seq:            seq,
		File:           base,
		Bytes:          int64(len(data)),
		Trigger:        b.Trigger,
		Status:         b.Status,
		Workload:       b.Workload,
		RequestID:      b.RequestID,
		TraceID:        b.TraceID,
		CapturedUnixNS: b.CapturedUnixNS,
	})
	r.bytes += int64(len(data))
	r.evictLocked()
	r.updateGauges()
	r.mu.Unlock()

	r.cCaptured.Inc()
	r.cSpooled.Add(int64(len(data)))
	return path
}

// evictLocked removes oldest bundles until the ring fits its bounds.
// Caller holds r.mu. At least one bundle is always retained — a single
// oversized bundle beats an empty observatory.
func (r *Recorder) evictLocked() {
	for len(r.index) > 1 && (len(r.index) > r.cfg.MaxBundles || r.bytes > r.cfg.MaxBytes) {
		victim := r.index[0]
		r.index = r.index[1:]
		r.bytes -= victim.Bytes
		os.Remove(filepath.Join(r.cfg.Dir, victim.File))
		r.cEvicted.Inc()
	}
}

func (r *Recorder) updateGauges() {
	if r.gBundles != nil {
		r.gBundles.Set(int64(len(r.index)))
		r.gBytes.Set(r.bytes)
	}
}

// Index returns the retained bundle entries, oldest first. Nil → nil.
func (r *Recorder) Index() []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Entry(nil), r.index...)
}

// Dir returns the spool directory ("" on nil).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.cfg.Dir
}

// indexReply is the GET /debug/incidents body.
type indexReply struct {
	Dir      string  `json:"dir"`
	Bundles  []Entry `json:"bundles"`
	Bytes    int64   `json:"bytes"`
	Captured int64   `json:"captured"`
	Evicted  int64   `json:"evicted"`
	Dropped  int64   `json:"dropped"`
}

// Handler serves the ring index as JSON at GET /debug/incidents: newest
// bundle first, plus the lifetime capture/evict/drop counters so silent
// incident loss is visible at a glance.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(rw, "incident recorder disabled (enable with -incident-dir)", http.StatusNotFound)
			return
		}
		entries := r.Index()
		for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
			entries[i], entries[j] = entries[j], entries[i]
		}
		r.mu.Lock()
		bytes := r.bytes
		r.mu.Unlock()
		reply := indexReply{
			Dir:      r.cfg.Dir,
			Bundles:  entries,
			Bytes:    bytes,
			Captured: r.cCaptured.Value(),
			Evicted:  r.cEvicted.Value(),
			Dropped:  r.cDropRate.Value() + r.cDropErr.Value(),
		}
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetEscapeHTML(false)
		enc.Encode(reply)
	})
}

// ReadBundle loads and validates one bundle file.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("incident: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("incident: %s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("incident: %s: schema %q, want %q", path, b.Schema, Schema)
	}
	if b.Workload == "" || b.Datalog == "" {
		return nil, fmt.Errorf("incident: %s: bundle missing workload or datalog", path)
	}
	return &b, nil
}
