package incident

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"multidiag/internal/obs"
)

func testBundle(trigger string, n int) *Bundle {
	return &Bundle{
		Trigger:   trigger,
		Status:    200,
		Workload:  "c17",
		RequestID: fmt.Sprintf("req-%04d", n),
		Datalog:   "patterns 32 / pos 2\nfail 3 1\n",
		Top:       10,
		Engine:    EngineConfig{WorkersEffective: 4, SeedOrder: "deterministic (net, polarity)"},
	}
}

func TestRecorderSpoolEvictionAndIndex(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New("incident-test").Registry()
	r, err := NewRecorder(Config{Dir: dir, MaxBundles: 3, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if path := r.Capture(testBundle(TriggerSlow, i)); path == "" {
			t.Fatalf("capture %d dropped", i)
		}
	}
	entries := r.Index()
	if len(entries) != 3 {
		t.Fatalf("index holds %d entries, want 3", len(entries))
	}
	// Oldest-first, and the two oldest captures were evicted.
	for i, e := range entries {
		if want := int64(i + 2); e.Seq != want {
			t.Fatalf("entry %d has seq %d, want %d", i, e.Seq, want)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(files) != 3 {
		t.Fatalf("%d bundle files on disk, want 3", len(files))
	}
	if got := reg.Counter("incident.captured").Value(); got != 5 {
		t.Fatalf("incident.captured = %d, want 5", got)
	}
	if got := reg.Counter("incident.evicted").Value(); got != 2 {
		t.Fatalf("incident.evicted = %d, want 2", got)
	}
	if reg.Counter("incident.spooled_bytes").Value() <= 0 {
		t.Fatal("incident.spooled_bytes not counted")
	}
	if got := reg.Gauge("incident.bundles").Value(); got != 3 {
		t.Fatalf("incident.bundles gauge = %d, want 3", got)
	}

	// The retained files must round-trip through ReadBundle.
	b, err := ReadBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != Schema || b.Workload != "c17" || b.Trigger != TriggerSlow {
		t.Fatalf("round-tripped bundle mangled: %+v", b)
	}
}

func TestRecorderMaxBytes(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(Config{Dir: dir, MaxBundles: 100, MaxBytes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	big := testBundle(TriggerQuality, 0)
	big.Datalog = strings.Repeat("fail 3 1\n", 100)
	for i := 0; i < 4; i++ {
		b := *big
		b.RequestID = fmt.Sprintf("big-%d", i)
		r.Capture(&b)
	}
	entries := r.Index()
	if len(entries) == 0 {
		t.Fatal("byte bound evicted everything; at least one bundle must survive")
	}
	if len(entries) == 4 {
		t.Fatal("byte bound never evicted")
	}
	var total int64
	for _, e := range entries {
		total += e.Bytes
	}
	// A single oversized bundle may legitimately exceed the bound; with
	// more than one retained, the sum must respect it.
	if len(entries) > 1 && total > 1500 {
		t.Fatalf("retained %d bytes across %d bundles, bound 1500", total, len(entries))
	}
}

func TestRecorderRateLimitPerTrigger(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New("incident-test").Registry()
	r, err := NewRecorder(Config{Dir: dir, MinInterval: time.Hour, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if r.Capture(testBundle(TriggerShed, 0)) == "" {
		t.Fatal("first shed capture dropped")
	}
	if r.Capture(testBundle(TriggerShed, 1)) != "" {
		t.Fatal("second shed capture inside the interval was not rate-limited")
	}
	// A different trigger kind has its own limiter state.
	if r.Capture(testBundle(TriggerPanic, 2)) == "" {
		t.Fatal("panic capture was blocked by the shed limiter")
	}
	if got := reg.Counter("incident.dropped_ratelimited").Value(); got != 1 {
		t.Fatalf("incident.dropped_ratelimited = %d, want 1", got)
	}
}

func TestRecorderRebuildAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r.Capture(testBundle(TriggerDeadline, i))
	}
	// Drop a junk file in the spool: the rebuild must skip it, not fail.
	if err := os.WriteFile(filepath.Join(dir, "incident-999999-junk.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := NewRecorder(Config{Dir: dir, MaxBundles: 2})
	if err != nil {
		t.Fatal(err)
	}
	entries := r2.Index()
	if len(entries) != 2 {
		t.Fatalf("rebuilt index holds %d entries, want 2 (bound applied on rescan)", len(entries))
	}
	// The sequence continues past what the first process spooled — even
	// past the junk file's bogus number, which parsed as a valid seq.
	path := r2.Capture(testBundle(TriggerDeadline, 9))
	if path == "" {
		t.Fatal("capture after rebuild dropped")
	}
	if base := filepath.Base(path); base <= entries[len(entries)-1].File {
		t.Fatalf("post-rebuild capture %q does not sort after retained %q", base, entries[len(entries)-1].File)
	}
}

func TestIncidentsHandler(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New("incident-test").Registry()
	r, err := NewRecorder(Config{Dir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	r.Capture(testBundle(TriggerShed, 0))
	r.Capture(testBundle(TriggerSlow, 1))

	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/incidents", nil))
	if rw.Code != 200 {
		t.Fatalf("handler status %d", rw.Code)
	}
	var reply struct {
		Dir      string  `json:"dir"`
		Bundles  []Entry `json:"bundles"`
		Captured int64   `json:"captured"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Dir != dir || reply.Captured != 2 || len(reply.Bundles) != 2 {
		t.Fatalf("index reply: %+v", reply)
	}
	// Newest first.
	if reply.Bundles[0].Trigger != TriggerSlow || reply.Bundles[1].Trigger != TriggerShed {
		t.Fatalf("index not newest-first: %+v", reply.Bundles)
	}

	// A disarmed observatory (nil recorder) answers 404, not an empty index.
	var nilRec *Recorder
	rw = httptest.NewRecorder()
	nilRec.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/incidents", nil))
	if rw.Code != 404 {
		t.Fatalf("nil recorder handler status %d, want 404", rw.Code)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Capture(testBundle(TriggerShed, 0)) != "" {
		t.Fatal("nil recorder captured")
	}
	if r.Index() != nil || r.Dir() != "" {
		t.Fatal("nil recorder leaked state")
	}
}

func TestReadBundleRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	if err := os.WriteFile(path, []byte(`{"schema":"bogus/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(path); err == nil {
		t.Fatal("bad schema accepted")
	}
	if err := os.WriteFile(path, []byte(`{"schema":"mdincident/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(path); err == nil {
		t.Fatal("bundle without workload/datalog accepted")
	}
}
