package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenRecord is a fully deterministic tree record exercising every
// field of the wire schema.
func goldenRecord() *TreeRecord {
	return &TreeRecord{
		Schema:      Schema,
		TraceID:     "4bf92f3577b34da6a3ce929d0e0e4736",
		StartUnixNS: 1754500000000000000,
		Flags:       []string{"timeout", "slow"},
		Attrs:       map[string]any{"request_id": "req-0001", "workload": "c17"},
		Dropped:     2,
		Spans: []SpanRecord{
			{
				SpanID:  "00f067aa0ba902b7",
				Name:    "serve.request",
				StartNS: 0,
				DurNS:   1500000,
				Attrs:   map[string]any{"endpoint": "/v1/diagnose", "status": int64(504)},
			},
			{
				SpanID:   "1f2e3d4c5b6a7988",
				ParentID: "00f067aa0ba902b7",
				Name:     "serve.queue",
				StartNS:  12000,
				DurNS:    400000,
			},
			{
				SpanID:     "a1b2c3d4e5f60718",
				ParentID:   "00f067aa0ba902b7",
				Name:       "diagnose",
				StartNS:    420000,
				DurNS:      0,
				Unfinished: true,
				Attrs:      map[string]any{"candidates": int64(37)},
			},
		},
	}
}

// TestTraceJSONLGolden pins the wire schema byte-for-byte: any change to
// field names, ordering, or encoding shows up as a golden diff and forces
// a deliberate schema bump. Regenerate with UPDATE_GOLDEN=1 go test
// ./internal/trace -run Golden.
func TestTraceJSONLGolden(t *testing.T) {
	path := filepath.Join("testdata", "tree_golden.jsonl")
	var buf bytes.Buffer
	if err := goldenRecord().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("wire schema drifted from golden.\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestGoldenRoundtrips proves the golden file decodes through the same
// reader mdtrace uses, with structure intact.
func TestGoldenRoundtrips(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "tree_golden.jsonl"))
	if err != nil {
		t.Skip("golden missing")
	}
	defer f.Close()
	recs, err := ReadTrees(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("golden decodes to %d trees", len(recs))
	}
	r := recs[0]
	if r.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || !r.HasFlag("timeout") || r.Dropped != 2 {
		t.Fatalf("golden tree mangled: %+v", r)
	}
	if root := r.Root(); root == nil || root.Name != "serve.request" {
		t.Fatalf("golden root: %+v", r.Root())
	}
	if len(r.Spans) != 3 || !r.Spans[2].Unfinished {
		t.Fatalf("golden spans mangled: %+v", r.Spans)
	}
	// JSON numbers decode as float64; the schema's attr values must
	// survive as numerically exact.
	if got := r.Spans[0].Attrs["status"]; got != float64(504) {
		t.Fatalf("status attr = %v (%T)", got, got)
	}
}

// TestReadTreesRejectsWrongSchema guards against silently misreading a
// future or foreign JSONL stream.
func TestReadTreesRejectsWrongSchema(t *testing.T) {
	in := bytes.NewBufferString(`{"schema":"mdtrace/v99","trace_id":"ab","spans":[]}` + "\n")
	if _, err := ReadTrees(in); err == nil {
		t.Fatal("wrong-schema line accepted")
	}
	in = bytes.NewBufferString("{not json}\n")
	if _, err := ReadTrees(in); err == nil {
		t.Fatal("malformed line accepted")
	}
}
