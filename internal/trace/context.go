package trace

import (
	"context"
	"strings"
)

// ctxKey keys the span context carried through context.Context.
type ctxKey struct{}

// spanCtx is the stored context value: the request's tree plus the span
// that new children should hang under. Stored by pointer so FromContext
// reads it without an interface-boxing allocation.
type spanCtx struct {
	tree   *Tree
	parent SpanID
}

// SpanContext is the tracing state extracted from a context: which tree
// (if any) this request records into and which span is the current
// parent. The zero value is inert.
type SpanContext struct {
	tree   *Tree
	parent SpanID
}

// FromContext extracts the span context. A context without one yields the
// inert zero value — the allocation-free disabled path.
func FromContext(ctx context.Context) SpanContext {
	if sc, ok := ctx.Value(ctxKey{}).(*spanCtx); ok {
		return SpanContext{tree: sc.tree, parent: sc.parent}
	}
	return SpanContext{}
}

// Enabled reports whether spans started from this context record anywhere.
func (sc SpanContext) Enabled() bool { return sc.tree != nil }

// Tree returns the carried tree (nil when inert).
func (sc SpanContext) Tree() *Tree { return sc.tree }

// Start opens a span under the context's current parent (a root-level
// span when the context carries a tree but no parent yet).
func (sc SpanContext) Start(name string) Span {
	if sc.tree == nil {
		return Span{}
	}
	if sc.parent.IsZero() {
		return sc.tree.Start(name)
	}
	return sc.tree.startSpan(name, sc.parent)
}

// WithTree returns a context carrying t with no current parent. A nil
// tree returns ctx unchanged.
func WithTree(ctx context.Context, t *Tree) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &spanCtx{tree: t})
}

// WithSpan returns a context under which new spans become children of s.
// An inert span returns ctx unchanged, so the disabled path allocates
// nothing.
func WithSpan(ctx context.Context, s Span) context.Context {
	if s.t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &spanCtx{tree: s.t, parent: s.id})
}

// Traceparent renders a W3C trace context header value, version 00. The
// sampled flag is always set: this process decided to record the request
// (tail-based capture decides retention later, which traceparent cannot
// express).
func Traceparent(t TraceID, s SpanID) string {
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(t.String())
	b.WriteString("-")
	b.WriteString(s.String())
	b.WriteString("-01")
	return b.String()
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version byte (per spec, future versions must stay parseable as version
// 00 prefixes) and rejects malformed or all-zero IDs.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var tid TraceID
	var sid SpanID
	// version "-" traceid(32) "-" spanid(16) "-" flags(2) [rest]
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, false
	}
	if !hexDecode(tid[:], h[3:35]) || !hexDecode(sid[:], h[36:52]) {
		return TraceID{}, SpanID{}, false
	}
	if !isHex(h[:2]) || !isHex(h[53:55]) || h[:2] == "ff" {
		return TraceID{}, SpanID{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return TraceID{}, SpanID{}, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// hexDecode fills dst from the lowercase-or-uppercase hex in src,
// reporting success. len(src) must be 2·len(dst).
func hexDecode(dst []byte, src string) bool {
	for i := range dst {
		hi, ok1 := hexVal(src[2*i])
		lo, ok2 := hexVal(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if _, ok := hexVal(s[i]); !ok {
			return false
		}
	}
	return true
}
