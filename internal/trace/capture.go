package trace

import (
	"io"
	"sync"
	"sync/atomic"

	"multidiag/internal/obs"
)

// FlagSampled marks trees retained by the probabilistic head of the tail
// sampler rather than by an interesting outcome.
const FlagSampled = "sampled"

// FlagSlow marks trees whose root latency cleared the slow threshold at
// capture time.
const FlagSlow = "slow"

// CaptureConfig configures a Capture.
type CaptureConfig struct {
	// Capacity is the size of EACH retention ring (flagged and sampled),
	// so routine traffic can never evict a shed or timeout trace.
	// Zero → 64.
	Capacity int
	// SampleRate is the probability an unflagged tree is retained.
	// 0 keeps none (flagged trees are always kept); 1 keeps all.
	SampleRate float64
	// SlowNS, when set, returns the current slow threshold in
	// nanoseconds (e.g. the live p95 of service time); a tree whose root
	// span duration meets it is flagged "slow" and always kept. A return
	// ≤ 0 means "no threshold yet" (too few observations).
	SlowNS func() int64
	// Sink, when set, receives every retained tree as one JSON line,
	// write-through at Offer time. Writes are serialized; errors are
	// counted, not fatal.
	Sink io.Writer
	// Registry, when set, surfaces the overwrite-oldest evictions as
	// counters (trace.capture_evicted_flagged / _sampled) — without them a
	// full flagged ring silently loses the OLDEST incident trace, and
	// nothing on /metrics says so.
	Registry *obs.Registry
}

// Capture is the tail-based retention buffer: the keep/drop decision is
// made at request END, when the outcome (shed, timeout, panic, slow,
// routine) is known. Flagged trees land in a dedicated ring so a burst of
// routine sampled traffic cannot evict the interesting ones. Safe for
// concurrent use.
type Capture struct {
	cfg CaptureConfig

	mu      sync.Mutex
	flagged ring
	sampled ring

	// rng drives sampling decisions: splitmix64 over a counter, same
	// generator as span IDs but an independent stream.
	rng atomic.Uint64

	offered   atomic.Int64
	kept      atomic.Int64
	sinkErrs  atomic.Int64
	sinkTrees atomic.Int64

	// Eviction accounting, split by ring: a flagged eviction means an
	// incident trace was lost to newer incidents (ring too small for the
	// anomaly rate), a sampled eviction is routine turnover.
	evFlagged              atomic.Int64
	evSampled              atomic.Int64
	cEvFlagged, cEvSampled *obs.Counter
}

// ring is a fixed-capacity overwrite-oldest buffer of tree records.
type ring struct {
	buf  []*TreeRecord
	next int
	full bool
}

// push stores rec, reporting whether it overwrote a retained record (the
// ring was already full, so the oldest entry was evicted to make room).
func (r *ring) push(rec *TreeRecord) (evicted bool) {
	evicted = r.full
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	return evicted
}

// snapshot appends the ring's records oldest-first.
func (r *ring) snapshot(out []*TreeRecord) []*TreeRecord {
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// NewCapture builds a capture buffer. Nil is a valid *Capture: every
// method no-ops, so serving code needs no "is capture on?" branches.
func NewCapture(cfg CaptureConfig) *Capture {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	c := &Capture{cfg: cfg}
	c.flagged.buf = make([]*TreeRecord, cfg.Capacity)
	c.sampled.buf = make([]*TreeRecord, cfg.Capacity)
	if reg := cfg.Registry; reg != nil {
		c.cEvFlagged = reg.Counter("trace.capture_evicted_flagged")
		c.cEvSampled = reg.Counter("trace.capture_evicted_sampled")
	}
	return c
}

// sampleHit draws one Bernoulli(SampleRate) decision.
func (c *Capture) sampleHit() bool {
	rate := c.cfg.SampleRate
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	u := splitmix64((idState.base ^ 0xa5a5a5a5a5a5a5a5) + c.rng.Add(1))
	return float64(u>>11)/float64(1<<53) < rate
}

// Offer presents a finished tree for retention. Flag the tree ("shed",
// "timeout", "panic") BEFORE offering; Offer adds "slow" itself when the
// root duration clears the SlowNS threshold. Returns whether the tree was
// kept. Nil capture or nil tree → false.
func (c *Capture) Offer(t *Tree) bool {
	if c == nil || t == nil {
		return false
	}
	c.offered.Add(1)

	// Evaluate the slow threshold against the tree's root span before
	// snapshotting, so the flag lands in the record.
	if c.cfg.SlowNS != nil {
		if thr := c.cfg.SlowNS(); thr > 0 {
			if root := rootDurNS(t); root >= thr {
				t.Flag(FlagSlow)
			}
		}
	}

	flagged := t.Flagged()
	sampled := false
	if !flagged {
		sampled = c.sampleHit()
		if !sampled {
			return false
		}
		t.Flag(FlagSampled)
	}

	rec := t.Record()
	c.kept.Add(1)
	c.mu.Lock()
	var evicted bool
	if flagged {
		evicted = c.flagged.push(rec)
	} else {
		evicted = c.sampled.push(rec)
	}
	c.mu.Unlock()
	if evicted {
		if flagged {
			c.evFlagged.Add(1)
			c.cEvFlagged.Inc()
		} else {
			c.evSampled.Add(1)
			c.cEvSampled.Inc()
		}
	}

	if c.cfg.Sink != nil {
		c.mu.Lock()
		err := rec.WriteJSONL(c.cfg.Sink)
		c.mu.Unlock()
		if err != nil {
			c.sinkErrs.Add(1)
		} else {
			c.sinkTrees.Add(1)
		}
	}
	return true
}

// rootDurNS returns the duration of the tree's first finished root-level
// span, or 0 when none is finished yet.
func rootDurNS(t *Tree) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		sp := &t.spans[i]
		if sp.done && (sp.parent.IsZero() || sp.parent == t.remote) {
			return sp.dur.Nanoseconds()
		}
	}
	return 0
}

// Snapshot returns the retained trees, flagged ring first, each ring
// oldest-first. Nil capture → nil.
func (c *Capture) Snapshot() []*TreeRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*TreeRecord, 0, len(c.flagged.buf)+len(c.sampled.buf))
	out = c.flagged.snapshot(out)
	out = c.sampled.snapshot(out)
	return out
}

// Stats reports capture counters: trees offered, trees kept, trees
// written to the sink, sink write errors.
func (c *Capture) Stats() (offered, kept, sunk, sinkErrs int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	return c.offered.Load(), c.kept.Load(), c.sinkTrees.Load(), c.sinkErrs.Load()
}

// Evictions reports how many retained trees each ring has overwritten:
// flagged evictions mean incident traces were lost to newer incidents,
// sampled evictions are routine turnover. Nil capture → 0, 0.
func (c *Capture) Evictions() (flagged, sampled int64) {
	if c == nil {
		return 0, 0
	}
	return c.evFlagged.Load(), c.evSampled.Load()
}
