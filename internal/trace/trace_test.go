package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewIDsNonZeroAndUnique(t *testing.T) {
	seenT := map[TraceID]bool{}
	seenS := map[SpanID]bool{}
	for i := 0; i < 10000; i++ {
		tid := NewTraceID()
		sid := NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatalf("zero ID generated at iteration %d", i)
		}
		if seenT[tid] || seenS[sid] {
			t.Fatalf("duplicate ID at iteration %d", i)
		}
		seenT[tid] = true
		seenS[sid] = true
	}
}

func TestIDStringFormat(t *testing.T) {
	tid := NewTraceID()
	sid := NewSpanID()
	if len(tid.String()) != 32 || len(sid.String()) != 16 {
		t.Fatalf("hex lengths: trace %d span %d, want 32/16", len(tid.String()), len(sid.String()))
	}
	if strings.ToLower(tid.String()) != tid.String() {
		t.Fatalf("trace ID not lowercase hex: %s", tid.String())
	}
}

func TestTreeParentChildStructure(t *testing.T) {
	tr := NewTree(TraceID{})
	root := tr.Start("root")
	child := root.Start("child")
	grand := child.Start("grand")
	grand.SetInt("n", 7)
	grand.End()
	child.End()
	sib := root.Start("sibling")
	sib.End()
	root.End()

	rec := tr.Record()
	if rec.Schema != Schema {
		t.Fatalf("schema %q", rec.Schema)
	}
	if len(rec.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(rec.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	if byName["root"].ParentID != "" {
		t.Fatalf("root has parent %q", byName["root"].ParentID)
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Fatalf("child parent %q != root %q", byName["child"].ParentID, byName["root"].SpanID)
	}
	if byName["grand"].ParentID != byName["child"].SpanID {
		t.Fatalf("grand parent mismatch")
	}
	if byName["sibling"].ParentID != byName["root"].SpanID {
		t.Fatalf("sibling parent mismatch")
	}
	if got := byName["grand"].Attrs["n"]; got != float64(7) && got != int64(7) {
		t.Fatalf("grand attr n = %v (%T)", got, got)
	}
	if got := rec.Root(); got == nil || got.Name != "root" {
		t.Fatalf("Root() = %+v", got)
	}
}

func TestRemoteParentConnectsRoot(t *testing.T) {
	remote := NewSpanID()
	tr := NewTree(TraceID{})
	tr.SetRemoteParent(remote)
	sp := tr.Start("ingress")
	sp.End()
	rec := tr.Record()
	if rec.Spans[0].ParentID != remote.String() {
		t.Fatalf("root parent %q, want remote %q", rec.Spans[0].ParentID, remote.String())
	}
	// Root() must still find it: the remote parent resolves to no local span.
	if got := rec.Root(); got == nil || got.Name != "ingress" {
		t.Fatalf("Root() = %+v", got)
	}
}

func TestSpanEndTwiceKeepsFirst(t *testing.T) {
	tr := NewTree(TraceID{})
	sp := tr.Start("once")
	d1 := sp.End()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	rec := tr.Record()
	if got := rec.Spans[0].DurNS; got != d1.Nanoseconds() {
		t.Fatalf("second End overwrote duration: %d vs %d", got, d1.Nanoseconds())
	}
}

func TestUnfinishedSpanMarked(t *testing.T) {
	tr := NewTree(TraceID{})
	tr.Start("open")
	rec := tr.Record()
	if !rec.Spans[0].Unfinished || rec.Spans[0].DurNS != 0 {
		t.Fatalf("open span not marked unfinished: %+v", rec.Spans[0])
	}
}

func TestTreeSpanBoundCountsDrops(t *testing.T) {
	tr := NewTree(TraceID{})
	for i := 0; i < maxTreeSpans+10; i++ {
		tr.Start("s").End()
	}
	if tr.Len() != maxTreeSpans {
		t.Fatalf("retained %d, want %d", tr.Len(), maxTreeSpans)
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped %d, want 10", tr.Dropped())
	}
	if tr.Record().Dropped != 10 {
		t.Fatalf("record dropped mismatch")
	}
}

func TestFlagDedup(t *testing.T) {
	tr := NewTree(TraceID{})
	tr.Flag("shed")
	tr.Flag("shed")
	tr.Flag("timeout")
	rec := tr.Record()
	if len(rec.Flags) != 2 {
		t.Fatalf("flags %v", rec.Flags)
	}
	if !rec.HasFlag("shed") || !rec.HasFlag("timeout") || rec.HasFlag("panic") {
		t.Fatalf("HasFlag wrong: %v", rec.Flags)
	}
}

func TestNilAndInertHandlesNoOp(t *testing.T) {
	var tr *Tree
	sp := tr.Start("x")
	if sp.Enabled() {
		t.Fatal("span from nil tree enabled")
	}
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.End()
	child := sp.Start("y")
	if child.Enabled() {
		t.Fatal("child of inert span enabled")
	}
	tr.Flag("shed")
	tr.SetAttr("a", "b")
	tr.SetRemoteParent(NewSpanID())
	if tr.Record() != nil || tr.Len() != 0 || tr.Dropped() != 0 || tr.Flagged() {
		t.Fatal("nil tree methods not inert")
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx).Enabled() {
		t.Fatal("empty context enabled")
	}
	if FromContext(ctx).Start("x").Enabled() {
		t.Fatal("span from empty context enabled")
	}

	tr := NewTree(TraceID{})
	ctx = WithTree(ctx, tr)
	sc := FromContext(ctx)
	if !sc.Enabled() || sc.Tree() != tr {
		t.Fatal("tree not carried")
	}
	root := sc.Start("root")
	ctx2 := WithSpan(ctx, root)
	child := FromContext(ctx2).Start("child")
	child.End()
	root.End()
	rec := tr.Record()
	if len(rec.Spans) != 2 || rec.Spans[1].ParentID != rec.Spans[0].SpanID {
		t.Fatalf("context parenting broken: %+v", rec.Spans)
	}

	// Inert handles must not grow the context chain.
	if got := WithTree(context.Background(), nil); got != context.Background() {
		t.Fatal("WithTree(nil) allocated a context")
	}
	if got := WithSpan(context.Background(), Span{}); got != context.Background() {
		t.Fatal("WithSpan(inert) allocated a context")
	}
}

func TestDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		sc := FromContext(ctx)
		sp := sc.Start("phase")
		sp.SetInt("k", 1)
		child := sp.Start("sub")
		child.End()
		sp.End()
		_ = WithSpan(ctx, sp)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func TestTraceparentRoundtrip(t *testing.T) {
	tid := NewTraceID()
	sid := NewSpanID()
	h := Traceparent(tid, sid)
	if len(h) != 55 {
		t.Fatalf("traceparent length %d: %s", len(h), h)
	}
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("roundtrip failed: %s", h)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	good := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, _, ok := ParseTraceparent(good); !ok {
		t.Fatal("reference header rejected")
	}
	// Future-version header with trailing fields is accepted.
	if _, _, ok := ParseTraceparent(good + "-extra"); !ok {
		t.Fatal("future-version suffix rejected")
	}
	bad := []string{
		"",
		"00",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff forbidden
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-4bf92f3577b34da6a3ce929d0e0e473Z-00f067aa0ba902b7-01", // non-hex
		"004bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // missing dash
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("accepted malformed header %q", h)
		}
	}
}

// TestConcurrentSpanEmission drives many goroutines into one tree; run
// under -race this pins the locking discipline.
func TestConcurrentSpanEmission(t *testing.T) {
	tr := NewTree(TraceID{})
	root := tr.Start("root")
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := root.Start("work")
				sp.SetInt("iter", int64(i))
				tr.Flag("stress")
				if i%10 == 0 {
					_ = tr.Record() // snapshot mid-flight
				}
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != workers*perWorker+1 {
		t.Fatalf("retained %d spans, want %d", got, workers*perWorker+1)
	}
	rec := tr.Record()
	for _, s := range rec.Spans {
		if s.Name == "work" && s.ParentID != rec.Spans[0].SpanID {
			t.Fatalf("worker span detached: %+v", s)
		}
	}
}
