package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Schema identifies the trace-tree wire format; bump on incompatible
// change. The golden test in golden_test.go pins the serialization.
const Schema = "mdtrace/v1"

// TreeRecord is the wire form of one captured span tree: one JSON object
// per tree, one tree per line in JSONL sinks and in the /debug/trace
// response.
type TreeRecord struct {
	Schema  string `json:"schema"`
	TraceID string `json:"trace_id"`
	// StartUnixNS is the tree's epoch on the wall clock.
	StartUnixNS int64 `json:"start_unix_ns"`
	// Flags carries the tail-sampling marks ("shed", "timeout", "panic",
	// "slow", "sampled").
	Flags []string `json:"flags,omitempty"`
	// Attrs carries tree-level attributes (request_id, workload, …).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Dropped counts spans discarded past the retention bound.
	Dropped int64 `json:"dropped,omitempty"`
	// Spans lists every retained span in start order; the first span with
	// an absent or foreign parent is the root.
	Spans []SpanRecord `json:"spans"`
}

// SpanRecord is the wire form of one span.
type SpanRecord struct {
	SpanID string `json:"span_id"`
	// ParentID is empty for a root span (or carries the remote parent from
	// an incoming traceparent, which no local span resolves to).
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartNS is the offset from the tree epoch.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Unfinished marks a span still open when the tree was captured (its
	// DurNS is the time observed so far).
	Unfinished bool           `json:"unfinished,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// attrMap flattens an attribute list into the wire map (last write per
// key wins, matching SetAttr/SetInt semantics).
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		if a.IsInt {
			m[a.Key] = a.Int
		} else {
			m[a.Key] = a.Str
		}
	}
	return m
}

// Record snapshots the tree into its wire form. Safe to call while spans
// are still being emitted (they appear as Unfinished); nil tree → nil.
func (t *Tree) Record() *TreeRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := &TreeRecord{
		Schema:      Schema,
		TraceID:     t.traceID.String(),
		StartUnixNS: t.wall.UnixNano(),
		Flags:       append([]string(nil), t.flags...),
		Attrs:       attrMap(t.attrs),
		Dropped:     t.dropped,
		Spans:       make([]SpanRecord, 0, len(t.spans)),
	}
	for i := range t.spans {
		sp := &t.spans[i]
		sr := SpanRecord{
			SpanID:  sp.id.String(),
			Name:    sp.name,
			StartNS: sp.start.Nanoseconds(),
			DurNS:   sp.dur.Nanoseconds(),
			Attrs:   attrMap(sp.attrs),
		}
		if !sp.parent.IsZero() {
			sr.ParentID = sp.parent.String()
		}
		if !sp.done {
			sr.Unfinished = true
			sr.DurNS = 0
		}
		rec.Spans = append(rec.Spans, sr)
	}
	return rec
}

// Root returns the record's root span: the first span whose parent is
// absent or resolves to no span in the record (a remote parent). Nil when
// the record holds no spans.
func (r *TreeRecord) Root() *SpanRecord {
	if r == nil || len(r.Spans) == 0 {
		return nil
	}
	local := make(map[string]bool, len(r.Spans))
	for i := range r.Spans {
		local[r.Spans[i].SpanID] = true
	}
	for i := range r.Spans {
		if r.Spans[i].ParentID == "" || !local[r.Spans[i].ParentID] {
			return &r.Spans[i]
		}
	}
	return &r.Spans[0]
}

// HasFlag reports whether the record carries the given tail flag.
func (r *TreeRecord) HasFlag(f string) bool {
	if r == nil {
		return false
	}
	for _, have := range r.Flags {
		if have == f {
			return true
		}
	}
	return false
}

// WriteJSONL writes the record as one JSON line.
func (r *TreeRecord) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(r)
}

// ReadTrees decodes a JSONL stream of tree records (the -trace-spans-out
// sink format and the /debug/trace response body). Blank lines are
// skipped; a record with the wrong schema fails loudly rather than being
// misread.
func ReadTrees(r io.Reader) ([]*TreeRecord, error) {
	var out []*TreeRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		rec := &TreeRecord{}
		if err := json.Unmarshal(b, rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if rec.Schema != Schema {
			return nil, fmt.Errorf("trace: line %d: schema %q, want %q", line, rec.Schema, Schema)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}
