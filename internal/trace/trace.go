// Package trace is request-scoped distributed tracing: one diagnosis
// request carries a span tree — trace ID, span IDs with parent links,
// start offsets and durations, small typed attributes — through every
// layer it touches, from HTTP ingress in internal/serve through the
// core engine's phases down to fsim's fault-parallel workers and their
// cone-cache probes.
//
// It complements internal/obs rather than replacing it: obs aggregates
// (phase totals, counters, histograms) answer "is the service slow?",
// a trace tree answers "where did THIS request spend its time?". The
// two join on exemplar trace IDs attached to obs histograms.
//
// Design constraints, in priority order:
//
//   - The disabled path is allocation-free and near-zero cost: a context
//     without a tree yields zero-value SpanContext/Span handles whose
//     every method is a nil-check no-op, so instrumented code needs no
//     "is tracing on?" branches (the same contract as obs).
//   - Everything is safe for concurrent use: the batcher, the engine and
//     the fault-parallel workers all emit spans into one request's tree.
//   - Trees are bounded (maxTreeSpans) so a pathological request cannot
//     grow memory without limit; drops are counted, never silent.
//
// Interop: trace and span IDs follow the W3C Trace Context format
// (16-byte trace ID, 8-byte span ID, lowercase hex), and ParseTraceparent
// / Traceparent convert to and from the `traceparent` header, so mdserve
// can join traces started by an upstream proxy or client.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the W3C 16-byte trace identifier.
type TraceID [16]byte

// SpanID is the W3C 8-byte span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as lowercase hex (the traceparent field form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as lowercase hex (the traceparent field form).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// idState seeds process-unique ID generation: a random base from
// crypto/rand mixed with an atomic counter through splitmix64, so IDs are
// unique within and (with overwhelming probability) across processes
// without taking a lock or draining the kernel entropy pool per span.
var idState struct {
	base uint64
	ctr  atomic.Uint64
}

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock: uniqueness degrades to per-process,
		// which the in-process span tree never notices.
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	idState.base = binary.LittleEndian.Uint64(b[:])
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche over the counter stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nextID() uint64 {
	for {
		if id := splitmix64(idState.base + idState.ctr.Add(1)); id != 0 {
			return id
		}
	}
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], nextID())
	binary.BigEndian.PutUint64(t[8:], nextID())
	return t
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}

// maxTreeSpans bounds one tree's retained spans; a runaway instrumentation
// loop drops (and counts) spans instead of growing a request's memory
// without bound. 4096 is ~50× the deepest tree the engine produces today.
const maxTreeSpans = 4096

// Attr is one span or tree attribute: a key with either an integer or a
// string value (IsInt selects).
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// spanRec is one span's retained state inside a tree.
type spanRec struct {
	id     SpanID
	parent SpanID
	name   string
	start  time.Duration // offset from tree epoch
	dur    time.Duration
	done   bool
	attrs  []Attr
}

// Tree collects one request's spans. All methods are safe for concurrent
// use; a nil *Tree accepts every call as a no-op.
type Tree struct {
	traceID TraceID
	epoch   time.Time
	wall    time.Time // wall clock at epoch, for the wire record

	mu      sync.Mutex
	remote  SpanID // parent span from an incoming traceparent, if any
	spans   []spanRec
	dropped int64
	flags   []string
	attrs   []Attr
}

// NewTree starts a tree. A zero id draws a fresh trace ID; a non-zero id
// (from an incoming traceparent) joins the caller's trace.
func NewTree(id TraceID) *Tree {
	if id.IsZero() {
		id = NewTraceID()
	}
	now := time.Now()
	return &Tree{traceID: id, epoch: now, wall: now}
}

// TraceID returns the tree's trace ID (zero on nil).
func (t *Tree) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// SetRemoteParent records the upstream span ID from an incoming
// traceparent header: root spans of this tree become its children, so the
// caller's trace stays connected across the process boundary.
func (t *Tree) SetRemoteParent(id SpanID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.remote = id
	t.mu.Unlock()
}

// Flag marks the tree with a tail-sampling flag ("shed", "timeout",
// "panic", "slow", …). Duplicate flags collapse.
func (t *Tree) Flag(f string) {
	if t == nil || f == "" {
		return
	}
	t.mu.Lock()
	for _, have := range t.flags {
		if have == f {
			t.mu.Unlock()
			return
		}
	}
	t.flags = append(t.flags, f)
	t.mu.Unlock()
}

// Flagged reports whether any tail flag is set.
func (t *Tree) Flagged() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flags) > 0
}

// SetAttr attaches a tree-level string attribute (request ID, workload,
// …). Last write per key wins in the wire record.
func (t *Tree) SetAttr(key, val string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, Attr{Key: key, Str: val})
	t.mu.Unlock()
}

// Start opens a root-level span (child of the remote parent when one was
// set). Nil tree → inert zero Span.
func (t *Tree) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	parent := t.remote
	t.mu.Unlock()
	return t.startSpan(name, parent)
}

func (t *Tree) startSpan(name string, parent SpanID) Span {
	now := time.Now()
	id := NewSpanID()
	t.mu.Lock()
	idx := int32(-1)
	if len(t.spans) < maxTreeSpans {
		idx = int32(len(t.spans))
		t.spans = append(t.spans, spanRec{id: id, parent: parent, name: name, start: now.Sub(t.epoch)})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	return Span{t: t, idx: idx, id: id, start: now}
}

// Dropped returns the number of spans discarded past the retention bound.
func (t *Tree) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of retained spans.
func (t *Tree) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Span is one in-flight measurement in a tree. The zero value is inert:
// every method no-ops, so disabled-path call sites stay branch-free.
type Span struct {
	t     *Tree
	idx   int32
	id    SpanID
	start time.Time
}

// Enabled reports whether the span records into a live tree.
func (s Span) Enabled() bool { return s.t != nil }

// ID returns the span's ID (zero when inert).
func (s Span) ID() SpanID { return s.id }

// Tree returns the tree the span records into (nil when inert).
func (s Span) Tree() *Tree { return s.t }

// Start opens a child span.
func (s Span) Start(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.startSpan(name, s.id)
}

// End finishes the span, recording its duration. Returns the duration
// (meaningless but harmless on an inert span). Ending twice keeps the
// first duration.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.t == nil || s.idx < 0 {
		return d
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	if !rec.done {
		rec.dur = d
		rec.done = true
	}
	s.t.mu.Unlock()
	return d
}

// SetInt attaches an integer attribute to the span.
func (s Span) SetInt(key string, v int64) {
	if s.t == nil || s.idx < 0 {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.idx].attrs = append(s.t.spans[s.idx].attrs, Attr{Key: key, Int: v, IsInt: true})
	s.t.mu.Unlock()
}

// SetStr attaches a string attribute to the span.
func (s Span) SetStr(key, val string) {
	if s.t == nil || s.idx < 0 {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.idx].attrs = append(s.t.spans[s.idx].attrs, Attr{Key: key, Str: val})
	s.t.mu.Unlock()
}
