package trace

import (
	"sync"
	"testing"

	"multidiag/internal/obs"
)

// burstTree builds a finished one-span tree, flagged when flag != "".
func burstTree(flag string) *Tree {
	tr := NewTree(TraceID{})
	root := tr.Start("serve.request")
	root.End()
	if flag != "" {
		tr.Flag(flag)
	}
	return tr
}

// TestCaptureConcurrentFlagSampleBurst drives concurrent flagged and
// sampled offers at a small capture and pins the ring-isolation contract
// under the race detector: a burst of routine sampled traffic can never
// displace a flagged (incident) trace, because each class owns its own
// overwrite-oldest ring — and the evictions that do happen are counted
// per ring, not silently.
func TestCaptureConcurrentFlagSampleBurst(t *testing.T) {
	const capacity = 8
	const perClass = 100
	reg := obs.New("capture-race").Registry()
	c := NewCapture(CaptureConfig{Capacity: capacity, SampleRate: 1, Registry: reg})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < perClass/4; i++ {
				if !c.Offer(burstTree("shed")) {
					t.Error("flagged tree dropped")
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < perClass/4; i++ {
				if !c.Offer(burstTree("")) {
					t.Error("sampled tree dropped at rate 1")
				}
			}
		}()
	}
	wg.Wait()

	snap := c.Snapshot()
	if len(snap) != 2*capacity {
		t.Fatalf("snapshot holds %d records, want %d (both rings full)", len(snap), 2*capacity)
	}
	// The flagged ring is emitted first and must hold ONLY flagged trees:
	// sampled bursts never displace incidents.
	for i, rec := range snap[:capacity] {
		if !rec.HasFlag("shed") || rec.HasFlag(FlagSampled) {
			t.Fatalf("flagged-ring record %d carries flags %v", i, rec.Flags)
		}
	}
	for i, rec := range snap[capacity:] {
		if !rec.HasFlag(FlagSampled) || rec.HasFlag("shed") {
			t.Fatalf("sampled-ring record %d carries flags %v", i, rec.Flags)
		}
	}

	// Every offer past each ring's capacity evicted exactly one record of
	// the SAME class.
	evF, evS := c.Evictions()
	if evF != perClass-capacity || evS != perClass-capacity {
		t.Fatalf("evictions flagged=%d sampled=%d, want %d each", evF, evS, perClass-capacity)
	}
	if got := reg.Counter("trace.capture_evicted_flagged").Value(); got != evF {
		t.Fatalf("trace.capture_evicted_flagged = %d, want %d", got, evF)
	}
	if got := reg.Counter("trace.capture_evicted_sampled").Value(); got != evS {
		t.Fatalf("trace.capture_evicted_sampled = %d, want %d", got, evS)
	}
}

// TestCaptureEvictionCountersStartZero pins that an unfilled ring evicts
// nothing — the counters measure displacement, not retention.
func TestCaptureEvictionCountersStartZero(t *testing.T) {
	c := NewCapture(CaptureConfig{Capacity: 4, SampleRate: 1})
	for i := 0; i < 4; i++ {
		c.Offer(burstTree("shed"))
		c.Offer(burstTree(""))
	}
	if evF, evS := c.Evictions(); evF != 0 || evS != 0 {
		t.Fatalf("full-but-not-overflowing rings report evictions %d/%d", evF, evS)
	}
	var nilCap *Capture
	if evF, evS := nilCap.Evictions(); evF != 0 || evS != 0 {
		t.Fatal("nil capture reports evictions")
	}
}
