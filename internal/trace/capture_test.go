package trace

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func finishedTree(name string, flags ...string) *Tree {
	tr := NewTree(TraceID{})
	sp := tr.Start(name)
	sp.End()
	for _, f := range flags {
		tr.Flag(f)
	}
	return tr
}

// TestTailPolicyFlaggedAlwaysKept pins the acceptance criterion: shed and
// timeout trees survive regardless of sample rate.
func TestTailPolicyFlaggedAlwaysKept(t *testing.T) {
	c := NewCapture(CaptureConfig{Capacity: 8, SampleRate: 0})
	if !c.Offer(finishedTree("shed-req", "shed")) {
		t.Fatal("shed tree dropped")
	}
	if !c.Offer(finishedTree("late-req", "timeout")) {
		t.Fatal("timeout tree dropped")
	}
	if !c.Offer(finishedTree("boom-req", "panic")) {
		t.Fatal("panic tree dropped")
	}
	if c.Offer(finishedTree("routine")) {
		t.Fatal("unflagged tree kept at rate 0")
	}
	recs := c.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("snapshot holds %d trees, want 3", len(recs))
	}
	offered, kept, _, _ := c.Stats()
	if offered != 4 || kept != 3 {
		t.Fatalf("stats offered=%d kept=%d", offered, kept)
	}
}

// TestTailPolicyFlaggedRingNotEvictedBySampled floods the capture with
// routine sampled traffic and requires the flagged ring untouched.
func TestTailPolicyFlaggedRingNotEvictedBySampled(t *testing.T) {
	c := NewCapture(CaptureConfig{Capacity: 4, SampleRate: 1})
	c.Offer(finishedTree("interesting", "shed"))
	for i := 0; i < 100; i++ {
		c.Offer(finishedTree("routine"))
	}
	var shed int
	for _, r := range c.Snapshot() {
		if r.HasFlag("shed") {
			shed++
		}
	}
	if shed != 1 {
		t.Fatalf("shed tree evicted by sampled traffic (found %d)", shed)
	}
}

func TestSampleRateZeroOneAndRing(t *testing.T) {
	c := NewCapture(CaptureConfig{Capacity: 4, SampleRate: 1})
	for i := 0; i < 10; i++ {
		if !c.Offer(finishedTree("r")) {
			t.Fatal("rate-1 capture dropped a tree")
		}
	}
	recs := c.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring retained %d, want capacity 4", len(recs))
	}
	for _, r := range recs {
		if !r.HasFlag(FlagSampled) {
			t.Fatalf("sampled tree missing %q flag: %v", FlagSampled, r.Flags)
		}
	}
}

func TestSampleRateIsApproximatelyHonored(t *testing.T) {
	c := NewCapture(CaptureConfig{Capacity: 4096, SampleRate: 0.25})
	kept := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if c.Offer(finishedTree("r")) {
			kept++
		}
	}
	// 0.25·4000 = 1000 expected; ±20% is ~29σ, so a failure means the
	// sampler is broken, not unlucky.
	if kept < 800 || kept > 1200 {
		t.Fatalf("kept %d of %d at rate 0.25", kept, n)
	}
}

func TestSlowThresholdFlags(t *testing.T) {
	c := NewCapture(CaptureConfig{Capacity: 8, SampleRate: 0, SlowNS: func() int64 {
		return int64(5 * time.Millisecond)
	}})
	slow := NewTree(TraceID{})
	sp := slow.Start("slow-req")
	time.Sleep(8 * time.Millisecond)
	sp.End()
	if !c.Offer(slow) {
		t.Fatal("slow tree dropped")
	}
	fast := finishedTree("fast-req")
	if c.Offer(fast) {
		t.Fatal("fast tree kept at rate 0")
	}
	recs := c.Snapshot()
	if len(recs) != 1 || !recs[0].HasFlag(FlagSlow) {
		t.Fatalf("slow flag missing: %+v", recs)
	}
}

func TestSlowThresholdZeroMeansNoFlag(t *testing.T) {
	c := NewCapture(CaptureConfig{Capacity: 8, SampleRate: 1, SlowNS: func() int64 { return 0 }})
	c.Offer(finishedTree("r"))
	if recs := c.Snapshot(); recs[0].HasFlag(FlagSlow) {
		t.Fatal("zero threshold flagged a tree slow")
	}
}

func TestSinkWriteThrough(t *testing.T) {
	var buf bytes.Buffer
	c := NewCapture(CaptureConfig{Capacity: 2, SampleRate: 1, Sink: &buf})
	c.Offer(finishedTree("a", "shed"))
	c.Offer(finishedTree("b"))
	recs, err := ReadTrees(&buf)
	if err != nil {
		t.Fatalf("sink stream unreadable: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("sink holds %d trees, want 2", len(recs))
	}
	_, _, sunk, errs := c.Stats()
	if sunk != 2 || errs != 0 {
		t.Fatalf("sink stats sunk=%d errs=%d", sunk, errs)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("sink down") }

// TestSinkErrorCountedNotFatal pins that a broken sink degrades to a
// counter, never an error surfaced to the request path.
func TestSinkErrorCountedNotFatal(t *testing.T) {
	c := NewCapture(CaptureConfig{Capacity: 2, SampleRate: 1, Sink: failWriter{}})
	if !c.Offer(finishedTree("a")) {
		t.Fatal("tree dropped because sink failed")
	}
	if _, _, sunk, errs := c.Stats(); sunk != 0 || errs != 1 {
		t.Fatalf("sink stats sunk=%d errs=%d", sunk, errs)
	}
}

func TestNilCaptureInert(t *testing.T) {
	var c *Capture
	if c.Offer(finishedTree("x", "shed")) {
		t.Fatal("nil capture kept a tree")
	}
	if c.Snapshot() != nil {
		t.Fatal("nil capture snapshot non-nil")
	}
	if o, k, s, e := c.Stats(); o+k+s+e != 0 {
		t.Fatal("nil capture stats non-zero")
	}
}
