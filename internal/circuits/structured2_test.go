package circuits

import (
	"math/rand"
	"testing"
)

func TestCarryLookaheadAdderFunction(t *testing.T) {
	const n = 6 // spans two CLA groups
	c, err := CarryLookaheadAdder(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PIs) != 2*n+1 || len(c.POs) != n+1 {
		t.Fatalf("cla io: %d/%d", len(c.PIs), len(c.POs))
	}
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		a := uint64(r.Intn(1 << n))
		b := uint64(r.Intn(1 << n))
		cin := uint64(r.Intn(2))
		bits := a | b<<n | cin<<(2*n)
		out := simOutputs(t, c, patternFromBits(2*n+1, bits))
		sum := a + b + cin
		for i := 0; i <= n; i++ {
			if out[i] != (sum>>i&1 == 1) {
				t.Fatalf("a=%d b=%d cin=%d: bit %d wrong", a, b, cin, i)
			}
		}
	}
}

// TestCLAAgreesWithRipple: both adder implementations must compute the
// same function (cross-implementation property check).
func TestCLAAgreesWithRipple(t *testing.T) {
	const n = 5
	cla, err := CarryLookaheadAdder(n)
	if err != nil {
		t.Fatal(err)
	}
	rip, err := RippleAdder(n)
	if err != nil {
		t.Fatal(err)
	}
	for m := uint64(0); m < 1<<(2*n+1); m += 7 {
		p := patternFromBits(2*n+1, m)
		oc := simOutputs(t, cla, p)
		or := simOutputs(t, rip, p)
		for i := range oc {
			if oc[i] != or[i] {
				t.Fatalf("m=%b: CLA and ripple disagree at output %d", m, i)
			}
		}
	}
}

func TestBarrelShifterFunction(t *testing.T) {
	const k = 3
	c, err := BarrelShifter(k)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << k
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		data := uint64(r.Intn(1 << n))
		s := uint64(r.Intn(n))
		out := simOutputs(t, c, patternFromBits(n+k, data|s<<n))
		want := data << s & (1<<n - 1)
		for i := 0; i < n; i++ {
			if out[i] != (want>>i&1 == 1) {
				t.Fatalf("data=%08b s=%d: y%d wrong (want %08b)", data, s, i, want)
			}
		}
	}
}

func TestComparatorFunction(t *testing.T) {
	const n = 4
	c, err := Comparator(n)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 1<<n; a++ {
		for b := uint64(0); b < 1<<n; b++ {
			out := simOutputs(t, c, patternFromBits(2*n, a|b<<n))
			lt, eq, gt := out[0], out[1], out[2]
			if lt != (a < b) || eq != (a == b) || gt != (a > b) {
				t.Fatalf("a=%d b=%d: lt=%v eq=%v gt=%v", a, b, lt, eq, gt)
			}
		}
	}
}

func TestComparatorWidth1(t *testing.T) {
	c, err := Comparator(1)
	if err != nil {
		t.Fatal(err)
	}
	out := simOutputs(t, c, patternFromBits(2, 0b10)) // a=0, b=1
	if !out[0] || out[1] || out[2] {
		t.Fatalf("0<1 gave %v", out)
	}
}

func TestStructured2ArgValidation(t *testing.T) {
	if _, err := CarryLookaheadAdder(0); err == nil {
		t.Error("CLA(0) accepted")
	}
	if _, err := BarrelShifter(0); err == nil {
		t.Error("BarrelShifter(0) accepted")
	}
	if _, err := Comparator(0); err == nil {
		t.Error("Comparator(0) accepted")
	}
}
