package circuits

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

func TestC17(t *testing.T) {
	c := C17()
	if c.NumLogicGates() != 6 || len(c.PIs) != 5 || len(c.POs) != 2 {
		t.Fatalf("c17 structure: %+v", c.ComputeStats())
	}
	// Fresh copies must be independent objects.
	c2 := C17()
	if c == c2 {
		t.Fatal("C17 returned shared instance")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := GenConfig{Seed: 42, NumPIs: 10, NumGates: 200, NumPOs: 8}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != b.NumGates() || len(a.POs) != len(b.POs) {
		t.Fatal("same seed produced different structure")
	}
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type || len(a.Gates[i].Fanin) != len(b.Gates[i].Fanin) {
			t.Fatalf("gate %d differs", i)
		}
		for j := range a.Gates[i].Fanin {
			if a.Gates[i].Fanin[j] != b.Gates[i].Fanin[j] {
				t.Fatalf("gate %d fanin differs", i)
			}
		}
	}
	c, err := Generate(GenConfig{Seed: 43, NumPIs: 10, NumGates: 200, NumPOs: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Gates {
		if a.Gates[i].Type != c.Gates[i].Type {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical gate types (suspicious)")
	}
}

func TestGenerateNoDanglingLogic(t *testing.T) {
	c, err := Generate(GenConfig{Seed: 7, NumPIs: 12, NumGates: 500, NumPOs: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Every logic gate must reach some PO (no dead logic).
	reach := make([]bool, c.NumGates())
	for _, po := range c.POs {
		for id, in := range c.FaninCone(po) {
			if in {
				reach[id] = true
			}
		}
	}
	for i := range c.Gates {
		if c.Gates[i].Type == netlist.Input {
			continue
		}
		if !reach[i] {
			t.Fatalf("gate %s dangles (unreachable from any PO)", c.Gates[i].Name)
		}
	}
}

func TestGenerateSizes(t *testing.T) {
	for _, ng := range []int{10, 100, 1000} {
		c, err := Generate(GenConfig{Seed: 1, NumPIs: 8, NumGates: ng})
		if err != nil {
			t.Fatal(err)
		}
		if c.NumLogicGates() != ng {
			t.Fatalf("requested %d gates, got %d", ng, c.NumLogicGates())
		}
		if c.MaxLevel() < 3 {
			t.Errorf("%d-gate circuit too shallow: depth %d", ng, c.MaxLevel())
		}
	}
	if _, err := Generate(GenConfig{Seed: 1, NumGates: 0}); err == nil {
		t.Error("zero-gate config accepted")
	}
}

// simOutputs runs one pattern and returns PO values as bools.
func simOutputs(t *testing.T, c *netlist.Circuit, p sim.Pattern) []bool {
	t.Helper()
	vals, err := sim.EvalScalar(c, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, len(c.POs))
	for i, po := range c.POs {
		v := vals[po]
		if !v.IsKnown() {
			t.Fatalf("PO %s is X on determinate input", c.NameOf(po))
		}
		out[i] = v == logic.One
	}
	return out
}

func patternFromBits(width int, bits uint64) sim.Pattern {
	p := make(sim.Pattern, width)
	for i := 0; i < width; i++ {
		p[i] = logic.FromBool(bits>>i&1 == 1)
	}
	return p
}

func TestRippleAdderFunction(t *testing.T) {
	const n = 4
	c, err := RippleAdder(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PIs) != 2*n+1 || len(c.POs) != n+1 {
		t.Fatalf("adder io: %d/%d", len(c.PIs), len(c.POs))
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			for cin := uint64(0); cin < 2; cin++ {
				bits := a | b<<n | cin<<(2*n)
				out := simOutputs(t, c, patternFromBits(2*n+1, bits))
				sum := a + b + cin
				for i := 0; i < n; i++ {
					if out[i] != (sum>>i&1 == 1) {
						t.Fatalf("a=%d b=%d cin=%d: s%d wrong", a, b, cin, i)
					}
				}
				if out[n] != (sum>>n&1 == 1) {
					t.Fatalf("a=%d b=%d cin=%d: cout wrong", a, b, cin)
				}
			}
		}
	}
}

func TestArrayMultiplierFunction(t *testing.T) {
	const n = 3
	c, err := ArrayMultiplier(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.POs) != 2*n {
		t.Fatalf("mul POs = %d", len(c.POs))
	}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			out := simOutputs(t, c, patternFromBits(2*n, a|b<<n))
			p := a * b
			for i := 0; i < 2*n; i++ {
				if out[i] != (p>>i&1 == 1) {
					t.Fatalf("a=%d b=%d: p%d wrong (product %d, outputs %v)", a, b, i, p, out)
				}
			}
		}
	}
}

func TestArrayMultiplierWidth1(t *testing.T) {
	c, err := ArrayMultiplier(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.POs) != 2 {
		t.Fatalf("mul1 POs = %d", len(c.POs))
	}
	out := simOutputs(t, c, patternFromBits(2, 0b11))
	if !out[0] || out[1] {
		t.Fatalf("1*1 gave %v", out)
	}
}

func TestMuxTreeFunction(t *testing.T) {
	const k = 3
	c, err := MuxTree(k)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << k
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		data := r.Uint64() & (1<<n - 1)
		s := uint64(r.Intn(n))
		out := simOutputs(t, c, patternFromBits(n+k, data|s<<n))
		want := data>>s&1 == 1
		if out[0] != want {
			t.Fatalf("mux sel=%d data=%b: got %v", s, data, out[0])
		}
	}
}

func TestParityTreeFunction(t *testing.T) {
	const n = 9 // odd: exercises the stray-net path
	c, err := ParityTree(n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(bits uint64) bool {
		bits &= 1<<n - 1
		out := simOutputs(t, c, patternFromBits(n, bits))
		pop := 0
		for i := 0; i < n; i++ {
			if bits>>i&1 == 1 {
				pop++
			}
		}
		return out[0] == (pop%2 == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecoderFunction(t *testing.T) {
	const k = 3
	c, err := Decoder(k)
	if err != nil {
		t.Fatal(err)
	}
	for m := uint64(0); m < 1<<k; m++ {
		for en := uint64(0); en < 2; en++ {
			out := simOutputs(t, c, patternFromBits(k+1, m|en<<k))
			for i := 0; i < 1<<k; i++ {
				want := en == 1 && uint64(i) == m
				if out[i] != want {
					t.Fatalf("dec m=%d en=%d: y%d = %v", m, en, i, out[i])
				}
			}
		}
	}
}

func TestALUSliceFunction(t *testing.T) {
	const n = 4
	c, err := ALUSlice(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a := uint64(r.Intn(16))
		b := uint64(r.Intn(16))
		op := uint64(r.Intn(4))
		bits := a | b<<n | (op&1)<<(2*n) | (op>>1)<<(2*n+1)
		out := simOutputs(t, c, patternFromBits(2*n+2, bits))
		var want uint64
		switch op {
		case 0:
			want = a & b
		case 1:
			want = a | b
		case 2:
			want = a ^ b
		case 3:
			want = a + b
		}
		for i := 0; i < n; i++ {
			if out[i] != (want>>i&1 == 1) {
				t.Fatalf("alu op=%d a=%d b=%d: r%d wrong", op, a, b, i)
			}
		}
		wantCout := op == 3 && (a+b)>>n&1 == 1
		if out[n] != wantCout {
			t.Fatalf("alu op=%d a=%d b=%d: cout wrong", op, a, b)
		}
	}
}

func TestStructuredArgValidation(t *testing.T) {
	if _, err := RippleAdder(0); err == nil {
		t.Error("RippleAdder(0) accepted")
	}
	if _, err := ArrayMultiplier(0); err == nil {
		t.Error("ArrayMultiplier(0) accepted")
	}
	if _, err := MuxTree(0); err == nil {
		t.Error("MuxTree(0) accepted")
	}
	if _, err := ParityTree(1); err == nil {
		t.Error("ParityTree(1) accepted")
	}
	if _, err := Decoder(0); err == nil {
		t.Error("Decoder(0) accepted")
	}
	if _, err := ALUSlice(0); err == nil {
		t.Error("ALUSlice(0) accepted")
	}
}
