package circuits

import (
	"fmt"

	"multidiag/internal/netlist"
)

// RippleAdder builds an n-bit ripple-carry adder: inputs a[0..n-1],
// b[0..n-1], cin; outputs s[0..n-1], cout. Full adders are built from
// XOR/AND/OR primitives, so the circuit has heavy reconvergent fanout —
// a good diagnosis stress case.
func RippleAdder(n int) (*netlist.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: adder width must be ≥1")
	}
	c := netlist.NewCircuit(fmt.Sprintf("add%d", n))
	a := make([]netlist.NetID, n)
	b := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		a[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("b%d", i))
	}
	carry := c.MustAddGate(netlist.Input, "cin")
	for i := 0; i < n; i++ {
		axb := c.MustAddGate(netlist.Xor, fmt.Sprintf("axb%d", i), a[i], b[i])
		s := c.MustAddGate(netlist.Xor, fmt.Sprintf("s%d", i), axb, carry)
		t1 := c.MustAddGate(netlist.And, fmt.Sprintf("t1_%d", i), a[i], b[i])
		t2 := c.MustAddGate(netlist.And, fmt.Sprintf("t2_%d", i), axb, carry)
		carry = c.MustAddGate(netlist.Or, fmt.Sprintf("c%d", i+1), t1, t2)
		if err := c.MarkPO(s); err != nil {
			return nil, err
		}
	}
	if err := c.MarkPO(carry); err != nil {
		return nil, err
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// ArrayMultiplier builds an n×n-bit unsigned array multiplier with inputs
// a[0..n-1], b[0..n-1] and outputs p[0..2n-1].
func ArrayMultiplier(n int) (*netlist.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: multiplier width must be ≥1")
	}
	c := netlist.NewCircuit(fmt.Sprintf("mul%d", n))
	a := make([]netlist.NetID, n)
	b := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		a[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("b%d", i))
	}
	// Partial products pp[i][j] = a[j] AND b[i].
	pp := make([][]netlist.NetID, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]netlist.NetID, n)
		for j := 0; j < n; j++ {
			pp[i][j] = c.MustAddGate(netlist.And, fmt.Sprintf("pp_%d_%d", i, j), a[j], b[i])
		}
	}
	// Row-by-row carry-save accumulation with full adders.
	fa := func(tag string, x, y, cin netlist.NetID) (s, cout netlist.NetID) {
		xy := c.MustAddGate(netlist.Xor, "fx_"+tag, x, y)
		s = c.MustAddGate(netlist.Xor, "fs_"+tag, xy, cin)
		t1 := c.MustAddGate(netlist.And, "fa_"+tag, x, y)
		t2 := c.MustAddGate(netlist.And, "fb_"+tag, xy, cin)
		cout = c.MustAddGate(netlist.Or, "fc_"+tag, t1, t2)
		return
	}
	ha := func(tag string, x, y netlist.NetID) (s, cout netlist.NetID) {
		s = c.MustAddGate(netlist.Xor, "hs_"+tag, x, y)
		cout = c.MustAddGate(netlist.And, "hc_"+tag, x, y)
		return
	}
	prod := make([]netlist.NetID, 0, 2*n)
	row := append([]netlist.NetID(nil), pp[0]...) // running sum, bit j holds weight j+i after row i
	prod = append(prod, row[0])
	row = row[1:]
	for i := 1; i < n; i++ {
		next := make([]netlist.NetID, 0, n)
		var carry netlist.NetID = netlist.InvalidNet
		for j := 0; j < n; j++ {
			var x netlist.NetID
			hasX := false
			if j < len(row) {
				x, hasX = row[j], true
			}
			y := pp[i][j]
			tag := fmt.Sprintf("%d_%d", i, j)
			var s netlist.NetID
			switch {
			case hasX && carry != netlist.InvalidNet:
				s, carry = fa(tag, x, y, carry)
			case hasX:
				s, carry = ha(tag, x, y)
			case carry != netlist.InvalidNet:
				s, carry = ha(tag, y, carry)
			default:
				s = y
			}
			next = append(next, s)
		}
		if carry != netlist.InvalidNet {
			next = append(next, carry)
		}
		prod = append(prod, next[0])
		row = next[1:]
	}
	prod = append(prod, row...)
	for len(prod) < 2*n {
		// Width-1 multiplier has a single product bit; pad with constant-0
		// via XOR(a0,a0). Only reachable for n==1.
		z := c.MustAddGate(netlist.Xor, fmt.Sprintf("zero%d", len(prod)), a[0], a[0])
		prod = append(prod, z)
	}
	for i, p := range prod {
		_ = i
		if err := c.MarkPO(p); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// MuxTree builds a 2^k-to-1 multiplexer tree: data inputs d0..d(2^k-1),
// select inputs s0..s(k-1), output "y".
func MuxTree(k int) (*netlist.Circuit, error) {
	if k < 1 {
		return nil, fmt.Errorf("circuits: mux select width must be ≥1")
	}
	c := netlist.NewCircuit(fmt.Sprintf("mux%d", 1<<k))
	n := 1 << k
	data := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		data[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("d%d", i))
	}
	sel := make([]netlist.NetID, k)
	for i := 0; i < k; i++ {
		sel[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("s%d", i))
	}
	cur := data
	for lvl := 0; lvl < k; lvl++ {
		sn := c.MustAddGate(netlist.Not, fmt.Sprintf("sn%d", lvl), sel[lvl])
		next := make([]netlist.NetID, len(cur)/2)
		for i := range next {
			lo := c.MustAddGate(netlist.And, fmt.Sprintf("lo_%d_%d", lvl, i), cur[2*i], sn)
			hi := c.MustAddGate(netlist.And, fmt.Sprintf("hi_%d_%d", lvl, i), cur[2*i+1], sel[lvl])
			next[i] = c.MustAddGate(netlist.Or, fmt.Sprintf("m_%d_%d", lvl, i), lo, hi)
		}
		cur = next
	}
	y := c.MustAddGate(netlist.Buf, "y", cur[0])
	if err := c.MarkPO(y); err != nil {
		return nil, err
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParityTree builds an n-input XOR parity tree with output "p".
func ParityTree(n int) (*netlist.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuits: parity needs ≥2 inputs")
	}
	c := netlist.NewCircuit(fmt.Sprintf("par%d", n))
	cur := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		cur[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("i%d", i))
	}
	lvl := 0
	for len(cur) > 1 {
		var next []netlist.NetID
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, c.MustAddGate(netlist.Xor, fmt.Sprintf("x_%d_%d", lvl, i/2), cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
		lvl++
	}
	p := c.MustAddGate(netlist.Buf, "p", cur[0])
	if err := c.MarkPO(p); err != nil {
		return nil, err
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// Decoder builds a k-to-2^k one-hot decoder with enable: inputs a0..a(k-1),
// en; outputs y0..y(2^k-1).
func Decoder(k int) (*netlist.Circuit, error) {
	if k < 1 {
		return nil, fmt.Errorf("circuits: decoder width must be ≥1")
	}
	c := netlist.NewCircuit(fmt.Sprintf("dec%d", k))
	a := make([]netlist.NetID, k)
	an := make([]netlist.NetID, k)
	for i := 0; i < k; i++ {
		a[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("a%d", i))
	}
	en := c.MustAddGate(netlist.Input, "en")
	for i := 0; i < k; i++ {
		an[i] = c.MustAddGate(netlist.Not, fmt.Sprintf("an%d", i), a[i])
	}
	for m := 0; m < 1<<k; m++ {
		fanin := make([]netlist.NetID, 0, k+1)
		for i := 0; i < k; i++ {
			if m>>i&1 == 1 {
				fanin = append(fanin, a[i])
			} else {
				fanin = append(fanin, an[i])
			}
		}
		fanin = append(fanin, en)
		y := c.MustAddGate(netlist.And, fmt.Sprintf("y%d", m), fanin...)
		if err := c.MarkPO(y); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// ALUSlice builds an n-bit ALU supporting four ops selected by (op1,op0):
// 00 AND, 01 OR, 10 XOR, 11 ADD (ripple). Inputs a*, b*, op0, op1; outputs
// r0..r(n-1) and carry "cout" (meaningful for ADD only, 0-selected
// otherwise is fine for test workloads).
func ALUSlice(n int) (*netlist.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: ALU width must be ≥1")
	}
	c := netlist.NewCircuit(fmt.Sprintf("alu%d", n))
	a := make([]netlist.NetID, n)
	b := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		a[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("b%d", i))
	}
	op0 := c.MustAddGate(netlist.Input, "op0")
	op1 := c.MustAddGate(netlist.Input, "op1")
	op0n := c.MustAddGate(netlist.Not, "op0n", op0)
	op1n := c.MustAddGate(netlist.Not, "op1n", op1)
	selAnd := c.MustAddGate(netlist.And, "selAnd", op1n, op0n)
	selOr := c.MustAddGate(netlist.And, "selOr", op1n, op0)
	selXor := c.MustAddGate(netlist.And, "selXor", op1, op0n)
	selAdd := c.MustAddGate(netlist.And, "selAdd", op1, op0)

	// Ripple carry chain for ADD.
	carry := c.MustAddGate(netlist.And, "c0", op0, op0n) // constant 0
	sums := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		axb := c.MustAddGate(netlist.Xor, fmt.Sprintf("axb%d", i), a[i], b[i])
		sums[i] = c.MustAddGate(netlist.Xor, fmt.Sprintf("sum%d", i), axb, carry)
		t1 := c.MustAddGate(netlist.And, fmt.Sprintf("t1_%d", i), a[i], b[i])
		t2 := c.MustAddGate(netlist.And, fmt.Sprintf("t2_%d", i), axb, carry)
		carry = c.MustAddGate(netlist.Or, fmt.Sprintf("c%d", i+1), t1, t2)
	}
	for i := 0; i < n; i++ {
		andi := c.MustAddGate(netlist.And, fmt.Sprintf("andi%d", i), a[i], b[i])
		ori := c.MustAddGate(netlist.Or, fmt.Sprintf("ori%d", i), a[i], b[i])
		xori := c.MustAddGate(netlist.Xor, fmt.Sprintf("xori%d", i), a[i], b[i])
		m0 := c.MustAddGate(netlist.And, fmt.Sprintf("m0_%d", i), andi, selAnd)
		m1 := c.MustAddGate(netlist.And, fmt.Sprintf("m1_%d", i), ori, selOr)
		m2 := c.MustAddGate(netlist.And, fmt.Sprintf("m2_%d", i), xori, selXor)
		m3 := c.MustAddGate(netlist.And, fmt.Sprintf("m3_%d", i), sums[i], selAdd)
		r := c.MustAddGate(netlist.Or, fmt.Sprintf("r%d", i), m0, m1, m2, m3)
		if err := c.MarkPO(r); err != nil {
			return nil, err
		}
	}
	coutG := c.MustAddGate(netlist.And, "cout", carry, selAdd)
	if err := c.MarkPO(coutG); err != nil {
		return nil, err
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}
