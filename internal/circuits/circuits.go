// Package circuits provides the benchmark workloads used by the examples,
// tests and the experiment harness: the classic c17 netlist, a deterministic
// seeded random-circuit generator, and structured arithmetic/control
// circuits (adders, multipliers, mux/parity trees, ALU slices, decoders)
// whose function can be checked against a software model.
//
// Real industrial designs and the ISCAS distribution files are not shipped;
// the generator produces circuits with comparable structural properties
// (gate mix, fanout distribution, reconvergence) at any requested size, so
// experiment scaling sweeps are reproducible from a seed alone (see
// DESIGN.md §5, substitutions).
package circuits

import (
	"fmt"
	"math/rand"
	"strings"

	"multidiag/internal/netlist"
)

// c17Bench is the classic 6-gate ISCAS-85 c17 benchmark (public domain
// textbook circuit, reproduced structurally).
const c17Bench = `
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

// C17 returns a freshly parsed, finalized copy of the c17 benchmark.
func C17() *netlist.Circuit {
	c, err := netlist.ParseBench("c17", strings.NewReader(c17Bench))
	if err != nil {
		panic("circuits: embedded c17 invalid: " + err.Error())
	}
	return c
}

// GenConfig parameterizes the synthetic random circuit generator.
type GenConfig struct {
	Name   string
	Seed   int64
	NumPIs int
	// NumGates is the number of logic gates (excluding Input pseudo-gates).
	NumGates int
	// NumPOs primary outputs; the generator guarantees every PO is reachable
	// from at least one PI and that no logic gate is dangling (every gate is
	// in some PO's fan-in cone or becomes a PO itself).
	NumPOs int
	// MaxFanin bounds gate fan-in (≥2; default 4 when zero).
	MaxFanin int
	// LocalityWindow biases fan-in selection toward recently created nets,
	// which produces deeper, more realistic circuits than uniform selection.
	// It is a fraction (0..1] of the current net count; default 0.25.
	LocalityWindow float64
}

func (cfg *GenConfig) fill() {
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("rand_s%d_g%d", cfg.Seed, cfg.NumGates)
	}
	// Narrow gates keep structural redundancy low (wide random AND/OR trees
	// create large untestable regions, measured in the atpg tests), so the
	// default fan-in bound is 2.
	if cfg.MaxFanin < 2 {
		cfg.MaxFanin = 2
	}
	if cfg.LocalityWindow <= 0 || cfg.LocalityWindow > 1 {
		cfg.LocalityWindow = 0.25
	}
	if cfg.NumPIs <= 0 {
		cfg.NumPIs = 16
	}
	if cfg.NumPOs <= 0 {
		cfg.NumPOs = max(1, cfg.NumGates/20)
	}
}

// Generate builds a deterministic random combinational circuit from cfg.
// The same config always yields the same circuit. The returned circuit is
// finalized.
func Generate(cfg GenConfig) (*netlist.Circuit, error) {
	cfg.fill()
	if cfg.NumGates < 1 {
		return nil, fmt.Errorf("circuits: NumGates must be ≥1")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	c := netlist.NewCircuit(cfg.Name)

	nets := make([]netlist.NetID, 0, cfg.NumPIs+cfg.NumGates)
	for i := 0; i < cfg.NumPIs; i++ {
		nets = append(nets, c.MustAddGate(netlist.Input, fmt.Sprintf("pi%d", i)))
	}

	// Gate-type mix approximating synthesized standard-cell netlists:
	// inverters/buffers common, NAND/NOR dominant, some XOR.
	pick := func() netlist.GateType {
		x := r.Float64()
		switch {
		case x < 0.12:
			return netlist.Not
		case x < 0.16:
			return netlist.Buf
		case x < 0.40:
			return netlist.Nand
		case x < 0.58:
			return netlist.Nor
		case x < 0.72:
			return netlist.And
		case x < 0.86:
			return netlist.Or
		case x < 0.93:
			return netlist.Xor
		default:
			return netlist.Xnor
		}
	}
	// pickNet chooses a fan-in net with locality bias.
	pickNet := func() netlist.NetID {
		n := len(nets)
		win := int(float64(n) * cfg.LocalityWindow)
		if win < cfg.NumPIs {
			win = min(n, cfg.NumPIs)
		}
		if r.Float64() < 0.8 {
			return nets[n-1-r.Intn(win)]
		}
		return nets[r.Intn(n)]
	}

	// Per-net 64-pattern random signatures steer the generator away from
	// structurally redundant logic: a gate whose signature is constant, or
	// equal/complementary to one of its fan-ins, is very likely untestable
	// or a disguised buffer, so its fan-in is resampled. This keeps the
	// stuck-at testability of generated circuits high (validated in the atpg
	// tests) without biasing the gate-type mix.
	sigs := make([]uint64, 0, cfg.NumPIs+cfg.NumGates)
	for i := 0; i < cfg.NumPIs; i++ {
		sigs = append(sigs, r.Uint64())
	}
	sigOf := func(t netlist.GateType, fanin []netlist.NetID) uint64 {
		acc := sigs[fanin[0]]
		for _, f := range fanin[1:] {
			switch t {
			case netlist.And, netlist.Nand:
				acc &= sigs[f]
			case netlist.Or, netlist.Nor:
				acc |= sigs[f]
			case netlist.Xor, netlist.Xnor:
				acc ^= sigs[f]
			}
		}
		if t.Inverting() {
			acc = ^acc
		}
		return acc
	}
	for i := 0; i < cfg.NumGates; i++ {
		var (
			typ   netlist.GateType
			fanin []netlist.NetID
			sig   uint64
		)
		for attempt := 0; ; attempt++ {
			typ = pick()
			nin := 1
			if typ != netlist.Not && typ != netlist.Buf {
				nin = 2 + r.Intn(cfg.MaxFanin-1)
			}
			fanin = fanin[:0]
			seen := map[netlist.NetID]bool{}
			for len(fanin) < nin {
				f := pickNet()
				// Avoid duplicate fan-ins on 2-input gates (a = AND(x,x) is
				// just a buffer and skews the workload).
				if seen[f] && nin <= 2 {
					continue
				}
				seen[f] = true
				fanin = append(fanin, f)
			}
			sig = sigOf(typ, fanin)
			if attempt >= 8 || typ == netlist.Not || typ == netlist.Buf {
				break
			}
			if sig == 0 || sig == ^uint64(0) {
				continue // likely constant → resample
			}
			dup := false
			for _, f := range fanin {
				if sig == sigs[f] || sig == ^sigs[f] {
					dup = true
					break
				}
			}
			if !dup {
				break
			}
		}
		id, err := c.AddGate(typ, fmt.Sprintf("n%d", i), fanin...)
		if err != nil {
			return nil, err
		}
		nets = append(nets, id)
		sigs = append(sigs, sig)
	}

	// Choose POs among sinks first (nets with no reader yet), then random.
	reads := make([]int, len(nets))
	for _, id := range nets {
		for _, f := range c.Gates[id].Fanin {
			reads[f]++
		}
	}
	var sinks []netlist.NetID
	for _, id := range nets {
		if c.Gates[id].Type != netlist.Input && reads[id] == 0 {
			sinks = append(sinks, id)
		}
	}
	// All sinks must be POs (otherwise they are dangling logic).
	for _, s := range sinks {
		if err := c.MarkPO(s); err != nil {
			return nil, err
		}
	}
	for i := len(sinks); i < cfg.NumPOs; i++ {
		id := nets[cfg.NumPIs+r.Intn(cfg.NumGates)]
		if err := c.MarkPO(id); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
