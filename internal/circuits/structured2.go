package circuits

import (
	"fmt"

	"multidiag/internal/netlist"
)

// CarryLookaheadAdder builds an n-bit adder with 4-bit carry-lookahead
// groups (generate/propagate logic), inputs a*, b*, cin; outputs s*, cout.
// Compared to the ripple adder it is shallower with much wider gates and
// heavier reconvergence — a different diagnosis stress profile.
func CarryLookaheadAdder(n int) (*netlist.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: CLA width must be ≥1")
	}
	c := netlist.NewCircuit(fmt.Sprintf("cla%d", n))
	a := make([]netlist.NetID, n)
	b := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		a[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("b%d", i))
	}
	cin := c.MustAddGate(netlist.Input, "cin")

	g := make([]netlist.NetID, n) // generate
	p := make([]netlist.NetID, n) // propagate
	for i := 0; i < n; i++ {
		g[i] = c.MustAddGate(netlist.And, fmt.Sprintf("g%d", i), a[i], b[i])
		p[i] = c.MustAddGate(netlist.Xor, fmt.Sprintf("p%d", i), a[i], b[i])
	}
	// Carries in groups of 4: c[i+1] = g[i] + p[i]·c[i], expanded within
	// the group so the group carries are two-level functions of the group
	// inputs and the group carry-in.
	carry := make([]netlist.NetID, n+1)
	carry[0] = cin
	for base := 0; base < n; base += 4 {
		end := base + 4
		if end > n {
			end = n
		}
		cinG := carry[base]
		for i := base; i < end; i++ {
			// c[i+1] = g[i] + p[i]g[i-1] + ... + p[i]..p[base]·cinG
			terms := make([]netlist.NetID, 0, i-base+2)
			terms = append(terms, g[i])
			for j := i - 1; j >= base; j-- {
				fanin := []netlist.NetID{g[j]}
				for k := j + 1; k <= i; k++ {
					fanin = append(fanin, p[k])
				}
				terms = append(terms, c.MustAddGate(netlist.And,
					fmt.Sprintf("t_%d_%d", i, j), fanin...))
			}
			fanin := []netlist.NetID{cinG}
			for k := base; k <= i; k++ {
				fanin = append(fanin, p[k])
			}
			terms = append(terms, c.MustAddGate(netlist.And,
				fmt.Sprintf("t_%d_cin", i), fanin...))
			if len(terms) == 1 {
				carry[i+1] = c.MustAddGate(netlist.Buf, fmt.Sprintf("c%d", i+1), terms[0])
			} else {
				carry[i+1] = c.MustAddGate(netlist.Or, fmt.Sprintf("c%d", i+1), terms...)
			}
		}
	}
	for i := 0; i < n; i++ {
		s := c.MustAddGate(netlist.Xor, fmt.Sprintf("s%d", i), p[i], carry[i])
		if err := c.MarkPO(s); err != nil {
			return nil, err
		}
	}
	if err := c.MarkPO(carry[n]); err != nil {
		return nil, err
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// BarrelShifter builds a 2^k-bit logical left barrel shifter: data inputs
// d0..d(2^k-1), shift amount s0..s(k-1), outputs y0..y(2^k-1). Built from
// k mux stages; zeros shift in from the right.
func BarrelShifter(k int) (*netlist.Circuit, error) {
	if k < 1 {
		return nil, fmt.Errorf("circuits: shifter needs k ≥ 1")
	}
	c := netlist.NewCircuit(fmt.Sprintf("bshift%d", 1<<k))
	n := 1 << k
	data := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		data[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("d%d", i))
	}
	sel := make([]netlist.NetID, k)
	for i := 0; i < k; i++ {
		sel[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("s%d", i))
	}
	// Constant zero from d0.
	nd0 := c.MustAddGate(netlist.Not, "nd0", data[0])
	zero := c.MustAddGate(netlist.And, "zero", data[0], nd0)
	cur := data
	for stage := 0; stage < k; stage++ {
		shift := 1 << stage
		sn := c.MustAddGate(netlist.Not, fmt.Sprintf("sn%d", stage), sel[stage])
		next := make([]netlist.NetID, n)
		for i := 0; i < n; i++ {
			src := zero
			if i-shift >= 0 {
				src = cur[i-shift]
			}
			hold := c.MustAddGate(netlist.And, fmt.Sprintf("h_%d_%d", stage, i), cur[i], sn)
			take := c.MustAddGate(netlist.And, fmt.Sprintf("k_%d_%d", stage, i), src, sel[stage])
			next[i] = c.MustAddGate(netlist.Or, fmt.Sprintf("m_%d_%d", stage, i), hold, take)
		}
		cur = next
	}
	for i := 0; i < n; i++ {
		y := c.MustAddGate(netlist.Buf, fmt.Sprintf("y%d", i), cur[i])
		if err := c.MarkPO(y); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// Comparator builds an n-bit magnitude comparator: inputs a*, b*; outputs
// "lt", "eq", "gt".
func Comparator(n int) (*netlist.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuits: comparator width must be ≥1")
	}
	c := netlist.NewCircuit(fmt.Sprintf("cmp%d", n))
	a := make([]netlist.NetID, n)
	b := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		a[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.MustAddGate(netlist.Input, fmt.Sprintf("b%d", i))
	}
	eqBits := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		eqBits[i] = c.MustAddGate(netlist.Xnor, fmt.Sprintf("e%d", i), a[i], b[i])
	}
	// gt = OR over i of (a_i AND NOT b_i AND all higher bits equal).
	var gtTerms, ltTerms []netlist.NetID
	for i := n - 1; i >= 0; i-- {
		nb := c.MustAddGate(netlist.Not, fmt.Sprintf("nb%d", i), b[i])
		na := c.MustAddGate(netlist.Not, fmt.Sprintf("na%d", i), a[i])
		gtFan := []netlist.NetID{a[i], nb}
		ltFan := []netlist.NetID{na, b[i]}
		for j := i + 1; j < n; j++ {
			gtFan = append(gtFan, eqBits[j])
			ltFan = append(ltFan, eqBits[j])
		}
		gtTerms = append(gtTerms, c.MustAddGate(netlist.And, fmt.Sprintf("gt%d", i), gtFan...))
		ltTerms = append(ltTerms, c.MustAddGate(netlist.And, fmt.Sprintf("lt%d", i), ltFan...))
	}
	or := func(name string, ts []netlist.NetID) netlist.NetID {
		if len(ts) == 1 {
			return c.MustAddGate(netlist.Buf, name, ts[0])
		}
		return c.MustAddGate(netlist.Or, name, ts...)
	}
	gt := or("gt", gtTerms)
	lt := or("lt", ltTerms)
	var eq netlist.NetID
	if n == 1 {
		eq = c.MustAddGate(netlist.Buf, "eq", eqBits[0])
	} else {
		eq = c.MustAddGate(netlist.And, "eq", eqBits...)
	}
	for _, po := range []netlist.NetID{lt, eq, gt} {
		if err := c.MarkPO(po); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}
