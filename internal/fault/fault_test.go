package fault

import (
	"strings"
	"testing"

	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func c17(t testing.TB) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBench("c17", strings.NewReader(c17Bench))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestListComplete(t *testing.T) {
	c := c17(t)
	fl := List(c)
	if len(fl) != 2*c.NumGates() {
		t.Fatalf("universe size %d, want %d", len(fl), 2*c.NumGates())
	}
	seen := map[StuckAt]bool{}
	for _, f := range fl {
		if seen[f] {
			t.Fatalf("duplicate fault %v", f)
		}
		seen[f] = true
	}
}

func TestStringers(t *testing.T) {
	c := c17(t)
	f := StuckAt{Net: c.NetByName("G11"), Value1: false}
	if f.Name(c) != "G11 sa0" {
		t.Errorf("Name = %q", f.Name(c))
	}
	if !strings.Contains(f.String(), "sa0") {
		t.Errorf("String = %q", f.String())
	}
	b := Bridge{Victim: c.NetByName("G10"), Aggressor: c.NetByName("G11"), Kind: DominantBridge}
	if b.Name(c) != "G10<-G11 dom" {
		t.Errorf("bridge Name = %q", b.Name(c))
	}
	o := Open{Net: c.NetByName("G10"), StuckValue1: true}
	if !strings.Contains(o.String(), "=1") {
		t.Errorf("open String = %q", o.String())
	}
	for _, k := range []BridgeKind{DominantBridge, WiredAND, WiredOR} {
		if k.String() == "" {
			t.Error("empty bridge kind name")
		}
	}
}

// faultDetected reports whether stuck-at f is detected by pattern p
// (simulation with net forced vs fault-free differs at some PO).
func faultDetected(t *testing.T, c *netlist.Circuit, f StuckAt, p sim.Pattern) bool {
	t.Helper()
	good, err := sim.EvalScalar(c, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	fv := logic.Zero
	if f.Value1 {
		fv = logic.One
	}
	bad, err := sim.EvalScalar(c, p, map[netlist.NetID]logic.Value{f.Net: fv})
	if err != nil {
		t.Fatal(err)
	}
	for _, po := range c.POs {
		if good[po] != bad[po] {
			return true
		}
	}
	return false
}

// TestCollapsePreservesDetectability: every collapsed-away fault must be
// detected by exactly the same patterns as its class representative. We
// verify the weaker but sufficient property that for every input pattern,
// a fault is detected iff some representative in the collapsed list is
// detected (same overall detection).
func TestCollapsePreservesDetectability(t *testing.T) {
	c := c17(t)
	full := List(c)
	col := Collapse(c)
	if len(col) >= len(full) {
		t.Fatalf("collapsing did not reduce: %d -> %d", len(full), len(col))
	}
	// For c17 (all NAND, fanout stems G11 G16 G3) the collapsed set should
	// still cover detection: for each pattern, the set of detected collapsed
	// faults is non-empty iff the set of detected full faults is non-empty,
	// and every full fault detected by p implies some collapsed fault
	// detected by p.
	for m := 0; m < 32; m++ {
		p := make(sim.Pattern, 5)
		for i := 0; i < 5; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		colDet := map[StuckAt]bool{}
		for _, f := range col {
			if faultDetected(t, c, f, p) {
				colDet[f] = true
			}
		}
		for _, f := range full {
			if faultDetected(t, c, f, p) && len(colDet) == 0 {
				t.Fatalf("pattern %05b detects %v but no collapsed fault", m, f)
			}
		}
	}
}

// TestCollapseEquivalences checks specific textbook equivalences on a tiny
// AND/NOT chain.
func TestCollapseEquivalences(t *testing.T) {
	c := netlist.NewCircuit("tiny")
	a := c.MustAddGate(netlist.Input, "a")
	b := c.MustAddGate(netlist.Input, "b")
	g := c.MustAddGate(netlist.And, "g", a, b)
	z := c.MustAddGate(netlist.Not, "z", g)
	if err := c.MarkPO(z); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	col := Collapse(c)
	has := func(f StuckAt) bool {
		for _, x := range col {
			if x == f {
				return true
			}
		}
		return false
	}
	// a-sa0 ≡ b-sa0 ≡ g-sa0 ≡ z-sa1: exactly one representative survives.
	reps := 0
	for _, f := range []StuckAt{{a, false}, {b, false}, {g, false}, {z, true}} {
		if has(f) {
			reps++
		}
	}
	if reps != 1 {
		t.Errorf("AND-sa0 class has %d representatives, want 1 (%v)", reps, col)
	}
	// a-sa1 and b-sa1 are NOT equivalent to each other.
	if !has(StuckAt{a, true}) || !has(StuckAt{b, true}) {
		t.Errorf("input sa1 faults must both survive: %v", col)
	}
	// 4 gates * 2 = 8 total; classes: {a0,b0,g0,z1}=1, a1, b1, {g1,z0}=1 → 4.
	if len(col) != 4 {
		t.Errorf("collapsed size %d, want 4: %v", len(col), col)
	}
}

func TestCollapseStemNotCollapsed(t *testing.T) {
	// A stem feeding two gates must keep its own faults.
	c := netlist.NewCircuit("stem")
	a := c.MustAddGate(netlist.Input, "a")
	b := c.MustAddGate(netlist.Input, "b")
	s := c.MustAddGate(netlist.And, "s", a, b) // stem
	x := c.MustAddGate(netlist.Not, "x", s)
	y := c.MustAddGate(netlist.And, "y", s, a)
	_ = c.MarkPO(x)
	_ = c.MarkPO(y)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	col := Collapse(c)
	foundS0 := false
	for _, f := range col {
		if f.Net == s && !f.Value1 {
			foundS0 = true
		}
	}
	if !foundS0 {
		t.Errorf("stem fault s-sa0 collapsed away: %v", col)
	}
}

func TestEnumerateBridges(t *testing.T) {
	c := c17(t)
	brs := EnumerateBridges(c, 1, 0)
	if len(brs) == 0 {
		t.Fatal("no bridges enumerated")
	}
	seen := map[[2]netlist.NetID]bool{}
	for _, b := range brs {
		if b.Victim == b.Aggressor {
			t.Fatalf("self bridge %v", b)
		}
		// No structural dependence either way.
		if c.FaninCone(b.Victim)[b.Aggressor] || c.FanoutCone(b.Victim)[b.Aggressor] {
			t.Fatalf("bridge %v couples structurally dependent nets", b.Name(c))
		}
		key := [2]netlist.NetID{b.Victim, b.Aggressor}
		if seen[key] {
			t.Fatalf("duplicate pair %v", b)
		}
		seen[key] = true
		// Level window respected.
		dl := c.Gates[b.Victim].Level - c.Gates[b.Aggressor].Level
		if dl < -1 || dl > 1 {
			t.Fatalf("bridge %v outside level window", b)
		}
	}
	// maxPairs bound respected.
	brs2 := EnumerateBridges(c, 1, 3)
	if len(brs2) != 3 {
		t.Fatalf("maxPairs ignored: %d", len(brs2))
	}
	// Deterministic.
	brs3 := EnumerateBridges(c, 1, 0)
	if len(brs3) != len(brs) {
		t.Fatal("enumeration not deterministic")
	}
	for i := range brs {
		if brs[i] != brs3[i] {
			t.Fatal("enumeration order not deterministic")
		}
	}
}

// TestCollapseDominanceDetectionPreserving: a pattern set detecting every
// dominance-collapsed fault must detect every equivalence-collapsed fault.
func TestCollapseDominanceDetectionPreserving(t *testing.T) {
	for _, mk := range []func(t testing.TB) *netlist.Circuit{
		c17,
		func(t testing.TB) *netlist.Circuit {
			c := netlist.NewCircuit("mix")
			a := c.MustAddGate(netlist.Input, "a")
			b := c.MustAddGate(netlist.Input, "b")
			d := c.MustAddGate(netlist.Input, "d")
			g1 := c.MustAddGate(netlist.And, "g1", a, b)
			g2 := c.MustAddGate(netlist.Nor, "g2", g1, d)
			g3 := c.MustAddGate(netlist.Or, "g3", g1, d)
			z := c.MustAddGate(netlist.Nand, "z", g2, g3)
			_ = c.MarkPO(z)
			if err := c.Finalize(); err != nil {
				t.Fatal(err)
			}
			return c
		},
	} {
		c := mk(t)
		dom := CollapseDominance(c)
		eq := Collapse(c)
		if len(dom) >= len(eq) {
			t.Fatalf("%s: dominance did not reduce (%d vs %d)", c.Name, len(dom), len(eq))
		}
		// Exhaustive patterns; find the minimal info: which eq faults are
		// detected by the set of patterns that detect dom faults.
		npi := len(c.PIs)
		var pats []sim.Pattern
		for m := 0; m < 1<<npi; m++ {
			p := make(sim.Pattern, npi)
			for i := 0; i < npi; i++ {
				p[i] = logic.FromBool(m>>i&1 == 1)
			}
			pats = append(pats, p)
		}
		// Keep only patterns that detect ≥1 dom fault (a "dominance test
		// set"); then every eq fault must be detected by those patterns.
		var kept []sim.Pattern
		for _, p := range pats {
			detects := false
			for _, f := range dom {
				if faultDetected(t, c, f, p) {
					detects = true
					break
				}
			}
			if detects {
				kept = append(kept, p)
			}
		}
		for _, f := range eq {
			detected := false
			for _, p := range kept {
				if faultDetected(t, c, f, p) {
					detected = true
					break
				}
			}
			// Untestable eq faults are exempt (no pattern at all detects).
			if !detected {
				any := false
				for _, p := range pats {
					if faultDetected(t, c, f, p) {
						any = true
						break
					}
				}
				if any {
					t.Errorf("%s: %s testable but missed by the dominance test set", c.Name, f.Name(c))
				}
			}
		}
	}
}
