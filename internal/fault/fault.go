// Package fault defines the fault models used for simulation, ATPG and
// diagnosis: single stuck-at faults, dominant/wired bridging faults between
// net pairs, and net opens. It also provides stuck-at fault-universe
// generation with structural equivalence collapsing and a proximity-proxy
// bridge enumerator (see DESIGN.md §5 for the layout substitution).
package fault

import (
	"fmt"
	"sort"

	"multidiag/internal/netlist"
)

// StuckAt is a single stuck-at fault: net Net permanently holds value
// Value1 (true → stuck-at-1, false → stuck-at-0).
type StuckAt struct {
	Net    netlist.NetID
	Value1 bool
}

// String renders e.g. "G11/sa0".
func (f StuckAt) String() string {
	v := "sa0"
	if f.Value1 {
		v = "sa1"
	}
	return fmt.Sprintf("net%d/%s", f.Net, v)
}

// Name renders the fault with the circuit's net name, e.g. "G11 sa0".
func (f StuckAt) Name(c *netlist.Circuit) string {
	v := "sa0"
	if f.Value1 {
		v = "sa1"
	}
	return c.NameOf(f.Net) + " " + v
}

// BridgeKind selects the electrical behaviour of a two-net bridge.
type BridgeKind uint8

const (
	// DominantBridge: the aggressor's value overwrites the victim's.
	DominantBridge BridgeKind = iota
	// WiredAND: both nets see the AND of their driven values.
	WiredAND
	// WiredOR: both nets see the OR of their driven values.
	WiredOR
)

// String names the bridge kind.
func (k BridgeKind) String() string {
	switch k {
	case DominantBridge:
		return "dom"
	case WiredAND:
		return "wand"
	case WiredOR:
		return "wor"
	}
	return fmt.Sprintf("BridgeKind(%d)", uint8(k))
}

// Bridge is a two-net bridging fault. For DominantBridge, Aggressor drives
// Victim; for wired kinds the roles are symmetric but both fields are kept
// for reporting.
type Bridge struct {
	Victim    netlist.NetID
	Aggressor netlist.NetID
	Kind      BridgeKind
}

// String renders e.g. "net5<-net9/dom".
func (b Bridge) String() string {
	return fmt.Sprintf("net%d<-net%d/%s", b.Victim, b.Aggressor, b.Kind)
}

// Name renders with circuit net names.
func (b Bridge) Name(c *netlist.Circuit) string {
	return fmt.Sprintf("%s<-%s %s", c.NameOf(b.Victim), c.NameOf(b.Aggressor), b.Kind)
}

// Open is a net open. A full-open on a CMOS net most often behaves as a
// stuck value determined by the floating node's charge/leakage; we model it
// as the net stuck at StuckValue1. The distinct type (vs. StuckAt) matters
// to the injector and to diagnosis reporting, which distinguishes the defect
// mechanisms.
type Open struct {
	Net         netlist.NetID
	StuckValue1 bool
}

// String renders e.g. "open net7=1".
func (o Open) String() string {
	v := "0"
	if o.StuckValue1 {
		v = "1"
	}
	return fmt.Sprintf("open net%d=%s", o.Net, v)
}

// List generates the complete uncollapsed single-stuck-at universe: two
// faults per net.
func List(c *netlist.Circuit) []StuckAt {
	out := make([]StuckAt, 0, 2*c.NumGates())
	for i := range c.Gates {
		out = append(out,
			StuckAt{Net: netlist.NetID(i), Value1: false},
			StuckAt{Net: netlist.NetID(i), Value1: true},
		)
	}
	return out
}

// Collapse performs structural equivalence collapsing on the stuck-at
// universe and returns one representative per equivalence class.
//
// Rules used (classic dominance-free equivalence):
//   - For a gate with controlling value c and inversion i, an input
//     stuck-at-c is equivalent to the output stuck-at-(c XOR i).
//     (AND: in-sa0 ≡ out-sa0; NAND: in-sa0 ≡ out-sa1; OR: in-sa1 ≡ out-sa1;
//     NOR: in-sa1 ≡ out-sa0.)
//   - NOT/BUF: input faults are equivalent to the corresponding output
//     faults.
//
// Only fanout-free input nets participate (faults on a stem feeding several
// gates are not equivalent to any single gate-output fault).
//
// Because this netlist IR identifies each gate input with its driving net,
// "input stuck-at" means the driving net's fault, which is exactly the
// fanout-free case where the identification is sound.
func Collapse(c *netlist.Circuit) []StuckAt {
	type fkey struct {
		net netlist.NetID
		v1  bool
	}
	parent := make(map[fkey]fkey)
	var find func(k fkey) fkey
	find = func(k fkey) fkey {
		if p, ok := parent[k]; ok && p != k {
			r := find(p)
			parent[k] = r
			return r
		}
		return k
	}
	union := func(a, b fkey) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Type == netlist.Input {
			continue
		}
		switch g.Type {
		case netlist.Buf, netlist.Not:
			in := g.Fanin[0]
			if c.IsFanoutStem(in) {
				continue
			}
			inv := g.Type == netlist.Not
			union(fkey{in, false}, fkey{g.ID, inv})
			union(fkey{in, true}, fkey{g.ID, !inv})
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			cv, _ := g.Type.ControllingValue()
			outV := cv != !g.Type.Inverting() // c XOR i, as bool equality dance
			// For AND (i=false): out fault value = cv (0). For NAND: !cv (1).
			if g.Type.Inverting() {
				outV = !cv
			} else {
				outV = cv
			}
			for _, in := range g.Fanin {
				if c.IsFanoutStem(in) {
					continue
				}
				union(fkey{in, cv}, fkey{g.ID, outV})
			}
		}
	}
	// Pick one representative per class, preferring the fault closest to the
	// outputs (largest NetID — gates are created after their fanins).
	best := make(map[fkey]fkey)
	for _, f := range List(c) {
		k := fkey{f.Net, f.Value1}
		r := find(k)
		if cur, ok := best[r]; !ok || k.net > cur.net {
			best[r] = k
		}
	}
	out := make([]StuckAt, 0, len(best))
	for _, k := range best {
		out = append(out, StuckAt{Net: k.net, Value1: k.v1})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Net != out[b].Net {
			return out[a].Net < out[b].Net
		}
		return !out[a].Value1 && out[b].Value1
	})
	return out
}

// CollapseDominance reduces the ATPG target list further using gate-level
// fault dominance on top of equivalence collapsing: for an AND/NAND/OR/NOR
// gate with at least one fanout-free input, the output fault at the
// non-controlled value (AND: output sa1, NAND: sa0, OR: sa0, NOR: sa1) is
// dominated by that input's non-controlling-value fault — every test for
// the input fault sets the other inputs non-controlling and propagates the
// gate output, detecting the output fault too — so the output fault can be
// dropped from the *detection* target list.
//
// Dominance is detection-preserving but NOT diagnosis-preserving (dominated
// faults have strictly larger test sets), so only ATPG consumes this list;
// the diagnosis engines keep the equivalence-collapsed universe.
func CollapseDominance(c *netlist.Circuit) []StuckAt {
	eq := Collapse(c)
	drop := make(map[StuckAt]bool)
	for i := range c.Gates {
		g := &c.Gates[i]
		cv, ok := g.Type.ControllingValue()
		if !ok {
			continue
		}
		hasFFInput := false
		for _, in := range g.Fanin {
			if !c.IsFanoutStem(in) {
				hasFFInput = true
				break
			}
		}
		if !hasFFInput {
			continue
		}
		// Output value when all inputs are non-controlling: !cv XOR invert.
		outV := !cv
		if g.Type.Inverting() {
			outV = cv
		}
		drop[StuckAt{Net: g.ID, Value1: outV}] = true
	}
	out := make([]StuckAt, 0, len(eq))
	for _, f := range eq {
		if !drop[f] {
			out = append(out, f)
		}
	}
	return out
}

// EnumerateBridges lists candidate bridge pairs using a structural
// proximity proxy for layout adjacency: two nets are bridgeable when their
// topological levels differ by at most levelWindow and neither is in the
// other's fan-in cone (a bridge onto one's own cone would create a feedback
// loop, which this combinational model excludes). The enumeration is
// deterministic; callers typically sample from it with a seeded RNG.
//
// maxPairs bounds the result (0 = unbounded).
func EnumerateBridges(c *netlist.Circuit, levelWindow, maxPairs int) []Bridge {
	var out []Bridge
	n := c.NumGates()
	// Group nets by level for windowed pairing.
	byLevel := make([][]netlist.NetID, c.MaxLevel()+1)
	for i := range c.Gates {
		l := c.Gates[i].Level
		byLevel[l] = append(byLevel[l], netlist.NetID(i))
	}
	_ = n
	for l := 0; l <= c.MaxLevel(); l++ {
		for dl := 0; dl <= levelWindow && l+dl <= c.MaxLevel(); dl++ {
			as := byLevel[l]
			bs := byLevel[l+dl]
			for ai, a := range as {
				coneA := c.FaninCone(a)
				coneOutA := c.FanoutCone(a)
				start := 0
				if dl == 0 {
					start = ai + 1
				}
				for _, b := range bs[start:] {
					// Exclude structurally related pairs: a in cone(b) or b in
					// cone(a) would make the bridged value cyclic.
					if coneA[b] || coneOutA[b] {
						continue
					}
					out = append(out, Bridge{Victim: a, Aggressor: b, Kind: DominantBridge})
					if maxPairs > 0 && len(out) >= maxPairs {
						return out
					}
				}
			}
		}
	}
	return out
}
