// Package explain is the diagnosis flight recorder: one structured event
// per candidate per stage of core.Diagnose, answering the question the
// phase timings of internal/obs cannot — *why* a candidate survived (or
// died in) extraction, scoring, covering, model refinement and the
// X-consistency check, and which candidate explains which observed
// failing bit.
//
// Like internal/obs, everything is stdlib-only and nil-tolerant: a nil
// *Recorder or *Emitter accepts every call as a cheap no-op, so the
// instrumented engine needs no "is explaining on?" branches and the
// disabled fast path costs a pointer test (budgeted alongside tracing in
// internal/core's benchmarks).
//
// Events are retained in a bounded in-memory buffer (for the mddiag
// explain renderer) and, when an Emitter is attached, streamed as JSON
// Lines beside the obs run events (the -explain-out flag; schema in
// DESIGN.md §8).
package explain

import (
	"sync"
	"sync/atomic"
)

// maxEvents bounds the retained per-candidate detail so campaign-scale
// recording cannot grow without bound. Streaming to the emitter continues
// past the cap; only the in-memory copy stops growing.
const maxEvents = 1 << 17

// Stages of the candidate lifecycle, in pipeline order.
const (
	StageEvidence = "evidence" // run-level: the evidence-bit universe
	StageExtract  = "extract"  // effect-cause extraction source
	StageScore    = "score"    // coverage vector + misprediction count
	StageCover    = "cover"    // greedy-cover verdict
	StageRefine   = "refine"   // fault-model refinement outcome
	StageXCheck   = "xcheck"   // X-masking consistency verdict
)

// Cover / score / xcheck verdicts.
const (
	VerdictScored       = "scored"       // survived scoring with TFSF > 0
	VerdictMerged       = "merged"       // identical syndrome; folded into EquivTo
	VerdictPruned       = "pruned"       // dropped (reason in Reason / DominatedBy)
	VerdictKept         = "kept"         // selected into the multiplet
	VerdictConsistent   = "consistent"   // X-check accepted the multiplet
	VerdictInconsistent = "inconsistent" // X-check rejected the multiplet
	VerdictSkipped      = "skipped"      // stage disabled by configuration
)

// Bit is one observed failing (pattern, PO) pair, the unit of evidence.
type Bit struct {
	Pattern int `json:"p"`
	PO      int `json:"po"`
}

// ModelFit is one fault-model assignment with its fit statistics from
// refinement (covered evidence bits, mispredictions).
type ModelFit struct {
	Kind      string `json:"kind"`                // "stuck/open" or "bridge"
	Aggressor string `json:"aggressor,omitempty"` // bridge aggressor net name
	Covered   int    `json:"covered"`
	Mispred   int    `json:"mispred"`
}

// Event is one JSONL flight-recorder record. Kind is "cand" for candidate
// lifecycle events and "evidence" for the run-level evidence universe;
// Stage selects which optional fields are populated (schema: DESIGN.md §8).
type Event struct {
	Kind  string `json:"kind"`
	Run   string `json:"run,omitempty"`
	Seq   int64  `json:"seq"`
	Stage string `json:"stage"`
	// Cand is the canonical candidate id ("net7/sa0"); Name the circuit's
	// human name ("G16 sa0"). Empty on evidence events.
	Cand string `json:"cand,omitempty"`
	Name string `json:"name,omitempty"`

	// evidence: the full evidence-bit universe, index order = bit index.
	// extract: the failing bits whose back-cone yielded the candidate.
	Bits []Bit `json:"bits,omitempty"`

	// score: coverage vector (evidence-bit indices the candidate predicts),
	// TFSF/TPSF, and the equivalence class.
	Covered []int    `json:"covered,omitempty"`
	TFSF    int      `json:"tfsf,omitempty"`
	TPSF    int      `json:"tpsf,omitempty"`
	Equiv   []string `json:"equiv,omitempty"`    // merged-in equivalent sites
	EquivTo string   `json:"equiv_to,omitempty"` // set on merged seeds

	// cover / score / refine / xcheck verdict.
	Verdict string `json:"verdict,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// cover (kept): 1-based selection order, greedy gain, newly covered bits.
	Order   int     `json:"order,omitempty"`
	Gain    float64 `json:"gain,omitempty"`
	NewBits int     `json:"new_bits,omitempty"`
	// cover (pruned): the selected competitor overlapping most of this
	// candidate's coverage, and the size of that overlap.
	DominatedBy string `json:"dominated_by,omitempty"`
	Overlap     int    `json:"overlap,omitempty"`

	// refine: the candidate's fault models after refinement, best first.
	Models []ModelFit `json:"models,omitempty"`

	// xcheck: failing patterns the multiplet could not reconcile.
	BadPatterns []int `json:"bad_patterns,omitempty"`
}

// Recorder collects the lifecycle events of one diagnosis (or one campaign
// of diagnoses — the experiment runner shares one recorder across its
// worker pool). All methods are safe for concurrent use and tolerate a nil
// receiver.
type Recorder struct {
	run string

	mu      sync.Mutex
	events  []Event
	dropped int64
	seq     int64

	em atomic.Pointer[Emitter]
}

// New creates an enabled recorder labelled run.
func New(run string) *Recorder {
	return &Recorder{run: run}
}

// SetEmitter streams every recorded event to e as JSONL. Pass nil to
// detach.
func (r *Recorder) SetEmitter(e *Emitter) {
	if r == nil {
		return
	}
	r.em.Store(e)
}

// Emitter returns the attached emitter (nil when detached or on a nil
// recorder).
func (r *Recorder) Emitter() *Emitter {
	if r == nil {
		return nil
	}
	return r.em.Load()
}

// Enabled reports whether recording is active — the guard instrumented
// code uses before assembling event payloads.
func (r *Recorder) Enabled() bool { return r != nil }

// Record stamps the event with the recorder's run label and sequence
// number, retains it (up to maxEvents) and streams it to the emitter.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	ev.Run = r.run
	r.mu.Lock()
	ev.Seq = r.seq
	r.seq++
	if len(r.events) < maxEvents {
		r.events = append(r.events, ev)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
	r.em.Load().Emit(ev)
}

// Events returns a copy of the retained events in record order, plus the
// number of events dropped past the retention cap.
func (r *Recorder) Events() ([]Event, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...), r.dropped
}

// Evidence records the run-level evidence universe: bit index i of every
// later coverage vector refers to bits[i].
func (r *Recorder) Evidence(bits []Bit) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: "evidence", Stage: StageEvidence, Bits: bits})
}

// Extract records a candidate's effect-cause origin: the failing bits
// whose critical-path back-cone yielded the site. A PO of -1 marks
// pattern-level attribution (the approximate-CPT path traces per pattern,
// not per output).
func (r *Recorder) Extract(cand, name string, sources []Bit) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: "cand", Stage: StageExtract, Cand: cand, Name: name, Bits: sources})
}

// Score records a candidate's scoring outcome: its per-evidence-bit
// coverage vector, TFSF/TPSF, and equivalence class. verdict is
// VerdictScored or VerdictPruned (reason explains a prune).
func (r *Recorder) Score(cand, name string, covered []int, tfsf, tpsf int, equiv []string, verdict, reason string) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: "cand", Stage: StageScore, Cand: cand, Name: name,
		Covered: covered, TFSF: tfsf, TPSF: tpsf, Equiv: equiv, Verdict: verdict, Reason: reason})
}

// Merged records a seed whose syndrome was identical to an earlier
// candidate's: it was folded into into's equivalence class, ending its
// independent lifecycle.
func (r *Recorder) Merged(cand, name, into string) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: "cand", Stage: StageScore, Cand: cand, Name: name,
		Verdict: VerdictMerged, EquivTo: into})
}

// Kept records a greedy-cover selection: the candidate entered the
// multiplet in position order (1-based) with the given gain, newly
// covering newBits evidence bits.
func (r *Recorder) Kept(cand, name string, order int, gain float64, newBits int) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: "cand", Stage: StageCover, Cand: cand, Name: name,
		Verdict: VerdictKept, Order: order, Gain: gain, NewBits: newBits})
}

// CoverPruned records a candidate the greedy cover never selected,
// naming the multiplet member overlapping most of its coverage (the
// dominating competitor) and the overlap size.
func (r *Recorder) CoverPruned(cand, name, dominatedBy string, overlap int, reason string) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: "cand", Stage: StageCover, Cand: cand, Name: name,
		Verdict: VerdictPruned, DominatedBy: dominatedBy, Overlap: overlap, Reason: reason})
}

// Refine records a multiplet member's fault models after refinement
// (best first). verdict is VerdictScored when refinement ran and
// VerdictSkipped when bridge search was disabled.
func (r *Recorder) Refine(cand, name string, models []ModelFit, verdict string) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: "cand", Stage: StageRefine, Cand: cand, Name: name,
		Models: models, Verdict: verdict})
}

// XCheck records the X-masking consistency verdict for one multiplet
// member (the check is joint, so every member shares the verdict and the
// irreconcilable pattern list).
func (r *Recorder) XCheck(cand, name, verdict string, badPatterns []int) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: "cand", Stage: StageXCheck, Cand: cand, Name: name,
		Verdict: verdict, BadPatterns: badPatterns})
}
