package explain

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"multidiag/internal/report"
)

// trail is one candidate's events grouped in lifecycle order.
type trail struct {
	cand, name string
	firstSeq   int64
	byStage    map[string][]Event
}

// collect groups events by candidate, preserving first-seen order, and
// returns the evidence universe (nil when no evidence event was recorded).
func collect(events []Event) ([]*trail, []Bit) {
	var evidence []Bit
	byCand := map[string]*trail{}
	var order []*trail
	for _, ev := range events {
		if ev.Kind == "evidence" {
			evidence = ev.Bits
			continue
		}
		t := byCand[ev.Cand]
		if t == nil {
			t = &trail{cand: ev.Cand, name: ev.Name, firstSeq: ev.Seq, byStage: map[string][]Event{}}
			byCand[ev.Cand] = t
			order = append(order, t)
		}
		t.byStage[ev.Stage] = append(t.byStage[ev.Stage], ev)
	}
	return order, evidence
}

// RenderNarrative writes the per-candidate lifecycle narrative: one block
// per candidate, one line per stage, in extraction order. Multiplet
// members (candidates with a kept cover verdict) lead; merged and pruned
// seeds follow. maxOther bounds the non-multiplet blocks (<0 = all).
func RenderNarrative(w io.Writer, events []Event, maxOther int) error {
	trails, _ := collect(events)
	var kept, other []*trail
	for _, t := range trails {
		if hasVerdict(t, StageCover, VerdictKept) {
			kept = append(kept, t)
		} else {
			other = append(other, t)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return keptOrder(kept[i]) < keptOrder(kept[j]) })
	var sb strings.Builder
	for _, t := range kept {
		writeTrail(&sb, t)
	}
	shown := 0
	for _, t := range other {
		if maxOther >= 0 && shown >= maxOther {
			fmt.Fprintf(&sb, "… %d further non-multiplet candidates (rerun with -all to list)\n", len(other)-shown)
			break
		}
		writeTrail(&sb, t)
		shown++
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func hasVerdict(t *trail, stage, verdict string) bool {
	for _, ev := range t.byStage[stage] {
		if ev.Verdict == verdict {
			return true
		}
	}
	return false
}

func keptOrder(t *trail) int {
	for _, ev := range t.byStage[StageCover] {
		if ev.Verdict == VerdictKept {
			return ev.Order
		}
	}
	return 1 << 30
}

// writeTrail renders one candidate's block.
func writeTrail(sb *strings.Builder, t *trail) {
	name := t.name
	if name == "" {
		name = t.cand
	}
	fmt.Fprintf(sb, "%s\n", name)
	for _, stage := range []string{StageExtract, StageScore, StageCover, StageRefine, StageXCheck} {
		for _, ev := range t.byStage[stage] {
			fmt.Fprintf(sb, "  %-8s %s\n", stage+":", stageLine(ev))
		}
	}
}

// stageLine renders one event as a one-line narrative clause.
func stageLine(ev Event) string {
	switch ev.Stage {
	case StageExtract:
		pats := map[int]bool{}
		exact := 0
		for _, b := range ev.Bits {
			pats[b.Pattern] = true
			if b.PO >= 0 {
				exact++
			}
		}
		if exact > 0 {
			return fmt.Sprintf("back-cone of %d failing bits across %d patterns", len(ev.Bits), len(pats))
		}
		return fmt.Sprintf("back-cone of %d failing patterns (pattern-level attribution)", len(pats))
	case StageScore:
		switch ev.Verdict {
		case VerdictMerged:
			return fmt.Sprintf("syndrome identical to %s — merged into its equivalence class", ev.EquivTo)
		case VerdictPruned:
			return fmt.Sprintf("pruned: %s (TPSF=%d)", ev.Reason, ev.TPSF)
		}
		line := fmt.Sprintf("covers %d observed bits, %d mispredictions", ev.TFSF, ev.TPSF)
		if len(ev.Equiv) > 0 {
			line += fmt.Sprintf(" (≡ %s)", strings.Join(ev.Equiv, ", "))
		}
		return line
	case StageCover:
		if ev.Verdict == VerdictKept {
			return fmt.Sprintf("kept as multiplet #%d: gain %.2f, %d newly explained bits", ev.Order, ev.Gain, ev.NewBits)
		}
		if ev.DominatedBy != "" {
			return fmt.Sprintf("pruned: %s (dominated by %s, overlap %d bits)", ev.Reason, ev.DominatedBy, ev.Overlap)
		}
		return "pruned: " + ev.Reason
	case StageRefine:
		if ev.Verdict == VerdictSkipped {
			return "bridge search disabled; keeping " + modelLine(ev.Models)
		}
		return "models: " + modelLine(ev.Models)
	case StageXCheck:
		switch ev.Verdict {
		case VerdictConsistent:
			return "multiplet X-consistent: every observed failure reachable with all sites unknown"
		case VerdictInconsistent:
			return fmt.Sprintf("multiplet X-INCONSISTENT on patterns %v — evidence incomplete", ev.BadPatterns)
		}
		return "X-consistency check disabled"
	}
	return ev.Verdict
}

func modelLine(models []ModelFit) string {
	if len(models) == 0 {
		return "none"
	}
	parts := make([]string, len(models))
	for i, m := range models {
		if m.Aggressor != "" {
			parts[i] = fmt.Sprintf("%s←%s (covers %d, %d mispred)", m.Kind, m.Aggressor, m.Covered, m.Mispred)
		} else {
			parts[i] = fmt.Sprintf("%s (covers %d, %d mispred)", m.Kind, m.Covered, m.Mispred)
		}
	}
	return strings.Join(parts, "; ")
}

// RenderBitTable writes the per-failing-pattern "who explains this bit"
// table: one row per evidence bit, listing the multiplet members whose
// coverage vector includes it. Requires the evidence event (recorded by
// every diagnosis with a recorder attached).
func RenderBitTable(w io.Writer, events []Event) error {
	trails, evidence := collect(events)
	if evidence == nil {
		return fmt.Errorf("explain: no evidence event in record (nothing to tabulate)")
	}
	// Who covers bit i: multiplet members in selection order.
	coverers := make([][]string, len(evidence))
	var kept []*trail
	for _, t := range trails {
		if hasVerdict(t, StageCover, VerdictKept) {
			kept = append(kept, t)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return keptOrder(kept[i]) < keptOrder(kept[j]) })
	for _, t := range kept {
		for _, ev := range t.byStage[StageScore] {
			if ev.Verdict != VerdictScored {
				continue
			}
			for _, idx := range ev.Covered {
				if idx >= 0 && idx < len(coverers) {
					coverers[idx] = append(coverers[idx], t.name)
				}
			}
		}
	}
	t := report.NewTable("who explains this bit (observed failing (pattern, PO) → multiplet members)",
		"pattern", "PO", "explained by")
	for i, b := range evidence {
		who := "— UNEXPLAINED —"
		if len(coverers[i]) > 0 {
			who = strings.Join(coverers[i], ", ")
		}
		t.AddRow(b.Pattern, b.PO, who)
	}
	return t.Render(w)
}
