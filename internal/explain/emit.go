package explain

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"multidiag/internal/obs"
)

// Emitter serializes flight-recorder events as JSON Lines onto one
// writer, mirroring obs.Emitter: safe for concurrent use, first error
// sticky so a CLI can stream fire-and-forget and still fail loudly at
// exit. A nil *Emitter ignores every call.
type Emitter struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	n   int64
	err error
}

// NewEmitter wraps w. The caller owns w's lifecycle (see Close).
func NewEmitter(w io.Writer) *Emitter {
	return &Emitter{w: w, enc: json.NewEncoder(w)}
}

// Emit writes one event line. The recorder assigns sequence numbers, so
// unlike obs the emitter writes the event verbatim.
func (e *Emitter) Emit(ev Event) error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	if err := e.enc.Encode(ev); err != nil {
		e.err = fmt.Errorf("explain: emit failed: %w", err)
		return e.err
	}
	e.n++
	return nil
}

// Events returns the number of successfully emitted records.
func (e *Emitter) Events() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Err returns the sticky error, if any emission failed.
func (e *Emitter) Err() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close closes the underlying writer when it is an io.Closer; the sticky
// emission error takes precedence over the close error.
func (e *Emitter) Close() error {
	if e == nil {
		return nil
	}
	var closeErr error
	if c, ok := e.w.(io.Closer); ok {
		closeErr = c.Close()
	}
	if err := e.Err(); err != nil {
		return err
	}
	return closeErr
}

// Open creates a recorder labelled run streaming to path (gzip-compressed
// when path ends in ".gz", matching -trace-out). An empty path returns an
// enabled recorder with no emitter — events are retained in memory only.
// The returned finish must run before exit: it flushes and closes the
// sink and surfaces the first write error. Open itself fails fast on an
// unwritable path.
func Open(path, run string) (*Recorder, func() error, error) {
	rec := New(run)
	if path == "" {
		return rec, func() error { return nil }, nil
	}
	w, err := obs.CreateSink(path)
	if err != nil {
		return nil, nil, fmt.Errorf("explain-out: %w", err)
	}
	em := NewEmitter(w)
	rec.SetEmitter(em)
	return rec, em.Close, nil
}
