package explain

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestNilTolerance: every recorder/emitter method must be a no-op on a nil
// receiver — the instrumented engine relies on this for its disabled path.
func TestNilTolerance(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.SetEmitter(nil)
	if r.Emitter() != nil {
		t.Fatal("nil recorder returned an emitter")
	}
	r.Record(Event{})
	r.Evidence([]Bit{{0, 1}})
	r.Extract("a", "b", nil)
	r.Score("a", "b", nil, 1, 0, nil, VerdictScored, "")
	r.Merged("a", "b", "c")
	r.Kept("a", "b", 1, 0.5, 3)
	r.CoverPruned("a", "b", "c", 2, "r")
	r.Refine("a", "b", nil, VerdictScored)
	r.XCheck("a", "b", VerdictConsistent, nil)
	if evs, dropped := r.Events(); evs != nil || dropped != 0 {
		t.Fatal("nil recorder retained events")
	}

	var e *Emitter
	if err := e.Emit(Event{}); err != nil {
		t.Fatal(err)
	}
	if e.Events() != 0 || e.Err() != nil || e.Close() != nil {
		t.Fatal("nil emitter not inert")
	}
}

// TestRecorderStampsAndRetains: run label, monotone sequence numbers, and
// the Events copy contract.
func TestRecorderStampsAndRetains(t *testing.T) {
	r := New("unit")
	if !r.Enabled() {
		t.Fatal("recorder not enabled")
	}
	r.Extract("net1/sa0", "G1 sa0", []Bit{{Pattern: 2, PO: 0}})
	r.Score("net1/sa0", "G1 sa0", []int{0, 2}, 2, 1, []string{"G2 sa1"}, VerdictScored, "")
	r.Kept("net1/sa0", "G1 sa0", 1, 1.7, 2)
	evs, dropped := r.Events()
	if dropped != 0 {
		t.Fatalf("dropped %d", dropped)
	}
	if len(evs) != 3 {
		t.Fatalf("retained %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Run != "unit" {
			t.Errorf("event %d run %q", i, ev.Run)
		}
		if ev.Seq != int64(i) {
			t.Errorf("event %d seq %d", i, ev.Seq)
		}
		if ev.Kind != "cand" || ev.Cand != "net1/sa0" {
			t.Errorf("event %d: %+v", i, ev)
		}
	}
	// Events must return a copy: mutating it cannot corrupt the recorder.
	evs[0].Cand = "corrupted"
	evs2, _ := r.Events()
	if evs2[0].Cand != "net1/sa0" {
		t.Fatal("Events returned the internal slice")
	}
}

// TestRecorderRetentionCap: past maxEvents the in-memory copy stops
// growing but the emitter keeps streaming and Events reports the drop.
func TestRecorderRetentionCap(t *testing.T) {
	var buf bytes.Buffer
	r := New("cap")
	r.SetEmitter(NewEmitter(&buf))
	extra := 10
	for i := 0; i < maxEvents+extra; i++ {
		r.Record(Event{Kind: "cand", Stage: StageScore})
	}
	evs, dropped := r.Events()
	if len(evs) != maxEvents {
		t.Fatalf("retained %d, want %d", len(evs), maxEvents)
	}
	if dropped != int64(extra) {
		t.Fatalf("dropped %d, want %d", dropped, extra)
	}
	if n := r.Emitter().Events(); n != int64(maxEvents+extra) {
		t.Fatalf("emitter streamed %d, want %d", n, maxEvents+extra)
	}
}

// TestRecorderConcurrent hammers one recorder (with emitter) from many
// goroutines — the mdexp worker-pool shape — and checks nothing is lost
// and every sequence number is assigned exactly once. Run under -race via
// the repo's race target.
func TestRecorderConcurrent(t *testing.T) {
	var buf lockedBuffer
	r := New("race")
	r.SetEmitter(NewEmitter(&buf))
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Extract(fmt.Sprintf("net%d/sa0", w), "", []Bit{{Pattern: i, PO: w}})
			}
		}(w)
	}
	wg.Wait()
	evs, dropped := r.Events()
	if len(evs) != workers*per || dropped != 0 {
		t.Fatalf("retained %d (dropped %d), want %d", len(evs), dropped, workers*per)
	}
	seen := map[int64]bool{}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("seq %d assigned twice", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if err := r.Emitter().Err(); err != nil {
		t.Fatal(err)
	}
	if n := r.Emitter().Events(); n != workers*per {
		t.Fatalf("emitter streamed %d", n)
	}
}

// lockedBuffer serializes concurrent writes (mirrors the exp test helper).
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// failAfter errors on the n-th write.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

// TestEmitterStickyError: the first write error sticks and Close surfaces
// it over the close error.
func TestEmitterStickyError(t *testing.T) {
	em := NewEmitter(&failAfter{n: 1})
	if err := em.Emit(Event{Kind: "cand"}); err != nil {
		t.Fatal(err)
	}
	if err := em.Emit(Event{Kind: "cand"}); err == nil {
		t.Fatal("write error swallowed")
	}
	if em.Events() != 1 {
		t.Fatalf("counted %d events", em.Events())
	}
	if err := em.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("sticky error: %v", err)
	}
	if err := em.Close(); err == nil {
		t.Fatal("Close dropped the sticky error")
	}
}

// TestOpenEmptyPath: an empty -explain-out keeps the recorder in-memory
// only, with a working no-op finish.
func TestOpenEmptyPath(t *testing.T) {
	rec, finish, err := Open("", "t")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Emitter() != nil {
		t.Fatal("empty path must yield an emitterless recorder")
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenFailFast: an unwritable path errors at open, not at exit.
func TestOpenFailFast(t *testing.T) {
	_, _, err := Open(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl"), "t")
	if err == nil {
		t.Fatal("unwritable path accepted")
	}
	if !strings.Contains(err.Error(), "explain-out") {
		t.Fatalf("error not attributed to the flag: %v", err)
	}
}

// TestOpenGzipRoundTrip: a .gz path must produce a gzip stream whose
// decompressed JSONL matches what a plain path would carry.
func TestOpenGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	emit := func(path string) {
		rec, finish, err := Open(path, "gz")
		if err != nil {
			t.Fatal(err)
		}
		rec.Evidence([]Bit{{Pattern: 1, PO: 2}, {Pattern: 3, PO: 0}})
		rec.Extract("net4/sa1", "G4 sa1", []Bit{{Pattern: 1, PO: 2}})
		rec.Kept("net4/sa1", "G4 sa1", 1, 2.0, 2)
		if err := finish(); err != nil {
			t.Fatal(err)
		}
	}
	plainPath := filepath.Join(dir, "e.jsonl")
	gzPath := filepath.Join(dir, "e.jsonl.gz")
	emit(plainPath)
	emit(gzPath)

	plain, err := os.ReadFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("not a gzip stream: %v", err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(zr); err != nil {
		t.Fatal(err)
	}
	if out.String() != string(plain) {
		t.Fatalf("gzip round-trip differs:\n%s\nvs\n%s", out.String(), plain)
	}
	var lines int
	for _, l := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("line does not parse: %v", err)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("got %d lines", lines)
	}
}

// syntheticDiagnosis records a small but complete lifecycle: evidence of 3
// bits, one kept candidate, one merged seed, one cover-pruned candidate.
func syntheticDiagnosis() *Recorder {
	r := New("synthetic")
	r.Evidence([]Bit{{Pattern: 0, PO: 1}, {Pattern: 2, PO: 0}, {Pattern: 5, PO: 1}})
	r.Extract("net1/sa0", "G1 sa0", []Bit{{Pattern: 0, PO: 1}, {Pattern: 2, PO: 0}})
	r.Merged("net9/sa0", "G9 sa0", "net1/sa0")
	r.Score("net1/sa0", "G1 sa0", []int{0, 1}, 2, 0, []string{"G9 sa0"}, VerdictScored, "")
	r.Extract("net3/sa1", "G3 sa1", []Bit{{Pattern: 0, PO: 1}})
	r.Score("net3/sa1", "G3 sa1", []int{0}, 1, 2, nil, VerdictScored, "")
	r.Kept("net1/sa0", "G1 sa0", 1, 2.0, 2)
	r.CoverPruned("net3/sa1", "G3 sa1", "G1 sa0", 1, "all covered bits already explained by the multiplet")
	r.Refine("net1/sa0", "G1 sa0", []ModelFit{{Kind: "stuck/open", Covered: 2}}, VerdictScored)
	r.XCheck("net1/sa0", "G1 sa0", VerdictConsistent, nil)
	return r
}

// TestRenderNarrative: multiplet members lead, stages render in lifecycle
// order, and maxOther truncates with a pointer to -all.
func TestRenderNarrative(t *testing.T) {
	events, _ := syntheticDiagnosis().Events()
	var sb strings.Builder
	if err := RenderNarrative(&sb, events, -1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"G1 sa0", "back-cone of 2 failing bits",
		"covers 2 observed bits, 0 mispredictions", "(≡ G9 sa0)",
		"kept as multiplet #1", "stuck/open (covers 2, 0 mispred)",
		"X-consistent",
		"G3 sa1", "dominated by G1 sa0, overlap 1 bits",
		"G9 sa0", "merged into its equivalence class",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("narrative missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "G1 sa0") > strings.Index(out, "G3 sa1") {
		t.Error("multiplet member does not lead the narrative")
	}

	sb.Reset()
	if err := RenderNarrative(&sb, events, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 further non-multiplet candidates") {
		t.Errorf("maxOther=0 did not truncate:\n%s", sb.String())
	}
}

// TestRenderBitTable: one row per evidence bit, kept members attributed,
// uncovered bits flagged, and a clear error without an evidence event.
func TestRenderBitTable(t *testing.T) {
	events, _ := syntheticDiagnosis().Events()
	var sb strings.Builder
	if err := RenderBitTable(&sb, events); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"who explains this bit", "G1 sa0", "— UNEXPLAINED —"} {
		if !strings.Contains(out, want) {
			t.Errorf("bit table missing %q:\n%s", want, out)
		}
	}
	if err := RenderBitTable(&sb, nil); err == nil {
		t.Fatal("missing evidence event not reported")
	}
}
