// Package compact models test-response compaction and diagnosis from
// compacted fail data. Modern testers rarely observe raw primary outputs:
// an on-chip spatial compactor (X-compact style XOR network) folds hundreds
// of scan-out signals into a handful of pins, and the datalog records
// failing *compactor outputs*. Compaction introduces aliasing — an even
// number of failing POs feeding the same compactor output cancel — so
// diagnosis must reason about compressed syndromes rather than trying to
// invert the compactor.
//
// The package provides the compactor model (XOR parity network with
// X-compact-style distinct signatures per PO), datalog compression, and a
// diagnosis engine that mirrors the core effect-cause flow but scores and
// covers evidence in compressed-output space. Experiment T9 measures how
// much localization survives 2:1 … 8:1 compaction.
package compact

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"multidiag/internal/bitset"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// Compactor is a spatial XOR network: compressed output j observes the
// parity of errors on the POs listed in Assign[j].
type Compactor struct {
	NumPOs, NumOut int
	// Assign[j] lists the PO indices XORed into compressed output j.
	Assign [][]int
	// poOuts[p] lists the compressed outputs observing PO p (the PO's
	// signature).
	poOuts [][]int
}

// NewXCompact builds a compactor with numOut outputs in which every PO
// feeds `fanout` distinct compressed outputs (X-compact property: distinct
// POs get distinct signatures where possible, so single-PO errors remain
// distinguishable). Deterministic from seed.
func NewXCompact(numPOs, numOut, fanout int, seed int64) (*Compactor, error) {
	if numOut < 1 || numPOs < 1 {
		return nil, fmt.Errorf("compact: need ≥1 POs and outputs")
	}
	if fanout < 1 {
		fanout = 1
	}
	if fanout > numOut {
		fanout = numOut
	}
	r := rand.New(rand.NewSource(seed))
	cp := &Compactor{
		NumPOs: numPOs, NumOut: numOut,
		Assign: make([][]int, numOut),
		poOuts: make([][]int, numPOs),
	}
	seen := map[string]bool{}
	outs := make([]int, numOut)
	for i := range outs {
		outs[i] = i
	}
	for p := 0; p < numPOs; p++ {
		var sig []int
		for attempt := 0; ; attempt++ {
			r.Shuffle(numOut, func(i, j int) { outs[i], outs[j] = outs[j], outs[i] })
			sig = append([]int(nil), outs[:fanout]...)
			sort.Ints(sig)
			key := fmt.Sprint(sig)
			if !seen[key] || attempt > 32 {
				seen[key] = true
				break
			}
		}
		cp.poOuts[p] = sig
		for _, o := range sig {
			cp.Assign[o] = append(cp.Assign[o], p)
		}
	}
	for j := range cp.Assign {
		sort.Ints(cp.Assign[j])
	}
	return cp, nil
}

// Ratio returns the compression ratio POs:outputs.
func (cp *Compactor) Ratio() float64 { return float64(cp.NumPOs) / float64(cp.NumOut) }

// CompressFails maps a set of failing POs (error parity view) to the set
// of failing compressed outputs.
func (cp *Compactor) CompressFails(poFails bitset.Set) bitset.Set {
	out := bitset.New(cp.NumOut)
	for j, pos := range cp.Assign {
		parity := 0
		for _, p := range pos {
			if poFails.Has(p) {
				parity ^= 1
			}
		}
		if parity == 1 {
			out.Add(j)
		}
	}
	return out
}

// CompressDatalog rewrites a PO-space datalog into compactor-output space.
// Aliased patterns (all fails cancel) silently become passing — exactly the
// information loss real compaction causes.
func (cp *Compactor) CompressDatalog(d *tester.Datalog) *tester.Datalog {
	out := &tester.Datalog{
		CircuitName: d.CircuitName,
		NumPatterns: d.NumPatterns,
		NumPOs:      cp.NumOut,
		Fails:       make(map[int]bitset.Set),
	}
	for p, fails := range d.Fails {
		cf := cp.CompressFails(fails)
		if !cf.Empty() {
			out.Fails[p] = cf
		}
	}
	return out
}

// Candidate is a compressed-space suspect.
type Candidate struct {
	Fault      fault.StuckAt
	Equivalent []fault.StuckAt
	Covered    bitset.Set
	TFSF, TPSF int
}

// Result is the compressed-space diagnosis outcome.
type Result struct {
	Multiplet   []*Candidate
	Ranked      []*Candidate
	Evidence    int
	Unexplained int
	Elapsed     time.Duration
}

// MultipletNets adapts to the metrics package.
func (r *Result) MultipletNets() [][]netlist.NetID {
	out := make([][]netlist.NetID, len(r.Multiplet))
	for i, cd := range r.Multiplet {
		nets := []netlist.NetID{cd.Fault.Net}
		for _, e := range cd.Equivalent {
			nets = append(nets, e.Net)
		}
		out[i] = nets
	}
	return out
}

// Diagnose locates defects from a *compressed* datalog. The flow mirrors
// the core engine with two compaction-specific twists:
//
//   - extraction back-traces from every PO feeding a failing compressed
//     output (the compactor cannot tell which member PO failed, so all
//     members are effect-cause roots);
//   - candidate syndromes are pushed through the compactor before being
//     matched against the evidence, so aliasing affects prediction and
//     observation identically.
func Diagnose(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog, cp *Compactor, lambda float64, maxMultiplet int) (*Result, error) {
	res := &Result{}
	defer obs.Global().Span("compact.diagnose").EndInto(&res.Elapsed)
	if log.NumPatterns != len(pats) {
		return nil, fmt.Errorf("compact: datalog has %d patterns, test set has %d", log.NumPatterns, len(pats))
	}
	if log.NumPOs != cp.NumOut {
		return nil, fmt.Errorf("compact: datalog has %d outputs, compactor has %d", log.NumPOs, cp.NumOut)
	}
	if cp.NumPOs != len(c.POs) {
		return nil, fmt.Errorf("compact: compactor has %d POs, circuit has %d", cp.NumPOs, len(c.POs))
	}
	if lambda == 0 {
		lambda = 0.3
	}
	if maxMultiplet <= 0 {
		maxMultiplet = 10
	}
	failing := log.FailingPatterns()
	if len(failing) == 0 {
		return res, nil
	}
	type evBit struct{ pattern, out int }
	evIndex := map[evBit]int{}
	for _, p := range failing {
		for _, o := range log.Fails[p].Members() {
			evIndex[evBit{p, o}] = res.Evidence
			res.Evidence++
		}
	}

	// Extraction: CPT from every member PO of every failing compressed
	// output.
	cpt := fsim.NewCPT(c)
	seen := map[fault.StuckAt]bool{}
	var seeds []fault.StuckAt
	for _, p := range failing {
		determinate := true
		for _, v := range pats[p] {
			if !v.IsKnown() {
				determinate = false
				break
			}
		}
		if !determinate {
			continue
		}
		poSet := map[int]bool{}
		for _, o := range log.Fails[p].Members() {
			for _, po := range cp.Assign[o] {
				poSet[po] = true
			}
		}
		pos := make([]netlist.NetID, 0, len(poSet))
		for po := range poSet {
			pos = append(pos, c.POs[po])
		}
		sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
		union, _, vals, err := cpt.CriticalForOutputs(pats[p], pos)
		if err != nil {
			return nil, err
		}
		for id, cr := range union {
			if !cr || !vals[id].IsKnown() {
				continue
			}
			f := fault.StuckAt{Net: netlist.NetID(id), Value1: vals[id] == logic.Zero}
			if !seen[f] {
				seen[f] = true
				seeds = append(seeds, f)
			}
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].Net != seeds[j].Net {
			return seeds[i].Net < seeds[j].Net
		}
		return !seeds[i].Value1 && seeds[j].Value1
	})

	// Scoring through the compactor, with equivalence-class merging.
	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		return nil, err
	}
	classes := map[string]*Candidate{}
	var cands []*Candidate
	for _, f := range seeds {
		syn := fs.SimulateStuckAt(f)
		cd := &Candidate{Fault: f, Covered: bitset.New(res.Evidence)}
		sig := ""
		for p := 0; p < syn.NumPatterns; p++ {
			if syn.Fails[p] == nil || syn.Fails[p].Empty() {
				continue
			}
			comp := cp.CompressFails(syn.Fails[p])
			if comp.Empty() {
				continue // fully aliased prediction
			}
			sig += fmt.Sprintf("%d:%s;", p, comp.String())
			for _, o := range comp.Members() {
				if idx, ok := evIndex[evBit{p, o}]; ok {
					cd.Covered.Add(idx)
				} else {
					cd.TPSF++
				}
			}
		}
		cd.TFSF = cd.Covered.Count()
		if cd.TFSF == 0 {
			continue
		}
		if rep, ok := classes[sig]; ok {
			rep.Equivalent = append(rep.Equivalent, f)
			continue
		}
		classes[sig] = cd
		cands = append(cands, cd)
	}

	// Greedy cover (identical policy to the core engine).
	remaining := bitset.New(res.Evidence)
	for i := 0; i < res.Evidence; i++ {
		remaining.Add(i)
	}
	used := map[*Candidate]bool{}
	for len(res.Multiplet) < maxMultiplet && !remaining.Empty() {
		var best *Candidate
		bestGain := 0.0
		bestCov := 0
		for _, cd := range cands {
			if used[cd] {
				continue
			}
			cov := cd.Covered.IntersectCount(remaining)
			if cov == 0 {
				continue
			}
			gain := float64(cov) - lambda*float64(cd.TPSF)
			if best == nil || gain > bestGain ||
				(gain == bestGain && (cov > bestCov || (cov == bestCov && cd.Fault.Net < best.Fault.Net))) {
				best, bestGain, bestCov = cd, gain, cov
			}
		}
		if best == nil {
			break
		}
		used[best] = true
		res.Multiplet = append(res.Multiplet, best)
		remaining.SubtractWith(best.Covered)
	}
	res.Unexplained = remaining.Count()
	rest := make([]*Candidate, 0, len(cands))
	for _, cd := range cands {
		if !used[cd] {
			rest = append(rest, cd)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].TFSF != rest[j].TFSF {
			return rest[i].TFSF > rest[j].TFSF
		}
		if rest[i].TPSF != rest[j].TPSF {
			return rest[i].TPSF < rest[j].TPSF
		}
		return rest[i].Fault.Net < rest[j].Fault.Net
	})
	res.Ranked = append(append([]*Candidate{}, res.Multiplet...), rest...)
	return res, nil
}
