package compact

import (
	"testing"

	"multidiag/internal/atpg"
	"multidiag/internal/bitset"
	"multidiag/internal/circuits"
	"multidiag/internal/defect"
	"multidiag/internal/metrics"
	"multidiag/internal/netlist"
	"multidiag/internal/tester"
)

func TestNewXCompactStructure(t *testing.T) {
	cp, err := NewXCompact(20, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NumPOs != 20 || cp.NumOut != 5 {
		t.Fatalf("dims: %+v", cp)
	}
	if cp.Ratio() != 4.0 {
		t.Fatalf("ratio %f", cp.Ratio())
	}
	// Every PO observed by exactly `fanout` distinct outputs.
	for p, sig := range cp.poOuts {
		if len(sig) != 2 {
			t.Fatalf("PO %d signature %v", p, sig)
		}
		if sig[0] == sig[1] {
			t.Fatalf("PO %d duplicate outputs", p)
		}
	}
	// Assign is the inverse of poOuts.
	for j, pos := range cp.Assign {
		for _, p := range pos {
			found := false
			for _, o := range cp.poOuts[p] {
				if o == j {
					found = true
				}
			}
			if !found {
				t.Fatalf("assign/poOuts inconsistent at out %d PO %d", j, p)
			}
		}
	}
	if _, err := NewXCompact(0, 5, 2, 1); err == nil {
		t.Error("zero POs accepted")
	}
}

func TestCompressFailsParity(t *testing.T) {
	cp := &Compactor{
		NumPOs: 4, NumOut: 2,
		Assign: [][]int{{0, 1}, {2, 3}},
		poOuts: [][]int{{0}, {0}, {1}, {1}},
	}
	f := bitset.New(4)
	f.Add(0)
	out := cp.CompressFails(f)
	if !out.Has(0) || out.Has(1) {
		t.Fatalf("single fail: %v", out)
	}
	// Aliasing: both POs of output 0 fail → cancel.
	f.Add(1)
	out = cp.CompressFails(f)
	if out.Has(0) {
		t.Fatal("even parity must alias")
	}
	// Three of four.
	f.Add(2)
	out = cp.CompressFails(f)
	if out.Has(0) || !out.Has(1) {
		t.Fatalf("mixed: %v", out)
	}
}

func TestCompressDatalog(t *testing.T) {
	d := &tester.Datalog{NumPatterns: 3, NumPOs: 4, Fails: map[int]bitset.Set{}}
	s := bitset.New(4)
	s.Add(0)
	s.Add(1) // aliases on output 0
	d.Fails[1] = s
	cp := &Compactor{
		NumPOs: 4, NumOut: 2,
		Assign: [][]int{{0, 1}, {2, 3}},
		poOuts: [][]int{{0}, {0}, {1}, {1}},
	}
	out := cp.CompressDatalog(d)
	if len(out.Fails) != 0 {
		t.Fatal("fully aliased pattern must become passing")
	}
	if out.NumPOs != 2 {
		t.Fatal("output count wrong")
	}
}

// diagnoseCompressed is the end-to-end helper: inject, test, compress,
// diagnose in compressed space, score at radius 1.
func diagnoseCompressed(t *testing.T, c *netlist.Circuit, ratio int, ds []defect.Defect, seed int64) (metrics.Score, *Result, bool) {
	t.Helper()
	tests, err := atpg.Generate(c, atpg.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := defect.Inject(c, ds)
	if err != nil {
		t.Fatal(err)
	}
	log, err := tester.ApplyTest(c, dev, tests.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	numOut := (len(c.POs) + ratio - 1) / ratio
	if numOut < 1 {
		numOut = 1
	}
	cp, err := NewXCompact(len(c.POs), numOut, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	clog := cp.CompressDatalog(log)
	if len(clog.Fails) == 0 {
		return metrics.Score{}, nil, false
	}
	res, err := Diagnose(c, tests.Patterns, clog, cp, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var cands []metrics.Candidate
	for _, nets := range res.MultipletNets() {
		cands = append(cands, metrics.Candidate{Nets: nets})
	}
	return metrics.EvaluateRegion(c, ds, cands, 1), res, true
}

func TestDiagnoseSingleStuckCompressed(t *testing.T) {
	c, err := circuits.RippleAdder(12) // 13 POs
	if err != nil {
		t.Fatal(err)
	}
	found, runs := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 1, MixStuck: 1})
		if err != nil {
			t.Fatal(err)
		}
		score, _, active := diagnoseCompressed(t, c, 3, ds, seed)
		if !active {
			continue
		}
		runs++
		if score.Hits > 0 {
			found++
		}
	}
	if runs == 0 {
		t.Skip("no activated runs")
	}
	if float64(found)/float64(runs) < 0.8 {
		t.Errorf("compressed single-defect hit rate %d/%d", found, runs)
	}
}

func TestDiagnoseValidation(t *testing.T) {
	c := circuits.C17()
	tests, err := atpg.Generate(c, atpg.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := NewXCompact(len(c.POs), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := &tester.Datalog{NumPatterns: 1, NumPOs: 1}
	if _, err := Diagnose(c, tests.Patterns, bad, cp, 0, 0); err == nil {
		t.Error("pattern mismatch accepted")
	}
	bad2 := &tester.Datalog{NumPatterns: len(tests.Patterns), NumPOs: 7}
	if _, err := Diagnose(c, tests.Patterns, bad2, cp, 0, 0); err == nil {
		t.Error("output mismatch accepted")
	}
	cpWrong, _ := NewXCompact(9, 3, 2, 1)
	good := &tester.Datalog{NumPatterns: len(tests.Patterns), NumPOs: 3, Fails: map[int]bitset.Set{}}
	if _, err := Diagnose(c, tests.Patterns, good, cpWrong, 0, 0); err == nil {
		t.Error("PO-count mismatch accepted")
	}
	// Passing compressed datalog.
	cpOK, _ := NewXCompact(len(c.POs), 1, 1, 1)
	pass := &tester.Datalog{NumPatterns: len(tests.Patterns), NumPOs: 1, Fails: map[int]bitset.Set{}}
	res, err := Diagnose(c, tests.Patterns, pass, cpOK, 0, 0)
	if err != nil || len(res.Multiplet) != 0 {
		t.Error("passing device mishandled")
	}
}

// TestAliasingLosesButDoesNotLie: with aggressive 8:1 compression the
// engine may fail to localize (information destroyed) but the multiplet it
// reports must still cover all compressed evidence.
func TestAliasingLosesButDoesNotLie(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 12, NumPIs: 16, NumGates: 300, NumPOs: 16})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, errI := defect.Inject(c, ds); errI != nil {
			continue
		}
		_, res, active := diagnoseCompressed(t, c, 8, ds, seed)
		if !active || res == nil {
			continue
		}
		if len(res.Multiplet) > 0 && res.Unexplained > res.Evidence/2 {
			t.Errorf("seed %d: more than half the evidence unexplained (%d/%d)",
				seed, res.Unexplained, res.Evidence)
		}
	}
}
