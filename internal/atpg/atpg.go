// Package atpg generates stuck-at test patterns. The flow is the classic
// two-phase one: a random-pattern phase with fault dropping removes the
// easy-to-detect bulk of the fault universe cheaply, then a deterministic
// PODEM phase targets the remaining faults. The result is a compact,
// high-coverage test set — the artifact the diagnosis experiments consume
// (see DESIGN.md §5: this replaces the commercial ATPG the paper used).
package atpg

import (
	"fmt"
	"math/rand"

	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
)

// Config parameterizes pattern generation.
type Config struct {
	Seed int64
	// RandomBudget is the number of random patterns tried (in batches) in
	// the random phase. Default 256.
	RandomBudget int
	// RandomBatch is the batch size between fault-simulation passes.
	// Default 32.
	RandomBatch int
	// PodemBacktrackLimit bounds the PODEM search per fault. Default 10000.
	PodemBacktrackLimit int
	// KeepUndetectable, when true, records aborted/untestable faults in the
	// result for reporting.
	KeepUndetectable bool
	// NDetect, when > 1, extends the test set until every detected fault is
	// detected by at least N distinct patterns (or the per-fault retry
	// budget runs out). N-detect sets are the classical lever for better
	// diagnostic resolution; experiment F5 measures exactly that.
	NDetect int
	// NDetectRetries bounds PODEM re-targeting per under-detected fault
	// (default 8).
	NDetectRetries int
	// UseDominance targets the dominance-collapsed fault list instead of
	// the equivalence-collapsed one: fewer PODEM targets, identical final
	// detection of the full universe (Result.Detected/Coverage are still
	// reported against the equivalence-collapsed universe).
	UseDominance bool
	// Trace receives per-phase spans (atpg.random, atpg.podem,
	// atpg.ndetect) and counters. Nil falls back to obs.Global().
	Trace *obs.Trace
}

func (cfg *Config) fill() {
	if cfg.RandomBudget <= 0 {
		cfg.RandomBudget = 256
	}
	if cfg.RandomBatch <= 0 {
		cfg.RandomBatch = 32
	}
	if cfg.PodemBacktrackLimit <= 0 {
		cfg.PodemBacktrackLimit = 10000
	}
	if cfg.NDetectRetries <= 0 {
		cfg.NDetectRetries = 8
	}
}

// Result is the outcome of a Generate run.
type Result struct {
	Patterns []sim.Pattern
	// Detected maps each universe fault index to true when some pattern
	// detects it.
	Detected []bool
	// Untestable lists universe indices PODEM proved untestable.
	Untestable []int
	// Aborted lists universe indices where PODEM hit the backtrack limit.
	Aborted []int
	// RandomDetected / PodemDetected count detections per phase.
	RandomDetected, PodemDetected int
}

// Coverage returns detected/total over the universe used for generation.
func (r *Result) Coverage() float64 {
	if len(r.Detected) == 0 {
		return 0
	}
	n := 0
	for _, d := range r.Detected {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(r.Detected))
}

// Generate produces a test set for the collapsed stuck-at universe of c.
func Generate(c *netlist.Circuit, cfg Config) (*Result, error) {
	cfg.fill()
	if cfg.UseDominance {
		// Generate against the smaller dominance list, then re-grade the
		// result against the equivalence universe so coverage reporting is
		// comparable across configurations.
		res, err := GenerateFor(c, fault.CollapseDominance(c), cfg)
		if err != nil {
			return nil, err
		}
		universe := fault.Collapse(c)
		det, err := fsim.GradePatterns(c, res.Patterns, universe)
		if err != nil {
			return nil, err
		}
		res.Detected = det
		res.Untestable = nil
		res.Aborted = nil
		return res, nil
	}
	universe := fault.Collapse(c)
	return GenerateFor(c, universe, cfg)
}

// GenerateFor produces a test set detecting the given fault universe.
func GenerateFor(c *netlist.Circuit, universe []fault.StuckAt, cfg Config) (*Result, error) {
	cfg.fill()
	tr := cfg.Trace
	if tr == nil {
		tr = obs.Global()
	}
	root := tr.Span("atpg.generate")
	defer root.End()
	reg := tr.Registry()
	r := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Detected: make([]bool, len(universe))}
	remaining := make([]int, len(universe))
	for i := range remaining {
		remaining[i] = i
	}

	// Phase 1: random patterns with fault dropping.
	sp := root.Child("atpg.random")
	tried := 0
	for tried < cfg.RandomBudget && len(remaining) > 0 {
		batch := make([]sim.Pattern, 0, cfg.RandomBatch)
		for i := 0; i < cfg.RandomBatch && tried < cfg.RandomBudget; i++ {
			p := make(sim.Pattern, len(c.PIs))
			for j := range p {
				p[j] = logic.FromBool(r.Intn(2) == 1)
			}
			batch = append(batch, p)
			tried++
		}
		kept, detectedNow, err := usefulPatterns(c, batch, universe, remaining)
		if err != nil {
			return nil, err
		}
		res.Patterns = append(res.Patterns, kept...)
		if len(detectedNow) > 0 {
			res.RandomDetected += len(detectedNow)
			drop := map[int]bool{}
			for _, fi := range detectedNow {
				res.Detected[fi] = true
				drop[fi] = true
			}
			remaining = filterOut(remaining, drop)
		}
	}
	sp.End()
	reg.Counter("atpg.random_patterns_tried").Add(int64(tried))
	reg.Counter("atpg.random_detected").Add(int64(res.RandomDetected))

	// Phase 2: PODEM on survivors.
	sp = root.Child("atpg.podem")
	podemTargets := reg.Counter("atpg.podem_targets")
	eng := newPodem(c, cfg.PodemBacktrackLimit)
	for len(remaining) > 0 {
		podemTargets.Inc()
		fi := remaining[0]
		f := universe[fi]
		pat, status := eng.generate(f, r)
		switch status {
		case podemFound:
			// Fill X inputs randomly for better incidental detection.
			for j := range pat {
				if pat[j] == logic.X {
					pat[j] = logic.FromBool(r.Intn(2) == 1)
				}
			}
			res.Patterns = append(res.Patterns, pat)
			// Drop everything this pattern detects.
			_, detectedNow, err := usefulPatterns(c, []sim.Pattern{pat}, universe, remaining)
			if err != nil {
				return nil, err
			}
			if len(detectedNow) == 0 {
				// The filled pattern must detect its target; if not, the
				// engine is broken — fail loudly rather than loop.
				return nil, fmt.Errorf("atpg: PODEM pattern for %s detects nothing", f.Name(c))
			}
			res.PodemDetected += len(detectedNow)
			drop := map[int]bool{}
			for _, x := range detectedNow {
				res.Detected[x] = true
				drop[x] = true
			}
			remaining = filterOut(remaining, drop)
		case podemUntestable:
			res.Untestable = append(res.Untestable, fi)
			remaining = remaining[1:]
		case podemAborted:
			res.Aborted = append(res.Aborted, fi)
			remaining = remaining[1:]
		}
	}
	sp.End()
	reg.Counter("atpg.podem_detected").Add(int64(res.PodemDetected))
	reg.Counter("atpg.podem_untestable").Add(int64(len(res.Untestable)))
	reg.Counter("atpg.podem_aborted").Add(int64(len(res.Aborted)))

	// Phase 3 (optional): N-detect top-up. Re-target each under-detected
	// fault with fresh random fill so PODEM lands on distinct patterns.
	if cfg.NDetect > 1 {
		sp = root.Child("atpg.ndetect")
		err := topUpNDetect(c, universe, cfg, r, res)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	reg.Counter("atpg.patterns").Add(int64(len(res.Patterns)))
	return res, nil
}

// topUpNDetect extends res.Patterns until each detected fault reaches the
// configured detection count or its retry budget is exhausted.
func topUpNDetect(c *netlist.Circuit, universe []fault.StuckAt, cfg Config, r *rand.Rand, res *Result) error {
	counts, err := fsim.DetectionCounts(c, res.Patterns, universe)
	if err != nil {
		return err
	}
	eng := newPodem(c, cfg.PodemBacktrackLimit)
	for fi, f := range universe {
		if !res.Detected[fi] {
			continue
		}
		for retry := 0; counts[fi] < cfg.NDetect && retry < cfg.NDetectRetries; retry++ {
			pat, status := eng.generate(f, r)
			if status != podemFound {
				break
			}
			for j := range pat {
				if pat[j] == logic.X {
					pat[j] = logic.FromBool(r.Intn(2) == 1)
				}
			}
			// Only keep the pattern if it is a *new* detection vehicle for
			// this fault (distinct from existing detections is guaranteed
			// by the count increase check below).
			probe := append(res.Patterns, pat)
			newCounts, err := fsim.DetectionCounts(c, probe[len(res.Patterns):], universe[fi:fi+1])
			if err != nil {
				return err
			}
			if newCounts[0] == 0 {
				continue
			}
			res.Patterns = probe
			// The added pattern may lift other faults too; fold it in.
			inc, err := fsim.DetectionCounts(c, probe[len(probe)-1:], universe)
			if err != nil {
				return err
			}
			for k := range counts {
				counts[k] += inc[k]
			}
		}
	}
	return nil
}

// usefulPatterns fault-simulates batch against the remaining universe
// subset and returns the patterns that detected something plus the detected
// universe indices.
func usefulPatterns(c *netlist.Circuit, batch []sim.Pattern, universe []fault.StuckAt, remaining []int) ([]sim.Pattern, []int, error) {
	if len(batch) == 0 || len(remaining) == 0 {
		return nil, nil, nil
	}
	fs, err := fsim.NewFaultSim(c, batch)
	if err != nil {
		return nil, nil, err
	}
	usefulPat := make([]bool, len(batch))
	var detected []int
	for _, fi := range remaining {
		syn := fs.SimulateStuckAt(universe[fi])
		fp := syn.FailingPatterns()
		if len(fp) == 0 {
			continue
		}
		detected = append(detected, fi)
		usefulPat[fp[0]] = true
	}
	var kept []sim.Pattern
	for i, u := range usefulPat {
		if u {
			kept = append(kept, batch[i])
		}
	}
	return kept, detected, nil
}

func filterOut(xs []int, drop map[int]bool) []int {
	out := xs[:0]
	for _, x := range xs {
		if !drop[x] {
			out = append(out, x)
		}
	}
	return out
}
