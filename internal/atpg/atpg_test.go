package atpg

import (
	"math/rand"
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/fault"
	"multidiag/internal/fsim"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

// verifyDetects asserts that the pattern set detects fault f.
func verifyDetects(t *testing.T, c *netlist.Circuit, res *Result, f fault.StuckAt) bool {
	t.Helper()
	fs, err := fsim.NewFaultSim(c, res.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	return fs.SimulateStuckAt(f).Detected()
}

func TestGenerateC17FullCoverage(t *testing.T) {
	c := circuits.C17()
	res, err := Generate(c, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Fatalf("c17 coverage %.3f, want 1.0 (untestable %v aborted %v)",
			res.Coverage(), res.Untestable, res.Aborted)
	}
	if len(res.Untestable) != 0 || len(res.Aborted) != 0 {
		t.Fatalf("c17 has no untestable faults: %v / %v", res.Untestable, res.Aborted)
	}
	// Verify claim by independent fault simulation.
	for _, f := range fault.Collapse(c) {
		if !verifyDetects(t, c, res, f) {
			t.Fatalf("claimed coverage but %s undetected", f.Name(c))
		}
	}
}

func TestGenerateAdder(t *testing.T) {
	c, err := circuits.RippleAdder(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(c, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 1.0 {
		t.Fatalf("adder coverage %.3f (untestable %d aborted %d)",
			res.Coverage(), len(res.Untestable), len(res.Aborted))
	}
}

func TestGenerateRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		c, err := circuits.Generate(circuits.GenConfig{Seed: seed, NumPIs: 10, NumGates: 200, NumPOs: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Generate(c, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Random logic can contain untestable faults (redundancy); the
		// requirement is that every *testable* fault is covered: no aborts
		// and detected + untestable = universe.
		if len(res.Aborted) != 0 {
			t.Fatalf("seed %d: %d aborted faults", seed, len(res.Aborted))
		}
		nDet := 0
		for _, d := range res.Detected {
			if d {
				nDet++
			}
		}
		if nDet+len(res.Untestable) != len(res.Detected) {
			t.Fatalf("seed %d: %d detected + %d untestable ≠ %d universe",
				seed, nDet, len(res.Untestable), len(res.Detected))
		}
		if res.Coverage() < 0.9 {
			t.Fatalf("seed %d: coverage %.3f suspiciously low", seed, res.Coverage())
		}
	}
}

// TestPodemDirect exercises the PODEM engine alone (no random phase) on
// every collapsed fault of several structured circuits.
func TestPodemDirect(t *testing.T) {
	mk := func() []*netlist.Circuit {
		c1 := circuits.C17()
		c2, _ := circuits.RippleAdder(3)
		c3, _ := circuits.MuxTree(2)
		c4, _ := circuits.Decoder(2)
		c5, _ := circuits.ParityTree(5)
		return []*netlist.Circuit{c1, c2, c3, c4, c5}
	}
	rng := rand.New(rand.NewSource(4))
	for _, c := range mk() {
		eng := newPodem(c, 10000)
		for _, f := range fault.Collapse(c) {
			pat, status := eng.generate(f, rng)
			if status == podemAborted {
				t.Fatalf("%s: aborted on %s", c.Name, f.Name(c))
			}
			if status == podemUntestable {
				// Verify untestability on small circuits by exhaustion.
				if len(c.PIs) <= 12 {
					if exhaustivelyTestable(t, c, f) {
						t.Fatalf("%s: %s declared untestable but is testable", c.Name, f.Name(c))
					}
				}
				continue
			}
			// Fill remaining X's with 0 and verify detection.
			for i := range pat {
				if pat[i] == logic.X {
					pat[i] = logic.Zero
				}
			}
			fsm, err := fsim.NewFaultSim(c, []Pattern{pat})
			if err != nil {
				t.Fatal(err)
			}
			if !fsm.SimulateStuckAt(f).Detected() {
				t.Fatalf("%s: PODEM pattern %s does not detect %s", c.Name, pat, f.Name(c))
			}
		}
	}
}

// Pattern aliases sim.Pattern for test readability.
type Pattern = sim.Pattern

// exhaustivelyTestable checks testability by trying all input combinations.
func exhaustivelyTestable(t *testing.T, c *netlist.Circuit, f fault.StuckAt) bool {
	t.Helper()
	npi := len(c.PIs)
	pats := make([]Pattern, 0, 1<<npi)
	for m := 0; m < 1<<npi; m++ {
		p := make(Pattern, npi)
		for i := 0; i < npi; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats = append(pats, p)
	}
	fs, err := fsim.NewFaultSim(c, pats)
	if err != nil {
		t.Fatal(err)
	}
	return fs.SimulateStuckAt(f).Detected()
}

// TestPodemUntestableRedundant builds a redundant circuit (z = OR(a, AND(a,b)))
// where AND output sa0 is untestable and checks PODEM proves it.
func TestPodemUntestableRedundant(t *testing.T) {
	c := netlist.NewCircuit("red")
	a := c.MustAddGate(netlist.Input, "a")
	b := c.MustAddGate(netlist.Input, "b")
	g := c.MustAddGate(netlist.And, "g", a, b)
	z := c.MustAddGate(netlist.Or, "z", a, g)
	if err := c.MarkPO(z); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	eng := newPodem(c, 10000)
	rng := rand.New(rand.NewSource(1))
	// g sa0: detection needs g=1 (a=b=1) and propagation needs a=0: conflict.
	_, status := eng.generate(fault.StuckAt{Net: g, Value1: false}, rng)
	if status != podemUntestable {
		t.Fatalf("redundant fault not proven untestable (status %d)", status)
	}
	// Sanity: the testable fault z sa0 gets a pattern.
	pat, status := eng.generate(fault.StuckAt{Net: z, Value1: false}, rng)
	if status != podemFound || pat == nil {
		t.Fatalf("z sa0 should be testable (status %d)", status)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	c, err := circuits.Generate(circuits.GenConfig{Seed: 5, NumPIs: 8, NumGates: 100, NumPOs: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(c, Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("pattern counts differ: %d vs %d", len(a.Patterns), len(b.Patterns))
	}
	for i := range a.Patterns {
		for j := range a.Patterns[i] {
			if a.Patterns[i][j] != b.Patterns[i][j] {
				t.Fatal("patterns differ between identical runs")
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fill()
	if cfg.RandomBudget <= 0 || cfg.RandomBatch <= 0 || cfg.PodemBacktrackLimit <= 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}

func TestCoverageEmpty(t *testing.T) {
	r := &Result{}
	if r.Coverage() != 0 {
		t.Fatal("empty result coverage must be 0")
	}
}

// TestNDetect: the N-detect top-up must raise every detected fault's
// detection count to ≥N (up to the retry budget) without losing coverage.
func TestNDetect(t *testing.T) {
	c, err := circuits.RippleAdder(6)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Generate(c, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := Generate(c, Config{Seed: 13, NDetect: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(nd.Patterns) <= len(base.Patterns) {
		t.Fatalf("N-detect added no patterns: %d vs %d", len(nd.Patterns), len(base.Patterns))
	}
	if nd.Coverage() < base.Coverage() {
		t.Fatal("N-detect lost coverage")
	}
	universe := fault.Collapse(c)
	counts, err := fsim.DetectionCounts(c, nd.Patterns, universe)
	if err != nil {
		t.Fatal(err)
	}
	short := 0
	for i, d := range nd.Detected {
		if d && counts[i] < 3 {
			short++
		}
	}
	// The retry budget may leave a few hard faults short; most must reach N.
	if frac := float64(short) / float64(len(universe)); frac > 0.1 {
		t.Fatalf("%.0f%% of faults under-detected after N-detect top-up", 100*frac)
	}
}

// TestUseDominanceSameCoverage: targeting the dominance-collapsed list must
// reach the same coverage of the equivalence universe with no more (and
// typically fewer) deterministic targets.
func TestUseDominanceSameCoverage(t *testing.T) {
	for _, mk := range []func() (*netlist.Circuit, error){
		func() (*netlist.Circuit, error) { return circuits.C17(), nil },
		func() (*netlist.Circuit, error) { return circuits.RippleAdder(6) },
	} {
		c, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		base, err := Generate(c, Config{Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		dom, err := Generate(c, Config{Seed: 19, UseDominance: true})
		if err != nil {
			t.Fatal(err)
		}
		if dom.Coverage() < base.Coverage() {
			t.Fatalf("%s: dominance targeting lost coverage: %.3f < %.3f",
				c.Name, dom.Coverage(), base.Coverage())
		}
		if len(dom.Detected) != len(base.Detected) {
			t.Fatalf("%s: coverage reported over different universes", c.Name)
		}
	}
}
