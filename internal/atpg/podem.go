package atpg

import (
	"math/rand"

	"multidiag/internal/fault"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
)

// podemStatus is the outcome of one PODEM run.
type podemStatus uint8

const (
	podemFound podemStatus = iota
	podemUntestable
	podemAborted
)

// podem is a deterministic test generator for single stuck-at faults using
// the PODEM (path-oriented decision making) algorithm: decisions are made
// only on primary inputs, implications are computed by dual-machine
// (good/faulty) three-valued simulation, and the search backtracks through
// an explicit decision stack.
type podem struct {
	c            *netlist.Circuit
	backtrackLim int
	good, faulty []logic.Value
	assign       sim.Pattern // current PI assignment (X = unassigned)
	piIndex      map[netlist.NetID]int
}

func newPodem(c *netlist.Circuit, backtrackLim int) *podem {
	p := &podem{
		c:            c,
		backtrackLim: backtrackLim,
		good:         make([]logic.Value, c.NumGates()),
		faulty:       make([]logic.Value, c.NumGates()),
		assign:       make(sim.Pattern, len(c.PIs)),
		piIndex:      make(map[netlist.NetID]int, len(c.PIs)),
	}
	for i, pi := range c.PIs {
		p.piIndex[pi] = i
	}
	return p
}

// imply simulates both machines from the current PI assignment. The faulty
// machine forces the fault site to its stuck value.
func (p *podem) imply(f fault.StuckAt) {
	stuck := logic.Zero
	if f.Value1 {
		stuck = logic.One
	}
	for i := range p.good {
		p.good[i] = logic.X
		p.faulty[i] = logic.X
	}
	for i, pi := range p.c.PIs {
		p.good[pi] = p.assign[i]
		p.faulty[pi] = p.assign[i]
	}
	if f.Net < netlist.NetID(len(p.faulty)) {
		// The faulty value at the site is pinned regardless of drive.
		p.faulty[f.Net] = stuck
	}
	for _, id := range p.c.LevelOrder() {
		g := &p.c.Gates[id]
		if g.Type == netlist.Input {
			if id == f.Net {
				p.faulty[id] = stuck
			}
			continue
		}
		p.good[id] = sim.EvalScalarGate(g.Type, g.Fanin, func(n netlist.NetID) logic.Value { return p.good[n] })
		if id == f.Net {
			p.faulty[id] = stuck
		} else {
			p.faulty[id] = sim.EvalScalarGate(g.Type, g.Fanin, func(n netlist.NetID) logic.Value { return p.faulty[n] })
		}
	}
}

// detected reports whether any PO shows a determinate good/faulty mismatch.
func (p *podem) detected() bool {
	for _, po := range p.c.POs {
		if p.good[po].IsKnown() && p.faulty[po].IsKnown() && p.good[po] != p.faulty[po] {
			return true
		}
	}
	return false
}

// hasD reports whether net n carries an error (known, differing values).
func (p *podem) hasD(n netlist.NetID) bool {
	return p.good[n].IsKnown() && p.faulty[n].IsKnown() && p.good[n] != p.faulty[n]
}

// dFrontier returns gates with at least one D input and an X (in either
// machine) output.
func (p *podem) dFrontier() []netlist.NetID {
	var out []netlist.NetID
	for i := range p.c.Gates {
		g := &p.c.Gates[i]
		if g.Type == netlist.Input {
			continue
		}
		if p.good[g.ID].IsKnown() && p.faulty[g.ID].IsKnown() {
			continue
		}
		for _, f := range g.Fanin {
			if p.hasD(f) {
				out = append(out, g.ID)
				break
			}
		}
	}
	return out
}

// xPathToPO reports whether an X-valued path exists from any of the given
// gates to a primary output (the standard PODEM pruning check).
func (p *podem) xPathToPO(from []netlist.NetID) bool {
	if len(from) == 0 {
		return false
	}
	seen := make(map[netlist.NetID]bool, len(from))
	stack := append([]netlist.NetID(nil), from...)
	for _, n := range from {
		seen[n] = true
	}
	isX := func(n netlist.NetID) bool { return !p.good[n].IsKnown() || !p.faulty[n].IsKnown() }
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.c.IsPO(n) && isX(n) {
			return true
		}
		for _, rd := range p.c.Gates[n].Fanout {
			if !seen[rd] && isX(rd) {
				seen[rd] = true
				stack = append(stack, rd)
			}
		}
	}
	return false
}

// objective returns the next (net, value) objective, or ok=false when the
// current state cannot lead to detection (conflict → backtrack).
func (p *podem) objective(f fault.StuckAt) (netlist.NetID, logic.Value, bool) {
	stuck := logic.Zero
	if f.Value1 {
		stuck = logic.One
	}
	want := stuck.Not()
	// Fault activation first: good value at the site must become ¬stuck.
	switch p.good[f.Net] {
	case logic.X:
		return f.Net, want, true
	case stuck:
		return 0, logic.X, false // activation impossible under current assignment
	}
	// Activated: drive the error through the D-frontier.
	df := p.dFrontier()
	if len(df) == 0 || !p.xPathToPO(df) {
		return 0, logic.X, false
	}
	g := df[0]
	gate := &p.c.Gates[g]
	cv, hasCV := gate.Type.ControllingValue()
	for _, in := range gate.Fanin {
		if p.good[in] == logic.X || p.faulty[in] == logic.X {
			if hasCV {
				// Non-controlling value lets the D through.
				return in, logic.FromBool(!cv), true
			}
			// XOR-family: any determinate value sensitizes.
			return in, logic.Zero, true
		}
	}
	return 0, logic.X, false
}

// backtrace maps an internal objective to a primary-input assignment by
// walking backward through X-valued nets.
func (p *podem) backtrace(n netlist.NetID, v logic.Value) (netlist.NetID, logic.Value) {
	for {
		g := &p.c.Gates[n]
		if g.Type == netlist.Input {
			return n, v
		}
		if g.Type.Inverting() {
			v = v.Not()
		}
		// Choose an X-valued input to pursue.
		next := netlist.InvalidNet
		for _, in := range g.Fanin {
			if p.good[in] == logic.X {
				next = in
				break
			}
		}
		if next == netlist.InvalidNet {
			// All inputs determinate: objective is unachievable from here;
			// return an arbitrary PI in the cone so the caller's imply/check
			// loop discovers the conflict and backtracks.
			next = g.Fanin[0]
		}
		switch g.Type {
		case netlist.Xor, netlist.Xnor:
			// Required input value depends on the other inputs; when they
			// are not all known, an arbitrary choice is fine — PODEM will
			// correct through search.
			acc := logic.Zero
			known := true
			for _, in := range g.Fanin {
				if in == next {
					continue
				}
				if !p.good[in].IsKnown() {
					known = false
					break
				}
				acc = acc.Xor(p.good[in])
			}
			if known {
				v = v.Xor(acc)
			} else {
				v = logic.Zero
			}
		}
		n = next
	}
}

// generate attempts to produce a pattern detecting f. rng randomizes value
// ordering to decorrelate patterns across targets.
func (p *podem) generate(f fault.StuckAt, rng *rand.Rand) (sim.Pattern, podemStatus) {
	for i := range p.assign {
		p.assign[i] = logic.X
	}
	type decision struct {
		pi        int
		triedBoth bool
	}
	var stack []decision
	backtracks := 0

	for {
		p.imply(f)
		if p.detected() {
			return p.assign.Clone(), podemFound
		}
		obj, objV, ok := p.objective(f)
		if ok {
			piNet, v := p.backtrace(obj, objV)
			pi := p.piIndex[piNet]
			if p.assign[pi] != logic.X {
				// Backtrace landed on an assigned PI: treat as conflict.
				ok = false
			} else {
				p.assign[pi] = v
				stack = append(stack, decision{pi: pi})
				continue
			}
		}
		if !ok {
			// Backtrack: flip the most recent single-tried decision.
			flipped := false
			for len(stack) > 0 {
				top := &stack[len(stack)-1]
				if !top.triedBoth {
					p.assign[top.pi] = p.assign[top.pi].Not()
					top.triedBoth = true
					flipped = true
					backtracks++
					break
				}
				p.assign[top.pi] = logic.X
				stack = stack[:len(stack)-1]
			}
			if !flipped {
				return nil, podemUntestable
			}
			if backtracks > p.backtrackLim {
				return nil, podemAborted
			}
		}
	}
}
