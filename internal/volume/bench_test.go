package volume

import (
	"bytes"
	"context"
	"testing"

	"multidiag/internal/exp"
	"multidiag/internal/obs"
)

// benchStream memoizes one 90%-repeat synthetic stream per benchmark
// binary — the acceptance scenario (a tester floor where 9 of 10 devices
// repeat an already-seen syndrome). The b0300 workload is big enough
// that engine time dominates the pipeline overhead, as on a real floor.
var (
	benchWl          *exp.Workload
	benchStreamCache []byte
)

func benchStream(b *testing.B) (*exp.Workload, []byte) {
	b.Helper()
	if benchStreamCache == nil {
		wl, err := exp.NamedWorkload("b0300")
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := SynthStream(&buf, SynthConfig{
			Workload: "b0300",
			Circuit:  wl.Circuit,
			Patterns: wl.Patterns,
			N:        100,
			Repeat:   0.9,
			Seed:     42,
		}); err != nil {
			b.Fatal(err)
		}
		benchWl, benchStreamCache = wl, buf.Bytes()
	}
	return benchWl, benchStreamCache
}

func benchIngest(b *testing.B, cacheCap int) {
	wl, stream := benchStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ing, err := NewIngester(IngestConfig{
			Workload: "b0300",
			Circuit:  wl.Circuit,
			Patterns: wl.Patterns,
			Workers:  4,
			CacheCap: cacheCap,
			Trace:    obs.New("bench"),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ing.Run(context.Background(), NewRecordReader(bytes.NewReader(stream))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVolumeIngest is the no-dedupe baseline: every device runs the
// engine. Each op ingests the whole 100-device stream.
func BenchmarkVolumeIngest(b *testing.B) { benchIngest(b, -1) }

// BenchmarkVolumeIngestDeduped is the same stream through the
// fingerprint cache; the CI speedup gate asserts ≥ 5× over the baseline
// (90% of devices skip the engine, so the ceiling is ~10×).
func BenchmarkVolumeIngestDeduped(b *testing.B) { benchIngest(b, 0) }
