// Package volume is the volume-diagnosis pipeline: streaming ingestion of
// tester datalogs at fleet scale, syndrome-fingerprint deduplication in
// front of the core engine, and incremental fleet aggregation.
//
// The production scenario is yield learning: a tester floor emits millions
// of failing-device datalogs a day, and most are *repeats* of the same
// underlying defect signature. Re-diagnosing each from scratch wastes
// nearly all of the engine's capacity, so the pipeline:
//
//   - canonicalizes each device's observed failing behaviour into a stable
//     syndrome fingerprint (see FingerprintDatalog) — identical syndromes
//     fingerprint identically regardless of wire format, field order or
//     worker scheduling;
//
//   - answers repeated fingerprints from a bounded, sharded
//     fingerprint→report cache (see Cache) without touching the engine,
//     with singleflight claiming so concurrent first arrivals of one
//     syndrome trigger exactly one diagnosis (see Dedupe);
//
//   - folds every device — deduped or not — into an incremental fleet
//     aggregate (see Aggregator): per-site suspect Pareto tables,
//     defect-class trend series and dedupe-ratio stats, emitted as a
//     deterministic JSON summary consumable by qrec/mdtrend.
//
// Determinism contract: a cached report is the byte-identical JSON a
// direct core.Diagnose of the same datalog would render (the report core
// excludes every timing and join field — see Report), and the aggregate
// summary is a pure function of the input record multiset, so it is
// byte-identical across runs, worker counts and cache states (as long as
// the cache does not evict; eviction only costs extra engine runs, never
// changes an answer).
//
// cmd/mdvol is the streaming CLI (bounded-memory JSONL ingestion with
// blocking backpressure); internal/serve mounts the same pipeline as
// POST /v1/ingest behind its admission control (429 + Retry-After).
package volume

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"multidiag/internal/bitset"
	"multidiag/internal/netlist"
	"multidiag/internal/tester"
)

// Record is one datalog-stream entry (the mdvol/v1 JSONL wire format):
// one tested device's observed failing behaviour plus its fleet context.
// Exactly one of Fails (structured) or Datalog (the tester text format)
// carries the behaviour; a record with neither is a passing device.
type Record struct {
	// DeviceID identifies the tested die ("lot7-wafer3-x12y4"); it joins
	// per-device reports back to the stream and never affects dedupe.
	DeviceID string `json:"device_id"`
	// Site is the fleet grouping key (tester, fab line, wafer region…);
	// empty lands in the summary's "" site row.
	Site string `json:"site,omitempty"`
	// Workload names the registered (circuit, test set); optional when the
	// consumer is bound to a single workload (mdvol, or ?workload= on the
	// ingest endpoint).
	Workload string `json:"workload,omitempty"`
	// TS is an optional test timestamp (Unix seconds). When every record
	// carries one, trend buckets are time-based; otherwise they follow the
	// stream ordinal. Mixing the two within one stream is rejected.
	TS int64 `json:"ts,omitempty"`
	// Fails lists the failing (pattern, POs) observations.
	Fails []PatternFails `json:"fails,omitempty"`
	// Datalog is the tester text serialization, the alternative to Fails.
	Datalog string `json:"datalog,omitempty"`
}

// PatternFails is one failing pattern and its failing primary outputs
// (indices into the circuit's PO list).
type PatternFails struct {
	Pattern int   `json:"pattern"`
	POs     []int `json:"pos"`
}

// BuildDatalog materializes the record's behaviour as a tester datalog
// shaped for the workload, validating bounds so a malformed record fails
// parsing rather than the engine. Patterns with no failing POs are
// normalized away (they are passing patterns), so structurally different
// encodings of one syndrome build identical datalogs.
func (r *Record) BuildDatalog(c *netlist.Circuit, numPatterns int) (*tester.Datalog, error) {
	if r.Datalog != "" && len(r.Fails) > 0 {
		return nil, fmt.Errorf("record carries both datalog text and structured fails")
	}
	if r.Datalog != "" {
		log, err := tester.ReadDatalog(strings.NewReader(r.Datalog))
		if err != nil {
			return nil, fmt.Errorf("datalog: %w", err)
		}
		if log.NumPatterns != numPatterns {
			return nil, fmt.Errorf("datalog has %d patterns, workload has %d", log.NumPatterns, numPatterns)
		}
		if log.NumPOs != len(c.POs) {
			return nil, fmt.Errorf("datalog has %d POs, workload has %d", log.NumPOs, len(c.POs))
		}
		for p, set := range log.Fails {
			if set.Empty() {
				delete(log.Fails, p)
			}
		}
		return log, nil
	}
	log := &tester.Datalog{
		CircuitName: c.Name,
		NumPatterns: numPatterns,
		NumPOs:      len(c.POs),
		Fails:       make(map[int]bitset.Set),
	}
	for _, pf := range r.Fails {
		if pf.Pattern < 0 || pf.Pattern >= numPatterns {
			return nil, fmt.Errorf("failing pattern %d out of range [0,%d)", pf.Pattern, numPatterns)
		}
		set, ok := log.Fails[pf.Pattern]
		if !ok {
			set = bitset.New(len(c.POs))
			log.Fails[pf.Pattern] = set
		}
		for _, po := range pf.POs {
			if po < 0 || po >= len(c.POs) {
				return nil, fmt.Errorf("pattern %d: failing PO %d out of range [0,%d)", pf.Pattern, po, len(c.POs))
			}
			set.Add(po)
		}
	}
	for p, set := range log.Fails {
		if set.Empty() {
			delete(log.Fails, p)
		}
	}
	return log, nil
}

// RecordReader scans a JSONL datalog stream one record at a time, so a
// million-device stream never materializes in memory. Blank lines and
// #-comments are skipped; errors carry the line number.
type RecordReader struct {
	sc   *bufio.Scanner
	line int
}

// NewRecordReader wraps r (the caller handles decompression; cmd/mdvol
// transparently ungzips .gz paths). Lines up to 8 MiB are accepted —
// datalogs of the largest built-in workloads are far below this.
func NewRecordReader(r io.Reader) *RecordReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	return &RecordReader{sc: sc}
}

// Next returns the next record, its raw byte length (the admission-byte
// unit on the serving path) and io.EOF at end of stream.
func (rr *RecordReader) Next() (*Record, int, error) {
	for rr.sc.Scan() {
		rr.line++
		text := strings.TrimSpace(rr.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, 0, fmt.Errorf("volume: line %d: %v", rr.line, err)
		}
		return &rec, len(text), nil
	}
	if err := rr.sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("volume: line %d: %w", rr.line, err)
	}
	return nil, 0, io.EOF
}

// Line reports the last line number consumed (for error context).
func (rr *RecordReader) Line() int { return rr.line }
