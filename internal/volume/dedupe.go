package volume

import (
	"context"
	"sync"

	"multidiag/internal/obs"
	"multidiag/internal/tester"
	"multidiag/internal/trace"
)

// DiagFunc produces the deterministic report for one datalog. The two
// pipeline mounts supply different engines behind it: cmd/mdvol calls
// core.Diagnose on its worker pool (sharing one cone cache via
// fsim.Shared), while internal/serve enqueues into the workload's
// admission queue so ingest misses coalesce with interactive traffic in
// the micro-batcher.
type DiagFunc func(ctx context.Context, log *tester.Datalog) (*Report, error)

// Dedupe is the fingerprint front of the engine: fingerprint → cache
// probe → singleflight claim → diagnose. Concurrent first arrivals of
// one syndrome trigger exactly one DiagFunc call; everyone else gets the
// leader's published entry. Safe for concurrent use.
type Dedupe struct {
	workload string
	cache    *Cache
	diag     DiagFunc

	mu       sync.Mutex
	inflight map[Fingerprint]*flight

	statDeduped   *obs.Counter
	statDiagnosed *obs.Counter
	statCoalesced *obs.Counter
	gaugeEntries  *obs.Gauge
}

// flight is one in-progress diagnosis other arrivals wait on.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// NewDedupe wires a dedupe front for one workload. cache may be nil
// (every device diagnoses — the no-dedupe baseline the benchmarks
// compare against); diag must not be.
func NewDedupe(workload string, cache *Cache, diag DiagFunc) *Dedupe {
	return &Dedupe{
		workload: workload,
		cache:    cache,
		diag:     diag,
		inflight: make(map[Fingerprint]*flight),
	}
}

// Observe wires the dedupe counters into r: volume.deduped (devices
// answered without a DiagFunc call), volume.diagnosed (engine runs),
// volume.coalesced (devices that waited on another arrival's run) and
// the volume.cache_entries gauge. Call once before concurrent use; also
// attaches the cache's own counters.
func (d *Dedupe) Observe(r *obs.Registry) {
	d.statDeduped = r.Counter("volume.deduped")
	d.statDiagnosed = r.Counter("volume.diagnosed")
	d.statCoalesced = r.Counter("volume.coalesced")
	d.gaugeEntries = r.Gauge("volume.cache_entries")
	d.cache.Observe(r)
}

// Workload names the workload this dedupe front is bound to.
func (d *Dedupe) Workload() string { return d.workload }

// Cache returns the underlying cache (nil when dedupe is disabled).
func (d *Dedupe) Cache() *Cache { return d.cache }

// Process resolves one datalog to its report entry: a cache hit returns
// the published entry without touching the engine, a miss claims the
// fingerprint (or waits on whoever did) and diagnoses once. The returned
// flag reports whether this device was answered without its own engine
// run (hit or coalesced) — the per-device dedupe signal for tracing and
// stats; the entry is identical either way.
func (d *Dedupe) Process(ctx context.Context, log *tester.Datalog) (*Entry, bool, error) {
	fp := FingerprintDatalog(d.workload, log)
	sp := trace.FromContext(ctx).Start("volume.dedupe")
	sp.SetStr("fingerprint", fp.String()[:16])
	if e, ok := d.cache.Get(fp); ok {
		d.statDeduped.Inc()
		sp.SetInt("cache_hit", 1)
		sp.End()
		return e, true, nil
	}
	sp.SetInt("cache_hit", 0)
	defer sp.End()

	// No cache: every device runs the engine (the baseline path).
	if d.cache == nil {
		e, err := d.runDiag(ctx, fp, log)
		return e, false, err
	}

	for {
		d.mu.Lock()
		if fl, ok := d.inflight[fp]; ok {
			d.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if fl.err != nil {
				// The leader failed; its flight is already retired, so loop
				// and re-claim — this arrival's context may still be live
				// even if the leader's was canceled.
				if ctx.Err() != nil {
					return nil, false, fl.err
				}
				continue
			}
			d.statDeduped.Inc()
			d.statCoalesced.Inc()
			sp.SetInt("coalesced", 1)
			return fl.entry, true, nil
		}
		// Double-check under the claim lock: the previous leader may have
		// published between our Get miss and this claim.
		if e, ok := d.cache.peek(fp); ok {
			d.mu.Unlock()
			d.statDeduped.Inc()
			return e, true, nil
		}
		fl := &flight{done: make(chan struct{})}
		d.inflight[fp] = fl
		d.mu.Unlock()

		e, err := d.runDiag(ctx, fp, log)
		fl.entry, fl.err = e, err
		d.mu.Lock()
		delete(d.inflight, fp)
		d.mu.Unlock()
		close(fl.done)
		return e, false, err
	}
}

// runDiag executes the engine once and publishes the entry.
func (d *Dedupe) runDiag(ctx context.Context, fp Fingerprint, log *tester.Datalog) (*Entry, error) {
	rep, err := d.diag(ctx, log)
	if err != nil {
		return nil, err
	}
	e, err := NewEntry(fp, rep)
	if err != nil {
		return nil, err
	}
	d.statDiagnosed.Inc()
	d.cache.Put(e)
	d.gaugeEntries.Set(int64(d.cache.Len()))
	return e, nil
}
