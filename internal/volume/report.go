package volume

import (
	"encoding/json"
	"strings"

	"multidiag/internal/core"
	"multidiag/internal/netlist"
	"multidiag/internal/tester"
)

// Report is the deterministic core of a diagnosis report: every field is
// a pure function of (workload, circuit, patterns, syndrome), with no
// timing, queueing or request-join content. That purity is what makes
// fingerprint dedupe sound — a cached Report serves verbatim for every
// later device with the same syndrome — and it is what serve.Report
// embeds, so the served wire JSON leads with exactly these fields and a
// cache hit is byte-identical to a fresh diagnosis.
type Report struct {
	Workload             string            `json:"workload"`
	FailingPatterns      int               `json:"failing_patterns"`
	EvidenceBits         int               `json:"evidence_bits"`
	CandidatesExtracted  int               `json:"candidates_extracted"`
	UnexplainedBits      int               `json:"unexplained_bits"`
	Consistent           bool              `json:"consistent"`
	InconsistentPatterns []int             `json:"inconsistent_patterns,omitempty"`
	Multiplet            []CandidateReport `json:"multiplet"`
	Ranked               []CandidateReport `json:"ranked,omitempty"`
}

// CandidateReport is one suspect in wire form.
type CandidateReport struct {
	// Name is the representative site, e.g. "G16 sa0".
	Name string `json:"name"`
	TFSF int    `json:"tfsf"`
	TPSF int    `json:"tpsf"`
	// Covers lists the evidence-bit indices this candidate predicts.
	Covers     []int         `json:"covers,omitempty"`
	Equivalent []string      `json:"equivalent,omitempty"`
	Models     []ModelReport `json:"models,omitempty"`
}

// ModelReport is one fault-model assignment in wire form.
type ModelReport struct {
	Kind           string `json:"kind"`
	Aggressor      string `json:"aggressor,omitempty"`
	Mispredictions int    `json:"mispredictions"`
}

// BuildReport converts a core result into the deterministic wire form.
// top bounds the ranked-candidate tail.
func BuildReport(workload string, c *netlist.Circuit, log *tester.Datalog, res *core.Result, top int) *Report {
	rep := &Report{
		Workload:             workload,
		FailingPatterns:      len(log.FailingPatterns()),
		EvidenceBits:         len(res.Evidence),
		CandidatesExtracted:  res.CandidatesExtracted,
		UnexplainedBits:      res.UnexplainedBits,
		Consistent:           res.Consistent,
		InconsistentPatterns: res.InconsistentPatterns,
		Multiplet:            make([]CandidateReport, 0, len(res.Multiplet)),
	}
	for _, cd := range res.Multiplet {
		rep.Multiplet = append(rep.Multiplet, BuildCandidate(c, cd))
	}
	for i, cd := range res.Ranked {
		if i >= top {
			break
		}
		rep.Ranked = append(rep.Ranked, BuildCandidate(c, cd))
	}
	return rep
}

// BuildCandidate converts one core candidate into wire form.
func BuildCandidate(c *netlist.Circuit, cd *core.Candidate) CandidateReport {
	cr := CandidateReport{
		Name:   cd.Name(c),
		TFSF:   cd.TFSF,
		TPSF:   cd.TPSF,
		Covers: cd.Covered.Members(),
	}
	for _, e := range cd.Equivalent {
		cr.Equivalent = append(cr.Equivalent, e.Name(c))
	}
	for _, m := range cd.Models {
		mr := ModelReport{Kind: m.Kind.String(), Mispredictions: m.Mispredictions}
		if m.Kind == core.BridgeModel {
			mr.Aggressor = c.NameOf(m.Aggressor)
		}
		cr.Models = append(cr.Models, mr)
	}
	return cr
}

// Encode renders the report as its canonical single-line JSON — the byte
// string the dedupe invariant is stated over. encoding/json emits struct
// fields in declaration order with no map content anywhere in Report, so
// the encoding is deterministic.
func (r *Report) Encode() ([]byte, error) {
	return json.Marshal(r)
}

// DefectClass buckets the report for trend aggregation by the top
// multiplet member: "sa0"/"sa1" for a stuck-at/open site (polarity from
// the representative name), "bridge" for a discovered aggressor pair,
// "none" for a clean device, "unexplained" when diagnosis found no
// candidates for a failing one. Candidate model lists are
// mispredictions-sorted by the engine, so the first model is the best
// fit and the class is deterministic.
func (r *Report) DefectClass() string {
	if r.FailingPatterns == 0 {
		return "none"
	}
	if len(r.Multiplet) == 0 {
		return "unexplained"
	}
	top := r.Multiplet[0]
	if len(top.Models) == 0 {
		return "unmodeled"
	}
	kind := top.Models[0].Kind
	if kind == "bridge" {
		return kind
	}
	// "G16 sa0" → "sa0"; unparseable names fall back to the model kind.
	if i := strings.LastIndexByte(top.Name, ' '); i >= 0 {
		if pol := top.Name[i+1:]; pol == "sa0" || pol == "sa1" {
			return pol
		}
	}
	return kind
}
