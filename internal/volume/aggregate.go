package volume

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// SummarySchema versions the aggregate summary JSON.
const SummarySchema = "mdvol/summary/v1"

// DefaultParetoTop bounds each site's Pareto table.
const DefaultParetoTop = 10

// Aggregator incrementally folds deduped per-device reports into the
// fleet aggregate: per-site suspect Pareto tables, defect-class trend
// series and dedupe-ratio stats. Every fold is commutative (counter
// increments and set inserts only), so the emitted Summary is a pure
// function of the folded multiset — byte-identical across runs, worker
// counts, fold orders and cache states. Uniqueness is counted against
// the aggregator's own seen-fingerprint set, never the cache, so
// eviction cannot skew the dedupe ratio.
//
// All methods are safe for concurrent use.
type Aggregator struct {
	workload  string
	paretoTop int

	mu      sync.Mutex
	devices int64
	failing int64
	seen    map[Fingerprint]struct{}
	sites   map[string]*siteAgg
	trend   map[int64]map[string]int64
}

// siteAgg is one site's running tallies.
type siteAgg struct {
	devices int64
	failing int64
	pareto  map[string]int64
	classes map[string]int64
}

// NewAggregator creates an empty aggregate for one workload. paretoTop
// bounds each site's Pareto table (0 selects DefaultParetoTop).
func NewAggregator(workload string, paretoTop int) *Aggregator {
	if paretoTop <= 0 {
		paretoTop = DefaultParetoTop
	}
	return &Aggregator{
		workload:  workload,
		paretoTop: paretoTop,
		seen:      make(map[Fingerprint]struct{}),
		sites:     make(map[string]*siteAgg),
		trend:     make(map[int64]map[string]int64),
	}
}

// Add folds one device: its site, its trend bucket (computed by the
// caller from the stream ordinal or timestamp) and its deduped report
// entry. The same entry pointer is folded once per device carrying that
// syndrome — duplicates count as devices, which is the point of fleet
// aggregation.
func (a *Aggregator) Add(site string, bucket int64, e *Entry) {
	failing := e.Report.FailingPatterns > 0
	a.mu.Lock()
	defer a.mu.Unlock()
	a.devices++
	if failing {
		a.failing++
	}
	a.seen[e.Fingerprint] = struct{}{}
	sa, ok := a.sites[site]
	if !ok {
		sa = &siteAgg{pareto: make(map[string]int64), classes: make(map[string]int64)}
		a.sites[site] = sa
	}
	sa.devices++
	if failing {
		sa.failing++
	}
	sa.classes[e.Class]++
	for _, cd := range e.Report.Multiplet {
		sa.pareto[cd.Name]++
	}
	tb, ok := a.trend[bucket]
	if !ok {
		tb = make(map[string]int64)
		a.trend[bucket] = tb
	}
	tb[e.Class]++
}

// Devices returns the number of devices folded so far.
func (a *Aggregator) Devices() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.devices
}

// Unique returns the number of distinct syndromes folded so far.
func (a *Aggregator) Unique() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.seen))
}

// Summary is the aggregate in wire form. All slices carry a total order
// (explicit sort keys, ties broken by name/bucket), so the JSON encoding
// is deterministic.
type Summary struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload"`
	// Devices counts every folded device; Failing those with at least one
	// failing pattern; UniqueSyndromes the distinct fingerprints.
	Devices         int64 `json:"devices"`
	Failing         int64 `json:"failing"`
	UniqueSyndromes int64 `json:"unique_syndromes"`
	// DedupeRatio is repeats/devices, rounded to 3 decimals (0 when no
	// devices): the fraction of the stream answered without the engine
	// under an unbounded cache.
	DedupeRatio float64       `json:"dedupe_ratio"`
	Classes     []ClassCount  `json:"classes,omitempty"`
	Sites       []SiteSummary `json:"sites,omitempty"`
	Trend       []TrendBucket `json:"trend,omitempty"`
}

// SiteSummary is one site's row.
type SiteSummary struct {
	Site    string       `json:"site"`
	Devices int64        `json:"devices"`
	Failing int64        `json:"failing"`
	Pareto  []ParetoRow  `json:"pareto,omitempty"`
	Classes []ClassCount `json:"classes,omitempty"`
}

// ParetoRow is one suspect site in a Pareto table: how many devices'
// multiplets named it.
type ParetoRow struct {
	Suspect string `json:"suspect"`
	Devices int64  `json:"devices"`
}

// ClassCount is one defect class's device count.
type ClassCount struct {
	Class   string `json:"class"`
	Devices int64  `json:"devices"`
}

// TrendBucket is one trend-series point: defect-class counts within one
// ordinal (or time) bucket.
type TrendBucket struct {
	Bucket  int64        `json:"bucket"`
	Classes []ClassCount `json:"classes"`
}

// Summary snapshots the aggregate in deterministic order: sites by name,
// Pareto rows by count desc then suspect name, classes by count desc
// then class name, trend buckets ascending.
func (a *Aggregator) Summary() *Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := &Summary{
		Schema:          SummarySchema,
		Workload:        a.workload,
		Devices:         a.devices,
		Failing:         a.failing,
		UniqueSyndromes: int64(len(a.seen)),
	}
	if a.devices > 0 {
		s.DedupeRatio = round3(float64(a.devices-int64(len(a.seen))) / float64(a.devices))
	}
	global := make(map[string]int64)
	siteNames := make([]string, 0, len(a.sites))
	for name := range a.sites {
		siteNames = append(siteNames, name)
	}
	sort.Strings(siteNames)
	for _, name := range siteNames {
		sa := a.sites[name]
		row := SiteSummary{
			Site:    name,
			Devices: sa.devices,
			Failing: sa.failing,
			Pareto:  sortCounts(sa.pareto, a.paretoTop, func(k string, v int64) ParetoRow { return ParetoRow{Suspect: k, Devices: v} }),
			Classes: sortCounts(sa.classes, 0, func(k string, v int64) ClassCount { return ClassCount{Class: k, Devices: v} }),
		}
		for class, n := range sa.classes {
			global[class] += n
		}
		s.Sites = append(s.Sites, row)
	}
	s.Classes = sortCounts(global, 0, func(k string, v int64) ClassCount { return ClassCount{Class: k, Devices: v} })
	buckets := make([]int64, 0, len(a.trend))
	for b := range a.trend {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	for _, b := range buckets {
		s.Trend = append(s.Trend, TrendBucket{
			Bucket:  b,
			Classes: sortCounts(a.trend[b], 0, func(k string, v int64) ClassCount { return ClassCount{Class: k, Devices: v} }),
		})
	}
	return s
}

// sortCounts renders a count map as rows ordered by count descending,
// ties by key ascending, keeping the top rows (0 = all).
func sortCounts[T any](m map[string]int64, top int, mk func(string, int64) T) []T {
	type kv struct {
		k string
		v int64
	}
	rows := make([]kv, 0, len(m))
	for k, v := range m {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].k < rows[j].k
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	out := make([]T, 0, len(rows))
	for _, r := range rows {
		out = append(out, mk(r.k, r.v))
	}
	return out
}

// round3 rounds to 3 decimals so float formatting stays stable across
// platforms (the qrec convention).
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// WriteSummary emits the summary as indented JSON with a trailing
// newline — the shared emitter for mdvol -summary-out and the serve
// GET /v1/volume/summary endpoint, so the two sides diff cleanly.
func WriteSummary(w io.Writer, s *Summary) error {
	b, err := encodeIndent(s)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// encodeIndent is json.MarshalIndent plus the trailing newline.
func encodeIndent(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("volume: encode summary: %w", err)
	}
	return append(b, '\n'), nil
}
