package volume

import (
	"sync"
	"testing"

	"multidiag/internal/bitset"
	"multidiag/internal/netlist"
	"multidiag/internal/tester"
)

// fixedLog builds the reference syndrome used by the golden tests:
// pattern 1 fails PO 0, pattern 3 fails POs 0 and 1, over an 8-pattern
// 2-PO test set.
func fixedLog() *tester.Datalog {
	log := &tester.Datalog{
		CircuitName: "c17",
		NumPatterns: 8,
		NumPOs:      2,
		Fails:       map[int]bitset.Set{},
	}
	s1 := bitset.New(2)
	s1.Add(0)
	s3 := bitset.New(2)
	s3.Add(0)
	s3.Add(1)
	log.Fails[1] = s1
	log.Fails[3] = s3
	return log
}

// TestFingerprintGolden pins the canonical encoding: these hex strings
// may only change together with a fingerprintDomain bump, because a
// changed encoding under the same domain would let caches populated by
// an old binary serve reports for new-binary fingerprints.
func TestFingerprintGolden(t *testing.T) {
	log := fixedLog()
	const want = "da30dc1e71fa67939625aa0c618e159b17fa40427712cb3f371c24a5c0b3d766"
	if got := FingerprintDatalog("c17", log).String(); got != want {
		t.Fatalf("fingerprint = %s, want %s (encoding changed without a domain bump?)", got, want)
	}
	log.Truncated = true
	log.TruncatedAfter = 3
	const wantTrunc = "5696932025954c488740b5b2f6dcb4f9ed053125a417c3d1d5acbadfbb3c85b4"
	if got := FingerprintDatalog("c17", log).String(); got != wantTrunc {
		t.Fatalf("truncated fingerprint = %s, want %s", got, wantTrunc)
	}
}

// TestFingerprintEncodingInsensitive pins that wire format never leaks
// into the hash: a structured-fails record and a text-datalog record of
// one syndrome — in any field order — build the same fingerprint.
func TestFingerprintEncodingInsensitive(t *testing.T) {
	c := &netlist.Circuit{Name: "c17"}
	c.POs = []netlist.NetID{0, 1} // only len(POs) matters to BuildDatalog bounds
	structured := &Record{Fails: []PatternFails{
		{Pattern: 3, POs: []int{1, 0}},
		{Pattern: 1, POs: []int{0}},
		{Pattern: 5, POs: nil}, // passing pattern, normalized away
	}}
	logA, err := structured.BuildDatalog(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := FingerprintDatalog("c17", fixedLog())
	if got := FingerprintDatalog("c17", logA); got != want {
		t.Fatalf("structured record fingerprints %s, direct datalog %s", got, want)
	}
}

// TestFingerprintSensitivity pins that every syndrome-relevant dimension
// feeds the hash: workload name, test-set size, PO count, the fail set
// and the truncation point all separate fingerprints.
func TestFingerprintSensitivity(t *testing.T) {
	base := FingerprintDatalog("c17", fixedLog())
	seen := map[Fingerprint]string{base: "base"}
	note := func(name string, f Fingerprint) {
		if prev, dup := seen[f]; dup {
			t.Fatalf("%s collides with %s: %s", name, prev, f)
		}
		seen[f] = name
	}
	note("workload", FingerprintDatalog("c18", fixedLog()))
	l := fixedLog()
	l.NumPatterns = 9
	note("numPatterns", FingerprintDatalog("c17", l))
	l = fixedLog()
	l.NumPOs = 3
	note("numPOs", FingerprintDatalog("c17", l))
	l = fixedLog()
	l.Fails[1].Add(1)
	note("failSet", FingerprintDatalog("c17", l))
	l = fixedLog()
	l.Truncated = true
	l.TruncatedAfter = 2
	note("truncated", FingerprintDatalog("c17", l))
	l = fixedLog()
	l.Truncated = true
	l.TruncatedAfter = 5
	note("truncatedAfter", FingerprintDatalog("c17", l))
}

// TestFingerprintConcurrentStability pins run-to-run and goroutine-to-
// goroutine stability: hashing one syndrome from many goroutines always
// lands on the serial value (map iteration order must not leak in).
func TestFingerprintConcurrentStability(t *testing.T) {
	want := FingerprintDatalog("c17", fixedLog())
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := FingerprintDatalog("c17", fixedLog()); got != want {
				errs <- got.String()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for got := range errs {
		t.Fatalf("concurrent fingerprint %s != serial %s", got, want)
	}
}
