package volume

import (
	"encoding/binary"
	"sync"

	"multidiag/internal/obs"
)

// Entry is one cached diagnosis: the deterministic report plus its
// canonical JSON encoding, keyed by the syndrome fingerprint. Entries are
// immutable once published — hits hand out the same pointer.
type Entry struct {
	Fingerprint Fingerprint
	Report      *Report
	// JSON is Report.Encode(), memoized so cache hits and per-device
	// report emission never re-marshal.
	JSON []byte
	// Class is Report.DefectClass(), memoized for the aggregator.
	Class string
}

// NewEntry builds an immutable cache entry from a built report.
func NewEntry(fp Fingerprint, rep *Report) (*Entry, error) {
	js, err := rep.Encode()
	if err != nil {
		return nil, err
	}
	return &Entry{Fingerprint: fp, Report: rep, JSON: js, Class: rep.DefectClass()}, nil
}

// cacheShards is the shard count (power of two; shard picked from the
// fingerprint's leading bytes, which SHA-256 makes uniform).
const cacheShards = 32

// defaultCacheCap is the default total entry bound. A fleet day rarely
// carries more than a few thousand distinct syndromes per workload;
// 16k entries of a few KB each keeps the cache well under typical RSS
// budgets while making eviction rare.
const defaultCacheCap = 1 << 14

// cacheShard is one lock domain. Entries are evicted FIFO by insertion
// order once the shard exceeds its capacity — the same deterministic
// discipline as fsim's cone cache, and safe here for the same reason:
// a cached value is a pure function of its key, so eviction can only
// cost a re-diagnosis, never change an answer.
type cacheShard struct {
	mu    sync.Mutex
	m     map[Fingerprint]*Entry
	order []Fingerprint
	head  int
}

// Cache is the bounded, sharded fingerprint→report cache sitting in
// front of the engine. All methods are safe for concurrent use; a nil
// *Cache is a valid always-miss receiver (dedupe disabled).
type Cache struct {
	shards   [cacheShards]cacheShard
	perShard int

	statHits      *obs.Counter
	statMisses    *obs.Counter
	statEvictions *obs.Counter
}

// NewCache creates a cache bounded to roughly capacity entries in total
// (0 selects the default of 16k entries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[Fingerprint]*Entry)
	}
	return c
}

// Observe wires the cache's hit/miss/eviction counters into r (nil r
// detaches). Call once, before sharing the cache with concurrent
// ingesters.
func (c *Cache) Observe(r *obs.Registry) {
	if c == nil {
		return
	}
	c.statHits = r.Counter("volume.cache_hits")
	c.statMisses = r.Counter("volume.cache_misses")
	c.statEvictions = r.Counter("volume.cache_evictions")
}

// shardOf picks the fingerprint's shard.
func (c *Cache) shardOf(fp Fingerprint) *cacheShard {
	return &c.shards[binary.BigEndian.Uint64(fp[:8])%cacheShards]
}

// Get returns the cached entry for fp, counting the probe outcome.
func (c *Cache) Get(fp Fingerprint) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardOf(fp)
	s.mu.Lock()
	e, ok := s.m[fp]
	s.mu.Unlock()
	if ok {
		c.statHits.Inc()
	} else {
		c.statMisses.Inc()
	}
	return e, ok
}

// peek is Get without the counters — the claim-time double check
// re-probes a fingerprint whose miss was already counted, and must not
// count it twice.
func (c *Cache) peek(fp Fingerprint) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardOf(fp)
	s.mu.Lock()
	e, ok := s.m[fp]
	s.mu.Unlock()
	return e, ok
}

// Put publishes an entry, evicting the shard's oldest when full. Storing
// an existing fingerprint is a no-op (first writer wins; entries for one
// fingerprint are identical by the determinism contract).
func (c *Cache) Put(e *Entry) {
	if c == nil {
		return
	}
	s := c.shardOf(e.Fingerprint)
	s.mu.Lock()
	if _, ok := s.m[e.Fingerprint]; ok {
		s.mu.Unlock()
		return
	}
	if len(s.m) >= c.perShard {
		old := s.order[s.head]
		delete(s.m, old)
		s.order[s.head] = e.Fingerprint
		s.head = (s.head + 1) % len(s.order)
		s.m[e.Fingerprint] = e
		s.mu.Unlock()
		c.statEvictions.Inc()
		return
	}
	s.order = append(s.order, e.Fingerprint)
	s.m[e.Fingerprint] = e
	s.mu.Unlock()
}

// Len returns the current number of cached entries (for tests and the
// volume.cache_entries gauge).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
