package volume

import (
	"fmt"
	"testing"
)

// testEntry fabricates a distinct entry for a synthetic fingerprint.
func testEntry(tag byte) *Entry {
	var fp Fingerprint
	fp[0] = tag
	fp[31] = tag ^ 0xFF
	return &Entry{Fingerprint: fp, JSON: []byte{tag}, Class: fmt.Sprintf("class-%d", tag)}
}

func TestNilCacheAlwaysMisses(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(Fingerprint{}); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(testEntry(1)) // must not panic
	if c.Len() != 0 {
		t.Fatal("nil cache has length")
	}
}

func TestCacheFirstWriterWins(t *testing.T) {
	c := NewCache(64)
	first := testEntry(7)
	c.Put(first)
	second := testEntry(7)
	c.Put(second)
	got, ok := c.Get(first.Fingerprint)
	if !ok || got != first {
		t.Fatal("second Put replaced the first entry; entries must be immutable once published")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Put, want 1", c.Len())
	}
}

// sameShardFingerprints returns n distinct fingerprints that all land in
// one shard (equal leading 8 bytes select the shard; later bytes differ).
func sameShardFingerprints(n int) []Fingerprint {
	out := make([]Fingerprint, n)
	for i := range out {
		out[i][31] = byte(i + 1)
	}
	return out
}

// TestCacheShardCollisionKeepsDistinctEntries pins collision behaviour:
// distinct syndromes whose fingerprints share a shard still resolve to
// their own distinct reports — sharding is a lock-granularity choice,
// never an identity one.
func TestCacheShardCollisionKeepsDistinctEntries(t *testing.T) {
	c := NewCache(0)
	fps := sameShardFingerprints(8)
	s := c.shardOf(fps[0])
	for _, fp := range fps[1:] {
		if c.shardOf(fp) != s {
			t.Fatal("test fingerprints are not shard-colliding")
		}
	}
	for i, fp := range fps {
		c.Put(&Entry{Fingerprint: fp, JSON: []byte{byte(i)}})
	}
	for i, fp := range fps {
		e, ok := c.Get(fp)
		if !ok {
			t.Fatalf("colliding entry %d evicted below capacity", i)
		}
		if len(e.JSON) != 1 || e.JSON[0] != byte(i) {
			t.Fatalf("colliding entry %d resolved to another syndrome's report", i)
		}
	}
}

// TestCacheFIFOEviction pins the eviction discipline: a full shard drops
// its oldest entry, and only eviction ever removes one.
func TestCacheFIFOEviction(t *testing.T) {
	c := NewCache(cacheShards) // one entry per shard
	fps := sameShardFingerprints(3)
	c.Put(&Entry{Fingerprint: fps[0]})
	c.Put(&Entry{Fingerprint: fps[1]}) // evicts fps[0]
	if _, ok := c.peek(fps[0]); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.peek(fps[1]); !ok {
		t.Fatal("newest entry missing after eviction")
	}
	c.Put(&Entry{Fingerprint: fps[2]}) // evicts fps[1]
	if _, ok := c.peek(fps[1]); ok {
		t.Fatal("FIFO order violated: second entry outlived its turn")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after per-shard eviction, want 1", c.Len())
	}
}
