package volume

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"multidiag/internal/core"
	"multidiag/internal/fsim"
	"multidiag/internal/netlist"
	"multidiag/internal/obs"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// DefaultTrendBucket is the trend-series granularity: devices per bucket
// in ordinal mode, seconds per bucket in timestamp mode.
const DefaultTrendBucket = 100

// IngestConfig tunes a streaming ingester (the cmd/mdvol engine mount).
type IngestConfig struct {
	// Workload names the (circuit, test set); records naming a different
	// workload are rejected.
	Workload string
	Circuit  *netlist.Circuit
	Patterns []sim.Pattern
	// Workers is the total worker budget (the -j flag): that many devices
	// diagnose concurrently, sharing one cone cache. 0 = GOMAXPROCS.
	Workers int
	// CacheCap bounds the fingerprint cache (0 = the 16k default; < 0
	// disables dedupe entirely — the benchmark baseline).
	CacheCap int
	// Top bounds each report's ranked-candidate tail (default 10).
	Top int
	// TrendBucket is the trend granularity (default DefaultTrendBucket):
	// devices per bucket when records carry no timestamps, seconds per
	// bucket when they all do.
	TrendBucket int
	// ParetoTop bounds each site's Pareto table (default 10).
	ParetoTop int
	// Trace supplies the metrics registry (nil: obs.Global()).
	Trace *obs.Trace
	// Reports, when set, receives one JSON line per ingested device — in
	// input order, each embedding the canonical report — so downstream
	// tooling sees exactly what per-device diagnosis would have produced.
	Reports io.Writer
}

// DeviceReport is one per-device output line. It deliberately excludes
// cache-outcome fields: whether a given device hit the cache depends on
// arrival interleaving, while this line must be byte-identical across
// runs and worker counts.
type DeviceReport struct {
	DeviceID    string          `json:"device_id"`
	Site        string          `json:"site,omitempty"`
	Fingerprint string          `json:"fingerprint"`
	Report      json.RawMessage `json:"report"`
}

// Ingester drives the bounded-memory streaming pipeline: one reader
// (the Run caller) assigns ordinals and applies backpressure by blocking
// on the task channel, a worker pool resolves syndromes through the
// dedupe front, and one sink re-orders completed devices back to input
// order for the report stream. Memory in flight is bounded by the
// channel capacities regardless of stream length.
type Ingester struct {
	cfg    IngestConfig
	ded    *Dedupe
	agg    *Aggregator
	shared fsim.Shared
	sims   chan *fsim.FaultSim
	tr     *obs.Trace

	statRecords *obs.Counter
	statBytes   *obs.Counter
}

// NewIngester validates the workload pair and wires the pipeline.
func NewIngester(cfg IngestConfig) (*Ingester, error) {
	if cfg.Workload == "" || cfg.Circuit == nil || len(cfg.Patterns) == 0 {
		return nil, fmt.Errorf("volume: workload name, circuit and patterns are required")
	}
	if cfg.Top <= 0 {
		cfg.Top = 10
	}
	if cfg.TrendBucket <= 0 {
		cfg.TrendBucket = DefaultTrendBucket
	}
	cfg.Workers = fsim.Workers(cfg.Workers)
	tr := cfg.Trace
	if tr == nil {
		tr = obs.Global()
	}
	reg := tr.Registry()
	// The whole budget goes to device-level concurrency: with dedupe doing
	// its job most devices never reach the engine, so keeping every worker
	// eligible to claim a device beats reserving fault-parallel shares for
	// engine runs that mostly never happen. Engine runs still share one
	// warm cone cache, so repeated *similar* (not identical) syndromes
	// reuse cone results.
	shared := fsim.NewShared(reg, cfg.Workers, cfg.Workers)
	var cache *Cache
	if cfg.CacheCap >= 0 {
		cache = NewCache(cfg.CacheCap)
	}
	in := &Ingester{
		cfg:    cfg,
		agg:    NewAggregator(cfg.Workload, cfg.ParetoTop),
		shared: shared,
		sims:   make(chan *fsim.FaultSim, cfg.Workers),
		tr:     tr,
	}
	in.ded = NewDedupe(cfg.Workload, cache, in.diagnose)
	in.ded.Observe(reg)
	in.statRecords = reg.Counter("volume.records")
	in.statBytes = reg.Counter("volume.record_bytes")
	return in, nil
}

// Dedupe exposes the dedupe front (for tests and stats).
func (in *Ingester) Dedupe() *Dedupe { return in.ded }

// Aggregator exposes the fleet aggregate.
func (in *Ingester) Aggregator() *Aggregator { return in.agg }

// diagnose is the ingester's DiagFunc: it checks a warm per-worker
// simulator out of the free list (building one on first use — at most
// Workers exist, the concurrency bound) and runs the engine with the
// workload's shared cone cache.
func (in *Ingester) diagnose(ctx context.Context, log *tester.Datalog) (*Report, error) {
	var fs *fsim.FaultSim
	select {
	case fs = <-in.sims:
	default:
		var err error
		fs, err = fsim.NewFaultSim(in.cfg.Circuit, in.cfg.Patterns)
		if err != nil {
			return nil, err
		}
		fs.AttachCache(in.shared.Cache)
	}
	defer func() { in.sims <- fs }()
	res, err := core.DiagnoseCtx(ctx, in.cfg.Circuit, in.cfg.Patterns, log, core.Config{
		Workers:   in.shared.Workers,
		ConeCache: in.shared.Cache,
		SharedSim: fs,
		Trace:     in.tr,
	})
	if err != nil {
		return nil, err
	}
	return BuildReport(in.cfg.Workload, in.cfg.Circuit, log, res, in.cfg.Top), nil
}

// task is one device handed from the reader to the worker pool.
type task struct {
	ord    int64
	rec    *Record
	log    *tester.Datalog
	bucket int64
}

// outcome is one finished device heading to the ordered sink.
type outcome struct {
	ord  int64
	line []byte
	err  error
}

// Run ingests the stream to exhaustion (or first error): every record is
// fingerprinted, deduped, diagnosed if novel, folded into the aggregate
// and — when IngestConfig.Reports is set — emitted as a per-device
// report line in input order. It returns the deterministic summary.
func (in *Ingester) Run(ctx context.Context, rr *RecordReader) (*Summary, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := in.cfg.Workers
	tasks := make(chan task, 2*workers)
	outcomes := make(chan outcome, 2*workers)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				line, err := in.process(ctx, t)
				select {
				case outcomes <- outcome{ord: t.ord, line: line, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// The sink re-orders completed devices back to input order. Its
	// pending map is bounded: at most cap(tasks)+cap(outcomes)+workers
	// devices are past the reader at any instant.
	sinkErr := make(chan error, 1)
	go func() {
		var firstErr error
		pending := make(map[int64][]byte)
		next := int64(0)
		for o := range outcomes {
			if o.err != nil {
				if firstErr == nil {
					firstErr = o.err
					cancel()
				}
				continue
			}
			if firstErr != nil {
				continue
			}
			pending[o.ord] = o.line
			for {
				line, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if in.cfg.Reports != nil {
					if _, werr := in.cfg.Reports.Write(line); werr != nil && firstErr == nil {
						firstErr = werr
						cancel()
					}
				}
			}
		}
		sinkErr <- firstErr
	}()

	// Reader loop: ordinals and trend buckets are assigned here, single-
	// threaded, so they depend only on stream position — never on worker
	// scheduling. Sends block when the pool is saturated; that blocking IS
	// the CLI's backpressure (the file is read no faster than it drains).
	var readErr error
	tsMode := 0 // 0 undecided, 1 ordinal, 2 timestamp
	var ord int64
read:
	for {
		rec, n, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		if rec.Workload != "" && rec.Workload != in.cfg.Workload {
			readErr = fmt.Errorf("volume: line %d: record workload %q, ingesting %q", rr.Line(), rec.Workload, in.cfg.Workload)
			break
		}
		mode := 1
		if rec.TS != 0 {
			mode = 2
		}
		if tsMode == 0 {
			tsMode = mode
		} else if tsMode != mode {
			readErr = fmt.Errorf("volume: line %d: stream mixes timestamped and untimestamped records", rr.Line())
			break
		}
		log, err := rec.BuildDatalog(in.cfg.Circuit, len(in.cfg.Patterns))
		if err != nil {
			readErr = fmt.Errorf("volume: line %d: %v", rr.Line(), err)
			break
		}
		bucket := ord / int64(in.cfg.TrendBucket)
		if tsMode == 2 {
			bucket = rec.TS / int64(in.cfg.TrendBucket)
		}
		in.statRecords.Inc()
		in.statBytes.Add(int64(n))
		select {
		case tasks <- task{ord: ord, rec: rec, log: log, bucket: bucket}:
		case <-ctx.Done():
			break read
		}
		ord++
	}
	close(tasks)
	wg.Wait()
	close(outcomes)
	err := <-sinkErr
	if readErr != nil {
		err = readErr
	}
	if err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	return in.agg.Summary(), nil
}

// process resolves one device through the dedupe front and folds it
// into the aggregate.
func (in *Ingester) process(ctx context.Context, t task) ([]byte, error) {
	entry, _, err := in.ded.Process(ctx, t.log)
	if err != nil {
		return nil, fmt.Errorf("device %q: %w", t.rec.DeviceID, err)
	}
	in.agg.Add(t.rec.Site, t.bucket, entry)
	if in.cfg.Reports == nil {
		return nil, nil
	}
	line, err := json.Marshal(DeviceReport{
		DeviceID:    t.rec.DeviceID,
		Site:        t.rec.Site,
		Fingerprint: entry.Fingerprint.String(),
		Report:      json.RawMessage(entry.JSON),
	})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}
