package volume

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"multidiag/internal/defect"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// SynthConfig parameterizes a synthetic datalog stream: N records over a
// controllable population of distinct defective devices, so dedupe
// behaviour is reproducible in tests, benches and the smoke script.
type SynthConfig struct {
	Workload string
	Circuit  *netlist.Circuit
	Patterns []sim.Pattern
	// N is the total record count.
	N int
	// Repeat is the target fraction of records repeating an earlier
	// device's syndrome (0.9 → ~10% distinct devices). The distinct
	// *syndrome* count can land slightly below the device count when two
	// sampled defect sets happen to produce one behaviour; Emit reports
	// the realized value.
	Repeat float64
	// Sites is the number of synthetic site names (default 4).
	Sites int
	// Defects per device (default 2 — the multi-defect regime).
	Defects int
	// Seed drives every sampling decision; same seed → same stream bytes.
	Seed int64
}

// SynthStream writes a deterministic JSONL datalog stream and returns
// the realized number of distinct syndromes (by fingerprint, the same
// notion the dedupe front uses). Every distinct device appears at least
// once; repeats are drawn uniformly over the device population and the
// whole stream order is a seeded shuffle, so repeats interleave with
// first arrivals the way a tester floor's would.
func SynthStream(w io.Writer, cfg SynthConfig) (int, error) {
	if cfg.N <= 0 {
		return 0, fmt.Errorf("volume: synth stream needs N > 0")
	}
	if cfg.Repeat < 0 || cfg.Repeat >= 1 {
		if cfg.Repeat != 0 {
			return 0, fmt.Errorf("volume: repeat ratio %v outside [0,1)", cfg.Repeat)
		}
	}
	if cfg.Sites <= 0 {
		cfg.Sites = 4
	}
	if cfg.Defects <= 0 {
		cfg.Defects = 2
	}
	uniques := cfg.N - int(math.Round(float64(cfg.N)*cfg.Repeat))
	if uniques < 1 {
		uniques = 1
	}
	if uniques > cfg.N {
		uniques = cfg.N
	}

	// Build the device population: each device is the reference circuit
	// with a sampled multi-defect set injected, tested against the
	// workload's patterns. A defect set no pattern detects yields a
	// passing device — kept, as real streams contain those too.
	logs := make([]*tester.Datalog, uniques)
	for u := 0; u < uniques; u++ {
		defs, err := defect.Sample(cfg.Circuit, defect.CampaignConfig{
			Seed:       cfg.Seed + int64(u)*7919,
			NumDefects: cfg.Defects,
		})
		if err != nil {
			return 0, fmt.Errorf("volume: synth device %d: %w", u, err)
		}
		dev, err := defect.Inject(cfg.Circuit, defs)
		if err != nil {
			return 0, fmt.Errorf("volume: synth device %d: %w", u, err)
		}
		logs[u], err = tester.ApplyTest(cfg.Circuit, dev, cfg.Patterns)
		if err != nil {
			return 0, fmt.Errorf("volume: synth device %d: %w", u, err)
		}
	}
	distinct := make(map[Fingerprint]struct{}, uniques)
	for _, log := range logs {
		distinct[FingerprintDatalog(cfg.Workload, log)] = struct{}{}
	}

	// Stream order: every device once, then repeats drawn uniformly, the
	// whole sequence shuffled under the seed.
	r := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	order := make([]int, cfg.N)
	for i := range order {
		if i < uniques {
			order[i] = i
		} else {
			order[i] = r.Intn(uniques)
		}
	}
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	for i, u := range order {
		rec := Record{
			DeviceID: fmt.Sprintf("dev-%06d", i),
			Site:     fmt.Sprintf("site-%d", r.Intn(cfg.Sites)),
			Workload: cfg.Workload,
			Fails:    recordFails(logs[u]),
		}
		line, err := json.Marshal(&rec)
		if err != nil {
			return 0, err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return 0, err
		}
	}
	return len(distinct), nil
}

// recordFails converts a datalog's fail map into the sorted structured
// wire form.
func recordFails(log *tester.Datalog) []PatternFails {
	var out []PatternFails
	for _, p := range log.FailingPatterns() {
		out = append(out, PatternFails{Pattern: p, POs: log.Fails[p].Members()})
	}
	return out
}
