package volume

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"multidiag/internal/bitset"
	"multidiag/internal/obs"
	"multidiag/internal/tester"
)

// syndromeLog builds a tiny distinct syndrome per id.
func syndromeLog(id int) *tester.Datalog {
	log := &tester.Datalog{NumPatterns: 64, NumPOs: 8, Fails: map[int]bitset.Set{}}
	s := bitset.New(8)
	s.Add(id % 8)
	log.Fails[id%64] = s
	return log
}

func countingDiag(calls *atomic.Int64) DiagFunc {
	return func(ctx context.Context, log *tester.Datalog) (*Report, error) {
		calls.Add(1)
		return &Report{Workload: "w", FailingPatterns: len(log.FailingPatterns()), Consistent: true}, nil
	}
}

// TestDedupeSingleflight pins the claim protocol: concurrent first
// arrivals of one syndrome trigger exactly one engine run, and every
// waiter receives the leader's published entry.
func TestDedupeSingleflight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	d := NewDedupe("w", NewCache(0), func(ctx context.Context, log *tester.Datalog) (*Report, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		calls.Add(1)
		return &Report{Workload: "w", Consistent: true}, nil
	})
	reg := obs.New("dedupe-test").Registry()
	d.Observe(reg)

	log := syndromeLog(1)
	const waiters = 16
	entries := make([]*Entry, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := d.Process(context.Background(), log)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	<-started // leader is inside the engine; followers must now coalesce
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d engine runs for one syndrome, want 1", got)
	}
	for i, e := range entries {
		if e != entries[0] {
			t.Fatalf("waiter %d got a different entry pointer", i)
		}
	}
	if ran := reg.Counter("volume.diagnosed").Value(); ran != 1 {
		t.Fatalf("volume.diagnosed = %d, want 1", ran)
	}
	if ded := reg.Counter("volume.deduped").Value(); ded != waiters-1 {
		t.Fatalf("volume.deduped = %d, want %d", ded, waiters-1)
	}
}

// TestDedupeLeaderErrorDoesNotPoison pins error handling: a failed
// leader retires its flight without publishing, so a later arrival
// re-claims and succeeds.
func TestDedupeLeaderErrorDoesNotPoison(t *testing.T) {
	var calls atomic.Int64
	d := NewDedupe("w", NewCache(0), func(ctx context.Context, log *tester.Datalog) (*Report, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient engine failure")
		}
		return &Report{Workload: "w", Consistent: true}, nil
	})
	log := syndromeLog(2)
	if _, _, err := d.Process(context.Background(), log); err == nil {
		t.Fatal("first Process should surface the engine error")
	}
	e, hit, err := d.Process(context.Background(), log)
	if err != nil || e == nil {
		t.Fatalf("retry after leader error: %v", err)
	}
	if hit {
		t.Fatal("retry counted as dedupe though the first run failed")
	}
	if calls.Load() != 2 {
		t.Fatalf("%d engine runs, want 2 (fail then succeed)", calls.Load())
	}
}

// TestDedupeNilCacheBaseline pins the no-dedupe baseline: without a
// cache every device runs the engine.
func TestDedupeNilCacheBaseline(t *testing.T) {
	var calls atomic.Int64
	d := NewDedupe("w", nil, countingDiag(&calls))
	log := syndromeLog(3)
	for i := 0; i < 5; i++ {
		_, hit, err := d.Process(context.Background(), log)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("nil-cache Process reported a dedupe hit")
		}
	}
	if calls.Load() != 5 {
		t.Fatalf("%d engine runs without a cache, want 5", calls.Load())
	}
}

// TestDedupeConcurrentStress drives many goroutines over a mixed
// unique/repeat syndrome population against the sharded cache — the
// -race exercise for the claim protocol and shard locking. The invariant
// checked: engine runs never exceed the distinct-syndrome count, and
// every device resolves to its own syndrome's entry.
func TestDedupeConcurrentStress(t *testing.T) {
	var calls atomic.Int64
	d := NewDedupe("w", NewCache(0), countingDiag(&calls))
	d.Observe(obs.New("stress").Registry())
	const distinct = 8
	const devices = 400
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < devices/8; i++ {
				id := (g*31 + i) % distinct
				e, _, err := d.Process(context.Background(), syndromeLog(id))
				if err != nil {
					t.Error(err)
					return
				}
				want := FingerprintDatalog("w", syndromeLog(id))
				if e.Fingerprint != want {
					t.Errorf("device resolved to entry %s, want %s", e.Fingerprint, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := calls.Load(); got != distinct {
		t.Fatalf("%d engine runs for %d distinct syndromes", got, distinct)
	}
}
