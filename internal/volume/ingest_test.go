package volume

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"multidiag/internal/core"
	"multidiag/internal/exp"
	"multidiag/internal/obs"
)

// synthBytes renders a deterministic synthetic stream for tests.
func synthBytes(t testing.TB, wl *exp.Workload, n int, repeat float64, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := SynthStream(&buf, SynthConfig{
		Workload: "c17",
		Circuit:  wl.Circuit,
		Patterns: wl.Patterns,
		N:        n,
		Repeat:   repeat,
		Seed:     seed,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func c17Workload(t testing.TB) *exp.Workload {
	t.Helper()
	wl, err := exp.NamedWorkload("c17")
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// runIngest runs one full ingest of stream and returns the per-device
// report lines and the summary JSON.
func runIngest(t testing.TB, wl *exp.Workload, stream []byte, workers, cacheCap int) ([]string, []byte) {
	t.Helper()
	var reports bytes.Buffer
	ing, err := NewIngester(IngestConfig{
		Workload: "c17",
		Circuit:  wl.Circuit,
		Patterns: wl.Patterns,
		Workers:  workers,
		CacheCap: cacheCap,
		Trace:    obs.New("ingest-test"),
		Reports:  &reports,
	})
	if err != nil {
		t.Fatal(err)
	}
	summary, err := ing.Run(context.Background(), NewRecordReader(bytes.NewReader(stream)))
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := WriteSummary(&sb, summary); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(reports.String(), "\n"), "\n")
	return lines, sb.Bytes()
}

// TestIngestDedupeInvariant is the subsystem's central claim: for any
// input stream, the per-device reports are byte-identical to running the
// engine on each datalog individually — cache hit or miss, at any worker
// count — and the aggregate summary is byte-identical across all of it.
func TestIngestDedupeInvariant(t *testing.T) {
	wl := c17Workload(t)
	stream := synthBytes(t, wl, 60, 0.8, 11)

	// Ground truth: one direct engine run per record, no dedupe anywhere.
	var want []string
	rr := NewRecordReader(bytes.NewReader(stream))
	for {
		rec, _, err := rr.Next()
		if err != nil {
			break
		}
		log, err := rec.BuildDatalog(wl.Circuit, len(wl.Patterns))
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Diagnose(wl.Circuit, wl.Patterns, log, core.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		js, err := BuildReport("c17", wl.Circuit, log, res, 10).Encode()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, string(js))
	}

	var refSummary []byte
	for _, tc := range []struct {
		workers, cacheCap int
	}{
		{1, 0}, {4, 0}, {8, 0}, // deduped at -j 1/4/8
		{4, -1},          // dedupe disabled entirely
		{4, cacheShards}, // pathologically tiny cache: constant eviction
	} {
		name := fmt.Sprintf("j%d/cache%d", tc.workers, tc.cacheCap)
		lines, summary := runIngest(t, wl, stream, tc.workers, tc.cacheCap)
		if len(lines) != len(want) {
			t.Fatalf("%s: %d report lines, want %d", name, len(lines), len(want))
		}
		for i, line := range lines {
			var dr DeviceReport
			if err := json.Unmarshal([]byte(line), &dr); err != nil {
				t.Fatalf("%s line %d: %v", name, i, err)
			}
			if wantID := fmt.Sprintf("dev-%06d", i); dr.DeviceID != wantID {
				t.Fatalf("%s line %d: device %s, want %s — input order lost", name, i, dr.DeviceID, wantID)
			}
			if string(dr.Report) != want[i] {
				t.Fatalf("%s device %s: cached/parallel report differs from direct diagnosis\n got: %s\nwant: %s",
					name, dr.DeviceID, dr.Report, want[i])
			}
		}
		if refSummary == nil {
			refSummary = summary
		} else if !bytes.Equal(summary, refSummary) {
			t.Fatalf("%s: summary differs from reference configuration\n got: %s\nwant: %s", name, summary, refSummary)
		}
	}
}

// TestIngestSummaryShape sanity-checks the aggregate on a known stream.
func TestIngestSummaryShape(t *testing.T) {
	wl := c17Workload(t)
	stream := synthBytes(t, wl, 50, 0.8, 5)
	_, summaryJSON := runIngest(t, wl, stream, 4, 0)
	var s Summary
	if err := json.Unmarshal(summaryJSON, &s); err != nil {
		t.Fatal(err)
	}
	if s.Schema != SummarySchema || s.Workload != "c17" {
		t.Fatalf("summary header %q/%q", s.Schema, s.Workload)
	}
	if s.Devices != 50 {
		t.Fatalf("devices = %d, want 50", s.Devices)
	}
	if s.UniqueSyndromes < 1 || s.UniqueSyndromes > 10 {
		t.Fatalf("unique syndromes = %d for an 80%%-repeat stream of 50", s.UniqueSyndromes)
	}
	wantRatio := round3(float64(s.Devices-s.UniqueSyndromes) / float64(s.Devices))
	if s.DedupeRatio != wantRatio {
		t.Fatalf("dedupe ratio %v, want %v", s.DedupeRatio, wantRatio)
	}
	var siteDevices int64
	for _, site := range s.Sites {
		siteDevices += site.Devices
	}
	if siteDevices != s.Devices {
		t.Fatalf("site device counts sum to %d, want %d", siteDevices, s.Devices)
	}
	var trendDevices int64
	for _, b := range s.Trend {
		for _, cc := range b.Classes {
			trendDevices += cc.Devices
		}
	}
	if trendDevices != s.Devices {
		t.Fatalf("trend bucket counts sum to %d, want %d", trendDevices, s.Devices)
	}
}

// TestSynthStreamDeterministic pins that the generator is seed-pure:
// same config, same bytes.
func TestSynthStreamDeterministic(t *testing.T) {
	wl := c17Workload(t)
	a := synthBytes(t, wl, 40, 0.75, 9)
	b := synthBytes(t, wl, 40, 0.75, 9)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := synthBytes(t, wl, 40, 0.75, 10)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestIngestTimestampBuckets pins time-based trend bucketing and the
// mixed-mode rejection.
func TestIngestTimestampBuckets(t *testing.T) {
	wl := c17Workload(t)
	var stream bytes.Buffer
	for i, ts := range []int64{100, 150, 250} {
		rec := Record{DeviceID: fmt.Sprintf("d%d", i), TS: ts}
		line, _ := json.Marshal(&rec)
		stream.Write(append(line, '\n'))
	}
	ing, err := NewIngester(IngestConfig{
		Workload: "c17", Circuit: wl.Circuit, Patterns: wl.Patterns,
		Workers: 2, TrendBucket: 100, Trace: obs.New("ts-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ing.Run(context.Background(), NewRecordReader(bytes.NewReader(stream.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Trend) != 2 || s.Trend[0].Bucket != 1 || s.Trend[1].Bucket != 2 {
		t.Fatalf("trend buckets %+v, want ts/100 buckets 1 and 2", s.Trend)
	}

	stream.WriteString(`{"device_id":"d3"}` + "\n") // no ts: mixes modes
	ing2, err := NewIngester(IngestConfig{
		Workload: "c17", Circuit: wl.Circuit, Patterns: wl.Patterns,
		Workers: 2, Trace: obs.New("ts-test-2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ing2.Run(context.Background(), NewRecordReader(bytes.NewReader(stream.Bytes()))); err == nil {
		t.Fatal("mixed timestamped/untimestamped stream must be rejected")
	}
}

// TestIngestRejectsForeignWorkload pins that a record naming another
// workload fails the stream instead of polluting the aggregate.
func TestIngestRejectsForeignWorkload(t *testing.T) {
	wl := c17Workload(t)
	ing, err := NewIngester(IngestConfig{
		Workload: "c17", Circuit: wl.Circuit, Patterns: wl.Patterns,
		Workers: 1, Trace: obs.New("wl-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := `{"device_id":"d0","workload":"b0300"}` + "\n"
	if _, err := ing.Run(context.Background(), NewRecordReader(strings.NewReader(stream))); err == nil {
		t.Fatal("foreign-workload record must fail the stream")
	}
}
