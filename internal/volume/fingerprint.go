package volume

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"multidiag/internal/tester"
)

// Fingerprint is the canonical syndrome fingerprint: a SHA-256 digest of
// the normalized failing-pattern/failing-output syndrome, scoped to one
// workload. Two devices fingerprint identically iff the engine would see
// identical inputs, so a fingerprint match licenses serving a cached
// report verbatim.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex (the wire/log form).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// fingerprintDomain versions the canonical encoding. Bump it whenever the
// byte layout below changes, so caches populated under an old encoding
// can never serve a report for a new-encoding fingerprint.
const fingerprintDomain = "mdvol/fp/v1\x00"

// FingerprintDatalog computes the canonical fingerprint of a datalog's
// syndrome under a workload.
//
// Canonical encoding, hashed in order:
//
//	domain tag | workload | 0x00 | numPatterns | numPOs |
//	numFailingPatterns | for each failing pattern ascending:
//	  pattern | numFailingPOs | failing POs ascending
//
// with every integer as 8-byte big-endian. The encoding depends only on
// the normalized syndrome — which (pattern, PO) observations failed —
// never on wire format (text datalog vs structured fails), map iteration
// order, insertion order or worker scheduling, so the same syndrome
// hashes identically across runs and -j levels. Including the workload
// name and the test-set/PO dimensions means equal bit patterns under
// different workloads (or a re-generated pattern set) never collide.
//
// Truncated datalogs fold in the truncation point: a tester that stopped
// logging after N fails observed a *different* syndrome than one that
// kept going, even if the recorded fails happen to match.
func FingerprintDatalog(workload string, log *tester.Datalog) Fingerprint {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte(fingerprintDomain))
	h.Write([]byte(workload))
	h.Write([]byte{0})
	writeInt(int64(log.NumPatterns))
	writeInt(int64(log.NumPOs))

	pats := make([]int, 0, len(log.Fails))
	for p, set := range log.Fails {
		if !set.Empty() {
			pats = append(pats, p)
		}
	}
	sort.Ints(pats)
	writeInt(int64(len(pats)))
	var pos []int
	for _, p := range pats {
		writeInt(int64(p))
		pos = log.Fails[p].AppendMembers(pos[:0])
		writeInt(int64(len(pos)))
		for _, po := range pos {
			writeInt(int64(po))
		}
	}
	if log.Truncated {
		h.Write([]byte{1})
		writeInt(int64(log.TruncatedAfter))
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
