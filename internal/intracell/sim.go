package intracell

import (
	"fmt"

	"multidiag/internal/logic"
)

// SimConfig injects defects into a switch-level simulation.
type SimConfig struct {
	// ForcedNodes pins nodes to fixed values (rail shorts, stuck nodes).
	ForcedNodes map[NodeID]logic.Value
	// StuckOff / StuckOn override transistor conduction by transistor
	// index.
	StuckOff map[int]bool
	StuckOn  map[int]bool
	// Bridges forces each victim to its aggressor's resolved value
	// (dominant bridge).
	Bridges []BridgePair
}

// BridgePair is a dominant intra-cell bridge.
type BridgePair struct {
	Victim, Aggressor NodeID
}

type conduction uint8

const (
	condOff conduction = iota
	condOn
	condMaybe
)

// Simulate computes steady-state node values of the cell for one input
// assignment using switch-level analysis: nodes connected through
// definitely-ON transistors form charge-sharing groups whose value comes
// from the driven sources (rails, inputs, forced nodes) they contain;
// groups reaching a source only through maybe-ON (X-gated) transistors, or
// reaching sources with conflicting values, resolve to X, as do floating
// groups.
//
// The returned slice is indexed by NodeID.
func Simulate(c *Cell, inputs []logic.Value, cfg *SimConfig) ([]logic.Value, error) {
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("intracell: cell %s needs %d inputs, got %d", c.Name, len(c.Inputs), len(inputs))
	}
	if cfg == nil {
		cfg = &SimConfig{}
	}
	n := len(c.Nodes)
	vals := make([]logic.Value, n)
	driven := make([]bool, n)
	setSource := func(id NodeID, v logic.Value) {
		vals[id] = v
		driven[id] = true
	}
	reset := func() {
		for i := range vals {
			vals[i] = logic.X
			driven[i] = false
		}
		setSource(GND, logic.Zero)
		setSource(VDD, logic.One)
		for i, in := range c.Inputs {
			setSource(in, inputs[i])
		}
		for nd, v := range cfg.ForcedNodes {
			setSource(nd, v)
		}
	}
	reset()

	cond := func(t *Transistor, ti int) conduction {
		if cfg.StuckOff[ti] {
			return condOff
		}
		if cfg.StuckOn[ti] {
			return condOn
		}
		g := vals[t.Gate]
		switch t.Type {
		case NMOS:
			switch g {
			case logic.One:
				return condOn
			case logic.Zero:
				return condOff
			}
		case PMOS:
			switch g {
			case logic.Zero:
				return condOn
			case logic.One:
				return condOff
			}
		}
		return condMaybe
	}

	// Fixpoint iteration: recompute group values until stable.
	maxIter := 2*n + 8
	parent := make([]int, n)
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		// Definite-ON connectivity groups.
		for i := range parent {
			parent[i] = i
		}
		var maybeEdges [][2]int
		for ti := range c.Transistors {
			t := &c.Transistors[ti]
			switch cond(t, ti) {
			case condOn:
				union(int(t.Source), int(t.Drain))
			case condMaybe:
				maybeEdges = append(maybeEdges, [2]int{int(t.Source), int(t.Drain)})
			}
		}
		// Collect definite source values per group. Rail membership is
		// tracked separately: a rail is an infinitely strong driver, so a
		// rail-connected group keeps the rail value no matter what weaker
		// charge might arrive over maybe-ON switches (without this, an
		// undriven node that might couple both rails would "contaminate"
		// rail-driven logic — measured as spurious X on transmission-gate
		// cells).
		type groupInfo struct {
			has0, has1, hasX   bool
			hasRail0, hasRail1 bool
		}
		groups := map[int]*groupInfo{}
		gi := func(root int) *groupInfo {
			g := groups[root]
			if g == nil {
				g = &groupInfo{}
				groups[root] = g
			}
			return g
		}
		for i := 0; i < n; i++ {
			if !driven[i] {
				continue
			}
			g := gi(find(i))
			switch vals[i] {
			case logic.Zero:
				g.has0 = true
			case logic.One:
				g.has1 = true
			default:
				g.hasX = true
			}
		}
		gi(find(int(GND))).hasRail0 = true
		gi(find(int(VDD))).hasRail1 = true
		// Propagate "possible" source values across maybe edges with a
		// small fixpoint over group possibility sets.
		poss0 := map[int]bool{}
		poss1 := map[int]bool{}
		for root, g := range groups {
			if g.has0 || g.hasX {
				poss0[root] = true
			}
			if g.has1 || g.hasX {
				poss1[root] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, e := range maybeEdges {
				ra, rb := find(e[0]), find(e[1])
				if poss0[ra] && !poss0[rb] {
					poss0[rb] = true
					changed = true
				}
				if poss0[rb] && !poss0[ra] {
					poss0[ra] = true
					changed = true
				}
				if poss1[ra] && !poss1[rb] {
					poss1[rb] = true
					changed = true
				}
				if poss1[rb] && !poss1[ra] {
					poss1[ra] = true
					changed = true
				}
			}
		}
		// Resolve node values.
		next := make([]logic.Value, n)
		for i := 0; i < n; i++ {
			if driven[i] {
				next[i] = vals[i]
				continue
			}
			root := find(i)
			g := groups[root]
			var v logic.Value
			switch {
			case g == nil:
				// No definite source: X if any maybe-reachable source,
				// floating otherwise — both read as X at logic level.
				v = logic.X
			case g.hasRail0 && g.hasRail1:
				v = logic.X // rail-to-rail short: everything between is X
			case g.hasRail0, g.hasRail1:
				// Rail-held group: the rail wins any fight with weaker
				// drivers (forced-node shorts still conflict via has0/has1
				// below only when *both* rails meet; a forced node against
				// one rail is a genuine drive fight).
				if g.has0 && g.has1 {
					v = logic.X
				} else if g.hasRail1 {
					v = logic.One
				} else {
					v = logic.Zero
				}
			case g.hasX || (g.has0 && g.has1):
				v = logic.X
			case g.has0:
				v = logic.Zero
				if poss1[root] {
					v = logic.X
				}
			case g.has1:
				v = logic.One
				if poss0[root] {
					v = logic.X
				}
			default:
				v = logic.X
			}
			next[i] = v
		}
		// Dominant bridges: victim takes aggressor's value. Rails cannot be
		// victims (a rail "losing" to an aggressor is a power short, out of
		// scope); externally driven nodes (inputs) can — the aggressor wins
		// the drive fight by the dominant-bridge definition.
		for _, b := range cfg.Bridges {
			if b.Victim != GND && b.Victim != VDD {
				next[b.Victim] = next[b.Aggressor]
			}
		}
		stable := true
		for i := 0; i < n; i++ {
			if next[i] != vals[i] {
				stable = false
			}
			vals[i] = next[i]
		}
		if stable {
			return vals, nil
		}
	}
	// Non-convergence (pathological feedback): return the X-laden state.
	return vals, nil
}

// TruthTable simulates every input combination (inputs are binary) and
// returns the output column, indexed by the input minterm (input i is bit
// i).
func TruthTable(c *Cell, cfg *SimConfig) ([]logic.Value, error) {
	k := len(c.Inputs)
	out := make([]logic.Value, 1<<k)
	in := make([]logic.Value, k)
	for m := 0; m < 1<<k; m++ {
		for i := 0; i < k; i++ {
			in[i] = logic.FromBool(m>>i&1 == 1)
		}
		vals, err := Simulate(c, in, cfg)
		if err != nil {
			return nil, err
		}
		out[m] = vals[c.Output]
	}
	return out, nil
}
