package intracell

import (
	"testing"

	"multidiag/internal/logic"
)

// boolFunc is a reference Boolean function over cell inputs.
type boolFunc func(in []bool) bool

// checkTruthTable verifies a cell's switch-level simulation against a
// reference function for all binary inputs.
func checkTruthTable(t *testing.T, c *Cell, f boolFunc) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	k := len(c.Inputs)
	tt, err := TruthTable(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 1<<k; m++ {
		in := make([]bool, k)
		for i := 0; i < k; i++ {
			in[i] = m>>i&1 == 1
		}
		want := logic.FromBool(f(in))
		if tt[m] != want {
			t.Errorf("%s: minterm %0*b: got %v want %v", c.Name, k, m, tt[m], want)
		}
	}
}

func TestLibraryFunctions(t *testing.T) {
	checkTruthTable(t, Inverter(), func(in []bool) bool { return !in[0] })
	checkTruthTable(t, Nand2(), func(in []bool) bool { return !(in[0] && in[1]) })
	checkTruthTable(t, Nor2(), func(in []bool) bool { return !(in[0] || in[1]) })
	checkTruthTable(t, Nand3(), func(in []bool) bool { return !(in[0] && in[1] && in[2]) })
	checkTruthTable(t, AOI21(), func(in []bool) bool { return !((in[0] && in[1]) || in[2]) })
	checkTruthTable(t, AOI22(), func(in []bool) bool { return !((in[0] && in[1]) || (in[2] && in[3])) })
	checkTruthTable(t, OAI22(), func(in []bool) bool { return !((in[0] || in[1]) && (in[2] || in[3])) })
	checkTruthTable(t, AO8Like(), func(in []bool) bool { return !((in[0] && in[1] && in[2]) || in[3]) })
	checkTruthTable(t, Mux21(), func(in []bool) bool {
		if in[2] {
			return in[1]
		}
		return in[0]
	})
	checkTruthTable(t, Xor2(), func(in []bool) bool { return in[0] != in[1] })
}

func TestLibraryComplete(t *testing.T) {
	cells := Library()
	if len(cells) != 10 {
		t.Fatalf("library size %d", len(cells))
	}
	names := map[string]bool{}
	for _, c := range cells {
		if names[c.Name] {
			t.Errorf("duplicate cell name %s", c.Name)
		}
		names[c.Name] = true
	}
}

func TestSimulateXInput(t *testing.T) {
	c := Nand2()
	// A=0 forces Z=1 regardless of B (controlling input masks X).
	vals, err := Simulate(c, []logic.Value{logic.Zero, logic.X}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vals[c.Output] != logic.One {
		t.Errorf("NAND(0,X) = %v, want 1", vals[c.Output])
	}
	// A=1, B=X leaves Z unknown.
	vals, err = Simulate(c, []logic.Value{logic.One, logic.X}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vals[c.Output] != logic.X {
		t.Errorf("NAND(1,X) = %v, want X", vals[c.Output])
	}
}

func TestSimulateWidthValidation(t *testing.T) {
	if _, err := Simulate(Nand2(), []logic.Value{logic.One}, nil); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestTransistorStuckOff(t *testing.T) {
	c := Nand2()
	// N0 (A-side pull-down) stuck off: Z can never be pulled to 0, so for
	// A=B=1 output floats (X at logic level).
	cfg := &SimConfig{StuckOff: map[int]bool{2: true}} // index 2 = N0
	tt, err := TruthTable(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tt[3] == logic.Zero {
		t.Errorf("stuck-off pull-down still pulls low: %v", tt[3])
	}
	// Other minterms unaffected (pull-up paths intact).
	for _, m := range []int{0, 1, 2} {
		if tt[m] != logic.One {
			t.Errorf("minterm %d = %v, want 1", m, tt[m])
		}
	}
}

func TestTransistorStuckOn(t *testing.T) {
	c := Inverter()
	// N0 stuck on: for A=0 both pull-up (P0 on) and pull-down (stuck-on N0)
	// drive Z → fight → X.
	cfg := &SimConfig{StuckOn: map[int]bool{1: true}}
	vals, err := Simulate(c, []logic.Value{logic.Zero}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vals[c.Output] != logic.X {
		t.Errorf("drive fight resolved to %v, want X", vals[c.Output])
	}
	// A=1: both paths agree on 0.
	vals, _ = Simulate(c, []logic.Value{logic.One}, cfg)
	if vals[c.Output] != logic.Zero {
		t.Errorf("A=1 output %v, want 0", vals[c.Output])
	}
}

func TestNodeForced(t *testing.T) {
	c := Nand2()
	n1 := c.NodeByName("n1")
	// n1 shorted to GND: Z = NAND behaves as if the B-side series device is
	// bypassed — when A=1, pull-down conducts (Z=0) even with B=0... except
	// A=1,B=0: N0 on connects Z to n1=0 → Z=0 but P1 (B=0) pulls up → fight → X.
	vals, err := Simulate(c, []logic.Value{logic.One, logic.Zero},
		&SimConfig{ForcedNodes: map[NodeID]logic.Value{n1: logic.Zero}})
	if err != nil {
		t.Fatal(err)
	}
	if vals[c.Output] != logic.X {
		t.Errorf("fight expected at Z, got %v", vals[c.Output])
	}
}

func TestDominantBridgeSim(t *testing.T) {
	c := Nand2()
	// Bridge: output Z dominated by input A.
	cfg := &SimConfig{Bridges: []BridgePair{{Victim: c.Output, Aggressor: c.Inputs[0]}}}
	tt, err := TruthTable(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		wantZ := logic.FromBool(m&1 == 1) // Z = A
		if tt[m] != wantZ {
			t.Errorf("minterm %d: Z = %v, want %v (= A)", m, tt[m], wantZ)
		}
	}
}

func TestCriticalNodesInverter(t *testing.T) {
	c := Inverter()
	crit, _, base, err := criticalNodes(c, Pattern{logic.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if base[c.Output] != logic.One {
		t.Fatal("INV(0) != 1")
	}
	// Both A and Z are critical.
	if _, ok := crit[c.Inputs[0]]; !ok {
		t.Error("input not critical")
	}
	if _, ok := crit[c.Output]; !ok {
		t.Error("output not critical")
	}
}

func TestCriticalNodesNand(t *testing.T) {
	c := Nand2()
	// A=0, B=1: A is critical (flip → Z flips), B is not (A controls).
	crit, maybe, _, err := criticalNodes(c, Pattern{logic.Zero, logic.One})
	if err != nil {
		t.Fatal(err)
	}
	if len(maybe) != 0 {
		t.Errorf("unexpected maybe-critical nodes on fight-free pattern: %v", maybe)
	}
	if _, ok := crit[c.Inputs[0]]; !ok {
		t.Error("controlling input A not critical")
	}
	if _, ok := crit[c.Inputs[1]]; ok {
		t.Error("masked input B critical")
	}
}

// TestDiagnoseStuckNode: inject n1 shorted to GND in NAND2 and check the
// diagnosis finds the site.
func TestDiagnoseStuckNode(t *testing.T) {
	c := Nand2()
	n1 := c.NodeByName("n1")
	lfp, lpp, err := LocalPatterns(c, &SimConfig{ForcedNodes: map[NodeID]logic.Value{n1: logic.Zero}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lfp) == 0 {
		t.Skip("defect not observable")
	}
	d, err := Diagnose(c, lfp, lpp)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range d.Stuck {
		if s.Node == n1 && s.Value == logic.Zero {
			found = true
		}
	}
	if !found {
		t.Errorf("n1 stuck-0 not in suspects: %+v", d.Stuck)
	}
	if d.DynamicOnly {
		t.Error("static defect classified dynamic-only")
	}
	// Physical mapping must point at the transistors touching n1.
	if len(d.TransistorSuspects[n1]) == 0 {
		t.Error("no transistor terminals for suspect node")
	}
}

// TestDiagnoseBridge: inject a dominant bridge and check the couple
// appears in the bridge suspect list.
func TestDiagnoseBridge(t *testing.T) {
	c := AOI22()
	v := c.NodeByName("n1")
	a := c.Inputs[3] // D
	lfp, lpp, err := LocalPatterns(c, &SimConfig{Bridges: []BridgePair{{Victim: v, Aggressor: a}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lfp) == 0 {
		t.Skip("bridge not observable")
	}
	d, err := Diagnose(c, lfp, lpp)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range d.Bridges {
		if b.Victim == v && b.Aggressor == a {
			found = true
		}
	}
	if !found {
		t.Errorf("bridge %v<-%v not in suspects: %+v", v, a, d.Bridges)
	}
}

// TestDiagnoseDynamicOnly: a pattern that both fails and passes must clear
// the static lists.
func TestDiagnoseDynamicOnly(t *testing.T) {
	c := Inverter()
	p := Pattern{logic.Zero}
	d, err := Diagnose(c, []Pattern{p}, []Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	if !d.DynamicOnly {
		t.Fatal("conflicting pattern not classified dynamic")
	}
	if len(d.Stuck) != 0 || len(d.Bridges) != 0 {
		t.Fatal("static suspects survive dynamic-only classification")
	}
	if len(d.Delays) == 0 {
		t.Fatal("no delay suspects for dynamic classification")
	}
}

// TestDiagnoseEveryStuckNodeInLibrary: for every cell and every internal
// node short, the diagnosis must localize the defect (hit) whenever it is
// observable, with bounded resolution.
func TestDiagnoseEveryStuckNodeInLibrary(t *testing.T) {
	for _, c := range Library() {
		for _, n := range c.InternalNodes() {
			for _, v := range []logic.Value{logic.Zero, logic.One} {
				lfp, lpp, err := LocalPatterns(c, &SimConfig{ForcedNodes: map[NodeID]logic.Value{n: v}})
				if err != nil {
					t.Fatal(err)
				}
				if len(lfp) == 0 {
					continue // benign defect
				}
				d, err := Diagnose(c, lfp, lpp)
				if err != nil {
					t.Fatal(err)
				}
				hit := false
				for _, sn := range d.SuspectNodes() {
					if sn == n {
						hit = true
					}
				}
				if !hit {
					t.Errorf("%s: node %s stuck-%v missed (suspects %v)",
						c.Name, c.Nodes[n], v, d.SuspectNodes())
				}
				if res := d.Resolution(); res > 40 {
					t.Errorf("%s: node %s stuck-%v resolution %d too large",
						c.Name, c.Nodes[n], v, res)
				}
			}
		}
	}
}

// TestDiagnoseTransistorStuckOff: transistor conduction defects must be
// localized to a node touching the transistor.
func TestDiagnoseTransistorStuckOffLibrary(t *testing.T) {
	for _, c := range Library() {
		for ti := range c.Transistors {
			lfp, lpp, err := LocalPatterns(c, &SimConfig{StuckOff: map[int]bool{ti: true}})
			if err != nil {
				t.Fatal(err)
			}
			if len(lfp) == 0 {
				continue
			}
			d, err := Diagnose(c, lfp, lpp)
			if err != nil {
				t.Fatal(err)
			}
			tr := c.Transistors[ti]
			touch := map[NodeID]bool{tr.Gate: true, tr.Source: true, tr.Drain: true}
			hit := false
			for _, sn := range d.SuspectNodes() {
				if touch[sn] {
					hit = true
				}
			}
			if !hit {
				t.Errorf("%s: %s stuck-off missed (suspects %v)", c.Name, tr.Name, d.SuspectNodes())
			}
		}
	}
}

func TestDiagnoseValidation(t *testing.T) {
	c := Nand2()
	if _, err := Diagnose(c, nil, nil); err == nil {
		t.Error("empty lfp accepted")
	}
	if _, err := Diagnose(c, []Pattern{{logic.One}}, nil); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestCellAccessors(t *testing.T) {
	c := Nand2()
	if c.NodeByName("nope") != -1 {
		t.Error("missing node found")
	}
	if c.NodeByName("n1") < 0 {
		t.Error("n1 missing")
	}
	if got := c.AddNode("n1"); got != c.NodeByName("n1") {
		t.Error("AddNode not idempotent")
	}
	internal := c.InternalNodes()
	// NAND2 internals: Z and n1.
	if len(internal) != 2 {
		t.Errorf("internal nodes %v", internal)
	}
	if NMOS.String() != "N" || PMOS.String() != "P" {
		t.Error("MOSType names")
	}
	if TermGate.String() != "G" || TermSource.String() != "S" || TermDrain.String() != "D" {
		t.Error("terminal names")
	}
}

func TestValidateErrors(t *testing.T) {
	c := NewCell("bad")
	if err := c.Validate(); err == nil {
		t.Error("no-input cell validated")
	}
	c.AddInput("A")
	if err := c.Validate(); err == nil {
		t.Error("no-output cell validated")
	}
	c.SetOutput("Z")
	c.AddTransistor("T", NMOS, 99, 0, 1)
	if err := c.Validate(); err == nil {
		t.Error("out-of-range terminal validated")
	}
}
