package intracell

// This file builds the transistor-level standard-cell library used by the
// examples and the T6 experiment. Topologies are the textbook static-CMOS
// (and transmission-gate) implementations; names follow the conventional
// INVX1/ND2/NR2/AOI/OAI/MUX/XOR families.

// Inverter returns a 2-transistor inverter: Z = !A.
func Inverter() *Cell {
	c := NewCell("INVX1")
	a := c.AddInput("A")
	z := c.SetOutput("Z")
	c.AddTransistor("P0", PMOS, a, VDD, z)
	c.AddTransistor("N0", NMOS, a, GND, z)
	return c
}

// Nand2 returns a 4-transistor 2-input NAND: Z = !(A·B).
func Nand2() *Cell {
	c := NewCell("ND2X1")
	a := c.AddInput("A")
	b := c.AddInput("B")
	z := c.SetOutput("Z")
	n1 := c.AddNode("n1")
	c.AddTransistor("P0", PMOS, a, VDD, z)
	c.AddTransistor("P1", PMOS, b, VDD, z)
	c.AddTransistor("N0", NMOS, a, z, n1)
	c.AddTransistor("N1", NMOS, b, n1, GND)
	return c
}

// Nor2 returns a 4-transistor 2-input NOR: Z = !(A+B).
func Nor2() *Cell {
	c := NewCell("NR2X1")
	a := c.AddInput("A")
	b := c.AddInput("B")
	z := c.SetOutput("Z")
	p1 := c.AddNode("p1")
	c.AddTransistor("P0", PMOS, a, VDD, p1)
	c.AddTransistor("P1", PMOS, b, p1, z)
	c.AddTransistor("N0", NMOS, a, GND, z)
	c.AddTransistor("N1", NMOS, b, GND, z)
	return c
}

// Nand3 returns a 6-transistor 3-input NAND.
func Nand3() *Cell {
	c := NewCell("ND3X1")
	a := c.AddInput("A")
	b := c.AddInput("B")
	d := c.AddInput("C")
	z := c.SetOutput("Z")
	n1 := c.AddNode("n1")
	n2 := c.AddNode("n2")
	c.AddTransistor("P0", PMOS, a, VDD, z)
	c.AddTransistor("P1", PMOS, b, VDD, z)
	c.AddTransistor("P2", PMOS, d, VDD, z)
	c.AddTransistor("N0", NMOS, a, z, n1)
	c.AddTransistor("N1", NMOS, b, n1, n2)
	c.AddTransistor("N2", NMOS, d, n2, GND)
	return c
}

// AOI21 returns a 6-transistor AND-OR-invert cell: Z = !((A·B)+C).
func AOI21() *Cell {
	c := NewCell("AOI21X1")
	a := c.AddInput("A")
	b := c.AddInput("B")
	cc := c.AddInput("C")
	z := c.SetOutput("Z")
	p1 := c.AddNode("p1")
	n1 := c.AddNode("n1")
	// Pull-up: C in series with (A parallel B).
	c.AddTransistor("P0", PMOS, a, VDD, p1)
	c.AddTransistor("P1", PMOS, b, VDD, p1)
	c.AddTransistor("P2", PMOS, cc, p1, z)
	// Pull-down: (A series B) parallel C.
	c.AddTransistor("N0", NMOS, a, z, n1)
	c.AddTransistor("N1", NMOS, b, n1, GND)
	c.AddTransistor("N2", NMOS, cc, z, GND)
	return c
}

// AOI22 returns an 8-transistor cell: Z = !((A·B)+(C·D)).
func AOI22() *Cell {
	c := NewCell("AOI22X1")
	a := c.AddInput("A")
	b := c.AddInput("B")
	cc := c.AddInput("C")
	d := c.AddInput("D")
	z := c.SetOutput("Z")
	p1 := c.AddNode("p1")
	n1 := c.AddNode("n1")
	n2 := c.AddNode("n2")
	// Pull-up: (A par B) series (C par D).
	c.AddTransistor("P0", PMOS, a, VDD, p1)
	c.AddTransistor("P1", PMOS, b, VDD, p1)
	c.AddTransistor("P2", PMOS, cc, p1, z)
	c.AddTransistor("P3", PMOS, d, p1, z)
	// Pull-down: (A ser B) par (C ser D).
	c.AddTransistor("N0", NMOS, a, z, n1)
	c.AddTransistor("N1", NMOS, b, n1, GND)
	c.AddTransistor("N2", NMOS, cc, z, n2)
	c.AddTransistor("N3", NMOS, d, n2, GND)
	return c
}

// OAI22 returns an 8-transistor cell: Z = !((A+B)·(C+D)).
func OAI22() *Cell {
	c := NewCell("OAI22X1")
	a := c.AddInput("A")
	b := c.AddInput("B")
	cc := c.AddInput("C")
	d := c.AddInput("D")
	z := c.SetOutput("Z")
	p1 := c.AddNode("p1")
	p2 := c.AddNode("p2")
	n1 := c.AddNode("n1")
	// Pull-up: (A ser B) par (C ser D).
	c.AddTransistor("P0", PMOS, a, VDD, p1)
	c.AddTransistor("P1", PMOS, b, p1, z)
	c.AddTransistor("P2", PMOS, cc, VDD, p2)
	c.AddTransistor("P3", PMOS, d, p2, z)
	// Pull-down: (A par B) ser (C par D).
	c.AddTransistor("N0", NMOS, a, z, n1)
	c.AddTransistor("N1", NMOS, b, z, n1)
	c.AddTransistor("N2", NMOS, cc, n1, GND)
	c.AddTransistor("N3", NMOS, d, n1, GND)
	return c
}

// AO8Like returns a 10-transistor 4-input complex gate modelled on the
// AO8DHVTX1 example cell of the JETTA paper: Z = !((A·B·C)+D) with an input
// inverter on D feeding the sleep-style network — implemented here as the
// canonical 3-AND-OR-INVERT with a buffered branch:
// Z = !((A·B·C)+D), 8 transistors for the AOI31 core plus a 2-transistor
// inverter generating an internal Dbar used by nothing else (a realistic
// dangling-spare structure that stresses diagnosis).
func AO8Like() *Cell {
	c := NewCell("AO8DX1")
	a := c.AddInput("A")
	b := c.AddInput("B")
	cc := c.AddInput("C")
	d := c.AddInput("D")
	z := c.SetOutput("Z")
	p1 := c.AddNode("p1")
	p2 := c.AddNode("p2")
	n1 := c.AddNode("n1")
	n2 := c.AddNode("n2")
	// Pull-up: D series (A par B par C).
	c.AddTransistor("P0", PMOS, a, VDD, p1)
	c.AddTransistor("P1", PMOS, b, VDD, p1)
	c.AddTransistor("P2", PMOS, cc, VDD, p1)
	c.AddTransistor("P3", PMOS, d, p1, z)
	// Dummy second pull-up branch node keeps the topology 10T like the
	// reference cell: P4 parallels P3 from p2 (tied by P5's gate to VDD,
	// i.e. permanently off; spare transistor).
	c.AddTransistor("P4", PMOS, VDD, p2, z)
	_ = p2
	// Pull-down: (A ser B ser C) par D.
	c.AddTransistor("N0", NMOS, a, z, n1)
	c.AddTransistor("N1", NMOS, b, n1, n2)
	c.AddTransistor("N2", NMOS, cc, n2, GND)
	c.AddTransistor("N3", NMOS, d, z, GND)
	// Spare pull-down, permanently off (gate at GND).
	c.AddTransistor("N4", NMOS, GND, p2, GND)
	return c
}

// Mux21 returns a transmission-gate 2:1 mux: Z = S ? B : A (10
// transistors: 2 inverters + 2 transmission gates + output inverter pair
// arrangement). The output is actively driven for every input combination.
func Mux21() *Cell {
	c := NewCell("MUX21X1")
	a := c.AddInput("A")
	b := c.AddInput("B")
	s := c.AddInput("S")
	z := c.SetOutput("Z")
	sb := c.AddNode("sb")
	m := c.AddNode("m")
	mb := c.AddNode("mb")
	// S inverter.
	c.AddTransistor("PI", PMOS, s, VDD, sb)
	c.AddTransistor("NI", NMOS, s, GND, sb)
	// Transmission gate A → m (on when S=0).
	c.AddTransistor("NA", NMOS, sb, a, m)
	c.AddTransistor("PA", PMOS, s, a, m)
	// Transmission gate B → m (on when S=1).
	c.AddTransistor("NB", NMOS, s, b, m)
	c.AddTransistor("PB", PMOS, sb, b, m)
	// Double inverter m → mb → Z restores drive.
	c.AddTransistor("PM", PMOS, m, VDD, mb)
	c.AddTransistor("NM", NMOS, m, GND, mb)
	c.AddTransistor("PZ", PMOS, mb, VDD, z)
	c.AddTransistor("NZ", NMOS, mb, GND, z)
	return c
}

// Xor2 returns a 10-transistor XOR built from an inverter and a
// transmission-gate pair: Z = A⊕B.
func Xor2() *Cell {
	c := NewCell("EOX1")
	a := c.AddInput("A")
	b := c.AddInput("B")
	z := c.SetOutput("Z")
	ab := c.AddNode("ab")
	m := c.AddNode("m")
	// A inverter.
	c.AddTransistor("PI", PMOS, a, VDD, ab)
	c.AddTransistor("NI", NMOS, a, GND, ab)
	// When B=1 pass ab to m; when B=0 pass a to m.
	c.AddTransistor("N1", NMOS, b, ab, m)
	c.AddTransistor("P1", PMOS, b, a, m)
	// Complementary halves of the two transmission gates: bbar comes from a
	// second inverter.
	bb := c.AddNode("bb")
	c.AddTransistor("PJ", PMOS, b, VDD, bb)
	c.AddTransistor("NJ", NMOS, b, GND, bb)
	c.AddTransistor("P2", PMOS, bb, ab, m)
	c.AddTransistor("N2", NMOS, bb, a, m)
	// Output buffer (double inversion for drive).
	mb := c.AddNode("mb")
	c.AddTransistor("PM", PMOS, m, VDD, mb)
	c.AddTransistor("NM", NMOS, m, GND, mb)
	c.AddTransistor("PZ", PMOS, mb, VDD, z)
	c.AddTransistor("NZ", NMOS, mb, GND, z)
	return c
}

// Library returns every cell in the library, validated.
func Library() []*Cell {
	cells := []*Cell{
		Inverter(), Nand2(), Nor2(), Nand3(),
		AOI21(), AOI22(), OAI22(), AO8Like(), Mux21(), Xor2(),
	}
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			panic("intracell: library cell invalid: " + err.Error())
		}
	}
	return cells
}
