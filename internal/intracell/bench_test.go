package intracell

import (
	"testing"

	"multidiag/internal/logic"
)

// BenchmarkSwitchSimulate measures one switch-level evaluation of the
// largest library cell.
func BenchmarkSwitchSimulate(b *testing.B) {
	c := Xor2()
	in := []logic.Value{logic.One, logic.Zero}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(c, in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntraCellDiagnose measures one full intra-cell diagnosis
// (local-pattern derivation excluded) on AOI22 with a node short.
func BenchmarkIntraCellDiagnose(b *testing.B) {
	c := AOI22()
	n1 := c.NodeByName("n1")
	lfp, lpp, err := LocalPatterns(c, &SimConfig{ForcedNodes: map[NodeID]logic.Value{n1: logic.Zero}})
	if err != nil {
		b.Fatal(err)
	}
	if len(lfp) == 0 {
		b.Skip("defect benign")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Diagnose(c, lfp, lpp); err != nil {
			b.Fatal(err)
		}
	}
}
