package intracell_test

import (
	"fmt"
	"log"

	"multidiag/internal/intracell"
	"multidiag/internal/logic"
)

// ExampleDiagnose refines a suspected NAND2 cell: the internal series node
// n1 is shorted to ground, local failing/passing patterns are derived from
// the faulty behaviour, and the transistor-level flow reports its suspects.
func ExampleDiagnose() {
	cell := intracell.Nand2()
	n1 := cell.NodeByName("n1")
	defectCfg := &intracell.SimConfig{
		ForcedNodes: map[intracell.NodeID]logic.Value{n1: logic.Zero},
	}
	lfp, lpp, err := intracell.LocalPatterns(cell, defectCfg)
	if err != nil {
		log.Fatal(err)
	}
	d, err := intracell.Diagnose(cell, lfp, lpp)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range d.Stuck {
		fmt.Printf("%s stuck-at-%v\n", cell.Nodes[s.Node], s.Value)
	}
	// Output:
	// B stuck-at-1
	// n1 stuck-at-0
}
