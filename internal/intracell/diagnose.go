package intracell

import (
	"fmt"
	"sort"

	"multidiag/internal/logic"
)

// Pattern is a cell-level input assignment (the "local pattern" of the
// intra-cell flow: the values the suspected gate's inputs take when a
// circuit-level pattern is applied).
type Pattern []logic.Value

// key renders a pattern for set membership.
func (p Pattern) key() string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = v.String()[0]
	}
	return string(b)
}

// StuckSuspect is a candidate stuck node: the defect behaves as Node forced
// to Value whenever the cell is exercised.
type StuckSuspect struct {
	Node  NodeID
	Value logic.Value // the forced (faulty) value
}

// BridgeSuspect is a victim/aggressor candidate couple: Victim behaves as
// if driven by Aggressor.
type BridgeSuspect struct {
	Victim, Aggressor NodeID
}

// Diagnosis is the intra-cell result: three suspect lists (static stuck,
// static bridge, dynamic delay), mirroring the GSL/GBSL/GDSL of the flow.
type Diagnosis struct {
	Stuck   []StuckSuspect
	Bridges []BridgeSuspect
	Delays  []NodeID
	// DynamicOnly is set when some local pattern appears both failing and
	// passing, which rules out every static fault model.
	DynamicOnly bool
	// TransistorSuspects maps each suspect node to the transistors touching
	// it, with the touching terminal — the physical sites PFA inspects.
	TransistorSuspects map[NodeID][]TerminalRef
}

// TerminalRef names one transistor terminal.
type TerminalRef struct {
	Transistor int // index into Cell.Transistors
	Terminal   Terminal
}

// Resolution returns the total suspect count (the PFA workload).
func (d *Diagnosis) Resolution() int {
	return len(d.Stuck) + len(d.Bridges) + len(d.Delays)
}

// SuspectNodes returns the union of nodes named by any suspect list.
func (d *Diagnosis) SuspectNodes() []NodeID {
	seen := map[NodeID]bool{}
	add := func(n NodeID) { seen[n] = true }
	for _, s := range d.Stuck {
		add(s.Node)
	}
	for _, b := range d.Bridges {
		add(b.Victim)
		add(b.Aggressor)
	}
	for _, n := range d.Delays {
		add(n)
	}
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// criticalNodes computes, for one (determinate) local pattern, two sets of
// critical nodes with their fault-free values:
//
//   - definite: forcing the node to the complement of its fault-free value
//     cleanly flips the cell output;
//   - maybe: the forced output degenerates to X (a drive fight at switch
//     level — a resistive defect at that node can read as a failure on the
//     tester, so the node is a legitimate suspect, but the failure is not
//     guaranteed).
//
// Suspicion (failing patterns) uses definite ∪ maybe; vindication (passing
// patterns) uses definite only — a maybe-critical node could have read as
// the good value on a passing pattern, so passing evidence cannot clear it.
//
// This is critical path tracing at transistor level; cells are small
// (≤ ~30 nodes), so the exact force-and-resimulate formulation is used
// directly — the same definition the gate-level fsim.CPT implements with
// back-trace acceleration.
func criticalNodes(c *Cell, p Pattern) (definite, maybe map[NodeID]logic.Value, base []logic.Value, err error) {
	base, err = Simulate(c, p, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	zGood := base[c.Output]
	definite = map[NodeID]logic.Value{}
	maybe = map[NodeID]logic.Value{}
	if !zGood.IsKnown() {
		return definite, maybe, base, nil
	}
	for _, n := range c.SuspectNodes() {
		v := base[n]
		if !v.IsKnown() {
			continue
		}
		forced, err := Simulate(c, p, &SimConfig{ForcedNodes: map[NodeID]logic.Value{n: v.Not()}})
		if err != nil {
			return nil, nil, nil, err
		}
		switch z := forced[c.Output]; {
		case z.IsKnown() && z != zGood:
			definite[n] = v
		case !z.IsKnown():
			maybe[n] = v
		}
	}
	return definite, maybe, base, nil
}

// Diagnose runs the effect-cause intra-cell flow on a suspected cell with
// its local failing patterns (lfp) and local passing patterns (lpp):
//
//  1. per failing pattern, switch-level fault-free simulation and CPT build
//     the current suspect list (critical nodes with values), the current
//     bridging suspect list (victim/aggressor couples with opposed values)
//     and the current delay suspect list (critical nodes, value-free);
//  2. global lists are the intersections across failing patterns;
//  3. passing patterns vindicate static suspects: a (node, value) whose
//     activation would have been observed on a passing pattern is removed,
//     as are bridge couples activated and observed on a passing pattern;
//  4. if some local pattern is both failing and passing, only dynamic
//     (delay) behaviour can explain the evidence and static lists are
//     cleared.
func Diagnose(c *Cell, lfp, lpp []Pattern) (*Diagnosis, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(lfp) == 0 {
		return nil, fmt.Errorf("intracell: no failing local patterns for cell %s", c.Name)
	}
	for _, p := range append(append([]Pattern{}, lfp...), lpp...) {
		if len(p) != len(c.Inputs) {
			return nil, fmt.Errorf("intracell: pattern width %d, cell %s has %d inputs", len(p), c.Name, len(c.Inputs))
		}
	}
	d := &Diagnosis{}

	// Definition 3: lfp ∩ lpp ≠ ∅ ⇒ dynamic faulty behaviour only.
	failKeys := map[string]bool{}
	for _, p := range lfp {
		failKeys[p.key()] = true
	}
	for _, p := range lpp {
		if failKeys[p.key()] {
			d.DynamicOnly = true
			break
		}
	}

	type stuckKey struct {
		node NodeID
		val  logic.Value
	}
	var (
		gsl  map[stuckKey]bool
		gbsl map[BridgeSuspect]bool
		gdsl map[NodeID]bool
	)
	for _, p := range lfp {
		definite, maybe, base, err := criticalNodes(c, p)
		if err != nil {
			return nil, err
		}
		crit := make(map[NodeID]logic.Value, len(definite)+len(maybe))
		for n, v := range definite {
			crit[n] = v
		}
		for n, v := range maybe {
			crit[n] = v
		}
		csl := map[stuckKey]bool{}
		cdsl := map[NodeID]bool{}
		cbsl := map[BridgeSuspect]bool{}
		for n, v := range crit {
			// The defect forces the complement of the fault-free value.
			csl[stuckKey{node: n, val: v.Not()}] = true
			cdsl[n] = true
			// Aggressor: any other node carrying the complementary value.
			for _, a := range c.SuspectNodes() {
				if a == n {
					continue
				}
				if base[a].IsKnown() && base[a] == v.Not() {
					cbsl[BridgeSuspect{Victim: n, Aggressor: a}] = true
				}
			}
		}
		if gsl == nil {
			gsl, gbsl, gdsl = csl, cbsl, cdsl
			continue
		}
		intersectInto(gsl, csl)
		intersectInto(gbsl, cbsl)
		intersectInto(gdsl, cdsl)
	}

	// Vindication by passing patterns (static lists only — delay faults
	// cannot be vindicated without the preceding pattern).
	if !d.DynamicOnly {
		for _, p := range lpp {
			definite, _, base, err := criticalNodes(c, p)
			if err != nil {
				return nil, err
			}
			for n, v := range definite {
				// A stuck fault forcing ¬v here would have failed this
				// passing pattern: vindicated.
				delete(gsl, stuckKey{node: n, val: v.Not()})
				// A bridge victim n with an aggressor carrying ¬v would
				// also have failed here.
				for _, a := range c.SuspectNodes() {
					if a == n {
						continue
					}
					if base[a].IsKnown() && base[a] == v.Not() {
						delete(gbsl, BridgeSuspect{Victim: n, Aggressor: a})
					}
				}
			}
		}
	} else {
		gsl = nil
		gbsl = nil
	}

	for k := range gsl {
		d.Stuck = append(d.Stuck, StuckSuspect{Node: k.node, Value: k.val})
	}
	sort.Slice(d.Stuck, func(i, j int) bool {
		if d.Stuck[i].Node != d.Stuck[j].Node {
			return d.Stuck[i].Node < d.Stuck[j].Node
		}
		return d.Stuck[i].Value < d.Stuck[j].Value
	})
	for k := range gbsl {
		d.Bridges = append(d.Bridges, k)
	}
	sort.Slice(d.Bridges, func(i, j int) bool {
		if d.Bridges[i].Victim != d.Bridges[j].Victim {
			return d.Bridges[i].Victim < d.Bridges[j].Victim
		}
		return d.Bridges[i].Aggressor < d.Bridges[j].Aggressor
	})
	for n := range gdsl {
		d.Delays = append(d.Delays, n)
	}
	sort.Slice(d.Delays, func(i, j int) bool { return d.Delays[i] < d.Delays[j] })

	// Physical suspect mapping: transistor terminals touching suspect
	// nodes.
	d.TransistorSuspects = map[NodeID][]TerminalRef{}
	for _, n := range d.SuspectNodes() {
		for ti := range c.Transistors {
			t := &c.Transistors[ti]
			if t.Gate == n {
				d.TransistorSuspects[n] = append(d.TransistorSuspects[n], TerminalRef{ti, TermGate})
			}
			if t.Source == n {
				d.TransistorSuspects[n] = append(d.TransistorSuspects[n], TerminalRef{ti, TermSource})
			}
			if t.Drain == n {
				d.TransistorSuspects[n] = append(d.TransistorSuspects[n], TerminalRef{ti, TermDrain})
			}
		}
	}
	return d, nil
}

func intersectInto[K comparable](dst, src map[K]bool) {
	for k := range dst {
		if !src[k] {
			delete(dst, k)
		}
	}
}

// LocalPatterns derives lfp/lpp for a cell from a defective variant: the
// faulty truth table is compared to the fault-free one; minterm inputs
// whose outputs differ (or go unstable) are failing, the rest passing.
// This plays the role of the circuit-level DUT simulation step feeding the
// intra-cell flow.
func LocalPatterns(c *Cell, faulty *SimConfig) (lfp, lpp []Pattern, err error) {
	good, err := TruthTable(c, nil)
	if err != nil {
		return nil, nil, err
	}
	bad, err := TruthTable(c, faulty)
	if err != nil {
		return nil, nil, err
	}
	k := len(c.Inputs)
	for m := 0; m < 1<<k; m++ {
		p := make(Pattern, k)
		for i := 0; i < k; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		differs := good[m] != bad[m]
		if differs {
			lfp = append(lfp, p)
		} else {
			lpp = append(lpp, p)
		}
	}
	return lfp, lpp, nil
}
