// Package intracell is the extension module covering transistor-level
// (intra-cell) diagnosis: a switch-level representation of standard cells,
// a switch-level simulator, and an effect-cause intra-cell diagnosis flow
// applying critical path tracing at transistor level with suspect,
// bridging-suspect and delay-suspect lists.
//
// Provenance note: this module reproduces the *related* JETTA 2014
// intra-cell methodology (the paper text supplied alongside the task — see
// the mismatch note in DESIGN.md). It complements, and is clearly separated
// from, the repository's primary gate-level multiple-defect contribution in
// internal/core: the gate-level flow identifies a suspected cell, and this
// module refines the diagnosis to transistors inside it.
package intracell

import (
	"fmt"
	"sort"
)

// NodeID densely identifies a cell-internal electrical node.
type NodeID int32

// MOSType selects the transistor polarity.
type MOSType uint8

// Transistor polarities.
const (
	NMOS MOSType = iota
	PMOS
)

// String names the polarity.
func (t MOSType) String() string {
	if t == NMOS {
		return "N"
	}
	return "P"
}

// Transistor is one switch: conducting between Source and Drain when the
// Gate node satisfies the polarity (NMOS: gate=1, PMOS: gate=0).
type Transistor struct {
	Name   string
	Type   MOSType
	Gate   NodeID
	Source NodeID
	Drain  NodeID
}

// Terminal identifies one transistor terminal for suspect reporting.
type Terminal uint8

// Transistor terminals.
const (
	TermGate Terminal = iota
	TermSource
	TermDrain
)

// String renders "G", "S" or "D".
func (t Terminal) String() string {
	switch t {
	case TermGate:
		return "G"
	case TermSource:
		return "S"
	}
	return "D"
}

// Cell is a transistor-level netlist of one standard cell with a single
// output. Node 0 is always GND and node 1 is always VDD.
type Cell struct {
	Name        string
	Nodes       []string // node names; index = NodeID
	Inputs      []NodeID
	Output      NodeID
	Transistors []Transistor

	byName map[string]NodeID
}

// GND and VDD are the fixed rail nodes of every cell.
const (
	GND NodeID = 0
	VDD NodeID = 1
)

// NewCell creates an empty cell with the rails predefined.
func NewCell(name string) *Cell {
	c := &Cell{Name: name, byName: make(map[string]NodeID)}
	c.Nodes = []string{"GND", "VDD"}
	c.byName["GND"] = GND
	c.byName["VDD"] = VDD
	return c
}

// AddNode declares a named node and returns its id (existing nodes are
// returned as-is).
func (c *Cell) AddNode(name string) NodeID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	id := NodeID(len(c.Nodes))
	c.Nodes = append(c.Nodes, name)
	c.byName[name] = id
	return id
}

// NodeByName looks a node up (-1 if absent).
func (c *Cell) NodeByName(name string) NodeID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return -1
}

// AddInput declares an input node.
func (c *Cell) AddInput(name string) NodeID {
	id := c.AddNode(name)
	c.Inputs = append(c.Inputs, id)
	return id
}

// SetOutput declares the output node.
func (c *Cell) SetOutput(name string) NodeID {
	id := c.AddNode(name)
	c.Output = id
	return id
}

// AddTransistor appends a switch.
func (c *Cell) AddTransistor(name string, typ MOSType, gate, source, drain NodeID) {
	c.Transistors = append(c.Transistors, Transistor{
		Name: name, Type: typ, Gate: gate, Source: source, Drain: drain,
	})
}

// Validate checks structural sanity: every transistor terminal in range,
// at least one input, an output distinct from the rails.
func (c *Cell) Validate() error {
	if len(c.Inputs) == 0 {
		return fmt.Errorf("intracell: cell %s has no inputs", c.Name)
	}
	if c.Output == GND || c.Output == VDD || int(c.Output) >= len(c.Nodes) {
		return fmt.Errorf("intracell: cell %s output invalid", c.Name)
	}
	for _, t := range c.Transistors {
		for _, n := range []NodeID{t.Gate, t.Source, t.Drain} {
			if int(n) < 0 || int(n) >= len(c.Nodes) {
				return fmt.Errorf("intracell: transistor %s references node %d out of range", t.Name, n)
			}
		}
	}
	return nil
}

// InternalNodes returns every node that is not a rail and not an input
// (candidates for intra-cell defects).
func (c *Cell) InternalNodes() []NodeID {
	isInput := make(map[NodeID]bool, len(c.Inputs))
	for _, in := range c.Inputs {
		isInput[in] = true
	}
	var out []NodeID
	for id := range c.Nodes {
		n := NodeID(id)
		if n == GND || n == VDD || isInput[n] {
			continue
		}
		out = append(out, n)
	}
	return out
}

// SuspectNodes returns all nets eligible as diagnosis suspects: inputs,
// output and internal nodes (not rails), sorted.
func (c *Cell) SuspectNodes() []NodeID {
	var out []NodeID
	for id := range c.Nodes {
		n := NodeID(id)
		if n == GND || n == VDD {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
