// Package hierdiag glues the two diagnosis levels together into the
// complete industrial flow:
//
//	tester datalog ──▶ gate-level diagnosis (core) ──▶ suspected gate(s)
//	      │                                                  │
//	      └───── DUT simulation: local failing/passing ◀─────┘
//	                     patterns for each suspect
//	                              │
//	                              ▼
//	             intra-cell diagnosis (intracell) ──▶ transistor suspects
//
// The local-pattern derivation follows the reference intra-cell flow: for
// every circuit-level *failing* pattern, the suspected gate's input values
// (under fault-free simulation) form a local failing pattern — the defect
// inside the gate must have been sensitized and observed, since the tester
// saw a failure attributable to this gate. For every circuit-level
// *passing* pattern, the gate's input values form a local passing pattern
// only when an error at the gate's output would have been observed at some
// primary output (criticality check via CPT): if the gate's output was not
// observable, the pattern says nothing about the gate's health.
package hierdiag

import (
	"fmt"

	"multidiag/internal/core"
	"multidiag/internal/fsim"
	"multidiag/internal/intracell"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

// CellBinding maps a gate type to its transistor-level implementation and
// the input ordering between the gate's fan-in list and the cell's input
// list (identity for the standard library).
type CellBinding struct {
	Cell *intracell.Cell
}

// DefaultLibrary returns the gate-type → cell binding for the primitive
// gates the intracell library covers. Gates without a binding (wide
// AND/OR, BUF) fall back to gate-level reporting only.
func DefaultLibrary() map[netlist.GateType]map[int]CellBinding {
	lib := map[netlist.GateType]map[int]CellBinding{}
	add := func(t netlist.GateType, nin int, c *intracell.Cell) {
		if lib[t] == nil {
			lib[t] = map[int]CellBinding{}
		}
		lib[t][nin] = CellBinding{Cell: c}
	}
	add(netlist.Not, 1, intracell.Inverter())
	add(netlist.Nand, 2, intracell.Nand2())
	add(netlist.Nand, 3, intracell.Nand3())
	add(netlist.Nor, 2, intracell.Nor2())
	add(netlist.Xor, 2, intracell.Xor2())
	return lib
}

// SuspectCell is one gate-level suspect refined to transistor level.
type SuspectCell struct {
	// Gate is the suspected gate's output net.
	Gate netlist.NetID
	// CellName names the bound transistor-level cell ("" when the gate
	// type has no binding).
	CellName string
	// LocalFailing / LocalPassing are the derived local pattern counts.
	LocalFailing, LocalPassing int
	// Intra is the intra-cell diagnosis (nil without a binding or local
	// failing patterns).
	Intra *intracell.Diagnosis
	// InterCell is set when the intra-cell suspect lists are all empty:
	// the defect is outside this cell (the reference flow's circuit-C
	// outcome, which redirects PFA to the interconnect).
	InterCell bool
}

// Result is the hierarchical diagnosis outcome.
type Result struct {
	GateLevel *core.Result
	Cells     []SuspectCell
}

// Diagnose runs the full two-level flow.
func Diagnose(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog, dcfg core.Config) (*Result, error) {
	gl, err := core.Diagnose(c, pats, log, dcfg)
	if err != nil {
		return nil, err
	}
	res := &Result{GateLevel: gl}
	lib := DefaultLibrary()
	for _, cand := range gl.Multiplet {
		sc, err := RefineCell(c, pats, log, cand.Fault.Net, lib)
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, *sc)
	}
	return res, nil
}

// RefineCell derives local patterns for the gate driving net `gate` and
// runs intra-cell diagnosis on its bound cell.
func RefineCell(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog, gate netlist.NetID, lib map[netlist.GateType]map[int]CellBinding) (*SuspectCell, error) {
	g := &c.Gates[gate]
	sc := &SuspectCell{Gate: gate}
	var binding *CellBinding
	if byIn, ok := lib[g.Type]; ok {
		if b, ok := byIn[len(g.Fanin)]; ok {
			binding = &b
		}
	}
	lfp, lpp, err := LocalPatterns(c, pats, log, gate)
	if err != nil {
		return nil, err
	}
	sc.LocalFailing, sc.LocalPassing = len(lfp), len(lpp)
	if binding == nil || len(lfp) == 0 {
		return sc, nil
	}
	sc.CellName = binding.Cell.Name
	d, err := intracell.Diagnose(binding.Cell, lfp, lpp)
	if err != nil {
		return nil, err
	}
	sc.Intra = d
	sc.InterCell = d.Resolution() == 0
	return sc, nil
}

// LocalPatterns derives the local failing/passing pattern sets for the
// gate driving net `gate` from the circuit-level datalog:
//
//   - failing circuit pattern → local failing pattern (gate input values
//     under fault-free simulation), provided the gate's output reaches at
//     least one of the pattern's failing outputs structurally;
//   - passing circuit pattern → local passing pattern, provided the gate's
//     output is *critical* for some primary output under that pattern (an
//     internal error would have been observed, so the pass vindicates).
//
// Duplicate local patterns are deduplicated, preserving the failing/passing
// classification; a pattern appearing in both sets is kept in both — the
// intra-cell flow's dynamic-fault classification depends on exactly that
// overlap.
func LocalPatterns(c *netlist.Circuit, pats []sim.Pattern, log *tester.Datalog, gate netlist.NetID) (lfp, lpp []intracell.Pattern, err error) {
	if log.NumPatterns != len(pats) {
		return nil, nil, fmt.Errorf("hierdiag: datalog/pattern mismatch")
	}
	g := &c.Gates[gate]
	cpt := fsim.NewCPT(c)
	outCone := c.FanoutCone(gate)

	seenF := map[string]bool{}
	seenP := map[string]bool{}
	for pIdx, p := range pats {
		determinate := true
		for _, v := range p {
			if !v.IsKnown() {
				determinate = false
				break
			}
		}
		if !determinate {
			continue
		}
		fails, failing := log.Fails[pIdx]
		if failing && (fails == nil || fails.Empty()) {
			failing = false
		}
		if failing {
			// Attribution check: at least one failing output must be
			// structurally reachable from the suspected gate.
			reach := false
			for _, poIdx := range fails.Members() {
				if outCone[c.POs[poIdx]] {
					reach = true
					break
				}
			}
			if !reach {
				continue
			}
			vals, err := sim.EvalScalar(c, p, nil)
			if err != nil {
				return nil, nil, err
			}
			lp := localOf(g, vals)
			if k := key(lp); !seenF[k] {
				seenF[k] = true
				lfp = append(lfp, lp)
			}
			continue
		}
		// Passing pattern: only vindicating if the gate output is critical
		// for some PO (an error would have been seen).
		union, _, vals, err := cpt.CriticalForOutputs(p, c.POs)
		if err != nil {
			return nil, nil, err
		}
		if !union[gate] {
			continue
		}
		lp := localOf(g, vals)
		if k := key(lp); !seenP[k] {
			seenP[k] = true
			lpp = append(lpp, lp)
		}
	}
	return lfp, lpp, nil
}

// localOf extracts the gate's input values as a local pattern.
func localOf(g *netlist.Gate, vals []logic.Value) intracell.Pattern {
	lp := make(intracell.Pattern, len(g.Fanin))
	for i, f := range g.Fanin {
		lp[i] = vals[f]
	}
	return lp
}

func key(p intracell.Pattern) string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = v.String()[0]
	}
	return string(b)
}
