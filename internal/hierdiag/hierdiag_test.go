package hierdiag

import (
	"testing"

	"multidiag/internal/circuits"
	"multidiag/internal/core"
	"multidiag/internal/intracell"
	"multidiag/internal/logic"
	"multidiag/internal/netlist"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
)

func exhaustivePatterns(npi int) []sim.Pattern {
	n := 1 << npi
	pats := make([]sim.Pattern, n)
	for m := 0; m < n; m++ {
		p := make(sim.Pattern, npi)
		for i := 0; i < npi; i++ {
			p[i] = logic.FromBool(m>>i&1 == 1)
		}
		pats[m] = p
	}
	return pats
}

// replaceGateWithTable builds a device circuit in which gate `g` of the
// original is replaced by sum-of-products logic implementing the given
// (fully determinate) truth table over the gate's fan-ins. This is how an
// intra-cell defect manifests at circuit level: the cell's function
// changes, its interface does not.
func replaceGateWithTable(t *testing.T, c *netlist.Circuit, g netlist.NetID, table []logic.Value) *netlist.Circuit {
	t.Helper()
	dev := c.Clone()
	gate := &dev.Gates[g]
	fanin := append([]netlist.NetID(nil), gate.Fanin...)
	k := len(fanin)
	if len(table) != 1<<k {
		t.Fatalf("table size %d for %d inputs", len(table), k)
	}
	inv := make([]netlist.NetID, k)
	for i, f := range fanin {
		inv[i] = dev.MustAddGate(netlist.Not, "__h_inv"+itoa(int(g))+"_"+itoa(i), f)
	}
	var minterms []netlist.NetID
	for m := 0; m < 1<<k; m++ {
		if table[m] != logic.One {
			if table[m] == logic.X {
				t.Fatalf("table has X at minterm %d; pick a determinate defect", m)
			}
			continue
		}
		lits := make([]netlist.NetID, k)
		for i := 0; i < k; i++ {
			if m>>i&1 == 1 {
				lits[i] = fanin[i]
			} else {
				lits[i] = inv[i]
			}
		}
		var mt netlist.NetID
		if k == 1 {
			mt = lits[0]
		} else {
			mt = dev.MustAddGate(netlist.And, "__h_mt"+itoa(int(g))+"_"+itoa(m), lits...)
		}
		minterms = append(minterms, mt)
	}
	var newOut netlist.NetID
	switch len(minterms) {
	case 0:
		// Constant 0.
		newOut = dev.MustAddGate(netlist.And, "__h_zero"+itoa(int(g)), fanin[0], inv[0])
	case 1:
		newOut = dev.MustAddGate(netlist.Buf, "__h_buf"+itoa(int(g)), minterms[0])
	default:
		newOut = dev.MustAddGate(netlist.Or, "__h_or"+itoa(int(g)), minterms...)
	}
	// Rewire readers and PO bindings of g to the new function.
	for i := range dev.Gates {
		rg := &dev.Gates[i]
		if rg.ID == newOut {
			continue
		}
		if hasPrefix(rg.Name, "__h_") {
			continue // replacement logic keeps reading the original fan-ins
		}
		for j, f := range rg.Fanin {
			if f == g {
				rg.Fanin[j] = newOut
			}
		}
	}
	for i, po := range dev.POs {
		if po == g {
			dev.POs[i] = newOut
		}
	}
	if err := dev.Finalize(); err != nil {
		t.Fatal(err)
	}
	return dev
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [12]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		n--
		b[n] = '-'
	}
	return string(b[n:])
}

// intraCellDevice builds a c17 device where gate `gname` (a 2-input NAND,
// bound to ND2X1) carries the given intra-cell defect.
func intraCellDevice(t *testing.T, gname string, cfg *intracell.SimConfig) (*netlist.Circuit, *netlist.Circuit, netlist.NetID) {
	t.Helper()
	c := circuits.C17()
	g := c.NetByName(gname)
	cell := intracell.Nand2()
	table, err := intracell.TruthTable(cell, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := replaceGateWithTable(t, c, g, table)
	return c, dev, g
}

// TestLocalPatternsBridgeDefect: a Z←A bridge inside G16's cell; the local
// failing patterns must be exactly those where the faulty cell disagrees
// with NAND, attributed to G16.
func TestLocalPatternsBridgeDefect(t *testing.T) {
	cell := intracell.Nand2()
	cfg := &intracell.SimConfig{Bridges: []intracell.BridgePair{{
		Victim: cell.Output, Aggressor: cell.Inputs[0],
	}}}
	c, dev, g := intraCellDevice(t, "G16", cfg)
	pats := exhaustivePatterns(5)
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("defect not observed")
	}
	lfp, lpp, err := LocalPatterns(c, pats, log, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(lfp) == 0 {
		t.Fatal("no local failing patterns for a failing device")
	}
	// Every local failing pattern must be one where Z←A differs from NAND:
	// Z = A vs !(A·B): differ when A == A·B... i.e. A=0? NAND(0,b)=1 vs
	// Z=0 → differs; A=1,B=1: NAND=0 vs Z=1 → differs; A=1,B=0: NAND=1 vs
	// Z=1 → same.
	for _, lp := range lfp {
		a, b := lp[0], lp[1]
		faultyDiffers := (a == logic.Zero) || (a == logic.One && b == logic.One)
		if !faultyDiffers {
			t.Errorf("local failing pattern A=%v B=%v cannot fail", a, b)
		}
	}
	_ = lpp
}

// TestRefineCellFindsBridge: intra-cell diagnosis on the derived local
// patterns must report the Z←A bridge couple.
func TestRefineCellFindsBridge(t *testing.T) {
	cell := intracell.Nand2()
	cfg := &intracell.SimConfig{Bridges: []intracell.BridgePair{{
		Victim: cell.Output, Aggressor: cell.Inputs[0],
	}}}
	c, dev, g := intraCellDevice(t, "G16", cfg)
	pats := exhaustivePatterns(5)
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := RefineCell(c, pats, log, g, DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	if sc.CellName != "ND2X1" || sc.Intra == nil {
		t.Fatalf("binding failed: %+v", sc)
	}
	found := false
	for _, b := range sc.Intra.Bridges {
		if b.Victim == cell.Output && b.Aggressor == cell.Inputs[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("Z<-A bridge not among intra-cell suspects: %+v", sc.Intra.Bridges)
	}
}

// TestHierarchicalEndToEnd: the full two-level flow on an intra-cell
// bridge (output Z dominated by input B inside G16's cell); the gate-level
// multiplet localizes the cell region, the intra-cell level names the
// bridge couple among its suspects.
func TestHierarchicalEndToEnd(t *testing.T) {
	cell := intracell.Nand2()
	cfg := &intracell.SimConfig{Bridges: []intracell.BridgePair{{
		Victim: cell.Output, Aggressor: cell.Inputs[1],
	}}}
	c, dev, g := intraCellDevice(t, "G16", cfg)
	pats := exhaustivePatterns(5)
	log, err := tester.ApplyTest(c, dev, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Fails) == 0 {
		t.Skip("defect not observed")
	}
	res, err := Diagnose(c, pats, log, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Gate level: the suspected cell (or an equivalent site on its nets)
	// must be in the multiplet.
	gateHit := false
	for _, cd := range res.GateLevel.Multiplet {
		for _, n := range cd.Nets() {
			if n == g || n == c.Gates[g].Fanin[0] || n == c.Gates[g].Fanin[1] {
				gateHit = true
			}
		}
	}
	if !gateHit {
		t.Fatal("gate level missed the defective cell region")
	}
	// Intra-cell level: for the refined cells, the bridge couple (Z ← B)
	// must be among the suspects, or Z among the stuck suspects (a dominant
	// bridge is a conditional stuck at the victim).
	intraHit := false
	for _, sc := range res.Cells {
		if sc.Intra == nil {
			continue
		}
		for _, b := range sc.Intra.Bridges {
			if b.Victim == cell.Output && b.Aggressor == cell.Inputs[1] {
				intraHit = true
			}
		}
		for _, s := range sc.Intra.Stuck {
			if s.Node == cell.Output {
				intraHit = true
			}
		}
	}
	if !intraHit && len(res.Cells) > 0 && res.Cells[0].Intra != nil {
		t.Errorf("intra-cell level missed the Z<-B bridge: %+v", res.Cells[0].Intra)
	}
}

// TestInterCellVerdict: when the gate-level suspect is actually an
// interconnect defect (stuck PI of the cell's *input net* upstream), the
// intra-cell lists can come back empty — the InterCell redirect.
func TestInterCellVerdictShape(t *testing.T) {
	// Construct local patterns that no intra-cell static fault can explain:
	// identical pattern failing and passing forces dynamic-only; then an
	// empty delay intersection yields an inter-cell verdict. Build directly
	// against the intracell API to pin the semantics RefineCell relies on.
	cell := intracell.Nand2()
	lfp := []intracell.Pattern{{logic.One, logic.One}}
	lpp := []intracell.Pattern{{logic.One, logic.One}}
	d, err := intracell.Diagnose(cell, lfp, lpp)
	if err != nil {
		t.Fatal(err)
	}
	if !d.DynamicOnly {
		t.Fatal("conflicting evidence must classify dynamic")
	}
	if len(d.Stuck) != 0 || len(d.Bridges) != 0 {
		t.Fatal("static suspects must be empty")
	}
}

func TestDefaultLibraryBindings(t *testing.T) {
	lib := DefaultLibrary()
	cases := []struct {
		t   netlist.GateType
		nin int
		ok  bool
	}{
		{netlist.Nand, 2, true},
		{netlist.Nand, 3, true},
		{netlist.Nor, 2, true},
		{netlist.Not, 1, true},
		{netlist.Xor, 2, true},
		{netlist.And, 2, false},
		{netlist.Nand, 4, false},
	}
	for _, tc := range cases {
		_, got := lib[tc.t][tc.nin]
		if got != tc.ok {
			t.Errorf("binding %v/%d = %v, want %v", tc.t, tc.nin, got, tc.ok)
		}
	}
}
