package exp

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"

	"multidiag/internal/defect"
	"multidiag/internal/obs"
)

// lockedBuffer serializes concurrent writes from the parallel campaign
// runner's emitter.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// spanKeys / runKeys are the documented JSONL schema (DESIGN.md
// §Observability): the golden key sets a record of each kind may carry.
var (
	spanKeys = map[string]bool{"kind": true, "run": true, "phase": true, "seq": true, "start_ns": true, "dur_ns": true}
	runKeys  = map[string]bool{"kind": true, "run": true, "seq": true, "dur_ns": true, "phases": true, "counters": true, "extra": true}
)

// validateTraceLines checks every JSONL line against the documented
// record schema — parseable JSON, known kinds, monotone sequence numbers,
// golden key sets — and returns the "run" records by label. Shared by the
// live-suite golden test and the committed BENCH_obs.json check.
func validateTraceLines(t *testing.T, lines []string) map[string]obs.Event {
	t.Helper()
	runRecords := map[string]obs.Event{}
	prevSeq := int64(-1)
	for i, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
		if ev.Seq <= prevSeq {
			t.Fatalf("line %d: seq %d not monotone after %d", i, ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq

		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case "span":
			for k := range raw {
				if !spanKeys[k] {
					t.Errorf("line %d: span record has unknown key %q", i, k)
				}
			}
			if ev.Phase == "" || ev.DurNS < 0 {
				t.Errorf("line %d: bad span record %+v", i, ev)
			}
		case "run":
			for k := range raw {
				if !runKeys[k] {
					t.Errorf("line %d: run record has unknown key %q", i, k)
				}
			}
			if len(ev.Phases) == 0 || len(ev.Counters) == 0 {
				t.Errorf("line %d: run record %q missing phases/counters", i, ev.Run)
			}
			runRecords[ev.Run] = ev
		default:
			t.Fatalf("line %d: unknown kind %q", i, ev.Kind)
		}
	}
	return runRecords
}

// TestTraceSchemaGolden runs a quick slice of the suite with an emitter
// attached and validates every emitted line against the documented record
// schema, plus one "run" record with phases and counters per table and
// per campaign.
func TestTraceSchemaGolden(t *testing.T) {
	var buf lockedBuffer
	em := obs.NewEmitter(&buf)
	o := quickOpts()
	o.Emitter = em

	if err := T1Characteristics(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	if err := T3MultiDefect(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	if err := em.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("only %d trace lines emitted", len(lines))
	}
	runRecords := validateTraceLines(t, lines)

	// One run record per table and per campaign of the tables we ran.
	for _, want := range []string{"T1", "T3", "T3/b0300/2", "T3/b0300/5"} {
		if _, ok := runRecords[want]; !ok {
			t.Errorf("no run record for %q (have %d records)", want, len(runRecords))
		}
	}
	// Campaign records carry the core engine's phase breakdown and device
	// counter — the payload the per-table CPU columns are derived from.
	cpRec := runRecords["T3/b0300/2"]
	for _, ph := range []string{"exp.campaign", "diagnose", "extract", "score", "cover"} {
		if cpRec.Phases[ph].Count == 0 {
			t.Errorf("campaign record missing phase %q: %v", ph, cpRec.Phases)
		}
	}
	if cpRec.Counters["exp.devices"] == 0 || cpRec.Counters["core.candidates_extracted"] == 0 {
		t.Errorf("campaign counters incomplete: %v", cpRec.Counters)
	}
}

// TestCampaignDeterministicUnderParallelism pins the parallel device
// runner's contract: aggregates must not depend on goroutine scheduling.
func TestCampaignDeterministicUnderParallelism(t *testing.T) {
	wl, err := workload("b0300")
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpts()
	o.fill()
	methods := []Method{MethodOurs, MethodSLAT}
	var first *campaign
	for i := 0; i < 3; i++ {
		cp, err := runCampaign(o, "det", wl, 2, o.Seeds, 123, methods, nil, defect.CampaignConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = cp
			continue
		}
		for _, m := range methods {
			if cp.aggSite[m].MeanAccuracy() != first.aggSite[m].MeanAccuracy() {
				t.Fatalf("run %d: method %s site accuracy differs", i, m)
			}
			if cp.cands[m] != first.cands[m] {
				t.Fatalf("run %d: method %s candidate count differs", i, m)
			}
		}
		if cp.runs != first.runs {
			t.Fatalf("run %d: device count differs", i)
		}
	}
}
