package exp

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog detects stalled campaigns: when no device completes within the
// deadline it dumps every goroutine's stack to its writer, turning a hung
// overnight run (a deadlocked pool, a pathological device) into an
// actionable log instead of a silent zombie. One dump per stall — the
// watchdog disarms itself until the next Tick proves the campaign is
// moving again. A nil *Watchdog ignores every call, the obs idiom, so the
// suite ticks it unconditionally.
type Watchdog struct {
	w        io.Writer
	deadline time.Duration
	lastNS   atomic.Int64 // UnixNano of the last Tick
	armed    atomic.Bool
	dumps    atomic.Int64

	mu   sync.Mutex // serializes dumps to w
	stop chan struct{}
	done chan struct{}
}

// NewWatchdog starts a watchdog that dumps goroutine stacks to w when no
// Tick arrives within deadline. Call Stop to shut the poller down.
// Returns nil (the disabled watchdog) when deadline ≤ 0.
func NewWatchdog(w io.Writer, deadline time.Duration) *Watchdog {
	if deadline <= 0 {
		return nil
	}
	wd := &Watchdog{
		w:        w,
		deadline: deadline,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	wd.lastNS.Store(time.Now().UnixNano())
	wd.armed.Store(true)
	go wd.loop()
	return wd
}

// Tick records forward progress (a completed device) and re-arms the
// watchdog. No-op on nil.
func (wd *Watchdog) Tick() {
	if wd == nil {
		return
	}
	wd.lastNS.Store(time.Now().UnixNano())
	wd.armed.Store(true)
}

// Stop shuts the poller down and waits for it to exit. No-op on nil.
func (wd *Watchdog) Stop() {
	if wd == nil {
		return
	}
	close(wd.stop)
	<-wd.done
}

// Dumps reports how many stall dumps the watchdog has written (0 on nil).
func (wd *Watchdog) Dumps() int64 {
	if wd == nil {
		return 0
	}
	return wd.dumps.Load()
}

// loop polls at a quarter of the deadline so a stall is caught within
// ~1.25× the configured time.
func (wd *Watchdog) loop() {
	defer close(wd.done)
	poll := wd.deadline / 4
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		select {
		case <-wd.stop:
			return
		case <-tick.C:
			wd.check(time.Now())
		}
	}
}

func (wd *Watchdog) check(now time.Time) {
	idle := now.UnixNano() - wd.lastNS.Load()
	if time.Duration(idle) < wd.deadline {
		return
	}
	// One dump per stall: only the poller that flips armed→false writes.
	if !wd.armed.CompareAndSwap(true, false) {
		return
	}
	wd.dump(time.Duration(idle))
}

func (wd *Watchdog) dump(idle time.Duration) {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	wd.mu.Lock()
	defer wd.mu.Unlock()
	fmt.Fprintf(wd.w, "exp: watchdog: no device completed for %v (deadline %v); dumping all goroutine stacks\n",
		idle.Round(time.Millisecond), wd.deadline)
	wd.w.Write(buf[:n])
	fmt.Fprintf(wd.w, "exp: watchdog: end of stall dump\n")
	wd.dumps.Add(1)
}
