package exp

import (
	"os"
	"strings"
	"testing"
)

// TestCommittedBenchObsSchema validates the committed BENCH_obs.json
// trace sample against the same JSONL schema golden the live suite is
// held to, so the checked-in artifact cannot drift from the documented
// format. Skips when the file is absent (make clean removes it).
func TestCommittedBenchObsSchema(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_obs.json")
	if os.IsNotExist(err) {
		t.Skip("BENCH_obs.json not present (removed by make clean)")
	}
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 {
		t.Fatalf("committed trace sample suspiciously short: %d lines", len(lines))
	}
	runRecords := validateTraceLines(t, lines)
	if len(runRecords) == 0 {
		t.Error("committed trace sample carries no run records")
	}
}
