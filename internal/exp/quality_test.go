package exp

import (
	"testing"

	"multidiag/internal/defect"
	"multidiag/internal/qrec"
)

func TestMechanismOf(t *testing.T) {
	cases := []struct {
		mix  defect.CampaignConfig
		want string
	}{
		{defect.CampaignConfig{MixStuck: 1}, "stuck"},
		{defect.CampaignConfig{MixOpen: 1}, "open"},
		{defect.CampaignConfig{MixBridge: 1}, "bridge"},
		{defect.CampaignConfig{}, "mixed"},
		{defect.CampaignConfig{MixStuck: 0.2, MixOpen: 0.7, MixBridge: 0.1}, "mixed"},
	}
	for _, c := range cases {
		if got := mechanismOf(c.mix); got != c.want {
			t.Errorf("mechanismOf(%+v) = %q, want %q", c.mix, got, c.want)
		}
	}
}

// runQualityCampaign runs one quick campaign with a collector attached
// and returns its records by key.
func runQualityCampaign(t *testing.T) (*campaign, map[string]qrec.Record) {
	t.Helper()
	wl, err := workload("b0300")
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpts()
	o.fill()
	o.Quality = &qrec.Collector{}
	cp, err := runCampaign(o, "T3/b0300/2", wl, 2, o.Seeds, 123, []Method{MethodOurs, MethodSLAT}, nil, defect.CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return cp, o.Quality.File().Lookup()
}

// TestCampaignQualityRecords pins the record emission contract: one
// record per method, quality core matching the campaign aggregates, and
// phase/cache context on the ours record only.
func TestCampaignQualityRecords(t *testing.T) {
	cp, recs := runQualityCampaign(t)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %v", len(recs), recs)
	}
	ours, ok := recs["T3/b0300/2|ours"]
	if !ok {
		t.Fatalf("no ours record: %v", recs)
	}
	if ours.Circuit != "b0300" || ours.Mechanism != "mixed" || ours.Defects != 2 || ours.Devices != cp.runs {
		t.Errorf("ours record identity wrong: %+v", ours)
	}
	if ours.SiteAcc != cp.aggSite[MethodOurs].MeanAccuracy() ||
		ours.RegionAcc != cp.aggRegion[MethodOurs].MeanAccuracy() ||
		ours.Success != cp.aggRegion[MethodOurs].SuccessRate() ||
		ours.Resolution != cp.aggRegion[MethodOurs].MeanResolution() {
		t.Errorf("ours quality core does not match campaign aggregates: %+v", ours)
	}
	if ours.MsPerDiag <= 0 {
		t.Errorf("ours ms/diag = %v", ours.MsPerDiag)
	}
	for _, ph := range corePhases {
		if _, ok := ours.PhaseMS[ph]; !ok {
			t.Errorf("ours record missing phase %q: %v", ph, ours.PhaseMS)
		}
	}
	if ours.ConeHitRate <= 0 || ours.ConeHitRate > 1 {
		t.Errorf("cone hit rate %v outside (0,1]", ours.ConeHitRate)
	}

	slat, ok := recs["T3/b0300/2|slat"]
	if !ok {
		t.Fatalf("no slat record: %v", recs)
	}
	if slat.PhaseMS != nil || slat.ConeHitRate != 0 {
		t.Errorf("baseline record carries core-only context: %+v", slat)
	}
}

// TestQualityCoreDeterministic: the gated fields must be identical across
// repeated runs — that is what lets mdtrend treat any drop as semantic.
func TestQualityCoreDeterministic(t *testing.T) {
	_, a := runQualityCampaign(t)
	_, b := runQualityCampaign(t)
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for k, ra := range a {
		rb, ok := b[k]
		if !ok {
			t.Fatalf("second run missing %q", k)
		}
		if ra.SiteAcc != rb.SiteAcc || ra.RegionAcc != rb.RegionAcc ||
			ra.Success != rb.Success || ra.Resolution != rb.Resolution ||
			ra.Devices != rb.Devices {
			t.Errorf("%s: quality core differs across runs:\n%+v\n%+v", k, ra, rb)
		}
	}
}
