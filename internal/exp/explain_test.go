package exp

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"multidiag/internal/explain"
)

// explainKeys is the documented flight-recorder JSONL schema (DESIGN.md
// §8): the golden key sets each event kind may carry. Optional fields are
// omitempty, so a key's absence is always legal; an unknown key is a
// schema break.
var explainKeys = map[string]map[string]bool{
	"evidence": {"kind": true, "run": true, "seq": true, "stage": true, "bits": true},
	"cand": {"kind": true, "run": true, "seq": true, "stage": true, "cand": true, "name": true,
		"bits": true, "covered": true, "tfsf": true, "tpsf": true, "equiv": true, "equiv_to": true,
		"verdict": true, "reason": true, "order": true, "gain": true, "new_bits": true,
		"dominated_by": true, "overlap": true, "models": true, "bad_patterns": true},
}

var explainStages = map[string]bool{
	explain.StageEvidence: true, explain.StageExtract: true, explain.StageScore: true,
	explain.StageCover: true, explain.StageRefine: true, explain.StageXCheck: true,
}

// TestExplainSchemaGolden runs a quick suite slice with the flight
// recorder streaming through the parallel campaign runner (the mdexp
// -explain-out path) and validates every emitted line against the
// documented schema: parseable JSON, known kinds and stages, golden key
// sets, and sequence numbers assigned exactly once. Under -race this
// doubles as the concurrent-emitter regression test: the device workers
// share one recorder and one emitter.
func TestExplainSchemaGolden(t *testing.T) {
	var buf lockedBuffer
	rec := explain.New("exp-test")
	rec.SetEmitter(explain.NewEmitter(&buf))
	o := quickOpts()
	o.Explain = rec

	if err := T3MultiDefect(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	if err := rec.Emitter().Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 20 {
		t.Fatalf("only %d explain lines emitted", len(lines))
	}
	// The workers interleave (seq assignment and the emitter write are not
	// one critical section), so the stream is checked as a set: every seq
	// exactly once, covering 0..n-1.
	seqs := map[int64]bool{}
	stages := map[string]int{}
	for i, line := range lines {
		var ev explain.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
		if ev.Run != "exp-test" {
			t.Fatalf("line %d: run %q", i, ev.Run)
		}
		if seqs[ev.Seq] {
			t.Fatalf("line %d: seq %d emitted twice", i, ev.Seq)
		}
		seqs[ev.Seq] = true
		if !explainStages[ev.Stage] {
			t.Fatalf("line %d: unknown stage %q", i, ev.Stage)
		}
		stages[ev.Stage]++
		keys := explainKeys[ev.Kind]
		if keys == nil {
			t.Fatalf("line %d: unknown kind %q", i, ev.Kind)
		}
		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			t.Fatal(err)
		}
		for k := range raw {
			if !keys[k] {
				t.Errorf("line %d: %s record has unknown key %q", i, ev.Kind, k)
			}
		}
		if ev.Kind == "cand" && ev.Cand == "" {
			t.Errorf("line %d: cand record without candidate id", i)
		}
	}
	for s := int64(0); s < int64(len(lines)); s++ {
		if !seqs[s] {
			t.Fatalf("seq %d missing from the stream (%d lines)", s, len(lines))
		}
	}
	// A campaign exercises the full pipeline, so every stage must appear.
	for stage := range explainStages {
		if stages[stage] == 0 {
			t.Errorf("no %q events in a full campaign", stage)
		}
	}
	// In-memory retention must agree with the stream (cap not hit at quick
	// scale).
	evs, dropped := rec.Events()
	if dropped != 0 {
		t.Fatalf("dropped %d events at quick scale", dropped)
	}
	if len(evs) != len(lines) {
		t.Fatalf("retained %d events, streamed %d", len(evs), len(lines))
	}
}

// TestProgressReporter pins the heartbeat lifecycle: campaign totals
// accumulate, Done ticks, Stop prints the final summary exactly once, and
// a nil reporter ignores everything.
func TestProgressReporter(t *testing.T) {
	var nilP *Progress
	nilP.StartCampaign("x", 5)
	nilP.Done(1)
	nilP.Stop()

	var buf lockedBuffer
	p := NewProgress(&buf, time.Hour) // interval too long to tick during the test
	p.StartCampaign("T3/b0300/2", 4)
	p.StartCampaign("T3/b0300/5", 4)
	p.Done(3)
	if got := p.statusLine(); !strings.Contains(got, "3/8 devices (37.5%)") ||
		!strings.Contains(got, "T3/b0300/5") {
		t.Errorf("status line %q", got)
	}
	p.Done(5)
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "progress: done — 8 devices") {
		t.Errorf("final summary missing:\n%s", out)
	}
	if strings.Count(out, "progress: done") != 1 {
		t.Errorf("summary printed more than once:\n%s", out)
	}
}
