package exp

import (
	"fmt"
	"io"
	"sync"
	"time"

	"multidiag/internal/baseline"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/fsim"
	"multidiag/internal/metrics"
	"multidiag/internal/obs"
	"multidiag/internal/report"
)

// T1Characteristics reports the benchmark circuits: size, interface, test
// length and stuck-at coverage (DESIGN.md T1).
func T1Characteristics(w io.Writer, o Options) error {
	o.fill()
	tr, finish := tableTrace(o, "T1")
	t := report.NewTable("T1: benchmark circuit characteristics",
		"circuit", "PIs", "POs", "gates", "depth", "patterns", "SA coverage")
	for _, name := range circuitsFor(o) {
		sp := tr.Span("exp.workload")
		wl, err := workload(name)
		sp.End()
		if err != nil {
			return err
		}
		sp = tr.Span("exp.coverage")
		cov, err := FaultCoverage(wl)
		sp.End()
		if err != nil {
			return err
		}
		tr.Registry().Counter("exp.circuits").Inc()
		st := wl.Circuit.ComputeStats()
		t.AddRow(name, st.PIs, st.POs, st.Gates, st.MaxLevel, len(wl.Patterns), cov)
	}
	if err := finish(); err != nil {
		return err
	}
	return t.Render(w)
}

// campaign aggregates per-method outcomes over devices.
type campaign struct {
	aggSite, aggRegion map[Method]*metrics.Aggregate
	cands              map[Method]int
	elapsed            map[Method]time.Duration
	runs               int
	// tr is the campaign's trace: the core engine's per-phase spans and
	// counters, accumulated over every device diagnosed in the campaign.
	tr *obs.Trace
}

func newCampaign() *campaign {
	return &campaign{
		aggSite:   map[Method]*metrics.Aggregate{},
		aggRegion: map[Method]*metrics.Aggregate{},
		cands:     map[Method]int{},
		elapsed:   map[Method]time.Duration{},
	}
}

// phaseBreakdown renders the core engine's per-diagnosis CPU-time split
// over the named phases as "a/b/c" in milliseconds.
func (cp *campaign) phaseBreakdown(phases ...string) string {
	out := ""
	for i, ph := range phases {
		if i > 0 {
			out += "/"
		}
		ms := 0.0
		if cp.runs > 0 {
			ms = float64(cp.tr.PhaseTotal(ph).Microseconds()) / 1000 / float64(cp.runs)
		}
		out += fmt.Sprintf("%.1f", ms)
	}
	return out
}

func (cp *campaign) add(outcomes []RunOutcome) {
	cp.runs++
	for _, oc := range outcomes {
		if cp.aggSite[oc.Method] == nil {
			cp.aggSite[oc.Method] = &metrics.Aggregate{}
			cp.aggRegion[oc.Method] = &metrics.Aggregate{}
		}
		cp.aggSite[oc.Method].Add(oc.Score)
		cp.aggRegion[oc.Method].Add(oc.Region)
		cp.cands[oc.Method] += oc.Cands
		cp.elapsed[oc.Method] += oc.Elapsed
	}
}

// runCampaign diagnoses `seeds` activated devices of the given multiplicity
// with the given methods. Devices are diagnosed concurrently but outcomes
// are folded in device order, so every aggregate is deterministic. The
// nested pools share one budget (Options.Workers, default GOMAXPROCS):
// min(budget, devices) campaign workers, each diagnosis running the
// leftover budget as its fault-parallel pool, all sharing the campaign's
// cone cache. The campaign gets its own labelled trace — shared by the
// concurrent diagnoses and wired to the options' emitter — and emits one
// "run" record when done.
func runCampaign(o Options, label string, wl *Workload, multiplicity, seeds int, baseSeed int64, methods []Method, dict *baseline.Dictionary, mix defect.CampaignConfig) (*campaign, error) {
	tr := obs.New(label)
	tr.SetEmitter(o.Emitter)
	root := tr.Span("exp.campaign")
	sp := root.Child("exp.devices")
	devs, err := makeDevices(wl, seeds, multiplicity, baseSeed, mix)
	sp.End()
	if err != nil {
		return nil, err
	}
	tr.Registry().Counter("exp.devices").Add(int64(len(devs)))
	o.Progress.StartCampaign(label, len(devs))

	budget := fsim.Workers(o.Workers)
	workers := budget
	if workers > len(devs) {
		workers = len(devs)
	}
	ss := newSharedSim(tr, budget, workers)
	outs := make([][]RunOutcome, len(devs))
	errs := make([]error, len(devs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range devs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i], errs[i] = runMethods(tr, wl, devs[i], methods, dict, o, ss)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cp := newCampaign()
	cp.tr = tr
	for _, oc := range outs {
		cp.add(oc)
	}
	root.End()
	cp.emitQuality(o.Quality, label, wl, multiplicity, mix, methods)
	if err := tr.EmitRun(nil); err != nil {
		return nil, err
	}
	return cp, nil
}

// T2SingleDefect compares every engine on single-defect devices of each
// mechanism (DESIGN.md T2): accuracy must be ≈1 everywhere — the
// assumptions all hold for one defect — so T2 is the sanity anchor.
func T2SingleDefect(w io.Writer, o Options) error {
	o.fill()
	_, finish := tableTrace(o, "T2")
	t := report.NewTable("T2: single-defect sanity (per circuit × mechanism)",
		"circuit", "mechanism", "method", "site acc", "region acc", "resolution", "ms/diag", "core ms ext/score/cover")
	names := circuitsFor(o)
	for _, name := range names {
		wl, err := workload(name)
		if err != nil {
			return err
		}
		// Dictionary is built per circuit (the expensive precompute the
		// effect-cause methods avoid); skip it on the largest circuits as
		// deployed flows do.
		var dict *baseline.Dictionary
		if wl.Circuit.NumLogicGates() <= 1000 {
			dict, err = baseline.BuildDictionary(wl.Circuit, wl.Patterns)
			if err != nil {
				return err
			}
		}
		mechanisms := []struct {
			label string
			mix   defect.CampaignConfig
		}{
			{"stuck", defect.CampaignConfig{MixStuck: 1}},
			{"open", defect.CampaignConfig{MixOpen: 1}},
			{"bridge", defect.CampaignConfig{MixBridge: 1}},
		}
		for _, mech := range mechanisms {
			methods := []Method{MethodOurs, MethodSLAT, MethodIntersection}
			if dict != nil {
				methods = append(methods, MethodDictionary)
			}
			cp, err := runCampaign(o, "T2/"+name+"/"+mech.label, wl, 1, o.Seeds, 10_000, methods, dict, mech.mix)
			if err != nil {
				return err
			}
			for _, m := range methods {
				agg, reg := cp.aggSite[m], cp.aggRegion[m]
				if agg == nil {
					continue
				}
				breakdown := "-"
				if m == MethodOurs {
					breakdown = cp.phaseBreakdown("extract", "score", "cover")
				}
				t.AddRow(name, mech.label, string(m),
					agg.MeanAccuracy(), reg.MeanAccuracy(), reg.MeanResolution(),
					float64(cp.elapsed[m].Milliseconds())/float64(cp.runs), breakdown)
			}
		}
	}
	if err := finish(); err != nil {
		return err
	}
	return t.Render(w)
}

// T3MultiDefect is the headline table: diagnosis quality vs. defect
// multiplicity 2–5, ours vs. SLAT vs. intersection (DESIGN.md T3).
func T3MultiDefect(w io.Writer, o Options) error {
	o.fill()
	_, finish := tableTrace(o, "T3")
	t := report.NewTable("T3: multiple-defect diagnosis vs multiplicity",
		"circuit", "#defects", "method", "site acc", "region acc", "success", "resolution", "ms/diag", "core ms ext/score/cover")
	methods := []Method{MethodOurs, MethodSLAT, MethodIntersection}
	for _, name := range multiCircuits(o) {
		wl, err := workload(name)
		if err != nil {
			return err
		}
		for mult := 2; mult <= 5; mult++ {
			cp, err := runCampaign(o, fmt.Sprintf("T3/%s/%d", name, mult), wl, mult, o.Seeds, int64(20_000+mult*1000), methods, nil, defect.CampaignConfig{})
			if err != nil {
				return err
			}
			for _, m := range methods {
				agg, reg := cp.aggSite[m], cp.aggRegion[m]
				if agg == nil {
					continue
				}
				breakdown := "-"
				if m == MethodOurs {
					breakdown = cp.phaseBreakdown("extract", "score", "cover")
				}
				t.AddRow(name, mult, string(m),
					agg.MeanAccuracy(), reg.MeanAccuracy(), reg.SuccessRate(), reg.MeanResolution(),
					float64(cp.elapsed[m].Milliseconds())/float64(cp.runs), breakdown)
			}
		}
	}
	if err := finish(); err != nil {
		return err
	}
	return t.Render(w)
}

func multiCircuits(o Options) []string {
	if o.Quick {
		return []string{"b0300"}
	}
	return []string{"add16", "b0500", "b1000"}
}

// T4PatternCharacter buckets multi-defect devices by their non-SLAT
// failing-pattern fraction and reports per-bucket accuracy for ours vs SLAT
// (DESIGN.md T4): the paper's claim is that our accuracy is flat across
// buckets while SLAT's falls as the non-SLAT fraction grows.
func T4PatternCharacter(w io.Writer, o Options) error {
	o.fill()
	tr, finish := tableTrace(o, "T4")
	t := report.NewTable("T4: accuracy vs non-SLAT failing-pattern fraction",
		"bucket", "devices", "ours acc", "slat acc", "ours res", "slat res")
	type bucket struct {
		count            int
		oursAcc, slatAcc float64
		oursRes, slatRes int
	}
	buckets := make([]bucket, 4) // [0,0.25) [0.25,0.5) [0.5,0.75) [0.75,1]
	for _, name := range multiCircuits(o) {
		wl, err := workload(name)
		if err != nil {
			return err
		}
		for mult := 2; mult <= 4; mult++ {
			devs, err := makeDevices(wl, o.Seeds, mult, int64(30_000+mult*777), defect.CampaignConfig{})
			if err != nil {
				return err
			}
			tr.Registry().Counter("exp.devices").Add(int64(len(devs)))
			o.Progress.StartCampaign(fmt.Sprintf("T4/%s/%d", name, mult), len(devs))
			// Devices run sequentially here (bucketing folds in order), so
			// each diagnosis gets the whole worker budget.
			ss := newSharedSim(tr, fsim.Workers(o.Workers), 1)
			for _, dev := range devs {
				outs, err := runMethods(tr, wl, dev, []Method{MethodOurs, MethodSLAT}, nil, o, ss)
				if err != nil {
					return err
				}
				frac := outs[0].NonSLATFrac
				if frac < 0 {
					continue
				}
				bi := int(frac * 4)
				if bi > 3 {
					bi = 3
				}
				b := &buckets[bi]
				b.count++
				for _, oc := range outs {
					switch oc.Method {
					case MethodOurs:
						b.oursAcc += oc.Region.Accuracy()
						b.oursRes += oc.Cands
					case MethodSLAT:
						b.slatAcc += oc.Region.Accuracy()
						b.slatRes += oc.Cands
					}
				}
			}
		}
	}
	labels := []string{"[0,25%)", "[25,50%)", "[50,75%)", "[75,100%]"}
	for i, b := range buckets {
		if b.count == 0 {
			t.AddRow(labels[i], 0, "-", "-", "-", "-")
			continue
		}
		n := float64(b.count)
		t.AddRow(labels[i], b.count, b.oursAcc/n, b.slatAcc/n,
			float64(b.oursRes)/n, float64(b.slatRes)/n)
	}
	if err := finish(); err != nil {
		return err
	}
	return t.Render(w)
}

// F1AccuracyVsDefects regenerates the accuracy-vs-multiplicity figure
// (DESIGN.md F1), one series per method.
func F1AccuracyVsDefects(w io.Writer, o Options) error {
	o.fill()
	_, finish := tableTrace(o, "F1")
	f := report.NewFigure("F1: region accuracy vs #defects", "#defects", "mean region accuracy")
	methods := []Method{MethodOurs, MethodSLAT, MethodIntersection}
	series := map[Method]*report.Series{}
	for _, m := range methods {
		series[m] = f.AddSeries(string(m))
	}
	wl, err := workload(primaryCircuit(o))
	if err != nil {
		return err
	}
	for mult := 1; mult <= 5; mult++ {
		cp, err := runCampaign(o, fmt.Sprintf("F1/%d", mult), wl, mult, o.Seeds, int64(40_000+mult*333), methods, nil, defect.CampaignConfig{})
		if err != nil {
			return err
		}
		for _, m := range methods {
			if agg := cp.aggRegion[m]; agg != nil {
				series[m].Add(float64(mult), agg.MeanAccuracy())
			}
		}
	}
	if err := finish(); err != nil {
		return err
	}
	return f.Render(w)
}

func primaryCircuit(o Options) string {
	if o.Quick {
		return "b0300"
	}
	return "b1000"
}

// F2ResolutionVsDefects regenerates the resolution-vs-multiplicity figure
// (DESIGN.md F2).
func F2ResolutionVsDefects(w io.Writer, o Options) error {
	o.fill()
	_, finish := tableTrace(o, "F2")
	f := report.NewFigure("F2: resolution vs #defects", "#defects", "mean candidates")
	methods := []Method{MethodOurs, MethodSLAT, MethodIntersection}
	series := map[Method]*report.Series{}
	for _, m := range methods {
		series[m] = f.AddSeries(string(m))
	}
	wl, err := workload(primaryCircuit(o))
	if err != nil {
		return err
	}
	for mult := 1; mult <= 5; mult++ {
		cp, err := runCampaign(o, fmt.Sprintf("F2/%d", mult), wl, mult, o.Seeds, int64(50_000+mult*333), methods, nil, defect.CampaignConfig{})
		if err != nil {
			return err
		}
		for _, m := range methods {
			if agg := cp.aggRegion[m]; agg != nil {
				series[m].Add(float64(mult), agg.MeanResolution())
			}
		}
	}
	if err := finish(); err != nil {
		return err
	}
	return f.Render(w)
}

// F3Runtime regenerates the CPU-scaling figure (DESIGN.md F3): diagnosis
// wall time vs circuit size (at multiplicity 3) and vs multiplicity (on the
// primary circuit).
func F3Runtime(w io.Writer, o Options) error {
	o.fill()
	_, finish := tableTrace(o, "F3")
	sizes := []string{"b0300", "b0500", "b1000"}
	if !o.Quick {
		sizes = []string{"b0500", "b1000", "b2000", "b4000"}
	}
	f := report.NewFigure("F3a: diagnosis time vs circuit size (3 defects)", "gates", "ms/diagnosis")
	s := f.AddSeries("ours")
	for _, name := range sizes {
		wl, err := workload(name)
		if err != nil {
			return err
		}
		cp, err := runCampaign(o, "F3a/"+name, wl, 3, minInt(o.Seeds, 8), 60_000, []Method{MethodOurs}, nil, defect.CampaignConfig{})
		if err != nil {
			return err
		}
		s.Add(float64(wl.Circuit.NumLogicGates()),
			float64(cp.elapsed[MethodOurs].Milliseconds())/float64(cp.runs))
	}
	if err := f.Render(w); err != nil {
		return err
	}
	f2 := report.NewFigure("F3b: diagnosis time vs #defects", "#defects", "ms/diagnosis")
	s2 := f2.AddSeries("ours")
	wl, err := workload(primaryCircuit(o))
	if err != nil {
		return err
	}
	for mult := 1; mult <= 5; mult++ {
		cp, err := runCampaign(o, fmt.Sprintf("F3b/%d", mult), wl, mult, minInt(o.Seeds, 8), int64(61_000+mult*13), []Method{MethodOurs}, nil, defect.CampaignConfig{})
		if err != nil {
			return err
		}
		s2.Add(float64(mult), float64(cp.elapsed[MethodOurs].Milliseconds())/float64(cp.runs))
	}
	if err := finish(); err != nil {
		return err
	}
	return f2.Render(w)
}

// F4DefectTypes regenerates the defect-type-mix figure (DESIGN.md F4):
// region accuracy at multiplicity 3 under different mechanism populations.
func F4DefectTypes(w io.Writer, o Options) error {
	o.fill()
	_, finish := tableTrace(o, "F4")
	f := report.NewFigure("F4: region accuracy by defect-type mix (3 defects)", "mix#", "mean region accuracy")
	mixes := []struct {
		label string
		mix   defect.CampaignConfig
	}{
		{"stuck-only", defect.CampaignConfig{MixStuck: 1}},
		{"open-heavy", defect.CampaignConfig{MixStuck: 0.2, MixOpen: 0.7, MixBridge: 0.1}},
		{"bridge-heavy", defect.CampaignConfig{MixStuck: 0.2, MixOpen: 0.1, MixBridge: 0.7}},
		{"mixed", defect.CampaignConfig{}},
	}
	wl, err := workload(primaryCircuit(o))
	if err != nil {
		return err
	}
	methods := []Method{MethodOurs, MethodSLAT}
	series := map[Method]*report.Series{}
	for _, m := range methods {
		series[m] = f.AddSeries(string(m))
	}
	t := report.NewTable("F4 key", "mix#", "population")
	for i, mx := range mixes {
		cp, err := runCampaign(o, "F4/"+mx.label, wl, 3, o.Seeds, int64(70_000+i*101), methods, nil, mx.mix)
		if err != nil {
			return err
		}
		for _, m := range methods {
			if agg := cp.aggRegion[m]; agg != nil {
				series[m].Add(float64(i), agg.MeanAccuracy())
			}
		}
		t.AddRow(i, mx.label)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	return f.Render(w)
}

// T5Ablation isolates the design choices (DESIGN.md T5): per-output vs
// per-pattern covering, X-consistency on/off, and the misprediction
// penalty λ.
func T5Ablation(w io.Writer, o Options) error {
	o.fill()
	_, finish := tableTrace(o, "T5")
	t := report.NewTable("T5: ablations (3 defects, mixed mechanisms)",
		"variant", "site acc", "region acc", "success", "resolution", "flagged inconsistent", "core ms ext/score/cover")
	wl, err := workload(primaryCircuit(o))
	if err != nil {
		return err
	}
	devs, err := makeDevices(wl, o.Seeds, 3, 80_000, defect.CampaignConfig{})
	if err != nil {
		return err
	}
	variants := []struct {
		label string
		cfg   core.Config
	}{
		{"default (per-output, λ=0.3, X-check)", core.Config{}},
		{"per-pattern cover (SLAT-style)", core.Config{PerPatternCover: true}},
		{"no X-consistency", core.Config{DisableXConsistency: true}},
		{"no bridge search", core.Config{DisableBridgeSearch: true}},
		{"approximate CPT (classical)", core.Config{ApproxCPT: true}},
		{"λ=0.01", core.Config{Lambda: 0.01}},
		{"λ=1", core.Config{Lambda: 1}},
		{"λ=3", core.Config{Lambda: 3}},
	}
	for _, v := range variants {
		// Each variant gets its own trace so the per-phase cost of the
		// ablated configuration is separable (and its own run record).
		vtr := obs.New("T5/" + v.label)
		vtr.SetEmitter(o.Emitter)
		cfg := v.cfg
		cfg.Trace = vtr
		cfg.Explain = o.Explain
		// Sequential device loop: the whole worker budget goes to the
		// fault-parallel pool, with a per-variant cone cache.
		ss := newSharedSim(vtr, fsim.Workers(o.Workers), 1)
		cfg.Workers = ss.Workers
		cfg.ConeCache = ss.Cache
		o.Progress.StartCampaign("T5/"+v.label, len(devs))
		var site, region metrics.Aggregate
		var elapsed time.Duration
		inconsistent := 0
		for _, dev := range devs {
			res, err := core.Diagnose(wl.Circuit, wl.Patterns, dev.log, cfg)
			o.Progress.Done(1)
			o.Watchdog.Tick()
			if err != nil {
				return err
			}
			var cands []metrics.Candidate
			for _, ns := range res.MultipletNets() {
				cands = append(cands, metrics.Candidate{Nets: ns})
			}
			site.Add(metrics.Evaluate(dev.defects, cands))
			region.Add(metrics.EvaluateRegion(wl.Circuit, dev.defects, cands, o.Radius))
			elapsed += res.Elapsed
			if !res.Consistent {
				inconsistent++
			}
		}
		vcp := &campaign{
			tr: vtr, runs: len(devs),
			aggSite:   map[Method]*metrics.Aggregate{MethodOurs: &site},
			aggRegion: map[Method]*metrics.Aggregate{MethodOurs: &region},
			elapsed:   map[Method]time.Duration{MethodOurs: elapsed},
		}
		vcp.emitQuality(o.Quality, "T5/"+v.label, wl, 3, defect.CampaignConfig{}, []Method{MethodOurs})
		if err := vtr.EmitRun(nil); err != nil {
			return err
		}
		t.AddRow(v.label, site.MeanAccuracy(), region.MeanAccuracy(),
			region.SuccessRate(), region.MeanResolution(),
			fmt.Sprintf("%d/%d", inconsistent, len(devs)),
			vcp.phaseBreakdown("extract", "score", "cover"))
	}
	if err := finish(); err != nil {
		return err
	}
	return t.Render(w)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
