package exp

import (
	"strings"
	"testing"
	"time"
)

// TestWatchdogDumpsOnStall pins the stall contract: no tick within the
// deadline produces exactly one all-goroutine stack dump, and a tick
// re-arms the watchdog for the next stall.
func TestWatchdogDumpsOnStall(t *testing.T) {
	var buf lockedBuffer
	wd := NewWatchdog(&buf, 30*time.Millisecond)
	defer wd.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for wd.Dumps() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if wd.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1", wd.Dumps())
	}
	out := buf.String()
	for _, want := range []string{"watchdog: no device completed", "goroutine", "end of stall dump"} {
		if !strings.Contains(out, want) {
			t.Errorf("stall dump missing %q:\n%.400s", want, out)
		}
	}

	// Disarmed: staying stalled must not dump again.
	time.Sleep(100 * time.Millisecond)
	if wd.Dumps() != 1 {
		t.Fatalf("disarmed watchdog dumped again: %d", wd.Dumps())
	}

	// A tick re-arms; the next stall dumps once more.
	wd.Tick()
	for wd.Dumps() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if wd.Dumps() != 2 {
		t.Fatalf("re-armed watchdog did not dump: %d", wd.Dumps())
	}
}

// TestWatchdogQuietWhileTicking: regular progress never triggers a dump.
func TestWatchdogQuietWhileTicking(t *testing.T) {
	var buf lockedBuffer
	wd := NewWatchdog(&buf, 80*time.Millisecond)
	for i := 0; i < 12; i++ {
		time.Sleep(15 * time.Millisecond)
		wd.Tick()
	}
	wd.Stop()
	if wd.Dumps() != 0 {
		t.Fatalf("ticking campaign dumped %d times:\n%s", wd.Dumps(), buf.String())
	}
}

// TestWatchdogNilAndDisabled: the nil watchdog absorbs every call, and a
// non-positive deadline is the disabled watchdog.
func TestWatchdogNilAndDisabled(t *testing.T) {
	var wd *Watchdog
	wd.Tick()
	wd.Stop()
	if wd.Dumps() != 0 {
		t.Error("nil watchdog reports dumps")
	}
	if NewWatchdog(nil, 0) != nil {
		t.Error("zero deadline did not disable the watchdog")
	}
}
