package exp

import (
	"io"
	"math/rand"

	"multidiag/internal/intracell"
	"multidiag/internal/logic"
	"multidiag/internal/report"
)

// T6IntraCell runs the intra-cell extension study (DESIGN.md T6): random
// transistor-level defects are injected into every library cell, the
// switch-level effect-cause flow diagnoses each from local failing/passing
// patterns alone, and the table reports per-cell hit rate and average
// suspect-list resolution — mirroring the structure of the reference
// paper's per-cell result tables.
func T6IntraCell(w io.Writer, o Options) error {
	o.fill()
	tr, finish := tableTrace(o, "T6")
	reg := tr.Registry()
	t := report.NewTable("T6: intra-cell transistor-level CPT (extension)",
		"cell", "inputs", "transistors", "injected", "observable", "hit rate", "avg resolution")
	perCell := o.Seeds * 4
	for _, cell := range intracell.Library() {
		sp := tr.Span("exp.cell")
		r := rand.New(rand.NewSource(int64(len(cell.Nodes))*7919 + 17))
		injected, observable, hits, totalRes := 0, 0, 0, 0
		for trial := 0; trial < perCell; trial++ {
			cfg, truth := randomIntraCellDefect(cell, r)
			injected++
			lfp, lpp, err := intracell.LocalPatterns(cell, cfg)
			if err != nil {
				return err
			}
			if len(lfp) == 0 {
				continue // benign defect: undetectable, not diagnosable
			}
			observable++
			d, err := intracell.Diagnose(cell, lfp, lpp)
			if err != nil {
				return err
			}
			totalRes += d.Resolution()
			truthSet := map[intracell.NodeID]bool{}
			for _, n := range truth {
				truthSet[n] = true
			}
			for _, sn := range d.SuspectNodes() {
				if truthSet[sn] {
					hits++
					break
				}
			}
		}
		sp.End()
		reg.Counter("exp.t6_injected").Add(int64(injected))
		reg.Counter("exp.t6_observable").Add(int64(observable))
		hitRate, avgRes := 0.0, 0.0
		if observable > 0 {
			hitRate = float64(hits) / float64(observable)
			avgRes = float64(totalRes) / float64(observable)
		}
		t.AddRow(cell.Name, len(cell.Inputs), len(cell.Transistors),
			injected, observable, hitRate, avgRes)
	}
	if err := finish(); err != nil {
		return err
	}
	return t.Render(w)
}

// randomIntraCellDefect draws one transistor-level defect and returns its
// simulation config plus the ground-truth nodes that localize it.
func randomIntraCellDefect(c *intracell.Cell, r *rand.Rand) (*intracell.SimConfig, []intracell.NodeID) {
	switch r.Intn(4) {
	case 0: // transistor stuck-off (open at a terminal)
		ti := r.Intn(len(c.Transistors))
		tr := c.Transistors[ti]
		return &intracell.SimConfig{StuckOff: map[int]bool{ti: true}},
			[]intracell.NodeID{tr.Gate, tr.Source, tr.Drain}
	case 1: // transistor stuck-on (gate short)
		ti := r.Intn(len(c.Transistors))
		tr := c.Transistors[ti]
		return &intracell.SimConfig{StuckOn: map[int]bool{ti: true}},
			[]intracell.NodeID{tr.Gate, tr.Source, tr.Drain}
	case 2: // node shorted to a rail
		nodes := c.InternalNodes()
		n := nodes[r.Intn(len(nodes))]
		v := logic.Zero
		if r.Intn(2) == 1 {
			v = logic.One
		}
		return &intracell.SimConfig{ForcedNodes: map[intracell.NodeID]logic.Value{n: v}},
			[]intracell.NodeID{n}
	default: // dominant bridge between two distinct non-rail nodes
		sus := c.SuspectNodes()
		v := sus[r.Intn(len(sus))]
		a := sus[r.Intn(len(sus))]
		for a == v {
			a = sus[r.Intn(len(sus))]
		}
		return &intracell.SimConfig{Bridges: []intracell.BridgePair{{Victim: v, Aggressor: a}}},
			[]intracell.NodeID{v, a}
	}
}
