package exp

import (
	"multidiag/internal/defect"
	"multidiag/internal/qrec"
)

// mechanismOf labels a campaign's defect population for quality records:
// a pure single-mechanism mix gets its name, everything else (including
// the zero config, which samples uniformly) is "mixed".
func mechanismOf(mix defect.CampaignConfig) string {
	switch {
	case mix.MixStuck == 1 && mix.MixOpen == 0 && mix.MixBridge == 0:
		return "stuck"
	case mix.MixOpen == 1 && mix.MixStuck == 0 && mix.MixBridge == 0:
		return "open"
	case mix.MixBridge == 1 && mix.MixStuck == 0 && mix.MixOpen == 0:
		return "bridge"
	default:
		return "mixed"
	}
}

// corePhases are the engine phases carried in quality records' phase_ms.
var corePhases = []string{"extract", "score", "cover"}

// emitQuality appends one qrec.Record per method to col (nil col: no-op
// via the collector's nil tolerance). The quality core comes from the
// campaign's deterministic aggregates; the ours record additionally
// carries the per-phase CPU split and the campaign cone cache's hit rate
// from the trace registry.
func (cp *campaign) emitQuality(col *qrec.Collector, label string, wl *Workload, multiplicity int, mix defect.CampaignConfig, methods []Method) {
	if col == nil {
		return
	}
	for _, m := range methods {
		site, region := cp.aggSite[m], cp.aggRegion[m]
		if site == nil {
			continue // method skipped (e.g. dictionary on large circuits)
		}
		r := qrec.Record{
			Campaign:   label,
			Circuit:    wl.Circuit.Name,
			Mechanism:  mechanismOf(mix),
			Defects:    multiplicity,
			Method:     string(m),
			Devices:    cp.runs,
			SiteAcc:    site.MeanAccuracy(),
			RegionAcc:  region.MeanAccuracy(),
			Success:    region.SuccessRate(),
			Resolution: region.MeanResolution(),
		}
		if cp.runs > 0 {
			r.MsPerDiag = float64(cp.elapsed[m].Microseconds()) / 1000 / float64(cp.runs)
		}
		if m == MethodOurs {
			r.PhaseMS = cp.corePhaseMS()
			r.ConeHitRate = cp.coneHitRate()
		}
		col.Add(r)
	}
}

// corePhaseMS is the engine's per-diagnosis CPU split in milliseconds.
func (cp *campaign) corePhaseMS() map[string]float64 {
	if cp.runs == 0 {
		return nil
	}
	out := make(map[string]float64, len(corePhases))
	for _, ph := range corePhases {
		out[ph] = float64(cp.tr.PhaseTotal(ph).Microseconds()) / 1000 / float64(cp.runs)
	}
	return out
}

// coneHitRate is the campaign cone cache's hit fraction (0 when the cache
// saw no traffic). Scheduling-dependent under parallelism — informational.
func (cp *campaign) coneHitRate() float64 {
	reg := cp.tr.Registry()
	hits := reg.Counter("fsim.cone_cache_hits").Value()
	misses := reg.Counter("fsim.cone_cache_misses").Value()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
