package exp

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live campaign progress reporter: campaigns register
// their device totals as they start, workers tick Done as diagnoses
// finish, and a heartbeat goroutine prints one status line (devices
// done/total, rate, ETA, current campaign) every interval. All methods
// tolerate a nil receiver, so the harness threads one pointer through
// unconditionally and mdexp decides whether to allocate it.
type Progress struct {
	w        io.Writer
	interval time.Duration
	start    time.Time

	total atomic.Int64
	done  atomic.Int64
	label atomic.Value // string: the most recently started campaign

	mu      sync.Mutex // serializes status lines with the final summary
	stop    chan struct{}
	stopped sync.Once
}

// NewProgress starts a heartbeat writing to w every interval (minimum one
// second). Stop must be called before exit to end the goroutine and print
// the final summary line.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval < time.Second {
		interval = time.Second
	}
	p := &Progress{w: w, interval: interval, start: time.Now(), stop: make(chan struct{})}
	p.label.Store("")
	go p.heartbeat()
	return p
}

// StartCampaign registers a campaign's device count and labels subsequent
// heartbeats with it.
func (p *Progress) StartCampaign(label string, devices int) {
	if p == nil {
		return
	}
	p.total.Add(int64(devices))
	p.label.Store(label)
}

// Done records n finished device diagnoses.
func (p *Progress) Done(n int) {
	if p == nil {
		return
	}
	p.done.Add(int64(n))
}

// Stop ends the heartbeat and prints the final summary line.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stopped.Do(func() {
		close(p.stop)
		p.mu.Lock()
		defer p.mu.Unlock()
		fmt.Fprintf(p.w, "progress: done — %d devices in %s (%.1f dev/s)\n",
			p.done.Load(), time.Since(p.start).Round(time.Second), p.rate())
	})
}

func (p *Progress) heartbeat() {
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.mu.Lock()
			fmt.Fprintln(p.w, p.statusLine())
			p.mu.Unlock()
		}
	}
}

// rate is the overall devices/second since start.
func (p *Progress) rate() float64 {
	el := time.Since(p.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(p.done.Load()) / el
}

// statusLine renders one heartbeat: done/total with percentage, rate, ETA
// for the currently known total, and the active campaign label. The total
// grows as campaigns start, so the ETA is a lower bound until the last
// campaign registers.
func (p *Progress) statusLine() string {
	done, total := p.done.Load(), p.total.Load()
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	rate := p.rate()
	eta := "?"
	if rate > 0 && total >= done {
		eta = time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second).String()
	}
	label, _ := p.label.Load().(string)
	if label == "" {
		label = "-"
	}
	return fmt.Sprintf("progress: %d/%d devices (%.1f%%) | %.1f dev/s | ETA %s | %s",
		done, total, pct, rate, eta, label)
}
