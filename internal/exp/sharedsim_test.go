package exp

import (
	"reflect"
	"testing"

	"multidiag/internal/defect"
	"multidiag/internal/obs"
)

// TestSharedSimCacheSharedAcrossDevices pins the campaign-shared cone
// cache contract: all of a campaign's devices hit one cache (so the hit
// counter keeps rising as later devices reuse earlier devices' cones),
// and sharing changes no diagnosis result — every per-device outcome is
// bit-identical to a run with a private, cold cache.
func TestSharedSimCacheSharedAcrossDevices(t *testing.T) {
	wl, err := workload("b0300")
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpts()
	o.fill()
	devs, err := makeDevices(wl, 4, 2, 123, defect.CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) < 2 {
		t.Fatalf("need ≥2 devices to observe sharing, got %d", len(devs))
	}

	// Sequential shared-cache run, sampling the hit counter per device.
	tr := obs.New("shared")
	ss := newSharedSim(tr, 1, 1)
	hits := tr.Registry().Counter("fsim.cone_cache_hits")
	shared := make([][]RunOutcome, len(devs))
	perDevHits := make([]int64, len(devs))
	for i, dev := range devs {
		shared[i], err = runMethods(tr, wl, dev, []Method{MethodOurs}, nil, o, ss)
		if err != nil {
			t.Fatal(err)
		}
		perDevHits[i] = hits.Value()
	}
	rose := false
	for i := 1; i < len(perDevHits); i++ {
		if perDevHits[i] > perDevHits[i-1] {
			rose = true
		}
	}
	if !rose {
		t.Errorf("hit counter never rose across devices: %v — cache not shared", perDevHits)
	}

	// Unshared control: each device gets its own cold cache; results must
	// match bit-for-bit (Elapsed excluded — wall time is not deterministic).
	for i, dev := range devs {
		utr := obs.New("unshared")
		uss := newSharedSim(utr, 1, 1)
		un, err := runMethods(utr, wl, dev, []Method{MethodOurs}, nil, o, uss)
		if err != nil {
			t.Fatal(err)
		}
		if len(un) != len(shared[i]) {
			t.Fatalf("device %d: outcome count differs", i)
		}
		for j := range un {
			a, b := shared[i][j], un[j]
			a.Elapsed, b.Elapsed = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("device %d: shared-cache outcome differs from unshared:\n%+v\n%+v", i, a, b)
			}
		}
	}
}
