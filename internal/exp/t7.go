package exp

import (
	"io"
	"math/rand"

	"multidiag/internal/atpg"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/dtpg"
	"multidiag/internal/logic"
	"multidiag/internal/metrics"
	"multidiag/internal/netlist"
	"multidiag/internal/report"
	"multidiag/internal/sim"
	"multidiag/internal/tester"
	"multidiag/internal/transition"
)

// T7DelayDefects evaluates the transition-fault extension (DESIGN.md
// addendum): slow-net defects under two-pattern tests, localized by the
// delay diagnosis engine.
func T7DelayDefects(w io.Writer, o Options) error {
	o.fill()
	tr, finish := tableTrace(o, "T7")
	t := report.NewTable("T7: delay-defect diagnosis (two-pattern tests)",
		"circuit", "#slow nets", "pairs", "TF coverage", "hit rate", "full success", "avg resolution")
	for _, name := range delayCircuits(o) {
		wl, err := workload(name)
		if err != nil {
			return err
		}
		c := wl.Circuit
		gen, err := transition.Generate(c, transition.GenerateConfig{Seed: 17})
		if err != nil {
			return err
		}
		var logicNets []netlist.NetID
		for i := range c.Gates {
			if c.Gates[i].Type != netlist.Input {
				logicNets = append(logicNets, netlist.NetID(i))
			}
		}
		for _, nSlow := range []int{1, 2} {
			r := rand.New(rand.NewSource(int64(nSlow) * 31))
			hits, success, runs, totalRes := 0, 0, 0, 0
			for trial := 0; trial < o.Seeds*2 && runs < o.Seeds; trial++ {
				slow := make([]transition.SlowNet, 0, nSlow)
				seen := map[netlist.NetID]bool{}
				for len(slow) < nSlow {
					n := logicNets[r.Intn(len(logicNets))]
					if !seen[n] {
						seen[n] = true
						slow = append(slow, transition.SlowNet{Net: n})
					}
				}
				log, err := transition.ApplyTest(c, slow, gen.Pairs)
				if err != nil {
					return err
				}
				if len(log.Fails) == 0 {
					continue
				}
				runs++
				sp := tr.Span("exp.transition_diagnose")
				d, err := transition.Diagnose(c, gen.Pairs, log, 0, 0)
				sp.End()
				if err != nil {
					return err
				}
				tr.Registry().Counter("exp.devices").Inc()
				totalRes += len(d.Multiplet)
				found := 0
				for _, s := range slow {
					ok := false
					for _, nets := range d.MultipletNets() {
						for _, cn := range nets {
							if cn == s.Net {
								ok = true
							}
						}
					}
					if ok {
						found++
					}
				}
				if found > 0 {
					hits++
				}
				if found == nSlow {
					success++
				}
			}
			if runs == 0 {
				t.AddRow(name, nSlow, len(gen.Pairs), gen.Coverage(), "-", "-", "-")
				continue
			}
			t.AddRow(name, nSlow, len(gen.Pairs), gen.Coverage(),
				float64(hits)/float64(runs), float64(success)/float64(runs),
				float64(totalRes)/float64(runs))
		}
	}
	if err := finish(); err != nil {
		return err
	}
	return t.Render(w)
}

func delayCircuits(o Options) []string {
	if o.Quick {
		return []string{"c17", "add16"}
	}
	return []string{"c17", "add16", "alu8", "b0500"}
}

// T8ResolutionImprovement measures the two resolution levers (DESIGN.md
// addendum): N-detect pattern sets and the closed DTPG loop. Reported per
// configuration: multiplet candidate *sites* (equivalence classes expanded)
// and region accuracy, on single-defect devices where resolution is
// well-defined.
func T8ResolutionImprovement(w io.Writer, o Options) error {
	o.fill()
	tr, finish := tableTrace(o, "T8")
	t := report.NewTable("T8: diagnostic resolution — N-detect and DTPG loop",
		"circuit", "configuration", "patterns", "sites/device", "region acc")
	name := "add16"
	if !o.Quick {
		name = "b0500"
	}
	wl, err := workload(name)
	if err != nil {
		return err
	}
	c := wl.Circuit

	devices := func() ([][]defect.Defect, []*tester.Datalog, []*netlist.Circuit, error) {
		var (
			dss  [][]defect.Defect
			devs []*netlist.Circuit
		)
		for seed := int64(0); len(dss) < o.Seeds && seed < int64(o.Seeds)*20; seed++ {
			ds, err := defect.Sample(c, defect.CampaignConfig{Seed: seed, NumDefects: 1, MixStuck: 1})
			if err != nil {
				return nil, nil, nil, err
			}
			dev, err := defect.Inject(c, ds)
			if err != nil {
				continue
			}
			dss = append(dss, ds)
			devs = append(devs, dev)
		}
		return dss, nil, devs, nil
	}
	dss, _, devs, err := devices()
	if err != nil {
		return err
	}

	run := func(label string, pats []sim.Pattern, useDTPG bool) error {
		var (
			sites  int
			agg    metrics.Aggregate
			runs   int
			patSum int
		)
		for i := range devs {
			log, err := tester.ApplyTest(c, devs[i], pats)
			if err != nil {
				return err
			}
			if len(log.Fails) == 0 {
				continue
			}
			runs++
			var res *core.Result
			patCount := len(pats)
			if useDTPG {
				apply := func(extra []sim.Pattern) (*tester.Datalog, error) {
					return tester.ApplyTest(c, devs[i], extra)
				}
				lr, err := dtpg.ImproveResolution(c, pats, log, apply, core.Config{Trace: tr}, dtpg.Config{Seed: 3})
				if err != nil {
					return err
				}
				res = lr.Result
				patCount = len(lr.Patterns)
			} else {
				res, err = core.Diagnose(c, pats, log, core.Config{Trace: tr})
				if err != nil {
					return err
				}
			}
			patSum += patCount
			for _, cd := range res.Multiplet {
				sites += 1 + len(cd.Equivalent)
			}
			var cands []metrics.Candidate
			for _, nets := range res.MultipletNets() {
				cands = append(cands, metrics.Candidate{Nets: nets})
			}
			agg.Add(metrics.EvaluateRegion(c, dss[i], cands, o.Radius))
		}
		if runs == 0 {
			t.AddRow(name, label, len(pats), "-", "-")
			return nil
		}
		t.AddRow(name, label, patSum/runs, float64(sites)/float64(runs), agg.MeanAccuracy())
		return nil
	}

	// Weak baseline: a small random-only set. Its diagnostic resolution is
	// test-set-limited (many candidates indistinguishable), which is the
	// regime where N-detect and the DTPG loop have room to work; compact
	// 1-detect ATPG sets on these circuits are often already limited only
	// by *functional* equivalence, which no pattern can split.
	weak := randomPatternSet(c, 5, 99)
	if err := run("random-5 (weak)", weak, false); err != nil {
		return err
	}
	if err := run("random-5 + DTPG loop", weak, true); err != nil {
		return err
	}
	for _, nd := range []int{1, 3, 5} {
		gen, err := atpg.Generate(c, atpg.Config{Seed: 7, NDetect: nd})
		if err != nil {
			return err
		}
		label := "1-detect ATPG"
		if nd > 1 {
			label = string(rune('0'+nd)) + "-detect ATPG"
		}
		if err := run(label, gen.Patterns, false); err != nil {
			return err
		}
	}
	gen, err := atpg.Generate(c, atpg.Config{Seed: 7})
	if err != nil {
		return err
	}
	if err := run("1-detect ATPG + DTPG loop", gen.Patterns, true); err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	return t.Render(w)
}

// randomPatternSet returns n seeded random determinate patterns.
func randomPatternSet(c *netlist.Circuit, n int, seed int64) []sim.Pattern {
	r := rand.New(rand.NewSource(seed))
	pats := make([]sim.Pattern, n)
	for i := range pats {
		p := make(sim.Pattern, len(c.PIs))
		for j := range p {
			p[j] = logic.FromBool(r.Intn(2) == 1)
		}
		pats[i] = p
	}
	return pats
}
