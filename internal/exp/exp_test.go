package exp

import (
	"strings"
	"testing"
)

// quick options shared by the experiment smoke tests: tiny seeds keep each
// table under a few seconds while still exercising the full pipeline.
func quickOpts() Options { return Options{Quick: true, Seeds: 3} }

func TestWorkloadCacheAndUnknown(t *testing.T) {
	a, err := workload("c17")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload("c17")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("workload cache miss")
	}
	if a.Coverage <= 0.9 {
		t.Errorf("c17 coverage %f", a.Coverage)
	}
	if _, err := workload("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestT1(t *testing.T) {
	var sb strings.Builder
	if err := T1Characteristics(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T1", "c17", "add16", "b0300", "SA coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 output missing %q:\n%s", want, out)
		}
	}
}

func TestT2(t *testing.T) {
	var sb strings.Builder
	if err := T2SingleDefect(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T2", "stuck", "bridge", "ours", "slat", "intersect", "dict"} {
		if !strings.Contains(out, want) {
			t.Errorf("T2 output missing %q:\n%s", want, out)
		}
	}
}

func TestT3(t *testing.T) {
	var sb strings.Builder
	if err := T3MultiDefect(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T3", "#defects", "success"} {
		if !strings.Contains(out, want) {
			t.Errorf("T3 output missing %q:\n%s", want, out)
		}
	}
}

func TestT4(t *testing.T) {
	var sb strings.Builder
	if err := T4PatternCharacter(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "non-SLAT") {
		t.Errorf("T4 output:\n%s", sb.String())
	}
}

func TestF1F2(t *testing.T) {
	var sb strings.Builder
	if err := F1AccuracyVsDefects(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	if err := F2ResolutionVsDefects(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"F1", "F2", "ours", "slat"} {
		if !strings.Contains(out, want) {
			t.Errorf("F1/F2 output missing %q", want)
		}
	}
}

func TestF3(t *testing.T) {
	var sb strings.Builder
	if err := F3Runtime(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "F3a") || !strings.Contains(out, "F3b") {
		t.Errorf("F3 output:\n%s", out)
	}
}

func TestF4(t *testing.T) {
	var sb strings.Builder
	if err := F4DefectTypes(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stuck-only") {
		t.Errorf("F4 output:\n%s", sb.String())
	}
}

func TestT5(t *testing.T) {
	var sb strings.Builder
	if err := T5Ablation(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T5", "per-pattern", "λ=1", "no X-consistency"} {
		if !strings.Contains(out, want) {
			t.Errorf("T5 output missing %q:\n%s", want, out)
		}
	}
}

func TestT6(t *testing.T) {
	var sb strings.Builder
	if err := T6IntraCell(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T6", "ND2X1", "MUX21X1", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("T6 output missing %q:\n%s", want, out)
		}
	}
}

func TestT7(t *testing.T) {
	var sb strings.Builder
	if err := T7DelayDefects(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T7", "slow nets", "TF coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("T7 output missing %q:\n%s", want, out)
		}
	}
}

func TestT8(t *testing.T) {
	var sb strings.Builder
	if err := T8ResolutionImprovement(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T8", "detect", "DTPG"} {
		if !strings.Contains(out, want) {
			t.Errorf("T8 output missing %q:\n%s", want, out)
		}
	}
}

func TestT9(t *testing.T) {
	var sb strings.Builder
	if err := T9Compaction(&sb, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T9", "X-compact", "raw POs"} {
		if !strings.Contains(out, want) {
			t.Errorf("T9 output missing %q:\n%s", want, out)
		}
	}
}

// TestAllRunsEverySuite drives the full harness entry point at minimal
// scale: every table and figure must render without error and in order.
func TestAllRunsEverySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite skipped in -short mode")
	}
	var sb strings.Builder
	if err := All(&sb, Options{Quick: true, Seeds: 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	prev := -1
	for _, marker := range []string{
		"T1:", "T2:", "T3:", "T4:", "F1:", "F2:", "F3a", "F4:", "T5:", "T6:", "T7:", "T8:", "T9:",
	} {
		idx := strings.Index(out, marker)
		if idx < 0 {
			t.Fatalf("All output missing %q", marker)
		}
		if idx < prev {
			t.Fatalf("experiment %q out of order", marker)
		}
		prev = idx
	}
}
