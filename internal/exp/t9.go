package exp

import (
	"io"

	"multidiag/internal/compact"
	"multidiag/internal/core"
	"multidiag/internal/defect"
	"multidiag/internal/metrics"
	"multidiag/internal/report"
	"multidiag/internal/tester"
)

// T9Compaction measures diagnosis under test-response compaction
// (DESIGN.md addendum): the same injected devices are diagnosed from the
// raw PO datalog (the core engine) and from X-compact-compressed datalogs
// at increasing compression ratios. Expected shape: graceful degradation —
// region accuracy erodes slowly as aliasing destroys evidence, while the
// engine never claims more than the compressed evidence supports.
func T9Compaction(w io.Writer, o Options) error {
	o.fill()
	tr, finish := tableTrace(o, "T9")
	t := report.NewTable("T9: diagnosis under response compaction",
		"circuit", "#defects", "configuration", "activated", "region acc", "resolution")
	name := "b0300"
	if !o.Quick {
		name = "b0500"
	}
	wl, err := workload(name)
	if err != nil {
		return err
	}
	c := wl.Circuit
	for _, mult := range []int{1, 3} {
		devs, err := makeDevices(wl, o.Seeds, mult, int64(90_000+mult), defect.CampaignConfig{})
		if err != nil {
			return err
		}
		// Raw-PO reference row via the core engine.
		var raw metrics.Aggregate
		for _, dev := range devs {
			res, err := core.Diagnose(c, wl.Patterns, dev.log, core.Config{Trace: tr})
			if err != nil {
				return err
			}
			var cands []metrics.Candidate
			for _, nets := range res.MultipletNets() {
				cands = append(cands, metrics.Candidate{Nets: nets})
			}
			raw.Add(metrics.EvaluateRegion(c, dev.defects, cands, o.Radius))
		}
		t.AddRow(name, mult, "raw POs (no compaction)", len(devs), raw.MeanAccuracy(), raw.MeanResolution())

		for _, ratio := range []int{2, 4, 8} {
			numOut := (len(c.POs) + ratio - 1) / ratio
			if numOut < 1 {
				numOut = 1
			}
			cp, err := compact.NewXCompact(len(c.POs), numOut, 2, int64(ratio))
			if err != nil {
				return err
			}
			var agg metrics.Aggregate
			activated := 0
			for _, dev := range devs {
				clog := cp.CompressDatalog(datalogOf(dev.log))
				if len(clog.Fails) == 0 {
					continue // fully aliased: test escape under compaction
				}
				activated++
				sp := tr.Span("exp.compact_diagnose")
				res, err := compact.Diagnose(c, wl.Patterns, clog, cp, 0, 0)
				sp.End()
				if err != nil {
					return err
				}
				tr.Registry().Counter("exp.devices").Inc()
				var cands []metrics.Candidate
				for _, nets := range res.MultipletNets() {
					cands = append(cands, metrics.Candidate{Nets: nets})
				}
				agg.Add(metrics.EvaluateRegion(c, dev.defects, cands, o.Radius))
			}
			label := ratioLabel(ratio)
			if activated == 0 {
				t.AddRow(name, mult, label, 0, "-", "-")
				continue
			}
			t.AddRow(name, mult, label, activated, agg.MeanAccuracy(), agg.MeanResolution())
		}
	}
	if err := finish(); err != nil {
		return err
	}
	return t.Render(w)
}

func ratioLabel(r int) string {
	return map[int]string{2: "2:1 X-compact", 4: "4:1 X-compact", 8: "8:1 X-compact"}[r]
}

// datalogOf returns the device datalog (helper keeps the device struct
// private to the package).
func datalogOf(d *tester.Datalog) *tester.Datalog { return d }
